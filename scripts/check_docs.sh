#!/usr/bin/env bash
# Validates cross-references across the repo's markdown: every relative
# link target must exist, every `#anchor` must match a heading in the
# target file (GitHub slugification), and every textual section
# reference of the form `path/to/doc.md §Section` (quoted or bare) must
# name a real heading. External http(s) links are not checked.
#
# Runs standalone (`scripts/check_docs.sh`) and as the last step of the
# CI check job via scripts/check.sh. Exit code 1 lists every broken
# reference; nothing is written.
set -uo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

FILES=()
for f in *.md docs/*.md examples/*.md; do
  [ -f "$f" ] && FILES+=("$f")
done

FAILURES=0

fail() {
  echo "check_docs: $1"
  FAILURES=$((FAILURES + 1))
}

# GitHub heading slug: lowercase, drop backticks, drop everything that
# is not alnum/space/hyphen/underscore, then spaces -> hyphens.
slugify() {
  printf '%s' "$1" | tr '[:upper:]' '[:lower:]' \
    | sed -e 's/`//g' -e 's/[^a-z0-9 _-]//g' -e 's/ /-/g'
}

# All heading texts of a markdown file (leading #'s stripped). ATX
# headings only, which is all this repo uses; fenced code blocks are
# excluded so `# comment` lines inside ```sh fences don't count.
headings_of() {
  awk '
    /^```/ { in_code = !in_code; next }
    !in_code && /^#+ / { sub(/^#+ /, ""); print }
  ' "$1"
}

anchor_exists() {
  local file="$1" anchor="$2" heading
  while IFS= read -r heading; do
    if [ "$(slugify "$heading")" = "$anchor" ]; then
      return 0
    fi
  done < <(headings_of "$file")
  return 1
}

# Case-insensitive prefix match lets `§Staged rollout` satisfy the
# heading "Staged rollout: health-gated traffic ramps".
section_exists() {
  local file="$1" section="$2" heading
  local want
  want="$(printf '%s' "$section" | tr '[:upper:]' '[:lower:]')"
  while IFS= read -r heading; do
    local have
    have="$(printf '%s' "$heading" | tr '[:upper:]' '[:lower:]')"
    case "$have" in
      "$want"*) return 0 ;;
    esac
  done < <(headings_of "$file")
  return 1
}

for file in "${FILES[@]}"; do
  dir="$(dirname "$file")"

  # --- Markdown links: [text](target) ---
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path="${target%%#*}"
    anchor=""
    case "$target" in *'#'*) anchor="${target#*#}" ;; esac
    if [ -z "$path" ]; then
      resolved="$file"  # Pure in-page anchor: #section.
    else
      resolved="$dir/$path"
      if [ ! -e "$resolved" ]; then
        fail "$file: broken link target '$target' ($resolved not found)"
        continue
      fi
    fi
    if [ -n "$anchor" ]; then
      case "$resolved" in
        *.md)
          if ! anchor_exists "$resolved" "$anchor"; then
            fail "$file: anchor '#$anchor' not found in $resolved"
          fi
          ;;
      esac
    fi
  done < <(grep -oE '\]\([^)]+\)' "$file" | sed -e 's/^](//' -e 's/)$//')

  # --- Textual section refs: path/to/doc.md §Section or §"Section" ---
  while IFS= read -r ref; do
    path="${ref%% §*}"
    section="${ref#* §}"
    section="${section%\"}"
    section="${section#\"}"
    # Resolve relative to the referencing file first, then repo root
    # (ROADMAP-style refs are written root-relative everywhere).
    if [ -e "$dir/$path" ]; then
      resolved="$dir/$path"
    elif [ -e "$path" ]; then
      resolved="$path"
    else
      fail "$file: section ref to missing file '$path' (§$section)"
      continue
    fi
    if ! section_exists "$resolved" "$section"; then
      fail "$file: §\"$section\" is not a heading in $resolved"
    fi
  done < <(grep -oE '[A-Za-z0-9_./-]+\.md §("[^"]+"|[A-Za-z0-9][A-Za-z0-9 -]*[A-Za-z0-9])' "$file")
done

if [ "$FAILURES" -gt 0 ]; then
  echo "check_docs: $FAILURES broken reference(s)"
  exit 1
fi
echo "check_docs: all markdown cross-references OK (${#FILES[@]} files)"
