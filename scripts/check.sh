#!/usr/bin/env bash
# Tier-1 verify plus a serving smoke run. The four CI jobs are exactly
# the four invocations below.
#
# Usage:
#   scripts/check.sh [build_dir]           # full build + ctest + bench smoke
#                                          # (bench JSON into build_dir/bench_smoke/)
#   scripts/check.sh --tsan [build_dir]    # ThreadSanitizer build of the
#                                          # serving concurrency suites
#   scripts/check.sh --asan [build_dir]    # AddressSanitizer build of the
#                                          # serving + model suites (snapshot
#                                          # lifetime / use-after-free)
#   scripts/check.sh --werror [build_dir]  # warnings-hardened build of the
#                                          # core library (-Wall -Wextra -Werror)
#
# When ccache is installed it is wired through automatically
# (CMAKE_CXX_COMPILER_LAUNCHER), so repeat builds — and the CI jobs,
# which cache ~/.ccache — skip unchanged translation units.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

# ccache wiring: opt out with AWMOE_NO_CCACHE=1 (e.g. to benchmark a
# cold compiler).
CMAKE_LAUNCHER_ARGS=()
if [ -z "${AWMOE_NO_CCACHE:-}" ] && command -v ccache >/dev/null 2>&1; then
  CMAKE_LAUNCHER_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
  echo "== ccache enabled ($(ccache --version | head -n1)) =="
fi

# Newer google-benchmark requires a unit suffix on --benchmark_min_time
# ("0.01s") and errors on the bare-number form; older releases reject
# the suffix. Probe the binary once (an empty filter runs no cases) and
# remember which form it speaks.
bench_min_time_flag() {
  local bin="$1"
  if "$bin" --benchmark_min_time=0.01s --benchmark_filter='^$' \
      >/dev/null 2>&1; then
    echo "--benchmark_min_time=0.01s"
  else
    echo "--benchmark_min_time=0.01"
  fi
}

TSAN=0
ASAN=0
WERROR=0
if [ "${1:-}" = "--tsan" ]; then
  TSAN=1
  shift
elif [ "${1:-}" = "--asan" ]; then
  ASAN=1
  shift
elif [ "${1:-}" = "--werror" ]; then
  WERROR=1
  shift
fi

if [ "$TSAN" = 1 ]; then
  BUILD_DIR="${1:-$REPO_ROOT/build-tsan}"
  echo "== configure (ThreadSanitizer) =="
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DAWMOE_TSAN=ON \
    -DAWMOE_BUILD_BENCHES=OFF -DAWMOE_BUILD_EXAMPLES=OFF \
    "${CMAKE_LAUNCHER_ARGS[@]}"

  echo "== build (tests only) =="
  cmake --build "$BUILD_DIR" -j "$(nproc)"

  # The threaded subsystem lives in src/serving/; its suites (async
  # queue, worker pool, model pool hot swaps, rollout ramps/storms,
  # stats contention) are where TSan has signal.
  # models_kernel_tier rides along: its row-parallel matmul tests are
  # the only place the kernel worker pool runs under TSan.
  # models_listwise rides along too: ParallelTrainer workers share the
  # listwise graph ops, and serving_slate_serving (matched by the
  # serving_ prefix) storms the slate path from four threads.
  echo "== ctest (serving + kernel-tier + listwise suites under TSan) =="
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R "^(serving_|models_kernel_tier|models_listwise)"

  echo "== check.sh --tsan OK =="
  exit 0
fi

if [ "$ASAN" = 1 ]; then
  BUILD_DIR="${1:-$REPO_ROOT/build-asan}"
  echo "== configure (AddressSanitizer) =="
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DAWMOE_ASAN=ON \
    -DAWMOE_BUILD_BENCHES=OFF -DAWMOE_BUILD_EXAMPLES=OFF \
    "${CMAKE_LAUNCHER_ARGS[@]}"

  echo "== build (tests only) =="
  cmake --build "$BUILD_DIR" -j "$(nproc)"

  # Snapshot lifetime is the target: a retired ModelPool snapshot (or a
  # rollout candidate dropped while leased) freed while a lease still
  # reads its replicas is a heap-use-after-free TSan cannot see. The
  # models suite covers clone storage; the serving suites cover
  # lease/retire under load.
  echo "== ctest (serving + model suites under ASan) =="
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R "^(serving_|models_)"

  echo "== check.sh --asan OK =="
  exit 0
fi

if [ "$WERROR" = 1 ]; then
  BUILD_DIR="${1:-$REPO_ROOT/build-werror}"
  echo "== configure (warnings as errors) =="
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DAWMOE_WERROR=ON \
    -DAWMOE_BUILD_BENCHES=OFF -DAWMOE_BUILD_EXAMPLES=OFF \
    -DAWMOE_BUILD_TESTS=OFF "${CMAKE_LAUNCHER_ARGS[@]}"

  # Only the core library builds here: -Wall -Wextra -Werror over all
  # of src/ (the serving stack included). Any new warning fails this
  # job instead of scrolling by in the functional one.
  echo "== build (library, -Werror) =="
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target awmoe_lib

  echo "== check.sh --werror OK =="
  exit 0
fi

BUILD_DIR="${1:-$REPO_ROOT/build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" "${CMAKE_LAUNCHER_ARGS[@]}"

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Bench smoke set: a ~10ms-per-case pass over the serving benches, with
# machine-readable output kept in $BUILD_DIR/bench_smoke/ (the CI check
# job uploads the directory as the bench-smoke artifact, so latency and
# occupancy counters are diffable across PRs).
SMOKE_DIR="$BUILD_DIR/bench_smoke"
mkdir -p "$SMOKE_DIR"

for bench in bench_inference_path bench_serving_gate_sharing \
             bench_serving_rollout; do
  if [ -x "$BUILD_DIR/$bench" ]; then
    echo "== $bench (smoke) =="
    MIN_TIME_FLAG="$(bench_min_time_flag "$BUILD_DIR/$bench")"
    "$BUILD_DIR/$bench" "$MIN_TIME_FLAG" \
      --benchmark_out="$SMOKE_DIR/$bench.json" \
      --benchmark_out_format=json
  else
    echo "$bench not built (google-benchmark missing); skipped"
  fi
done

# bench_serving_longtail is a table bench (no google-benchmark), so its
# smoke artifact is the printed table; tiny training keeps it to
# seconds.
if [ -x "$BUILD_DIR/bench_serving_longtail" ]; then
  echo "== bench_serving_longtail (smoke) =="
  "$BUILD_DIR/bench_serving_longtail" --train_sessions=300 --epochs=1 \
    | tee "$SMOKE_DIR/bench_serving_longtail.txt"
else
  echo "bench_serving_longtail not built; skipped"
fi

# bench_fleet_load smoke: 2 shards, 10k Zipf users, short closed-loop +
# overload sweep + the session-cache repeat-rate sweep (0.0/0.5/0.8,
# cache on vs off). Its own JSON (admission + fleet-scaling + cache
# gates) lands next to the google-benchmark artifacts. The cache gate
# is ENFORCED: a level-1 hit must be tail-cheaper than a miss, or the
# cache is not earning its memory.
if [ -x "$BUILD_DIR/bench_fleet_load" ]; then
  echo "== bench_fleet_load (smoke, cache repeat-rate sweep) =="
  "$BUILD_DIR/bench_fleet_load" --smoke --shards=2 --users=10000 \
    --json="$SMOKE_DIR/fleet_load.json" \
    | tee "$SMOKE_DIR/bench_fleet_load.txt"
  if ! grep -q '"cache_hit_p99_lt_miss_p99": true' \
      "$SMOKE_DIR/fleet_load.json"; then
    echo "bench_fleet_load: cache gate FAILED (hit-path p99 not below" \
         "miss-path p99 — see $SMOKE_DIR/fleet_load.json cache_sweep)"
    exit 1
  fi
else
  echo "bench_fleet_load not built; skipped"
fi

# bench_retrain_loop smoke: three continuous-retraining rounds through
# the drift-gated rollout, one of them sabotaged with untrained weights.
# Both gates are ENFORCED: at least one healthy round must auto-promote
# and the sabotaged round must auto-roll-back, or the train->serve loop
# is broken (see docs/training.md).
if [ -x "$BUILD_DIR/bench_retrain_loop" ]; then
  echo "== bench_retrain_loop (smoke, drift-gated retrain rounds) =="
  "$BUILD_DIR/bench_retrain_loop" --smoke --rounds=3 \
    --json="$SMOKE_DIR/retrain_loop.json" \
    | tee "$SMOKE_DIR/bench_retrain_loop.txt"
  if ! grep -q '"promoted_at_least_one": true' \
      "$SMOKE_DIR/retrain_loop.json"; then
    echo "bench_retrain_loop: promote gate FAILED (no healthy round" \
         "promoted — see $SMOKE_DIR/retrain_loop.json round_results)"
    exit 1
  fi
  if ! grep -q '"sabotage_rolled_back": true' \
      "$SMOKE_DIR/retrain_loop.json"; then
    echo "bench_retrain_loop: rollback gate FAILED (sabotaged round was" \
         "not rolled back — see $SMOKE_DIR/retrain_loop.json round_results)"
    exit 1
  fi
else
  echo "bench_retrain_loop not built; skipped"
fi

# bench_rerank smoke: trains the pointwise retriever and the listwise
# reranker, runs the two-stage pipeline over the holdout, and measures
# the slate path at sizes 10/25/50. The accuracy gate is ENFORCED: the
# two-stage NDCG@10 must not fall below pointwise-only, or the reranker
# stopped earning its serving cost (see docs/reranking.md).
if [ -x "$BUILD_DIR/bench_rerank" ]; then
  echo "== bench_rerank (smoke, two-stage retrieve->rerank) =="
  "$BUILD_DIR/bench_rerank" --smoke \
    --json="$SMOKE_DIR/rerank.json" \
    | tee "$SMOKE_DIR/bench_rerank.txt"
  if ! grep -q '"rerank_ndcg_ge_pointwise": true' \
      "$SMOKE_DIR/rerank.json"; then
    echo "bench_rerank: accuracy gate FAILED (two-stage NDCG@10 below" \
         "pointwise-only — see $SMOKE_DIR/rerank.json accuracy)"
    exit 1
  fi
else
  echo "bench_rerank not built; skipped"
fi

echo "== docs link check =="
"$REPO_ROOT/scripts/check_docs.sh"

echo "== check.sh OK (bench smoke artifacts in $SMOKE_DIR) =="
