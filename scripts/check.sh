#!/usr/bin/env bash
# Tier-1 verify plus a serving smoke run. Usage: scripts/check.sh [build_dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT"

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== serving gate-sharing bench (smoke) =="
if [ -x "$BUILD_DIR/bench_serving_gate_sharing" ]; then
  "$BUILD_DIR/bench_serving_gate_sharing" --benchmark_min_time=0.01
else
  echo "bench_serving_gate_sharing not built (google-benchmark missing); skipped"
fi

echo "== check.sh OK =="
