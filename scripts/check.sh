#!/usr/bin/env bash
# Tier-1 verify plus a serving smoke run.
#
# Usage:
#   scripts/check.sh [build_dir]          # full build + ctest + bench smoke
#   scripts/check.sh --tsan [build_dir]   # ThreadSanitizer build of the
#                                         # serving concurrency suites
#   scripts/check.sh --asan [build_dir]   # AddressSanitizer build of the
#                                         # serving + model suites (snapshot
#                                         # lifetime / use-after-free)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

TSAN=0
ASAN=0
if [ "${1:-}" = "--tsan" ]; then
  TSAN=1
  shift
elif [ "${1:-}" = "--asan" ]; then
  ASAN=1
  shift
fi

if [ "$TSAN" = 1 ]; then
  BUILD_DIR="${1:-$REPO_ROOT/build-tsan}"
  echo "== configure (ThreadSanitizer) =="
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DAWMOE_TSAN=ON \
    -DAWMOE_BUILD_BENCHES=OFF -DAWMOE_BUILD_EXAMPLES=OFF

  echo "== build (tests only) =="
  cmake --build "$BUILD_DIR" -j "$(nproc)"

  # The threaded subsystem lives in src/serving/; its suites (async
  # queue, worker pool, model pool hot swaps, stats contention) are
  # where TSan has signal.
  echo "== ctest (serving suites under TSan) =="
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -R "^serving_"

  echo "== check.sh --tsan OK =="
  exit 0
fi

if [ "$ASAN" = 1 ]; then
  BUILD_DIR="${1:-$REPO_ROOT/build-asan}"
  echo "== configure (AddressSanitizer) =="
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DAWMOE_ASAN=ON \
    -DAWMOE_BUILD_BENCHES=OFF -DAWMOE_BUILD_EXAMPLES=OFF

  echo "== build (tests only) =="
  cmake --build "$BUILD_DIR" -j "$(nproc)"

  # Snapshot lifetime is the target: a retired ModelPool snapshot freed
  # while a lease (or a flusher lane) still reads its replicas is a
  # heap-use-after-free TSan cannot see. The models suite covers clone
  # storage; the serving suites cover lease/retire under load.
  echo "== ctest (serving + model suites under ASan) =="
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R "^(serving_|models_)"

  echo "== check.sh --asan OK =="
  exit 0
fi

BUILD_DIR="${1:-$REPO_ROOT/build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT"

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== serving gate-sharing bench (smoke) =="
if [ -x "$BUILD_DIR/bench_serving_gate_sharing" ]; then
  "$BUILD_DIR/bench_serving_gate_sharing" --benchmark_min_time=0.01
else
  echo "bench_serving_gate_sharing not built (google-benchmark missing); skipped"
fi

echo "== check.sh OK =="
