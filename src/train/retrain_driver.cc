#include "train/retrain_driver.h"

#include <algorithm>
#include <utility>

#include "serving/model_pool.h"
#include "serving/request.h"
#include "serving/serving_engine.h"
#include "serving/serving_stats.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace awmoe {

RetrainDriver::RetrainDriver(ServingEngine* engine, ModelPool* pool,
                             std::string model,
                             std::unique_ptr<Ranker> training_replica,
                             RetrainOptions options)
    : engine_(engine),
      pool_(pool),
      model_(std::move(model)),
      options_(std::move(options)),
      training_replica_(std::move(training_replica)) {
  AWMOE_CHECK(engine_ != nullptr) << "RetrainDriver: null engine";
  AWMOE_CHECK(pool_ != nullptr) << "RetrainDriver: null pool";
  AWMOE_CHECK(training_replica_ != nullptr)
      << "RetrainDriver: null training replica";
  AWMOE_CHECK(pool_->CurrentSnapshot(pool_->ResolveName(model_)) != nullptr)
      << "RetrainDriver: model '" << model_ << "' not in pool";
  AWMOE_CHECK(options_.shadow_sessions_per_tick > 0)
      << "RetrainDriver: shadow_sessions_per_tick "
      << options_.shadow_sessions_per_tick;
  AWMOE_CHECK(options_.shadow_top_k > 0)
      << "RetrainDriver: shadow_top_k " << options_.shadow_top_k;
  AWMOE_CHECK(options_.max_ticks_per_round > 0)
      << "RetrainDriver: max_ticks_per_round " << options_.max_ticks_per_round;
  controller_ = std::make_unique<RolloutController>(
      pool_, engine_->router(), &engine_->stats(),
      pool_->ResolveName(model_), options_.rollout);
}

RetrainDriver::~RetrainDriver() = default;

bool RetrainDriver::EngagedTopK(const std::vector<const Example*>& session,
                                const std::vector<double>& scores) const {
  const size_t k = std::min(static_cast<size_t>(options_.shadow_top_k),
                            scores.size());
  if (k == 0) return false;
  // Indices of the top-k scores (ties broken by lower index, matching
  // how a result page would be cut).
  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&](size_t a, size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  for (size_t i = 0; i < k; ++i) {
    if (session[order[i]]->label > 0.5f) return true;
  }
  return false;
}

void RetrainDriver::ShadowScoreTick() {
  if (holdout_sessions_.empty()) return;
  std::vector<RankRequest> requests;
  requests.reserve(
      static_cast<size_t>(options_.shadow_sessions_per_tick) * 2);
  std::vector<size_t> session_indices;
  for (int64_t i = 0; i < options_.shadow_sessions_per_tick; ++i) {
    const size_t s = shadow_cursor_ % holdout_sessions_.size();
    shadow_cursor_++;
    session_indices.push_back(s);
    for (ArmPolicy policy :
         {ArmPolicy::kForceCandidate, ArmPolicy::kForceStable}) {
      RankRequest request;
      request.session_id = holdout_sessions_[s].front()->session_id;
      request.model = model_;
      request.arm_policy = policy;
      request.items = holdout_sessions_[s];
      requests.push_back(std::move(request));
    }
  }
  const std::vector<RankResponse> responses = engine_->RankBatch(requests);
  for (size_t r = 0; r < responses.size(); ++r) {
    const RankResponse& response = responses[r];
    if (!response.status.ok()) continue;
    const std::vector<const Example*>& session =
        holdout_sessions_[session_indices[r / 2]];
    // Attribute the sample to the version that ACTUALLY served it: a
    // forced-candidate request after a drop legitimately reports the
    // stable version, and its evidence belongs there.
    engine_->stats().RecordDriftSample(response.model, response.model_version,
                                       EngagedTopK(session, response.scores));
  }
}

RetrainRoundResult RetrainDriver::RunRound(
    const std::function<void()>& between_ticks) {
  RetrainRoundResult result;
  result.round = rounds_;

  // (a) The next streaming window: same world, fresh sessions.
  JdConfig window_config = options_.data;
  window_config.seed = options_.data.seed + static_cast<uint64_t>(rounds_);
  window_ = std::make_unique<JdDataset>(
      JdSyntheticGenerator(window_config).Generate());
  AWMOE_CHECK(window_->meta.num_items == pool_->meta().num_items &&
              window_->meta.num_queries == pool_->meta().num_queries)
      << "RetrainDriver: window dims drifted from the pool's meta";
  holdout_sessions_ = GroupBySession(window_->full_test);
  shadow_cursor_ = 0;

  // (b) Train the replica on the window (data-parallel, deterministic).
  ParallelTrainerConfig trainer_config = options_.trainer;
  trainer_config.base.seed =
      options_.trainer.base.seed + static_cast<uint64_t>(rounds_);
  Stopwatch train_watch;
  ParallelTrainer trainer(training_replica_.get(), trainer_config);
  const std::vector<EpochStats> epochs = trainer.Train(
      window_->train, window_->meta, pool_->standardizer());
  result.train_seconds = train_watch.ElapsedSeconds();
  if (!epochs.empty()) result.final_rank_loss = epochs.back().mean_rank_loss;

  // (c) Stage a deep snapshot of the trained weights as the candidate.
  std::unique_ptr<Ranker> candidate = training_replica_->Clone();
  AWMOE_CHECK(candidate != nullptr)
      << training_replica_->name() << " does not implement Clone()";
  if (post_train_hook_) post_train_hook_(candidate.get());
  result.staged_version = controller_->Begin(std::move(candidate));
  const int64_t stable_version = controller_->stable_version();
  // Scope the drift comparison to THIS round's shadow population: the
  // stable arm may carry engagement evidence from earlier windows of
  // different difficulty, which would skew the floor the candidate has
  // to clear. The candidate's version is freshly minted, so only the
  // stable side needs the reset.
  engine_->stats().ResetDriftCounters(controller_->model(), stable_version);

  // (d) Tick the ramp to a terminal state, feeding the drift gate.
  RolloutState state = RolloutState::kRamping;
  while (result.ticks < options_.max_ticks_per_round) {
    if (between_ticks) between_ticks();
    ShadowScoreTick();
    ++result.ticks;
    state = controller_->Advance();
    if (state != RolloutState::kRamping) break;
  }
  if (state == RolloutState::kRamping) {
    state = controller_->Rollback(
        "retrain round exhausted max_ticks_per_round without a verdict");
  }

  const VersionHealthSnapshot candidate_health =
      engine_->stats().VersionHealth(controller_->model(),
                                     result.staged_version);
  const VersionHealthSnapshot stable_health = engine_->stats().VersionHealth(
      controller_->model(), stable_version);
  result.candidate_engagement = candidate_health.drift_engaged_rate;
  result.stable_engagement = stable_health.drift_engaged_rate;
  result.final_state = state;
  result.last_decision = controller_->last_decision();
  ++rounds_;
  if (state == RolloutState::kPromoted) {
    ++promoted_;
  } else {
    ++rolled_back_;
    // A rejected round must not leave its weights in the warm-start
    // lineage: reset the replica to the surviving stable snapshot so
    // the next round retrains from production, not from the regression.
    const auto stable = pool_->CurrentSnapshot(controller_->model());
    CopyParametersInto(*stable->primary(), training_replica_.get());
  }
  history_.push_back(result);
  return result;
}

}  // namespace awmoe
