#ifndef AWMOE_TRAIN_RETRAIN_DRIVER_H_
#define AWMOE_TRAIN_RETRAIN_DRIVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/parallel_trainer.h"
#include "data/batcher.h"
#include "data/example.h"
#include "data/jd_synthetic.h"
#include "models/ranker.h"
#include "serving/rollout.h"

namespace awmoe {

class ServingEngine;
class ModelPool;

/// Continuous-retraining configuration: how each round's data window is
/// generated, how it is trained, and how the resulting candidate is
/// ramped (see docs/training.md for the full lifecycle).
struct RetrainOptions {
  /// Shape of each round's fresh synthetic JD window. The per-round
  /// generator seed is `data.seed + round`, so rounds draw fresh
  /// sessions from the same world — a deterministic stand-in for a
  /// streaming log — while the vocabulary dims (and thus the model
  /// shapes) stay fixed.
  JdConfig data;

  /// Data-parallel trainer settings; `trainer.base.seed + round` seeds
  /// each round, so retrains are deterministic but not identical.
  ParallelTrainerConfig trainer;

  /// Ramp schedule and health/drift gates of each round's rollout.
  /// Set `rollout.min_drift_sessions > 0` to arm the accuracy-drift
  /// gate the shadow loop below feeds.
  RolloutOptions rollout;

  /// Labelled holdout sessions shadow-scored per ramp tick — each is
  /// scored once with ArmPolicy::kForceCandidate and once with
  /// kForceStable, and the per-session engagement outcome (a
  /// positive-labelled item in the arm's top-K) is recorded into that
  /// arm's version via ServingStats::RecordDriftSample.
  int64_t shadow_sessions_per_tick = 32;

  /// Top-K cut of the UCTR-style engagement proxy.
  int64_t shadow_top_k = 3;

  /// Advance() ticks a round may spend ramping before the driver
  /// forces an operator rollback (a stuck ramp must not wedge the
  /// retrain loop forever).
  int max_ticks_per_round = 300;
};

/// Outcome of one retrain round.
struct RetrainRoundResult {
  int round = 0;
  int64_t staged_version = 0;
  RolloutState final_state = RolloutState::kIdle;
  /// The controller's last gate verdict (promote/rollback reason).
  std::string last_decision;
  double train_seconds = 0.0;
  /// Final epoch's mean rank loss on the round's window.
  double final_rank_loss = 0.0;
  /// Advance() ticks the ramp took to reach a terminal state.
  int ticks = 0;
  /// Shadow engagement rates at the end of the ramp (0 when the gate
  /// never accumulated evidence).
  double candidate_engagement = 0.0;
  double stable_engagement = 0.0;
};

/// Closes the train->serve loop (ROADMAP item 5): owns a TRAINING
/// REPLICA of a served model, and per round (a) generates the next
/// streaming data window, (b) trains the replica on it with the
/// data-parallel ParallelTrainer, (c) deep-snapshots the result into
/// `ModelPool::StageCandidate` via a RolloutController, and (d) ticks
/// the health-gated ramp — shadow-scoring holdout sessions on both
/// arms each tick so the controller's accuracy-drift gate has
/// evidence — until the candidate is PROMOTED to stable or ROLLED
/// BACK. Live traffic keeps flowing through the engine the whole time;
/// the caller injects it through `RunRound`'s between_ticks callback.
///
/// Single-threaded by design: the driver is tick-driven like the
/// RolloutController so retrain cadence is owned by the caller (a
/// timer loop in production, a deterministic loop in tests/benches).
class RetrainDriver {
 public:
  /// `engine` and `pool` are not owned and must outlive the driver.
  /// `model` must resolve in the pool. `training_replica` is the
  /// driver's private warm-start weights — typically a Clone() of the
  /// currently served model — trained further on every round's window
  /// (the pool only ever receives deep clones of it). Its shapes must
  /// match what `options.data` generates.
  RetrainDriver(ServingEngine* engine, ModelPool* pool, std::string model,
                std::unique_ptr<Ranker> training_replica,
                RetrainOptions options);
  ~RetrainDriver();

  RetrainDriver(const RetrainDriver&) = delete;
  RetrainDriver& operator=(const RetrainDriver&) = delete;

  /// Test/demo hook run on the freshly trained replica's STAGED CLONE
  /// before it enters the pool — the regression-injection point (e.g.
  /// overwrite the clone's weights with garbage and watch the drift
  /// gate roll it back). The training replica itself is untouched, so
  /// a sabotaged round does not poison later ones.
  void set_post_train_hook(std::function<void(Ranker*)> hook) {
    post_train_hook_ = std::move(hook);
  }

  /// Runs one full retrain round to a terminal rollout state. The
  /// optional `between_ticks` callback runs once per ramp tick, before
  /// that tick's shadow scoring and Advance() — the caller's slot for
  /// driving live Submit/RankBatch traffic through the engine.
  RetrainRoundResult RunRound(
      const std::function<void()>& between_ticks = nullptr);

  int rounds() const { return rounds_; }
  int promoted() const { return promoted_; }
  int rolled_back() const { return rolled_back_; }
  const RolloutController& controller() const { return *controller_; }
  const std::vector<RetrainRoundResult>& history() const { return history_; }

 private:
  /// Shadow-scores the next `shadow_sessions_per_tick` holdout
  /// sessions on both arms and records drift samples against the
  /// versions that actually served them.
  void ShadowScoreTick();

  /// True when a positive-labelled item of `session` lands in the
  /// top-`shadow_top_k` by `scores`.
  bool EngagedTopK(const std::vector<const Example*>& session,
                   const std::vector<double>& scores) const;

  ServingEngine* engine_;
  ModelPool* pool_;
  const std::string model_;
  RetrainOptions options_;
  std::unique_ptr<Ranker> training_replica_;
  std::unique_ptr<RolloutController> controller_;
  std::function<void(Ranker*)> post_train_hook_;

  /// The current round's window (kept alive: shadow requests reference
  /// its holdout examples until the round ends).
  std::unique_ptr<JdDataset> window_;
  std::vector<std::vector<const Example*>> holdout_sessions_;
  size_t shadow_cursor_ = 0;

  int rounds_ = 0;
  int promoted_ = 0;
  int rolled_back_ = 0;
  std::vector<RetrainRoundResult> history_;
};

}  // namespace awmoe

#endif  // AWMOE_TRAIN_RETRAIN_DRIVER_H_
