#ifndef AWMOE_DATA_EXAMPLE_H_
#define AWMOE_DATA_EXAMPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mat/matrix.h"

namespace awmoe {

/// Named indices into Example::numeric. These mirror the paper's 22-feature
/// impression schema (§IV-A1); the six features of Fig. 2 are present under
/// the same names.
enum NumericFeature : int {
  kFeatSales = 0,            // "Sales" (Fig. 2)
  kFeatPopularity,           // "Popularity" (Fig. 2)
  kFeatPrice,                // "Price" (Fig. 2)
  kFeatItemClickCnt,         // "Item_click_cnt" (Fig. 2)
  kFeatBrandClickTimeDiff,   // "Brand_click_time_diff" (Fig. 2)
  kFeatShopClickCnt,         // "Shop_click_cnt" (Fig. 2)
  kFeatBrandClickCnt,
  kFeatCatClickCnt,
  kFeatCatClickTimeDiff,
  kFeatUserActivity,
  kFeatUserPriceAffinity,
  kFeatPriceMatch,
  kFeatQueryCatMatch,
  kFeatUserBrandLoyalty,
  kFeatUserCatDiversity,
  kFeatTargetCtr,
  kFeatTargetCvr,
  kFeatHourOfDay,
  kFeatSessionLength,
  kFeatItemAge,
  kFeatReviewScore,
  kFeatIsPromoted,
  kNumNumericFeatures,
};

/// Human-readable feature names (index-aligned with NumericFeature).
const char* NumericFeatureName(int index);

/// User-group annotations used by Fig. 7 (t-SNE of gate outputs).
enum class UserGroup : int {
  kNewUser = 0,            // No historical behaviours at all.
  kOldWithoutTargetOrder,  // History, but never interacted with the target.
  kOldWithTargetOrder,     // Interacted with the target item before.
};

/// One impression (user, item, context): the atomic training/eval example.
/// Ids use 0 as the padding/unknown value; real ids start at 1.
struct Example {
  /// Number of dense side-info attributes carried per behaviour item and
  /// by the target (standardised price, popularity, review score).
  static constexpr int64_t kItemAttrs = 3;

  // --- User behaviour sequence, most recent first (unpadded). ---
  std::vector<int64_t> behavior_items;
  std::vector<int64_t> behavior_cats;
  std::vector<int64_t> behavior_brands;
  /// kItemAttrs values per behaviour item (price_z, popularity, review),
  /// flattened; may be empty, in which case zeros are assumed.
  std::vector<float> behavior_attrs;

  // --- Target item. ---
  int64_t target_item = 0;
  int64_t target_cat = 0;
  int64_t target_brand = 0;
  int64_t target_shop = 0;
  /// Side-info of the target item (same layout as behavior_attrs).
  float target_attrs[kItemAttrs] = {0.0f, 0.0f, 0.0f};

  // --- Query (0 in recommendation mode). ---
  int64_t query_id = 0;
  int64_t query_cat = 0;

  // --- User profile. ---
  int64_t user_id = 0;
  int64_t age_segment = 0;  // 0 young, 1 mid, 2 elderly.

  // --- Dense features (kNumNumericFeatures wide). ---
  std::vector<float> numeric;

  float label = 0.0f;
  int64_t session_id = 0;

  // --- Ground-truth annotations (never fed to models). ---
  int64_t latent_style = 0;     // Generator's latent interaction style.
  bool is_category_new = false;  // No history in the target category.
  int64_t history_len = 0;
  UserGroup user_group = UserGroup::kNewUser;
  /// Noiseless generator utility (oracle score); lets tests and benches
  /// measure the achievable ranking ceiling.
  double oracle_utility = 0.0;
};

/// Dataset-level vocabulary sizes and shapes the models need to build their
/// embedding tables. All vocab sizes include the padding id 0.
struct DatasetMeta {
  int64_t num_items = 0;
  int64_t num_cats = 0;
  int64_t num_brands = 0;
  int64_t num_shops = 0;
  int64_t num_queries = 0;
  int64_t num_age_segments = 3;
  int64_t numeric_dim = kNumNumericFeatures;
  int64_t max_seq_len = 10;
  /// True when there is no query and the gate network should receive the
  /// target item instead (paper §IV-A2, Amazon mode).
  bool recommendation_mode = false;
};

/// A padded, column-layout minibatch ready for model consumption.
/// Behaviour ids are stored row-major [size x seq_len]; position j of every
/// row is extracted with BehaviorColumn.
struct Batch {
  int64_t size = 0;
  int64_t seq_len = 0;

  std::vector<int64_t> behavior_items;   // size * seq_len, 0-padded.
  std::vector<int64_t> behavior_cats;
  std::vector<int64_t> behavior_brands;
  Matrix behavior_attrs;                 // [size, seq_len * kItemAttrs].
  Matrix behavior_mask;                  // [size, seq_len], 1 = real item.

  std::vector<int64_t> target_items;
  std::vector<int64_t> target_cats;
  std::vector<int64_t> target_brands;
  std::vector<int64_t> target_shops;
  Matrix target_attrs;  // [size, kItemAttrs].
  std::vector<int64_t> query_ids;
  std::vector<int64_t> query_cats;
  std::vector<int64_t> age_segments;

  Matrix numeric;  // [size, numeric_dim], standardised.
  Matrix labels;   // [size, 1].

  // Bookkeeping for evaluation / figures.
  std::vector<int64_t> session_ids;
  std::vector<int64_t> user_ids;
  std::vector<UserGroup> user_groups;

  /// Explicit slate boundaries for listwise consumers: first-row index
  /// of each slate, ascending from 0 (same contract as the
  /// `slate_starts` argument of Ranker::ScoreSlateInto). Filled by
  /// BatchIterator in group-by-session mode from its GROUP boundaries —
  /// authoritative where set, because groups need not coincide with
  /// session-id runs (an oversized session is split into sub-slates,
  /// and a dataset with non-contiguous duplicate session ids keeps each
  /// run a distinct slate even if shuffling lands two runs adjacent).
  /// Empty when the producer tracked no slates; consumers then fall
  /// back to deriving runs via SlateStartsFromBatch.
  std::vector<int64_t> slate_starts;

  /// Ids at sequence position `j` across the batch: [size] values.
  std::vector<int64_t> BehaviorColumn(const std::vector<int64_t>& field,
                                      int64_t j) const;

  /// Mask column j as a [size,1] matrix.
  Matrix MaskColumn(int64_t j) const;

  /// Side-info of sequence position `j`: [size, kItemAttrs].
  Matrix BehaviorAttrsColumn(int64_t j) const;
};

}  // namespace awmoe

#endif  // AWMOE_DATA_EXAMPLE_H_
