#ifndef AWMOE_DATA_STATS_H_
#define AWMOE_DATA_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/example.h"

namespace awmoe {

/// The Table I columns: corpus-level counts for one dataset split.
struct SplitStats {
  int64_t num_sessions = 0;
  int64_t num_users = 0;
  int64_t num_queries = 0;
  int64_t num_examples = 0;
  int64_t num_positives = 0;
  int64_t num_negatives = 0;
  /// "1 : ratio" positives to negatives.
  double neg_per_pos = 0.0;
  double examples_per_session = 0.0;
  double mean_history_len = 0.0;
};

/// Computes Table I statistics for a split.
SplitStats ComputeSplitStats(const std::vector<Example>& split);

/// Formats "1 : N" with one decimal as in Table I.
std::string FormatPosNegRatio(const SplitStats& stats);

}  // namespace awmoe

#endif  // AWMOE_DATA_STATS_H_
