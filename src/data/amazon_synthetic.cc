#include "data/amazon_synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.h"

namespace awmoe {

AmazonSyntheticGenerator::AmazonSyntheticGenerator(const AmazonConfig& config)
    : config_(config), rng_(config.seed) {
  AWMOE_CHECK(config.num_items >= config.num_categories * 2);
  AWMOE_CHECK(config.max_history >= 2);
}

void AmazonSyntheticGenerator::BuildCatalog() {
  items_.assign(static_cast<size_t>(config_.num_items) + 1, ItemInfo{});
  items_by_cat_.assign(static_cast<size_t>(config_.num_categories) + 1, {});
  weights_by_cat_.assign(static_cast<size_t>(config_.num_categories) + 1, {});
  global_weights_.assign(static_cast<size_t>(config_.num_items) + 1, 0.0);

  for (int64_t item = 1; item <= config_.num_items; ++item) {
    ItemInfo info;
    info.cat = rng_.UniformInt(config_.num_categories) + 1;
    info.brand = (info.cat - 1) * config_.brands_per_category +
                 rng_.UniformInt(config_.brands_per_category) + 1;
    info.shop = rng_.UniformInt(config_.num_shops) + 1;
    info.price_z = static_cast<float>(rng_.Normal());
    info.item_age = static_cast<float>(rng_.Uniform());
    info.promoted = rng_.Bernoulli(0.1);
    items_[static_cast<size_t>(item)] = info;
    items_by_cat_[static_cast<size_t>(info.cat)].push_back(item);
  }
  // Give empty categories one item each (steal from a random item).
  for (int64_t cat = 1; cat <= config_.num_categories; ++cat) {
    auto& members = items_by_cat_[static_cast<size_t>(cat)];
    while (members.size() < 2) {
      int64_t item = rng_.UniformInt(config_.num_items) + 1;
      auto& old_members =
          items_by_cat_[static_cast<size_t>(items_[item].cat)];
      if (old_members.size() <= 2) continue;
      old_members.erase(
          std::find(old_members.begin(), old_members.end(), item));
      items_[static_cast<size_t>(item)].cat = cat;
      items_[static_cast<size_t>(item)].brand =
          (cat - 1) * config_.brands_per_category +
          rng_.UniformInt(config_.brands_per_category) + 1;
      members.push_back(item);
    }
    for (size_t rank = 0; rank < members.size(); ++rank) {
      ItemInfo& info = items_[static_cast<size_t>(members[rank])];
      info.popularity = static_cast<float>(
          std::min(1.5, 1.0 / std::pow(static_cast<double>(rank) + 1.0, 0.7) *
                            std::exp(rng_.Normal(0.0, 0.2))));
      info.sales = std::min(
          1.5f, info.popularity *
                    static_cast<float>(std::exp(rng_.Normal(0.0, 0.25))));
      info.ctr = 0.4f * info.popularity +
                 static_cast<float>(rng_.Normal(0.05, 0.04));
      info.cvr = 0.6f * info.ctr + static_cast<float>(rng_.Normal(0.0, 0.03));
      info.review = static_cast<float>(
          1.0 / (1.0 + std::exp(-rng_.Normal(0.6, 1.0))));
    }
    auto& weights = weights_by_cat_[static_cast<size_t>(cat)];
    weights.resize(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      weights[i] = std::pow(
          std::max(1e-3, static_cast<double>(
                             items_[static_cast<size_t>(members[i])]
                                 .popularity)),
          0.7);
    }
  }
  for (int64_t item = 1; item <= config_.num_items; ++item) {
    global_weights_[static_cast<size_t>(item)] = std::pow(
        std::max(1e-3,
                 static_cast<double>(items_[static_cast<size_t>(item)]
                                         .popularity)),
        0.7);
  }
}

int64_t AmazonSyntheticGenerator::SampleFromCategory(int64_t cat) {
  const auto& members = items_by_cat_[static_cast<size_t>(cat)];
  return members[static_cast<size_t>(
      rng_.Categorical(weights_by_cat_[static_cast<size_t>(cat)]))];
}

std::vector<int64_t> AmazonSyntheticGenerator::GenerateSequence(
    int style, int64_t pref_cat, int64_t len) {
  std::vector<int64_t> seq;
  seq.reserve(static_cast<size_t>(len));
  seq.push_back(SampleFromCategory(pref_cat));
  // Style-dependent transition behaviour: how strongly the next review
  // follows the category/brand of the previous one.
  double p_same_cat, p_same_brand, p_pref;
  switch (style) {
    case 0:  // Category loyal.
      p_same_cat = 0.65; p_same_brand = 0.05; p_pref = 0.2;
      break;
    case 1:  // Brand loyal.
      p_same_cat = 0.15; p_same_brand = 0.5; p_pref = 0.2;
      break;
    case 2:  // Preference-anchored.
      p_same_cat = 0.15; p_same_brand = 0.05; p_pref = 0.6;
      break;
    default:  // Explorer: popularity-driven.
      p_same_cat = 0.15; p_same_brand = 0.05; p_pref = 0.1;
      break;
  }
  while (static_cast<int64_t>(seq.size()) < len) {
    const ItemInfo& prev = items_[static_cast<size_t>(seq.back())];
    double u = rng_.Uniform();
    int64_t next;
    if (u < p_same_cat) {
      next = SampleFromCategory(prev.cat);
    } else if (u < p_same_cat + p_same_brand) {
      // Same brand: pick among items of the previous brand.
      std::vector<int64_t> same_brand;
      for (int64_t item : items_by_cat_[static_cast<size_t>(prev.cat)]) {
        if (items_[static_cast<size_t>(item)].brand == prev.brand) {
          same_brand.push_back(item);
        }
      }
      next = same_brand.empty()
                 ? SampleFromCategory(prev.cat)
                 : same_brand[static_cast<size_t>(rng_.UniformInt(
                       static_cast<int64_t>(same_brand.size())))];
    } else if (u < p_same_cat + p_same_brand + p_pref) {
      next = SampleFromCategory(pref_cat);
    } else {
      next = static_cast<int64_t>(rng_.Categorical(global_weights_));
      if (next == 0) next = 1;
    }
    seq.push_back(next);
  }
  return seq;
}

Example AmazonSyntheticGenerator::MakeExample(
    int64_t user_id, int style, int64_t age_segment,
    const std::vector<int64_t>& history, int64_t target,
    int64_t session_id) const {
  const ItemInfo& info = items_[static_cast<size_t>(target)];
  Example ex;
  // History is chronological; models expect most-recent-first.
  for (auto it = history.rbegin(); it != history.rend(); ++it) {
    if (static_cast<int64_t>(ex.behavior_items.size()) >=
        config_.max_history) {
      break;
    }
    const ItemInfo& h = items_[static_cast<size_t>(*it)];
    ex.behavior_items.push_back(*it);
    ex.behavior_cats.push_back(h.cat);
    ex.behavior_brands.push_back(h.brand);
    ex.behavior_attrs.push_back(h.price_z);
    ex.behavior_attrs.push_back(h.popularity);
    ex.behavior_attrs.push_back(h.review);
  }
  ex.target_item = target;
  ex.target_cat = info.cat;
  ex.target_brand = info.brand;
  ex.target_shop = info.shop;
  ex.target_attrs[0] = info.price_z;
  ex.target_attrs[1] = info.popularity;
  ex.target_attrs[2] = info.review;
  ex.query_id = 0;  // Recommendation mode: no query.
  ex.query_cat = 0;
  ex.user_id = user_id;
  ex.age_segment = age_segment;
  ex.session_id = session_id;

  // Cross statistics against the (truncated) visible history.
  int item_cnt = 0, brand_cnt = 0, shop_cnt = 0, cat_cnt = 0;
  int brand_pos = -1, cat_pos = -1;
  float price_sum = 0.0f;
  std::set<int64_t> cats;
  std::vector<int64_t> brands;
  for (size_t j = 0; j < ex.behavior_items.size(); ++j) {
    const ItemInfo& h =
        items_[static_cast<size_t>(ex.behavior_items[j])];
    if (ex.behavior_items[j] == target) ++item_cnt;
    if (h.brand == info.brand) {
      ++brand_cnt;
      if (brand_pos < 0) brand_pos = static_cast<int>(j);
    }
    if (h.shop == info.shop) ++shop_cnt;
    if (h.cat == info.cat) {
      ++cat_cnt;
      if (cat_pos < 0) cat_pos = static_cast<int>(j);
    }
    price_sum += h.price_z;
    cats.insert(h.cat);
    brands.push_back(h.brand);
  }
  const float m = static_cast<float>(config_.max_history);
  const float hist_size = static_cast<float>(ex.behavior_items.size());
  float price_affinity = hist_size > 0 ? price_sum / hist_size : 0.0f;
  float loyalty = 0.0f, diversity = 0.0f;
  if (!brands.empty()) {
    std::sort(brands.begin(), brands.end());
    int best = 1, run = 1;
    for (size_t i = 1; i < brands.size(); ++i) {
      run = (brands[i] == brands[i - 1]) ? run + 1 : 1;
      best = std::max(best, run);
    }
    loyalty = static_cast<float>(best) / hist_size;
    diversity = static_cast<float>(cats.size()) / hist_size;
  }

  ex.numeric.assign(kNumNumericFeatures, 0.0f);
  ex.numeric[kFeatSales] = info.sales;
  ex.numeric[kFeatPopularity] = info.popularity;
  ex.numeric[kFeatPrice] = info.price_z;
  ex.numeric[kFeatItemClickCnt] = std::min(1.0f, item_cnt / 2.0f);
  ex.numeric[kFeatBrandClickTimeDiff] =
      brand_pos < 0 ? 1.0f : static_cast<float>(brand_pos) / m;
  ex.numeric[kFeatShopClickCnt] = std::min(1.0f, shop_cnt / 3.0f);
  ex.numeric[kFeatBrandClickCnt] = std::min(1.0f, brand_cnt / 3.0f);
  ex.numeric[kFeatCatClickCnt] = std::min(1.0f, cat_cnt / 4.0f);
  ex.numeric[kFeatCatClickTimeDiff] =
      cat_pos < 0 ? 1.0f : static_cast<float>(cat_pos) / m;
  ex.numeric[kFeatUserActivity] = hist_size / m;
  ex.numeric[kFeatUserPriceAffinity] = price_affinity;
  ex.numeric[kFeatPriceMatch] = -std::abs(info.price_z - price_affinity);
  ex.numeric[kFeatQueryCatMatch] = 1.0f;  // No query: trivially matched.
  ex.numeric[kFeatUserBrandLoyalty] = loyalty;
  ex.numeric[kFeatUserCatDiversity] = diversity;
  ex.numeric[kFeatTargetCtr] = info.ctr;
  ex.numeric[kFeatTargetCvr] = info.cvr;
  ex.numeric[kFeatHourOfDay] = 0.5f;
  ex.numeric[kFeatSessionLength] = 2.0f / 20.0f;
  ex.numeric[kFeatItemAge] = info.item_age;
  ex.numeric[kFeatReviewScore] = info.review;
  ex.numeric[kFeatIsPromoted] = info.promoted ? 1.0f : 0.0f;

  ex.latent_style = style;
  ex.is_category_new = (cat_cnt == 0);
  ex.history_len = static_cast<int64_t>(ex.behavior_items.size());
  if (ex.behavior_items.empty()) {
    ex.user_group = UserGroup::kNewUser;
  } else if (item_cnt > 0) {
    ex.user_group = UserGroup::kOldWithTargetOrder;
  } else {
    ex.user_group = UserGroup::kOldWithoutTargetOrder;
  }
  return ex;
}

AmazonDataset AmazonSyntheticGenerator::Generate() {
  BuildCatalog();

  AmazonDataset dataset;
  dataset.meta.num_items = config_.num_items + 1;
  dataset.meta.num_cats = config_.num_categories + 1;
  dataset.meta.num_brands =
      config_.num_categories * config_.brands_per_category + 1;
  dataset.meta.num_shops = config_.num_shops + 1;
  dataset.meta.num_queries = 1;  // No queries in recommendation mode.
  dataset.meta.max_seq_len = config_.max_history;
  dataset.meta.recommendation_mode = true;

  int64_t session_id = 0;
  for (int64_t u = 1; u <= config_.num_users; ++u) {
    int style = static_cast<int>(rng_.UniformInt(4));
    int64_t age_segment = rng_.Bernoulli(0.15) ? 2 : rng_.UniformInt(2);
    int64_t pref_cat = rng_.UniformInt(config_.num_categories) + 1;
    int64_t len = rng_.UniformInt(3, config_.max_history + 2);
    std::vector<int64_t> seq = GenerateSequence(style, pref_cat, len);

    int64_t target = seq.back();
    std::vector<int64_t> history(seq.begin(), seq.end() - 1);

    // Negative: popularity-weighted random item that differs from target.
    int64_t negative = target;
    int guard = 0;
    while (negative == target && guard++ < 100) {
      negative = static_cast<int64_t>(rng_.Categorical(global_weights_));
      if (negative == 0) negative = 1;
    }

    bool is_test = rng_.Bernoulli(config_.test_user_fraction);
    std::vector<Example>* out = is_test ? &dataset.test : &dataset.train;
    ++session_id;
    Example pos = MakeExample(u, style, age_segment, history, target,
                              session_id);
    pos.label = 1.0f;
    Example neg = MakeExample(u, style, age_segment, history, negative,
                              session_id);
    neg.label = 0.0f;
    out->push_back(std::move(pos));
    out->push_back(std::move(neg));
  }
  return dataset;
}

}  // namespace awmoe
