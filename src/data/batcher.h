#ifndef AWMOE_DATA_BATCHER_H_
#define AWMOE_DATA_BATCHER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/example.h"
#include "util/rng.h"

namespace awmoe {

/// Per-feature z-score normalisation fitted on the training split and
/// applied everywhere (constant features keep inv_std = 1 so they pass
/// through centred).
class Standardizer {
 public:
  Standardizer() = default;

  /// Estimates mean/std over `examples` (must be non-empty).
  void Fit(const std::vector<Example>& examples);

  /// True once Fit has been called.
  bool fitted() const { return !mean_.empty(); }

  /// z-scores one numeric vector.
  std::vector<float> Transform(const std::vector<float>& numeric) const;

  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& inv_std() const { return inv_std_; }

 private:
  std::vector<float> mean_;
  std::vector<float> inv_std_;
};

/// Collates examples into a padded Batch. `standardizer` may be null (raw
/// features).
Batch CollateBatch(const std::vector<const Example*>& examples,
                   const DatasetMeta& meta,
                   const Standardizer* standardizer);

/// Minibatch iterator over a dataset. With an Rng it reshuffles every
/// epoch; without, it iterates in order (evaluation).
class BatchIterator {
 public:
  /// `data` must outlive the iterator. `rng` null = sequential order.
  /// With `group_by_session` set, rows sharing a session_id (contiguous
  /// runs in `data`, which the generators emit) always travel together:
  /// each batch packs WHOLE sessions up to `batch_size` rows (a session
  /// larger than batch_size forms its own batch), and shuffling permutes
  /// sessions, not rows. Slate-scoring models (listwise rerankers) and
  /// the listwise loss require this — a slate split across batches would
  /// attend over a truncated candidate set. In grouping mode each
  /// emitted batch carries its group boundaries in `Batch::slate_starts`
  /// (the authoritative slate identity — see the field's comment).
  ///
  /// `max_group_rows` (grouping mode only; 0 = unlimited) caps one
  /// group's rows: a session run longer than the cap is SPLIT into
  /// consecutive sub-slates of at most `max_group_rows` rows instead of
  /// crashing the epoch. Listwise training passes the model's
  /// MaxSlateItems() so no slate ever exceeds the position table; the
  /// split costs only cross-sub-slate attention, never training rows.
  BatchIterator(const std::vector<Example>* data, const DatasetMeta& meta,
                int64_t batch_size, const Standardizer* standardizer,
                Rng* rng, bool group_by_session = false,
                int64_t max_group_rows = 0);

  /// Fills `out` with the next batch; returns false at epoch end (call
  /// Reset to start the next epoch).
  bool Next(Batch* out);

  /// Restarts the epoch (reshuffles when an Rng was supplied).
  void Reset();

  /// Batches the current epoch order yields (session packing depends on
  /// the shuffle, so with grouping this is per-epoch, not a constant).
  int64_t num_batches() const;

 private:
  const std::vector<Example>* data_;
  DatasetMeta meta_;
  int64_t batch_size_;
  const Standardizer* standardizer_;
  Rng* rng_;
  bool group_by_session_;
  /// [begin, end) row ranges of each session run (grouping mode only).
  std::vector<std::pair<int64_t, int64_t>> groups_;
  /// Indexes groups_ in grouping mode, rows otherwise.
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
};

}  // namespace awmoe

#endif  // AWMOE_DATA_BATCHER_H_
