#ifndef AWMOE_DATA_JD_SYNTHETIC_H_
#define AWMOE_DATA_JD_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "data/example.h"
#include "util/rng.h"

namespace awmoe {

/// Configuration of the synthetic JD-style search-log world. Defaults are
/// sized for single-core CPU training; the *structure* (not the scale)
/// is what reproduces the paper's phenomena (see DESIGN.md §1).
struct JdConfig {
  int64_t num_users = 8000;
  int64_t num_items = 4000;
  int64_t num_categories = 30;
  int64_t brands_per_category = 10;
  int64_t num_shops = 150;
  int64_t queries_per_category = 3;

  /// Maximum behaviour-sequence length M fed to models.
  int64_t max_history = 10;

  int64_t train_sessions = 15000;
  int64_t test_sessions = 1500;
  int64_t longtail1_sessions = 500;  // Users with very few behaviours.
  int64_t longtail2_sessions = 700;  // Elderly users.

  int64_t items_per_session = 12;

  /// Fraction of users with 0-3 historical behaviours (the long-tail).
  double longtail_user_fraction = 0.20;
  /// Fraction of users with no behaviours at all (Fig. 7 "new users").
  double new_user_fraction = 0.05;
  double elderly_fraction = 0.15;

  /// Label noise temperature: higher = noisier purchases.
  double purchase_temperature = 0.45;
  double utility_noise = 0.25;

  uint64_t seed = 20230608;  // Paper's arXiv date.
};

/// The generated corpus: balanced 1:1 train examples plus the three test
/// sets of Table I (all-impression labels).
struct JdDataset {
  DatasetMeta meta;
  std::vector<Example> train;
  std::vector<Example> full_test;
  std::vector<Example> longtail1_test;
  std::vector<Example> longtail2_test;
};

/// Simulates the JD e-commerce search world of §IV-A1:
///  - a catalog of items with category/brand/shop structure and
///    Zipf-distributed popularity;
///  - users carrying a latent interaction style (price-driven, brand-loyal,
///    quality-seeking, trend-following) plus category preferences, with
///    behaviour sequences emitted from that state;
///  - search sessions whose purchase labels come from a regime-switching
///    utility: *category-new* (user, category) pairs weight popularity
///    features, *category-old* pairs weight user-item cross features, and
///    the latent style modulates the weights. The regime is recoverable
///    from the behaviour sequence + query but NOT from the query alone,
///    which is exactly the structure AW-MoE's user-conditioned gate
///    exploits and a category-conditioned gate cannot.
class JdSyntheticGenerator {
 public:
  explicit JdSyntheticGenerator(const JdConfig& config);

  /// Generates the full dataset. Deterministic given config.seed.
  JdDataset Generate();

  /// Ground-truth utility weights used by the label model. Exposed so
  /// tests can verify the regime-switching structure directly.
  struct RegimeWeights {
    double alpha_category_new = 0.85;
    double alpha_category_old = 0.25;
  };
  static RegimeWeights regime_weights() { return RegimeWeights{}; }

 private:
  struct ItemInfo {
    int64_t cat = 0;
    int64_t brand = 0;
    int64_t shop = 0;
    float price_z = 0.0f;   // Standardised log-price within category.
    float quality = 0.0f;
    float popularity = 0.0f;  // In [0,1], Zipf-shaped within category.
    float sales = 0.0f;
    float ctr = 0.0f;
    float cvr = 0.0f;
    float review = 0.0f;
    float item_age = 0.0f;
    bool promoted = false;
  };

  struct UserInfo {
    int style = 0;          // Latent interaction style, 0..3.
    int age_segment = 0;    // 0 young, 1 mid, 2 elderly.
    std::vector<int64_t> pref_cats;
    std::vector<double> pref_cat_weights;
    std::vector<int64_t> pref_brands;
    float price_sensitivity = 0.7f;
    float price_pref = 0.0f;  // Preferred (standardised) price level.
    float brand_loyalty = 0.5f;
    std::vector<int64_t> history;  // Item ids, most recent first.
  };

  /// Observable user-item cross statistics shared by the feature encoder
  /// and the label model.
  struct CrossStats {
    float item_cnt_n = 0.0f;
    float shop_cnt_n = 0.0f;
    float brand_cnt_n = 0.0f;
    float brand_time_diff = 1.0f;  // 1 = never interacted / long ago.
    float cat_cnt_n = 0.0f;
    float cat_time_diff = 1.0f;
    float price_affinity = 0.0f;
    float price_match = 0.0f;  // 0 best, more negative = worse.
    float brand_loyalty_obs = 0.0f;
    float cat_diversity = 0.0f;
    bool cat_new = true;
  };

  CrossStats ComputeCross(const UserInfo& user, int64_t item) const;

  void BuildCatalog();
  void BuildUsers();
  void BuildUserHistory(UserInfo* user, int64_t target_len);

  /// Samples one item from `cat`, weighted by popularity^0.6, optionally
  /// biased towards the user's preferred brands / price range.
  int64_t SampleItemFromCategory(int64_t cat, const UserInfo* user);

  /// Ground-truth (noiseless) utility of showing `item` to `user` under
  /// query category `query_cat`. Label sampling adds Gaussian noise on
  /// top; the noiseless value is stored as Example::oracle_utility.
  double Utility(const UserInfo& user, int64_t item, int64_t query_cat) const;

  /// Fills Example::numeric and id fields for one impression.
  Example MakeExample(int64_t user_id, const UserInfo& user, int64_t item,
                      int64_t query_id, int64_t query_cat, float hour,
                      int64_t session_id) const;

  /// Generates one search session for `user_id`; appends labelled
  /// impressions to `out` (all impressions when `keep_all_impressions`,
  /// else positives + an equal number of sampled negatives).
  void GenerateSession(int64_t user_id, int64_t session_id,
                       bool keep_all_impressions, std::vector<Example>* out);

  // History-derived statistics for feature computation.
  int CountInHistory(const UserInfo& user, int64_t item) const;
  int CountCatInHistory(const UserInfo& user, int64_t cat) const;
  int CountBrandInHistory(const UserInfo& user, int64_t brand) const;
  int CountShopInHistory(const UserInfo& user, int64_t shop) const;
  /// Most recent position (0 = newest) of a brand/cat in history, or -1.
  int LastBrandPosition(const UserInfo& user, int64_t brand) const;
  int LastCatPosition(const UserInfo& user, int64_t cat) const;
  float UserPriceAffinity(const UserInfo& user) const;

  JdConfig config_;
  Rng rng_;
  std::vector<ItemInfo> items_;            // 1-based; [0] unused.
  std::vector<UserInfo> users_;            // 1-based; [0] unused.
  std::vector<std::vector<int64_t>> items_by_cat_;  // cat -> item ids.
  std::vector<std::vector<double>> item_weights_by_cat_;
};

}  // namespace awmoe

#endif  // AWMOE_DATA_JD_SYNTHETIC_H_
