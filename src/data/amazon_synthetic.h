#ifndef AWMOE_DATA_AMAZON_SYNTHETIC_H_
#define AWMOE_DATA_AMAZON_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "data/example.h"
#include "util/rng.h"

namespace awmoe {

/// Configuration of the synthetic Amazon-review-style recommendation
/// corpus (paper §IV-A2): per-user chronological review sequences, task =
/// rank the user's true last item above one sampled negative.
struct AmazonConfig {
  int64_t num_users = 12000;
  int64_t num_items = 3000;
  int64_t num_categories = 25;
  int64_t brands_per_category = 8;
  int64_t num_shops = 100;
  int64_t max_history = 10;
  /// Fraction of users held out as the test set (paper: 10%).
  double test_user_fraction = 0.10;
  uint64_t seed = 1992015;
};

struct AmazonDataset {
  DatasetMeta meta;
  std::vector<Example> train;
  std::vector<Example> test;
};

/// Simulates sequential review behaviour: users chain reviews with strong
/// category/brand continuity whose strength depends on a latent user style,
/// so predicting the next review rewards models that (a) read the sequence
/// and (b) adapt their feature weighting per user — the same structure the
/// recommendation-mode AW-MoE (gate fed with the target item) exploits.
class AmazonSyntheticGenerator {
 public:
  explicit AmazonSyntheticGenerator(const AmazonConfig& config);

  AmazonDataset Generate();

 private:
  struct ItemInfo {
    int64_t cat = 0;
    int64_t brand = 0;
    int64_t shop = 0;
    float price_z = 0.0f;
    float popularity = 0.0f;
    float sales = 0.0f;
    float ctr = 0.0f;
    float cvr = 0.0f;
    float review = 0.0f;
    float item_age = 0.0f;
    bool promoted = false;
  };

  void BuildCatalog();
  int64_t SampleFromCategory(int64_t cat);
  /// Generates one user's chronological review sequence.
  std::vector<int64_t> GenerateSequence(int style, int64_t pref_cat,
                                        int64_t len);
  Example MakeExample(int64_t user_id, int style, int64_t age_segment,
                      const std::vector<int64_t>& history, int64_t target,
                      int64_t session_id) const;

  AmazonConfig config_;
  Rng rng_;
  std::vector<ItemInfo> items_;
  std::vector<std::vector<int64_t>> items_by_cat_;
  std::vector<std::vector<double>> weights_by_cat_;
  std::vector<double> global_weights_;
};

}  // namespace awmoe

#endif  // AWMOE_DATA_AMAZON_SYNTHETIC_H_
