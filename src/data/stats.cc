#include "data/stats.h"

#include <set>

#include "util/string_util.h"

namespace awmoe {

SplitStats ComputeSplitStats(const std::vector<Example>& split) {
  SplitStats stats;
  std::set<int64_t> sessions, users, queries;
  double hist_total = 0.0;
  for (const Example& ex : split) {
    sessions.insert(ex.session_id);
    users.insert(ex.user_id);
    queries.insert(ex.query_id);
    ++stats.num_examples;
    if (ex.label > 0.5f) {
      ++stats.num_positives;
    } else {
      ++stats.num_negatives;
    }
    hist_total += static_cast<double>(ex.history_len);
  }
  stats.num_sessions = static_cast<int64_t>(sessions.size());
  stats.num_users = static_cast<int64_t>(users.size());
  stats.num_queries = static_cast<int64_t>(queries.size());
  if (stats.num_positives > 0) {
    stats.neg_per_pos = static_cast<double>(stats.num_negatives) /
                        static_cast<double>(stats.num_positives);
  }
  if (stats.num_sessions > 0) {
    stats.examples_per_session =
        static_cast<double>(stats.num_examples) /
        static_cast<double>(stats.num_sessions);
  }
  if (stats.num_examples > 0) {
    stats.mean_history_len = hist_total / stats.num_examples;
  }
  return stats;
}

std::string FormatPosNegRatio(const SplitStats& stats) {
  return StrFormat("1 : %.1f", stats.neg_per_pos);
}

}  // namespace awmoe
