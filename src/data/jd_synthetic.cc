#include "data/jd_synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "util/check.h"

namespace awmoe {

namespace {

float SigmoidD(double x) {
  return static_cast<float>(1.0 / (1.0 + std::exp(-x)));
}

}  // namespace

JdSyntheticGenerator::JdSyntheticGenerator(const JdConfig& config)
    : config_(config), rng_(config.seed) {
  AWMOE_CHECK(config.num_categories > 1);
  AWMOE_CHECK(config.num_items >= config.num_categories);
  AWMOE_CHECK(config.max_history >= 1);
  AWMOE_CHECK(config.items_per_session >= 2);
}

void JdSyntheticGenerator::BuildCatalog() {
  const int64_t c = config_.num_categories;
  items_.assign(static_cast<size_t>(config_.num_items) + 1, ItemInfo{});
  items_by_cat_.assign(static_cast<size_t>(c) + 1, {});
  item_weights_by_cat_.assign(static_cast<size_t>(c) + 1, {});

  // Categories have Zipf-distributed sizes so some are big and generic.
  ZipfDistribution cat_sizes(c, 0.4);
  for (int64_t item = 1; item <= config_.num_items; ++item) {
    ItemInfo info;
    info.cat = cat_sizes.Sample(&rng_) + 1;
    // Brand pool is partitioned by category so a brand implies a category.
    int64_t brand_in_cat = rng_.UniformInt(config_.brands_per_category);
    info.brand = (info.cat - 1) * config_.brands_per_category + brand_in_cat + 1;
    info.shop = rng_.UniformInt(config_.num_shops) + 1;
    info.price_z = static_cast<float>(rng_.Normal());
    info.quality = static_cast<float>(rng_.Normal());
    info.item_age = static_cast<float>(rng_.Uniform());
    info.promoted = rng_.Bernoulli(0.15);
    items_[static_cast<size_t>(item)] = info;
    items_by_cat_[static_cast<size_t>(info.cat)].push_back(item);
  }

  // Popularity: Zipf within category by assignment order, then noise.
  for (int64_t cat = 1; cat <= c; ++cat) {
    auto& members = items_by_cat_[static_cast<size_t>(cat)];
    // Guarantee every category has at least 2 items (move from biggest).
    while (members.size() < 2) {
      int64_t biggest = 1;
      for (int64_t k = 1; k <= c; ++k) {
        if (items_by_cat_[static_cast<size_t>(k)].size() >
            items_by_cat_[static_cast<size_t>(biggest)].size()) {
          biggest = k;
        }
      }
      int64_t moved = items_by_cat_[static_cast<size_t>(biggest)].back();
      items_by_cat_[static_cast<size_t>(biggest)].pop_back();
      ItemInfo& info = items_[static_cast<size_t>(moved)];
      info.cat = cat;
      int64_t brand_in_cat = rng_.UniformInt(config_.brands_per_category);
      info.brand = (cat - 1) * config_.brands_per_category + brand_in_cat + 1;
      members.push_back(moved);
    }
    const double n = static_cast<double>(members.size());
    for (size_t rank = 0; rank < members.size(); ++rank) {
      ItemInfo& info = items_[static_cast<size_t>(members[rank])];
      // popularity in (0,1], heavier head for low ranks.
      double base = 1.0 / std::pow(static_cast<double>(rank) + 1.0, 0.8);
      double ceiling = 1.0;  // rank 0.
      info.popularity = static_cast<float>(base / ceiling *
                                           std::exp(rng_.Normal(0.0, 0.15)));
      info.popularity = std::min(info.popularity, 1.5f);
      info.sales = std::min(
          1.5f, info.popularity * static_cast<float>(
                                      std::exp(rng_.Normal(0.0, 0.25))));
      info.ctr = 0.45f * info.popularity + 0.35f * SigmoidD(info.quality) +
                 static_cast<float>(rng_.Normal(0.0, 0.05));
      info.cvr = 0.6f * info.ctr + static_cast<float>(rng_.Normal(0.0, 0.04));
      info.review = SigmoidD(1.2 * info.quality + rng_.Normal(0.0, 0.3));
      (void)n;
    }
    // Sampling weights: popularity^0.6.
    auto& weights = item_weights_by_cat_[static_cast<size_t>(cat)];
    weights.resize(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      weights[i] = std::pow(
          std::max(1e-3, static_cast<double>(
                             items_[static_cast<size_t>(members[i])]
                                 .popularity)),
          0.6);
    }
  }
}

void JdSyntheticGenerator::BuildUsers() {
  users_.assign(static_cast<size_t>(config_.num_users) + 1, UserInfo{});
  for (int64_t u = 1; u <= config_.num_users; ++u) {
    UserInfo user;
    user.style = static_cast<int>(rng_.UniformInt(4));
    bool elderly = rng_.Bernoulli(config_.elderly_fraction);
    user.age_segment = elderly ? 2 : static_cast<int>(rng_.UniformInt(2));

    // Preferred categories: elderly users are narrower.
    int64_t num_prefs = elderly ? rng_.UniformInt(1, 3) : rng_.UniformInt(2, 5);
    auto cats = rng_.SampleWithoutReplacement(config_.num_categories,
                                              num_prefs);
    for (int64_t cat0 : cats) {
      user.pref_cats.push_back(cat0 + 1);
      user.pref_cat_weights.push_back(rng_.Uniform(0.5, 1.5));
    }
    // Preferred brands live inside preferred categories.
    for (int64_t cat : user.pref_cats) {
      int64_t brand_in_cat = rng_.UniformInt(config_.brands_per_category);
      user.pref_brands.push_back((cat - 1) * config_.brands_per_category +
                                 brand_in_cat + 1);
    }

    user.price_pref = static_cast<float>(rng_.Normal());
    user.price_sensitivity =
        static_cast<float>(rng_.Uniform(0.3, 1.2)) *
        (user.style == 0 ? 1.6f : 1.0f);
    user.brand_loyalty = static_cast<float>(rng_.Uniform(0.2, 0.8)) *
                         (user.style == 1 ? 1.25f : 1.0f);
    if (elderly) user.brand_loyalty = std::min(1.0f, user.brand_loyalty + 0.15f);

    // History length: new users have none; long-tail 1-3; elderly shorter.
    int64_t hist_len;
    if (rng_.Bernoulli(config_.new_user_fraction)) {
      hist_len = 0;
    } else if (rng_.Bernoulli(config_.longtail_user_fraction)) {
      hist_len = rng_.UniformInt(1, 4);
    } else {
      hist_len = rng_.UniformInt(4, config_.max_history + 1);
    }
    if (elderly && hist_len > 2) hist_len = 1 + hist_len / 2;

    BuildUserHistory(&user, hist_len);
    users_[static_cast<size_t>(u)] = std::move(user);
  }
}

int64_t JdSyntheticGenerator::SampleItemFromCategory(int64_t cat,
                                                     const UserInfo* user) {
  const auto& members = items_by_cat_[static_cast<size_t>(cat)];
  const auto& base_weights = item_weights_by_cat_[static_cast<size_t>(cat)];
  AWMOE_CHECK(!members.empty()) << "empty category " << cat;
  if (user == nullptr) {
    return members[static_cast<size_t>(rng_.Categorical(base_weights))];
  }
  // Bias towards the user's preferred brands and price level.
  std::vector<double> weights(base_weights);
  for (size_t i = 0; i < members.size(); ++i) {
    const ItemInfo& info = items_[static_cast<size_t>(members[i])];
    double w = weights[i];
    w *= std::exp(-0.5 * user->price_sensitivity *
                  std::abs(info.price_z - user->price_pref));
    for (int64_t brand : user->pref_brands) {
      if (brand == info.brand) {
        w *= 1.0 + 3.0 * user->brand_loyalty;
        break;
      }
    }
    if (user->style == 2) {
      // Quality seekers browse high-review items.
      w *= 0.3 + static_cast<double>(info.review);
    }
    if (user->style == 3) {
      // Trend followers browse popular items, so their history signals
      // the style to the gate network.
      w *= 0.3 + static_cast<double>(info.popularity);
    }
    weights[i] = w;
  }
  return members[static_cast<size_t>(rng_.Categorical(weights))];
}

void JdSyntheticGenerator::BuildUserHistory(UserInfo* user,
                                            int64_t target_len) {
  user->history.clear();
  for (int64_t t = 0; t < target_len; ++t) {
    int64_t cat;
    if (!user->pref_cats.empty() && rng_.Bernoulli(0.75)) {
      cat = user->pref_cats[static_cast<size_t>(
          rng_.Categorical(user->pref_cat_weights))];
    } else {
      cat = rng_.UniformInt(config_.num_categories) + 1;
    }
    user->history.push_back(SampleItemFromCategory(cat, user));
  }
}

int JdSyntheticGenerator::CountInHistory(const UserInfo& user,
                                         int64_t item) const {
  int count = 0;
  for (int64_t h : user.history) count += (h == item) ? 1 : 0;
  return count;
}

int JdSyntheticGenerator::CountCatInHistory(const UserInfo& user,
                                            int64_t cat) const {
  int count = 0;
  for (int64_t h : user.history) {
    count += (items_[static_cast<size_t>(h)].cat == cat) ? 1 : 0;
  }
  return count;
}

int JdSyntheticGenerator::CountBrandInHistory(const UserInfo& user,
                                              int64_t brand) const {
  int count = 0;
  for (int64_t h : user.history) {
    count += (items_[static_cast<size_t>(h)].brand == brand) ? 1 : 0;
  }
  return count;
}

int JdSyntheticGenerator::CountShopInHistory(const UserInfo& user,
                                             int64_t shop) const {
  int count = 0;
  for (int64_t h : user.history) {
    count += (items_[static_cast<size_t>(h)].shop == shop) ? 1 : 0;
  }
  return count;
}

int JdSyntheticGenerator::LastBrandPosition(const UserInfo& user,
                                            int64_t brand) const {
  for (size_t j = 0; j < user.history.size(); ++j) {
    if (items_[static_cast<size_t>(user.history[j])].brand == brand) {
      return static_cast<int>(j);
    }
  }
  return -1;
}

int JdSyntheticGenerator::LastCatPosition(const UserInfo& user,
                                          int64_t cat) const {
  for (size_t j = 0; j < user.history.size(); ++j) {
    if (items_[static_cast<size_t>(user.history[j])].cat == cat) {
      return static_cast<int>(j);
    }
  }
  return -1;
}

float JdSyntheticGenerator::UserPriceAffinity(const UserInfo& user) const {
  // Observable proxy: mean price of the three most recent behaviours only,
  // so the feature is a *noisy* estimate of the latent price preference —
  // models that read the whole sequence can estimate it better.
  if (user.history.empty()) return 0.0f;
  const size_t window = std::min<size_t>(3, user.history.size());
  float total = 0.0f;
  for (size_t j = 0; j < window; ++j) {
    total += items_[static_cast<size_t>(user.history[j])].price_z;
  }
  return total / static_cast<float>(window);
}

JdSyntheticGenerator::CrossStats JdSyntheticGenerator::ComputeCross(
    const UserInfo& user, int64_t item) const {
  const ItemInfo& info = items_[static_cast<size_t>(item)];
  CrossStats s;
  const float m = static_cast<float>(config_.max_history);

  s.item_cnt_n = std::min(1.0f, CountInHistory(user, item) / 2.0f);
  s.shop_cnt_n = std::min(1.0f, CountShopInHistory(user, info.shop) / 3.0f);
  s.brand_cnt_n = std::min(1.0f, CountBrandInHistory(user, info.brand) / 3.0f);

  int brand_pos = LastBrandPosition(user, info.brand);
  s.brand_time_diff =
      brand_pos < 0 ? 1.0f : static_cast<float>(brand_pos) / m;
  int cat_count = CountCatInHistory(user, info.cat);
  s.cat_cnt_n = std::min(1.0f, cat_count / 4.0f);
  int cat_pos = LastCatPosition(user, info.cat);
  s.cat_time_diff = cat_pos < 0 ? 1.0f : static_cast<float>(cat_pos) / m;

  s.price_affinity = UserPriceAffinity(user);
  s.price_match = -std::abs(info.price_z - s.price_affinity);

  // Observable brand loyalty: largest brand share in history.
  if (!user.history.empty()) {
    std::vector<int64_t> brands;
    brands.reserve(user.history.size());
    for (int64_t h : user.history) {
      brands.push_back(items_[static_cast<size_t>(h)].brand);
    }
    std::sort(brands.begin(), brands.end());
    int best = 1, run = 1;
    for (size_t i = 1; i < brands.size(); ++i) {
      run = (brands[i] == brands[i - 1]) ? run + 1 : 1;
      best = std::max(best, run);
    }
    s.brand_loyalty_obs =
        static_cast<float>(best) / static_cast<float>(user.history.size());
    std::set<int64_t> cats;
    for (int64_t h : user.history) {
      cats.insert(items_[static_cast<size_t>(h)].cat);
    }
    s.cat_diversity = static_cast<float>(cats.size()) /
                      static_cast<float>(user.history.size());
  }
  s.cat_new = (cat_count == 0);
  return s;
}

double JdSyntheticGenerator::Utility(const UserInfo& user, int64_t item,
                                     int64_t query_cat) const {
  (void)query_cat;
  const ItemInfo& info = items_[static_cast<size_t>(item)];
  CrossStats s = ComputeCross(user, item);

  // Style-conditional regime weights. The signs and magnitudes flip with
  // the latent style, which is only recoverable from the behaviour
  // sequence (price level, brand concentration, review/popularity mix of
  // the history items) — exactly the structure a user-gated MoE captures
  // and a single shared FFN must burn capacity approximating.
  double price_coef;        // Acts on the target's standardised price.
  switch (user.style) {
    case 0: price_coef = -1.8; break;  // Bargain hunters: cheap wins.
    case 2: price_coef = +0.8; break;  // Quality seekers accept premium.
    default: price_coef = -0.4; break;
  }
  const double style_brand = user.style == 1 ? 2.5 : 0.7;
  const double style_quality = user.style == 2 ? 2.0 : 0.4;
  const double style_pop = user.style == 3 ? 1.8 : 1.0;
  const double style_price_match = user.style == 0 ? 2.0 : 0.6;

  // Popularity regime: what a user without category experience responds to
  // (Fig. 2, "category new" bars).
  double pop_term = style_pop * (0.9 * info.sales + 0.7 * info.popularity +
                                 0.5 * info.ctr) +
                    price_coef * info.price_z +
                    0.2 * (info.promoted ? 1.0 : 0.0);

  // Recency-weighted sequence-target affinities: these depend on *where*
  // in the sequence matching items sit, information the scalar count/
  // time-diff features only coarsely summarise — sequence-attention
  // models (DIN, the AW-MoE gate) can recover it exactly.
  double rec_brand = 0.0, rec_cat = 0.0, decay = 1.0;
  for (int64_t h : user.history) {
    const ItemInfo& hist = items_[static_cast<size_t>(h)];
    if (hist.brand == info.brand) rec_brand += decay;
    if (hist.cat == info.cat) rec_cat += decay;
    decay *= 0.75;
  }

  // Latent price match: uses the user's true price preference, of which
  // the observable price-affinity feature is only a 3-item-window proxy.
  const double latent_price_match =
      -std::abs(static_cast<double>(info.price_z) - user.price_pref);

  // Preference regime: cross features dominate for experienced users
  // (Fig. 2, "category old" bars).
  double pref_term = 1.1 * style_brand * s.brand_cnt_n +
                     0.8 * s.shop_cnt_n + 0.9 * s.item_cnt_n +
                     style_price_match * latent_price_match +
                     style_quality * info.review +
                     1.2 * style_brand * rec_brand + 0.8 * rec_cat +
                     0.4 * (1.0 - s.cat_time_diff) -
                     0.5 * style_brand * s.brand_time_diff +
                     0.4 * price_coef * info.price_z;

  RegimeWeights w = regime_weights();
  double alpha = s.cat_new ? w.alpha_category_new : w.alpha_category_old;
  // Trend followers behave like category-new users even with history.
  if (user.style == 3) alpha = std::max(alpha, 0.6);
  // Category type shifts the regime too: "standardised" categories are
  // popularity-driven, "personal" categories are preference-driven. This
  // component is visible from the query category alone — the slice of the
  // regime structure Category-MoE [34] can exploit.
  switch (info.cat % 3) {
    case 0:
      alpha = std::min(1.0, alpha + 0.25);
      break;
    case 2:
      alpha = std::max(0.0, alpha - 0.2);
      break;
    default:
      break;
  }

  return alpha * pop_term + (1.0 - alpha) * pref_term;
}

Example JdSyntheticGenerator::MakeExample(int64_t user_id,
                                          const UserInfo& user, int64_t item,
                                          int64_t query_id, int64_t query_cat,
                                          float hour,
                                          int64_t session_id) const {
  const ItemInfo& info = items_[static_cast<size_t>(item)];
  CrossStats s = ComputeCross(user, item);

  Example ex;
  for (size_t j = 0;
       j < user.history.size() &&
       j < static_cast<size_t>(config_.max_history);
       ++j) {
    int64_t h = user.history[j];
    const ItemInfo& hist_info = items_[static_cast<size_t>(h)];
    ex.behavior_items.push_back(h);
    ex.behavior_cats.push_back(hist_info.cat);
    ex.behavior_brands.push_back(hist_info.brand);
    ex.behavior_attrs.push_back(hist_info.price_z);
    ex.behavior_attrs.push_back(hist_info.popularity);
    ex.behavior_attrs.push_back(hist_info.review);
  }
  ex.target_item = item;
  ex.target_cat = info.cat;
  ex.target_brand = info.brand;
  ex.target_shop = info.shop;
  ex.target_attrs[0] = info.price_z;
  ex.target_attrs[1] = info.popularity;
  ex.target_attrs[2] = info.review;
  ex.query_id = query_id;
  ex.query_cat = query_cat;
  ex.user_id = user_id;
  ex.age_segment = user.age_segment;
  ex.session_id = session_id;

  ex.numeric.assign(kNumNumericFeatures, 0.0f);
  ex.numeric[kFeatSales] = info.sales;
  ex.numeric[kFeatPopularity] = info.popularity;
  ex.numeric[kFeatPrice] = info.price_z;
  ex.numeric[kFeatItemClickCnt] = s.item_cnt_n;
  ex.numeric[kFeatBrandClickTimeDiff] = s.brand_time_diff;
  ex.numeric[kFeatShopClickCnt] = s.shop_cnt_n;
  ex.numeric[kFeatBrandClickCnt] = s.brand_cnt_n;
  ex.numeric[kFeatCatClickCnt] = s.cat_cnt_n;
  ex.numeric[kFeatCatClickTimeDiff] = s.cat_time_diff;
  ex.numeric[kFeatUserActivity] =
      static_cast<float>(user.history.size()) /
      static_cast<float>(config_.max_history);
  ex.numeric[kFeatUserPriceAffinity] = s.price_affinity;
  ex.numeric[kFeatPriceMatch] = s.price_match;
  ex.numeric[kFeatQueryCatMatch] = (info.cat == query_cat) ? 1.0f : 0.0f;
  ex.numeric[kFeatUserBrandLoyalty] = s.brand_loyalty_obs;
  ex.numeric[kFeatUserCatDiversity] = s.cat_diversity;
  ex.numeric[kFeatTargetCtr] = info.ctr;
  ex.numeric[kFeatTargetCvr] = info.cvr;
  ex.numeric[kFeatHourOfDay] = hour;
  ex.numeric[kFeatSessionLength] =
      static_cast<float>(config_.items_per_session) / 20.0f;
  ex.numeric[kFeatItemAge] = info.item_age;
  ex.numeric[kFeatReviewScore] = info.review;
  ex.numeric[kFeatIsPromoted] = info.promoted ? 1.0f : 0.0f;

  ex.latent_style = user.style;
  ex.is_category_new = s.cat_new;
  ex.history_len = static_cast<int64_t>(user.history.size());
  if (user.history.empty()) {
    ex.user_group = UserGroup::kNewUser;
  } else if (s.item_cnt_n > 0.0f) {
    ex.user_group = UserGroup::kOldWithTargetOrder;
  } else {
    ex.user_group = UserGroup::kOldWithoutTargetOrder;
  }
  return ex;
}

void JdSyntheticGenerator::GenerateSession(int64_t user_id,
                                           int64_t session_id,
                                           bool keep_all_impressions,
                                           std::vector<Example>* out) {
  const UserInfo& user = users_[static_cast<size_t>(user_id)];

  // Query category: usually one of the user's preferred categories so that
  // category-old impressions are common, otherwise random exploration.
  int64_t query_cat;
  if (!user.pref_cats.empty() && rng_.Bernoulli(0.6)) {
    query_cat = user.pref_cats[static_cast<size_t>(
        rng_.Categorical(user.pref_cat_weights))];
  } else {
    query_cat = rng_.UniformInt(config_.num_categories) + 1;
  }
  int64_t query_id = (query_cat - 1) * config_.queries_per_category +
                     rng_.UniformInt(config_.queries_per_category) + 1;
  float hour = static_cast<float>(rng_.Uniform());

  // Candidates: mostly in-category, some from an adjacent category.
  std::vector<int64_t> candidates;
  std::unordered_set<int64_t> seen;
  int guard = 0;
  while (static_cast<int64_t>(candidates.size()) <
             config_.items_per_session &&
         guard++ < config_.items_per_session * 30) {
    int64_t cat = query_cat;
    if (rng_.Bernoulli(0.2)) {
      cat = 1 + (query_cat - 1 + rng_.UniformInt(1, 3)) %
                    config_.num_categories;
    }
    int64_t item = SampleItemFromCategory(cat, nullptr);
    if (seen.insert(item).second) candidates.push_back(item);
  }
  if (candidates.size() < 2) return;

  // Ground-truth utilities and purchase sampling (softmax over session).
  std::vector<double> utilities(candidates.size());
  std::vector<double> noisy(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    utilities[i] = Utility(user, candidates[i], query_cat);
    noisy[i] = utilities[i] + rng_.Normal(0.0, config_.utility_noise);
  }
  std::vector<double> probs(candidates.size());
  double max_u = *std::max_element(noisy.begin(), noisy.end());
  for (size_t i = 0; i < candidates.size(); ++i) {
    probs[i] = std::exp((noisy[i] - max_u) / config_.purchase_temperature);
  }
  std::set<size_t> purchased;
  purchased.insert(static_cast<size_t>(rng_.Categorical(probs)));
  if (rng_.Bernoulli(0.2)) {
    // Occasional second purchase.
    std::vector<double> rest = probs;
    rest[*purchased.begin()] = 0.0;
    purchased.insert(static_cast<size_t>(rng_.Categorical(rest)));
  }

  auto emit = [&](size_t idx, float label) {
    Example ex = MakeExample(user_id, user, candidates[idx], query_id,
                             query_cat, hour, session_id);
    ex.label = label;
    ex.oracle_utility = utilities[idx];
    out->push_back(std::move(ex));
  };

  if (keep_all_impressions) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      emit(i, purchased.count(i) ? 1.0f : 0.0f);
    }
    return;
  }

  // Training mode: positives plus an equal number of sampled negatives
  // (paper §IV-A1, 1:1 ratio).
  std::vector<size_t> negatives;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!purchased.count(i)) negatives.push_back(i);
  }
  Rng shuffle_rng = rng_.Fork();
  shuffle_rng.Shuffle(&negatives);
  size_t num_neg = std::min(purchased.size(), negatives.size());
  for (size_t idx : purchased) emit(idx, 1.0f);
  for (size_t i = 0; i < num_neg; ++i) emit(negatives[i], 0.0f);
}

JdDataset JdSyntheticGenerator::Generate() {
  BuildCatalog();
  BuildUsers();

  JdDataset dataset;
  dataset.meta.num_items = config_.num_items + 1;
  dataset.meta.num_cats = config_.num_categories + 1;
  dataset.meta.num_brands =
      config_.num_categories * config_.brands_per_category + 1;
  dataset.meta.num_shops = config_.num_shops + 1;
  dataset.meta.num_queries =
      config_.num_categories * config_.queries_per_category + 1;
  dataset.meta.max_seq_len = config_.max_history;
  dataset.meta.recommendation_mode = false;

  int64_t session_id = 0;

  for (int64_t s = 0; s < config_.train_sessions; ++s) {
    int64_t user = rng_.UniformInt(config_.num_users) + 1;
    GenerateSession(user, ++session_id, /*keep_all_impressions=*/false,
                    &dataset.train);
  }
  for (int64_t s = 0; s < config_.test_sessions; ++s) {
    int64_t user = rng_.UniformInt(config_.num_users) + 1;
    GenerateSession(user, ++session_id, /*keep_all_impressions=*/true,
                    &dataset.full_test);
  }

  // Long-tail test 1: users with at most 3 behaviours.
  std::vector<int64_t> longtail_users;
  std::vector<int64_t> elderly_users;
  for (int64_t u = 1; u <= config_.num_users; ++u) {
    if (users_[static_cast<size_t>(u)].history.size() <= 3) {
      longtail_users.push_back(u);
    }
    if (users_[static_cast<size_t>(u)].age_segment == 2) {
      elderly_users.push_back(u);
    }
  }
  AWMOE_CHECK(!longtail_users.empty()) << "no long-tail users generated";
  AWMOE_CHECK(!elderly_users.empty()) << "no elderly users generated";
  for (int64_t s = 0; s < config_.longtail1_sessions; ++s) {
    int64_t user = longtail_users[static_cast<size_t>(
        rng_.UniformInt(static_cast<int64_t>(longtail_users.size())))];
    GenerateSession(user, ++session_id, /*keep_all_impressions=*/true,
                    &dataset.longtail1_test);
  }
  for (int64_t s = 0; s < config_.longtail2_sessions; ++s) {
    int64_t user = elderly_users[static_cast<size_t>(
        rng_.UniformInt(static_cast<int64_t>(elderly_users.size())))];
    GenerateSession(user, ++session_id, /*keep_all_impressions=*/true,
                    &dataset.longtail2_test);
  }
  return dataset;
}

}  // namespace awmoe
