#include "data/batcher.h"

#include <cmath>

#include "util/check.h"

namespace awmoe {

void Standardizer::Fit(const std::vector<Example>& examples) {
  AWMOE_CHECK(!examples.empty()) << "Standardizer::Fit on empty dataset";
  const size_t dim = examples[0].numeric.size();
  std::vector<double> sum(dim, 0.0), sum_sq(dim, 0.0);
  for (const Example& ex : examples) {
    AWMOE_CHECK(ex.numeric.size() == dim) << "inconsistent numeric width";
    for (size_t j = 0; j < dim; ++j) {
      sum[j] += ex.numeric[j];
      sum_sq[j] += static_cast<double>(ex.numeric[j]) * ex.numeric[j];
    }
  }
  const double n = static_cast<double>(examples.size());
  mean_.resize(dim);
  inv_std_.resize(dim);
  for (size_t j = 0; j < dim; ++j) {
    double mean = sum[j] / n;
    double var = std::max(0.0, sum_sq[j] / n - mean * mean);
    double stddev = std::sqrt(var);
    mean_[j] = static_cast<float>(mean);
    inv_std_[j] = stddev > 1e-6 ? static_cast<float>(1.0 / stddev) : 1.0f;
  }
}

std::vector<float> Standardizer::Transform(
    const std::vector<float>& numeric) const {
  AWMOE_CHECK(fitted()) << "Standardizer used before Fit";
  AWMOE_CHECK(numeric.size() == mean_.size())
      << "numeric width " << numeric.size() << " vs " << mean_.size();
  std::vector<float> out(numeric.size());
  for (size_t j = 0; j < numeric.size(); ++j) {
    out[j] = (numeric[j] - mean_[j]) * inv_std_[j];
  }
  return out;
}

Batch CollateBatch(const std::vector<const Example*>& examples,
                   const DatasetMeta& meta,
                   const Standardizer* standardizer) {
  AWMOE_CHECK(!examples.empty()) << "CollateBatch on empty slice";
  const int64_t b = static_cast<int64_t>(examples.size());
  const int64_t m = meta.max_seq_len;

  Batch batch;
  batch.size = b;
  batch.seq_len = m;
  batch.behavior_items.assign(static_cast<size_t>(b * m), 0);
  batch.behavior_cats.assign(static_cast<size_t>(b * m), 0);
  batch.behavior_brands.assign(static_cast<size_t>(b * m), 0);
  batch.behavior_attrs = Matrix(b, m * Example::kItemAttrs);
  batch.target_attrs = Matrix(b, Example::kItemAttrs);
  batch.behavior_mask = Matrix(b, m);
  batch.numeric = Matrix(b, meta.numeric_dim);
  batch.labels = Matrix(b, 1);

  batch.target_items.reserve(b);
  batch.target_cats.reserve(b);
  batch.target_brands.reserve(b);
  batch.target_shops.reserve(b);
  batch.query_ids.reserve(b);
  batch.query_cats.reserve(b);
  batch.age_segments.reserve(b);
  batch.session_ids.reserve(b);
  batch.user_ids.reserve(b);
  batch.user_groups.reserve(b);

  for (int64_t i = 0; i < b; ++i) {
    const Example& ex = *examples[static_cast<size_t>(i)];
    const int64_t len =
        std::min<int64_t>(static_cast<int64_t>(ex.behavior_items.size()), m);
    const bool has_attrs = !ex.behavior_attrs.empty();
    if (has_attrs) {
      AWMOE_CHECK(ex.behavior_attrs.size() ==
                  ex.behavior_items.size() * Example::kItemAttrs)
          << "behavior_attrs size " << ex.behavior_attrs.size() << " for "
          << ex.behavior_items.size() << " behaviours";
    }
    for (int64_t j = 0; j < len; ++j) {
      batch.behavior_items[static_cast<size_t>(i * m + j)] =
          ex.behavior_items[static_cast<size_t>(j)];
      batch.behavior_cats[static_cast<size_t>(i * m + j)] =
          ex.behavior_cats[static_cast<size_t>(j)];
      batch.behavior_brands[static_cast<size_t>(i * m + j)] =
          ex.behavior_brands[static_cast<size_t>(j)];
      batch.behavior_mask(i, j) = 1.0f;
      if (has_attrs) {
        for (int64_t c = 0; c < Example::kItemAttrs; ++c) {
          batch.behavior_attrs(i, j * Example::kItemAttrs + c) =
              ex.behavior_attrs[static_cast<size_t>(j * Example::kItemAttrs +
                                                    c)];
        }
      }
    }
    for (int64_t c = 0; c < Example::kItemAttrs; ++c) {
      batch.target_attrs(i, c) = ex.target_attrs[c];
    }
    batch.target_items.push_back(ex.target_item);
    batch.target_cats.push_back(ex.target_cat);
    batch.target_brands.push_back(ex.target_brand);
    batch.target_shops.push_back(ex.target_shop);
    batch.query_ids.push_back(ex.query_id);
    batch.query_cats.push_back(ex.query_cat);
    batch.age_segments.push_back(ex.age_segment);
    batch.session_ids.push_back(ex.session_id);
    batch.user_ids.push_back(ex.user_id);
    batch.user_groups.push_back(ex.user_group);
    batch.labels(i, 0) = ex.label;

    std::vector<float> numeric = standardizer != nullptr
                                     ? standardizer->Transform(ex.numeric)
                                     : ex.numeric;
    AWMOE_CHECK(static_cast<int64_t>(numeric.size()) == meta.numeric_dim)
        << "numeric width " << numeric.size() << " vs " << meta.numeric_dim;
    for (int64_t j = 0; j < meta.numeric_dim; ++j) {
      batch.numeric(i, j) = numeric[static_cast<size_t>(j)];
    }
  }
  return batch;
}

BatchIterator::BatchIterator(const std::vector<Example>* data,
                             const DatasetMeta& meta, int64_t batch_size,
                             const Standardizer* standardizer, Rng* rng,
                             bool group_by_session, int64_t max_group_rows)
    : data_(data),
      meta_(meta),
      batch_size_(batch_size),
      standardizer_(standardizer),
      rng_(rng),
      group_by_session_(group_by_session) {
  AWMOE_CHECK(batch_size_ > 0) << "batch_size=" << batch_size_;
  AWMOE_CHECK(max_group_rows >= 0) << "max_group_rows=" << max_group_rows;
  AWMOE_CHECK(data_ != nullptr);
  if (group_by_session_) {
    const int64_t n = static_cast<int64_t>(data_->size());
    int64_t begin = 0;
    for (int64_t i = 1; i <= n; ++i) {
      if (i == n ||
          (*data_)[static_cast<size_t>(i)].session_id !=
              (*data_)[static_cast<size_t>(i - 1)].session_id) {
        // A run longer than max_group_rows becomes consecutive chunk
        // groups of at most that many rows: each chunk is its own slate
        // (Next emits group boundaries as Batch::slate_starts), so a
        // long session trains as sub-slates instead of aborting on the
        // model's slate-length cap.
        while (max_group_rows > 0 && i - begin > max_group_rows) {
          groups_.emplace_back(begin, begin + max_group_rows);
          begin += max_group_rows;
        }
        groups_.emplace_back(begin, i);
        begin = i;
      }
    }
    order_.resize(groups_.size());
  } else {
    order_.resize(data_->size());
  }
  for (size_t i = 0; i < order_.size(); ++i) {
    order_[i] = static_cast<int64_t>(i);
  }
  Reset();
}

void BatchIterator::Reset() {
  cursor_ = 0;
  if (rng_ != nullptr) rng_->Shuffle(&order_);
}

int64_t BatchIterator::num_batches() const {
  if (!group_by_session_) {
    return (static_cast<int64_t>(data_->size()) + batch_size_ - 1) /
           batch_size_;
  }
  // Replay the packing over the current epoch order.
  int64_t batches = 0;
  int64_t rows = 0;
  for (int64_t group : order_) {
    const int64_t len = groups_[static_cast<size_t>(group)].second -
                        groups_[static_cast<size_t>(group)].first;
    if (rows > 0 && rows + len > batch_size_) {
      ++batches;
      rows = 0;
    }
    rows += len;
  }
  if (rows > 0) ++batches;
  return batches;
}

bool BatchIterator::Next(Batch* out) {
  const int64_t total =
      group_by_session_ ? static_cast<int64_t>(order_.size())
                        : static_cast<int64_t>(data_->size());
  if (cursor_ >= total) return false;
  std::vector<const Example*> slice;
  std::vector<int64_t> slate_starts;
  if (group_by_session_) {
    // Pack whole groups until the next one would overflow batch_size
    // (the first group of a batch always fits by fiat, so a group
    // larger than batch_size still gets served — as its own batch).
    // Group boundaries are recorded as the batch's slate starts: slate
    // identity comes from the GROUPING, not from comparing adjacent
    // session ids, so two chunks of one split oversized session — or
    // two non-contiguous runs of a duplicated session id — stay
    // distinct slates even when the shuffle lands them adjacent.
    int64_t i = cursor_;
    int64_t rows = 0;
    while (i < total) {
      const auto& group = groups_[static_cast<size_t>(order_[i])];
      const int64_t len = group.second - group.first;
      if (rows > 0 && rows + len > batch_size_) break;
      slate_starts.push_back(rows);
      for (int64_t r = group.first; r < group.second; ++r) {
        slice.push_back(&(*data_)[static_cast<size_t>(r)]);
      }
      rows += len;
      ++i;
    }
    cursor_ = i;
  } else {
    const int64_t end = std::min(cursor_ + batch_size_, total);
    slice.reserve(static_cast<size_t>(end - cursor_));
    for (int64_t i = cursor_; i < end; ++i) {
      slice.push_back(&(*data_)[static_cast<size_t>(order_[i])]);
    }
    cursor_ = end;
  }
  *out = CollateBatch(slice, meta_, standardizer_);
  out->slate_starts = std::move(slate_starts);
  return true;
}

}  // namespace awmoe
