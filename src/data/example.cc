#include "data/example.h"

#include "util/check.h"

namespace awmoe {

const char* NumericFeatureName(int index) {
  static const char* kNames[kNumNumericFeatures] = {
      "Sales",
      "Popularity",
      "Price",
      "Item_click_cnt",
      "Brand_click_time_diff",
      "Shop_click_cnt",
      "Brand_click_cnt",
      "Cat_click_cnt",
      "Cat_click_time_diff",
      "User_activity",
      "User_price_affinity",
      "Price_match",
      "Query_cat_match",
      "User_brand_loyalty",
      "User_cat_diversity",
      "Target_ctr",
      "Target_cvr",
      "Hour_of_day",
      "Session_length",
      "Item_age",
      "Review_score",
      "Is_promoted",
  };
  AWMOE_CHECK(index >= 0 && index < kNumNumericFeatures)
      << "feature index " << index;
  return kNames[index];
}

std::vector<int64_t> Batch::BehaviorColumn(const std::vector<int64_t>& field,
                                           int64_t j) const {
  AWMOE_CHECK(j >= 0 && j < seq_len) << "position " << j << " of " << seq_len;
  AWMOE_CHECK(static_cast<int64_t>(field.size()) == size * seq_len)
      << "field size " << field.size() << " vs " << size * seq_len;
  std::vector<int64_t> column(static_cast<size_t>(size));
  for (int64_t i = 0; i < size; ++i) {
    column[static_cast<size_t>(i)] = field[static_cast<size_t>(i * seq_len + j)];
  }
  return column;
}

Matrix Batch::MaskColumn(int64_t j) const {
  AWMOE_CHECK(j >= 0 && j < seq_len) << "position " << j << " of " << seq_len;
  Matrix column(size, 1);
  for (int64_t i = 0; i < size; ++i) column(i, 0) = behavior_mask(i, j);
  return column;
}

Matrix Batch::BehaviorAttrsColumn(int64_t j) const {
  AWMOE_CHECK(j >= 0 && j < seq_len) << "position " << j << " of " << seq_len;
  const int64_t a = Example::kItemAttrs;
  Matrix column(size, a);
  for (int64_t i = 0; i < size; ++i) {
    for (int64_t c = 0; c < a; ++c) {
      column(i, c) = behavior_attrs(i, j * a + c);
    }
  }
  return column;
}

}  // namespace awmoe
