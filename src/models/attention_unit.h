#ifndef AWMOE_MODELS_ATTENTION_UNIT_H_
#define AWMOE_MODELS_ATTENTION_UNIT_H_

#include <cstdint>
#include <vector>

#include "nn/mlp.h"
#include "nn/module.h"
#include "util/rng.h"

namespace awmoe {

/// The activation unit of Fig. 4a: scores how much one behaviour item
/// matters given a reference (target item in the input network, query in
/// the gate network). Input is concat(h_user, h_ref, h_user * h_ref) — the
/// "product" path in the figure — through an MLP ending in a single linear
/// unit. Scores are unnormalised (DIN-style), so callers mask padded
/// positions instead of softmaxing.
class AttentionUnit : public Module {
 public:
  /// `hidden_dim` is the width of both inputs; `mlp_dims` are the hidden
  /// layers (the paper uses 32x16), with a final scalar appended.
  AttentionUnit(int64_t hidden_dim, std::vector<int64_t> mlp_dims, Rng* rng);

  /// h_user, h_ref: [B, hidden_dim] -> attention scores [B, 1].
  Var Forward(const Var& h_user, const Var& h_ref) const;

  /// Graph-free Forward into a caller buffer [B, 1] (bitwise-identical
  /// to Forward, zero allocation from a warmed arena).
  void InferInto(const ConstMatView& h_user, const ConstMatView& h_ref,
                 InferenceArena* arena, MatView out) const;

  void CollectParameters(std::vector<Var>* params) const override;

 private:
  int64_t hidden_dim_;
  Mlp mlp_;
};

}  // namespace awmoe

#endif  // AWMOE_MODELS_ATTENTION_UNIT_H_
