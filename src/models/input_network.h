#ifndef AWMOE_MODELS_INPUT_NETWORK_H_
#define AWMOE_MODELS_INPUT_NETWORK_H_

#include <cstdint>
#include <vector>

#include "data/example.h"
#include "models/attention_unit.h"
#include "models/embedding_set.h"
#include "models/model_dims.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "util/rng.h"

namespace awmoe {

/// How the user representation v^I_u is pooled from the behaviour sequence.
enum class UserPooling {
  kSumPool,    // YouTube-DNN style (baseline "DNN", [1]).
  kAttention,  // DIN-style activation-unit weighting (Eq. 3, [2]).
};

/// The input network of Fig. 3b: embeds every feature type, runs the
/// per-type tower MLPs (Eq. 2), pools the behaviour sequence into the user
/// vector (Eq. 3), and concatenates the impression representation (Eq. 4):
///   v_imp = v_u || h_t || h_q || h_o
/// In recommendation mode the query tower is dropped (no query exists).
class InputNetwork : public Module {
 public:
  /// `embeddings` is shared with the gate network and not owned.
  InputNetwork(const DatasetMeta& meta, const ModelDims& dims,
               const EmbeddingSet* embeddings, UserPooling pooling,
               Rng* rng);

  /// Impression representation [B, output_dim()].
  Var Forward(const Batch& batch) const;

  /// Graph-free Forward into a caller [B, output_dim()] view
  /// (bitwise-identical to Forward, zero allocation once the arena is
  /// warm): each tower writes its slice of v_imp directly, and the
  /// behaviour loop reads sequence positions straight out of the
  /// Batch's padded layout instead of materialising column vectors.
  void InferInto(const Batch& batch, InferenceArena* arena,
                 MatView out) const;

  /// Materialises the candidate-INDEPENDENT half of the forward pass
  /// into a cacheable blob `out` [B, session_encoding_dim()] (the
  /// session feature store payload):
  ///   kAttention:  h_b(0) | ... | h_b(max_seq_len-1) [| h_query]
  ///   kSumPool:    v_user [| h_query]
  /// With attention pooling the per-position behaviour-tower outputs
  /// h_bj (§III-C attention inputs) are cacheable but the pooled v_user
  /// is NOT — the activation unit reads the candidate's h_target — so
  /// the blob carries the positions; with sum pooling v_user itself is
  /// candidate-independent. Each block is computed by the exact fused-
  /// path op sequence and copied out, so replaying it through
  /// InferWithSessionInto reproduces InferInto bit for bit.
  void EncodeSessionInto(const Batch& batch, InferenceArena* arena,
                         MatView out) const;

  /// InferInto, but with the candidate-independent blocks replayed from
  /// `encoding` (an EncodeSessionInto blob, [B, session_encoding_dim()]
  /// view; stride 0 broadcasts one cached session row) instead of
  /// recomputed: only the candidate-dependent tail (target tower,
  /// attention weighting + pooling, other tower) runs. Cached rows are
  /// first copied into arena storage, so every kernel still reads
  /// aligned arena views. Bitwise-identical to InferInto.
  void InferWithSessionInto(const Batch& batch, const ConstMatView& encoding,
                            InferenceArena* arena, MatView out) const;

  /// Width of the impression vector v_imp.
  int64_t output_dim() const;

  /// Width of one EncodeSessionInto row. The padded sequence length is
  /// snapshot-constant (CollateBatch always pads to meta.max_seq_len),
  /// so this is too.
  int64_t session_encoding_dim() const;

  void CollectParameters(std::vector<Var>* params) const override;

 private:
  /// Shared body of InferInto (encoding == nullptr: compute everything)
  /// and InferWithSessionInto (replay the candidate-independent blocks
  /// from the blob). One implementation, so the two paths cannot drift.
  void InferCore(const Batch& batch, const ConstMatView* encoding,
                 InferenceArena* arena, MatView out) const;

  DatasetMeta meta_;
  ModelDims dims_;
  const EmbeddingSet* embeddings_;
  UserPooling pooling_;
  Mlp item_tower_;   // MLP^I for behaviour items and the target item.
  Mlp query_tower_;  // MLP^I for the query (unused in recommendation mode).
  Mlp other_tower_;  // MLP^I for profile + numeric features.
  AttentionUnit activation_unit_;  // Phi^I (only used with kAttention).
};

}  // namespace awmoe

#endif  // AWMOE_MODELS_INPUT_NETWORK_H_
