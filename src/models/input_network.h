#ifndef AWMOE_MODELS_INPUT_NETWORK_H_
#define AWMOE_MODELS_INPUT_NETWORK_H_

#include <cstdint>
#include <vector>

#include "data/example.h"
#include "models/attention_unit.h"
#include "models/embedding_set.h"
#include "models/model_dims.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "util/rng.h"

namespace awmoe {

/// How the user representation v^I_u is pooled from the behaviour sequence.
enum class UserPooling {
  kSumPool,    // YouTube-DNN style (baseline "DNN", [1]).
  kAttention,  // DIN-style activation-unit weighting (Eq. 3, [2]).
};

/// The input network of Fig. 3b: embeds every feature type, runs the
/// per-type tower MLPs (Eq. 2), pools the behaviour sequence into the user
/// vector (Eq. 3), and concatenates the impression representation (Eq. 4):
///   v_imp = v_u || h_t || h_q || h_o
/// In recommendation mode the query tower is dropped (no query exists).
class InputNetwork : public Module {
 public:
  /// `embeddings` is shared with the gate network and not owned.
  InputNetwork(const DatasetMeta& meta, const ModelDims& dims,
               const EmbeddingSet* embeddings, UserPooling pooling,
               Rng* rng);

  /// Impression representation [B, output_dim()].
  Var Forward(const Batch& batch) const;

  /// Graph-free Forward into a caller [B, output_dim()] view
  /// (bitwise-identical to Forward, zero allocation once the arena is
  /// warm): each tower writes its slice of v_imp directly, and the
  /// behaviour loop reads sequence positions straight out of the
  /// Batch's padded layout instead of materialising column vectors.
  void InferInto(const Batch& batch, InferenceArena* arena,
                 MatView out) const;

  /// Width of the impression vector v_imp.
  int64_t output_dim() const;

  void CollectParameters(std::vector<Var>* params) const override;

 private:
  DatasetMeta meta_;
  ModelDims dims_;
  const EmbeddingSet* embeddings_;
  UserPooling pooling_;
  Mlp item_tower_;   // MLP^I for behaviour items and the target item.
  Mlp query_tower_;  // MLP^I for the query (unused in recommendation mode).
  Mlp other_tower_;  // MLP^I for profile + numeric features.
  AttentionUnit activation_unit_;  // Phi^I (only used with kAttention).
};

}  // namespace awmoe

#endif  // AWMOE_MODELS_INPUT_NETWORK_H_
