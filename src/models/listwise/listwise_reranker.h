#ifndef AWMOE_MODELS_LISTWISE_LISTWISE_RERANKER_H_
#define AWMOE_MODELS_LISTWISE_LISTWISE_RERANKER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "models/embedding_set.h"
#include "models/input_network.h"
#include "models/model_dims.h"
#include "models/ranker.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace awmoe {

/// Shape of the listwise self-attention encoder (Pobrotyn et al.,
/// "Context-Aware Learning to Rank with Self-Attention"; see
/// docs/reranking.md). Deliberately small: the reranker runs over top-K
/// slates, not the full retrieval set.
struct ListwiseDims {
  /// Width of the per-candidate slate token (the projected input-network
  /// output). Must be divisible by num_heads.
  int64_t d_model = 16;
  int64_t num_heads = 2;
  /// Encoder blocks (attention + position-wise FFN, both residual).
  int64_t num_layers = 1;
  /// Hidden dims of each block's position-wise FFN (output is d_model).
  std::vector<int64_t> ffn_hidden = {32};
  /// Hidden dims of the scoring head (output is the scalar logit).
  std::vector<int64_t> head_hidden = {16};
  /// Hard cap on one slate's length (position-embedding table size).
  int64_t max_slate_len = 64;
};

/// Derives slate boundaries from a batch's per-row session ids: one
/// slate per contiguous run of equal session_id, in batch order.
/// Appends each run's first row index to `starts` (cleared first;
/// capacity is reused, so a warmed vector allocates nothing). An empty
/// batch yields an empty vector. FALLBACK ONLY: when the batch carries
/// explicit `Batch::slate_starts` (the grouping BatchIterator always
/// sets them), those are authoritative — run derivation cannot tell
/// apart two adjacent slates that happen to share a session id (a
/// split oversized session, or non-contiguous duplicate ids the
/// shuffle made adjacent) and would silently merge them.
void SlateStartsFromBatch(const Batch& batch, std::vector<int64_t>* starts);

/// The listwise context-aware reranker (ROADMAP item 4): scores every
/// candidate of a slate JOINTLY through multi-head self-attention over
/// the slate, so a candidate's logit depends on what it competes with
/// and where. Architecture:
///
///   input network (shared AW-MoE pieces, sum pooling) -> proj to
///   d_model -> + learned position embedding (slate rank) ->
///   num_layers x [multi-head self-attention (slate-masked) + residual;
///   position-wise FFN + residual] -> scoring head -> logit.
///
/// No LayerNorm (a documented deviation from Pobrotyn et al.: the repo's
/// kernel set is layer-norm-free and the small d_model trains fine
/// without it). Attention is strictly slate-local: the graph path masks
/// a block-diagonal [B,B] score matrix (exact zeros off-block), the
/// workspace path runs each slate's [len,len] core independently —
/// bitwise-equal at the reference kernel tier, and a slate's scores are
/// independent of micro-batch composition at every tier (the attention
/// core is always the scalar slate-local kernels; the row-wise linear
/// layers are batch-composition-independent in both tiers by the PR 7
/// contract).
class ListwiseReranker : public Ranker {
 public:
  ListwiseReranker(const DatasetMeta& meta, const ModelDims& dims,
                   const ListwiseDims& ldims, Rng* rng);

  Var ForwardLogits(const Batch& batch) override;
  std::vector<Var> Parameters() const override;
  std::string name() const override { return "Listwise-Attn"; }
  std::unique_ptr<Ranker> Clone() const override;

  bool SupportsSlateScoring() const override { return true; }
  int64_t MaxSlateItems() const override { return ldims_.max_slate_len; }
  void ScoreSlateInto(const Batch& batch,
                      std::span<const int64_t> slate_starts,
                      InferenceWorkspace* workspace,
                      std::span<float> out) override;

  /// Pointwise-API compatibility: derives slate boundaries from the
  /// batch's session-id runs and forwards to ScoreSlateInto. Callers
  /// that control slate composition (the serving engine, the two-stage
  /// pipeline) should pass explicit starts instead.
  void ScoreInto(const Batch& batch, const SessionGate* gate,
                 InferenceWorkspace* workspace,
                 std::span<float> out) override;

  const ListwiseDims& listwise_dims() const { return ldims_; }

 private:
  int64_t head_dim() const { return ldims_.d_model / ldims_.num_heads; }

  /// One encoder block's parameters.
  struct EncoderLayer {
    Linear wq;
    Linear wk;
    Linear wv;
    Linear wo;
    Mlp ffn;
  };

  DatasetMeta meta_;
  ModelDims dims_;
  ListwiseDims ldims_;
  EmbeddingSet embeddings_;
  InputNetwork input_network_;
  Linear proj_;
  Var pos_table_;  // [max_slate_len, d_model] learned position rows.
  std::vector<EncoderLayer> layers_;
  Mlp head_;
};

}  // namespace awmoe

#endif  // AWMOE_MODELS_LISTWISE_LISTWISE_RERANKER_H_
