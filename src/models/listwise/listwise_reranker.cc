#include "models/listwise/listwise_reranker.h"

#include <cmath>
#include <utility>

#include "autograd/ops.h"
#include "nn/init.h"
#include "util/check.h"

namespace awmoe {

namespace {

/// End of slate `s` given the starts and the batch size.
int64_t SlateEnd(std::span<const int64_t> starts, size_t s, int64_t size) {
  return s + 1 < starts.size() ? starts[s + 1] : size;
}

void CheckSlateStarts(std::span<const int64_t> starts, int64_t batch_size,
                      int64_t max_slate_len) {
  AWMOE_CHECK(!starts.empty() && starts[0] == 0)
      << "slate_starts must begin at row 0";
  for (size_t s = 0; s < starts.size(); ++s) {
    if (s > 0) {
      AWMOE_CHECK(starts[s] > starts[s - 1] && starts[s] < batch_size)
          << "slate_starts must be ascending and < batch size; got "
          << starts[s];
    }
    const int64_t len = SlateEnd(starts, s, batch_size) - starts[s];
    AWMOE_CHECK(len <= max_slate_len)
        << "slate of " << len << " rows exceeds max_slate_len "
        << max_slate_len;
  }
}

std::vector<int64_t> WithOutputDim(const std::vector<int64_t>& hidden,
                                   int64_t out_dim) {
  std::vector<int64_t> dims = hidden;
  dims.push_back(out_dim);
  return dims;
}

}  // namespace

void SlateStartsFromBatch(const Batch& batch, std::vector<int64_t>* starts) {
  starts->clear();
  for (int64_t r = 0; r < batch.size; ++r) {
    if (r == 0 || batch.session_ids[r] != batch.session_ids[r - 1]) {
      starts->push_back(r);
    }
  }
}

ListwiseReranker::ListwiseReranker(const DatasetMeta& meta,
                                   const ModelDims& dims,
                                   const ListwiseDims& ldims, Rng* rng)
    : meta_(meta),
      dims_(dims),
      ldims_(ldims),
      embeddings_(meta, dims.emb_dim, rng),
      input_network_(meta, dims, &embeddings_, UserPooling::kSumPool, rng),
      proj_(input_network_.output_dim(), ldims.d_model, rng),
      pos_table_(NormalInit(ldims.max_slate_len, ldims.d_model, 0.1f, rng),
                 /*requires_grad=*/true),
      head_(ldims.d_model, WithOutputDim(ldims.head_hidden, 1), rng) {
  AWMOE_CHECK(ldims_.d_model > 0 && ldims_.num_heads > 0 &&
              ldims_.d_model % ldims_.num_heads == 0)
      << "ListwiseReranker: d_model " << ldims_.d_model
      << " must be divisible by num_heads " << ldims_.num_heads;
  AWMOE_CHECK(ldims_.num_layers >= 1)
      << "ListwiseReranker: num_layers " << ldims_.num_layers;
  AWMOE_CHECK(ldims_.max_slate_len >= 1)
      << "ListwiseReranker: max_slate_len " << ldims_.max_slate_len;
  const int64_t d = ldims_.d_model;
  layers_.reserve(static_cast<size_t>(ldims_.num_layers));
  for (int64_t l = 0; l < ldims_.num_layers; ++l) {
    layers_.push_back(EncoderLayer{
        Linear(d, d, rng), Linear(d, d, rng), Linear(d, d, rng),
        Linear(d, d, rng), Mlp(d, WithOutputDim(ldims_.ffn_hidden, d), rng)});
  }
}

Var ListwiseReranker::ForwardLogits(const Batch& batch) {
  AWMOE_CHECK(batch.size > 0) << "ForwardLogits on empty batch";
  // Slate identity: the batch's explicit group boundaries when the
  // producer tracked them (the grouping BatchIterator sets them, with
  // oversized sessions pre-split to the slate cap), else derived from
  // contiguous session-id runs.
  std::vector<int64_t> derived;
  if (batch.slate_starts.empty()) SlateStartsFromBatch(batch, &derived);
  const std::vector<int64_t>& starts =
      batch.slate_starts.empty() ? derived : batch.slate_starts;
  CheckSlateStarts(starts, batch.size, ldims_.max_slate_len);

  // Per-row slate rank + the block-diagonal attention mask (exact 0/1;
  // the masked softmax writes exact zeros off-block, so the graph's
  // full-batch attention matches the workspace's per-slate blocks
  // bitwise — the zero-skipping MatMul never touches off-block terms).
  std::vector<int64_t> positions(static_cast<size_t>(batch.size));
  Matrix mask(batch.size, batch.size);
  for (size_t s = 0; s < starts.size(); ++s) {
    const int64_t begin = starts[s];
    const int64_t end = SlateEnd(starts, s, batch.size);
    for (int64_t r = begin; r < end; ++r) {
      positions[static_cast<size_t>(r)] = r - begin;
      float* mrow = mask.row(r);
      for (int64_t c = begin; c < end; ++c) mrow[c] = 1.0f;
    }
  }

  Var x = proj_.Forward(input_network_.Forward(batch));
  x = ag::Add(x, ag::GatherRows(pos_table_, positions));

  const int64_t dh = head_dim();
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));
  for (const EncoderLayer& layer : layers_) {
    Var q = layer.wq.Forward(x);
    Var k = layer.wk.Forward(x);
    Var v = layer.wv.Forward(x);
    std::vector<Var> heads;
    heads.reserve(static_cast<size_t>(ldims_.num_heads));
    for (int64_t h = 0; h < ldims_.num_heads; ++h) {
      Var qh = ag::SliceCols(q, h * dh, (h + 1) * dh);
      Var kh = ag::SliceCols(k, h * dh, (h + 1) * dh);
      Var vh = ag::SliceCols(v, h * dh, (h + 1) * dh);
      Var scores = ag::Scale(ag::MatMulNT(qh, kh), inv_sqrt);
      Var probs = ag::MaskedSoftmaxRows(scores, mask);
      heads.push_back(ag::MatMul(probs, vh));
    }
    Var ctx = ldims_.num_heads == 1 ? heads[0] : ag::ConcatCols(heads);
    x = ag::Add(layer.wo.Forward(ctx), x);
    x = ag::Add(layer.ffn.Forward(x), x);
  }
  return head_.Forward(x);
}

void ListwiseReranker::ScoreSlateInto(const Batch& batch,
                                      std::span<const int64_t> slate_starts,
                                      InferenceWorkspace* workspace,
                                      std::span<float> out) {
  CheckScoreIntoArgs(batch, workspace, out.size());
  CheckSlateStarts(slate_starts, batch.size, ldims_.max_slate_len);

  InferenceArena* arena = workspace->arena();
  arena->Reset();
  const int64_t B = batch.size;
  const int64_t d = ldims_.d_model;
  const int64_t dh = head_dim();
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));

  MatView enc = arena->Alloc(B, input_network_.output_dim());
  input_network_.InferInto(batch, arena, enc);
  MatView x = arena->Alloc(B, d);
  proj_.InferInto(enc, x);

  // + position rows (slate rank): same elementwise add as the graph's
  // Add(x, GatherRows(pos_table, positions)), block by block.
  const Matrix& pos = pos_table_.value();
  for (size_t s = 0; s < slate_starts.size(); ++s) {
    const int64_t begin = slate_starts[s];
    const int64_t len = SlateEnd(slate_starts, s, B) - begin;
    AddInPlace(MatView{x.row(begin), len, d, x.stride},
               ConstMatView(pos.data(), len, d, pos.cols()));
  }

  for (const EncoderLayer& layer : layers_) {
    MatView q = arena->Alloc(B, d);
    MatView k = arena->Alloc(B, d);
    MatView v = arena->Alloc(B, d);
    MatView ctx = arena->Alloc(B, d);
    layer.wq.InferInto(x, q);
    layer.wk.InferInto(x, k);
    layer.wv.InferInto(x, v);
    // The slate-local attention core. Strictly scalar kernels in exactly
    // the graph path's arithmetic order — see the class comment for why
    // this is the bitwise + composition-independence linchpin.
    for (size_t s = 0; s < slate_starts.size(); ++s) {
      const int64_t begin = slate_starts[s];
      const int64_t len = SlateEnd(slate_starts, s, B) - begin;
      for (int64_t h = 0; h < ldims_.num_heads; ++h) {
        const size_t mark = arena->Mark();
        MatView scores = arena->Alloc(len, len);
        const ConstMatView qb(q.row(begin) + h * dh, len, dh, q.stride);
        const ConstMatView kb(k.row(begin) + h * dh, len, dh, k.stride);
        const ConstMatView vb(v.row(begin) + h * dh, len, dh, v.stride);
        MatMulNTViewInto(qb, kb, scores);
        ScaleInPlace(scores, inv_sqrt);
        SoftmaxRowsInPlace(scores);
        MatMulViewInto(scores, vb,
                       MatView{ctx.row(begin) + h * dh, len, dh, ctx.stride});
        arena->Rewind(mark);
      }
    }
    MatView attn = arena->Alloc(B, d);
    layer.wo.InferInto(ctx, attn);
    AddInPlace(attn, x);  // Residual: attn + x, operand order as the graph.
    x = attn;
    MatView ffn_out = arena->Alloc(B, d);
    layer.ffn.InferInto(x, arena, ffn_out);
    AddInPlace(ffn_out, x);
    x = ffn_out;
  }
  head_.InferInto(x, arena, MatView{out.data(), B, 1, 1});
}

void ListwiseReranker::ScoreInto(const Batch& batch, const SessionGate* gate,
                                 InferenceWorkspace* workspace,
                                 std::span<float> out) {
  AWMOE_CHECK(gate == nullptr) << "Listwise-Attn has no session gate";
  if (!batch.slate_starts.empty()) {
    ScoreSlateInto(batch, std::span<const int64_t>(batch.slate_starts),
                   workspace, out);
    return;
  }
  // Reused across calls (thread-local: workspaces are lane-serialised
  // but one model may score on several lanes at once), so the steady
  // state stays allocation-free.
  static thread_local std::vector<int64_t> starts;
  SlateStartsFromBatch(batch, &starts);
  ScoreSlateInto(batch, std::span<const int64_t>(starts), workspace, out);
}

std::unique_ptr<Ranker> ListwiseReranker::Clone() const {
  Rng rng(1);
  auto clone =
      std::make_unique<ListwiseReranker>(meta_, dims_, ldims_, &rng);
  CopyParametersInto(*this, clone.get());
  return clone;
}

std::vector<Var> ListwiseReranker::Parameters() const {
  std::vector<Var> params;
  embeddings_.CollectParameters(&params);
  input_network_.CollectParameters(&params);
  proj_.CollectParameters(&params);
  params.push_back(pos_table_);
  for (const EncoderLayer& layer : layers_) {
    layer.wq.CollectParameters(&params);
    layer.wk.CollectParameters(&params);
    layer.wv.CollectParameters(&params);
    layer.wo.CollectParameters(&params);
    layer.ffn.CollectParameters(&params);
  }
  head_.CollectParameters(&params);
  return params;
}

}  // namespace awmoe
