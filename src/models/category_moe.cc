#include "models/category_moe.h"

#include "autograd/ops.h"

namespace awmoe {

namespace {
std::vector<int64_t> WithOutput(std::vector<int64_t> dims, int64_t out) {
  dims.push_back(out);
  return dims;
}
}  // namespace

CategoryMoeRanker::CategoryMoeRanker(const DatasetMeta& meta,
                                     const ModelDims& dims, Rng* rng)
    : meta_(meta),
      dims_(dims),
      embeddings_(meta, dims.emb_dim, rng),
      input_network_(meta, dims, &embeddings_, UserPooling::kAttention, rng),
      experts_(input_network_.output_dim(), dims, rng),
      gate_mlp_(dims.emb_dim,
                WithOutput(dims.gate_unit, dims.num_experts), rng) {}

Var CategoryMoeRanker::GateRepresentation(const Batch& batch) {
  // Query category in search mode; target category when there is no query.
  const std::vector<int64_t>& cats =
      meta_.recommendation_mode ? batch.target_cats : batch.query_cats;
  return ag::SoftmaxRows(gate_mlp_.Forward(embeddings_.Category(cats)));
}

Var CategoryMoeRanker::ForwardLogits(const Batch& batch) {
  Var scores = experts_.ForwardAll(input_network_.Forward(batch));
  Var gate = GateRepresentation(batch);
  return ag::DotRows(scores, gate);
}

std::vector<Var> CategoryMoeRanker::Parameters() const {
  std::vector<Var> params;
  embeddings_.CollectParameters(&params);
  input_network_.CollectParameters(&params);
  experts_.CollectParameters(&params);
  gate_mlp_.CollectParameters(&params);
  return params;
}

void CategoryMoeRanker::GateRowsInto(const Batch& batch,
                                     InferenceArena* arena, MatView g) const {
  const size_t mark = arena->Mark();
  // Query category in search mode; target category when there is no query.
  const std::vector<int64_t>& cats =
      meta_.recommendation_mode ? batch.target_cats : batch.query_cats;
  MatView cat_emb = arena->Alloc(batch.size, dims_.emb_dim);
  embeddings_.CategoryInto(cats.data(), batch.size, cat_emb);
  gate_mlp_.InferInto(cat_emb, arena, g);
  SoftmaxRowsInPlace(g);
  arena->Rewind(mark);
}

void CategoryMoeRanker::ScoreInto(const Batch& batch, const SessionGate* gate,
                                  InferenceWorkspace* workspace,
                                  std::span<float> out) {
  CheckScoreIntoArgs(batch, workspace, out.size());
  InferenceArena* arena = workspace->arena();
  arena->Reset();
  const int64_t k = dims_.num_experts;
  // Same op order as ForwardLogits: experts on the impression vector,
  // then the gate, then the row-wise weighted sum.
  MatView v_imp = arena->Alloc(batch.size, input_network_.output_dim());
  input_network_.InferInto(batch, arena, v_imp);
  MatView scores = arena->Alloc(batch.size, k);
  experts_.InferAllInto(v_imp, arena, scores);
  ConstMatView gate_view;
  if (gate != nullptr) {
    gate_view = ResolveSessionGate(*gate, batch.size, k);
  } else {
    MatView g = arena->Alloc(batch.size, k);
    GateRowsInto(batch, arena, g);
    gate_view = g;
  }
  DotRowsInto(scores, gate_view, MatView{out.data(), batch.size, 1, 1});
}

void CategoryMoeRanker::GateInto(const Batch& batch,
                                 InferenceWorkspace* workspace,
                                 std::span<float> out) {
  CheckScoreIntoArgs(batch, workspace, out.size());
  AWMOE_CHECK(static_cast<int64_t>(out.size()) >=
              batch.size * dims_.num_experts)
      << "GateInto: out span " << out.size() << " for " << batch.size
      << "x" << dims_.num_experts;
  InferenceArena* arena = workspace->arena();
  arena->Reset();
  GateRowsInto(batch, arena,
               MatView{out.data(), batch.size, dims_.num_experts,
                       dims_.num_experts});
}

std::unique_ptr<Ranker> CategoryMoeRanker::Clone() const {
  Rng rng(1);
  auto clone = std::make_unique<CategoryMoeRanker>(meta_, dims_, &rng);
  CopyParametersInto(*this, clone.get());
  return clone;
}

}  // namespace awmoe
