#include "models/category_moe.h"

#include "autograd/ops.h"

namespace awmoe {

namespace {
std::vector<int64_t> WithOutput(std::vector<int64_t> dims, int64_t out) {
  dims.push_back(out);
  return dims;
}
}  // namespace

CategoryMoeRanker::CategoryMoeRanker(const DatasetMeta& meta,
                                     const ModelDims& dims, Rng* rng)
    : meta_(meta),
      dims_(dims),
      embeddings_(meta, dims.emb_dim, rng),
      input_network_(meta, dims, &embeddings_, UserPooling::kAttention, rng),
      experts_(input_network_.output_dim(), dims, rng),
      gate_mlp_(dims.emb_dim,
                WithOutput(dims.gate_unit, dims.num_experts), rng) {}

Var CategoryMoeRanker::GateRepresentation(const Batch& batch) {
  // Query category in search mode; target category when there is no query.
  const std::vector<int64_t>& cats =
      meta_.recommendation_mode ? batch.target_cats : batch.query_cats;
  return ag::SoftmaxRows(gate_mlp_.Forward(embeddings_.Category(cats)));
}

Var CategoryMoeRanker::ForwardLogits(const Batch& batch) {
  Var scores = experts_.ForwardAll(input_network_.Forward(batch));
  Var gate = GateRepresentation(batch);
  return ag::DotRows(scores, gate);
}

std::vector<Var> CategoryMoeRanker::Parameters() const {
  std::vector<Var> params;
  embeddings_.CollectParameters(&params);
  input_network_.CollectParameters(&params);
  experts_.CollectParameters(&params);
  gate_mlp_.CollectParameters(&params);
  return params;
}

std::unique_ptr<Ranker> CategoryMoeRanker::Clone() const {
  Rng rng(1);
  auto clone = std::make_unique<CategoryMoeRanker>(meta_, dims_, &rng);
  CopyParametersInto(*this, clone.get());
  return clone;
}

}  // namespace awmoe
