#include "models/attention_unit.h"

#include "autograd/ops.h"

namespace awmoe {

namespace {
std::vector<int64_t> WithScalarOutput(std::vector<int64_t> dims) {
  dims.push_back(1);
  return dims;
}
}  // namespace

AttentionUnit::AttentionUnit(int64_t hidden_dim,
                             std::vector<int64_t> mlp_dims, Rng* rng)
    : hidden_dim_(hidden_dim),
      mlp_(3 * hidden_dim, WithScalarOutput(std::move(mlp_dims)), rng) {}

Var AttentionUnit::Forward(const Var& h_user, const Var& h_ref) const {
  AWMOE_CHECK(h_user.cols() == hidden_dim_ && h_ref.cols() == hidden_dim_)
      << "AttentionUnit: dims " << h_user.cols() << "/" << h_ref.cols()
      << " vs " << hidden_dim_;
  Var interaction = ag::Mul(h_user, h_ref);
  Var joined = ag::ConcatCols({h_user, h_ref, interaction});
  return mlp_.Forward(joined);
}

void AttentionUnit::InferInto(const ConstMatView& h_user,
                              const ConstMatView& h_ref,
                              InferenceArena* arena, MatView out) const {
  AWMOE_CHECK(h_user.cols == hidden_dim_ && h_ref.cols == hidden_dim_)
      << "AttentionUnit::InferInto: dims " << h_user.cols << "/"
      << h_ref.cols << " vs " << hidden_dim_;
  const size_t mark = arena->Mark();
  MatView joined = arena->Alloc(h_user.rows, 3 * hidden_dim_);
  ConcatInteractionInto(h_user, h_ref, joined);
  mlp_.InferInto(joined, arena, out);
  arena->Rewind(mark);
}

void AttentionUnit::CollectParameters(std::vector<Var>* params) const {
  mlp_.CollectParameters(params);
}

}  // namespace awmoe
