#include "models/embedding_set.h"

namespace awmoe {

EmbeddingSet::EmbeddingSet(const DatasetMeta& meta, int64_t emb_dim, Rng* rng)
    : emb_dim_(emb_dim),
      item_(meta.num_items, emb_dim, rng),
      cat_(meta.num_cats, emb_dim, rng),
      brand_(meta.num_brands, emb_dim, rng),
      shop_(meta.num_shops, emb_dim, rng),
      query_(std::max<int64_t>(meta.num_queries, 1), emb_dim, rng),
      age_(meta.num_age_segments + 1, emb_dim, rng) {}

Var EmbeddingSet::ItemTriple(const std::vector<int64_t>& items,
                             const std::vector<int64_t>& cats,
                             const std::vector<int64_t>& brands) const {
  return ag::ConcatCols(
      {item_.Forward(items), cat_.Forward(cats), brand_.Forward(brands)});
}

Var EmbeddingSet::Query(const std::vector<int64_t>& query_ids) const {
  return query_.Forward(query_ids);
}

Var EmbeddingSet::Shop(const std::vector<int64_t>& shop_ids) const {
  return shop_.Forward(shop_ids);
}

Var EmbeddingSet::Age(const std::vector<int64_t>& age_segments) const {
  return age_.Forward(age_segments);
}

Var EmbeddingSet::Category(const std::vector<int64_t>& cat_ids) const {
  return cat_.Forward(cat_ids);
}

void EmbeddingSet::ItemTripleInto(const int64_t* items, const int64_t* cats,
                                  const int64_t* brands, int64_t count,
                                  int64_t id_stride, MatView out) const {
  AWMOE_CHECK(out.cols == item_dim())
      << "ItemTripleInto: out width " << out.cols << " vs " << item_dim();
  item_.GatherInto(items, count, id_stride, out.ColBlock(0, emb_dim_));
  cat_.GatherInto(cats, count, id_stride, out.ColBlock(emb_dim_, emb_dim_));
  brand_.GatherInto(brands, count, id_stride,
                    out.ColBlock(2 * emb_dim_, emb_dim_));
}

void EmbeddingSet::ItemWithAttrsInto(const int64_t* items,
                                     const int64_t* cats,
                                     const int64_t* brands, int64_t count,
                                     int64_t id_stride,
                                     const ConstMatView& attrs,
                                     MatView out) const {
  AWMOE_CHECK(out.cols == item_dim() + attrs.cols)
      << "ItemWithAttrsInto: out width " << out.cols << " vs "
      << item_dim() + attrs.cols;
  ItemTripleInto(items, cats, brands, count, id_stride,
                 out.ColBlock(0, item_dim()));
  CopyInto(attrs, out.ColBlock(item_dim(), attrs.cols));
}

void EmbeddingSet::QueryInto(const int64_t* query_ids, int64_t count,
                             MatView out) const {
  query_.GatherInto(query_ids, count, /*id_stride=*/1, out);
}

void EmbeddingSet::ShopInto(const int64_t* shop_ids, int64_t count,
                            MatView out) const {
  shop_.GatherInto(shop_ids, count, /*id_stride=*/1, out);
}

void EmbeddingSet::AgeInto(const int64_t* age_segments, int64_t count,
                           MatView out) const {
  age_.GatherInto(age_segments, count, /*id_stride=*/1, out);
}

void EmbeddingSet::CategoryInto(const int64_t* cat_ids, int64_t count,
                                MatView out) const {
  cat_.GatherInto(cat_ids, count, /*id_stride=*/1, out);
}

void EmbeddingSet::CollectParameters(std::vector<Var>* params) const {
  item_.CollectParameters(params);
  cat_.CollectParameters(params);
  brand_.CollectParameters(params);
  shop_.CollectParameters(params);
  query_.CollectParameters(params);
  age_.CollectParameters(params);
}

}  // namespace awmoe
