#include "models/embedding_set.h"

namespace awmoe {

EmbeddingSet::EmbeddingSet(const DatasetMeta& meta, int64_t emb_dim, Rng* rng)
    : emb_dim_(emb_dim),
      item_(meta.num_items, emb_dim, rng),
      cat_(meta.num_cats, emb_dim, rng),
      brand_(meta.num_brands, emb_dim, rng),
      shop_(meta.num_shops, emb_dim, rng),
      query_(std::max<int64_t>(meta.num_queries, 1), emb_dim, rng),
      age_(meta.num_age_segments + 1, emb_dim, rng) {}

Var EmbeddingSet::ItemTriple(const std::vector<int64_t>& items,
                             const std::vector<int64_t>& cats,
                             const std::vector<int64_t>& brands) const {
  return ag::ConcatCols(
      {item_.Forward(items), cat_.Forward(cats), brand_.Forward(brands)});
}

Var EmbeddingSet::Query(const std::vector<int64_t>& query_ids) const {
  return query_.Forward(query_ids);
}

Var EmbeddingSet::Shop(const std::vector<int64_t>& shop_ids) const {
  return shop_.Forward(shop_ids);
}

Var EmbeddingSet::Age(const std::vector<int64_t>& age_segments) const {
  return age_.Forward(age_segments);
}

Var EmbeddingSet::Category(const std::vector<int64_t>& cat_ids) const {
  return cat_.Forward(cat_ids);
}

void EmbeddingSet::CollectParameters(std::vector<Var>* params) const {
  item_.CollectParameters(params);
  cat_.CollectParameters(params);
  brand_.CollectParameters(params);
  shop_.CollectParameters(params);
  query_.CollectParameters(params);
  age_.CollectParameters(params);
}

}  // namespace awmoe
