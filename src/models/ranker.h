#ifndef AWMOE_MODELS_RANKER_H_
#define AWMOE_MODELS_RANKER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "data/example.h"
#include "nn/inference.h"

namespace awmoe {

/// Read-only view of precomputed per-session gate activations handed to
/// ScoreInto (§III-F behind the API): `data` is row-major
/// [rows, width]. `rows` is either the batch size (one row per
/// candidate, typically replicated from cached per-session rows by the
/// serving engine) or 1, in which case the single row is broadcast to
/// every candidate. Only models with SessionGateWidth() > 0 accept one.
struct SessionGate {
  const float* data = nullptr;
  int64_t rows = 0;
  int64_t width = 0;
};

/// Read-only view of a precomputed candidate-independent session
/// encoding (the session feature store's payload): the behaviour-
/// sequence tower outputs (§III-C attention inputs) — or, for sum-pool
/// models, the pooled user vector — plus the query embedding in search
/// mode, laid out row-major [rows, SessionEncodingWidth()]. `rows` is
/// the batch size (one row per candidate, replicated from the cached
/// per-session row by the serving engine) or 1 for broadcast. Produced
/// by EncodeSessionInto, consumed by ScoreWithSessionInto; the layout
/// is a model-private contract between those two methods.
struct SessionEncoding {
  const float* data = nullptr;
  int64_t rows = 0;
  int64_t width = 0;
};

/// Common interface of every ranking model in the repo. Implementations
/// return *logits*; apply a sigmoid for the predicted CTR/CVR (Eq. 1 trains
/// on the fused logits form for stability).
class Ranker {
 public:
  virtual ~Ranker() = default;

  /// Ranking logits [B, 1] for a batch. Builds an autograd graph unless a
  /// NoGradGuard is active.
  virtual Var ForwardLogits(const Batch& batch) = 0;

  /// All trainable parameters.
  virtual std::vector<Var> Parameters() const = 0;

  /// Display name ("DNN", "DIN", "Category-MoE", "AW-MoE", ...).
  virtual std::string name() const = 0;

  /// The gate network's user representation g (Eq. 6-8) for models that
  /// have one; undefined Var otherwise. Used by the contrastive loss and
  /// the Fig. 7 visualisation.
  virtual Var GateRepresentation(const Batch& batch) {
    (void)batch;
    return Var();
  }

  /// Compatibility shim of the legacy inference surface: ranking logits
  /// [B, 1] with autograd recording disabled. Still walks the Var op
  /// graph machinery (one heap-allocated node and value matrix per op),
  /// so the serving hot path uses ScoreInto below instead;
  /// InferenceLogits remains the reference the ScoreInto regression
  /// tests compare against bitwise. The batch may micro-batch
  /// candidates from several sessions; implementations must keep
  /// per-row results independent of batch composition (row-wise
  /// kernels, fixed sequence padding), which is what lets the serving
  /// engine fuse sessions without changing scores.
  virtual Matrix InferenceLogits(const Batch& batch) {
    NoGradGuard guard;
    return ForwardLogits(batch).value();
  }

  // --- The workspace-based inference API (the serving hot path). ---

  /// Preallocates everything one execution lane needs to score
  /// micro-batches of up to `max_batch_candidates` rows: activation
  /// arena, padded staging buffers, gate scratch. The workspace is
  /// opaque to callers and NOT thread-safe — each ModelPool replica
  /// lane owns its own, serialised by the lane lock.
  virtual std::unique_ptr<InferenceWorkspace> CreateInferenceWorkspace(
      int64_t max_batch_candidates) const;

  /// Scores a micro-batch into `out` (ranking logits, one per batch
  /// row) with zero steady-state heap allocation: no autograd graph, no
  /// Matrix temporaries — every intermediate lives in the workspace,
  /// which only ever grows. Results are bitwise-identical to
  /// InferenceLogits (regression-tested per ranker).
  ///
  /// `gate`, when non-null, supplies precomputed gate activations
  /// (§III-F: the engine replicates cached per-session rows across each
  /// session's candidates) and the model skips its gate network; only
  /// models with SessionGateWidth() > 0 accept one — everyone else
  /// CHECK-fails, the serving engine never passes a gate to them.
  /// `out.size()` must be >= batch.size and `batch.size` must not
  /// exceed the workspace's max_batch_candidates.
  virtual void ScoreInto(const Batch& batch, const SessionGate* gate,
                         InferenceWorkspace* workspace, std::span<float> out);

  /// Width of one session-gate row (the number of experts the gate
  /// weighs), or 0 when the model has no reusable gate. Non-zero width
  /// + SupportsSessionGateReuse(meta) is the serving engine's
  /// eligibility test for the shared-gate path — no downcasts.
  virtual int64_t SessionGateWidth() const { return 0; }

  /// Writes the gate activations of every batch row into `out`
  /// (row-major [batch.size, SessionGateWidth()]), graph- and
  /// allocation-free. The engine probes one row per session and caches
  /// it; rows for a session-constant gate are identical across the
  /// session's candidates. CHECK-fails when SessionGateWidth() == 0.
  virtual void GateInto(const Batch& batch, InferenceWorkspace* workspace,
                        std::span<float> out);

  /// True when the model's gate depends only on session-constant inputs
  /// (user behaviour sequence + query) under `meta`, so one gate
  /// evaluation can serve every candidate item of a session (§III-F).
  /// Models without a reusable gate return false.
  virtual bool SupportsSessionGateReuse(const DatasetMeta& meta) const {
    (void)meta;
    return false;
  }

  // --- The session feature store (level-2 cache) API. ---

  /// Floats per cached session-encoding row, or 0 when the model has no
  /// split encode/score path. Non-zero width +
  /// SupportsSessionEncodingReuse(meta) is the serving engine's
  /// eligibility test, mirroring the gate pair above.
  virtual int64_t SessionEncodingWidth() const { return 0; }

  /// True when the candidate-independent half of the forward pass (the
  /// behaviour-sequence embeddings EncodeSessionInto materialises) is
  /// identical for every candidate of a session under `meta`, so one
  /// encoding can be cached across requests.
  virtual bool SupportsSessionEncodingReuse(const DatasetMeta& meta) const {
    (void)meta;
    return false;
  }

  /// Writes the candidate-independent session encoding of every batch
  /// row into `out` (row-major [batch.size, SessionEncodingWidth()]),
  /// graph- and allocation-free. Rows of one session are identical when
  /// SupportsSessionEncodingReuse holds, so the engine probes one row
  /// per session and caches it. CHECK-fails when
  /// SessionEncodingWidth() == 0.
  virtual void EncodeSessionInto(const Batch& batch,
                                 InferenceWorkspace* workspace,
                                 std::span<float> out);

  /// ScoreInto's split-path twin: scores the batch reusing the
  /// precomputed `encoding` instead of re-running the behaviour
  /// towers, running only the candidate-dependent tail. Must be
  /// BITWISE-identical to the fused ScoreInto (regression-tested):
  /// EncodeSessionInto + ScoreWithSessionInto == ScoreInto ==
  /// InferenceLogits. A null `encoding` falls back to the fused path
  /// verbatim; a non-null one CHECK-fails on models with
  /// SessionEncodingWidth() == 0.
  virtual void ScoreWithSessionInto(const Batch& batch,
                                    const SessionGate* gate,
                                    const SessionEncoding* encoding,
                                    InferenceWorkspace* workspace,
                                    std::span<float> out);

  // --- The slate-scoring (listwise) capability. ---

  /// True when the model scores candidates JOINTLY: each row's logit
  /// depends on the other rows of its slate (self-attention rerankers),
  /// so the serving engine must (a) keep each request's rows atomic
  /// within one forward — never split or interleaved with other
  /// sessions' rows — and (b) bypass the level-1 session score cache,
  /// whose order-insensitive candidate-set key assumes pointwise,
  /// position-independent scores. Pointwise models return false and
  /// keep today's row-fused micro-batching bitwise-unchanged.
  virtual bool SupportsSlateScoring() const { return false; }

  /// Hard cap on one slate's length for slate-scoring models (the
  /// position-embedding table size): ScoreSlateInto CHECK-fails on a
  /// longer slate, so callers must never build one. The serving engine
  /// reads this at publish time and REJECTS oversized requests with
  /// kInvalidArgument at admission; the training batcher splits longer
  /// sessions into sub-slates of at most this many rows. 0 = unlimited
  /// (pointwise models, which have no slate notion, return 0).
  virtual int64_t MaxSlateItems() const { return 0; }

  /// Scores a batch of whole slates into `out` (ranking logits, one per
  /// batch row), graph- and allocation-free like ScoreInto.
  /// `slate_starts` partitions the batch rows into contiguous slates:
  /// slate_starts[0] == 0, ascending, slate i spanning
  /// [slate_starts[i], slate_starts[i+1]) with the last ending at
  /// batch.size. Attention runs strictly within each slate, so a
  /// slate's scores are independent of which other slates share the
  /// micro-batch (regression-tested). CHECK-fails when
  /// SupportsSlateScoring() is false.
  virtual void ScoreSlateInto(const Batch& batch,
                              std::span<const int64_t> slate_starts,
                              InferenceWorkspace* workspace,
                              std::span<float> out);

  /// Deep copy: a new model with identical weights in disjoint storage,
  /// so the copy can run forwards concurrently with (and be retired
  /// independently of) the original. This is what lets the serving
  /// ModelPool materialise a replica set from one loaded ranker.
  /// Implementations must guarantee bitwise-identical InferenceLogits;
  /// models without clone support return nullptr (the pool then serves
  /// them single-replica).
  virtual std::unique_ptr<Ranker> Clone() const { return nullptr; }

  /// Total scalar parameter count.
  int64_t NumParameters() const {
    int64_t total = 0;
    for (const Var& p : Parameters()) total += p.value().size();
    return total;
  }

  /// Clears all parameter gradients.
  void ZeroGrad() {
    for (Var& p : Parameters()) p.ZeroGrad();
  }
};

/// CHECK-validates the shared ScoreInto preconditions: non-null
/// workspace sized for the batch, and an output span with at least one
/// slot per batch row.
void CheckScoreIntoArgs(const Batch& batch,
                        const InferenceWorkspace* workspace,
                        size_t out_size);

/// Validates a SessionGate against the batch and the model's gate width
/// and returns it as a [batch_size, width] read view (a 1-row gate
/// broadcasts via stride 0). Shared by every gate-reusing ranker's
/// ScoreInto.
ConstMatView ResolveSessionGate(const SessionGate& gate, int64_t batch_size,
                                int64_t width);

/// SessionEncoding twin of ResolveSessionGate: validates against the
/// batch and the model's encoding width and returns a
/// [batch_size, width] read view (1-row encodings broadcast via
/// stride 0).
ConstMatView ResolveSessionEncoding(const SessionEncoding& encoding,
                                    int64_t batch_size, int64_t width);

/// Copies every parameter matrix of `src` into `dst` (the Clone()
/// work-horse: implementations rebuild an identically-dimensioned model
/// and then call this). CHECK-fails on parameter count or shape
/// mismatch. Relies on `Parameters()` returning a construction-order,
/// deterministic sequence, which every ranker in the repo does.
void CopyParametersInto(const Ranker& src, Ranker* dst);

}  // namespace awmoe

#endif  // AWMOE_MODELS_RANKER_H_
