#ifndef AWMOE_MODELS_RANKER_H_
#define AWMOE_MODELS_RANKER_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "data/example.h"

namespace awmoe {

/// Common interface of every ranking model in the repo. Implementations
/// return *logits*; apply a sigmoid for the predicted CTR/CVR (Eq. 1 trains
/// on the fused logits form for stability).
class Ranker {
 public:
  virtual ~Ranker() = default;

  /// Ranking logits [B, 1] for a batch. Builds an autograd graph unless a
  /// NoGradGuard is active.
  virtual Var ForwardLogits(const Batch& batch) = 0;

  /// All trainable parameters.
  virtual std::vector<Var> Parameters() const = 0;

  /// Display name ("DNN", "DIN", "Category-MoE", "AW-MoE", ...).
  virtual std::string name() const = 0;

  /// The gate network's user representation g (Eq. 6-8) for models that
  /// have one; undefined Var otherwise. Used by the contrastive loss and
  /// the Fig. 7 visualisation.
  virtual Var GateRepresentation(const Batch& batch) {
    (void)batch;
    return Var();
  }

  /// Batched inference entry point: ranking logits [B, 1] with autograd
  /// recording disabled (no graph is built). The batch may micro-batch
  /// candidates from several sessions; implementations must keep per-row
  /// results independent of batch composition (row-wise kernels, fixed
  /// sequence padding), which is what lets the serving engine fuse
  /// sessions without changing scores.
  virtual Matrix InferenceLogits(const Batch& batch) {
    NoGradGuard guard;
    return ForwardLogits(batch).value();
  }

  /// True when the model's gate depends only on session-constant inputs
  /// (user behaviour sequence + query) under `meta`, so one gate
  /// evaluation can serve every candidate item of a session (§III-F).
  /// Models without a reusable gate return false.
  virtual bool SupportsSessionGateReuse(const DatasetMeta& meta) const {
    (void)meta;
    return false;
  }

  /// Deep copy: a new model with identical weights in disjoint storage,
  /// so the copy can run forwards concurrently with (and be retired
  /// independently of) the original. This is what lets the serving
  /// ModelPool materialise a replica set from one loaded ranker.
  /// Implementations must guarantee bitwise-identical InferenceLogits;
  /// models without clone support return nullptr (the pool then serves
  /// them single-replica).
  virtual std::unique_ptr<Ranker> Clone() const { return nullptr; }

  /// Total scalar parameter count.
  int64_t NumParameters() const {
    int64_t total = 0;
    for (const Var& p : Parameters()) total += p.value().size();
    return total;
  }

  /// Clears all parameter gradients.
  void ZeroGrad() {
    for (Var& p : Parameters()) p.ZeroGrad();
  }
};

/// Copies every parameter matrix of `src` into `dst` (the Clone()
/// work-horse: implementations rebuild an identically-dimensioned model
/// and then call this). CHECK-fails on parameter count or shape
/// mismatch. Relies on `Parameters()` returning a construction-order,
/// deterministic sequence, which every ranker in the repo does.
void CopyParametersInto(const Ranker& src, Ranker* dst);

}  // namespace awmoe

#endif  // AWMOE_MODELS_RANKER_H_
