#include "models/dnn_ranker.h"

namespace awmoe {

DnnRanker::DnnRanker(const DatasetMeta& meta, const ModelDims& dims,
                     Rng* rng)
    : meta_(meta),
      dims_(dims),
      embeddings_(meta, dims.emb_dim, rng),
      input_network_(meta, dims, &embeddings_, UserPooling::kSumPool, rng),
      ffn_(input_network_.output_dim(), dims, rng) {}

Var DnnRanker::ForwardLogits(const Batch& batch) {
  return ffn_.Forward(input_network_.Forward(batch));
}

std::unique_ptr<Ranker> DnnRanker::Clone() const {
  // The fresh model's random init is immediately overwritten, so the
  // throwaway Rng seed is irrelevant to the clone's weights.
  Rng rng(1);
  auto clone = std::make_unique<DnnRanker>(meta_, dims_, &rng);
  CopyParametersInto(*this, clone.get());
  return clone;
}

std::vector<Var> DnnRanker::Parameters() const {
  std::vector<Var> params;
  embeddings_.CollectParameters(&params);
  input_network_.CollectParameters(&params);
  ffn_.CollectParameters(&params);
  return params;
}

DinRanker::DinRanker(const DatasetMeta& meta, const ModelDims& dims,
                     Rng* rng)
    : meta_(meta),
      dims_(dims),
      embeddings_(meta, dims.emb_dim, rng),
      input_network_(meta, dims, &embeddings_, UserPooling::kAttention, rng),
      ffn_(input_network_.output_dim(), dims, rng) {}

Var DinRanker::ForwardLogits(const Batch& batch) {
  return ffn_.Forward(input_network_.Forward(batch));
}

std::unique_ptr<Ranker> DinRanker::Clone() const {
  Rng rng(1);
  auto clone = std::make_unique<DinRanker>(meta_, dims_, &rng);
  CopyParametersInto(*this, clone.get());
  return clone;
}

std::vector<Var> DinRanker::Parameters() const {
  std::vector<Var> params;
  embeddings_.CollectParameters(&params);
  input_network_.CollectParameters(&params);
  ffn_.CollectParameters(&params);
  return params;
}

}  // namespace awmoe
