#include "models/dnn_ranker.h"

namespace awmoe {

namespace {

/// Shared DNN/DIN kernel path: input network -> single FFN, every
/// intermediate in the workspace arena, logits straight into `out`.
/// A non-null `encoding` replays the candidate-independent blocks from
/// the session feature store instead of recomputing them; the op
/// sequence on values is identical either way (bitwise contract).
void FfnScoreInto(const InputNetwork& input_network,
                  const ExpertNetwork& ffn, const Batch& batch,
                  const SessionEncoding* encoding,
                  InferenceWorkspace* workspace, std::span<float> out) {
  InferenceArena* arena = workspace->arena();
  arena->Reset();
  MatView v_imp = arena->Alloc(batch.size, input_network.output_dim());
  if (encoding != nullptr) {
    const ConstMatView enc_view = ResolveSessionEncoding(
        *encoding, batch.size, input_network.session_encoding_dim());
    input_network.InferWithSessionInto(batch, enc_view, arena, v_imp);
  } else {
    input_network.InferInto(batch, arena, v_imp);
  }
  ffn.InferInto(v_imp, arena, MatView{out.data(), batch.size, 1, 1});
}

/// Shared DNN/DIN EncodeSessionInto body.
void FfnEncodeSessionInto(const InputNetwork& input_network,
                          const Batch& batch, InferenceWorkspace* workspace,
                          std::span<float> out) {
  CheckScoreIntoArgs(batch, workspace, out.size());
  const int64_t w = input_network.session_encoding_dim();
  AWMOE_CHECK(static_cast<int64_t>(out.size()) >= batch.size * w)
      << "EncodeSessionInto: out span " << out.size() << " for "
      << batch.size << "x" << w;
  InferenceArena* arena = workspace->arena();
  arena->Reset();
  input_network.EncodeSessionInto(batch, arena,
                                  MatView{out.data(), batch.size, w, w});
}

}  // namespace

DnnRanker::DnnRanker(const DatasetMeta& meta, const ModelDims& dims,
                     Rng* rng)
    : meta_(meta),
      dims_(dims),
      embeddings_(meta, dims.emb_dim, rng),
      input_network_(meta, dims, &embeddings_, UserPooling::kSumPool, rng),
      ffn_(input_network_.output_dim(), dims, rng) {}

Var DnnRanker::ForwardLogits(const Batch& batch) {
  return ffn_.Forward(input_network_.Forward(batch));
}

std::unique_ptr<Ranker> DnnRanker::Clone() const {
  // The fresh model's random init is immediately overwritten, so the
  // throwaway Rng seed is irrelevant to the clone's weights.
  Rng rng(1);
  auto clone = std::make_unique<DnnRanker>(meta_, dims_, &rng);
  CopyParametersInto(*this, clone.get());
  return clone;
}

void DnnRanker::ScoreInto(const Batch& batch, const SessionGate* gate,
                          InferenceWorkspace* workspace,
                          std::span<float> out) {
  AWMOE_CHECK(gate == nullptr) << "DNN has no session gate";
  CheckScoreIntoArgs(batch, workspace, out.size());
  FfnScoreInto(input_network_, ffn_, batch, /*encoding=*/nullptr, workspace,
               out);
}

int64_t DnnRanker::SessionEncodingWidth() const {
  return input_network_.session_encoding_dim();
}

void DnnRanker::EncodeSessionInto(const Batch& batch,
                                  InferenceWorkspace* workspace,
                                  std::span<float> out) {
  FfnEncodeSessionInto(input_network_, batch, workspace, out);
}

void DnnRanker::ScoreWithSessionInto(const Batch& batch,
                                     const SessionGate* gate,
                                     const SessionEncoding* encoding,
                                     InferenceWorkspace* workspace,
                                     std::span<float> out) {
  AWMOE_CHECK(gate == nullptr) << "DNN has no session gate";
  CheckScoreIntoArgs(batch, workspace, out.size());
  FfnScoreInto(input_network_, ffn_, batch, encoding, workspace, out);
}

std::vector<Var> DnnRanker::Parameters() const {
  std::vector<Var> params;
  embeddings_.CollectParameters(&params);
  input_network_.CollectParameters(&params);
  ffn_.CollectParameters(&params);
  return params;
}

DinRanker::DinRanker(const DatasetMeta& meta, const ModelDims& dims,
                     Rng* rng)
    : meta_(meta),
      dims_(dims),
      embeddings_(meta, dims.emb_dim, rng),
      input_network_(meta, dims, &embeddings_, UserPooling::kAttention, rng),
      ffn_(input_network_.output_dim(), dims, rng) {}

Var DinRanker::ForwardLogits(const Batch& batch) {
  return ffn_.Forward(input_network_.Forward(batch));
}

std::unique_ptr<Ranker> DinRanker::Clone() const {
  Rng rng(1);
  auto clone = std::make_unique<DinRanker>(meta_, dims_, &rng);
  CopyParametersInto(*this, clone.get());
  return clone;
}

void DinRanker::ScoreInto(const Batch& batch, const SessionGate* gate,
                          InferenceWorkspace* workspace,
                          std::span<float> out) {
  AWMOE_CHECK(gate == nullptr) << "DIN has no session gate";
  CheckScoreIntoArgs(batch, workspace, out.size());
  FfnScoreInto(input_network_, ffn_, batch, /*encoding=*/nullptr, workspace,
               out);
}

int64_t DinRanker::SessionEncodingWidth() const {
  return input_network_.session_encoding_dim();
}

void DinRanker::EncodeSessionInto(const Batch& batch,
                                  InferenceWorkspace* workspace,
                                  std::span<float> out) {
  FfnEncodeSessionInto(input_network_, batch, workspace, out);
}

void DinRanker::ScoreWithSessionInto(const Batch& batch,
                                     const SessionGate* gate,
                                     const SessionEncoding* encoding,
                                     InferenceWorkspace* workspace,
                                     std::span<float> out) {
  AWMOE_CHECK(gate == nullptr) << "DIN has no session gate";
  CheckScoreIntoArgs(batch, workspace, out.size());
  FfnScoreInto(input_network_, ffn_, batch, encoding, workspace, out);
}

std::vector<Var> DinRanker::Parameters() const {
  std::vector<Var> params;
  embeddings_.CollectParameters(&params);
  input_network_.CollectParameters(&params);
  ffn_.CollectParameters(&params);
  return params;
}

}  // namespace awmoe
