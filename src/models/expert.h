#ifndef AWMOE_MODELS_EXPERT_H_
#define AWMOE_MODELS_EXPERT_H_

#include <cstdint>
#include <vector>

#include "models/model_dims.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "util/rng.h"

namespace awmoe {

/// One expert network Psi_k of Fig. 4b: an FFN from the impression vector
/// to a scalar ranking score (Eq. 5). All experts share this structure and
/// differ only in their randomly initialised parameters (§III-C1).
class ExpertNetwork : public Module {
 public:
  ExpertNetwork(int64_t input_dim, const ModelDims& dims, Rng* rng);

  /// v_imp [B, input_dim] -> s_k [B, 1].
  Var Forward(const Var& v_imp) const;

  /// Graph-free Forward into a caller [B, 1] view (a column of the
  /// expert-score matrix on the ScoreInto path).
  void InferInto(const ConstMatView& v_imp, InferenceArena* arena,
                 MatView out) const;

  void CollectParameters(std::vector<Var>* params) const override;

 private:
  Mlp mlp_;
};

/// A bank of K experts evaluated on the same impression vector; returns
/// the concatenated score matrix S = [s_1 .. s_K] of shape [B, K].
class ExpertBank : public Module {
 public:
  ExpertBank(int64_t input_dim, const ModelDims& dims, Rng* rng);

  Var ForwardAll(const Var& v_imp) const;

  /// Graph-free ForwardAll: expert k writes column k of `out` [B, K]
  /// (bitwise-identical to the ConcatCols of per-expert Forwards).
  void InferAllInto(const ConstMatView& v_imp, InferenceArena* arena,
                    MatView out) const;

  int64_t num_experts() const {
    return static_cast<int64_t>(experts_.size());
  }

  void CollectParameters(std::vector<Var>* params) const override;

 private:
  std::vector<ExpertNetwork> experts_;
};

}  // namespace awmoe

#endif  // AWMOE_MODELS_EXPERT_H_
