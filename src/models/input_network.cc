#include "models/input_network.h"

#include "autograd/ops.h"
#include "mat/kernels.h"

namespace awmoe {

InputNetwork::InputNetwork(const DatasetMeta& meta, const ModelDims& dims,
                           const EmbeddingSet* embeddings,
                           UserPooling pooling, Rng* rng)
    : meta_(meta),
      dims_(dims),
      embeddings_(embeddings),
      pooling_(pooling),
      item_tower_(embeddings->item_dim() + Example::kItemAttrs,
                  dims.tower_mlp, rng),
      query_tower_(embeddings->emb_dim(), dims.tower_mlp, rng),
      other_tower_(2 * embeddings->emb_dim() + meta.numeric_dim,
                   dims.tower_mlp, rng),
      activation_unit_(dims.hidden_dim(), dims.activation_unit, rng) {}

int64_t InputNetwork::output_dim() const {
  int64_t parts = meta_.recommendation_mode ? 3 : 4;
  return parts * dims_.hidden_dim();
}

Var InputNetwork::Forward(const Batch& batch) const {
  // h_t: target-item tower (Eq. 2). Item representations combine the id
  // embeddings with the item's dense side-info attributes.
  Var h_target = item_tower_.Forward(ag::ConcatCols(
      {embeddings_->ItemTriple(batch.target_items, batch.target_cats,
                               batch.target_brands),
       Var(batch.target_attrs)}));

  // v_u: behaviour pooling (Eq. 3), padded positions masked out.
  Var v_user;
  for (int64_t j = 0; j < batch.seq_len; ++j) {
    Var h_bj = item_tower_.Forward(ag::ConcatCols(
        {embeddings_->ItemTriple(
             batch.BehaviorColumn(batch.behavior_items, j),
             batch.BehaviorColumn(batch.behavior_cats, j),
             batch.BehaviorColumn(batch.behavior_brands, j)),
         Var(batch.BehaviorAttrsColumn(j))}));
    Matrix mask_j = batch.MaskColumn(j);
    Var contribution;
    if (pooling_ == UserPooling::kAttention) {
      Var w_j = activation_unit_.Forward(h_bj, h_target);
      Var masked_w = ag::MulMask(w_j, mask_j);
      contribution = ag::MulColBroadcast(h_bj, masked_w);
    } else {
      contribution = ag::MulMask(
          h_bj, BroadcastCol(mask_j, h_bj.cols()));
    }
    v_user = v_user.defined() ? ag::Add(v_user, contribution) : contribution;
  }

  // h_o: profile + cross/numeric features.
  Var h_other = other_tower_.Forward(ag::ConcatCols(
      {embeddings_->Age(batch.age_segments),
       embeddings_->Shop(batch.target_shops), Var(batch.numeric)}));

  if (meta_.recommendation_mode) {
    return ag::ConcatCols({v_user, h_target, h_other});
  }
  Var h_query = query_tower_.Forward(embeddings_->Query(batch.query_ids));
  return ag::ConcatCols({v_user, h_target, h_query, h_other});
}

int64_t InputNetwork::session_encoding_dim() const {
  const int64_t h = dims_.hidden_dim();
  const int64_t behavior =
      pooling_ == UserPooling::kAttention ? meta_.max_seq_len * h : h;
  return behavior + (meta_.recommendation_mode ? 0 : h);
}

void InputNetwork::InferInto(const Batch& batch, InferenceArena* arena,
                             MatView out) const {
  InferCore(batch, /*encoding=*/nullptr, arena, out);
}

void InputNetwork::InferWithSessionInto(const Batch& batch,
                                        const ConstMatView& encoding,
                                        InferenceArena* arena,
                                        MatView out) const {
  AWMOE_CHECK(encoding.rows == batch.size &&
              encoding.cols == session_encoding_dim())
      << "InputNetwork::InferWithSessionInto: encoding " << encoding.rows
      << "x" << encoding.cols;
  InferCore(batch, &encoding, arena, out);
}

void InputNetwork::EncodeSessionInto(const Batch& batch,
                                     InferenceArena* arena,
                                     MatView out) const {
  const int64_t b = batch.size;
  const int64_t h = dims_.hidden_dim();
  AWMOE_CHECK(out.rows == b && out.cols == session_encoding_dim())
      << "InputNetwork::EncodeSessionInto: out " << out.rows << "x"
      << out.cols;
  // The blob layout is indexed by padded position, so the pad width
  // must be the snapshot-constant one the width was derived from.
  AWMOE_CHECK(batch.seq_len == meta_.max_seq_len)
      << "InputNetwork::EncodeSessionInto: seq_len " << batch.seq_len
      << " vs meta " << meta_.max_seq_len;
  const int64_t item_in = embeddings_->item_dim() + Example::kItemAttrs;

  // Every block below is computed by the EXACT op sequence of
  // InferCore's fused path — into arena storage, exactly as the fused
  // path allocates it — and only then copied into the blob. Compute-
  // then-copy keeps the arithmetic (and its memory alignment) identical
  // to the fused path, which is what makes the replay bitwise-exact.
  if (pooling_ == UserPooling::kAttention) {
    for (int64_t j = 0; j < batch.seq_len; ++j) {
      const size_t mark = arena->Mark();
      MatView joined = arena->Alloc(b, item_in);
      embeddings_->ItemWithAttrsInto(
          batch.behavior_items.data() + j, batch.behavior_cats.data() + j,
          batch.behavior_brands.data() + j, b,
          /*id_stride=*/batch.seq_len,
          MatrixColsView(batch.behavior_attrs, j * Example::kItemAttrs,
                         Example::kItemAttrs),
          joined);
      MatView h_bj = arena->Alloc(b, h);
      item_tower_.InferInto(joined, arena, h_bj);
      CopyInto(h_bj, out.ColBlock(j * h, h));
      arena->Rewind(mark);
    }
  } else {
    // Sum pooling weighs positions by the mask alone, so the pooled
    // v_user itself is candidate-independent: cache it pooled.
    const size_t outer = arena->Mark();
    MatView v_user = arena->Alloc(b, h);
    for (int64_t j = 0; j < batch.seq_len; ++j) {
      const size_t mark = arena->Mark();
      MatView joined = arena->Alloc(b, item_in);
      embeddings_->ItemWithAttrsInto(
          batch.behavior_items.data() + j, batch.behavior_cats.data() + j,
          batch.behavior_brands.data() + j, b,
          /*id_stride=*/batch.seq_len,
          MatrixColsView(batch.behavior_attrs, j * Example::kItemAttrs,
                         Example::kItemAttrs),
          joined);
      MatView h_bj = arena->Alloc(b, h);
      item_tower_.InferInto(joined, arena, h_bj);
      const ConstMatView mask_j = MatrixColsView(batch.behavior_mask, j, 1);
      if (j == 0) {
        MulColBroadcastInto(h_bj, mask_j, v_user);
      } else {
        MatView contribution = arena->Alloc(b, h);
        MulColBroadcastInto(h_bj, mask_j, contribution);
        AddInPlace(v_user, contribution);
      }
      arena->Rewind(mark);
    }
    CopyInto(v_user, out.ColBlock(0, h));
    arena->Rewind(outer);
  }

  if (!meta_.recommendation_mode) {
    const size_t mark = arena->Mark();
    MatView q = arena->Alloc(b, embeddings_->emb_dim());
    embeddings_->QueryInto(batch.query_ids.data(), b, q);
    MatView h_query = arena->Alloc(b, h);
    query_tower_.InferInto(q, arena, h_query);
    const int64_t offset =
        pooling_ == UserPooling::kAttention ? batch.seq_len * h : h;
    CopyInto(h_query, out.ColBlock(offset, h));
    arena->Rewind(mark);
  }
}

void InputNetwork::InferCore(const Batch& batch, const ConstMatView* encoding,
                             InferenceArena* arena, MatView out) const {
  const int64_t b = batch.size;
  const int64_t h = dims_.hidden_dim();
  AWMOE_CHECK(out.rows == b && out.cols == output_dim())
      << "InputNetwork::InferInto: out " << out.rows << "x" << out.cols;
  AWMOE_CHECK(batch.seq_len > 0)
      << "InputNetwork::InferInto: empty sequence layout";
  if (encoding != nullptr) {
    AWMOE_CHECK(batch.seq_len == meta_.max_seq_len)
        << "InputNetwork::InferCore: seq_len " << batch.seq_len << " vs meta "
        << meta_.max_seq_len;
  }
  const int64_t item_in = embeddings_->item_dim() + Example::kItemAttrs;
  // Column sub-view of the encoding blob (keeps the row stride, so a
  // broadcast single-row blob stays stride-0).
  auto encoded_block = [&](int64_t offset, int64_t cols) {
    return ConstMatView(encoding->data + offset, b, cols, encoding->stride);
  };

  // v_imp slices, in the ConcatCols order of Forward:
  //   v_user | h_target | [h_query |] h_other
  MatView v_user = out.ColBlock(0, h);
  MatView h_target = out.ColBlock(h, h);
  MatView h_other = out.ColBlock(meta_.recommendation_mode ? 2 * h : 3 * h, h);

  // h_t: target-item tower (Eq. 2). Candidate-dependent, always
  // computed.
  {
    const size_t mark = arena->Mark();
    MatView joined = arena->Alloc(b, item_in);
    embeddings_->ItemWithAttrsInto(batch.target_items.data(),
                                   batch.target_cats.data(),
                                   batch.target_brands.data(), b,
                                   /*id_stride=*/1,
                                   MatrixView(batch.target_attrs), joined);
    item_tower_.InferInto(joined, arena, h_target);
    arena->Rewind(mark);
  }

  // v_u: behaviour pooling (Eq. 3), padded positions masked out. The
  // first position writes v_user, later ones accumulate via a
  // contribution buffer — the exact Add(v_user, contribution) shape of
  // the graph path, so no fused multiply-add can change a bit.
  if (encoding != nullptr && pooling_ == UserPooling::kSumPool) {
    // The blob carries the pooled vector itself; nothing to weigh.
    CopyInto(encoded_block(0, h), v_user);
  } else {
    for (int64_t j = 0; j < batch.seq_len; ++j) {
      const size_t mark = arena->Mark();
      MatView h_bj = arena->Alloc(b, h);
      if (encoding != nullptr) {
        // Replay the cached position from the blob into arena storage:
        // downstream kernels read the same aligned-arena views as the
        // fused path, only the tower forward is skipped.
        CopyInto(encoded_block(j * h, h), h_bj);
      } else {
        MatView joined = arena->Alloc(b, item_in);
        embeddings_->ItemWithAttrsInto(
            batch.behavior_items.data() + j, batch.behavior_cats.data() + j,
            batch.behavior_brands.data() + j, b,
            /*id_stride=*/batch.seq_len,
            MatrixColsView(batch.behavior_attrs, j * Example::kItemAttrs,
                           Example::kItemAttrs),
            joined);
        item_tower_.InferInto(joined, arena, h_bj);
      }

      const ConstMatView mask_j = MatrixColsView(batch.behavior_mask, j, 1);
      ConstMatView weights;  // [B, 1] per-row factor of this position.
      if (pooling_ == UserPooling::kAttention) {
        MatView w_j = arena->Alloc(b, 1);
        activation_unit_.InferInto(h_bj, h_target, arena, w_j);
        MatView masked = arena->Alloc(b, 1);
        MulInto(w_j, mask_j, masked);
        weights = masked;
      } else {
        weights = mask_j;
      }
      if (j == 0) {
        MulColBroadcastInto(h_bj, weights, v_user);
      } else {
        MatView contribution = arena->Alloc(b, h);
        MulColBroadcastInto(h_bj, weights, contribution);
        AddInPlace(v_user, contribution);
      }
      arena->Rewind(mark);
    }
  }

  // h_o: profile + cross/numeric features.
  {
    const size_t mark = arena->Mark();
    const int64_t e = embeddings_->emb_dim();
    MatView joined = arena->Alloc(b, 2 * e + meta_.numeric_dim);
    embeddings_->AgeInto(batch.age_segments.data(), b, joined.ColBlock(0, e));
    embeddings_->ShopInto(batch.target_shops.data(), b,
                          joined.ColBlock(e, e));
    CopyInto(MatrixView(batch.numeric),
             joined.ColBlock(2 * e, meta_.numeric_dim));
    other_tower_.InferInto(joined, arena, h_other);
    arena->Rewind(mark);
  }

  if (!meta_.recommendation_mode) {
    if (encoding != nullptr) {
      const int64_t offset =
          pooling_ == UserPooling::kAttention ? batch.seq_len * h : h;
      CopyInto(encoded_block(offset, h), out.ColBlock(2 * h, h));
    } else {
      const size_t mark = arena->Mark();
      MatView q = arena->Alloc(b, embeddings_->emb_dim());
      embeddings_->QueryInto(batch.query_ids.data(), b, q);
      query_tower_.InferInto(q, arena, out.ColBlock(2 * h, h));
      arena->Rewind(mark);
    }
  }
}

void InputNetwork::CollectParameters(std::vector<Var>* params) const {
  item_tower_.CollectParameters(params);
  if (!meta_.recommendation_mode) query_tower_.CollectParameters(params);
  other_tower_.CollectParameters(params);
  if (pooling_ == UserPooling::kAttention) {
    activation_unit_.CollectParameters(params);
  }
}

}  // namespace awmoe
