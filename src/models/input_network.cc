#include "models/input_network.h"

#include "autograd/ops.h"
#include "mat/kernels.h"

namespace awmoe {

InputNetwork::InputNetwork(const DatasetMeta& meta, const ModelDims& dims,
                           const EmbeddingSet* embeddings,
                           UserPooling pooling, Rng* rng)
    : meta_(meta),
      dims_(dims),
      embeddings_(embeddings),
      pooling_(pooling),
      item_tower_(embeddings->item_dim() + Example::kItemAttrs,
                  dims.tower_mlp, rng),
      query_tower_(embeddings->emb_dim(), dims.tower_mlp, rng),
      other_tower_(2 * embeddings->emb_dim() + meta.numeric_dim,
                   dims.tower_mlp, rng),
      activation_unit_(dims.hidden_dim(), dims.activation_unit, rng) {}

int64_t InputNetwork::output_dim() const {
  int64_t parts = meta_.recommendation_mode ? 3 : 4;
  return parts * dims_.hidden_dim();
}

Var InputNetwork::Forward(const Batch& batch) const {
  // h_t: target-item tower (Eq. 2). Item representations combine the id
  // embeddings with the item's dense side-info attributes.
  Var h_target = item_tower_.Forward(ag::ConcatCols(
      {embeddings_->ItemTriple(batch.target_items, batch.target_cats,
                               batch.target_brands),
       Var(batch.target_attrs)}));

  // v_u: behaviour pooling (Eq. 3), padded positions masked out.
  Var v_user;
  for (int64_t j = 0; j < batch.seq_len; ++j) {
    Var h_bj = item_tower_.Forward(ag::ConcatCols(
        {embeddings_->ItemTriple(
             batch.BehaviorColumn(batch.behavior_items, j),
             batch.BehaviorColumn(batch.behavior_cats, j),
             batch.BehaviorColumn(batch.behavior_brands, j)),
         Var(batch.BehaviorAttrsColumn(j))}));
    Matrix mask_j = batch.MaskColumn(j);
    Var contribution;
    if (pooling_ == UserPooling::kAttention) {
      Var w_j = activation_unit_.Forward(h_bj, h_target);
      Var masked_w = ag::MulMask(w_j, mask_j);
      contribution = ag::MulColBroadcast(h_bj, masked_w);
    } else {
      contribution = ag::MulMask(
          h_bj, BroadcastCol(mask_j, h_bj.cols()));
    }
    v_user = v_user.defined() ? ag::Add(v_user, contribution) : contribution;
  }

  // h_o: profile + cross/numeric features.
  Var h_other = other_tower_.Forward(ag::ConcatCols(
      {embeddings_->Age(batch.age_segments),
       embeddings_->Shop(batch.target_shops), Var(batch.numeric)}));

  if (meta_.recommendation_mode) {
    return ag::ConcatCols({v_user, h_target, h_other});
  }
  Var h_query = query_tower_.Forward(embeddings_->Query(batch.query_ids));
  return ag::ConcatCols({v_user, h_target, h_query, h_other});
}

void InputNetwork::CollectParameters(std::vector<Var>* params) const {
  item_tower_.CollectParameters(params);
  if (!meta_.recommendation_mode) query_tower_.CollectParameters(params);
  other_tower_.CollectParameters(params);
  if (pooling_ == UserPooling::kAttention) {
    activation_unit_.CollectParameters(params);
  }
}

}  // namespace awmoe
