#ifndef AWMOE_MODELS_MODEL_DIMS_H_
#define AWMOE_MODELS_MODEL_DIMS_H_

#include <cstdint>
#include <vector>

namespace awmoe {

/// Layer widths for every unit in Fig. 4. `PaperScale()` reproduces the
/// published sizes; `Default()` is a quarter-scale variant sized for
/// single-core CPU training (the benches use it — see DESIGN.md §4).
struct ModelDims {
  int64_t emb_dim = 8;
  /// Hidden dims of the per-feature-type tower MLPs (paper: 64x32).
  std::vector<int64_t> tower_mlp = {32, 16};
  /// Hidden dims of the activation unit before its scalar output
  /// (paper: 32x16, then x1).
  std::vector<int64_t> activation_unit = {16, 8};
  /// Hidden dims of the gate unit before its K-wide output
  /// (paper: 32x16, then xK).
  std::vector<int64_t> gate_unit = {16, 8};
  /// Hidden dims of the expert network before its scalar output
  /// (paper: 512x256, then x1).
  std::vector<int64_t> expert = {128, 64};
  /// Number of expert networks K (paper: 4).
  int64_t num_experts = 4;

  /// Quarter-scale default (CPU friendly).
  static ModelDims Default() { return ModelDims{}; }

  /// The paper's published layer sizes (§IV-D, Fig. 4).
  static ModelDims PaperScale() {
    ModelDims dims;
    dims.emb_dim = 16;
    dims.tower_mlp = {64, 32};
    dims.activation_unit = {32, 16};
    dims.gate_unit = {32, 16};
    dims.expert = {512, 256};
    dims.num_experts = 4;
    return dims;
  }

  /// Width of a tower output h_tau.
  int64_t hidden_dim() const { return tower_mlp.back(); }
};

}  // namespace awmoe

#endif  // AWMOE_MODELS_MODEL_DIMS_H_
