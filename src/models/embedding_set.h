#ifndef AWMOE_MODELS_EMBEDDING_SET_H_
#define AWMOE_MODELS_EMBEDDING_SET_H_

#include <cstdint>
#include <vector>

#include "data/example.h"
#include "nn/embedding.h"
#include "nn/module.h"
#include "util/rng.h"

namespace awmoe {

/// The shared embedding layer of Fig. 3: item/category/brand/shop/query/age
/// tables. Per the paper the gate network reuses the *same* embeddings as
/// the input network (§III-C2), so a single EmbeddingSet instance is shared
/// by both (the tower MLPs on top are separate).
class EmbeddingSet : public Module {
 public:
  EmbeddingSet(const DatasetMeta& meta, int64_t emb_dim, Rng* rng);

  /// concat(item, cat, brand) embeddings: [n, 3*emb_dim]. Used for both
  /// behaviour-sequence items and the target item.
  Var ItemTriple(const std::vector<int64_t>& items,
                 const std::vector<int64_t>& cats,
                 const std::vector<int64_t>& brands) const;

  /// Query embedding: [n, emb_dim].
  Var Query(const std::vector<int64_t>& query_ids) const;

  /// Shop embedding: [n, emb_dim].
  Var Shop(const std::vector<int64_t>& shop_ids) const;

  /// Age-segment embedding: [n, emb_dim].
  Var Age(const std::vector<int64_t>& age_segments) const;

  /// Category embedding alone (Category-MoE gate input): [n, emb_dim].
  Var Category(const std::vector<int64_t>& cat_ids) const;

  // --- Graph-free lookups into caller buffers (ScoreInto path). The
  // id stride addresses one sequence position of a Batch's row-major
  // [size * seq_len] layout directly (stride 1 for per-row id lists).

  /// concat(item, cat, brand) rows into `out` [count, item_dim()].
  void ItemTripleInto(const int64_t* items, const int64_t* cats,
                      const int64_t* brands, int64_t count,
                      int64_t id_stride, MatView out) const;

  /// Item-tower input layout: [ItemTriple | attrs] into `out`
  /// [count, item_dim() + attrs.cols]. One definition of the packing
  /// shared by every tower that consumes items with side-info (target
  /// and behaviour positions of the input and gate networks).
  void ItemWithAttrsInto(const int64_t* items, const int64_t* cats,
                         const int64_t* brands, int64_t count,
                         int64_t id_stride, const ConstMatView& attrs,
                         MatView out) const;

  void QueryInto(const int64_t* query_ids, int64_t count, MatView out) const;
  void ShopInto(const int64_t* shop_ids, int64_t count, MatView out) const;
  void AgeInto(const int64_t* age_segments, int64_t count, MatView out) const;
  void CategoryInto(const int64_t* cat_ids, int64_t count, MatView out) const;

  void CollectParameters(std::vector<Var>* params) const override;

  int64_t emb_dim() const { return emb_dim_; }
  /// Width of ItemTriple outputs.
  int64_t item_dim() const { return 3 * emb_dim_; }

 private:
  int64_t emb_dim_;
  EmbeddingTable item_;
  EmbeddingTable cat_;
  EmbeddingTable brand_;
  EmbeddingTable shop_;
  EmbeddingTable query_;
  EmbeddingTable age_;
};

}  // namespace awmoe

#endif  // AWMOE_MODELS_EMBEDDING_SET_H_
