#ifndef AWMOE_MODELS_DNN_RANKER_H_
#define AWMOE_MODELS_DNN_RANKER_H_

#include <memory>
#include <string>
#include <vector>

#include "models/embedding_set.h"
#include "models/expert.h"
#include "models/input_network.h"
#include "models/model_dims.h"
#include "models/ranker.h"
#include "util/rng.h"

namespace awmoe {

/// Baseline "DNN" [1] (YouTube DNN style): the user vector is the
/// sum-pooled behaviour sequence and a single FFN (with the same structure
/// as one expert network, per §IV-D) produces the ranking score.
class DnnRanker : public Ranker {
 public:
  DnnRanker(const DatasetMeta& meta, const ModelDims& dims, Rng* rng);

  Var ForwardLogits(const Batch& batch) override;
  std::vector<Var> Parameters() const override;
  std::string name() const override { return "DNN"; }
  std::unique_ptr<Ranker> Clone() const override;

  /// Allocation-free inference path (no gate: `gate` must be null).
  void ScoreInto(const Batch& batch, const SessionGate* gate,
                 InferenceWorkspace* workspace,
                 std::span<float> out) override;

  // Session feature store: with sum pooling the pooled user vector
  // itself is candidate-independent, so the whole behaviour half of the
  // forward pass is cacheable.
  int64_t SessionEncodingWidth() const override;
  bool SupportsSessionEncodingReuse(const DatasetMeta& meta) const override {
    (void)meta;
    return true;
  }
  void EncodeSessionInto(const Batch& batch, InferenceWorkspace* workspace,
                         std::span<float> out) override;
  void ScoreWithSessionInto(const Batch& batch, const SessionGate* gate,
                            const SessionEncoding* encoding,
                            InferenceWorkspace* workspace,
                            std::span<float> out) override;

 private:
  DatasetMeta meta_;
  ModelDims dims_;
  EmbeddingSet embeddings_;
  InputNetwork input_network_;
  ExpertNetwork ffn_;
};

/// Baseline "DIN" [2]: identical to DnnRanker but the user vector uses the
/// activation-unit attention of Eq. 3.
class DinRanker : public Ranker {
 public:
  DinRanker(const DatasetMeta& meta, const ModelDims& dims, Rng* rng);

  Var ForwardLogits(const Batch& batch) override;
  std::vector<Var> Parameters() const override;
  std::string name() const override { return "DIN"; }
  std::unique_ptr<Ranker> Clone() const override;

  /// Allocation-free inference path (no gate: `gate` must be null).
  void ScoreInto(const Batch& batch, const SessionGate* gate,
                 InferenceWorkspace* workspace,
                 std::span<float> out) override;

  // Session feature store: the per-position behaviour-tower outputs the
  // activation unit attends over (§III-C) are candidate-independent and
  // cacheable; only the attention weighting replays per candidate.
  int64_t SessionEncodingWidth() const override;
  bool SupportsSessionEncodingReuse(const DatasetMeta& meta) const override {
    (void)meta;
    return true;
  }
  void EncodeSessionInto(const Batch& batch, InferenceWorkspace* workspace,
                         std::span<float> out) override;
  void ScoreWithSessionInto(const Batch& batch, const SessionGate* gate,
                            const SessionEncoding* encoding,
                            InferenceWorkspace* workspace,
                            std::span<float> out) override;

 private:
  DatasetMeta meta_;
  ModelDims dims_;
  EmbeddingSet embeddings_;
  InputNetwork input_network_;
  ExpertNetwork ffn_;
};

}  // namespace awmoe

#endif  // AWMOE_MODELS_DNN_RANKER_H_
