#include "models/ranker.h"

#include <algorithm>

#include "nn/inference.h"
#include "util/check.h"

namespace awmoe {

std::unique_ptr<InferenceWorkspace> Ranker::CreateInferenceWorkspace(
    int64_t max_batch_candidates) const {
  return std::make_unique<InferenceWorkspace>(max_batch_candidates);
}

void Ranker::ScoreInto(const Batch& batch, const SessionGate* gate,
                       InferenceWorkspace* workspace, std::span<float> out) {
  // Base fallback for rankers without a dedicated kernel path: correct
  // (and graph-free via NoGradGuard) but not allocation-free. The four
  // shipped rankers all override this.
  AWMOE_CHECK(gate == nullptr)
      << name() << " has no session gate; ScoreInto got one";
  CheckScoreIntoArgs(batch, workspace, out.size());
  Matrix logits = InferenceLogits(batch);
  for (int64_t i = 0; i < batch.size; ++i) {
    out[static_cast<size_t>(i)] = logits(i, 0);
  }
}

void Ranker::GateInto(const Batch& batch, InferenceWorkspace* workspace,
                      std::span<float> out) {
  (void)batch;
  (void)workspace;
  (void)out;
  AWMOE_CHECK(false) << name()
                     << " has no session gate (SessionGateWidth() == 0)";
}

void Ranker::EncodeSessionInto(const Batch& batch,
                               InferenceWorkspace* workspace,
                               std::span<float> out) {
  (void)batch;
  (void)workspace;
  (void)out;
  AWMOE_CHECK(false)
      << name() << " has no session encoding (SessionEncodingWidth() == 0)";
}

void Ranker::ScoreWithSessionInto(const Batch& batch, const SessionGate* gate,
                                  const SessionEncoding* encoding,
                                  InferenceWorkspace* workspace,
                                  std::span<float> out) {
  // Base behaviour: without an encoding this IS the fused path; an
  // encoding handed to a model without a split path is a caller bug.
  AWMOE_CHECK(encoding == nullptr)
      << name() << " has no session encoding (SessionEncodingWidth() == 0)";
  ScoreInto(batch, gate, workspace, out);
}

void Ranker::ScoreSlateInto(const Batch& batch,
                            std::span<const int64_t> slate_starts,
                            InferenceWorkspace* workspace,
                            std::span<float> out) {
  (void)batch;
  (void)slate_starts;
  (void)workspace;
  (void)out;
  AWMOE_CHECK(false) << name()
                     << " is pointwise (SupportsSlateScoring() == false)";
}

void CheckScoreIntoArgs(const Batch& batch,
                        const InferenceWorkspace* workspace,
                        size_t out_size) {
  AWMOE_CHECK(workspace != nullptr) << "ScoreInto: null workspace";
  AWMOE_CHECK(batch.size <= workspace->max_candidates())
      << "ScoreInto: batch " << batch.size << " exceeds workspace capacity "
      << workspace->max_candidates();
  AWMOE_CHECK(static_cast<int64_t>(out_size) >= batch.size)
      << "ScoreInto: out span " << out_size << " < batch " << batch.size;
}

ConstMatView ResolveSessionGate(const SessionGate& gate, int64_t batch_size,
                                int64_t width) {
  AWMOE_CHECK(gate.data != nullptr) << "SessionGate: null data";
  AWMOE_CHECK(gate.width == width)
      << "SessionGate: width " << gate.width << " vs model " << width;
  AWMOE_CHECK(gate.rows == batch_size || gate.rows == 1)
      << "SessionGate: rows " << gate.rows << " vs batch " << batch_size;
  // A single row broadcasts via stride 0 — every candidate reads the
  // same gate, matching the GatherRows row-0 replication of the legacy
  // ForwardLogitsWithGate path.
  const int64_t stride = gate.rows == 1 ? 0 : width;
  return ConstMatView(gate.data, batch_size, width, stride);
}

ConstMatView ResolveSessionEncoding(const SessionEncoding& encoding,
                                    int64_t batch_size, int64_t width) {
  AWMOE_CHECK(encoding.data != nullptr) << "SessionEncoding: null data";
  AWMOE_CHECK(encoding.width == width)
      << "SessionEncoding: width " << encoding.width << " vs model " << width;
  AWMOE_CHECK(encoding.rows == batch_size || encoding.rows == 1)
      << "SessionEncoding: rows " << encoding.rows << " vs batch "
      << batch_size;
  const int64_t stride = encoding.rows == 1 ? 0 : width;
  return ConstMatView(encoding.data, batch_size, width, stride);
}

void CopyParametersInto(const Ranker& src, Ranker* dst) {
  AWMOE_CHECK(dst != nullptr) << "CopyParametersInto: null destination";
  std::vector<Var> from = src.Parameters();
  std::vector<Var> to = dst->Parameters();
  AWMOE_CHECK(from.size() == to.size())
      << "CopyParametersInto: parameter count mismatch (" << from.size()
      << " vs " << to.size() << ")";
  for (size_t i = 0; i < from.size(); ++i) {
    const Matrix& value = from[i].value();
    AWMOE_CHECK(value.rows() == to[i].rows() &&
                value.cols() == to[i].cols())
        << "CopyParametersInto: shape mismatch at parameter " << i;
    // Matrix is a value type: assignment copies the buffer, so the two
    // models share no storage after this.
    to[i].mutable_value() = value;
  }
}

}  // namespace awmoe
