#include "models/ranker.h"

#include "util/check.h"

namespace awmoe {

void CopyParametersInto(const Ranker& src, Ranker* dst) {
  AWMOE_CHECK(dst != nullptr) << "CopyParametersInto: null destination";
  std::vector<Var> from = src.Parameters();
  std::vector<Var> to = dst->Parameters();
  AWMOE_CHECK(from.size() == to.size())
      << "CopyParametersInto: parameter count mismatch (" << from.size()
      << " vs " << to.size() << ")";
  for (size_t i = 0; i < from.size(); ++i) {
    const Matrix& value = from[i].value();
    AWMOE_CHECK(value.rows() == to[i].rows() &&
                value.cols() == to[i].cols())
        << "CopyParametersInto: shape mismatch at parameter " << i;
    // Matrix is a value type: assignment copies the buffer, so the two
    // models share no storage after this.
    to[i].mutable_value() = value;
  }
}

}  // namespace awmoe
