#include "models/expert.h"

#include "autograd/ops.h"

namespace awmoe {

namespace {
std::vector<int64_t> WithScalarOutput(std::vector<int64_t> dims) {
  dims.push_back(1);
  return dims;
}
}  // namespace

ExpertNetwork::ExpertNetwork(int64_t input_dim, const ModelDims& dims,
                             Rng* rng)
    : mlp_(input_dim, WithScalarOutput(dims.expert), rng) {}

Var ExpertNetwork::Forward(const Var& v_imp) const {
  return mlp_.Forward(v_imp);
}

void ExpertNetwork::InferInto(const ConstMatView& v_imp,
                              InferenceArena* arena, MatView out) const {
  mlp_.InferInto(v_imp, arena, out);
}

void ExpertNetwork::CollectParameters(std::vector<Var>* params) const {
  mlp_.CollectParameters(params);
}

ExpertBank::ExpertBank(int64_t input_dim, const ModelDims& dims, Rng* rng) {
  AWMOE_CHECK(dims.num_experts >= 1) << "num_experts=" << dims.num_experts;
  experts_.reserve(static_cast<size_t>(dims.num_experts));
  for (int64_t k = 0; k < dims.num_experts; ++k) {
    experts_.emplace_back(input_dim, dims, rng);
  }
}

Var ExpertBank::ForwardAll(const Var& v_imp) const {
  std::vector<Var> scores;
  scores.reserve(experts_.size());
  for (const ExpertNetwork& expert : experts_) {
    scores.push_back(expert.Forward(v_imp));
  }
  return ag::ConcatCols(scores);
}

void ExpertBank::InferAllInto(const ConstMatView& v_imp,
                              InferenceArena* arena, MatView out) const {
  AWMOE_CHECK(out.rows == v_imp.rows &&
              out.cols == static_cast<int64_t>(experts_.size()))
      << "InferAllInto: out " << out.rows << "x" << out.cols;
  for (size_t k = 0; k < experts_.size(); ++k) {
    experts_[k].InferInto(v_imp, arena,
                          out.ColBlock(static_cast<int64_t>(k), 1));
  }
}

void ExpertBank::CollectParameters(std::vector<Var>* params) const {
  for (const ExpertNetwork& expert : experts_) {
    expert.CollectParameters(params);
  }
}

}  // namespace awmoe
