#ifndef AWMOE_MODELS_CATEGORY_MOE_H_
#define AWMOE_MODELS_CATEGORY_MOE_H_

#include <memory>
#include <string>
#include <vector>

#include "models/embedding_set.h"
#include "models/expert.h"
#include "models/input_network.h"
#include "models/model_dims.h"
#include "models/ranker.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace awmoe {

/// Baseline "Category-MoE" [34]: MoE over the same expert bank as AW-MoE,
/// but the gate is a vanilla FFN fed with the *query category* embedding
/// (the target category in recommendation mode). The gate output is
/// softmax-normalised, the convention of [34]; this is the model AW-MoE
/// replaced in production (§IV-E1).
class CategoryMoeRanker : public Ranker {
 public:
  CategoryMoeRanker(const DatasetMeta& meta, const ModelDims& dims,
                    Rng* rng);

  Var ForwardLogits(const Batch& batch) override;
  std::vector<Var> Parameters() const override;
  std::string name() const override { return "Category-MoE"; }
  std::unique_ptr<Ranker> Clone() const override;

  /// The softmax gate activations [B, K]; exposed for tests.
  Var GateRepresentation(const Batch& batch) override;

 private:
  DatasetMeta meta_;
  ModelDims dims_;
  EmbeddingSet embeddings_;
  InputNetwork input_network_;
  ExpertBank experts_;
  Mlp gate_mlp_;
};

}  // namespace awmoe

#endif  // AWMOE_MODELS_CATEGORY_MOE_H_
