#ifndef AWMOE_MODELS_CATEGORY_MOE_H_
#define AWMOE_MODELS_CATEGORY_MOE_H_

#include <memory>
#include <string>
#include <vector>

#include "models/embedding_set.h"
#include "models/expert.h"
#include "models/input_network.h"
#include "models/model_dims.h"
#include "models/ranker.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace awmoe {

/// Baseline "Category-MoE" [34]: MoE over the same expert bank as AW-MoE,
/// but the gate is a vanilla FFN fed with the *query category* embedding
/// (the target category in recommendation mode). The gate output is
/// softmax-normalised, the convention of [34]; this is the model AW-MoE
/// replaced in production (§IV-E1).
class CategoryMoeRanker : public Ranker {
 public:
  CategoryMoeRanker(const DatasetMeta& meta, const ModelDims& dims,
                    Rng* rng);

  Var ForwardLogits(const Batch& batch) override;
  std::vector<Var> Parameters() const override;
  std::string name() const override { return "Category-MoE"; }
  std::unique_ptr<Ranker> Clone() const override;

  /// The softmax gate activations [B, K]; exposed for tests.
  Var GateRepresentation(const Batch& batch) override;

  /// Allocation-free inference path; accepts a precomputed gate.
  void ScoreInto(const Batch& batch, const SessionGate* gate,
                 InferenceWorkspace* workspace,
                 std::span<float> out) override;

  /// Graph-free gate rows [B, K] (softmaxed FFN over the category
  /// embedding) for the serving engine's per-session probe.
  void GateInto(const Batch& batch, InferenceWorkspace* workspace,
                std::span<float> out) override;

  int64_t SessionGateWidth() const override { return dims_.num_experts; }

  /// In search mode the gate reads only the query category — constant
  /// within a session (and covered by the serving engine's gate-context
  /// hash), so one gate row serves every candidate. In recommendation
  /// mode it reads the target category: per-item, no reuse. The old
  /// serving path could not exploit this (it downcast to AwMoeRanker);
  /// the ScoreInto gate parameter makes it model-agnostic.
  bool SupportsSessionGateReuse(const DatasetMeta& meta) const override {
    return !meta.recommendation_mode;
  }

 private:
  /// Graph-free gate rows into `g` [B, K].
  void GateRowsInto(const Batch& batch, InferenceArena* arena,
                    MatView g) const;

  DatasetMeta meta_;
  ModelDims dims_;
  EmbeddingSet embeddings_;
  InputNetwork input_network_;
  ExpertBank experts_;
  Mlp gate_mlp_;
};

}  // namespace awmoe

#endif  // AWMOE_MODELS_CATEGORY_MOE_H_
