#include "nn/inference.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "nn/kernels_fast.h"

namespace awmoe {

namespace {

void CheckSameShapeView(const ConstMatView& a, const ConstMatView& b,
                        const char* op) {
  AWMOE_CHECK(a.rows == b.rows && a.cols == b.cols)
      << op << ": shape mismatch " << a.rows << "x" << a.cols << " vs "
      << b.rows << "x" << b.cols;
}

}  // namespace

// ---------------------------------------------------------------------
// Aligned storage.
// ---------------------------------------------------------------------

void AlignedBuffer::Reserve(size_t floats, bool preserve) {
  if (floats <= capacity_) return;
  // Geometric growth, like std::vector, so a warmup that creeps up in
  // batch size does not reallocate per step.
  const size_t new_capacity = std::max(floats, capacity_ * 2);
  float* fresh = static_cast<float*>(::operator new(
      new_capacity * sizeof(float), std::align_val_t(kAlignment)));
  if (preserve && data_ != nullptr) {
    std::memcpy(fresh, data_, capacity_ * sizeof(float));
  }
  Release();
  data_ = fresh;
  capacity_ = new_capacity;
}

void AlignedBuffer::Release() {
  if (data_ != nullptr) {
    ::operator delete(data_, std::align_val_t(kAlignment));
  }
  data_ = nullptr;
  capacity_ = 0;
}

MatView InferenceArena::Alloc(int64_t rows, int64_t cols) {
  AWMOE_CHECK(rows >= 0 && cols >= 0)
      << "InferenceArena::Alloc " << rows << "x" << cols;
  // Row stride padded to the slab alignment so every row — not just the
  // slab base — is 64-byte aligned. Padding lanes are never touched by
  // kernels (they iterate c < cols).
  const int64_t stride = (cols + kAlignFloats - 1) / kAlignFloats *
                         kAlignFloats;
  const size_t needed = static_cast<size_t>(rows * stride);
  if (next_ == slabs_.size()) slabs_.emplace_back();
  AlignedBuffer& slab = slabs_[next_++];
  // Reserve never shrinks capacity, so a warmed slab serves any batch
  // up to the largest it has seen without touching the heap.
  if (slab.capacity() < needed) slab.Reserve(needed);
  AWMOE_DCHECK(reinterpret_cast<uintptr_t>(slab.data()) %
                   AlignedBuffer::kAlignment ==
               0)
      << "arena slab base lost its alignment";
  return MatView{slab.data(), rows, cols, stride};
}

std::span<float> InferenceWorkspace::Staging(StagingSlot slot, int64_t n) {
  AWMOE_CHECK(n >= 0) << "Staging size " << n;
  AlignedBuffer& buffer = staging_[slot];
  if (buffer.capacity() < static_cast<size_t>(n)) {
    buffer.Reserve(static_cast<size_t>(n), /*preserve=*/true);
  }
  return std::span<float>(buffer.data(), static_cast<size_t>(n));
}

// ---------------------------------------------------------------------
// Reference-tier kernels: bitwise mirrors of mat/kernels.cc.
// ---------------------------------------------------------------------

namespace {

void MatMulReference(const ConstMatView& a, const Matrix& w, MatView out) {
  const int64_t m = a.rows, k = a.cols, n = w.cols();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = out.row(i);
    std::fill(crow, crow + n, 0.0f);
    for (int64_t p = 0; p < k; ++p) {
      const float aip = arow[p];
      if (aip == 0.0f) continue;
      const float* brow = w.row(p);
      for (int64_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

void AddBiasReference(MatView a, const Matrix& bias) {
  const float* pb = bias.data();
  for (int64_t r = 0; r < a.rows; ++r) {
    float* arow = a.row(r);
    for (int64_t c = 0; c < a.cols; ++c) arow[c] = arow[c] + pb[c];
  }
}

void ReluReference(MatView a) {
  for (int64_t r = 0; r < a.rows; ++r) {
    float* arow = a.row(r);
    for (int64_t c = 0; c < a.cols; ++c) {
      arow[c] = arow[c] > 0.0f ? arow[c] : 0.0f;
    }
  }
}

void SigmoidSpanReference(const float* x, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = StableSigmoid(x[i]);
}

constexpr KernelDispatchTable kReferenceTable = {
    /*name=*/"reference-scalar",
    /*bitwise_reference=*/true,
    /*matmul=*/MatMulReference,
    /*add_bias=*/AddBiasReference,
    /*relu=*/ReluReference,
    /*sigmoid_span=*/SigmoidSpanReference,
};

// ---------------------------------------------------------------------
// Tier resolution and dispatch state.
// ---------------------------------------------------------------------

bool CpuSupportsAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// Active tier; -1 = not resolved yet. Benign first-use race: every
/// resolver computes the same value.
std::atomic<int> g_active_tier{-1};

/// Row-parallelism thread budget; -1 = not resolved from the
/// environment yet, 0/1 = off.
std::atomic<int> g_row_threads{-1};

constexpr int kMaxRowThreads = 64;
/// Minimum rows a parallel chunk must carry for the split to pay.
constexpr int64_t kMinRowsPerChunk = 16;

}  // namespace

bool FastKernelTierAvailable() {
  return FastKernelTableOrNull() != nullptr && CpuSupportsAvx2Fma();
}

KernelTier ResolveKernelTier(const char* force_scalar, bool fast_available) {
  const bool forced = force_scalar != nullptr && force_scalar[0] != '\0' &&
                      !(force_scalar[0] == '0' && force_scalar[1] == '\0');
  if (forced || !fast_available) return KernelTier::kReference;
  return KernelTier::kFast;
}

KernelTier ActiveKernelTier() {
  int tier = g_active_tier.load(std::memory_order_acquire);
  if (tier < 0) {
    tier = static_cast<int>(ResolveKernelTier(
        std::getenv("AWMOE_FORCE_SCALAR"), FastKernelTierAvailable()));
    g_active_tier.store(tier, std::memory_order_release);
  }
  return static_cast<KernelTier>(tier);
}

void SetKernelTier(KernelTier tier) {
  if (tier == KernelTier::kFast) {
    AWMOE_CHECK(FastKernelTierAvailable())
        << "fast kernel tier not available on this build/CPU";
  }
  g_active_tier.store(static_cast<int>(tier), std::memory_order_release);
}

const char* KernelTierName(KernelTier tier) {
  return GetKernelTable(tier).name;
}

const KernelDispatchTable& GetKernelTable(KernelTier tier) {
  if (tier == KernelTier::kFast) {
    const KernelDispatchTable* fast = FastKernelTableOrNull();
    AWMOE_CHECK(fast != nullptr) << "fast kernel tier not compiled in";
    return *fast;
  }
  return kReferenceTable;
}

const KernelDispatchTable& ActiveKernels() {
  return GetKernelTable(ActiveKernelTier());
}

// ---------------------------------------------------------------------
// Optional intra-batch row parallelism.
//
// A persistent worker pool (created on first enable, deliberately
// leaked so shutdown never races static destruction) splits a matmul's
// row range into contiguous chunks claimed off one atomic counter.
// Rows are arithmetic-independent and position-invariant in both
// tiers, so the parallel product is bitwise identical to the serial
// one at the same tier. One matmul runs at a time (run_mu_): this is
// an opt-in throughput lever for large batches, not a fleet-wide
// scheduler — serving lanes already parallelise across requests.
// ---------------------------------------------------------------------

namespace {

class RowParallelPool {
 public:
  static RowParallelPool& Instance() {
    static RowParallelPool* pool = new RowParallelPool();
    return *pool;
  }

  /// Grows the pool to `workers` threads (never shrinks; the caller
  /// thread works too, so `threads` parallelism needs threads-1
  /// workers).
  void EnsureWorkers(int workers) {
    std::lock_guard<std::mutex> run_lock(run_mu_);
    std::unique_lock<std::mutex> lock(mu_);
    while (static_cast<int>(threads_.size()) < workers) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Runs fn(ctx, chunk) for chunk in [0, chunks); blocks until all
  /// chunks finish. The calling thread participates.
  void Run(int chunks, void (*fn)(void*, int), void* ctx) {
    std::lock_guard<std::mutex> run_lock(run_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      fn_ = fn;
      ctx_ = ctx;
      chunks_ = chunks;
      done_ = 0;
      next_chunk_.store(0, std::memory_order_relaxed);
      ++generation_;
    }
    work_cv_.notify_all();
    for (;;) {
      const int chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunks) break;
      fn(ctx, chunk);
    }
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] {
      return done_ == static_cast<int>(threads_.size());
    });
  }

  int workers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(threads_.size());
  }

 private:
  RowParallelPool() = default;

  void WorkerLoop() {
    uint64_t seen = 0;
    for (;;) {
      void (*fn)(void*, int) = nullptr;
      void* ctx = nullptr;
      int chunks = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        fn = fn_;
        ctx = ctx_;
        chunks = chunks_;
      }
      for (;;) {
        const int chunk =
            next_chunk_.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= chunks) break;
        fn(ctx, chunk);
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++done_;
      }
      done_cv_.notify_all();
    }
  }

  /// Serialises Run() calls (and pool growth) against each other.
  std::mutex run_mu_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  uint64_t generation_ = 0;
  int chunks_ = 0;
  int done_ = 0;
  void (*fn_)(void*, int) = nullptr;
  void* ctx_ = nullptr;
  std::atomic<int> next_chunk_{0};
};

struct ParallelMatMulTask {
  const KernelDispatchTable* table;
  const ConstMatView* a;
  const Matrix* w;
  const MatView* out;
  int64_t chunk_rows;
};

void RunMatMulChunk(void* raw, int chunk) {
  const ParallelMatMulTask& task = *static_cast<ParallelMatMulTask*>(raw);
  const int64_t begin = static_cast<int64_t>(chunk) * task.chunk_rows;
  const int64_t end = std::min(task.out->rows, begin + task.chunk_rows);
  if (begin >= end) return;
  const ConstMatView a_slice(task.a->data + begin * task.a->stride,
                             end - begin, task.a->cols, task.a->stride);
  const MatView out_slice{task.out->data + begin * task.out->stride,
                          end - begin, task.out->cols, task.out->stride};
  task.table->matmul(a_slice, *task.w, out_slice);
}

}  // namespace

void SetKernelRowParallelism(int threads) {
  AWMOE_CHECK(threads >= 0 && threads <= kMaxRowThreads)
      << "kernel row parallelism " << threads;
  if (threads > 1) RowParallelPool::Instance().EnsureWorkers(threads - 1);
  g_row_threads.store(threads, std::memory_order_release);
}

int KernelRowParallelism() {
  int threads = g_row_threads.load(std::memory_order_acquire);
  if (threads < 0) {
    threads = 0;
    if (const char* env = std::getenv("AWMOE_KERNEL_THREADS")) {
      threads = std::atoi(env);
      threads = std::clamp(threads, 0, kMaxRowThreads);
    }
    if (threads > 1) RowParallelPool::Instance().EnsureWorkers(threads - 1);
    g_row_threads.store(threads, std::memory_order_release);
  }
  return threads;
}

// ---------------------------------------------------------------------
// Public kernels. Dispatching kernels validate shapes here, then jump
// through the active tier table; the rest stay scalar reference code
// shared by both tiers.
// ---------------------------------------------------------------------

void CopyInto(const ConstMatView& src, MatView out) {
  CheckSameShapeView(src, out, "CopyInto");
  for (int64_t r = 0; r < src.rows; ++r) {
    const float* s = src.row(r);
    std::copy(s, s + src.cols, out.row(r));
  }
}

void MatMulInto(const ConstMatView& a, const Matrix& w, MatView out) {
  AWMOE_CHECK(a.cols == w.rows())
      << "MatMulInto: " << a.rows << "x" << a.cols << " * "
      << w.ShapeString();
  AWMOE_CHECK(out.rows == a.rows && out.cols == w.cols())
      << "MatMulInto: out " << out.rows << "x" << out.cols;
  const KernelDispatchTable& table = ActiveKernels();
  const int threads = KernelRowParallelism();
  if (threads > 1 && out.rows >= 2 * kMinRowsPerChunk &&
      a.stride != 0) {
    const int chunks = static_cast<int>(std::min<int64_t>(
        threads, out.rows / kMinRowsPerChunk));
    if (chunks > 1) {
      const int64_t chunk_rows = (out.rows + chunks - 1) / chunks;
      ParallelMatMulTask task{&table, &a, &w, &out, chunk_rows};
      RowParallelPool::Instance().Run(chunks, RunMatMulChunk, &task);
      return;
    }
  }
  table.matmul(a, w, out);
}

void AddBiasInPlace(MatView a, const Matrix& bias) {
  AWMOE_CHECK(bias.rows() == 1 && bias.cols() == a.cols)
      << "AddBiasInPlace: " << a.rows << "x" << a.cols << " + "
      << bias.ShapeString();
  ActiveKernels().add_bias(a, bias);
}

void ReluInPlace(MatView a) { ActiveKernels().relu(a); }

void SigmoidSpanInto(std::span<const float> x, std::span<float> out) {
  AWMOE_CHECK(x.size() == out.size())
      << "SigmoidSpanInto: " << x.size() << " vs " << out.size();
  ActiveKernels().sigmoid_span(x.data(), out.data(),
                               static_cast<int64_t>(x.size()));
}

void MulInto(const ConstMatView& a, const ConstMatView& b, MatView out) {
  CheckSameShapeView(a, b, "MulInto");
  CheckSameShapeView(a, out, "MulInto(out)");
  for (int64_t r = 0; r < a.rows; ++r) {
    const float* pa = a.row(r);
    const float* pb = b.row(r);
    float* po = out.row(r);
    for (int64_t c = 0; c < a.cols; ++c) po[c] = pa[c] * pb[c];
  }
}

void ConcatInteractionInto(const ConstMatView& a, const ConstMatView& b,
                           MatView out) {
  CheckSameShapeView(a, b, "ConcatInteractionInto");
  AWMOE_CHECK(out.rows == a.rows && out.cols == 3 * a.cols)
      << "ConcatInteractionInto: out " << out.rows << "x" << out.cols;
  const int64_t d = a.cols;
  CopyInto(a, out.ColBlock(0, d));
  CopyInto(b, out.ColBlock(d, d));
  MulInto(a, b, out.ColBlock(2 * d, d));
}

void AddInPlace(MatView a, const ConstMatView& b) {
  CheckSameShapeView(a, b, "AddInPlace");
  for (int64_t r = 0; r < a.rows; ++r) {
    float* pa = a.row(r);
    const float* pb = b.row(r);
    for (int64_t c = 0; c < a.cols; ++c) pa[c] = pa[c] + pb[c];
  }
}

void MulColBroadcastInto(const ConstMatView& a, const ConstMatView& w,
                         MatView out) {
  AWMOE_CHECK(w.cols == 1 && w.rows == a.rows)
      << "MulColBroadcastInto: " << a.rows << "x" << a.cols << " * "
      << w.rows << "x" << w.cols;
  CheckSameShapeView(a, out, "MulColBroadcastInto(out)");
  for (int64_t r = 0; r < a.rows; ++r) {
    const float wr = *w.row(r);
    const float* arow = a.row(r);
    float* orow = out.row(r);
    for (int64_t c = 0; c < a.cols; ++c) orow[c] = arow[c] * wr;
  }
}

void DotRowsInto(const ConstMatView& a, const ConstMatView& b, MatView out) {
  CheckSameShapeView(a, b, "DotRowsInto");
  AWMOE_CHECK(out.rows == a.rows && out.cols == 1)
      << "DotRowsInto: out " << out.rows << "x" << out.cols;
  for (int64_t r = 0; r < a.rows; ++r) {
    const float* arow = a.row(r);
    const float* brow = b.row(r);
    float acc = 0.0f;
    for (int64_t c = 0; c < a.cols; ++c) acc += arow[c] * brow[c];
    *out.row(r) = acc;
  }
}

void SoftmaxRowsInPlace(MatView a) {
  AWMOE_CHECK(a.cols > 0) << "SoftmaxRowsInPlace on empty rows";
  for (int64_t r = 0; r < a.rows; ++r) {
    float* arow = a.row(r);
    float max_val = arow[0];
    for (int64_t c = 1; c < a.cols; ++c) max_val = std::max(max_val, arow[c]);
    float denom = 0.0f;
    for (int64_t c = 0; c < a.cols; ++c) {
      arow[c] = std::exp(arow[c] - max_val);
      denom += arow[c];
    }
    for (int64_t c = 0; c < a.cols; ++c) arow[c] /= denom;
  }
}

void MatMulViewInto(const ConstMatView& a, const ConstMatView& b,
                    MatView out) {
  AWMOE_CHECK(a.cols == b.rows)
      << "MatMulViewInto: " << a.rows << "x" << a.cols << " * " << b.rows
      << "x" << b.cols;
  AWMOE_CHECK(out.rows == a.rows && out.cols == b.cols)
      << "MatMulViewInto: out " << out.rows << "x" << out.cols;
  const int64_t m = a.rows, k = a.cols, n = b.cols;
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = out.row(i);
    std::fill(crow, crow + n, 0.0f);
    for (int64_t p = 0; p < k; ++p) {
      const float aip = arow[p];
      if (aip == 0.0f) continue;
      const float* brow = b.row(p);
      for (int64_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

void MatMulNTViewInto(const ConstMatView& a, const ConstMatView& b,
                      MatView out) {
  AWMOE_CHECK(a.cols == b.cols)
      << "MatMulNTViewInto: " << a.rows << "x" << a.cols << " * " << b.rows
      << "x" << b.cols << "^T";
  AWMOE_CHECK(out.rows == a.rows && out.cols == b.rows)
      << "MatMulNTViewInto: out " << out.rows << "x" << out.cols;
  const int64_t m = a.rows, k = a.cols, n = b.rows;
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = out.row(i);
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

void ScaleInPlace(MatView a, float s) {
  for (int64_t r = 0; r < a.rows; ++r) {
    float* arow = a.row(r);
    for (int64_t c = 0; c < a.cols; ++c) arow[c] = arow[c] * s;
  }
}

void TopKMulInPlace(MatView a, int64_t k, InferenceArena* arena) {
  AWMOE_CHECK(k >= 1 && k <= a.cols)
      << "TopKMulInPlace: k=" << k << " cols=" << a.cols;
  const size_t mark = arena->Mark();
  MatView mask = arena->Alloc(1, a.cols);
  for (int64_t r = 0; r < a.rows; ++r) {
    float* arow = a.row(r);
    // Element c survives iff fewer than k elements rank strictly ahead
    // of it under (value desc, index asc) — the same selection as
    // TopKMaskRows' partial_sort. Decisions go to a scratch row first:
    // ranks must all be computed against the unmodified values.
    float* mrow = mask.row(0);
    for (int64_t c = 0; c < a.cols; ++c) {
      int64_t ahead = 0;
      for (int64_t o = 0; o < a.cols; ++o) {
        if (arow[o] > arow[c] || (arow[o] == arow[c] && o < c)) ++ahead;
      }
      mrow[c] = ahead < k ? 1.0f : 0.0f;
    }
    // Multiply (not assign) so g * 0 keeps MulMask's signed zeros.
    for (int64_t c = 0; c < a.cols; ++c) arow[c] = arow[c] * mrow[c];
  }
  arena->Rewind(mark);
}

void GatherRowsInto(const Matrix& table, const int64_t* ids, int64_t count,
                    int64_t id_stride, MatView out) {
  AWMOE_CHECK(out.rows == count && out.cols == table.cols())
      << "GatherRowsInto: out " << out.rows << "x" << out.cols << " for "
      << count << " rows of " << table.ShapeString();
  for (int64_t i = 0; i < count; ++i) {
    const int64_t idx = ids[i * id_stride];
    AWMOE_CHECK(idx >= 0 && idx < table.rows())
        << "GatherRowsInto: index " << idx << " out of " << table.rows();
    const float* src = table.row(idx);
    std::copy(src, src + table.cols(), out.row(i));
  }
}

}  // namespace awmoe
