#include "nn/inference.h"

#include <algorithm>

namespace awmoe {

namespace {

void CheckSameShapeView(const ConstMatView& a, const ConstMatView& b,
                        const char* op) {
  AWMOE_CHECK(a.rows == b.rows && a.cols == b.cols)
      << op << ": shape mismatch " << a.rows << "x" << a.cols << " vs "
      << b.rows << "x" << b.cols;
}

}  // namespace

MatView InferenceArena::Alloc(int64_t rows, int64_t cols) {
  AWMOE_CHECK(rows >= 0 && cols >= 0)
      << "InferenceArena::Alloc " << rows << "x" << cols;
  const size_t needed = static_cast<size_t>(rows * cols);
  if (next_ == slabs_.size()) slabs_.emplace_back();
  std::vector<float>& slab = slabs_[next_++];
  // resize never shrinks capacity, so a warmed slab serves any batch up
  // to the largest it has seen without touching the heap.
  if (slab.size() < needed) slab.resize(needed);
  return MatView{slab.data(), rows, cols, cols};
}

void CopyInto(const ConstMatView& src, MatView out) {
  CheckSameShapeView(src, out, "CopyInto");
  for (int64_t r = 0; r < src.rows; ++r) {
    const float* s = src.row(r);
    std::copy(s, s + src.cols, out.row(r));
  }
}

void MatMulInto(const ConstMatView& a, const Matrix& w, MatView out) {
  AWMOE_CHECK(a.cols == w.rows())
      << "MatMulInto: " << a.rows << "x" << a.cols << " * "
      << w.ShapeString();
  AWMOE_CHECK(out.rows == a.rows && out.cols == w.cols())
      << "MatMulInto: out " << out.rows << "x" << out.cols;
  const int64_t m = a.rows, k = a.cols, n = w.cols();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = out.row(i);
    std::fill(crow, crow + n, 0.0f);
    for (int64_t p = 0; p < k; ++p) {
      const float aip = arow[p];
      if (aip == 0.0f) continue;
      const float* brow = w.row(p);
      for (int64_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

void AddBiasInPlace(MatView a, const Matrix& bias) {
  AWMOE_CHECK(bias.rows() == 1 && bias.cols() == a.cols)
      << "AddBiasInPlace: " << a.rows << "x" << a.cols << " + "
      << bias.ShapeString();
  const float* pb = bias.data();
  for (int64_t r = 0; r < a.rows; ++r) {
    float* arow = a.row(r);
    for (int64_t c = 0; c < a.cols; ++c) arow[c] = arow[c] + pb[c];
  }
}

void ReluInPlace(MatView a) {
  for (int64_t r = 0; r < a.rows; ++r) {
    float* arow = a.row(r);
    for (int64_t c = 0; c < a.cols; ++c) {
      arow[c] = arow[c] > 0.0f ? arow[c] : 0.0f;
    }
  }
}

void MulInto(const ConstMatView& a, const ConstMatView& b, MatView out) {
  CheckSameShapeView(a, b, "MulInto");
  CheckSameShapeView(a, out, "MulInto(out)");
  for (int64_t r = 0; r < a.rows; ++r) {
    const float* pa = a.row(r);
    const float* pb = b.row(r);
    float* po = out.row(r);
    for (int64_t c = 0; c < a.cols; ++c) po[c] = pa[c] * pb[c];
  }
}

void ConcatInteractionInto(const ConstMatView& a, const ConstMatView& b,
                           MatView out) {
  CheckSameShapeView(a, b, "ConcatInteractionInto");
  AWMOE_CHECK(out.rows == a.rows && out.cols == 3 * a.cols)
      << "ConcatInteractionInto: out " << out.rows << "x" << out.cols;
  const int64_t d = a.cols;
  CopyInto(a, out.ColBlock(0, d));
  CopyInto(b, out.ColBlock(d, d));
  MulInto(a, b, out.ColBlock(2 * d, d));
}

void AddInPlace(MatView a, const ConstMatView& b) {
  CheckSameShapeView(a, b, "AddInPlace");
  for (int64_t r = 0; r < a.rows; ++r) {
    float* pa = a.row(r);
    const float* pb = b.row(r);
    for (int64_t c = 0; c < a.cols; ++c) pa[c] = pa[c] + pb[c];
  }
}

void MulColBroadcastInto(const ConstMatView& a, const ConstMatView& w,
                         MatView out) {
  AWMOE_CHECK(w.cols == 1 && w.rows == a.rows)
      << "MulColBroadcastInto: " << a.rows << "x" << a.cols << " * "
      << w.rows << "x" << w.cols;
  CheckSameShapeView(a, out, "MulColBroadcastInto(out)");
  for (int64_t r = 0; r < a.rows; ++r) {
    const float wr = *w.row(r);
    const float* arow = a.row(r);
    float* orow = out.row(r);
    for (int64_t c = 0; c < a.cols; ++c) orow[c] = arow[c] * wr;
  }
}

void DotRowsInto(const ConstMatView& a, const ConstMatView& b, MatView out) {
  CheckSameShapeView(a, b, "DotRowsInto");
  AWMOE_CHECK(out.rows == a.rows && out.cols == 1)
      << "DotRowsInto: out " << out.rows << "x" << out.cols;
  for (int64_t r = 0; r < a.rows; ++r) {
    const float* arow = a.row(r);
    const float* brow = b.row(r);
    float acc = 0.0f;
    for (int64_t c = 0; c < a.cols; ++c) acc += arow[c] * brow[c];
    *out.row(r) = acc;
  }
}

void SoftmaxRowsInPlace(MatView a) {
  AWMOE_CHECK(a.cols > 0) << "SoftmaxRowsInPlace on empty rows";
  for (int64_t r = 0; r < a.rows; ++r) {
    float* arow = a.row(r);
    float max_val = arow[0];
    for (int64_t c = 1; c < a.cols; ++c) max_val = std::max(max_val, arow[c]);
    float denom = 0.0f;
    for (int64_t c = 0; c < a.cols; ++c) {
      arow[c] = std::exp(arow[c] - max_val);
      denom += arow[c];
    }
    for (int64_t c = 0; c < a.cols; ++c) arow[c] /= denom;
  }
}

void TopKMulInPlace(MatView a, int64_t k, InferenceArena* arena) {
  AWMOE_CHECK(k >= 1 && k <= a.cols)
      << "TopKMulInPlace: k=" << k << " cols=" << a.cols;
  const size_t mark = arena->Mark();
  MatView mask = arena->Alloc(1, a.cols);
  for (int64_t r = 0; r < a.rows; ++r) {
    float* arow = a.row(r);
    // Element c survives iff fewer than k elements rank strictly ahead
    // of it under (value desc, index asc) — the same selection as
    // TopKMaskRows' partial_sort. Decisions go to a scratch row first:
    // ranks must all be computed against the unmodified values.
    float* mrow = mask.row(0);
    for (int64_t c = 0; c < a.cols; ++c) {
      int64_t ahead = 0;
      for (int64_t o = 0; o < a.cols; ++o) {
        if (arow[o] > arow[c] || (arow[o] == arow[c] && o < c)) ++ahead;
      }
      mrow[c] = ahead < k ? 1.0f : 0.0f;
    }
    // Multiply (not assign) so g * 0 keeps MulMask's signed zeros.
    for (int64_t c = 0; c < a.cols; ++c) arow[c] = arow[c] * mrow[c];
  }
  arena->Rewind(mark);
}

void GatherRowsInto(const Matrix& table, const int64_t* ids, int64_t count,
                    int64_t id_stride, MatView out) {
  AWMOE_CHECK(out.rows == count && out.cols == table.cols())
      << "GatherRowsInto: out " << out.rows << "x" << out.cols << " for "
      << count << " rows of " << table.ShapeString();
  for (int64_t i = 0; i < count; ++i) {
    const int64_t idx = ids[i * id_stride];
    AWMOE_CHECK(idx >= 0 && idx < table.rows())
        << "GatherRowsInto: index " << idx << " out of " << table.rows();
    const float* src = table.row(idx);
    std::copy(src, src + table.cols(), out.row(i));
  }
}

}  // namespace awmoe
