#ifndef AWMOE_NN_INIT_H_
#define AWMOE_NN_INIT_H_

#include <cstdint>

#include "mat/matrix.h"
#include "util/rng.h"

namespace awmoe {

/// Xavier/Glorot uniform init: U(-limit, limit), limit = sqrt(6/(fan_in +
/// fan_out)). Default for linear layers feeding saturating/linear heads.
Matrix XavierUniform(int64_t rows, int64_t cols, Rng* rng);

/// He/Kaiming normal init: N(0, sqrt(2/fan_in)). Suited to ReLU stacks.
Matrix HeNormal(int64_t rows, int64_t cols, Rng* rng);

/// N(0, stddev) init (embedding tables).
Matrix NormalInit(int64_t rows, int64_t cols, float stddev, Rng* rng);

/// U(lo, hi) init.
Matrix UniformInit(int64_t rows, int64_t cols, float lo, float hi, Rng* rng);

}  // namespace awmoe

#endif  // AWMOE_NN_INIT_H_
