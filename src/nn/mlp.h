#ifndef AWMOE_NN_MLP_H_
#define AWMOE_NN_MLP_H_

#include <cstdint>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

namespace awmoe {

/// Multi-layer perceptron: Linear -> ReLU -> ... -> Linear, with an
/// optional ReLU on the output layer. This is the FFN used for every
/// unit in the paper (Fig. 4): hidden layers use ReLU, the output is
/// linear unless `relu_output` is set.
class Mlp : public Module {
 public:
  /// `layer_dims` lists the output dim of every layer; the input dim is
  /// `input_dim`. E.g. Mlp(24, {64, 32}, rng) is the paper's 64x32 MLP.
  Mlp(int64_t input_dim, std::vector<int64_t> layer_dims, Rng* rng,
      bool relu_output = false);

  /// x: [batch, input_dim] -> [batch, layer_dims.back()].
  Var Forward(const Var& x) const;

  /// Graph-free Forward writing the final layer into `out`
  /// (bitwise-identical to Forward); hidden activations come from the
  /// arena and are released before returning.
  void InferInto(const ConstMatView& x, InferenceArena* arena,
                 MatView out) const;

  void CollectParameters(std::vector<Var>* params) const override;

  int64_t input_dim() const { return input_dim_; }
  int64_t output_dim() const { return layers_.back().out_dim(); }
  size_t num_layers() const { return layers_.size(); }

 private:
  int64_t input_dim_;
  std::vector<Linear> layers_;
  bool relu_output_;
};

}  // namespace awmoe

#endif  // AWMOE_NN_MLP_H_
