#include "nn/linear.h"

#include "nn/init.h"

namespace awmoe {

Linear::Linear(int64_t in_dim, int64_t out_dim, Rng* rng)
    : weight_(HeNormal(in_dim, out_dim, rng), /*requires_grad=*/true),
      bias_(Matrix(1, out_dim), /*requires_grad=*/true) {}

Var Linear::Forward(const Var& x) const {
  AWMOE_CHECK(x.cols() == weight_.rows())
      << "Linear: input dim " << x.cols() << " != " << weight_.rows();
  return ag::AddBias(ag::MatMul(x, weight_), bias_);
}

void Linear::InferInto(const ConstMatView& x, MatView out) const {
  AWMOE_CHECK(x.cols == weight_.rows())
      << "Linear::InferInto: input dim " << x.cols << " != "
      << weight_.rows();
  // Same op order as Forward: MatMul, then the bias row broadcast (in
  // place — per element identical to AddBias's fresh buffer).
  MatMulInto(x, weight_.value(), out);
  AddBiasInPlace(out, bias_.value());
}

void Linear::CollectParameters(std::vector<Var>* params) const {
  params->push_back(weight_);
  params->push_back(bias_);
}

}  // namespace awmoe
