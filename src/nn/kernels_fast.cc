// The fast kernel tier: AVX2/FMA cache-tiled implementations of the
// hot inference kernels. This is the ONLY translation unit compiled
// with -mavx2 -mfma (CMake scopes the flags to it); the dispatch layer
// in inference.cc checks CPUID before ever jumping through the table
// below, so the binary stays runnable on plain x86-64.
//
// Numerics: FMA contraction and register-blocked accumulation
// reassociate float sums, so this tier matches the reference tier only
// to the epsilon/ULP bound pinned by tests/models/kernel_tier_test.cc.
// What IS preserved exactly is batch-composition independence: a row's
// (or span element's) arithmetic depends only on the layer shape
// (k, n), never on the batch size or the row's position —
//   - the 4-row and 1-row matmul micro-kernels issue the SAME per-row
//     FMA sequence (same column blocks, same p order), so a row scores
//     identically whether it lands in a quad or the row tail;
//   - column tails run the same vector arithmetic through lane masks;
//   - the sigmoid span tail runs the same vector polynomial through a
//     padded staging vector.
// This is the invariant that keeps serving scores bitwise-stable under
// micro-batch fusion (shard/rollout storm tests compare scores across
// differently composed batches) even on the epsilon tier.

#include "nn/kernels_fast.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace awmoe {
namespace {

/// Lane mask with the first `lanes` (0..8) of 8 lanes active.
inline __m256i TailMask(int64_t lanes) {
  alignas(32) static constexpr int32_t kMask[16] = {-1, -1, -1, -1, -1, -1,
                                                    -1, -1, 0,  0,  0,  0,
                                                    0,  0,  0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMask + (8 - lanes)));
}

// ---------------------------------------------------------------------
// MatMul: out = a[m,k] * w[k,n].
//
// Cache tiling: the outer loop walks 16-column panels of w; one panel
// (k x 16 floats, <= 32 KiB even at the paper-scale k = 512) stays in
// L1 while EVERY row of a streams against it. Register blocking: four
// rows x 16 columns of out live in 8 ymm accumulators across the whole
// k loop, so out is touched once per panel instead of once per k step
// (the reference kernel's store-per-p pattern), and each loaded w
// vector feeds four rows' FMAs.
// ---------------------------------------------------------------------

/// One row x one 16-column panel; identical FMA sequence to Rows4's
/// per-row arithmetic. kFull avoids the mask loads on interior panels.
template <bool kFull>
inline void MatMulRows1(const float* arow, const Matrix& w, int64_t k,
                        int64_t j, __m256i mask0, __m256i mask1,
                        float* orow) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  for (int64_t p = 0; p < k; ++p) {
    const float* wrow = w.row(p) + j;
    const __m256 b0 =
        kFull ? _mm256_loadu_ps(wrow) : _mm256_maskload_ps(wrow, mask0);
    const __m256 b1 = kFull ? _mm256_loadu_ps(wrow + 8)
                            : _mm256_maskload_ps(wrow + 8, mask1);
    const __m256 av = _mm256_broadcast_ss(arow + p);
    acc0 = _mm256_fmadd_ps(av, b0, acc0);
    acc1 = _mm256_fmadd_ps(av, b1, acc1);
  }
  if (kFull) {
    _mm256_storeu_ps(orow + j, acc0);
    _mm256_storeu_ps(orow + j + 8, acc1);
  } else {
    _mm256_maskstore_ps(orow + j, mask0, acc0);
    _mm256_maskstore_ps(orow + j + 8, mask1, acc1);
  }
}

/// Four rows x one 16-column panel.
template <bool kFull>
inline void MatMulRows4(const float* a0, const float* a1, const float* a2,
                        const float* a3, const Matrix& w, int64_t k,
                        int64_t j, __m256i mask0, __m256i mask1, float* o0,
                        float* o1, float* o2, float* o3) {
  __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
  __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
  __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
  __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
  for (int64_t p = 0; p < k; ++p) {
    const float* wrow = w.row(p) + j;
    const __m256 b0 =
        kFull ? _mm256_loadu_ps(wrow) : _mm256_maskload_ps(wrow, mask0);
    const __m256 b1 = kFull ? _mm256_loadu_ps(wrow + 8)
                            : _mm256_maskload_ps(wrow + 8, mask1);
    __m256 av = _mm256_broadcast_ss(a0 + p);
    acc00 = _mm256_fmadd_ps(av, b0, acc00);
    acc01 = _mm256_fmadd_ps(av, b1, acc01);
    av = _mm256_broadcast_ss(a1 + p);
    acc10 = _mm256_fmadd_ps(av, b0, acc10);
    acc11 = _mm256_fmadd_ps(av, b1, acc11);
    av = _mm256_broadcast_ss(a2 + p);
    acc20 = _mm256_fmadd_ps(av, b0, acc20);
    acc21 = _mm256_fmadd_ps(av, b1, acc21);
    av = _mm256_broadcast_ss(a3 + p);
    acc30 = _mm256_fmadd_ps(av, b0, acc30);
    acc31 = _mm256_fmadd_ps(av, b1, acc31);
  }
  if (kFull) {
    _mm256_storeu_ps(o0 + j, acc00);
    _mm256_storeu_ps(o0 + j + 8, acc01);
    _mm256_storeu_ps(o1 + j, acc10);
    _mm256_storeu_ps(o1 + j + 8, acc11);
    _mm256_storeu_ps(o2 + j, acc20);
    _mm256_storeu_ps(o2 + j + 8, acc21);
    _mm256_storeu_ps(o3 + j, acc30);
    _mm256_storeu_ps(o3 + j + 8, acc31);
  } else {
    _mm256_maskstore_ps(o0 + j, mask0, acc00);
    _mm256_maskstore_ps(o0 + j + 8, mask1, acc01);
    _mm256_maskstore_ps(o1 + j, mask0, acc10);
    _mm256_maskstore_ps(o1 + j + 8, mask1, acc11);
    _mm256_maskstore_ps(o2 + j, mask0, acc20);
    _mm256_maskstore_ps(o2 + j + 8, mask1, acc21);
    _mm256_maskstore_ps(o3 + j, mask0, acc30);
    _mm256_maskstore_ps(o3 + j + 8, mask1, acc31);
  }
}

void MatMulFast(const ConstMatView& a, const Matrix& w, MatView out) {
  const int64_t m = a.rows;
  const int64_t k = a.cols;
  const int64_t n = w.cols();
  for (int64_t j = 0; j < n; j += 16) {
    const int64_t lanes0 = std::min<int64_t>(8, n - j);
    const int64_t lanes1 = std::max<int64_t>(
        0, std::min<int64_t>(8, n - j - 8));
    const bool full = lanes0 == 8 && lanes1 == 8;
    // Masked lanes of a vmaskmovps neither fault nor touch memory, so
    // the tail panel may run the full two-vector arithmetic with the
    // second vector entirely masked off.
    const __m256i mask0 = TailMask(lanes0);
    const __m256i mask1 = TailMask(lanes1);
    int64_t i = 0;
    for (; i + 4 <= m; i += 4) {
      if (full) {
        MatMulRows4<true>(a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3),
                          w, k, j, mask0, mask1, out.row(i), out.row(i + 1),
                          out.row(i + 2), out.row(i + 3));
      } else {
        MatMulRows4<false>(a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3),
                           w, k, j, mask0, mask1, out.row(i), out.row(i + 1),
                           out.row(i + 2), out.row(i + 3));
      }
    }
    for (; i < m; ++i) {
      if (full) {
        MatMulRows1<true>(a.row(i), w, k, j, mask0, mask1, out.row(i));
      } else {
        MatMulRows1<false>(a.row(i), w, k, j, mask0, mask1, out.row(i));
      }
    }
  }
}

// ---------------------------------------------------------------------
// Elementwise activations. Vector max/add are bitwise identical to
// their scalar forms, so these may mix vector bodies with scalar tails
// freely; only the sigmoid (polynomial exp) needs the padded tail.
// ---------------------------------------------------------------------

void AddBiasFast(MatView a, const Matrix& bias) {
  const float* pb = bias.data();
  const int64_t cols = a.cols;
  for (int64_t r = 0; r < a.rows; ++r) {
    float* arow = a.row(r);
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      _mm256_storeu_ps(
          arow + c,
          _mm256_add_ps(_mm256_loadu_ps(arow + c), _mm256_loadu_ps(pb + c)));
    }
    for (; c < cols; ++c) arow[c] = arow[c] + pb[c];
  }
}

void ReluFast(MatView a) {
  const __m256 zero = _mm256_setzero_ps();
  const int64_t cols = a.cols;
  for (int64_t r = 0; r < a.rows; ++r) {
    float* arow = a.row(r);
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      // max(x, +0) returns the second operand on ties, so -0.0 -> +0.0
      // exactly like the reference's `x > 0 ? x : 0`.
      _mm256_storeu_ps(arow + c,
                       _mm256_max_ps(_mm256_loadu_ps(arow + c), zero));
    }
    for (; c < cols; ++c) arow[c] = arow[c] > 0.0f ? arow[c] : 0.0f;
  }
}

/// Cephes-style expf polynomial (the avx_mathfun lineage): range-
/// reduce by log2(e) with a Cody-Waite split, degree-5 polynomial,
/// scale by 2^n through the exponent field. |error| is a few ULP over
/// the clamped range — inside the fast tier's epsilon contract.
inline __m256 Exp256(__m256 x) {
  const __m256 kHi = _mm256_set1_ps(88.3762626647949f);
  const __m256 kLo = _mm256_set1_ps(-88.3762626647949f);
  const __m256 kLog2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 kC1 = _mm256_set1_ps(0.693359375f);
  const __m256 kC2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 kP0 = _mm256_set1_ps(1.9875691500e-4f);
  const __m256 kP1 = _mm256_set1_ps(1.3981999507e-3f);
  const __m256 kP2 = _mm256_set1_ps(8.3334519073e-3f);
  const __m256 kP3 = _mm256_set1_ps(4.1665795894e-2f);
  const __m256 kP4 = _mm256_set1_ps(1.6666665459e-1f);
  const __m256 kP5 = _mm256_set1_ps(5.0000001201e-1f);
  const __m256 one = _mm256_set1_ps(1.0f);

  x = _mm256_min_ps(_mm256_max_ps(x, kLo), kHi);
  // n = round(x * log2(e)) via floor(x*log2e + 0.5).
  __m256 fx = _mm256_fmadd_ps(x, kLog2e, _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  // x -= n * ln(2), split into two constants for precision.
  x = _mm256_fnmadd_ps(fx, kC1, x);
  x = _mm256_fnmadd_ps(fx, kC2, x);
  const __m256 x2 = _mm256_mul_ps(x, x);
  __m256 y = kP0;
  y = _mm256_fmadd_ps(y, x, kP1);
  y = _mm256_fmadd_ps(y, x, kP2);
  y = _mm256_fmadd_ps(y, x, kP3);
  y = _mm256_fmadd_ps(y, x, kP4);
  y = _mm256_fmadd_ps(y, x, kP5);
  y = _mm256_fmadd_ps(y, x2, _mm256_add_ps(x, one));
  // * 2^n.
  const __m256i n = _mm256_cvttps_epi32(fx);
  const __m256i pow2n =
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(0x7f)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2n));
}

/// Sign-split sigmoid mirroring StableSigmoid's structure: one exp of
/// -|x| (never overflows), then 1/(1+t) or t/(1+t) by sign.
inline __m256 Sigmoid256(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 zero = _mm256_setzero_ps();
  // min(x, -x) == -|x|.
  const __m256 t = Exp256(_mm256_min_ps(x, _mm256_sub_ps(zero, x)));
  const __m256 denom = _mm256_add_ps(one, t);
  const __m256 pos = _mm256_div_ps(one, denom);
  const __m256 neg = _mm256_div_ps(t, denom);
  return _mm256_blendv_ps(neg, pos, _mm256_cmp_ps(x, zero, _CMP_GE_OQ));
}

void SigmoidSpanFast(const float* x, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, Sigmoid256(_mm256_loadu_ps(x + i)));
  }
  if (i < n) {
    // Padded staging so tail elements run the SAME vector polynomial
    // as interior ones — a logit's probability must not depend on its
    // position in the micro-batch.
    alignas(32) float tmp[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::memcpy(tmp, x + i, static_cast<size_t>(n - i) * sizeof(float));
    _mm256_store_ps(tmp, Sigmoid256(_mm256_load_ps(tmp)));
    std::memcpy(out + i, tmp, static_cast<size_t>(n - i) * sizeof(float));
  }
}

constexpr KernelDispatchTable kFastTable = {
    /*name=*/"avx2-fma",
    /*bitwise_reference=*/false,
    /*matmul=*/MatMulFast,
    /*add_bias=*/AddBiasFast,
    /*relu=*/ReluFast,
    /*sigmoid_span=*/SigmoidSpanFast,
};

}  // namespace

const KernelDispatchTable* FastKernelTableOrNull() { return &kFastTable; }

}  // namespace awmoe

#else  // !(__AVX2__ && __FMA__)

namespace awmoe {

// Built without the AVX2/FMA flags (non-x86 target or unsupported
// compiler): the fast tier simply does not exist and dispatch stays on
// the reference tier.
const KernelDispatchTable* FastKernelTableOrNull() { return nullptr; }

}  // namespace awmoe

#endif
