#ifndef AWMOE_NN_KERNELS_FAST_H_
#define AWMOE_NN_KERNELS_FAST_H_

#include "nn/inference.h"

namespace awmoe {

// Internal bridge between the dispatch layer (inference.cc, compiled
// with the portable baseline flags) and the AVX2/FMA kernel TU
// (kernels_fast.cc, the ONLY file built with -mavx2 -mfma; CMake
// scopes the flags to it so the rest of the binary stays runnable on
// any x86-64). The dispatch layer performs the CPUID check itself and
// only ever jumps through this table after it passes, so no AVX2
// instruction can execute on a machine without it.

/// The fast tier's dispatch table, or nullptr when kernels_fast.cc was
/// compiled without AVX2/FMA support (non-x86 target or a compiler
/// without the flags). Constant-initialised — taking the pointer runs
/// no code from the AVX2 TU.
const KernelDispatchTable* FastKernelTableOrNull();

}  // namespace awmoe

#endif  // AWMOE_NN_KERNELS_FAST_H_
