#include "nn/init.h"

#include <cmath>

namespace awmoe {

Matrix XavierUniform(int64_t rows, int64_t cols, Rng* rng) {
  float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
  return UniformInit(rows, cols, -limit, limit, rng);
}

Matrix HeNormal(int64_t rows, int64_t cols, Rng* rng) {
  float stddev = std::sqrt(2.0f / static_cast<float>(rows));
  return NormalInit(rows, cols, stddev, rng);
}

Matrix NormalInit(int64_t rows, int64_t cols, float stddev, Rng* rng) {
  Matrix m(rows, cols);
  float* p = m.data();
  for (int64_t i = 0; i < m.size(); ++i) {
    p[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return m;
}

Matrix UniformInit(int64_t rows, int64_t cols, float lo, float hi, Rng* rng) {
  Matrix m(rows, cols);
  float* p = m.data();
  for (int64_t i = 0; i < m.size(); ++i) {
    p[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return m;
}

}  // namespace awmoe
