#ifndef AWMOE_NN_MODULE_H_
#define AWMOE_NN_MODULE_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"

namespace awmoe {

/// Base class for neural-network building blocks. A Module owns parameter
/// Vars (leaf variables with requires_grad = true) and exposes them for
/// optimizers via CollectParameters.
class Module {
 public:
  virtual ~Module() = default;

  /// Appends this module's parameters (including submodules') to `params`.
  virtual void CollectParameters(std::vector<Var>* params) const = 0;

  /// All parameters as a flat list.
  std::vector<Var> Parameters() const {
    std::vector<Var> params;
    CollectParameters(&params);
    return params;
  }

  /// Total number of scalar parameters.
  int64_t NumParameters() const {
    int64_t total = 0;
    for (const Var& p : Parameters()) total += p.value().size();
    return total;
  }

  /// Clears gradients on all parameters.
  void ZeroGrad() {
    for (Var& p : Parameters()) p.ZeroGrad();
  }
};

}  // namespace awmoe

#endif  // AWMOE_NN_MODULE_H_
