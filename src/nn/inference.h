#ifndef AWMOE_NN_INFERENCE_H_
#define AWMOE_NN_INFERENCE_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "mat/matrix.h"

namespace awmoe {

// The allocation-free inference substrate behind Ranker::ScoreInto.
//
// The training path builds an autograd graph: every op heap-allocates a
// node, a value matrix and (lazily) a gradient. The serving hot path
// needs none of that — shapes are fixed per model and bounded by the
// micro-batch cap, so every intermediate can live in a reusable arena
// owned by an InferenceWorkspace, and every kernel can write into a
// caller-provided buffer.
//
// BITWISE CONTRACT: each *Into / *InPlace kernel below performs exactly
// the per-element arithmetic, in exactly the accumulation order, of its
// mat/kernels.cc counterpart (which the autograd ops forward to). The
// module-level InferInto methods materialise one buffer per op of the
// original Var expression instead of fusing, so ScoreInto reproduces
// InferenceLogits bit for bit — regression-tested in
// tests/models/inference_path_test.cc.

/// Non-owning, mutable view of a row-major [rows, cols] block whose rows
/// are `stride` floats apart (stride >= cols; a column block of a wider
/// buffer keeps the parent's stride).
struct MatView {
  float* data = nullptr;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t stride = 0;

  float* row(int64_t r) const { return data + r * stride; }

  /// Columns [begin, begin + width) as a sub-view (same rows).
  MatView ColBlock(int64_t begin, int64_t width) const {
    AWMOE_DCHECK(begin >= 0 && width >= 0 && begin + width <= cols)
        << "ColBlock [" << begin << "," << begin + width << ") of " << cols;
    return MatView{data + begin, rows, width, stride};
  }
};

/// Read-only view; converts implicitly from MatView and wraps const
/// Matrix storage (batch features, cached gate rows) without copying.
/// A broadcast row is expressed as stride == 0.
struct ConstMatView {
  const float* data = nullptr;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t stride = 0;

  ConstMatView() = default;
  ConstMatView(const float* data, int64_t rows, int64_t cols, int64_t stride)
      : data(data), rows(rows), cols(cols), stride(stride) {}
  ConstMatView(const MatView& v)  // NOLINT(google-explicit-constructor)
      : data(v.data), rows(v.rows), cols(v.cols), stride(v.stride) {}

  const float* row(int64_t r) const { return data + r * stride; }
};

/// Whole-matrix read view.
inline ConstMatView MatrixView(const Matrix& m) {
  return ConstMatView(m.data(), m.rows(), m.cols(), m.cols());
}

/// Columns [begin, begin + width) of a matrix as a read view.
inline ConstMatView MatrixColsView(const Matrix& m, int64_t begin,
                                   int64_t width) {
  AWMOE_DCHECK(begin >= 0 && width >= 0 && begin + width <= m.cols())
      << "MatrixColsView [" << begin << "," << begin + width << ") of "
      << m.cols();
  return ConstMatView(m.data() + begin, m.rows(), width, m.cols());
}

/// Bump allocator over persistent float slabs. Alloc() hands out the
/// next slab (grown in place when too small — std::vector never shrinks
/// its capacity, so a warmed arena allocates nothing); Reset() rewinds
/// to the first slab for the next forward. Mark()/Rewind() scope the
/// per-sequence-position temporaries of a behaviour loop so ten
/// positions reuse one iteration's buffers instead of ten.
class InferenceArena {
 public:
  MatView Alloc(int64_t rows, int64_t cols);
  void Reset() { next_ = 0; }
  size_t Mark() const { return next_; }
  void Rewind(size_t mark) {
    AWMOE_DCHECK(mark <= next_) << "Rewind past cursor";
    next_ = mark;
  }
  /// Slabs currently materialised (test introspection).
  size_t num_slabs() const { return slabs_.size(); }

 private:
  std::vector<std::vector<float>> slabs_;
  size_t next_ = 0;
};

/// Preallocated per-lane state of the ScoreInto path: the activation
/// arena plus persistent staging buffers the serving engine uses for
/// gate rows (replicated per candidate) and gate-probe outputs. Created
/// by Ranker::CreateInferenceWorkspace, owned by whoever owns the lane
/// (each ModelPool replica lane holds its own, so lanes stay lock-free
/// against each other and cache-warm across micro-batches). Buffers
/// only ever grow: after one warm-up pass at a given batch size the
/// steady state performs zero heap allocations.
class InferenceWorkspace {
 public:
  enum StagingSlot { kGateRows = 0, kGateProbe = 1, kNumSlots = 2 };

  explicit InferenceWorkspace(int64_t max_candidates)
      : max_candidates_(max_candidates) {
    AWMOE_CHECK(max_candidates > 0)
        << "InferenceWorkspace: max_candidates " << max_candidates;
  }

  int64_t max_candidates() const { return max_candidates_; }
  InferenceArena* arena() { return &arena_; }

  /// Persistent staging buffer for `slot`, grown to at least `n` floats.
  std::span<float> Staging(StagingSlot slot, int64_t n) {
    std::vector<float>& buffer = staging_[slot];
    if (static_cast<int64_t>(buffer.size()) < n) {
      buffer.resize(static_cast<size_t>(n));
    }
    return std::span<float>(buffer.data(), static_cast<size_t>(n));
  }

 private:
  int64_t max_candidates_;
  InferenceArena arena_;
  std::vector<float> staging_[kNumSlots];
};

// ---------------------------------------------------------------------
// Kernels. Each mirrors the arithmetic of its mat/kernels.cc namesake.
// ---------------------------------------------------------------------

/// out = src (element copy).
void CopyInto(const ConstMatView& src, MatView out);

/// out = a[m,k] * w[k,n]. Zeroes `out`, then accumulates in the ikj
/// order of kernels.cc MatMul (including its skip of zero a elements).
void MatMulInto(const ConstMatView& a, const Matrix& w, MatView out);

/// a[m,n] += bias[1,n] broadcast over rows (AddRowBroadcast, in place).
void AddBiasInPlace(MatView a, const Matrix& bias);

/// a = max(a, 0) elementwise.
void ReluInPlace(MatView a);

/// out = a * b elementwise (same shape).
void MulInto(const ConstMatView& a, const ConstMatView& b, MatView out);

/// out[B, 3d] = [a | b | a*b] — the "product path" input layout shared
/// by the activation unit (Fig. 4a) and the gate unit (Fig. 4c). One
/// definition so the layout cannot drift between the two.
void ConcatInteractionInto(const ConstMatView& a, const ConstMatView& b,
                           MatView out);

/// a += b elementwise (same shape).
void AddInPlace(MatView a, const ConstMatView& b);

/// out[r][c] = a[r][c] * w[r][0] (MulColBroadcast).
void MulColBroadcastInto(const ConstMatView& a, const ConstMatView& w,
                         MatView out);

/// out[r][0] = dot(a.row(r), b.row(r)) (DotRows).
void DotRowsInto(const ConstMatView& a, const ConstMatView& b, MatView out);

/// Row-wise softmax in place (max-subtracted, same order as
/// SoftmaxRows).
void SoftmaxRowsInPlace(MatView a);

/// Multiplies each row by its top-k mask: entries among the k largest
/// (ties broken by lower column index, matching TopKMaskRows) are
/// multiplied by 1, the rest by 0 — a multiply, not an assignment, so
/// signed zeros match MulMask(g, TopKMaskRows(g, k)) bitwise. Uses one
/// arena scratch row for the per-row decisions.
void TopKMulInPlace(MatView a, int64_t k, InferenceArena* arena);

/// out.row(i) = table.row(ids[i * id_stride]); the stride lets callers
/// gather one sequence position directly from the Batch's row-major
/// [size * seq_len] id layout without building an index vector.
void GatherRowsInto(const Matrix& table, const int64_t* ids, int64_t count,
                    int64_t id_stride, MatView out);

/// The Sigmoid kernel's per-element form (sign-split for stability),
/// exposed so the serving engine converts ScoreInto logits to
/// probabilities with arithmetic identical to Sigmoid(Matrix).
inline float StableSigmoid(float x) {
  if (x >= 0.0f) {
    float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  float z = std::exp(x);
  return z / (1.0f + z);
}

}  // namespace awmoe

#endif  // AWMOE_NN_INFERENCE_H_
