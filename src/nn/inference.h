#ifndef AWMOE_NN_INFERENCE_H_
#define AWMOE_NN_INFERENCE_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "mat/matrix.h"

namespace awmoe {

// The allocation-free inference substrate behind Ranker::ScoreInto.
//
// The training path builds an autograd graph: every op heap-allocates a
// node, a value matrix and (lazily) a gradient. The serving hot path
// needs none of that — shapes are fixed per model and bounded by the
// micro-batch cap, so every intermediate can live in a reusable arena
// owned by an InferenceWorkspace, and every kernel can write into a
// caller-provided buffer.
//
// KERNEL TIERS: the hot kernels (MatMulInto, ReluInPlace,
// AddBiasInPlace, SigmoidSpanInto) dispatch through a process-global
// KernelDispatchTable with two tiers.
//
//  - kReference — BITWISE CONTRACT: performs exactly the per-element
//    arithmetic, in exactly the accumulation order, of its
//    mat/kernels.cc counterpart (which the autograd ops forward to).
//    The module-level InferInto methods materialise one buffer per op
//    of the original Var expression instead of fusing, so ScoreInto
//    reproduces InferenceLogits bit for bit — regression-tested in
//    tests/models/inference_path_test.cc.
//  - kFast — EPSILON CONTRACT: AVX2/FMA cache-tiled kernels
//    (src/nn/kernels_fast.cc). FMA contraction and register-blocked
//    accumulation reassociate the float sums, so results agree with
//    the reference tier only to an epsilon/ULP bound
//    (tests/models/kernel_tier_test.cc). Per-row / per-element
//    arithmetic is still independent of micro-batch composition (the
//    tail lanes run the SAME vector arithmetic through a masked
//    staging buffer), so a given row scores bitwise-identically no
//    matter how the serving engine fuses sessions — the invariant the
//    shard/rollout bitwise storm tests rely on.
//
// The tier is resolved once per process: AWMOE_FORCE_SCALAR (any value
// but "" or "0") pins the reference tier; otherwise the fast tier is
// used when the binary carries it and CPUID reports AVX2+FMA. Tests
// pin tiers explicitly with ScopedKernelTier.

/// Non-owning, mutable view of a row-major [rows, cols] block whose rows
/// are `stride` floats apart (stride >= cols; a column block of a wider
/// buffer keeps the parent's stride).
struct MatView {
  float* data = nullptr;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t stride = 0;

  float* row(int64_t r) const { return data + r * stride; }

  /// Columns [begin, begin + width) as a sub-view (same rows).
  MatView ColBlock(int64_t begin, int64_t width) const {
    AWMOE_DCHECK(begin >= 0 && width >= 0 && begin + width <= cols)
        << "ColBlock [" << begin << "," << begin + width << ") of " << cols;
    return MatView{data + begin, rows, width, stride};
  }
};

/// Read-only view; converts implicitly from MatView and wraps const
/// Matrix storage (batch features, cached gate rows) without copying.
/// A broadcast row is expressed as stride == 0.
struct ConstMatView {
  const float* data = nullptr;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t stride = 0;

  ConstMatView() = default;
  ConstMatView(const float* data, int64_t rows, int64_t cols, int64_t stride)
      : data(data), rows(rows), cols(cols), stride(stride) {}
  ConstMatView(const MatView& v)  // NOLINT(google-explicit-constructor)
      : data(v.data), rows(v.rows), cols(v.cols), stride(v.stride) {}

  const float* row(int64_t r) const { return data + r * stride; }
};

/// Whole-matrix read view.
inline ConstMatView MatrixView(const Matrix& m) {
  return ConstMatView(m.data(), m.rows(), m.cols(), m.cols());
}

/// Columns [begin, begin + width) of a matrix as a read view.
inline ConstMatView MatrixColsView(const Matrix& m, int64_t begin,
                                   int64_t width) {
  AWMOE_DCHECK(begin >= 0 && width >= 0 && begin + width <= m.cols())
      << "MatrixColsView [" << begin << "," << begin + width << ") of "
      << m.cols();
  return ConstMatView(m.data() + begin, m.rows(), width, m.cols());
}

/// A 64-byte-aligned float buffer that only ever grows (no content
/// preservation across grows — it backs scratch slabs). Alignment is an
/// invariant the fast kernel tier depends on: every slab base (and,
/// with padded strides, every row) is legal for aligned AVX2/AVX-512
/// loads and stores.
class AlignedBuffer {
 public:
  static constexpr size_t kAlignment = 64;  // One cache line.
  static_assert(kAlignment % sizeof(float) == 0 &&
                    kAlignment >= alignof(float),
                "slab alignment must cover float lanes");

  AlignedBuffer() = default;
  ~AlignedBuffer() { Release(); }
  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.capacity_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      data_ = other.data_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.capacity_ = 0;
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Grows capacity to at least `floats` (geometric, so repeated
  /// one-larger warmups do not thrash). Discards previous contents
  /// unless `preserve` is set, in which case the old floats are copied
  /// into the new buffer.
  void Reserve(size_t floats, bool preserve = false);

  float* data() const { return data_; }
  size_t capacity() const { return capacity_; }

 private:
  void Release();

  float* data_ = nullptr;
  size_t capacity_ = 0;  // In floats.
};

/// Bump allocator over persistent float slabs. Alloc() hands out the
/// next slab (grown in place when too small, so a warmed arena
/// allocates nothing); Reset() rewinds to the first slab for the next
/// forward. Mark()/Rewind() scope the per-sequence-position
/// temporaries of a behaviour loop so ten positions reuse one
/// iteration's buffers instead of ten — a mark taken before a slab
/// spill stays a plain slab index, so rewinding past later-materialised
/// slabs is safe and the slabs (and their grown capacities) are kept
/// for reuse.
///
/// ALIGNMENT INVARIANT: every slab base is 64-byte aligned and every
/// returned view's row stride is padded to a 64-byte multiple
/// (kAlignFloats), so view.row(r) is 64-byte aligned for all r. The
/// padding lanes are never read or written by kernels (all kernels
/// iterate c < cols), so the bitwise contract is unaffected.
class InferenceArena {
 public:
  static constexpr int64_t kAlignFloats =
      static_cast<int64_t>(AlignedBuffer::kAlignment / sizeof(float));

  MatView Alloc(int64_t rows, int64_t cols);
  void Reset() { next_ = 0; }
  size_t Mark() const { return next_; }
  void Rewind(size_t mark) {
    AWMOE_DCHECK(mark <= next_) << "Rewind past cursor";
    next_ = mark;
  }
  /// Slabs currently materialised (test introspection).
  size_t num_slabs() const { return slabs_.size(); }

 private:
  std::vector<AlignedBuffer> slabs_;
  size_t next_ = 0;
};

/// Preallocated per-lane state of the ScoreInto path: the activation
/// arena plus persistent staging buffers the serving engine uses for
/// gate rows (replicated per candidate) and gate-probe outputs. Created
/// by Ranker::CreateInferenceWorkspace, owned by whoever owns the lane
/// (each ModelPool replica lane holds its own, so lanes stay lock-free
/// against each other and cache-warm across micro-batches). Buffers
/// only ever grow: after one warm-up pass at a given batch size the
/// steady state performs zero heap allocations.
class InferenceWorkspace {
 public:
  /// kGateRows/kGateProbe stage shared gate rows; kSessionRows/
  /// kSessionProbe stage cached session encodings (feature store) the
  /// same way: probe outputs computed once per session, then replicated
  /// per candidate into the rows slot.
  enum StagingSlot {
    kGateRows = 0,
    kGateProbe = 1,
    kSessionRows = 2,
    kSessionProbe = 3,
    kNumSlots = 4,
  };

  explicit InferenceWorkspace(int64_t max_candidates)
      : max_candidates_(max_candidates) {
    AWMOE_CHECK(max_candidates > 0)
        << "InferenceWorkspace: max_candidates " << max_candidates;
  }

  int64_t max_candidates() const { return max_candidates_; }
  InferenceArena* arena() { return &arena_; }

  /// Persistent staging buffer for `slot`, grown to at least `n`
  /// floats. 64-byte aligned (AlignedBuffer), like the arena slabs, so
  /// staged gate rows are as legal for the fast kernel tier as any
  /// arena view. Growth preserves existing contents (matching the
  /// std::vector::resize semantics this buffer replaced).
  std::span<float> Staging(StagingSlot slot, int64_t n);

 private:
  int64_t max_candidates_;
  InferenceArena arena_;
  AlignedBuffer staging_[kNumSlots];
};

// ---------------------------------------------------------------------
// Kernel tiers (see the file comment for the exact-vs-epsilon
// contract).
// ---------------------------------------------------------------------

enum class KernelTier {
  kReference = 0,  // Scalar, bitwise-identical to mat/kernels.cc.
  kFast = 1,       // AVX2/FMA cache-tiled; epsilon-bounded.
};

/// Function-pointer table of one tier's hot kernels (H2Pack-style: the
/// variants and their metadata live in one place, callers dispatch
/// through ActiveKernels()). Shape checks stay in the public wrappers,
/// so implementations assume validated views.
struct KernelDispatchTable {
  const char* name = "";     // "reference-scalar" / "avx2-fma".
  bool bitwise_reference = false;

  /// out = a[m,k] * w[k,n] (out fully overwritten).
  void (*matmul)(const ConstMatView& a, const Matrix& w, MatView out) =
      nullptr;
  /// a[m,n] += bias[1,n] broadcast over rows.
  void (*add_bias)(MatView a, const Matrix& bias) = nullptr;
  /// a = max(a, 0) elementwise.
  void (*relu)(MatView a) = nullptr;
  /// out[i] = sigmoid(x[i]) over a contiguous span (x and out may
  /// alias exactly).
  void (*sigmoid_span)(const float* x, float* out, int64_t n) = nullptr;
};

/// True when the fast tier is both compiled in (kernels_fast.cc built
/// with AVX2/FMA) and runnable on this CPU (CPUID reports avx2+fma).
bool FastKernelTierAvailable();

/// The active tier. Resolved once on first kernel use:
/// AWMOE_FORCE_SCALAR in the environment pins kReference, otherwise
/// kFast when available.
KernelTier ActiveKernelTier();

/// Overrides the active tier process-wide. CHECK-fails when asked for
/// kFast on a machine/build without it. Intended for tests and
/// benches; not synchronised against in-flight forwards, so call it
/// only while no other thread is scoring.
void SetKernelTier(KernelTier tier);

const char* KernelTierName(KernelTier tier);

/// The dispatch table of `tier` (CHECK-fails for an unavailable tier)
/// / of the active tier.
const KernelDispatchTable& GetKernelTable(KernelTier tier);
const KernelDispatchTable& ActiveKernels();

/// Pure tier-resolution rule, exposed for unit tests: `force_scalar`
/// is the raw AWMOE_FORCE_SCALAR value (nullptr = unset; "" and "0"
/// mean unset).
KernelTier ResolveKernelTier(const char* force_scalar, bool fast_available);

/// RAII tier pin for tests/benches: sets `tier` for its scope and
/// restores the previous one.
class ScopedKernelTier {
 public:
  explicit ScopedKernelTier(KernelTier tier) : previous_(ActiveKernelTier()) {
    SetKernelTier(tier);
  }
  ~ScopedKernelTier() { SetKernelTier(previous_); }
  ScopedKernelTier(const ScopedKernelTier&) = delete;
  ScopedKernelTier& operator=(const ScopedKernelTier&) = delete;

 private:
  KernelTier previous_;
};

/// Optional intra-batch row parallelism for MatMulInto: when `threads`
/// > 1, matmuls with enough rows split their row range over a
/// persistent worker pool. Because every row's arithmetic is
/// independent and position-invariant in BOTH tiers, the parallel
/// result is bitwise identical to the serial one at the same tier.
/// Default 0 (off); AWMOE_KERNEL_THREADS seeds it at tier resolution.
/// Like SetKernelTier, not synchronised against in-flight forwards.
void SetKernelRowParallelism(int threads);
int KernelRowParallelism();

/// FLOP count of one MatMul (for GFLOPS reporting in benches).
constexpr double MatMulFlops(int64_t m, int64_t k, int64_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n);
}

// ---------------------------------------------------------------------
// Kernels. In the reference tier each mirrors the arithmetic of its
// mat/kernels.cc namesake; MatMulInto / AddBiasInPlace / ReluInPlace /
// SigmoidSpanInto dispatch through the active tier table.
// ---------------------------------------------------------------------

/// out = src (element copy).
void CopyInto(const ConstMatView& src, MatView out);

/// out = a[m,k] * w[k,n]. Zeroes `out`, then accumulates in the ikj
/// order of kernels.cc MatMul (including its skip of zero a elements).
void MatMulInto(const ConstMatView& a, const Matrix& w, MatView out);

/// a[m,n] += bias[1,n] broadcast over rows (AddRowBroadcast, in place).
void AddBiasInPlace(MatView a, const Matrix& bias);

/// a = max(a, 0) elementwise.
void ReluInPlace(MatView a);

/// out = a * b elementwise (same shape).
void MulInto(const ConstMatView& a, const ConstMatView& b, MatView out);

/// out[B, 3d] = [a | b | a*b] — the "product path" input layout shared
/// by the activation unit (Fig. 4a) and the gate unit (Fig. 4c). One
/// definition so the layout cannot drift between the two.
void ConcatInteractionInto(const ConstMatView& a, const ConstMatView& b,
                           MatView out);

/// a += b elementwise (same shape).
void AddInPlace(MatView a, const ConstMatView& b);

/// out[r][c] = a[r][c] * w[r][0] (MulColBroadcast).
void MulColBroadcastInto(const ConstMatView& a, const ConstMatView& w,
                         MatView out);

/// out[r][0] = dot(a.row(r), b.row(r)) (DotRows).
void DotRowsInto(const ConstMatView& a, const ConstMatView& b, MatView out);

/// Row-wise softmax in place (max-subtracted, same order as
/// SoftmaxRows).
void SoftmaxRowsInPlace(MatView a);

/// out = a[m,k] * b[k,n] over views. Scalar-only (NOT tier-dispatched):
/// zeroes `out`, then accumulates in the exact ikj order of kernels.cc
/// MatMul, including its skip of zero `a` elements — the attention
/// probs * V product of the listwise reranker, whose bitwise contract
/// against the graph path holds at every tier because the slate core
/// always runs these scalar kernels.
void MatMulViewInto(const ConstMatView& a, const ConstMatView& b,
                    MatView out);

/// out = a[m,k] * b[n,k]^T over views (Q K^T). Scalar-only, mirroring
/// kernels.cc MatMulTransB's i/j/p dot-product order bitwise.
void MatMulNTViewInto(const ConstMatView& a, const ConstMatView& b,
                      MatView out);

/// a *= s elementwise (same per-element arithmetic as MulScalar).
void ScaleInPlace(MatView a, float s);

/// Multiplies each row by its top-k mask: entries among the k largest
/// (ties broken by lower column index, matching TopKMaskRows) are
/// multiplied by 1, the rest by 0 — a multiply, not an assignment, so
/// signed zeros match MulMask(g, TopKMaskRows(g, k)) bitwise. Uses one
/// arena scratch row for the per-row decisions.
void TopKMulInPlace(MatView a, int64_t k, InferenceArena* arena);

/// out.row(i) = table.row(ids[i * id_stride]); the stride lets callers
/// gather one sequence position directly from the Batch's row-major
/// [size * seq_len] id layout without building an index vector.
void GatherRowsInto(const Matrix& table, const int64_t* ids, int64_t count,
                    int64_t id_stride, MatView out);

/// out[i] = sigmoid(x[i]) over contiguous spans (in-place allowed when
/// out.data() == x.data()). Dispatches through the active tier: the
/// reference tier applies StableSigmoid per element (bitwise equal to
/// Sigmoid(Matrix)); the fast tier runs a vectorised exp polynomial
/// whose per-element result is independent of the element's position
/// in the span.
void SigmoidSpanInto(std::span<const float> x, std::span<float> out);

/// The Sigmoid kernel's per-element form (sign-split for stability),
/// exposed so the serving engine converts ScoreInto logits to
/// probabilities with arithmetic identical to Sigmoid(Matrix).
inline float StableSigmoid(float x) {
  if (x >= 0.0f) {
    float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  float z = std::exp(x);
  return z / (1.0f + z);
}

}  // namespace awmoe

#endif  // AWMOE_NN_INFERENCE_H_
