#ifndef AWMOE_NN_LINEAR_H_
#define AWMOE_NN_LINEAR_H_

#include <cstdint>

#include "autograd/ops.h"
#include "nn/inference.h"
#include "nn/module.h"
#include "util/rng.h"

namespace awmoe {

/// Affine layer y = x W + b with W [in, out] (He-normal) and b [1, out]
/// (zeros).
class Linear : public Module {
 public:
  Linear(int64_t in_dim, int64_t out_dim, Rng* rng);

  /// x: [batch, in] -> [batch, out].
  Var Forward(const Var& x) const;

  /// Graph-free Forward into a caller buffer (bitwise-identical values,
  /// zero allocation): out = x W + b.
  void InferInto(const ConstMatView& x, MatView out) const;

  void CollectParameters(std::vector<Var>* params) const override;

  int64_t in_dim() const { return weight_.rows(); }
  int64_t out_dim() const { return weight_.cols(); }

  const Var& weight() const { return weight_; }
  const Var& bias() const { return bias_; }

 private:
  Var weight_;
  Var bias_;
};

}  // namespace awmoe

#endif  // AWMOE_NN_LINEAR_H_
