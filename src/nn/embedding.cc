#include "nn/embedding.h"

#include "nn/init.h"

namespace awmoe {

EmbeddingTable::EmbeddingTable(int64_t vocab_size, int64_t dim, Rng* rng,
                               float init_stddev)
    : table_(NormalInit(vocab_size, dim, init_stddev, rng),
             /*requires_grad=*/true) {
  AWMOE_CHECK(vocab_size > 0 && dim > 0)
      << "EmbeddingTable shape " << vocab_size << "x" << dim;
}

Var EmbeddingTable::Forward(const std::vector<int64_t>& ids) const {
  return ag::GatherRows(table_, ids);
}

void EmbeddingTable::CollectParameters(std::vector<Var>* params) const {
  params->push_back(table_);
}

void EmbeddingTable::InitPaddingToZero() {
  Matrix& m = table_.mutable_value();
  for (int64_t c = 0; c < m.cols(); ++c) m(0, c) = 0.0f;
}

}  // namespace awmoe
