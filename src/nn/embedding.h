#ifndef AWMOE_NN_EMBEDDING_H_
#define AWMOE_NN_EMBEDDING_H_

#include <cstdint>
#include <vector>

#include "autograd/ops.h"
#include "nn/inference.h"
#include "nn/module.h"
#include "util/rng.h"

namespace awmoe {

/// Learned embedding table [vocab_size, dim]. Index 0 is conventionally the
/// padding id; InitPaddingToZero() zeroes that row (its gradient updates
/// will still move it — models mask padded positions instead of relying on
/// the row staying zero).
class EmbeddingTable : public Module {
 public:
  EmbeddingTable(int64_t vocab_size, int64_t dim, Rng* rng,
                 float init_stddev = 0.05f);

  /// ids: batch of indices -> [ids.size(), dim].
  Var Forward(const std::vector<int64_t>& ids) const;

  /// Graph-free lookup into a caller buffer: out.row(i) =
  /// table.row(ids[i * id_stride]). The stride reads one sequence
  /// position straight out of a Batch's row-major id layout.
  void GatherInto(const int64_t* ids, int64_t count, int64_t id_stride,
                  MatView out) const {
    GatherRowsInto(table_.value(), ids, count, id_stride, out);
  }

  void CollectParameters(std::vector<Var>* params) const override;

  /// Zeroes row 0 (the padding id).
  void InitPaddingToZero();

  int64_t vocab_size() const { return table_.rows(); }
  int64_t dim() const { return table_.cols(); }
  const Var& table() const { return table_; }

 private:
  Var table_;
};

}  // namespace awmoe

#endif  // AWMOE_NN_EMBEDDING_H_
