#ifndef AWMOE_NN_OPTIMIZER_H_
#define AWMOE_NN_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"

namespace awmoe {

/// Base class for first-order optimizers over a fixed parameter list.
/// Parameters without an accumulated gradient are skipped by Step().
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the current gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad() {
    for (Var& p : params_) p.ZeroGrad();
  }

  const std::vector<Var>& params() const { return params_; }

 protected:
  std::vector<Var> params_;
};

/// Stochastic gradient descent with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float lr, float momentum = 0.0f);
  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) with bias correction. weight_decay here is the L2
/// (coupled) form; for the decoupled form used by the paper see AdamW.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f);
  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  int64_t step_count() const { return step_; }

 protected:
  float lr_;
  float beta1_;
  float beta2_;
  float epsilon_;
  int64_t step_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

/// AdamW (Loshchilov & Hutter): Adam with decoupled weight decay, the
/// optimizer the paper trains with (§IV-D).
class AdamW : public Adam {
 public:
  AdamW(std::vector<Var> params, float lr, float weight_decay = 1e-4f,
        float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f);
  void Step() override;

  float weight_decay() const { return weight_decay_; }

 private:
  float weight_decay_;
};

/// Rescales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
double ClipGradNorm(std::vector<Var>* params, double max_norm);

}  // namespace awmoe

#endif  // AWMOE_NN_OPTIMIZER_H_
