#include "nn/mlp.h"

namespace awmoe {

Mlp::Mlp(int64_t input_dim, std::vector<int64_t> layer_dims, Rng* rng,
         bool relu_output)
    : input_dim_(input_dim), relu_output_(relu_output) {
  AWMOE_CHECK(!layer_dims.empty()) << "Mlp needs at least one layer";
  int64_t in = input_dim;
  layers_.reserve(layer_dims.size());
  for (int64_t out : layer_dims) {
    AWMOE_CHECK(out > 0) << "Mlp layer dim must be positive, got " << out;
    layers_.emplace_back(in, out, rng);
    in = out;
  }
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    bool is_last = (i + 1 == layers_.size());
    if (!is_last || relu_output_) h = ag::Relu(h);
  }
  return h;
}

void Mlp::InferInto(const ConstMatView& x, InferenceArena* arena,
                    MatView out) const {
  AWMOE_CHECK(out.rows == x.rows && out.cols == output_dim())
      << "Mlp::InferInto: out " << out.rows << "x" << out.cols;
  const size_t mark = arena->Mark();
  ConstMatView h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool is_last = (i + 1 == layers_.size());
    MatView y = is_last ? out : arena->Alloc(x.rows, layers_[i].out_dim());
    layers_[i].InferInto(h, y);
    if (!is_last || relu_output_) ReluInPlace(y);
    h = y;
  }
  arena->Rewind(mark);
}

void Mlp::CollectParameters(std::vector<Var>* params) const {
  for (const Linear& layer : layers_) layer.CollectParameters(params);
}

}  // namespace awmoe
