#include "nn/optimizer.h"

#include <cmath>

#include "mat/kernels.h"
#include "util/check.h"

namespace awmoe {

Sgd::Sgd(std::vector<Var> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  AWMOE_CHECK(lr > 0.0f) << "Sgd lr=" << lr;
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const Var& p : params_) {
      velocity_.emplace_back(p.value().rows(), p.value().cols());
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (!p.has_grad()) continue;
    Matrix& value = p.mutable_value();
    const Matrix& g = p.grad();
    if (momentum_ == 0.0f) {
      AxpyInPlace(&value, -lr_, g);
    } else {
      Matrix& vel = velocity_[i];
      ScaleInPlace(&vel, momentum_);
      AxpyInPlace(&vel, 1.0f, g);
      AxpyInPlace(&value, -lr_, vel);
    }
  }
}

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2,
           float epsilon)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  AWMOE_CHECK(lr > 0.0f) << "Adam lr=" << lr;
  AWMOE_CHECK(beta1 >= 0.0f && beta1 < 1.0f) << "beta1=" << beta1;
  AWMOE_CHECK(beta2 >= 0.0f && beta2 < 1.0f) << "beta2=" << beta2;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  ++step_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (!p.has_grad()) continue;
    float* value = p.mutable_value().data();
    const float* g = p.grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p.value().size();
    for (int64_t j = 0; j < n; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      float m_hat = m[j] / bc1;
      float v_hat = v[j] / bc2;
      value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

AdamW::AdamW(std::vector<Var> params, float lr, float weight_decay,
             float beta1, float beta2, float epsilon)
    : Adam(std::move(params), lr, beta1, beta2, epsilon),
      weight_decay_(weight_decay) {
  AWMOE_CHECK(weight_decay >= 0.0f) << "weight_decay=" << weight_decay;
}

void AdamW::Step() {
  ++step_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (!p.has_grad()) continue;
    float* value = p.mutable_value().data();
    const float* g = p.grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p.value().size();
    for (int64_t j = 0; j < n; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      float m_hat = m[j] / bc1;
      float v_hat = v[j] / bc2;
      // Decoupled decay: shrink the weight directly, outside the moment
      // machinery (Loshchilov & Hutter eq. 12).
      value[j] -=
          lr_ * (m_hat / (std::sqrt(v_hat) + epsilon_) + weight_decay_ * value[j]);
    }
  }
}

double ClipGradNorm(std::vector<Var>* params, double max_norm) {
  AWMOE_CHECK(max_norm > 0.0) << "max_norm=" << max_norm;
  double total_sq = 0.0;
  for (const Var& p : *params) {
    if (!p.has_grad()) continue;
    double n = Norm(p.grad());
    total_sq += n * n;
  }
  double total = std::sqrt(total_sq);
  if (total > max_norm) {
    float scale = static_cast<float>(max_norm / (total + 1e-12));
    for (Var& p : *params) {
      if (!p.has_grad()) continue;
      // Scale the accumulated gradient in place.
      Matrix scaled = MulScalar(p.grad(), scale);
      p.ZeroGrad();
      internal_ag::AccumulateGrad(p.impl().get(), scaled);
    }
  }
  return total;
}

}  // namespace awmoe
