#include "core/parallel_trainer.h"

#include <utility>

#include "autograd/variable.h"
#include "core/contrastive.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace awmoe {

ParallelTrainer::ParallelTrainer(Ranker* model,
                                 const ParallelTrainerConfig& config)
    : model_(model),
      config_(config),
      // Same fork order as the serial Trainer (rng -> shuffle -> augment),
      // so the shuffled batch stream is identical between the two.
      rng_(config.base.seed),
      shuffle_rng_(rng_.Fork()),
      augment_root_rng_(rng_.Fork()) {
  AWMOE_CHECK(model != nullptr);
  AWMOE_CHECK(config_.num_workers >= 1)
      << "ParallelTrainer: num_workers " << config_.num_workers;
  AWMOE_CHECK(config_.grad_accumulation >= 1)
      << "ParallelTrainer: grad_accumulation " << config_.grad_accumulation;
  params_ = model->Parameters();
  optimizer_ = std::make_unique<AdamW>(params_, config_.base.lr,
                                       config_.base.weight_decay);
  replicas_.resize(static_cast<size_t>(config_.num_workers));
  for (WorkerReplica& replica : replicas_) {
    replica.clone = model->Clone();
    AWMOE_CHECK(replica.clone != nullptr)
        << model->name() << " does not implement Clone()";
    replica.params = replica.clone->Parameters();
    AWMOE_CHECK(replica.params.size() == params_.size());
  }
  if (config_.num_workers > 1) {
    threads_.reserve(static_cast<size_t>(config_.num_workers));
    for (int w = 0; w < config_.num_workers; ++w) {
      threads_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }
}

ParallelTrainer::~ParallelTrainer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ParallelTrainer::ComputeShard(int worker, size_t s) {
  WorkerReplica& replica = replicas_[static_cast<size_t>(worker)];
  for (Var& p : replica.params) p.ZeroGrad();

  Shard& shard = shards_[s];
  BatchLossTerms terms;
  Var loss;
  if (config_.base.contrastive) {
    ContrastiveAugmenter augmenter(config_.base.cl, &shard.augment_rng);
    loss = BuildTrainingLoss(replica.clone.get(), shard.batch, config_.base,
                             &augmenter, &terms);
  } else {
    loss = BuildTrainingLoss(replica.clone.get(), shard.batch, config_.base,
                             /*augmenter=*/nullptr, &terms);
  }
  loss.Backward();

  std::vector<Matrix>& grads = shard_grads_[s];
  grads.resize(replica.params.size());
  for (size_t i = 0; i < replica.params.size(); ++i) {
    if (replica.params[i].has_grad()) {
      grads[i] = replica.params[i].grad();
    } else {
      grads[i] = Matrix();
    }
  }
  shard_terms_[s] = terms;
}

void ParallelTrainer::WorkerLoop(int worker) {
  int64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] {
        return stopping_ || generation_ > seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
    }
    while (true) {
      const size_t s = next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (s >= shards_.size()) break;
      ComputeShard(worker, s);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelTrainer::RunShards() {
  shard_grads_.assign(shards_.size(), {});
  shard_terms_.assign(shards_.size(), {});
  if (threads_.empty()) {
    for (size_t s = 0; s < shards_.size(); ++s) ComputeShard(0, s);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    next_shard_.store(0, std::memory_order_relaxed);
    pending_workers_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
}

void ParallelTrainer::ReduceAndStep() {
  int64_t total_rows = 0;
  for (const Shard& shard : shards_) total_rows += shard.rows;
  AWMOE_CHECK(total_rows > 0);

  optimizer_->ZeroGrad();
  for (size_t i = 0; i < params_.size(); ++i) {
    Matrix acc;
    // Shard-index order regardless of worker scheduling: this fixed
    // float summation order is what makes the reduced gradient — and
    // therefore the whole run — independent of num_workers, bitwise.
    for (size_t s = 0; s < shards_.size(); ++s) {
      const Matrix& g = shard_grads_[s][i];
      if (g.empty()) continue;
      const float ws = static_cast<float>(shards_[s].rows) /
                       static_cast<float>(total_rows);
      if (acc.empty()) acc = Matrix(g.rows(), g.cols());
      const float* src = g.data();
      float* dst = acc.data();
      for (int64_t k = 0; k < g.size(); ++k) dst[k] += ws * src[k];
    }
    if (!acc.empty()) {
      internal_ag::AccumulateGrad(params_[i].impl().get(), acc);
    }
  }

  if (config_.base.grad_clip > 0.0) {
    ClipGradNorm(&params_, config_.base.grad_clip);
  }
  optimizer_->Step();
  ++steps_;

  // Synchronous data parallelism: every replica re-reads the stepped
  // primary weights before the next shard group touches it.
  for (WorkerReplica& replica : replicas_) {
    CopyParametersInto(*model_, replica.clone.get());
  }
}

EpochStats ParallelTrainer::TrainEpoch(const std::vector<Example>& train,
                                       const DatasetMeta& meta,
                                       const Standardizer* standardizer) {
  Stopwatch watch;
  EpochStats stats;
  BatchIterator it(&train, meta, config_.base.batch_size, standardizer,
                   &shuffle_rng_, model_->SupportsSlateScoring(),
                   model_->MaxSlateItems());
  Batch batch;
  double rank_total = 0.0, cl_total = 0.0;
  bool exhausted = false;
  while (!exhausted) {
    shards_.clear();
    while (static_cast<int64_t>(shards_.size()) < config_.grad_accumulation) {
      if (!it.Next(&batch)) {
        exhausted = true;
        break;
      }
      Shard shard;
      shard.batch = std::move(batch);
      shard.rows = shard.batch.size;
      // Forked here, in shard order, on the coordinator: the stream a
      // shard's augmentation consumes is a function of its position in
      // the epoch, never of which worker ran it.
      if (config_.base.contrastive) {
        shard.augment_rng = augment_root_rng_.Fork();
      }
      shards_.push_back(std::move(shard));
    }
    if (shards_.empty()) break;
    RunShards();
    ReduceAndStep();
    for (const BatchLossTerms& terms : shard_terms_) {
      rank_total += terms.rank_loss;
      cl_total += terms.cl_loss;
    }
    stats.num_batches += static_cast<int64_t>(shards_.size());
  }
  if (stats.num_batches > 0) {
    stats.mean_rank_loss = rank_total / static_cast<double>(stats.num_batches);
    stats.mean_cl_loss = cl_total / static_cast<double>(stats.num_batches);
  }
  stats.seconds = watch.ElapsedSeconds();
  return stats;
}

std::vector<EpochStats> ParallelTrainer::Train(
    const std::vector<Example>& train, const DatasetMeta& meta,
    const Standardizer* standardizer) {
  std::vector<EpochStats> history;
  for (int64_t epoch = 0; epoch < config_.base.epochs; ++epoch) {
    EpochStats stats = TrainEpoch(train, meta, standardizer);
    if (config_.base.verbose) {
      AWMOE_LOG(Info) << model_->name() << " epoch " << (epoch + 1) << "/"
                      << config_.base.epochs << " rank_loss "
                      << stats.mean_rank_loss << " cl_loss "
                      << stats.mean_cl_loss << " [" << config_.num_workers
                      << " workers x " << config_.grad_accumulation
                      << " shards] (" << stats.seconds << "s)";
    }
    history.push_back(stats);
  }
  return history;
}

}  // namespace awmoe
