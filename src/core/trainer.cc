#include "core/trainer.h"

#include "autograd/ops.h"
#include "core/aw_moe.h"
#include "mat/kernels.h"
#include "models/listwise/listwise_reranker.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace awmoe {

Trainer::Trainer(Ranker* model, const TrainerConfig& config)
    : model_(model),
      config_(config),
      rng_(config.seed),
      shuffle_rng_(rng_.Fork()),
      augment_rng_(rng_.Fork()) {
  AWMOE_CHECK(model != nullptr);
  optimizer_ = std::make_unique<AdamW>(model->Parameters(), config.lr,
                                       config.weight_decay);
  if (config_.contrastive) {
    augmenter_ =
        std::make_unique<ContrastiveAugmenter>(config_.cl, &augment_rng_);
  }
}

Var BuildTrainingLoss(Ranker* model, const Batch& batch,
                      const TrainerConfig& config,
                      ContrastiveAugmenter* augmenter, BatchLossTerms* terms) {
  Var logits = model->ForwardLogits(batch);
  Var loss;
  if (model->SupportsSlateScoring()) {
    // Listwise models rank a slate against itself: ListNet softmax
    // cross-entropy per slate. Requires the iterator's group_by_session
    // mode so slates arrive whole; the iterator's explicit group
    // boundaries are the slate identity (sub-slates of a split
    // oversized session, duplicate session-id runs), with the
    // session-run derivation as the fallback for hand-built batches.
    std::vector<int64_t> derived;
    if (batch.slate_starts.empty()) SlateStartsFromBatch(batch, &derived);
    const std::vector<int64_t>& starts =
        batch.slate_starts.empty() ? derived : batch.slate_starts;
    loss = ag::ListwiseSoftmaxCrossEntropy(logits, batch.labels, starts);
  } else {
    loss = ag::BceWithLogitsLoss(logits, batch.labels);
  }
  if (terms != nullptr) terms->rank_loss = loss.value()(0, 0);

  if (config.contrastive && config.cl.weight > 0.0 && augmenter != nullptr) {
    // Anchor g(u_i), positive g(u'_i) from the masked sequence, and l
    // in-batch negatives gathered from the anchor matrix (Fig. 5).
    Var anchor = model->GateRepresentation(batch);
    AWMOE_CHECK(anchor.defined())
        << model->name() << " has no gate representation for CL";
    Batch augmented = augmenter->Augment(batch);
    Var positive = model->GateRepresentation(augmented);
    std::vector<Var> negatives;
    for (const auto& idx : augmenter->SampleNegatives(batch.size)) {
      negatives.push_back(ag::GatherRows(anchor, idx));
    }
    Var cl_loss = ag::InfoNceLoss(anchor, positive, negatives);
    if (terms != nullptr) terms->cl_loss = cl_loss.value()(0, 0);
    loss = ag::Add(loss,
                   ag::Scale(cl_loss, static_cast<float>(config.cl.weight)));
  }

  // Model-specific auxiliary losses (the expert-disagreement
  // regulariser) attach to the most recent forward pass.
  if (auto* aw = dynamic_cast<AwMoeRanker*>(model)) {
    Var aux = aw->PendingAuxiliaryLoss();
    if (aux.defined()) loss = ag::Add(loss, aux);
  }
  return loss;
}

EpochStats Trainer::TrainEpoch(const std::vector<Example>& train,
                               const DatasetMeta& meta,
                               const Standardizer* standardizer) {
  Stopwatch watch;
  EpochStats stats;
  BatchIterator it(&train, meta, config_.batch_size, standardizer,
                   &shuffle_rng_, model_->SupportsSlateScoring(),
                   model_->MaxSlateItems());
  Batch batch;
  double rank_total = 0.0, cl_total = 0.0;
  while (it.Next(&batch)) {
    optimizer_->ZeroGrad();

    BatchLossTerms terms;
    Var loss =
        BuildTrainingLoss(model_, batch, config_, augmenter_.get(), &terms);
    rank_total += terms.rank_loss;
    cl_total += terms.cl_loss;

    loss.Backward();
    std::vector<Var> params = model_->Parameters();
    if (config_.grad_clip > 0.0) ClipGradNorm(&params, config_.grad_clip);
    optimizer_->Step();
    ++stats.num_batches;
  }
  if (stats.num_batches > 0) {
    stats.mean_rank_loss = rank_total / stats.num_batches;
    stats.mean_cl_loss = cl_total / stats.num_batches;
  }
  stats.seconds = watch.ElapsedSeconds();
  return stats;
}

std::vector<EpochStats> Trainer::Train(const std::vector<Example>& train,
                                       const DatasetMeta& meta,
                                       const Standardizer* standardizer) {
  std::vector<EpochStats> history;
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    EpochStats stats = TrainEpoch(train, meta, standardizer);
    if (config_.verbose) {
      AWMOE_LOG(Info) << model_->name() << " epoch " << (epoch + 1) << "/"
                      << config_.epochs << " rank_loss "
                      << stats.mean_rank_loss << " cl_loss "
                      << stats.mean_cl_loss << " (" << stats.seconds << "s)";
    }
    history.push_back(stats);
  }
  return history;
}

std::vector<double> Predict(Ranker* model,
                            const std::vector<Example>& examples,
                            const DatasetMeta& meta,
                            const Standardizer* standardizer,
                            int64_t batch_size) {
  NoGradGuard guard;
  std::vector<double> scores;
  scores.reserve(examples.size());
  BatchIterator it(&examples, meta, batch_size, standardizer,
                   /*rng=*/nullptr, model->SupportsSlateScoring(),
                   model->MaxSlateItems());
  Batch batch;
  while (it.Next(&batch)) {
    Matrix probs = Sigmoid(model->ForwardLogits(batch).value());
    for (int64_t i = 0; i < probs.rows(); ++i) {
      scores.push_back(static_cast<double>(probs(i, 0)));
    }
  }
  return scores;
}

}  // namespace awmoe
