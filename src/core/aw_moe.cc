#include "core/aw_moe.h"

#include "autograd/ops.h"

namespace awmoe {

AwMoeRanker::AwMoeRanker(const DatasetMeta& meta, const AwMoeConfig& config,
                         Rng* rng)
    : meta_(meta),
      config_(config),
      embeddings_(meta, config.dims.emb_dim, rng),
      input_network_(meta, config.dims, &embeddings_,
                     UserPooling::kAttention, rng),
      experts_(input_network_.output_dim(), config.dims, rng),
      gate_network_(meta, config.dims, &embeddings_, config.gate, rng) {}

AwMoeRanker::ForwardResult AwMoeRanker::Forward(const Batch& batch) {
  ForwardResult result;
  // Step 1: input network -> impression vector (Eq. 2-4).
  Var v_imp = input_network_.Forward(batch);
  // Step 2: expert scores s_k (Eq. 5).
  result.expert_scores = experts_.ForwardAll(v_imp);
  // Step 3: gate activations g (Eq. 6-8).
  result.gate = gate_network_.Forward(batch);
  // Step 4: weighted sum (Eq. 9).
  result.logits = ag::DotRows(result.expert_scores, result.gate);

  if (config_.diversity_weight > 0.0) {
    // Disagreement regulariser: reward per-example variance across expert
    // scores, -w * tanh(mean_i Var_k(s_ik)). The tanh bounds the reward so
    // maximising disagreement cannot blow the expert scores up — raw
    // variance maximisation is unbounded and destabilises training.
    const int64_t k = experts_.num_experts();
    Var ones_over_k(
        Matrix::Full(k, 1, 1.0f / static_cast<float>(k)));
    Var mean_k = ag::MatMul(result.expert_scores, ones_over_k);  // [B,1].
    Var spread = ag::MatMul(mean_k, Var(Matrix::Full(1, k, 1.0f)));
    Var dev = ag::Sub(result.expert_scores, spread);
    Var variance = ag::MeanAll(ag::Mul(dev, dev));
    pending_aux_loss_ = ag::Scale(
        ag::Tanh(variance), -static_cast<float>(config_.diversity_weight));
  } else {
    pending_aux_loss_ = Var();
  }
  return result;
}

Var AwMoeRanker::ForwardLogits(const Batch& batch) {
  return Forward(batch).logits;
}

Var AwMoeRanker::GateRepresentation(const Batch& batch) {
  return gate_network_.Forward(batch);
}

Var AwMoeRanker::ForwardLogitsWithGate(const Batch& batch, const Var& gate) {
  AWMOE_CHECK(gate.defined()) << "ForwardLogitsWithGate: undefined gate";
  Var scores = experts_.ForwardAll(input_network_.Forward(batch));
  Var effective_gate = gate;
  if (gate.rows() == 1 && batch.size > 1) {
    std::vector<int64_t> zeros(static_cast<size_t>(batch.size), 0);
    effective_gate = ag::GatherRows(gate, zeros);
  }
  AWMOE_CHECK(effective_gate.rows() == batch.size)
      << "gate rows " << effective_gate.rows() << " vs batch " << batch.size;
  return ag::DotRows(scores, effective_gate);
}

Matrix AwMoeRanker::InferenceLogits(const Batch& batch) {
  NoGradGuard guard;
  Var v_imp = input_network_.Forward(batch);
  Var scores = experts_.ForwardAll(v_imp);
  Var gate = gate_network_.Forward(batch);
  return ag::DotRows(scores, gate).value();
}

Matrix AwMoeRanker::InferenceGate(const Batch& batch) {
  NoGradGuard guard;
  return gate_network_.Forward(batch).value();
}

Matrix AwMoeRanker::InferenceLogitsWithGate(const Batch& batch,
                                            const Matrix& gate) {
  NoGradGuard guard;
  return ForwardLogitsWithGate(batch, Var(gate)).value();
}

void AwMoeRanker::ScoreInto(const Batch& batch, const SessionGate* gate,
                            InferenceWorkspace* workspace,
                            std::span<float> out) {
  ScoreCore(batch, gate, /*encoding=*/nullptr, workspace, out);
}

void AwMoeRanker::ScoreWithSessionInto(const Batch& batch,
                                       const SessionGate* gate,
                                       const SessionEncoding* encoding,
                                       InferenceWorkspace* workspace,
                                       std::span<float> out) {
  ScoreCore(batch, gate, encoding, workspace, out);
}

void AwMoeRanker::ScoreCore(const Batch& batch, const SessionGate* gate,
                            const SessionEncoding* encoding,
                            InferenceWorkspace* workspace,
                            std::span<float> out) {
  CheckScoreIntoArgs(batch, workspace, out.size());
  InferenceArena* arena = workspace->arena();
  arena->Reset();
  const int64_t k = config_.dims.num_experts;
  // Algorithm 1 in kernel form, same op order as InferenceLogits:
  // input network -> expert scores -> gate -> row-wise weighted sum.
  MatView v_imp = arena->Alloc(batch.size, input_network_.output_dim());
  if (encoding != nullptr) {
    const ConstMatView enc_view = ResolveSessionEncoding(
        *encoding, batch.size, input_network_.session_encoding_dim());
    input_network_.InferWithSessionInto(batch, enc_view, arena, v_imp);
  } else {
    input_network_.InferInto(batch, arena, v_imp);
  }
  MatView scores = arena->Alloc(batch.size, k);
  experts_.InferAllInto(v_imp, arena, scores);
  ConstMatView gate_view;
  if (gate != nullptr) {
    gate_view = ResolveSessionGate(*gate, batch.size, k);
  } else {
    MatView g = arena->Alloc(batch.size, k);
    gate_network_.InferInto(batch, arena, g);
    gate_view = g;
  }
  DotRowsInto(scores, gate_view, MatView{out.data(), batch.size, 1, 1});
}

int64_t AwMoeRanker::SessionEncodingWidth() const {
  return input_network_.session_encoding_dim();
}

void AwMoeRanker::EncodeSessionInto(const Batch& batch,
                                    InferenceWorkspace* workspace,
                                    std::span<float> out) {
  CheckScoreIntoArgs(batch, workspace, out.size());
  const int64_t w = input_network_.session_encoding_dim();
  AWMOE_CHECK(static_cast<int64_t>(out.size()) >= batch.size * w)
      << "EncodeSessionInto: out span " << out.size() << " for "
      << batch.size << "x" << w;
  InferenceArena* arena = workspace->arena();
  arena->Reset();
  input_network_.EncodeSessionInto(batch, arena,
                                   MatView{out.data(), batch.size, w, w});
}

void AwMoeRanker::GateInto(const Batch& batch, InferenceWorkspace* workspace,
                           std::span<float> out) {
  CheckScoreIntoArgs(batch, workspace, out.size());
  const int64_t k = config_.dims.num_experts;
  AWMOE_CHECK(static_cast<int64_t>(out.size()) >= batch.size * k)
      << "GateInto: out span " << out.size() << " for " << batch.size
      << "x" << k;
  InferenceArena* arena = workspace->arena();
  arena->Reset();
  gate_network_.InferInto(batch, arena,
                          MatView{out.data(), batch.size, k, k});
}

std::vector<Var> AwMoeRanker::Parameters() const {
  std::vector<Var> params;
  embeddings_.CollectParameters(&params);
  input_network_.CollectParameters(&params);
  experts_.CollectParameters(&params);
  gate_network_.CollectParameters(&params);
  return params;
}

std::unique_ptr<Ranker> AwMoeRanker::Clone() const {
  // The fresh init is overwritten by CopyParametersInto, so the Rng
  // seed only has to exist, not match the original's.
  Rng rng(1);
  auto clone = std::make_unique<AwMoeRanker>(meta_, config_, &rng);
  CopyParametersInto(*this, clone.get());
  return clone;
}

}  // namespace awmoe
