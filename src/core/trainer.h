#ifndef AWMOE_CORE_TRAINER_H_
#define AWMOE_CORE_TRAINER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/contrastive.h"
#include "data/batcher.h"
#include "data/example.h"
#include "models/ranker.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace awmoe {

/// Training hyper-parameters. The paper trains with AdamW at lr 1e-4 /
/// batch 1024 on a billion-scale corpus (§IV-D); the defaults here are the
/// equivalents tuned for the synthetic corpora (see EXPERIMENTS.md).
struct TrainerConfig {
  int64_t batch_size = 256;
  int64_t epochs = 3;
  float lr = 2e-3f;
  float weight_decay = 1e-5f;
  double grad_clip = 10.0;
  /// Enables the auxiliary contrastive loss (Eq. 11). Requires a model with
  /// a defined GateRepresentation.
  bool contrastive = false;
  ContrastiveConfig cl;
  uint64_t seed = 7;
  bool verbose = false;
};

/// Per-epoch training statistics.
struct EpochStats {
  double mean_rank_loss = 0.0;
  double mean_cl_loss = 0.0;
  int64_t num_batches = 0;
  double seconds = 0.0;
};

/// Scalar loss terms of one training batch (diagnostics; the graph node
/// returned by BuildTrainingLoss is what Backward runs on).
struct BatchLossTerms {
  double rank_loss = 0.0;
  double cl_loss = 0.0;
};

/// Builds the full training-loss graph of one mini-batch (Eq. 11):
///   L_total = L_rank + lambda * L_cl (+ model auxiliary losses)
/// — the BCE ranking loss, the InfoNCE contrastive term when
/// `augmenter` is non-null and `config.contrastive` is set, and any
/// model-specific auxiliary loss attached to the forward pass (the
/// AW-MoE expert-disagreement regulariser). Shared by the serial
/// `Trainer` and the data-parallel `ParallelTrainer`
/// (core/parallel_trainer.h) so both optimise the exact same objective;
/// all randomness flows through `augmenter`'s Rng.
Var BuildTrainingLoss(Ranker* model, const Batch& batch,
                      const TrainerConfig& config,
                      ContrastiveAugmenter* augmenter, BatchLossTerms* terms);

/// Mini-batch trainer implementing the paper's objective (Eq. 11):
///   L_total = L_rank + lambda * L_cl
/// where L_rank is the negative log-likelihood (Eq. 1) and L_cl the
/// InfoNCE loss over gate outputs of masked/original behaviour sequences
/// (Eq. 10, Fig. 5).
class Trainer {
 public:
  /// `model` is not owned and must outlive the trainer.
  Trainer(Ranker* model, const TrainerConfig& config);

  /// Runs one epoch over `train` (shuffled); returns loss statistics.
  EpochStats TrainEpoch(const std::vector<Example>& train,
                        const DatasetMeta& meta,
                        const Standardizer* standardizer);

  /// Runs config.epochs epochs.
  std::vector<EpochStats> Train(const std::vector<Example>& train,
                                const DatasetMeta& meta,
                                const Standardizer* standardizer);

  const TrainerConfig& config() const { return config_; }

 private:
  Ranker* model_;
  TrainerConfig config_;
  Rng rng_;
  Rng shuffle_rng_;
  Rng augment_rng_;
  std::unique_ptr<AdamW> optimizer_;
  std::unique_ptr<ContrastiveAugmenter> augmenter_;
};

/// Scores a dataset with the model (no gradients); returns sigmoid
/// probabilities aligned with `examples`.
std::vector<double> Predict(Ranker* model,
                            const std::vector<Example>& examples,
                            const DatasetMeta& meta,
                            const Standardizer* standardizer,
                            int64_t batch_size = 512);

}  // namespace awmoe

#endif  // AWMOE_CORE_TRAINER_H_
