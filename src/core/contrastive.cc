#include "core/contrastive.h"

#include <algorithm>

#include "util/check.h"

namespace awmoe {

ContrastiveAugmenter::ContrastiveAugmenter(const ContrastiveConfig& config,
                                           Rng* rng)
    : config_(config), rng_(rng) {
  AWMOE_CHECK(config.mask_prob >= 0.0 && config.mask_prob <= 1.0)
      << "mask_prob=" << config.mask_prob;
  AWMOE_CHECK(config.num_negatives >= 0)
      << "num_negatives=" << config.num_negatives;
  AWMOE_CHECK(rng != nullptr);
}

Batch ContrastiveAugmenter::Augment(const Batch& batch) {
  Batch out = batch;
  for (int64_t i = 0; i < batch.size; ++i) {
    std::vector<int64_t> surviving;
    for (int64_t j = 0; j < batch.seq_len; ++j) {
      if (batch.behavior_mask(i, j) <= 0.0f) continue;
      if (rng_->Bernoulli(config_.mask_prob)) {
        const size_t idx = static_cast<size_t>(i * batch.seq_len + j);
        out.behavior_items[idx] = 0;
        out.behavior_cats[idx] = 0;
        out.behavior_brands[idx] = 0;
        out.behavior_mask(i, j) = 0.0f;
      } else {
        surviving.push_back(j);
      }
    }
    if (config_.strategy == ContrastiveConfig::Strategy::kMaskAndReorder &&
        surviving.size() > 1) {
      // Shuffle the surviving items among their positions.
      std::vector<int64_t> items, cats, brands;
      items.reserve(surviving.size());
      for (int64_t j : surviving) {
        const size_t idx = static_cast<size_t>(i * batch.seq_len + j);
        items.push_back(out.behavior_items[idx]);
        cats.push_back(out.behavior_cats[idx]);
        brands.push_back(out.behavior_brands[idx]);
      }
      std::vector<int64_t> perm(surviving.size());
      for (size_t s = 0; s < perm.size(); ++s) {
        perm[s] = static_cast<int64_t>(s);
      }
      rng_->Shuffle(&perm);
      for (size_t s = 0; s < surviving.size(); ++s) {
        const size_t dst =
            static_cast<size_t>(i * batch.seq_len + surviving[s]);
        const size_t src = static_cast<size_t>(perm[s]);
        out.behavior_items[dst] = items[src];
        out.behavior_cats[dst] = cats[src];
        out.behavior_brands[dst] = brands[src];
      }
    }
  }
  return out;
}

std::vector<std::vector<int64_t>> ContrastiveAugmenter::SampleNegatives(
    int64_t batch_size) {
  std::vector<std::vector<int64_t>> negatives(
      static_cast<size_t>(config_.num_negatives));
  for (auto& column : negatives) {
    column.resize(static_cast<size_t>(batch_size));
    for (int64_t i = 0; i < batch_size; ++i) {
      if (batch_size <= 1) {
        column[static_cast<size_t>(i)] = i;
        continue;
      }
      int64_t j = rng_->UniformInt(batch_size - 1);
      if (j >= i) ++j;  // Skip self.
      column[static_cast<size_t>(i)] = j;
    }
  }
  return negatives;
}

}  // namespace awmoe
