#include "core/gate_network.h"

#include "autograd/ops.h"
#include "mat/kernels.h"

namespace awmoe {

namespace {
std::vector<int64_t> WithOutput(std::vector<int64_t> dims, int64_t out) {
  dims.push_back(out);
  return dims;
}
}  // namespace

GateUnit::GateUnit(int64_t hidden_dim, std::vector<int64_t> mlp_dims,
                   int64_t num_experts, Rng* rng)
    : hidden_dim_(hidden_dim),
      mlp_(3 * hidden_dim, WithOutput(std::move(mlp_dims), num_experts),
           rng) {}

Var GateUnit::Forward(const Var& h_b, const Var& h_ref) const {
  AWMOE_CHECK(h_b.cols() == hidden_dim_ && h_ref.cols() == hidden_dim_)
      << "GateUnit: dims " << h_b.cols() << "/" << h_ref.cols() << " vs "
      << hidden_dim_;
  Var interaction = ag::Mul(h_b, h_ref);
  return mlp_.Forward(ag::ConcatCols({h_b, h_ref, interaction}));
}

void GateUnit::CollectParameters(std::vector<Var>* params) const {
  mlp_.CollectParameters(params);
}

GateNetwork::GateNetwork(const DatasetMeta& meta, const ModelDims& dims,
                         const EmbeddingSet* embeddings,
                         const GateConfig& config, Rng* rng)
    : meta_(meta),
      dims_(dims),
      config_(config),
      embeddings_(embeddings),
      item_tower_(embeddings->item_dim() + Example::kItemAttrs,
                  dims.tower_mlp, rng),
      ref_tower_(meta.recommendation_mode
                     ? embeddings->item_dim() + Example::kItemAttrs
                     : embeddings->emb_dim(),
                 dims.tower_mlp, rng),
      gate_unit_(dims.hidden_dim(), dims.gate_unit, dims.num_experts, rng),
      activation_unit_(dims.hidden_dim(), dims.activation_unit, rng),
      gate_bias_(Matrix(1, dims.num_experts), /*requires_grad=*/true) {
  AWMOE_CHECK(config.top_k >= 0 && config.top_k <= dims.num_experts)
      << "top_k=" << config.top_k << " with K=" << dims.num_experts;
}

Var GateNetwork::Reference(const Batch& batch) const {
  if (meta_.recommendation_mode) {
    // No query exists: the target item drives expert activation (§IV-A2).
    return ref_tower_.Forward(ag::ConcatCols(
        {embeddings_->ItemTriple(batch.target_items, batch.target_cats,
                                 batch.target_brands),
         Var(batch.target_attrs)}));
  }
  return ref_tower_.Forward(embeddings_->Query(batch.query_ids));
}

Var GateNetwork::Forward(const Batch& batch) const {
  Var h_ref = Reference(batch);
  const int64_t k = dims_.num_experts;

  Var g;  // [B, K] accumulated below (without bias).
  if (config_.mode == GateMode::kFull ||
      config_.mode == GateMode::kBaseGateUnit) {
    // Per-item gate units (Eq. 7), optionally attention-weighted (Eq. 8).
    for (int64_t j = 0; j < batch.seq_len; ++j) {
      Var h_bj = item_tower_.Forward(ag::ConcatCols(
          {embeddings_->ItemTriple(
               batch.BehaviorColumn(batch.behavior_items, j),
               batch.BehaviorColumn(batch.behavior_cats, j),
               batch.BehaviorColumn(batch.behavior_brands, j)),
           Var(batch.BehaviorAttrsColumn(j))}));
      Var a_j = gate_unit_.Forward(h_bj, h_ref);
      Matrix mask_j = batch.MaskColumn(j);
      Var contribution;
      if (config_.mode == GateMode::kFull) {
        Var w_j = activation_unit_.Forward(h_bj, h_ref);
        contribution = ag::MulColBroadcast(a_j, ag::MulMask(w_j, mask_j));
      } else {
        contribution = ag::MulMask(a_j, BroadcastCol(mask_j, k));
      }
      g = g.defined() ? ag::Add(g, contribution) : contribution;
    }
  } else {
    // Pooled modes: pool behaviour hiddens first, then one gate unit.
    Var pooled;
    for (int64_t j = 0; j < batch.seq_len; ++j) {
      Var h_bj = item_tower_.Forward(ag::ConcatCols(
          {embeddings_->ItemTriple(
               batch.BehaviorColumn(batch.behavior_items, j),
               batch.BehaviorColumn(batch.behavior_cats, j),
               batch.BehaviorColumn(batch.behavior_brands, j)),
           Var(batch.BehaviorAttrsColumn(j))}));
      Matrix mask_j = batch.MaskColumn(j);
      Var contribution;
      if (config_.mode == GateMode::kBaseActivationUnit) {
        Var w_j = activation_unit_.Forward(h_bj, h_ref);
        contribution = ag::MulColBroadcast(h_bj, ag::MulMask(w_j, mask_j));
      } else {  // kBaseSumPool.
        contribution =
            ag::MulMask(h_bj, BroadcastCol(mask_j, h_bj.cols()));
      }
      pooled =
          pooled.defined() ? ag::Add(pooled, contribution) : contribution;
    }
    g = gate_unit_.Forward(pooled, h_ref);
  }

  g = ag::AddBias(g, gate_bias_);
  if (config_.softmax) g = ag::SoftmaxRows(g);
  if (config_.top_k > 0 && config_.top_k < k) {
    // Sparsely-gated MoE (§V): hard top-k selection; gradients flow only
    // through the surviving activations.
    Matrix mask = TopKMaskRows(g.value(), config_.top_k);
    g = ag::MulMask(g, mask);
  }
  return g;
}

void GateNetwork::CollectParameters(std::vector<Var>* params) const {
  item_tower_.CollectParameters(params);
  ref_tower_.CollectParameters(params);
  gate_unit_.CollectParameters(params);
  if (config_.mode == GateMode::kFull ||
      config_.mode == GateMode::kBaseActivationUnit) {
    activation_unit_.CollectParameters(params);
  }
  params->push_back(gate_bias_);
}

}  // namespace awmoe
