#include "core/gate_network.h"

#include "autograd/ops.h"
#include "mat/kernels.h"

namespace awmoe {

namespace {
std::vector<int64_t> WithOutput(std::vector<int64_t> dims, int64_t out) {
  dims.push_back(out);
  return dims;
}
}  // namespace

GateUnit::GateUnit(int64_t hidden_dim, std::vector<int64_t> mlp_dims,
                   int64_t num_experts, Rng* rng)
    : hidden_dim_(hidden_dim),
      mlp_(3 * hidden_dim, WithOutput(std::move(mlp_dims), num_experts),
           rng) {}

Var GateUnit::Forward(const Var& h_b, const Var& h_ref) const {
  AWMOE_CHECK(h_b.cols() == hidden_dim_ && h_ref.cols() == hidden_dim_)
      << "GateUnit: dims " << h_b.cols() << "/" << h_ref.cols() << " vs "
      << hidden_dim_;
  Var interaction = ag::Mul(h_b, h_ref);
  return mlp_.Forward(ag::ConcatCols({h_b, h_ref, interaction}));
}

void GateUnit::CollectParameters(std::vector<Var>* params) const {
  mlp_.CollectParameters(params);
}

GateNetwork::GateNetwork(const DatasetMeta& meta, const ModelDims& dims,
                         const EmbeddingSet* embeddings,
                         const GateConfig& config, Rng* rng)
    : meta_(meta),
      dims_(dims),
      config_(config),
      embeddings_(embeddings),
      item_tower_(embeddings->item_dim() + Example::kItemAttrs,
                  dims.tower_mlp, rng),
      ref_tower_(meta.recommendation_mode
                     ? embeddings->item_dim() + Example::kItemAttrs
                     : embeddings->emb_dim(),
                 dims.tower_mlp, rng),
      gate_unit_(dims.hidden_dim(), dims.gate_unit, dims.num_experts, rng),
      activation_unit_(dims.hidden_dim(), dims.activation_unit, rng),
      gate_bias_(Matrix(1, dims.num_experts), /*requires_grad=*/true) {
  AWMOE_CHECK(config.top_k >= 0 && config.top_k <= dims.num_experts)
      << "top_k=" << config.top_k << " with K=" << dims.num_experts;
}

Var GateNetwork::Reference(const Batch& batch) const {
  if (meta_.recommendation_mode) {
    // No query exists: the target item drives expert activation (§IV-A2).
    return ref_tower_.Forward(ag::ConcatCols(
        {embeddings_->ItemTriple(batch.target_items, batch.target_cats,
                                 batch.target_brands),
         Var(batch.target_attrs)}));
  }
  return ref_tower_.Forward(embeddings_->Query(batch.query_ids));
}

Var GateNetwork::Forward(const Batch& batch) const {
  Var h_ref = Reference(batch);
  const int64_t k = dims_.num_experts;

  Var g;  // [B, K] accumulated below (without bias).
  if (config_.mode == GateMode::kFull ||
      config_.mode == GateMode::kBaseGateUnit) {
    // Per-item gate units (Eq. 7), optionally attention-weighted (Eq. 8).
    for (int64_t j = 0; j < batch.seq_len; ++j) {
      Var h_bj = item_tower_.Forward(ag::ConcatCols(
          {embeddings_->ItemTriple(
               batch.BehaviorColumn(batch.behavior_items, j),
               batch.BehaviorColumn(batch.behavior_cats, j),
               batch.BehaviorColumn(batch.behavior_brands, j)),
           Var(batch.BehaviorAttrsColumn(j))}));
      Var a_j = gate_unit_.Forward(h_bj, h_ref);
      Matrix mask_j = batch.MaskColumn(j);
      Var contribution;
      if (config_.mode == GateMode::kFull) {
        Var w_j = activation_unit_.Forward(h_bj, h_ref);
        contribution = ag::MulColBroadcast(a_j, ag::MulMask(w_j, mask_j));
      } else {
        contribution = ag::MulMask(a_j, BroadcastCol(mask_j, k));
      }
      g = g.defined() ? ag::Add(g, contribution) : contribution;
    }
  } else {
    // Pooled modes: pool behaviour hiddens first, then one gate unit.
    Var pooled;
    for (int64_t j = 0; j < batch.seq_len; ++j) {
      Var h_bj = item_tower_.Forward(ag::ConcatCols(
          {embeddings_->ItemTriple(
               batch.BehaviorColumn(batch.behavior_items, j),
               batch.BehaviorColumn(batch.behavior_cats, j),
               batch.BehaviorColumn(batch.behavior_brands, j)),
           Var(batch.BehaviorAttrsColumn(j))}));
      Matrix mask_j = batch.MaskColumn(j);
      Var contribution;
      if (config_.mode == GateMode::kBaseActivationUnit) {
        Var w_j = activation_unit_.Forward(h_bj, h_ref);
        contribution = ag::MulColBroadcast(h_bj, ag::MulMask(w_j, mask_j));
      } else {  // kBaseSumPool.
        contribution =
            ag::MulMask(h_bj, BroadcastCol(mask_j, h_bj.cols()));
      }
      pooled =
          pooled.defined() ? ag::Add(pooled, contribution) : contribution;
    }
    g = gate_unit_.Forward(pooled, h_ref);
  }

  g = ag::AddBias(g, gate_bias_);
  if (config_.softmax) g = ag::SoftmaxRows(g);
  if (config_.top_k > 0 && config_.top_k < k) {
    // Sparsely-gated MoE (§V): hard top-k selection; gradients flow only
    // through the surviving activations.
    Matrix mask = TopKMaskRows(g.value(), config_.top_k);
    g = ag::MulMask(g, mask);
  }
  return g;
}

void GateUnit::InferInto(const ConstMatView& h_b, const ConstMatView& h_ref,
                         InferenceArena* arena, MatView out) const {
  AWMOE_CHECK(h_b.cols == hidden_dim_ && h_ref.cols == hidden_dim_)
      << "GateUnit::InferInto: dims " << h_b.cols << "/" << h_ref.cols
      << " vs " << hidden_dim_;
  const size_t mark = arena->Mark();
  MatView joined = arena->Alloc(h_b.rows, 3 * hidden_dim_);
  ConcatInteractionInto(h_b, h_ref, joined);
  mlp_.InferInto(joined, arena, out);
  arena->Rewind(mark);
}

void GateNetwork::ReferenceInto(const Batch& batch, InferenceArena* arena,
                                MatView out) const {
  const size_t mark = arena->Mark();
  if (meta_.recommendation_mode) {
    // No query exists: the target item drives expert activation (§IV-A2).
    const int64_t item_in = embeddings_->item_dim() + Example::kItemAttrs;
    MatView joined = arena->Alloc(batch.size, item_in);
    embeddings_->ItemWithAttrsInto(batch.target_items.data(),
                                   batch.target_cats.data(),
                                   batch.target_brands.data(), batch.size,
                                   /*id_stride=*/1,
                                   MatrixView(batch.target_attrs), joined);
    ref_tower_.InferInto(joined, arena, out);
  } else {
    MatView q = arena->Alloc(batch.size, embeddings_->emb_dim());
    embeddings_->QueryInto(batch.query_ids.data(), batch.size, q);
    ref_tower_.InferInto(q, arena, out);
  }
  arena->Rewind(mark);
}

void GateNetwork::BehaviorHiddenInto(const Batch& batch, int64_t j,
                                     InferenceArena* arena,
                                     MatView out) const {
  const size_t mark = arena->Mark();
  const int64_t item_in = embeddings_->item_dim() + Example::kItemAttrs;
  MatView joined = arena->Alloc(batch.size, item_in);
  embeddings_->ItemWithAttrsInto(
      batch.behavior_items.data() + j, batch.behavior_cats.data() + j,
      batch.behavior_brands.data() + j, batch.size,
      /*id_stride=*/batch.seq_len,
      MatrixColsView(batch.behavior_attrs, j * Example::kItemAttrs,
                     Example::kItemAttrs),
      joined);
  item_tower_.InferInto(joined, arena, out);
  arena->Rewind(mark);
}

void GateNetwork::InferInto(const Batch& batch, InferenceArena* arena,
                            MatView out) const {
  const int64_t b = batch.size;
  const int64_t k = dims_.num_experts;
  const int64_t h = dims_.hidden_dim();
  AWMOE_CHECK(out.rows == b && out.cols == k)
      << "GateNetwork::InferInto: out " << out.rows << "x" << out.cols;
  AWMOE_CHECK(batch.seq_len > 0)
      << "GateNetwork::InferInto: empty sequence layout";
  const size_t outer_mark = arena->Mark();
  MatView h_ref = arena->Alloc(b, h);
  ReferenceInto(batch, arena, h_ref);

  // `out` accumulates g exactly like Forward: position 0 assigns, later
  // positions add a materialised contribution buffer.
  if (config_.mode == GateMode::kFull ||
      config_.mode == GateMode::kBaseGateUnit) {
    // Per-item gate units (Eq. 7), optionally attention-weighted (Eq. 8).
    for (int64_t j = 0; j < batch.seq_len; ++j) {
      const size_t mark = arena->Mark();
      MatView h_bj = arena->Alloc(b, h);
      BehaviorHiddenInto(batch, j, arena, h_bj);
      MatView a_j = arena->Alloc(b, k);
      gate_unit_.InferInto(h_bj, h_ref, arena, a_j);
      const ConstMatView mask_j = MatrixColsView(batch.behavior_mask, j, 1);
      ConstMatView weights;
      if (config_.mode == GateMode::kFull) {
        MatView w_j = arena->Alloc(b, 1);
        activation_unit_.InferInto(h_bj, h_ref, arena, w_j);
        MatView masked = arena->Alloc(b, 1);
        MulInto(w_j, mask_j, masked);
        weights = masked;
      } else {
        weights = mask_j;
      }
      if (j == 0) {
        MulColBroadcastInto(a_j, weights, out);
      } else {
        MatView contribution = arena->Alloc(b, k);
        MulColBroadcastInto(a_j, weights, contribution);
        AddInPlace(out, contribution);
      }
      arena->Rewind(mark);
    }
  } else {
    // Pooled modes: pool behaviour hiddens first, then one gate unit.
    MatView pooled = arena->Alloc(b, h);
    for (int64_t j = 0; j < batch.seq_len; ++j) {
      const size_t mark = arena->Mark();
      MatView h_bj = arena->Alloc(b, h);
      BehaviorHiddenInto(batch, j, arena, h_bj);
      const ConstMatView mask_j = MatrixColsView(batch.behavior_mask, j, 1);
      ConstMatView weights;
      if (config_.mode == GateMode::kBaseActivationUnit) {
        MatView w_j = arena->Alloc(b, 1);
        activation_unit_.InferInto(h_bj, h_ref, arena, w_j);
        MatView masked = arena->Alloc(b, 1);
        MulInto(w_j, mask_j, masked);
        weights = masked;
      } else {  // kBaseSumPool.
        weights = mask_j;
      }
      if (j == 0) {
        MulColBroadcastInto(h_bj, weights, pooled);
      } else {
        MatView contribution = arena->Alloc(b, h);
        MulColBroadcastInto(h_bj, weights, contribution);
        AddInPlace(pooled, contribution);
      }
      arena->Rewind(mark);
    }
    gate_unit_.InferInto(pooled, h_ref, arena, out);
  }

  AddBiasInPlace(out, gate_bias_.value());
  if (config_.softmax) SoftmaxRowsInPlace(out);
  if (config_.top_k > 0 && config_.top_k < k) {
    // Sparsely-gated MoE (§V): hard top-k selection, same tie-breaking
    // as the training path's TopKMaskRows.
    TopKMulInPlace(out, config_.top_k, arena);
  }
  arena->Rewind(outer_mark);
}

void GateNetwork::CollectParameters(std::vector<Var>* params) const {
  item_tower_.CollectParameters(params);
  ref_tower_.CollectParameters(params);
  gate_unit_.CollectParameters(params);
  if (config_.mode == GateMode::kFull ||
      config_.mode == GateMode::kBaseActivationUnit) {
    activation_unit_.CollectParameters(params);
  }
  params->push_back(gate_bias_);
}

}  // namespace awmoe
