#ifndef AWMOE_CORE_GATE_NETWORK_H_
#define AWMOE_CORE_GATE_NETWORK_H_

#include <cstdint>
#include <vector>

#include "data/example.h"
#include "models/attention_unit.h"
#include "models/embedding_set.h"
#include "models/model_dims.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "util/rng.h"

namespace awmoe {

/// The gate unit Theta of Fig. 4c: like the activation unit but with a
/// K-wide output — for one behaviour item it scores the activation of
/// every expert (Eq. 7).
class GateUnit : public Module {
 public:
  GateUnit(int64_t hidden_dim, std::vector<int64_t> mlp_dims,
           int64_t num_experts, Rng* rng);

  /// h_b, h_ref: [B, hidden_dim] -> activation vectors a_j [B, K].
  Var Forward(const Var& h_b, const Var& h_ref) const;

  /// Graph-free Forward into a caller [B, K] view.
  void InferInto(const ConstMatView& h_b, const ConstMatView& h_ref,
                 InferenceArena* arena, MatView out) const;

  void CollectParameters(std::vector<Var>* params) const override;

 private:
  int64_t hidden_dim_;
  Mlp mlp_;
};

/// Which gate-network modules are active — the ablation axis of Table VI.
enum class GateMode {
  kBaseSumPool,         // "Base": sum-pool behaviours, one gate unit on top.
  kBaseGateUnit,        // "Base+GU": per-item gate units, uniform weights.
  kBaseActivationUnit,  // "Base+AU": attention pooling, one gate unit.
  kFull,                // "Base+GU+AU": the AW-MoE gate (Eq. 8).
};

/// Gate network configuration (ablations + the §V future-work extensions).
struct GateConfig {
  GateMode mode = GateMode::kFull;
  /// Softmax-normalise the activation vector over experts. The paper's
  /// Eq. 8-9 uses raw weighted sums (default false).
  bool softmax = false;
  /// Sparsely-gated MoE (§V future work): keep only the top-k activations
  /// per example. 0 disables sparsification.
  int64_t top_k = 0;
};

/// The gate network of Fig. 3c. Shares the embedding layer with the input
/// network but owns its tower MLPs (MLP^G, Eq. 6). For each behaviour item
/// a gate unit learns per-expert activations and an activation unit learns
/// the item's attention weight; the outputs combine per Eq. 8:
///   g_k = sum_j Phi^G(h^G_bj, h^G_q) * Theta(h^G_bj, h^G_q)_k  (+ bias)
/// A learned bias row makes the gate well-defined for users with empty
/// behaviour sequences (all positions masked). In recommendation mode the
/// reference input is the target item instead of the query (§III-F / IV-A2).
class GateNetwork : public Module {
 public:
  GateNetwork(const DatasetMeta& meta, const ModelDims& dims,
              const EmbeddingSet* embeddings, const GateConfig& config,
              Rng* rng);

  /// Activation vector g [B, K] (Eq. 8), also the gate's user
  /// representation used by the contrastive loss and Fig. 7.
  Var Forward(const Batch& batch) const;

  /// Graph-free Forward into a caller [B, K] view (bitwise-identical
  /// to Forward, zero allocation once the arena is warm) — the gate
  /// half of the ScoreInto serving path, also used alone by GateInto
  /// when the engine probes per-session gate rows.
  void InferInto(const Batch& batch, InferenceArena* arena,
                 MatView out) const;

  void CollectParameters(std::vector<Var>* params) const override;

  const GateConfig& config() const { return config_; }

 private:
  /// h^G of the reference (query, or target item in recommendation mode).
  Var Reference(const Batch& batch) const;

  /// Graph-free Reference into `out` [B, hidden_dim].
  void ReferenceInto(const Batch& batch, InferenceArena* arena,
                     MatView out) const;

  /// Graph-free item tower over sequence position j: `out` [B, hidden].
  void BehaviorHiddenInto(const Batch& batch, int64_t j,
                          InferenceArena* arena, MatView out) const;

  DatasetMeta meta_;
  ModelDims dims_;
  GateConfig config_;
  const EmbeddingSet* embeddings_;
  Mlp item_tower_;  // MLP^G over behaviour items.
  Mlp ref_tower_;   // MLP^G over the query / target item.
  GateUnit gate_unit_;
  AttentionUnit activation_unit_;
  Var gate_bias_;  // [1, K].
};

}  // namespace awmoe

#endif  // AWMOE_CORE_GATE_NETWORK_H_
