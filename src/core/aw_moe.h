#ifndef AWMOE_CORE_AW_MOE_H_
#define AWMOE_CORE_AW_MOE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/gate_network.h"
#include "data/example.h"
#include "models/embedding_set.h"
#include "models/expert.h"
#include "models/input_network.h"
#include "models/model_dims.h"
#include "models/ranker.h"
#include "util/rng.h"

namespace awmoe {

/// Full AW-MoE configuration.
struct AwMoeConfig {
  ModelDims dims;
  GateConfig gate;
  /// Expert-disagreement regulariser weight (§V future work, after [34]):
  /// adds -w * Var_k(s_k) to the loss, pushing experts apart. 0 disables.
  double diversity_weight = 0.0;
  /// Display-name override (ablation benches label their variants).
  std::string name = "AW-MoE";
};

/// Attention Weighted Mixture of Experts (Fig. 3, Algorithm 1): the user
/// behaviour sequence is fed simultaneously into the expert networks (via
/// the input network, Eq. 2-4) and into the gate network (Eq. 6-8); the
/// ranking score is the gate-weighted sum of expert scores (Eq. 9).
class AwMoeRanker : public Ranker {
 public:
  AwMoeRanker(const DatasetMeta& meta, const AwMoeConfig& config, Rng* rng);

  struct ForwardResult {
    Var logits;         // [B, 1] (Eq. 9, pre-sigmoid).
    Var gate;           // [B, K] gate activations g.
    Var expert_scores;  // [B, K] expert scores S.
  };

  /// One full forward pass (Algorithm 1 steps 1-4).
  ForwardResult Forward(const Batch& batch);

  Var ForwardLogits(const Batch& batch) override;

  /// Gate-only forward (Algorithm 1 step 3): the user representation the
  /// contrastive loss (Eq. 10) and the Fig. 7 visualisation operate on.
  /// Cheaper than Forward because experts are skipped.
  Var GateRepresentation(const Batch& batch) override;

  /// Serving-path forward with a precomputed gate (§III-F): when the gate
  /// reads only user and query features, one gate evaluation serves every
  /// target item in the session. `gate` is [1, K] (or [B, K]); row 0 is
  /// broadcast when a single row is given.
  Var ForwardLogitsWithGate(const Batch& batch, const Var& gate);

  /// Inference-only forward: logits without building a graph or touching
  /// the pending auxiliary loss, so concurrent serving threads observe no
  /// state mutation on the expert/gate path.
  Matrix InferenceLogits(const Batch& batch) override;

  /// Gate activations [B, K] for serving, graph-free. One row per batch
  /// row; in search mode every row of a session is identical, which is
  /// what the serving engine's per-session gate cache exploits.
  Matrix InferenceGate(const Batch& batch);

  /// Expert path with an externally supplied [B, K] gate matrix (rows
  /// typically replicated from cached per-session gates), graph-free.
  Matrix InferenceLogitsWithGate(const Batch& batch, const Matrix& gate);

  // --- Workspace-based hot path (see models/ranker.h). ---

  /// Allocation-free inference: expert path + gate network, or expert
  /// path under a precomputed SessionGate (§III-F). Bitwise-identical
  /// to InferenceLogits / InferenceLogitsWithGate respectively.
  void ScoreInto(const Batch& batch, const SessionGate* gate,
                 InferenceWorkspace* workspace,
                 std::span<float> out) override;

  /// Graph- and allocation-free gate rows [B, K]; bitwise-identical to
  /// InferenceGate.
  void GateInto(const Batch& batch, InferenceWorkspace* workspace,
                std::span<float> out) override;

  int64_t SessionGateWidth() const override {
    return config_.dims.num_experts;
  }

  /// The §III-F precondition: in search mode the gate reads only the
  /// behaviour sequence and query, both constant within a session. In
  /// recommendation mode the gate reads the target item, so reuse is off.
  bool SupportsSessionGateReuse(const DatasetMeta& meta) const override {
    return !meta.recommendation_mode;
  }

  // --- Session feature store (level-2 cache) overrides. ---

  int64_t SessionEncodingWidth() const override;

  /// Unlike the gate, the candidate-independent half of the input
  /// network (behaviour-tower outputs + query embedding) never reads the
  /// target item, so encoding reuse holds in both modes.
  bool SupportsSessionEncodingReuse(const DatasetMeta& meta) const override {
    (void)meta;
    return true;
  }

  /// Behaviour-tower rows + query embedding [B, SessionEncodingWidth()];
  /// identical rows within a session. Bitwise: replaying the result via
  /// ScoreWithSessionInto reproduces ScoreInto exactly.
  void EncodeSessionInto(const Batch& batch, InferenceWorkspace* workspace,
                         std::span<float> out) override;

  /// ScoreInto with the candidate-independent blocks replayed from
  /// `encoding` (null falls through to the fused path verbatim).
  void ScoreWithSessionInto(const Batch& batch, const SessionGate* gate,
                            const SessionEncoding* encoding,
                            InferenceWorkspace* workspace,
                            std::span<float> out) override;

  /// Expert-disagreement penalty for the most recent Forward /
  /// ForwardLogits call (undefined Var when diversity_weight == 0).
  Var PendingAuxiliaryLoss() const { return pending_aux_loss_; }

  std::vector<Var> Parameters() const override;
  std::string name() const override { return config_.name; }

  /// Deep copy (weights into disjoint storage); the serving ModelPool
  /// uses this to materialise replica lanes from one loaded model.
  std::unique_ptr<Ranker> Clone() const override;

  const AwMoeConfig& config() const { return config_; }

 private:
  /// Shared body of ScoreInto (encoding == nullptr) and
  /// ScoreWithSessionInto — one op sequence, so the fused and replay
  /// paths cannot drift.
  void ScoreCore(const Batch& batch, const SessionGate* gate,
                 const SessionEncoding* encoding,
                 InferenceWorkspace* workspace, std::span<float> out);

  DatasetMeta meta_;
  AwMoeConfig config_;
  EmbeddingSet embeddings_;
  InputNetwork input_network_;
  ExpertBank experts_;
  GateNetwork gate_network_;
  Var pending_aux_loss_;
};

}  // namespace awmoe

#endif  // AWMOE_CORE_AW_MOE_H_
