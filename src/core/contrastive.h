#ifndef AWMOE_CORE_CONTRASTIVE_H_
#define AWMOE_CORE_CONTRASTIVE_H_

#include <cstdint>
#include <vector>

#include "data/example.h"
#include "util/rng.h"

namespace awmoe {

/// Contrastive-learning hyper-parameters (§III-D): mask probability p,
/// in-batch negatives l, and loss weight lambda. Paper optima: p = 0.1,
/// l = 3, lambda = 0.05 (§IV-H).
struct ContrastiveConfig {
  double mask_prob = 0.1;
  int64_t num_negatives = 3;
  double weight = 0.05;

  /// Behaviour-sequence augmentation strategy. kMask is the paper's;
  /// kMaskAndReorder adds the item-reordering augmentation the paper lists
  /// as future work (§V, after [43]/[44]).
  enum class Strategy { kMask, kMaskAndReorder };
  Strategy strategy = Strategy::kMask;
};

/// Builds positive instances u'_i by randomly masking the user behaviour
/// sequence (simulating long-tail users) and samples in-batch negatives
/// u_j (Fig. 5).
class ContrastiveAugmenter {
 public:
  ContrastiveAugmenter(const ContrastiveConfig& config, Rng* rng);

  /// A copy of `batch` with every valid behaviour position independently
  /// masked with probability p (ids zeroed, mask cleared); with
  /// kMaskAndReorder the surviving items are additionally shuffled.
  Batch Augment(const Batch& batch);

  /// l vectors of in-batch negative indices; negatives[r][i] != i whenever
  /// the batch has more than one row.
  std::vector<std::vector<int64_t>> SampleNegatives(int64_t batch_size);

  const ContrastiveConfig& config() const { return config_; }

 private:
  ContrastiveConfig config_;
  Rng* rng_;
};

}  // namespace awmoe

#endif  // AWMOE_CORE_CONTRASTIVE_H_
