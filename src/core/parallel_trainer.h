#ifndef AWMOE_CORE_PARALLEL_TRAINER_H_
#define AWMOE_CORE_PARALLEL_TRAINER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "data/batcher.h"
#include "data/example.h"
#include "mat/matrix.h"
#include "models/ranker.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace awmoe {

/// Data-parallel training configuration. `base` carries the objective
/// and optimizer hyper-parameters (shared with the serial Trainer);
/// the two knobs below shape the parallel schedule.
struct ParallelTrainerConfig {
  TrainerConfig base;

  /// Worker threads computing shard gradients on private model clones.
  /// 1 runs every shard on the calling thread (no threads spawned) —
  /// and, by the determinism contract below, produces BITWISE the same
  /// parameters as any other worker count.
  int num_workers = 2;

  /// Shards (micro-batches of `base.batch_size` rows) accumulated into
  /// one synchronous optimizer step. The reduced gradient is the
  /// row-weighted average of the shard gradients, i.e. the gradient of
  /// the mean loss over the union of the shards — a step over an
  /// effective batch of grad_accumulation * batch_size rows without
  /// ever materialising it.
  int64_t grad_accumulation = 1;
};

/// Data-parallel synchronous trainer: each global step takes the next
/// `grad_accumulation` shards off the (serial-Trainer-identical)
/// shuffled batch stream, fans them out to `num_workers` threads — each
/// holding a private deep clone of the model, because autograd gradient
/// accumulation on shared leaves is not thread-safe — and reduces the
/// shard gradients into one averaged update on the primary model, after
/// which every clone is re-synchronised from the primary's weights.
///
/// Determinism contract (pinned by core_parallel_trainer_test):
///  - WORKER-COUNT INDEPENDENCE, bitwise: shard gradients are reduced
///    in shard-index order with float weights rows_s / total_rows, no
///    matter which worker computed which shard, and each shard's
///    contrastive augmentation Rng is forked from a single root in
///    shard order on the coordinator. Training with N workers yields
///    bit-for-bit the parameters of training with 1.
///  - SERIAL EQUIVALENCE, bitwise, when grad_accumulation == 1 and
///    contrastive is off: one shard per step weighted 1.0f (an IEEE
///    identity) walks exactly the serial Trainer's sequence of
///    forwards, clips and AdamW steps. (With contrastive ON the serial
///    Trainer consumes one evolving augmentation stream while shards
///    use per-shard forks, so equivalence is statistical, not bitwise.)
class ParallelTrainer {
 public:
  /// `model` is not owned and must outlive the trainer; it is the
  /// primary replica the optimizer steps and the clones sync from.
  ParallelTrainer(Ranker* model, const ParallelTrainerConfig& config);
  ~ParallelTrainer();

  ParallelTrainer(const ParallelTrainer&) = delete;
  ParallelTrainer& operator=(const ParallelTrainer&) = delete;

  /// Runs one epoch over `train` (shuffled); returns loss statistics.
  /// `num_batches` counts shards (micro-batches), matching the serial
  /// Trainer's notion of a batch.
  EpochStats TrainEpoch(const std::vector<Example>& train,
                        const DatasetMeta& meta,
                        const Standardizer* standardizer);

  /// Runs config.base.epochs epochs.
  std::vector<EpochStats> Train(const std::vector<Example>& train,
                                const DatasetMeta& meta,
                                const Standardizer* standardizer);

  const ParallelTrainerConfig& config() const { return config_; }

  /// Optimizer steps taken so far (one per reduced shard group).
  int64_t steps() const { return steps_; }

 private:
  /// One micro-batch of work: the collated rows plus a private
  /// augmentation Rng forked in shard order (worker-count independent).
  struct Shard {
    Batch batch;
    Rng augment_rng;
    int64_t rows = 0;
  };

  /// One worker's private replica: a deep clone plus its parameter
  /// handles (construction-order aligned with the primary's).
  struct WorkerReplica {
    std::unique_ptr<Ranker> clone;
    std::vector<Var> params;
  };

  /// Computes shard `s`'s gradients on worker `w`'s clone into
  /// shard_grads_[s] (one Matrix per parameter; empty = no gradient).
  void ComputeShard(int worker, size_t s);

  /// Reduces shard_grads_ in shard order into the primary parameters,
  /// clips, steps the optimizer, and re-syncs every clone.
  void ReduceAndStep();

  /// Persistent worker thread body (num_workers > 1 only).
  void WorkerLoop(int worker);

  /// Runs the staged shards_ to completion across the workers (or
  /// inline when single-threaded).
  void RunShards();

  Ranker* model_;
  ParallelTrainerConfig config_;
  Rng rng_;
  Rng shuffle_rng_;
  /// Root of the per-shard augmentation forks (fork order == shard
  /// order, so streams do not depend on worker scheduling).
  Rng augment_root_rng_;
  std::vector<Var> params_;
  std::unique_ptr<AdamW> optimizer_;
  std::vector<WorkerReplica> replicas_;
  int64_t steps_ = 0;

  // Per-group staging: written by the coordinator before workers are
  // released (the generation handshake under mu_ orders the accesses),
  // then each slot written by exactly one worker.
  std::vector<Shard> shards_;
  std::vector<std::vector<Matrix>> shard_grads_;
  std::vector<BatchLossTerms> shard_terms_;

  // Worker pool handshake (threads exist only when num_workers > 1).
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  int64_t generation_ = 0;
  int pending_workers_ = 0;
  bool stopping_ = false;
  std::atomic<size_t> next_shard_{0};
};

}  // namespace awmoe

#endif  // AWMOE_CORE_PARALLEL_TRAINER_H_
