#include "autograd/grad_check.h"

#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace awmoe {

GradCheckResult CheckGradients(
    const std::function<Var(const std::vector<Var>&)>& fn,
    std::vector<Var> inputs, const GradCheckOptions& options) {
  GradCheckResult result;

  for (const Var& input : inputs) {
    AWMOE_CHECK(input.requires_grad())
        << "CheckGradients: all inputs must require grad";
    // Const-cast free: Var handles share impls, so zeroing via a copy works.
    Var handle = input;
    handle.ZeroGrad();
  }

  // Analytic pass.
  Var out = fn(inputs);
  AWMOE_CHECK(out.rows() == 1 && out.cols() == 1)
      << "CheckGradients: fn must return a scalar, got "
      << out.value().ShapeString();
  out.Backward();

  std::vector<Matrix> analytic;
  analytic.reserve(inputs.size());
  for (const Var& input : inputs) {
    if (input.has_grad()) {
      analytic.push_back(input.grad());
    } else {
      analytic.push_back(Matrix(input.rows(), input.cols()));
    }
  }

  auto eval = [&]() -> float {
    NoGradGuard guard;
    return fn(inputs).value()(0, 0);
  };

  for (size_t v = 0; v < inputs.size(); ++v) {
    Matrix& value = inputs[v].mutable_value();
    for (int64_t r = 0; r < value.rows(); ++r) {
      for (int64_t c = 0; c < value.cols(); ++c) {
        float original = value(r, c);
        value(r, c) = original + options.epsilon;
        float f_plus = eval();
        value(r, c) = original - options.epsilon;
        float f_minus = eval();
        value(r, c) = original;

        float numeric = (f_plus - f_minus) / (2.0f * options.epsilon);
        float exact = analytic[v](r, c);
        float err = std::abs(exact - numeric);
        result.max_abs_error = std::max(result.max_abs_error, err);
        if (err > options.abs_tol + options.rel_tol * std::abs(numeric)) {
          result.ok = false;
          if (result.message.empty()) {
            result.message = StrFormat(
                "input %zu element (%lld,%lld): analytic %.6f vs numeric "
                "%.6f (err %.6f)",
                v, static_cast<long long>(r), static_cast<long long>(c),
                exact, numeric, err);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace awmoe
