#include "autograd/variable.h"

#include <algorithm>
#include <unordered_set>

#include "mat/kernels.h"
#include "util/check.h"

namespace awmoe {

namespace internal_ag {

void AccumulateGrad(VarImpl* node, const Matrix& g) {
  if (!node->requires_grad) return;
  AWMOE_CHECK(g.rows() == node->value.rows() && g.cols() == node->value.cols())
      << "grad shape " << g.ShapeString() << " vs value "
      << node->value.ShapeString() << " for op " << node->op;
  if (!node->has_grad) {
    node->grad = g;
    node->has_grad = true;
  } else {
    AddInPlace(&node->grad, g);
  }
}

void EnsureGrad(VarImpl* node) {
  if (!node->has_grad) {
    node->grad = Matrix(node->value.rows(), node->value.cols());
    node->has_grad = true;
  }
}

}  // namespace internal_ag

namespace {
thread_local int g_no_grad_depth = 0;
}  // namespace

NoGradGuard::NoGradGuard() { ++g_no_grad_depth; }
NoGradGuard::~NoGradGuard() { --g_no_grad_depth; }
bool NoGradGuard::Active() { return g_no_grad_depth > 0; }

Var::Var(Matrix value, bool requires_grad)
    : impl_(std::make_shared<internal_ag::VarImpl>()) {
  impl_->value = std::move(value);
  impl_->requires_grad = requires_grad;
}

const Matrix& Var::value() const {
  AWMOE_CHECK(defined()) << "value() on undefined Var";
  return impl_->value;
}

Matrix& Var::mutable_value() {
  AWMOE_CHECK(defined()) << "mutable_value() on undefined Var";
  return impl_->value;
}

bool Var::requires_grad() const {
  return defined() && impl_->requires_grad;
}

bool Var::has_grad() const { return defined() && impl_->has_grad; }

const Matrix& Var::grad() const {
  AWMOE_CHECK(has_grad()) << "grad() but no gradient accumulated";
  return impl_->grad;
}

void Var::ZeroGrad() {
  AWMOE_CHECK(defined());
  impl_->has_grad = false;
  impl_->grad = Matrix();
}

size_t Var::NumParents() const {
  return defined() ? impl_->parents.size() : 0;
}

const char* Var::OpName() const {
  return defined() ? impl_->op : "undefined";
}

void Var::Backward() {
  AWMOE_CHECK(defined()) << "Backward() on undefined Var";
  AWMOE_CHECK(impl_->value.rows() == 1 && impl_->value.cols() == 1)
      << "Backward() requires a scalar (1x1) output, got "
      << impl_->value.ShapeString();
  AWMOE_CHECK(impl_->requires_grad)
      << "Backward() on a node that does not require grad";

  // Iterative post-order DFS to get a reverse topological order.
  using internal_ag::VarImpl;
  std::vector<VarImpl*> order;
  std::unordered_set<VarImpl*> visited;
  struct Frame {
    VarImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      VarImpl* parent = frame.node->parents[frame.next_parent++].get();
      if (parent->requires_grad && !visited.count(parent)) {
        visited.insert(parent);
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Seed: d(self)/d(self) = 1.
  internal_ag::AccumulateGrad(impl_.get(), Matrix::Full(1, 1, 1.0f));

  // order is post-order (children before parents in DFS tree), so walking it
  // backwards visits each node after all its consumers.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    VarImpl* node = *it;
    if (node->backward_fn && node->has_grad) {
      node->backward_fn(*node);
    }
  }
}

Var MakeOpResult(
    Matrix value, const char* op, std::vector<Var> parents,
    std::function<void(const internal_ag::VarImpl&)> backward_fn) {
  auto impl = std::make_shared<internal_ag::VarImpl>();
  impl->value = std::move(value);
  impl->op = op;

  bool any_requires = false;
  if (!NoGradGuard::Active()) {
    for (const Var& p : parents) {
      if (p.requires_grad()) {
        any_requires = true;
        break;
      }
    }
  }
  if (any_requires) {
    impl->requires_grad = true;
    impl->parents.reserve(parents.size());
    for (Var& p : parents) impl->parents.push_back(p.impl());
    impl->backward_fn = std::move(backward_fn);
  }
  return Var(std::move(impl));
}

}  // namespace awmoe
