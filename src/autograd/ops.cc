#include "autograd/ops.h"

#include <cmath>
#include <limits>
#include <utility>

#include "mat/kernels.h"
#include "util/check.h"

namespace awmoe {
namespace ag {

using internal_ag::AccumulateGrad;
using internal_ag::EnsureGrad;
using internal_ag::VarImpl;
using Impl = std::shared_ptr<VarImpl>;

Var MatMul(const Var& a, const Var& b) {
  Matrix value = ::awmoe::MatMul(a.value(), b.value());
  Impl ai = a.impl(), bi = b.impl();
  return MakeOpResult(
      std::move(value), "matmul", {a, b}, [ai, bi](const VarImpl& self) {
        if (ai->requires_grad) {
          AccumulateGrad(ai.get(), MatMulTransB(self.grad, bi->value));
        }
        if (bi->requires_grad) {
          AccumulateGrad(bi.get(), MatMulTransA(ai->value, self.grad));
        }
      });
}

Var MatMulNT(const Var& a, const Var& b) {
  Matrix value = ::awmoe::MatMulTransB(a.value(), b.value());
  Impl ai = a.impl(), bi = b.impl();
  return MakeOpResult(
      std::move(value), "matmul_nt", {a, b}, [ai, bi](const VarImpl& self) {
        // C[i,j] = sum_p A[i,p] B[j,p]  =>  dA = G B, dB = G^T A.
        if (ai->requires_grad) {
          AccumulateGrad(ai.get(), ::awmoe::MatMul(self.grad, bi->value));
        }
        if (bi->requires_grad) {
          AccumulateGrad(bi.get(), MatMulTransA(self.grad, ai->value));
        }
      });
}

Var Add(const Var& a, const Var& b) {
  Matrix value = ::awmoe::Add(a.value(), b.value());
  Impl ai = a.impl(), bi = b.impl();
  return MakeOpResult(std::move(value), "add", {a, b},
                      [ai, bi](const VarImpl& self) {
                        AccumulateGrad(ai.get(), self.grad);
                        AccumulateGrad(bi.get(), self.grad);
                      });
}

Var Sub(const Var& a, const Var& b) {
  Matrix value = ::awmoe::Sub(a.value(), b.value());
  Impl ai = a.impl(), bi = b.impl();
  return MakeOpResult(std::move(value), "sub", {a, b},
                      [ai, bi](const VarImpl& self) {
                        AccumulateGrad(ai.get(), self.grad);
                        AccumulateGrad(bi.get(), ::awmoe::Neg(self.grad));
                      });
}

Var Mul(const Var& a, const Var& b) {
  Matrix value = ::awmoe::Mul(a.value(), b.value());
  Impl ai = a.impl(), bi = b.impl();
  return MakeOpResult(
      std::move(value), "mul", {a, b}, [ai, bi](const VarImpl& self) {
        if (ai->requires_grad) {
          AccumulateGrad(ai.get(), ::awmoe::Mul(self.grad, bi->value));
        }
        if (bi->requires_grad) {
          AccumulateGrad(bi.get(), ::awmoe::Mul(self.grad, ai->value));
        }
      });
}

Var AddBias(const Var& a, const Var& bias) {
  Matrix value = AddRowBroadcast(a.value(), bias.value());
  Impl ai = a.impl(), bi = bias.impl();
  return MakeOpResult(std::move(value), "add_bias", {a, bias},
                      [ai, bi](const VarImpl& self) {
                        AccumulateGrad(ai.get(), self.grad);
                        if (bi->requires_grad) {
                          AccumulateGrad(bi.get(), ColSum(self.grad));
                        }
                      });
}

Var Scale(const Var& a, float s) {
  Matrix value = MulScalar(a.value(), s);
  Impl ai = a.impl();
  return MakeOpResult(std::move(value), "scale", {a},
                      [ai, s](const VarImpl& self) {
                        AccumulateGrad(ai.get(), MulScalar(self.grad, s));
                      });
}

Var AddScalar(const Var& a, float s) {
  Matrix value = ::awmoe::AddScalar(a.value(), s);
  Impl ai = a.impl();
  return MakeOpResult(std::move(value), "add_scalar", {a},
                      [ai](const VarImpl& self) {
                        AccumulateGrad(ai.get(), self.grad);
                      });
}

Var Neg(const Var& a) { return Scale(a, -1.0f); }

Var Relu(const Var& a) {
  Matrix value = ::awmoe::Relu(a.value());
  Impl ai = a.impl();
  return MakeOpResult(
      std::move(value), "relu", {a}, [ai](const VarImpl& self) {
        AccumulateGrad(ai.get(), ReluBackward(self.grad, ai->value));
      });
}

Var Sigmoid(const Var& a) {
  Matrix value = ::awmoe::Sigmoid(a.value());
  Impl ai = a.impl();
  return MakeOpResult(
      std::move(value), "sigmoid", {a}, [ai](const VarImpl& self) {
        // dy/dx = y (1 - y), reading y back from self.value.
        Matrix one_minus = ::awmoe::AddScalar(::awmoe::Neg(self.value), 1.0f);
        Matrix dydx = ::awmoe::Mul(self.value, one_minus);
        AccumulateGrad(ai.get(), ::awmoe::Mul(self.grad, dydx));
      });
}

Var Tanh(const Var& a) {
  Matrix value = ::awmoe::Tanh(a.value());
  Impl ai = a.impl();
  return MakeOpResult(
      std::move(value), "tanh", {a}, [ai](const VarImpl& self) {
        Matrix dydx =
            ::awmoe::AddScalar(::awmoe::Neg(Square(self.value)), 1.0f);
        AccumulateGrad(ai.get(), ::awmoe::Mul(self.grad, dydx));
      });
}

Var Exp(const Var& a) {
  Matrix value = ::awmoe::Exp(a.value());
  Impl ai = a.impl();
  return MakeOpResult(std::move(value), "exp", {a},
                      [ai](const VarImpl& self) {
                        AccumulateGrad(ai.get(),
                                       ::awmoe::Mul(self.grad, self.value));
                      });
}

Var Log(const Var& a, float floor) {
  Matrix value = ::awmoe::Log(a.value(), floor);
  Impl ai = a.impl();
  return MakeOpResult(
      std::move(value), "log", {a}, [ai, floor](const VarImpl& self) {
        Matrix clipped =
            Clip(ai->value, floor, std::numeric_limits<float>::max());
        AccumulateGrad(ai.get(), Div(self.grad, clipped));
      });
}

Var ConcatCols(const std::vector<Var>& parts) {
  AWMOE_CHECK(!parts.empty()) << "ConcatCols: no parts";
  std::vector<const Matrix*> values;
  values.reserve(parts.size());
  for (const Var& p : parts) values.push_back(&p.value());
  Matrix value = ::awmoe::ConcatCols(values);

  std::vector<Impl> impls;
  impls.reserve(parts.size());
  for (const Var& p : parts) impls.push_back(p.impl());
  return MakeOpResult(std::move(value), "concat_cols", parts,
                      [impls](const VarImpl& self) {
                        int64_t offset = 0;
                        for (const Impl& impl : impls) {
                          int64_t width = impl->value.cols();
                          if (impl->requires_grad) {
                            AccumulateGrad(
                                impl.get(),
                                ::awmoe::SliceCols(self.grad, offset,
                                                   offset + width));
                          }
                          offset += width;
                        }
                      });
}

Var SliceCols(const Var& a, int64_t begin, int64_t end) {
  Matrix value = ::awmoe::SliceCols(a.value(), begin, end);
  Impl ai = a.impl();
  return MakeOpResult(
      std::move(value), "slice_cols", {a},
      [ai, begin, end](const VarImpl& self) {
        if (!ai->requires_grad) return;
        Matrix padded(ai->value.rows(), ai->value.cols());
        for (int64_t r = 0; r < self.grad.rows(); ++r) {
          const float* src = self.grad.row(r);
          float* dst = padded.row(r) + begin;
          for (int64_t c = 0; c < end - begin; ++c) dst[c] = src[c];
        }
        AccumulateGrad(ai.get(), padded);
      });
}

Var GatherRows(const Var& table, const std::vector<int64_t>& indices) {
  Matrix value = ::awmoe::GatherRows(table.value(), indices);
  Impl ti = table.impl();
  return MakeOpResult(std::move(value), "gather_rows", {table},
                      [ti, indices](const VarImpl& self) {
                        if (!ti->requires_grad) return;
                        EnsureGrad(ti.get());
                        ScatterAddRows(&ti->grad, indices, self.grad);
                      });
}

Var MulColBroadcast(const Var& a, const Var& w) {
  Matrix value = ::awmoe::MulColBroadcast(a.value(), w.value());
  Impl ai = a.impl(), wi = w.impl();
  return MakeOpResult(
      std::move(value), "mul_col_broadcast", {a, w},
      [ai, wi](const VarImpl& self) {
        if (ai->requires_grad) {
          AccumulateGrad(ai.get(),
                         ::awmoe::MulColBroadcast(self.grad, wi->value));
        }
        if (wi->requires_grad) {
          AccumulateGrad(wi.get(), ::awmoe::DotRows(self.grad, ai->value));
        }
      });
}

Var DotRows(const Var& a, const Var& b) {
  Matrix value = ::awmoe::DotRows(a.value(), b.value());
  Impl ai = a.impl(), bi = b.impl();
  return MakeOpResult(
      std::move(value), "dot_rows", {a, b}, [ai, bi](const VarImpl& self) {
        if (ai->requires_grad) {
          AccumulateGrad(ai.get(),
                         ::awmoe::MulColBroadcast(bi->value, self.grad));
        }
        if (bi->requires_grad) {
          AccumulateGrad(bi.get(),
                         ::awmoe::MulColBroadcast(ai->value, self.grad));
        }
      });
}

Var SumAll(const Var& a) {
  Matrix value = Matrix::Full(1, 1, static_cast<float>(::awmoe::SumAll(a.value())));
  Impl ai = a.impl();
  return MakeOpResult(
      std::move(value), "sum_all", {a}, [ai](const VarImpl& self) {
        AccumulateGrad(ai.get(),
                       Matrix::Full(ai->value.rows(), ai->value.cols(),
                                    self.grad(0, 0)));
      });
}

Var MeanAll(const Var& a) {
  AWMOE_CHECK(a.value().size() > 0) << "MeanAll on empty matrix";
  float inv = 1.0f / static_cast<float>(a.value().size());
  Matrix value =
      Matrix::Full(1, 1, static_cast<float>(::awmoe::MeanAll(a.value())));
  Impl ai = a.impl();
  return MakeOpResult(
      std::move(value), "mean_all", {a}, [ai, inv](const VarImpl& self) {
        AccumulateGrad(ai.get(),
                       Matrix::Full(ai->value.rows(), ai->value.cols(),
                                    self.grad(0, 0) * inv));
      });
}

Var SoftmaxRows(const Var& a) {
  Matrix value = ::awmoe::SoftmaxRows(a.value());
  Impl ai = a.impl();
  return MakeOpResult(
      std::move(value), "softmax_rows", {a}, [ai](const VarImpl& self) {
        // dx = y * (g - rowsum(g*y)).
        Matrix gy = ::awmoe::Mul(self.grad, self.value);
        Matrix s = ::awmoe::RowSum(gy);
        Matrix centered = ::awmoe::Sub(
            self.grad, ::awmoe::BroadcastCol(s, self.grad.cols()));
        AccumulateGrad(ai.get(), ::awmoe::Mul(self.value, centered));
      });
}

Var MaskedSoftmaxRows(const Var& a, const Matrix& mask) {
  Matrix value = ::awmoe::MaskedSoftmaxRows(a.value(), mask);
  Impl ai = a.impl();
  return MakeOpResult(
      std::move(value), "masked_softmax_rows", {a},
      [ai](const VarImpl& self) {
        // Same Jacobian as SoftmaxRows: masked columns carry y == 0, so
        // they contribute nothing to the row sum and receive dx == 0.
        Matrix gy = ::awmoe::Mul(self.grad, self.value);
        Matrix s = ::awmoe::RowSum(gy);
        Matrix centered = ::awmoe::Sub(
            self.grad, ::awmoe::BroadcastCol(s, self.grad.cols()));
        AccumulateGrad(ai.get(), ::awmoe::Mul(self.value, centered));
      });
}

Var LogSumExpRows(const Var& a) {
  Matrix value = ::awmoe::LogSumExpRows(a.value());
  Impl ai = a.impl();
  return MakeOpResult(
      std::move(value), "log_sum_exp_rows", {a}, [ai](const VarImpl& self) {
        Matrix soft = ::awmoe::SoftmaxRows(ai->value);
        Matrix spread = ::awmoe::BroadcastCol(self.grad, ai->value.cols());
        AccumulateGrad(ai.get(), ::awmoe::Mul(soft, spread));
      });
}

Var MulMask(const Var& a, const Matrix& mask) {
  Matrix value = ::awmoe::Mul(a.value(), mask);
  Impl ai = a.impl();
  return MakeOpResult(std::move(value), "mul_mask", {a},
                      [ai, mask](const VarImpl& self) {
                        AccumulateGrad(ai.get(),
                                       ::awmoe::Mul(self.grad, mask));
                      });
}

Var StopGradient(const Var& a) {
  return Var(a.value(), /*requires_grad=*/false);
}

Var BceWithLogitsLoss(const Var& logits, const Matrix& targets) {
  const Matrix& x = logits.value();
  AWMOE_CHECK(x.cols() == 1) << "BceWithLogitsLoss expects [m,1] logits, got "
                             << x.ShapeString();
  AWMOE_CHECK(x.SameShape(targets))
      << "BceWithLogitsLoss: logits " << x.ShapeString() << " vs targets "
      << targets.ShapeString();
  const int64_t m = x.rows();
  AWMOE_CHECK(m > 0) << "BceWithLogitsLoss on empty batch";

  // Stable form: max(x,0) - x*t + log(1 + exp(-|x|)).
  double total = 0.0;
  for (int64_t r = 0; r < m; ++r) {
    float xv = x(r, 0);
    float t = targets(r, 0);
    total += std::max(xv, 0.0f) - xv * t + std::log1p(std::exp(-std::abs(xv)));
  }
  Matrix value = Matrix::Full(1, 1, static_cast<float>(total / m));

  Impl li = logits.impl();
  return MakeOpResult(
      std::move(value), "bce_with_logits", {logits},
      [li, targets, m](const VarImpl& self) {
        // d/dx = (sigmoid(x) - t) / m.
        Matrix g = ::awmoe::Sigmoid(li->value);
        float scale = self.grad(0, 0) / static_cast<float>(m);
        float* pg = g.data();
        const float* pt = targets.data();
        for (int64_t i = 0; i < g.size(); ++i) {
          pg[i] = (pg[i] - pt[i]) * scale;
        }
        AccumulateGrad(li.get(), g);
      });
}

Var ListwiseSoftmaxCrossEntropy(const Var& logits, const Matrix& targets,
                                const std::vector<int64_t>& slate_starts) {
  const Matrix& x = logits.value();
  AWMOE_CHECK(x.cols() == 1)
      << "ListwiseSoftmaxCrossEntropy expects [m,1] logits, got "
      << x.ShapeString();
  AWMOE_CHECK(x.SameShape(targets))
      << "ListwiseSoftmaxCrossEntropy: logits " << x.ShapeString()
      << " vs targets " << targets.ShapeString();
  const int64_t m = x.rows();
  AWMOE_CHECK(m > 0) << "ListwiseSoftmaxCrossEntropy on empty batch";
  AWMOE_CHECK(!slate_starts.empty() && slate_starts[0] == 0)
      << "ListwiseSoftmaxCrossEntropy: slate_starts must begin at 0";
  for (size_t i = 1; i < slate_starts.size(); ++i) {
    AWMOE_CHECK(slate_starts[i] > slate_starts[i - 1] && slate_starts[i] < m)
        << "ListwiseSoftmaxCrossEntropy: bad slate start "
        << slate_starts[i];
  }

  const size_t num_slates = slate_starts.size();
  double total = 0.0;
  int64_t counted = 0;
  for (size_t s = 0; s < num_slates; ++s) {
    const int64_t begin = slate_starts[s];
    const int64_t end = s + 1 < num_slates ? slate_starts[s + 1] : m;
    float target_sum = 0.0f;
    for (int64_t r = begin; r < end; ++r) target_sum += targets(r, 0);
    if (target_sum <= 0.0f) continue;  // No positive: undefined, skip.
    float max_val = x(begin, 0);
    for (int64_t r = begin + 1; r < end; ++r) {
      max_val = std::max(max_val, x(r, 0));
    }
    double denom = 0.0;
    for (int64_t r = begin; r < end; ++r) {
      denom += std::exp(static_cast<double>(x(r, 0) - max_val));
    }
    const double log_denom = std::log(denom);
    for (int64_t r = begin; r < end; ++r) {
      const double y = targets(r, 0) / target_sum;
      if (y == 0.0) continue;
      total -= y * (static_cast<double>(x(r, 0) - max_val) - log_denom);
    }
    ++counted;
  }
  Matrix value = Matrix::Full(
      1, 1,
      counted > 0 ? static_cast<float>(total / counted) : 0.0f);

  Impl li = logits.impl();
  return MakeOpResult(
      std::move(value), "listwise_softmax_xent", {logits},
      [li, targets, slate_starts, m, counted](const VarImpl& self) {
        if (!li->requires_grad || counted == 0) return;
        // d/dx_j = (p_j - y_j) / counted per counted slate.
        const float scale = self.grad(0, 0) / static_cast<float>(counted);
        Matrix g(m, 1);
        const Matrix& x = li->value;
        const size_t num_slates = slate_starts.size();
        for (size_t s = 0; s < num_slates; ++s) {
          const int64_t begin = slate_starts[s];
          const int64_t end = s + 1 < num_slates ? slate_starts[s + 1] : m;
          float target_sum = 0.0f;
          for (int64_t r = begin; r < end; ++r) target_sum += targets(r, 0);
          if (target_sum <= 0.0f) continue;
          float max_val = x(begin, 0);
          for (int64_t r = begin + 1; r < end; ++r) {
            max_val = std::max(max_val, x(r, 0));
          }
          double denom = 0.0;
          for (int64_t r = begin; r < end; ++r) {
            denom += std::exp(static_cast<double>(x(r, 0) - max_val));
          }
          for (int64_t r = begin; r < end; ++r) {
            const double p =
                std::exp(static_cast<double>(x(r, 0) - max_val)) / denom;
            const double y = targets(r, 0) / target_sum;
            g(r, 0) = static_cast<float>(p - y) * scale;
          }
        }
        AccumulateGrad(li.get(), g);
      });
}

Var InfoNceLoss(const Var& anchor, const Var& positive,
                const std::vector<Var>& negatives) {
  AWMOE_CHECK(anchor.value().SameShape(positive.value()))
      << "InfoNceLoss: anchor " << anchor.value().ShapeString()
      << " vs positive " << positive.value().ShapeString();
  std::vector<Var> sims;
  sims.reserve(negatives.size() + 1);
  sims.push_back(DotRows(anchor, positive));
  for (const Var& neg : negatives) {
    AWMOE_CHECK(neg.value().SameShape(anchor.value()))
        << "InfoNceLoss: negative shape " << neg.value().ShapeString();
    sims.push_back(DotRows(anchor, neg));
  }
  // -log(exp(pos) / sum(exp(all))) = logsumexp(all) - pos, averaged.
  Var all = ConcatCols(sims);
  Var lse = LogSumExpRows(all);
  return MeanAll(Sub(lse, sims[0]));
}

}  // namespace ag
}  // namespace awmoe
