#ifndef AWMOE_AUTOGRAD_VARIABLE_H_
#define AWMOE_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "mat/matrix.h"

namespace awmoe {

namespace internal_ag {

/// Graph node behind a Var handle. Ops append parents and a backward
/// closure; Backward() walks the DAG in reverse topological order.
struct VarImpl {
  Matrix value;
  Matrix grad;  // Allocated lazily on first accumulation.
  bool requires_grad = false;
  bool has_grad = false;
  const char* op = "leaf";
  std::vector<std::shared_ptr<VarImpl>> parents;
  /// Reads `self.grad` (and possibly `self.value`) and accumulates into
  /// parent grads. Null for leaves.
  std::function<void(const VarImpl& self)> backward_fn;
};

/// Accumulates `g` into `node`'s gradient (no-op if the node does not
/// require grad).
void AccumulateGrad(VarImpl* node, const Matrix& g);

/// Ensures `node->grad` is allocated (zeros, value-shaped) so ops can
/// accumulate into it sparsely (embedding scatter-add).
void EnsureGrad(VarImpl* node);

}  // namespace internal_ag

/// Value-semantic handle to an autograd graph node. Copying a Var aliases
/// the same node (like a tensor handle), so passing Vars around is cheap.
///
/// Typical use:
///   Var w(Matrix(...), /*requires_grad=*/true);   // parameter leaf
///   Var y = ag::MatMul(x, w);
///   Var loss = ag::BceWithLogitsLoss(y, targets);
///   loss.Backward();
///   ... read w.grad(), step optimizer, w.ZeroGrad() ...
class Var {
 public:
  /// Undefined handle.
  Var() = default;

  /// Leaf variable wrapping `value`.
  explicit Var(Matrix value, bool requires_grad = false);

  Var(const Var&) = default;
  Var& operator=(const Var&) = default;
  Var(Var&&) = default;
  Var& operator=(Var&&) = default;

  bool defined() const { return impl_ != nullptr; }

  const Matrix& value() const;
  /// Mutable access for optimizers; must not be called on interior graph
  /// nodes while a backward pass is pending.
  Matrix& mutable_value();

  int64_t rows() const { return value().rows(); }
  int64_t cols() const { return value().cols(); }

  bool requires_grad() const;

  /// True once a gradient has been accumulated.
  bool has_grad() const;

  /// The accumulated gradient. CHECK-fails if no gradient is present.
  const Matrix& grad() const;

  /// Drops the accumulated gradient (shape is kept lazily).
  void ZeroGrad();

  /// Runs reverse-mode differentiation from this node, which must hold a
  /// 1x1 scalar; seeds d(self)/d(self) = 1.
  void Backward();

  /// Number of graph parents (0 for leaves). Exposed for tests.
  size_t NumParents() const;

  /// Name of the op that produced this node ("leaf" for leaves).
  const char* OpName() const;

  /// Internal node access for op implementations.
  const std::shared_ptr<internal_ag::VarImpl>& impl() const { return impl_; }

 private:
  explicit Var(std::shared_ptr<internal_ag::VarImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<internal_ag::VarImpl> impl_;

  friend Var MakeOpResult(Matrix value, const char* op,
                          std::vector<Var> parents,
                          std::function<void(const internal_ag::VarImpl&)>
                              backward_fn);
};

/// Builds an op-result Var: if graph recording is enabled and any parent
/// requires grad, the node is wired into the graph; otherwise it is a
/// detached leaf (cheap inference path).
Var MakeOpResult(Matrix value, const char* op, std::vector<Var> parents,
                 std::function<void(const internal_ag::VarImpl&)> backward_fn);

/// RAII guard that disables graph recording in its scope (like
/// torch::NoGradGuard). Nestable.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  /// True when recording is currently suppressed.
  static bool Active();
};

}  // namespace awmoe

#endif  // AWMOE_AUTOGRAD_VARIABLE_H_
