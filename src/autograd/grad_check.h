#ifndef AWMOE_AUTOGRAD_GRAD_CHECK_H_
#define AWMOE_AUTOGRAD_GRAD_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace awmoe {

/// Configuration for numerical gradient verification.
struct GradCheckOptions {
  /// Central-difference step.
  float epsilon = 1e-2f;
  /// Accept if |analytic - numeric| <= abs_tol + rel_tol * |numeric|.
  float abs_tol = 2e-3f;
  float rel_tol = 5e-2f;
};

/// Result of a gradient check; `ok` with the worst offending element
/// described in `message` on failure.
struct GradCheckResult {
  bool ok = true;
  std::string message;
  float max_abs_error = 0.0f;
};

/// Verifies analytic gradients against central differences.
///
/// `fn` must build a scalar Var from `inputs` (re-invocable; it is called
/// O(total elements) times). All inputs must have requires_grad = true.
GradCheckResult CheckGradients(
    const std::function<Var(const std::vector<Var>&)>& fn,
    std::vector<Var> inputs, const GradCheckOptions& options = {});

}  // namespace awmoe

#endif  // AWMOE_AUTOGRAD_GRAD_CHECK_H_
