#ifndef AWMOE_AUTOGRAD_OPS_H_
#define AWMOE_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "mat/matrix.h"

namespace awmoe {
namespace ag {

// Differentiable operations over Var. Shapes follow the mat/kernels.h
// conventions; every op checks shapes at call time. Ops named like their
// kernel counterparts live in namespace ag to avoid ambiguity.

/// C = A[m,k] * B[k,n].
Var MatMul(const Var& a, const Var& b);

/// C = A[m,k] * B[n,k]^T: attention score matrix Q K^T without forming
/// the transpose.
Var MatMulNT(const Var& a, const Var& b);

/// Elementwise a + b (same shape).
Var Add(const Var& a, const Var& b);

/// Elementwise a - b (same shape).
Var Sub(const Var& a, const Var& b);

/// Elementwise a * b (same shape).
Var Mul(const Var& a, const Var& b);

/// A[m,n] + bias[1,n] broadcast over rows.
Var AddBias(const Var& a, const Var& bias);

/// s * a.
Var Scale(const Var& a, float s);

/// a + s.
Var AddScalar(const Var& a, float s);

/// -a.
Var Neg(const Var& a);

Var Relu(const Var& a);
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Exp(const Var& a);
/// log(max(a, floor)).
Var Log(const Var& a, float floor = 1e-12f);

/// Horizontal concatenation of parts (equal row counts).
Var ConcatCols(const std::vector<Var>& parts);

/// Columns [begin, end).
Var SliceCols(const Var& a, int64_t begin, int64_t end);

/// Gathers rows of `table` (e.g. an embedding table) at `indices`;
/// gradient scatter-adds back into the table.
Var GatherRows(const Var& table, const std::vector<int64_t>& indices);

/// A[m,n] * w[m,1] broadcast: scales row i by w(i,0). This is the
/// attention-weighted-sum building block (Eq. 3 / Eq. 8 of the paper).
Var MulColBroadcast(const Var& a, const Var& w);

/// Rowwise dot product of equally shaped a, b: [m,1]. Used as the
/// similarity f(.) in the InfoNCE loss (Eq. 10).
Var DotRows(const Var& a, const Var& b);

/// Sum of all elements: [1,1].
Var SumAll(const Var& a);

/// Mean of all elements: [1,1].
Var MeanAll(const Var& a);

/// Row-wise softmax.
Var SoftmaxRows(const Var& a);

/// Row-wise softmax over the columns where mask(r,c) != 0 (constant,
/// non-differentiated); masked columns are exact 0.0f in both the value
/// and the gradient. With a block-diagonal mask this is slate-local
/// attention: each row's included block matches a per-block SoftmaxRows
/// bitwise (see mat/kernels.h MaskedSoftmaxRows).
Var MaskedSoftmaxRows(const Var& a, const Matrix& mask);

/// Row-wise log-sum-exp: [m,1].
Var LogSumExpRows(const Var& a);

/// Elementwise multiply by a constant (non-differentiated) mask.
Var MulMask(const Var& a, const Matrix& mask);

/// Detaches `a` from the graph (identity value, no gradient flow).
Var StopGradient(const Var& a);

/// Mean binary cross-entropy over logits[m,1] against targets[m,1] in
/// {0,1}; numerically stable fused form. Returns a scalar.
Var BceWithLogitsLoss(const Var& logits, const Matrix& targets);

/// ListNet-style listwise softmax cross-entropy over logits[m,1].
/// `slate_starts` partitions the rows into contiguous slates
/// (slate_starts[0] == 0, ascending; slate i spans
/// [slate_starts[i], slate_starts[i+1]) with the last ending at m).
/// Per slate with at least one positive target: y = targets / sum(targets),
/// p = softmax(slate logits), L = -sum(y * log p). Slates with no positive
/// are skipped (no gradient). Returns the mean over counted slates as a
/// scalar (0 when no slate has a positive).
Var ListwiseSoftmaxCrossEntropy(const Var& logits, const Matrix& targets,
                                const std::vector<int64_t>& slate_starts);

/// InfoNCE contrastive loss (Eq. 10): anchor/positive are [B,D] user
/// representations; negatives[r] is the r-th [B,D] matrix of in-batch
/// negative representations. Similarity is the dot product; returns the
/// batch-mean scalar loss.
Var InfoNceLoss(const Var& anchor, const Var& positive,
                const std::vector<Var>& negatives);

}  // namespace ag
}  // namespace awmoe

#endif  // AWMOE_AUTOGRAD_OPS_H_
