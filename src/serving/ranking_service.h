#ifndef AWMOE_SERVING_RANKING_SERVICE_H_
#define AWMOE_SERVING_RANKING_SERVICE_H_

#include <vector>

#include "data/example.h"
#include "serving/serving_stats.h"

namespace awmoe {

// Forward declarations keep this header's rebuild fan-out small: callers
// only pass pointers, so pulling in core/aw_moe.h / data/batcher.h
// wholesale (as the old header did) is unnecessary.
class AwMoeRanker;
class Ranker;
class Standardizer;

/// Legacy single-model, single-session serving path, kept as the
/// reference implementation the ServingEngine regression tests compare
/// against bitwise. New code should use ServingEngine (serving_engine.h),
/// which expresses the same §III-F gate optimisation behind an explicit
/// request/response API with micro-batching and multi-model routing.
///
/// For AW-MoE in search mode it implements the §III-F optimisation — the
/// gate network reads only user/query features, so it is evaluated once
/// per session and reused for every target item (>10x gate-path saving
/// at JD scale).
class RankingService {
 public:
  /// `model`, `standardizer` are not owned. `share_gate` enables the
  /// §III-F per-session gate caching (AW-MoE in search mode only; silently
  /// falls back to per-item evaluation otherwise).
  RankingService(Ranker* model, const DatasetMeta& meta,
                 const Standardizer* standardizer, bool share_gate);

  /// Scores one session's impressions (all for the same user and query).
  std::vector<double> RankSession(
      const std::vector<const Example*>& session);

  const ServingStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  bool gate_sharing_active() const { return share_gate_active_; }

 private:
  Ranker* model_;
  AwMoeRanker* aw_moe_;  // Non-null when model is an AwMoeRanker.
  DatasetMeta meta_;
  const Standardizer* standardizer_;
  bool share_gate_active_;
  ServingStats stats_;
};

}  // namespace awmoe

#endif  // AWMOE_SERVING_RANKING_SERVICE_H_
