#ifndef AWMOE_SERVING_RANKING_SERVICE_H_
#define AWMOE_SERVING_RANKING_SERVICE_H_

#include <cstdint>
#include <vector>

#include "core/aw_moe.h"
#include "data/batcher.h"
#include "data/example.h"
#include "models/ranker.h"

namespace awmoe {

/// Groups a flat labelled split into per-session impression lists (order
/// preserved within a session).
std::vector<std::vector<const Example*>> GroupBySession(
    const std::vector<Example>& examples);

/// Cumulative serving statistics.
struct ServiceStats {
  int64_t sessions = 0;
  int64_t items = 0;
  double total_ms = 0.0;

  double MeanSessionLatencyMs() const {
    return sessions > 0 ? total_ms / static_cast<double>(sessions) : 0.0;
  }
};

/// The online ranking component of Fig. 6: receives a session's retrieved
/// items plus user context and returns ranking scores. For AW-MoE in
/// search mode it implements the §III-F optimisation — the gate network
/// reads only user/query features, so it is evaluated once per session and
/// reused for every target item (>10x gate-path saving at JD scale).
class RankingService {
 public:
  /// `model`, `standardizer` are not owned. `share_gate` enables the
  /// §III-F per-session gate caching (AW-MoE in search mode only; silently
  /// falls back to per-item evaluation otherwise).
  RankingService(Ranker* model, const DatasetMeta& meta,
                 const Standardizer* standardizer, bool share_gate);

  /// Scores one session's impressions (all for the same user and query).
  std::vector<double> RankSession(
      const std::vector<const Example*>& session);

  const ServiceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ServiceStats{}; }

  bool gate_sharing_active() const { return share_gate_active_; }

 private:
  Ranker* model_;
  AwMoeRanker* aw_moe_;  // Non-null when model is an AwMoeRanker.
  DatasetMeta meta_;
  const Standardizer* standardizer_;
  bool share_gate_active_;
  ServiceStats stats_;
};

/// Outcome statistics of one A/B arm (§IV-I). UCTR/UCVR are the fractions
/// of simulated user sessions with at least one click / one order.
struct AbArmResult {
  double uctr = 0.0;
  double ucvr = 0.0;
  std::vector<double> session_clicked;  // 0/1 per session.
  std::vector<double> session_ordered;  // 0/1 per session.
};

/// Result of a paired A/B comparison (same sessions replayed through both
/// arms; paired t-test on the per-session outcomes).
struct AbTestResult {
  AbArmResult control;
  AbArmResult treatment;
  double uctr_lift_percent = 0.0;
  double ucvr_lift_percent = 0.0;
  double uctr_p_value = 1.0;
  double ucvr_p_value = 1.0;
};

/// Replays `sessions` through control and treatment services with a
/// position-biased user examination model (cascade with geometric
/// attention decay): examined relevant items click with high probability,
/// clicks on relevant items convert. Deterministic given `seed`.
AbTestResult RunAbTest(RankingService* control, RankingService* treatment,
                       const std::vector<std::vector<const Example*>>& sessions,
                       uint64_t seed);

}  // namespace awmoe

#endif  // AWMOE_SERVING_RANKING_SERVICE_H_
