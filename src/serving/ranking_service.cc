#include "serving/ranking_service.h"

#include "core/aw_moe.h"
#include "data/batcher.h"
#include "mat/kernels.h"
#include "util/stopwatch.h"

namespace awmoe {

RankingService::RankingService(Ranker* model, const DatasetMeta& meta,
                               const Standardizer* standardizer,
                               bool share_gate)
    : model_(model),
      aw_moe_(dynamic_cast<AwMoeRanker*>(model)),
      meta_(meta),
      standardizer_(standardizer),
      share_gate_active_(share_gate && aw_moe_ != nullptr &&
                         !meta.recommendation_mode) {}

std::vector<double> RankingService::RankSession(
    const std::vector<const Example*>& session) {
  AWMOE_CHECK(!session.empty()) << "RankSession: empty session";
  NoGradGuard guard;
  Stopwatch watch;

  Batch batch = CollateBatch(session, meta_, standardizer_);
  Var logits;
  if (share_gate_active_) {
    // §III-F: the gate depends only on (behaviour sequence, query), which
    // is constant within a session — evaluate it once on a 1-row batch.
    Batch gate_probe = CollateBatch({session[0]}, meta_, standardizer_);
    Var gate = aw_moe_->GateRepresentation(gate_probe);
    logits = aw_moe_->ForwardLogitsWithGate(batch, gate);
  } else {
    logits = model_->ForwardLogits(batch);
  }
  Matrix probs = Sigmoid(logits.value());

  stats_.RecordRequest(static_cast<int64_t>(session.size()),
                       watch.ElapsedMillis());

  std::vector<double> scores(static_cast<size_t>(probs.rows()));
  for (int64_t i = 0; i < probs.rows(); ++i) {
    scores[static_cast<size_t>(i)] = probs(i, 0);
  }
  return scores;
}

}  // namespace awmoe
