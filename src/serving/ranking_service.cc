#include "serving/ranking_service.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "eval/metrics.h"
#include "mat/kernels.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace awmoe {

std::vector<std::vector<const Example*>> GroupBySession(
    const std::vector<Example>& examples) {
  std::map<int64_t, std::vector<const Example*>> by_id;
  for (const Example& ex : examples) {
    by_id[ex.session_id].push_back(&ex);
  }
  std::vector<std::vector<const Example*>> sessions;
  sessions.reserve(by_id.size());
  for (auto& [id, items] : by_id) sessions.push_back(std::move(items));
  return sessions;
}

RankingService::RankingService(Ranker* model, const DatasetMeta& meta,
                               const Standardizer* standardizer,
                               bool share_gate)
    : model_(model),
      aw_moe_(dynamic_cast<AwMoeRanker*>(model)),
      meta_(meta),
      standardizer_(standardizer),
      share_gate_active_(share_gate && aw_moe_ != nullptr &&
                         !meta.recommendation_mode) {}

std::vector<double> RankingService::RankSession(
    const std::vector<const Example*>& session) {
  AWMOE_CHECK(!session.empty()) << "RankSession: empty session";
  NoGradGuard guard;
  Stopwatch watch;

  Batch batch = CollateBatch(session, meta_, standardizer_);
  Var logits;
  if (share_gate_active_) {
    // §III-F: the gate depends only on (behaviour sequence, query), which
    // is constant within a session — evaluate it once on a 1-row batch.
    Batch gate_probe = CollateBatch({session[0]}, meta_, standardizer_);
    Var gate = aw_moe_->GateRepresentation(gate_probe);
    logits = aw_moe_->ForwardLogitsWithGate(batch, gate);
  } else {
    logits = model_->ForwardLogits(batch);
  }
  Matrix probs = Sigmoid(logits.value());

  stats_.total_ms += watch.ElapsedMillis();
  ++stats_.sessions;
  stats_.items += static_cast<int64_t>(session.size());

  std::vector<double> scores(static_cast<size_t>(probs.rows()));
  for (int64_t i = 0; i < probs.rows(); ++i) {
    scores[static_cast<size_t>(i)] = probs(i, 0);
  }
  return scores;
}

namespace {

/// Cascade user model: attention decays geometrically with rank; relevant
/// (label=1) items click with 0.75, irrelevant with 0.08; clicked relevant
/// items convert with 0.6.
struct UserModel {
  double attention_decay = 0.85;
  double p_click_relevant = 0.75;
  double p_click_irrelevant = 0.08;
  double p_order_given_click = 0.6;
};

AbArmResult RunArm(RankingService* service,
                   const std::vector<std::vector<const Example*>>& sessions,
                   uint64_t seed) {
  UserModel user;
  Rng rng(seed);
  AbArmResult result;
  for (const auto& session : sessions) {
    std::vector<double> scores = service->RankSession(session);
    std::vector<size_t> order(scores.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return scores[a] > scores[b];
    });

    bool clicked = false, ordered = false;
    double attention = 1.0;
    for (size_t rank = 0; rank < order.size(); ++rank) {
      if (rng.Uniform() < attention) {
        const Example& ex = *session[order[rank]];
        double p_click = ex.label > 0.5f ? user.p_click_relevant
                                         : user.p_click_irrelevant;
        if (rng.Bernoulli(p_click)) {
          clicked = true;
          if (ex.label > 0.5f &&
              rng.Bernoulli(user.p_order_given_click)) {
            ordered = true;
          }
        }
      }
      attention *= user.attention_decay;
    }
    result.session_clicked.push_back(clicked ? 1.0 : 0.0);
    result.session_ordered.push_back(ordered ? 1.0 : 0.0);
  }
  auto mean = [](const std::vector<double>& v) {
    return v.empty() ? 0.0
                     : std::accumulate(v.begin(), v.end(), 0.0) /
                           static_cast<double>(v.size());
  };
  result.uctr = mean(result.session_clicked);
  result.ucvr = mean(result.session_ordered);
  return result;
}

}  // namespace

AbTestResult RunAbTest(RankingService* control, RankingService* treatment,
                       const std::vector<std::vector<const Example*>>& sessions,
                       uint64_t seed) {
  AbTestResult result;
  // Identical user randomness in both arms: differences come only from
  // the ranking order, which keeps the comparison paired.
  result.control = RunArm(control, sessions, seed);
  result.treatment = RunArm(treatment, sessions, seed);
  if (result.control.uctr > 0.0) {
    result.uctr_lift_percent =
        100.0 * (result.treatment.uctr - result.control.uctr) /
        result.control.uctr;
  }
  if (result.control.ucvr > 0.0) {
    result.ucvr_lift_percent =
        100.0 * (result.treatment.ucvr - result.control.ucvr) /
        result.control.ucvr;
  }
  if (result.control.session_clicked.size() >= 2) {
    result.uctr_p_value = PairedTTestPValue(result.treatment.session_clicked,
                                            result.control.session_clicked);
    result.ucvr_p_value = PairedTTestPValue(result.treatment.session_ordered,
                                            result.control.session_ordered);
  }
  return result;
}

}  // namespace awmoe
