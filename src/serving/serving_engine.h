#ifndef AWMOE_SERVING_SERVING_ENGINE_H_
#define AWMOE_SERVING_SERVING_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serving/model_registry.h"
#include "serving/request.h"
#include "serving/serving_stats.h"

namespace awmoe {

class AwMoeRanker;

struct ServingEngineOptions {
  /// Micro-batching cap: candidates from multiple sessions are fused
  /// into one forward pass until adding the next whole session would
  /// exceed this many items (a session is never split, so one oversized
  /// session still forms a batch on its own).
  int64_t max_batch_items = 256;

  /// Lanes micro-batches are dispatched across: n-1 worker threads plus
  /// the calling thread, which work-shares instead of blocking. 0 or 1
  /// runs everything in the caller's thread. Forwards on one model are
  /// serialised by a per-model lock (the autograd-free forward still
  /// shares model state), so threads pay off across *different* models
  /// — e.g. both arms of an A/B test scoring concurrently.
  int num_threads = 0;

  /// Enables the §III-F per-session gate path for models that support
  /// it (gate evaluated once per session, reused for every candidate).
  bool share_gate = true;

  /// Per-model LRU capacity of cached session gate rows; a repeat
  /// request for a cached session skips the gate network entirely
  /// (generalising §III-F across requests, e.g. result pagination).
  /// Entries are validated against a hash of the gate-relevant context
  /// (behaviour sequence, query, user), so a session whose behaviour
  /// sequence grew between requests is re-probed, never served stale.
  /// 0 disables caching (the gate is still shared within a request).
  int64_t gate_cache_capacity = 4096;
};

/// The serving platform of Fig. 6: accepts RankRequests, routes each to
/// a named model in the ModelRegistry, fuses candidates from multiple
/// sessions into micro-batches, runs the §III-F shared-gate fast path
/// behind the API (instead of a constructor flag), and records exact
/// latency percentiles. Scores are bitwise-identical to scoring each
/// session alone: collation pads to the dataset's fixed sequence length
/// and every kernel is row-wise, so batch composition cannot leak
/// between rows.
class ServingEngine {
 public:
  /// `registry` is not owned and must outlive the engine.
  explicit ServingEngine(ModelRegistry* registry,
                         ServingEngineOptions options = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Scores one request (convenience wrapper over RankBatch).
  RankResponse Rank(const RankRequest& request);

  /// Scores a set of requests, micro-batching across sessions per model
  /// and dispatching micro-batches over the worker pool. Responses are
  /// returned in request order. Request latency is measured from call
  /// entry to that request's micro-batch completing, so queueing behind
  /// other micro-batches shows up in the percentiles.
  std::vector<RankResponse> RankBatch(
      const std::vector<RankRequest>& requests);

  /// True when requests routed at `model` (empty = default) take the
  /// §III-F shared-gate path.
  bool GateSharingActive(const std::string& model = std::string()) const;

  const ServingStats& stats() const { return stats_; }
  ServingStatsSnapshot Stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  const ServingEngineOptions& options() const { return options_; }
  const ModelRegistry& registry() const { return *registry_; }

 private:
  /// Per-model serving state: the forward lock and the session-gate LRU.
  struct ModelState {
    std::string name;
    Ranker* model = nullptr;
    AwMoeRanker* aw_moe = nullptr;  // Non-null when model is an AwMoeRanker.
    bool gate_shareable = false;    // §III-F path available.

    /// Serialises forwards and guards the gate cache.
    std::mutex mu;
    /// One cached session gate: the row plus a hash of the inputs it
    /// was computed from, so staleness is detectable.
    struct GateCacheEntry {
      int64_t session_id = 0;
      uint64_t context_hash = 0;
      std::vector<float> row;
    };
    /// LRU of session gates (front = most recent).
    std::list<GateCacheEntry> gate_lru;
    std::unordered_map<int64_t, std::list<GateCacheEntry>::iterator>
        gate_index;
  };

  /// One fused forward pass: whole sessions, one model.
  struct MicroBatch {
    ModelState* state = nullptr;
    std::vector<size_t> request_indices;
    int64_t total_items = 0;
  };

  ModelState* StateFor(const std::string& resolved_name) const;
  void ExecuteMicroBatch(const MicroBatch& micro,
                         const std::vector<RankRequest>& requests,
                         const Stopwatch& submit_watch,
                         std::vector<RankResponse>* responses);

  /// Blocks until every job has run; uses the worker threads when
  /// configured, the caller's thread otherwise.
  void RunJobs(std::vector<std::function<void()>> jobs);

  ModelRegistry* registry_;
  ServingEngineOptions options_;
  ServingStats stats_;

  // Lazily built per-model state (mutable: looked up from const
  // accessors like GateSharingActive).
  mutable std::mutex states_mu_;
  mutable std::unordered_map<std::string, std::unique_ptr<ModelState>>
      states_;

  // Worker pool (created only when num_threads > 1).
  std::vector<std::thread> workers_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::vector<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace awmoe

#endif  // AWMOE_SERVING_SERVING_ENGINE_H_
