#ifndef AWMOE_SERVING_SERVING_ENGINE_H_
#define AWMOE_SERVING_SERVING_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serving/async_queue.h"
#include "serving/model_pool.h"
#include "serving/request.h"
#include "serving/rollout.h"
#include "serving/serving_stats.h"

namespace awmoe {

struct ServingEngineOptions {
  /// Micro-batching cap: candidates from multiple sessions are fused
  /// into one forward pass until adding the next whole session would
  /// exceed this many items (a session is never split, so one oversized
  /// session still forms a batch on its own).
  int64_t max_batch_items = 256;

  /// Lanes micro-batches are dispatched across: n-1 worker threads plus
  /// the calling thread, which work-shares instead of blocking. 0 or 1
  /// runs everything in the caller's thread. A micro-batch runs on one
  /// replica lane of its model's snapshot, so with a replicated pool
  /// threads pay off even on a single hot model (N forwards on N
  /// distinct ranker clones); on a single-replica pool they pay off
  /// across *different* models, as before.
  int num_threads = 0;

  /// Enables the §III-F per-session gate path for models that support
  /// it (gate evaluated once per session, reused for every candidate).
  bool share_gate = true;

  /// Per-snapshot LRU capacity of cached session gate rows; a repeat
  /// request for a cached session skips the gate network entirely
  /// (generalising §III-F across requests, e.g. result pagination).
  /// Entries are validated against a hash of the gate-relevant context
  /// (behaviour sequence, query, user), so a session whose behaviour
  /// sequence grew between requests is re-probed, never served stale.
  /// The cache lives in the model snapshot, so a published weight
  /// update starts cold by construction. 0 disables caching (the gate
  /// is still shared within a request).
  int64_t gate_cache_capacity = 4096;

  // --- Two-level result/feature caching (snapshot-scoped). ---

  /// Per-snapshot LRU capacity of the LEVEL-1 session score cache: an
  /// exact repeat request — same session, same candidate set (order-
  /// insensitive), unchanged behaviour history — is served straight
  /// from cached scores without collating a batch or leasing a replica
  /// lane (`RankResponse::replica` is -1). Invalidated per session the
  /// moment the session's history hash changes, and retired wholesale
  /// with its snapshot on hot swap. 0 disables.
  int64_t score_cache_capacity = 4096;

  /// Enables the LEVEL-2 session feature store for models that declare
  /// SupportsSessionEncodingReuse: the candidate-independent behaviour-
  /// sequence encoding (EncodeSessionInto) is computed once per session
  /// and the forward runs only the candidate-dependent tail
  /// (ScoreWithSessionInto) — bitwise-identical to the fused path.
  bool share_session_encoding = true;

  /// Per-snapshot LRU capacity of the level-2 feature store (cached
  /// EncodeSessionInto rows, validated under the same GateContextHash
  /// stamp as gate rows). 0 disables cross-request reuse; the encoding
  /// is still computed once per session within a request.
  int64_t encoding_cache_capacity = 4096;

  // --- Async front (Submit) knobs. ---

  /// Candidate cap that flushes the async micro-batch queue: once a
  /// model's queued requests total this many candidates, they are
  /// coalesced into one forward pass. 0 inherits `max_batch_items`, so
  /// the async and synchronous paths batch to the same size by default.
  int64_t max_batch_candidates = 0;

  /// Time bound of the async queue: a queued request is flushed at most
  /// this long after it was submitted even if the candidate cap was not
  /// reached. This is the latency a lone request trades for the chance
  /// to be coalesced with concurrent traffic.
  double max_queue_delay_ms = 2.0;

  /// Backpressure: when this many requests are already queued (not yet
  /// flushed), further Submits fail immediately with
  /// kResourceExhausted instead of queueing. 0 = unbounded.
  int64_t max_pending_requests = 0;

  /// Flusher threads of the async front. One lane caps a hot model at
  /// one in-flight micro-batch; with N lanes (and N pool replicas), N
  /// micro-batches flush concurrently onto N distinct replica lanes.
  /// 0 = one lane per pool replica.
  int async_flush_lanes = 0;
};

/// The serving platform of Fig. 6: accepts RankRequests, routes each to
/// a named model in the ModelPool, fuses candidates from multiple
/// sessions into micro-batches, runs the §III-F shared-gate fast path
/// behind the API (instead of a constructor flag), and records exact
/// latency percentiles. Every forward runs under a snapshot+replica
/// lease: the engine pins the model version it started with (hot swaps
/// via `ModelPool::UpdateModel` never tear a response) and concurrent
/// forwards for one model spread across its replica lanes. Scores are
/// bitwise-identical to scoring each session alone on a single-replica
/// pool: collation pads to the dataset's fixed sequence length, every
/// kernel is row-wise, and replicas are exact weight clones, so neither
/// batch composition nor lane assignment can change a row's result.
class ServingEngine {
 public:
  /// `pool` is not owned and must outlive the engine.
  explicit ServingEngine(ModelPool* pool, ServingEngineOptions options = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Scores one request (convenience wrapper over RankBatch).
  RankResponse Rank(const RankRequest& request);

  /// Scores a set of requests, micro-batching across sessions per model
  /// and dispatching micro-batches over the worker pool. Responses are
  /// returned in request order. Request latency is measured from call
  /// entry to that request's micro-batch completing, so queueing behind
  /// other micro-batches shows up in the percentiles. A request whose
  /// candidate count exceeds its route model's max slate length (slate-
  /// scoring models only) is rejected at admission: its response
  /// carries kInvalidArgument and no scores, and the rest of the batch
  /// is served normally.
  std::vector<RankResponse> RankBatch(
      const std::vector<RankRequest>& requests);

  /// Non-blocking front: enqueues the request into a per-model,
  /// time-bounded micro-batch queue and returns immediately. Background
  /// flusher lanes coalesce queued requests — including requests from
  /// different sessions submitted by different threads — into one
  /// forward pass once `max_batch_candidates` accumulate or the oldest
  /// request has waited `max_queue_delay_ms`, then resolve each
  /// caller's future with its own slice of the scores. Scores are
  /// bitwise-identical to the synchronous path. The future ALWAYS
  /// becomes ready: rejected requests (queue full, empty candidate
  /// list, slate longer than a slate-scoring model's max slate length,
  /// stopped engine) resolve immediately with a non-OK
  /// `RankResponse::status` and no scores.
  ///
  /// The candidate `Example`s must stay alive until the future
  /// resolves; the `RankRequest` itself is moved into the queue.
  std::future<RankResponse> Submit(RankRequest request);

  /// Stops the async front: no further Submits are accepted. With
  /// drain=true (the default, also what the destructor does) requests
  /// still queued are scored and their futures resolve normally; with
  /// drain=false they resolve immediately with kUnavailable. Blocks
  /// until the flusher lanes have exited; never deadlocks on in-flight
  /// futures and never leaves a promise unresolved. Idempotent, and a
  /// no-op when Submit was never called. Synchronous Rank/RankBatch
  /// remain usable after Stop.
  void Stop(bool drain = true);

  /// True when requests routed at `model` (empty = default) take the
  /// §III-F shared-gate path under the model's CURRENT stable snapshot.
  bool GateSharingActive(const std::string& model = std::string()) const;

  /// The engine's staged-rollout traffic splitter. Both serving paths
  /// (RankBatch and Submit) consult it per request: sessions bucketed
  /// onto the candidate arm are scored by the pool's staged candidate
  /// snapshot, everyone else by stable. With no split configured (the
  /// default) every request serves stable at the cost of one relaxed
  /// atomic load. Ramps are orchestrated by a RolloutController wired
  /// to this router (see serving/rollout.h).
  TrafficRouter* router() { return &router_; }
  const TrafficRouter& router() const { return router_; }

  const ServingStats& stats() const { return stats_; }
  /// Mutable stats access for out-of-band recorders — e.g. the retrain
  /// driver's shadow-scoring loop attributing drift samples to the arm
  /// versions it just scored (train/retrain_driver.h).
  ServingStats& stats() { return stats_; }
  /// Counter snapshot; `model_swaps` is merged in from the pool.
  ServingStatsSnapshot Stats() const;
  void ResetStats() { stats_.Reset(); }

  /// Requests sitting in the async Submit queue right now (0 when the
  /// async front was never started). This is the live load signal the
  /// fleet's admission controller (serving/shard.h) polls per decision:
  /// pending x mean service time / flush lanes estimates the queue
  /// delay a new Submit would inherit.
  int64_t pending_async_requests() const;

  const ServingEngineOptions& options() const { return options_; }
  const ModelPool& pool() const { return *pool_; }

 private:
  /// One fused forward pass: whole sessions, one model, one rollout arm.
  struct MicroBatch {
    std::string model;  // Resolved pool name.
    /// Arm the router assigned: every request in a micro-batch shares
    /// it, so the whole forward runs on one snapshot.
    RolloutArm arm = RolloutArm::kStable;
    std::vector<size_t> request_indices;
    int64_t total_items = 0;
  };

  /// The arm a request is served by: its ArmPolicy override, or the
  /// router's sticky session bucket.
  RolloutArm RouteArm(const std::string& resolved,
                      const RankRequest& request) const;

  /// Scores one micro-batch under a snapshot+replica lease and fills
  /// the matching responses. `queue_delays_ms`, when non-null, is
  /// indexed like `requests` and holds the time each request spent in
  /// the async queue; it is added to the reported latency and recorded
  /// as the queue-delay metric.
  void ExecuteMicroBatch(const MicroBatch& micro,
                         const std::vector<RankRequest>& requests,
                         const std::vector<double>* queue_delays_ms,
                         const Stopwatch& service_watch,
                         std::vector<RankResponse>* responses);

  /// Flush callback of the async queue: scores one coalesced batch
  /// (all grouped under `route_key` = one resolved model + one rollout
  /// arm) in one forward pass and resolves every promise. Runs
  /// concurrently on several flusher lanes, each landing on its own
  /// replica.
  void FlushAsync(const std::string& route_key,
                  std::vector<AsyncBatchQueue::Pending> batch);

  /// Blocks until every job has run; uses the worker threads when
  /// configured, the caller's thread otherwise.
  void RunJobs(std::vector<std::function<void()>> jobs);

  ModelPool* pool_;
  ServingEngineOptions options_;
  ServingStats stats_;
  TrafficRouter router_;

  // Worker pool (created only when num_threads > 1).
  std::vector<std::thread> workers_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::vector<std::function<void()>> queue_;
  bool stopping_ = false;

  // Async front: created lazily on the first Submit (engines used only
  // synchronously never start flusher lanes). The queue object, once
  // created, lives until engine destruction — Stop() stops it in place,
  // so a Submit racing Stop finds a live queue that rejects it.
  mutable std::mutex async_mu_;
  std::unique_ptr<AsyncBatchQueue> async_queue_;
  bool async_stopped_ = false;
};

}  // namespace awmoe

#endif  // AWMOE_SERVING_SERVING_ENGINE_H_
