#include "serving/ab_test.h"

#include <algorithm>
#include <numeric>

#include "eval/metrics.h"
#include "serving/serving_engine.h"
#include "util/rng.h"

namespace awmoe {

namespace {

/// Cascade user model: attention decays geometrically with rank; relevant
/// (label=1) items click with 0.75, irrelevant with 0.08; clicked relevant
/// items convert with 0.6.
struct UserModel {
  double attention_decay = 0.85;
  double p_click_relevant = 0.75;
  double p_click_irrelevant = 0.08;
  double p_order_given_click = 0.6;
};

AbArmResult RunArm(ServingEngine* engine, const std::string& model,
                   const std::vector<std::vector<const Example*>>& sessions,
                   uint64_t seed) {
  // Score every session through the engine first (micro-batched), then
  // replay the user model sequentially so the random stream depends only
  // on `seed` and the ranked orders, never on batching.
  std::vector<RankResponse> responses =
      engine->RankBatch(MakeSessionRequests(sessions, model));

  UserModel user;
  Rng rng(seed);
  AbArmResult result;
  result.model = model;
  for (size_t s = 0; s < sessions.size(); ++s) {
    const auto& session = sessions[s];
    const std::vector<double>& scores = responses[s].scores;
    std::vector<size_t> order(scores.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return scores[a] > scores[b];
    });

    bool clicked = false, ordered = false;
    double attention = 1.0;
    for (size_t rank = 0; rank < order.size(); ++rank) {
      if (rng.Uniform() < attention) {
        const Example& ex = *session[order[rank]];
        double p_click = ex.label > 0.5f ? user.p_click_relevant
                                         : user.p_click_irrelevant;
        if (rng.Bernoulli(p_click)) {
          clicked = true;
          if (ex.label > 0.5f &&
              rng.Bernoulli(user.p_order_given_click)) {
            ordered = true;
          }
        }
      }
      attention *= user.attention_decay;
    }
    result.session_clicked.push_back(clicked ? 1.0 : 0.0);
    result.session_ordered.push_back(ordered ? 1.0 : 0.0);
  }
  auto mean = [](const std::vector<double>& v) {
    return v.empty() ? 0.0
                     : std::accumulate(v.begin(), v.end(), 0.0) /
                           static_cast<double>(v.size());
  };
  result.uctr = mean(result.session_clicked);
  result.ucvr = mean(result.session_ordered);
  return result;
}

}  // namespace

AbTestResult RunAbTest(ServingEngine* engine,
                       const std::string& control_model,
                       const std::string& treatment_model,
                       const std::vector<std::vector<const Example*>>& sessions,
                       uint64_t seed) {
  AbTestResult result;
  // Identical user randomness in both arms: differences come only from
  // the ranking order, which keeps the comparison paired.
  result.control = RunArm(engine, control_model, sessions, seed);
  result.treatment = RunArm(engine, treatment_model, sessions, seed);
  if (result.control.uctr > 0.0) {
    result.uctr_lift_percent =
        100.0 * (result.treatment.uctr - result.control.uctr) /
        result.control.uctr;
  }
  if (result.control.ucvr > 0.0) {
    result.ucvr_lift_percent =
        100.0 * (result.treatment.ucvr - result.control.ucvr) /
        result.control.ucvr;
  }
  if (result.control.session_clicked.size() >= 2) {
    result.uctr_p_value = PairedTTestPValue(result.treatment.session_clicked,
                                            result.control.session_clicked);
    result.ucvr_p_value = PairedTTestPValue(result.treatment.session_ordered,
                                            result.control.session_ordered);
  }
  return result;
}

RolloutReplayResult ReplayRollout(
    ServingEngine* engine, RolloutController* controller,
    const std::vector<std::vector<const Example*>>& sessions,
    int max_rounds) {
  RolloutReplayResult result;
  result.candidate_version = controller->candidate_version();
  const std::string& model = controller->model();
  std::vector<RankRequest> requests = MakeSessionRequests(sessions, model);

  for (int round = 0; round < max_rounds; ++round) {
    if (controller->state() != RolloutState::kRamping) break;
    RolloutRoundRecord record;
    record.round = round;
    record.stage = controller->stage();
    record.split_permille = controller->split_permille();

    // Serve one round through the router: each session lands on the arm
    // its sticky bucket assigns under the current split.
    std::vector<RankResponse> responses = engine->RankBatch(requests);
    for (const RankResponse& response : responses) {
      if (response.arm == RolloutArm::kCandidate) {
        ++record.candidate_requests;
      } else {
        ++record.stable_requests;
      }
    }
    result.total_requests += static_cast<int64_t>(responses.size());
    result.total_candidate_requests += record.candidate_requests;

    // Tick the health gate, then record what it saw and decided. The
    // stable version is read BEFORE the tick: after a promote it would
    // already alias the candidate.
    const int64_t stable_version = controller->stable_version();
    const RolloutState state = controller->Advance();
    const ServingStats& stats = engine->stats();
    record.candidate_p99_ms =
        stats.VersionHealth(model, result.candidate_version).p99_ms;
    record.stable_p99_ms = stats.VersionHealth(model, stable_version).p99_ms;
    record.state_after = state;
    record.decision = controller->last_decision();
    result.rounds.push_back(std::move(record));
  }

  result.final_state = controller->state();
  result.final_stable_version = controller->stable_version();
  return result;
}

}  // namespace awmoe
