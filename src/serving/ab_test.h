#ifndef AWMOE_SERVING_AB_TEST_H_
#define AWMOE_SERVING_AB_TEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serving/request.h"

namespace awmoe {

class ServingEngine;

/// Outcome statistics of one A/B arm (§IV-I). UCTR/UCVR are the fractions
/// of simulated user sessions with at least one click / one order.
struct AbArmResult {
  std::string model;
  double uctr = 0.0;
  double ucvr = 0.0;
  std::vector<double> session_clicked;  // 0/1 per session.
  std::vector<double> session_ordered;  // 0/1 per session.
};

/// Result of a paired A/B comparison (same sessions replayed through both
/// arms; paired t-test on the per-session outcomes).
struct AbTestResult {
  AbArmResult control;
  AbArmResult treatment;
  double uctr_lift_percent = 0.0;
  double ucvr_lift_percent = 0.0;
  double uctr_p_value = 1.0;
  double ucvr_p_value = 1.0;
};

/// Replays `sessions` through two named models of one engine's registry
/// with a position-biased user examination model (cascade with geometric
/// attention decay): examined relevant items click with high probability,
/// clicks on relevant items convert. Both arms see identical user
/// randomness, so the comparison is paired; deterministic given `seed`.
/// `control_model` / `treatment_model` are registry names (empty = the
/// engine's default route, which only makes sense for one arm).
AbTestResult RunAbTest(ServingEngine* engine,
                       const std::string& control_model,
                       const std::string& treatment_model,
                       const std::vector<std::vector<const Example*>>& sessions,
                       uint64_t seed);

}  // namespace awmoe

#endif  // AWMOE_SERVING_AB_TEST_H_
