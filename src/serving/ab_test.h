#ifndef AWMOE_SERVING_AB_TEST_H_
#define AWMOE_SERVING_AB_TEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serving/request.h"
#include "serving/rollout.h"

namespace awmoe {

class ServingEngine;

/// Outcome statistics of one A/B arm (§IV-I). UCTR/UCVR are the fractions
/// of simulated user sessions with at least one click / one order.
struct AbArmResult {
  std::string model;
  double uctr = 0.0;
  double ucvr = 0.0;
  std::vector<double> session_clicked;  // 0/1 per session.
  std::vector<double> session_ordered;  // 0/1 per session.
};

/// Result of a paired A/B comparison (same sessions replayed through both
/// arms; paired t-test on the per-session outcomes).
struct AbTestResult {
  AbArmResult control;
  AbArmResult treatment;
  double uctr_lift_percent = 0.0;
  double ucvr_lift_percent = 0.0;
  double uctr_p_value = 1.0;
  double ucvr_p_value = 1.0;
};

/// Replays `sessions` through two named models of one engine's registry
/// with a position-biased user examination model (cascade with geometric
/// attention decay): examined relevant items click with high probability,
/// clicks on relevant items convert. Both arms see identical user
/// randomness, so the comparison is paired; deterministic given `seed`.
/// `control_model` / `treatment_model` are registry names (empty = the
/// engine's default route, which only makes sense for one arm).
AbTestResult RunAbTest(ServingEngine* engine,
                       const std::string& control_model,
                       const std::string& treatment_model,
                       const std::vector<std::vector<const Example*>>& sessions,
                       uint64_t seed);

/// One replay round of a staged rollout: what the router did with the
/// traffic and what the controller decided afterwards.
struct RolloutRoundRecord {
  int round = 0;
  /// Ramp stage index and split when the round was SERVED (before the
  /// controller tick).
  int stage = -1;
  int split_permille = 0;
  /// Requests of this round by the arm that actually served them.
  int64_t stable_requests = 0;
  int64_t candidate_requests = 0;
  /// Per-version health AFTER the round (cumulative windows).
  double stable_p99_ms = 0.0;
  double candidate_p99_ms = 0.0;
  /// Controller state and verdict after this round's Advance() tick.
  RolloutState state_after = RolloutState::kIdle;
  std::string decision;
};

/// Outcome of an online-rollout replay (§IV-E style: the candidate is
/// ramped on live traffic instead of flag-flipped).
struct RolloutReplayResult {
  std::vector<RolloutRoundRecord> rounds;
  RolloutState final_state = RolloutState::kIdle;
  int64_t candidate_version = 0;
  /// Stable version once the replay ended (== candidate_version after a
  /// promote, the original stable after a rollback).
  int64_t final_stable_version = 0;
  int64_t total_requests = 0;
  int64_t total_candidate_requests = 0;
};

/// Replays `sessions` through the engine in rounds — routing through
/// the engine's TrafficRouter, so the ramp shifts real replayed traffic
/// — and ticks `controller->Advance()` after every round until the
/// rollout promotes, rolls back, or `max_rounds` elapses. The
/// controller must be wired to this engine's router/stats and must
/// already be ramping (call Begin() first). Per-round arm counts and
/// per-version p99s are recorded so the ramp is auditable after the
/// fact.
RolloutReplayResult ReplayRollout(
    ServingEngine* engine, RolloutController* controller,
    const std::vector<std::vector<const Example*>>& sessions,
    int max_rounds = 64);

}  // namespace awmoe

#endif  // AWMOE_SERVING_AB_TEST_H_
