#include "serving/serving_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "data/batcher.h"
#include "models/ranker.h"
#include "nn/inference.h"
#include "util/check.h"
#include "util/hash.h"

namespace awmoe {

ServingEngine::ServingEngine(ModelPool* pool, ServingEngineOptions options)
    : pool_(pool), options_(options) {
  AWMOE_CHECK(pool_ != nullptr) << "ServingEngine: null pool";
  AWMOE_CHECK(options_.max_batch_items > 0)
      << "max_batch_items " << options_.max_batch_items;
  AWMOE_CHECK(options_.max_batch_candidates >= 0)
      << "max_batch_candidates " << options_.max_batch_candidates;
  AWMOE_CHECK(options_.max_queue_delay_ms >= 0.0)
      << "max_queue_delay_ms " << options_.max_queue_delay_ms;
  AWMOE_CHECK(options_.max_pending_requests >= 0)
      << "max_pending_requests " << options_.max_pending_requests;
  AWMOE_CHECK(options_.async_flush_lanes >= 0)
      << "async_flush_lanes " << options_.async_flush_lanes;
  for (int t = 1; t < options_.num_threads; ++t) {
    workers_.emplace_back([this] {
      for (;;) {
        std::function<void()> job;
        {
          std::unique_lock<std::mutex> lock(queue_mu_);
          queue_cv_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
          if (queue_.empty()) {
            if (stopping_) return;
            continue;
          }
          job = std::move(queue_.back());
          queue_.pop_back();
        }
        job();
      }
    });
  }
}

ServingEngine::~ServingEngine() {
  // Drain the async front first: its flusher lanes score pending
  // batches through pool snapshots, which must still be reachable.
  Stop(/*drain=*/true);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ServingEngine::GateSharingActive(const std::string& model) const {
  // Ask the CURRENT snapshot: eligibility is re-evaluated on every hot
  // swap, so a published model change (e.g. to a non-AW-MoE ranker)
  // changes the answer here and the path Rank actually takes together.
  std::shared_ptr<const ModelSnapshot> snapshot =
      pool_->CurrentSnapshot(pool_->ResolveName(model));
  return options_.share_gate && snapshot->gate_shareable();
}

ServingStatsSnapshot ServingEngine::Stats() const {
  ServingStatsSnapshot snap = stats_.Snapshot();
  snap.model_swaps = pool_->swap_count();
  // Live cache occupancy comes from the pool at snapshot time (gauges,
  // not counters): retired snapshots drop out the moment they free.
  const CacheUsage usage = pool_->TotalCacheUsage();
  snap.score_cache_entries += usage.score_entries;
  snap.score_cache_bytes += usage.score_bytes;
  snap.encoding_cache_entries += usage.encoding_entries;
  snap.encoding_cache_bytes += usage.encoding_bytes;
  snap.gate_cache_entries += usage.gate_entries;
  snap.gate_cache_bytes += usage.gate_bytes;
  return snap;
}

RolloutArm ServingEngine::RouteArm(const std::string& resolved,
                                   const RankRequest& request) const {
  switch (request.arm_policy) {
    case ArmPolicy::kForceStable:
      return RolloutArm::kStable;
    case ArmPolicy::kForceCandidate:
      return RolloutArm::kCandidate;
    case ArmPolicy::kRouter:
      break;
  }
  return router_.Route(resolved, request.session_id);
}

void ServingEngine::ExecuteMicroBatch(const MicroBatch& micro,
                                      const std::vector<RankRequest>& requests,
                                      const std::vector<double>* queue_delays_ms,
                                      const Stopwatch& service_watch,
                                      std::vector<RankResponse>* responses) {
  const DatasetMeta& meta = pool_->meta();
  const size_t n = micro.request_indices.size();

  // Pin the snapshot FIRST, without a lane: the version cannot change
  // under us (hot swaps publish a NEW snapshot), and a micro-batch
  // fully served from the level-1 score cache below never leases a
  // replica lane at all. The arm picks between the stable and staged-
  // candidate snapshots; a candidate dropped since routing falls back
  // to stable (`granted` reports what was actually served).
  RolloutArm granted = micro.arm;
  std::shared_ptr<const ModelSnapshot> snapshot_ptr =
      pool_->SnapshotForArm(micro.model, micro.arm, &granted);
  const ModelSnapshot& snapshot = *snapshot_ptr;

  // --- Level 1: session score cache. An exact repeat request (same
  // session, same candidate set, unchanged behaviour history) takes its
  // scores straight from the snapshot's cache; only the rest is
  // collated and scored. Per-element CandidateScoreHash verification
  // inside Lookup makes a set-hash collision a miss, never a wrong
  // score.
  // A slate-scoring model ranks each request's rows JOINTLY, so its
  // level-1 cache entries would be wrong to reuse: a cached score was
  // computed against one particular slate, and serving it to a repeat
  // request would freeze the candidate's context. Bypass the cache
  // entirely (no lookups, no puts) and score every request fresh.
  const bool slate = snapshot.slate_scoring();
  const bool score_cache_on = options_.score_cache_capacity > 0 && !slate;

  // Slate-length admission backstop against the PINNED snapshot.
  // RankBatch and Submit already rejected oversized requests against
  // the snapshot current at admission time; a hot swap to a model with
  // a smaller cap between admission and this lease still lands here.
  // An oversized slate must never reach ScoreSlateInto, whose slate-
  // length CHECK treats it as a programmer error and aborts — data-
  // dependent input resolves as a per-request kInvalidArgument instead.
  const int64_t max_slate = snapshot.max_slate_items();
  std::vector<bool> rejected(n, false);
  if (slate && max_slate > 0) {
    for (size_t i = 0; i < n; ++i) {
      rejected[i] = static_cast<int64_t>(
                        requests[micro.request_indices[i]].items.size()) >
                    max_slate;
    }
  }
  std::vector<int> score_lookup(n, -1);  // RequestSample encoding.
  std::vector<uint64_t> history_hash(n, 0);
  std::vector<uint64_t> set_hash(n, 0);
  std::vector<std::vector<uint64_t>> item_hashes(n);
  std::vector<std::vector<float>> hit_scores(n);
  if (score_cache_on) {
    SessionScoreCache& cache = snapshot.score_cache();
    for (size_t i = 0; i < n; ++i) {
      const RankRequest& request = requests[micro.request_indices[i]];
      history_hash[i] = SessionHistoryHash(*request.items[0]);
      std::vector<uint64_t>& hashes = item_hashes[i];
      hashes.reserve(request.items.size());
      uint64_t set = 0;
      for (const Example* item : request.items) {
        const uint64_t h = CandidateScoreHash(*item);
        hashes.push_back(h);
        set = SetHashAdd(set, h);
      }
      set_hash[i] = set;
      hit_scores[i].resize(request.items.size());
      const CacheLookup outcome =
          cache.Lookup(request.session_id, set, history_hash[i], hashes,
                       hit_scores[i]);
      score_lookup[i] = outcome == CacheLookup::kHit    ? 1
                        : outcome == CacheLookup::kStale ? 2
                                                         : 0;
    }
  }
  std::vector<size_t> miss;  // Positions in [0, n) that need compute.
  miss.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (score_lookup[i] != 1 && !rejected[i]) miss.push_back(i);
  }

  // Gate/encoding sharing is a pointwise-path optimisation; a slate
  // forward goes through ScoreSlateInto, which takes neither.
  const bool shared =
      options_.share_gate && snapshot.gate_shareable() && !slate;
  const bool encode = options_.share_session_encoding &&
                      snapshot.encoding_shareable() && !slate;
  std::vector<bool> cache_hit(n, false);       // Gate-cache outcome.
  std::vector<int> encoding_lookup(n, -1);     // RequestSample encoding.
  // Logits of the MISS portion land here straight from the model — the
  // whole forward is allocation-free against the lane's workspace; only
  // this engine-side collation layer still allocates (batch, response
  // buffers). logits_row[k] is miss request k's first row.
  std::vector<float> logits;
  std::vector<int64_t> logits_row(miss.size(), 0);
  SnapshotLease lease;
  int64_t miss_items = 0;

  if (!miss.empty()) {
    // Real compute remains: NOW lease a replica lane.
    lease = pool_->LeaseLane(snapshot_ptr, granted);
    ReplicaLane& lane = lease.lane();
    const size_t m = miss.size();

    std::vector<const Example*> items;
    items.reserve(static_cast<size_t>(micro.total_items));
    for (size_t k = 0; k < m; ++k) {
      const RankRequest& request = requests[micro.request_indices[miss[k]]];
      logits_row[k] = static_cast<int64_t>(items.size());
      items.insert(items.end(), request.items.begin(), request.items.end());
    }
    miss_items = static_cast<int64_t>(items.size());
    Batch batch = CollateBatch(items, meta, pool_->standardizer());
    logits.resize(static_cast<size_t>(batch.size));
    const std::span<float> logits_span(logits);
    // Workspaces are sized to the engine's batching caps once, so a
    // lane serves every later micro-batch (sync or async) without
    // regrowing.
    const int64_t workspace_candidates =
        std::max({options_.max_batch_items, options_.max_batch_candidates,
                  batch.size});

    // One context hash per miss request: the validity stamp shared by
    // the gate cache AND the level-2 session feature store (the
    // encoding reads a subset of the gate's inputs).
    std::vector<uint64_t> request_hash(m, 0);
    if (shared || encode) {
      for (size_t k = 0; k < m; ++k) {
        const RankRequest& request = requests[micro.request_indices[miss[k]]];
        request_hash[k] = GateContextHash(*request.items[0]);
      }
    }

    // §III-F behind the API: one gate row per session. Rows come from
    // the snapshot's LRU when the session was served before, otherwise
    // from a single fused probe pass (one row per missed session).
    // Probe dedup key is (session id, context hash), not session id
    // alone: two same-session requests with *different* gate inputs in
    // one micro-batch must each get their own probe, mirroring the
    // staleness check the cross-request cache does.
    const int64_t gate_width = snapshot.gate_width();
    std::vector<std::vector<float>> session_gates(m);
    std::map<std::pair<int64_t, uint64_t>, size_t> gate_probe_slot;
    std::vector<const Example*> gate_probes;
    if (shared) {
      SessionGateCache& cache = snapshot.gate_cache();
      for (size_t k = 0; k < m; ++k) {
        const RankRequest& request = requests[micro.request_indices[miss[k]]];
        if (options_.gate_cache_capacity > 0 &&
            cache.Lookup(request.session_id, request_hash[k],
                         &session_gates[k]) == CacheLookup::kHit) {
          cache_hit[miss[k]] = true;
          continue;
        }
        auto [slot, inserted] = gate_probe_slot.try_emplace(
            {request.session_id, request_hash[k]}, gate_probes.size());
        if (inserted) gate_probes.push_back(request.items[0]);
      }
    }

    // Level 2, same probe-dedup-replicate shape as the gate: one
    // candidate-independent encoding row per session, cached across
    // requests under the context stamp.
    const int64_t enc_width = snapshot.encoding_width();
    std::vector<std::vector<float>> session_encodings(m);
    std::map<std::pair<int64_t, uint64_t>, size_t> enc_probe_slot;
    std::vector<const Example*> enc_probes;
    if (encode) {
      SessionGateCache& cache = snapshot.encoding_cache();
      for (size_t k = 0; k < m; ++k) {
        const RankRequest& request = requests[micro.request_indices[miss[k]]];
        if (options_.encoding_cache_capacity > 0) {
          const CacheLookup outcome = cache.Lookup(
              request.session_id, request_hash[k], &session_encodings[k]);
          encoding_lookup[miss[k]] = outcome == CacheLookup::kHit    ? 1
                                     : outcome == CacheLookup::kStale ? 2
                                                                      : 0;
          if (outcome == CacheLookup::kHit) continue;
        } else {
          encoding_lookup[miss[k]] = 0;  // Cross-request reuse disabled.
        }
        auto [slot, inserted] = enc_probe_slot.try_emplace(
            {request.session_id, request_hash[k]}, enc_probes.size());
        if (inserted) enc_probes.push_back(request.items[0]);
      }
    }

    double rerank_ms = 0.0;  // Slate-stage latency (slate models only).
    {
      // One lane critical section for probes + main forward: all touch
      // this replica's model state and workspace. Other replicas of the
      // same snapshot run their own micro-batches concurrently.
      std::lock_guard<std::mutex> lock(lane.mu);
      // Started AFTER the lock is held: the rerank reservoir samples
      // the lane critical section as documented, so lock-wait behind a
      // contended replica shows up in request latency, not in the
      // rerank-stage percentiles.
      const Stopwatch rerank_watch;
      InferenceWorkspace* workspace =
          lane.EnsureWorkspace(workspace_candidates);
      if (!gate_probes.empty()) {
        Batch probe_batch =
            CollateBatch(gate_probes, meta, pool_->standardizer());
        std::span<float> fresh = workspace->Staging(
            InferenceWorkspace::kGateProbe, probe_batch.size * gate_width);
        lane.model->GateInto(probe_batch, workspace, fresh);
        for (size_t k = 0; k < m; ++k) {
          if (cache_hit[miss[k]] || !session_gates[k].empty()) continue;
          const RankRequest& request =
              requests[micro.request_indices[miss[k]]];
          const size_t row =
              gate_probe_slot.at({request.session_id, request_hash[k]});
          const float* src = fresh.data() + row * gate_width;
          session_gates[k].assign(src, src + gate_width);
        }
        if (options_.gate_cache_capacity > 0) {
          for (const auto& [key, row] : gate_probe_slot) {
            const float* src = fresh.data() + row * gate_width;
            snapshot.gate_cache().Put(key.first, key.second,
                                      std::vector<float>(src, src + gate_width),
                                      options_.gate_cache_capacity);
          }
        }
      }
      if (!enc_probes.empty()) {
        Batch probe_batch =
            CollateBatch(enc_probes, meta, pool_->standardizer());
        std::span<float> fresh = workspace->Staging(
            InferenceWorkspace::kSessionProbe, probe_batch.size * enc_width);
        lane.model->EncodeSessionInto(probe_batch, workspace, fresh);
        for (size_t k = 0; k < m; ++k) {
          if (!session_encodings[k].empty()) continue;
          const RankRequest& request =
              requests[micro.request_indices[miss[k]]];
          const size_t row =
              enc_probe_slot.at({request.session_id, request_hash[k]});
          const float* src = fresh.data() + row * enc_width;
          session_encodings[k].assign(src, src + enc_width);
        }
        if (options_.encoding_cache_capacity > 0) {
          for (const auto& [key, row] : enc_probe_slot) {
            const float* src = fresh.data() + row * enc_width;
            snapshot.encoding_cache().Put(
                key.first, key.second,
                std::vector<float>(src, src + enc_width),
                options_.encoding_cache_capacity);
          }
        }
      }
      // Replicate each session's gate/encoding row across its
      // candidates into the workspace's persistent staging buffers,
      // then run the candidate-dependent forward with both supplied —
      // the generic ScoreWithSessionInto contract (a null gate or
      // encoding degrades to the respective fused path).
      SessionGate gate;
      if (shared) {
        std::span<float> gate_rows = workspace->Staging(
            InferenceWorkspace::kGateRows, batch.size * gate_width);
        float* dst = gate_rows.data();
        for (size_t k = 0; k < m; ++k) {
          const RankRequest& request =
              requests[micro.request_indices[miss[k]]];
          for (size_t j = 0; j < request.items.size();
               ++j, dst += gate_width) {
            std::copy(session_gates[k].begin(), session_gates[k].end(), dst);
          }
        }
        gate = SessionGate{gate_rows.data(), batch.size, gate_width};
      }
      SessionEncoding encoding;
      if (encode) {
        std::span<float> enc_rows = workspace->Staging(
            InferenceWorkspace::kSessionRows, batch.size * enc_width);
        float* dst = enc_rows.data();
        for (size_t k = 0; k < m; ++k) {
          const RankRequest& request =
              requests[micro.request_indices[miss[k]]];
          for (size_t j = 0; j < request.items.size();
               ++j, dst += enc_width) {
            std::copy(session_encodings[k].begin(), session_encodings[k].end(),
                      dst);
          }
        }
        encoding = SessionEncoding{enc_rows.data(), batch.size, enc_width};
      }
      if (slate) {
        // Collation inserted each request's items as one contiguous
        // block, so logits_row IS the slate-starts vector: one slate
        // per request, whole and in request order. The request is the
        // atomicity unit — a micro-batch may carry many requests, but
        // no request's rows are ever split across forwards or
        // interleaved with another's, so every candidate attends over
        // exactly its own slate regardless of batch composition.
        lane.model->ScoreSlateInto(batch, logits_row, workspace,
                                   logits_span);
      } else {
        lane.model->ScoreWithSessionInto(batch, shared ? &gate : nullptr,
                                         encode ? &encoding : nullptr,
                                         workspace, logits_span);
      }
      rerank_ms = rerank_watch.ElapsedMillis();
    }
    if (slate) {
      // Slate-occupancy histogram + rerank-stage latency (the lane
      // critical section above), one stats lock for the micro-batch.
      std::vector<int64_t> slate_sizes(m);
      for (size_t k = 0; k < m; ++k) {
        slate_sizes[k] = static_cast<int64_t>(
            requests[micro.request_indices[miss[k]]].items.size());
      }
      stats_.RecordSlateBatch(slate_sizes, rerank_ms);
    }

    // One vectorised pass over the miss logits (in place; per-element
    // arithmetic matches the tier's sigmoid, so on the reference tier
    // this is still StableSigmoid element for element).
    SigmoidSpanInto(logits_span, logits_span);

    // Freshly computed scores feed the level-1 cache (outside the lane
    // lock: the cache has its own mutex and the floats are engine-
    // owned). Stored post-sigmoid, exactly the floats a later hit
    // serves — bitwise-equal to recompute by construction.
    if (score_cache_on) {
      SessionScoreCache& cache = snapshot.score_cache();
      for (size_t k = 0; k < m; ++k) {
        const size_t i = miss[k];
        const RankRequest& request = requests[micro.request_indices[i]];
        const float* first = logits.data() + logits_row[k];
        cache.Put(request.session_id, set_hash[i], history_hash[i],
                  item_hashes[i],
                  std::vector<float>(first, first + request.items.size()),
                  options_.score_cache_capacity);
      }
    }
  }

  const double service_ms = service_watch.ElapsedMillis();
  std::vector<RequestSample> samples;
  samples.reserve(n);
  std::vector<int64_t> next_row(miss.size());
  for (size_t k = 0; k < miss.size(); ++k) next_row[k] = logits_row[k];
  size_t miss_cursor = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t idx = micro.request_indices[i];
    const RankRequest& request = requests[idx];
    RankResponse& response = (*responses)[idx];
    const double queue_ms =
        queue_delays_ms == nullptr ? 0.0 : (*queue_delays_ms)[idx];
    if (rejected[i]) {
      // Client error, not a serve: no scores, no request sample (the
      // latency/occupancy metrics count served traffic only).
      response.status = Status::InvalidArgument(
          "Rank: slate of " + std::to_string(request.items.size()) +
          " candidates exceeds model '" + snapshot.name() +
          "' max slate length " + std::to_string(max_slate));
      response.session_id = request.session_id;
      response.model = snapshot.name();
      response.model_version = snapshot.version();
      response.arm = granted;
      response.replica = -1;
      response.latency_ms = service_ms + queue_ms;
      response.queue_ms = queue_ms;
      continue;
    }
    const bool served_from_cache = score_lookup[i] == 1;
    response.session_id = request.session_id;
    response.model = snapshot.name();
    response.model_version = snapshot.version();
    response.arm = granted;
    response.replica = served_from_cache ? -1 : lease.replica();
    response.latency_ms = service_ms + queue_ms;
    response.queue_ms = queue_ms;
    response.score_cache_hit = served_from_cache;
    response.scores.resize(request.items.size());
    if (served_from_cache) {
      response.gate_shared = false;
      response.gate_cache_hit = false;
      response.encoding_cache_hit = false;
      for (size_t j = 0; j < request.items.size(); ++j) {
        response.scores[j] = hit_scores[i][j];
      }
    } else {
      response.gate_shared = shared;
      response.gate_cache_hit = cache_hit[i];
      response.encoding_cache_hit = encoding_lookup[i] == 1;
      int64_t row = next_row[miss_cursor];
      ++miss_cursor;
      for (size_t j = 0; j < request.items.size(); ++j, ++row) {
        response.scores[j] = logits[static_cast<size_t>(row)];
      }
    }
    RequestSample& sample = samples.emplace_back();
    sample.items = static_cast<int64_t>(request.items.size());
    sample.latency_ms = response.latency_ms;
    if (queue_delays_ms != nullptr) sample.queue_ms = queue_ms;
    if (!served_from_cache && shared) {
      sample.gate_lookup = cache_hit[i] ? 1 : 0;
    }
    sample.score_lookup = score_lookup[i];
    sample.encoding_lookup = encoding_lookup[i];
  }
  // Every request rejected at the slate backstop: nothing was served,
  // so there is no micro-batch to account.
  if (samples.empty()) return;
  // One lock acquisition for the whole micro-batch: workers and the
  // async flusher lanes contend on the stats mutex, so the hot path
  // must not take it per request.
  LeaseSample lease_sample;
  lease_sample.model = snapshot.name();
  lease_sample.version = snapshot.version();
  lease_sample.num_replicas = snapshot.num_replicas();
  if (miss.empty()) {
    // Fully served from the score cache: the snapshot is real but no
    // lane was leased and no forward pass ran.
    lease_sample.replica = -1;
    lease_sample.active_lanes = 0;
    lease_sample.lane_leased = false;
  } else {
    lease_sample.replica = lease.replica();
    lease_sample.active_lanes = lease.active_lanes_at_acquire();
  }
  stats_.RecordMicroBatch(miss_items, samples, &lease_sample);
}

void ServingEngine::RunJobs(std::vector<std::function<void()>> jobs) {
  if (workers_.empty() || jobs.size() <= 1) {
    for (auto& job : jobs) job();
    return;
  }
  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = 0;
  };
  auto sync = std::make_shared<Sync>();
  sync->remaining = jobs.size();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (auto& job : jobs) {
      queue_.push_back([task = std::move(job), sync] {
        task();
        {
          std::lock_guard<std::mutex> lock(sync->mu);
          --sync->remaining;
        }
        sync->cv.notify_one();
      });
    }
  }
  queue_cv_.notify_all();
  // Work-share: the caller drains the queue alongside the workers
  // instead of blocking idle, so num_threads means num_threads lanes of
  // work (n-1 workers + this thread). The caller may pick up jobs from
  // a concurrent RankBatch — that is fine, they are self-contained.
  for (;;) {
    std::function<void()> job;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (!queue_.empty()) {
        job = std::move(queue_.back());
        queue_.pop_back();
      }
    }
    if (!job) break;
    job();
  }
  std::unique_lock<std::mutex> lock(sync->mu);
  sync->cv.wait(lock, [&] { return sync->remaining == 0; });
}

std::vector<RankResponse> ServingEngine::RankBatch(
    const std::vector<RankRequest>& requests) {
  std::vector<RankResponse> responses(requests.size());
  if (requests.empty()) return responses;
  Stopwatch submit_watch;

  // Route: group request indices by (resolved model, rollout arm) —
  // encoded as one route key — keeping first-seen route order and
  // request order within a route. Splitting by arm keeps the invariant
  // that one micro-batch runs on exactly one snapshot.
  std::vector<std::string> route_order;
  std::unordered_map<std::string, std::vector<size_t>> by_route;
  // Slate-length admission, resolved once per route: a request with
  // more candidates than the route snapshot's max_slate_items is
  // rejected with kInvalidArgument here — retrieval sets larger than a
  // listwise model's position table are ordinary client input, and they
  // must never reach a forward whose slate-length CHECK would abort the
  // process. (ExecuteMicroBatch re-validates against the snapshot it
  // actually pins, covering a hot swap between here and the lease.)
  struct RouteAdmission {
    int64_t max_slate = 0;  // 0 = pointwise / unlimited.
    int64_t version = 0;
  };
  std::unordered_map<std::string, RouteAdmission> admission;
  for (size_t i = 0; i < requests.size(); ++i) {
    AWMOE_CHECK(!requests[i].items.empty())
        << "RankBatch: empty candidate list for session "
        << requests[i].session_id;
    const std::string name = pool_->ResolveName(requests[i].model);
    const RolloutArm arm = RouteArm(name, requests[i]);
    const std::string key = EncodeRouteKey(name, arm);
    auto [limit_it, limit_new] = admission.try_emplace(key);
    if (limit_new) {
      std::shared_ptr<const ModelSnapshot> snapshot =
          pool_->SnapshotForArm(name, arm, nullptr);
      limit_it->second.max_slate = snapshot->max_slate_items();
      limit_it->second.version = snapshot->version();
    }
    const RouteAdmission& limit = limit_it->second;
    if (limit.max_slate > 0 &&
        static_cast<int64_t>(requests[i].items.size()) > limit.max_slate) {
      RankResponse& response = responses[i];
      response.status = Status::InvalidArgument(
          "Rank: slate of " + std::to_string(requests[i].items.size()) +
          " candidates exceeds model '" + name + "' max slate length " +
          std::to_string(limit.max_slate));
      response.session_id = requests[i].session_id;
      response.model = name;
      response.model_version = limit.version;
      response.replica = -1;
      continue;
    }
    auto [it, inserted] = by_route.try_emplace(key);
    if (inserted) route_order.push_back(key);
    it->second.push_back(i);
  }

  // Micro-batch: pack whole sessions per route until the item cap.
  std::vector<MicroBatch> micros;
  for (const std::string& key : route_order) {
    auto [name, arm] = DecodeRouteKey(key);
    MicroBatch current;
    current.model = name;
    current.arm = arm;
    for (size_t idx : by_route.at(key)) {
      const int64_t items =
          static_cast<int64_t>(requests[idx].items.size());
      if (!current.request_indices.empty() &&
          current.total_items + items > options_.max_batch_items) {
        micros.push_back(std::move(current));
        current = MicroBatch();
        current.model = name;
        current.arm = arm;
      }
      current.request_indices.push_back(idx);
      current.total_items += items;
    }
    if (!current.request_indices.empty()) micros.push_back(std::move(current));
  }

  std::vector<std::function<void()>> jobs;
  jobs.reserve(micros.size());
  for (const MicroBatch& micro : micros) {
    jobs.push_back([this, &micro, &requests, &submit_watch, &responses] {
      ExecuteMicroBatch(micro, requests, /*queue_delays_ms=*/nullptr,
                        submit_watch, &responses);
    });
  }
  RunJobs(std::move(jobs));
  return responses;
}

RankResponse ServingEngine::Rank(const RankRequest& request) {
  std::vector<RankResponse> responses = RankBatch({request});
  return std::move(responses[0]);
}

std::future<RankResponse> ServingEngine::Submit(RankRequest request) {
  // Resolve the route up front (CHECK-fails on unknown names, matching
  // the synchronous path) so per-route queues key on concrete names.
  // The rollout arm is pinned here too — submit time, not flush time —
  // so a ramp step between enqueue and flush cannot move a session
  // mid-flight; a candidate rolled back in that window falls back to
  // stable at lease time.
  const std::string resolved = pool_->ResolveName(request.model);
  const RolloutArm arm = RouteArm(resolved, request);
  const std::string route_key = EncodeRouteKey(resolved, arm);
  // Slate-length admission, mirroring RankBatch: reject before the
  // request ever occupies queue space. A client error like the empty
  // candidate list below — no version health sample is recorded.
  {
    std::shared_ptr<const ModelSnapshot> snapshot =
        pool_->SnapshotForArm(resolved, arm, nullptr);
    const int64_t max_slate = snapshot->max_slate_items();
    if (max_slate > 0 &&
        static_cast<int64_t>(request.items.size()) > max_slate) {
      std::promise<RankResponse> promise;
      RankResponse response;
      response.status = Status::InvalidArgument(
          "Submit: slate of " + std::to_string(request.items.size()) +
          " candidates exceeds model '" + resolved + "' max slate length " +
          std::to_string(max_slate));
      response.session_id = request.session_id;
      response.model = resolved;
      response.model_version = snapshot->version();
      response.replica = -1;
      promise.set_value(std::move(response));
      return promise.get_future();
    }
  }
  AsyncBatchQueue* queue = nullptr;
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    if (async_queue_ == nullptr && !async_stopped_) {
      AsyncQueueOptions queue_options;
      queue_options.max_batch_candidates = options_.max_batch_candidates > 0
                                               ? options_.max_batch_candidates
                                               : options_.max_batch_items;
      queue_options.max_queue_delay = std::chrono::microseconds(
          std::llround(options_.max_queue_delay_ms * 1e3));
      queue_options.max_pending_requests = options_.max_pending_requests;
      // One flush lane per pool replica by default: a hot model can
      // keep every one of its replicas busy with its own in-flight
      // micro-batch instead of capping out at one global flusher.
      queue_options.num_flush_lanes = options_.async_flush_lanes > 0
                                          ? options_.async_flush_lanes
                                          : pool_->replicas();
      async_queue_ = std::make_unique<AsyncBatchQueue>(
          queue_options,
          [this](const std::string& key,
                 std::vector<AsyncBatchQueue::Pending> batch) {
            FlushAsync(key, std::move(batch));
          });
    }
    queue = async_queue_.get();
  }
  if (queue == nullptr) {
    // Stopped before the async front ever started.
    std::promise<RankResponse> promise;
    RankResponse response;
    response.status = Status::Unavailable("Submit: serving engine is stopped");
    response.session_id = request.session_id;
    response.model = resolved;
    promise.set_value(std::move(response));
    return promise.get_future();
  }
  Status sync_reject;
  std::future<RankResponse> future =
      queue->Submit(std::move(request), resolved, route_key, &sync_reject);
  // Serving-side rejects (backpressure, stopped) are failures of the
  // arm the request was routed to — feed them to that version's health
  // window so the rollout error-rate gate sees real overload, not just
  // hand-recorded test samples. Client errors (empty candidate list)
  // are not the model's fault and stay unattributed.
  if (sync_reject.code() == StatusCode::kResourceExhausted ||
      sync_reject.code() == StatusCode::kUnavailable) {
    int64_t version = arm == RolloutArm::kCandidate
                          ? pool_->CandidateVersion(resolved)
                          : 0;
    if (version == 0) version = pool_->CurrentSnapshot(resolved)->version();
    stats_.RecordVersionSample(resolved, version, 0.0, /*ok=*/false);
  }
  return future;
}

void ServingEngine::Stop(bool drain) {
  AsyncBatchQueue* queue = nullptr;
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    async_stopped_ = true;
    // Stop the queue in place instead of destroying it: a Submit that
    // grabbed the pointer concurrently must find a live object (it will
    // be rejected with kUnavailable).
    queue = async_queue_.get();
  }
  if (queue != nullptr) queue->Stop(drain);
}

int64_t ServingEngine::pending_async_requests() const {
  std::lock_guard<std::mutex> lock(async_mu_);
  return async_queue_ == nullptr ? 0 : async_queue_->pending_requests();
}

void ServingEngine::FlushAsync(const std::string& route_key,
                               std::vector<AsyncBatchQueue::Pending> batch) {
  Stopwatch service_watch;
  const auto flush_start = std::chrono::steady_clock::now();
  const size_t n = batch.size();
  std::vector<RankRequest> requests;
  requests.reserve(n);
  std::vector<double> queue_delays_ms(n, 0.0);
  MicroBatch micro;
  micro.request_indices.resize(n);
  std::iota(micro.request_indices.begin(), micro.request_indices.end(),
            size_t{0});
  for (size_t i = 0; i < n; ++i) {
    queue_delays_ms[i] = std::chrono::duration<double, std::milli>(
                             flush_start - batch[i].enqueued_at)
                             .count();
    micro.total_items += static_cast<int64_t>(batch[i].request.items.size());
    requests.push_back(std::move(batch[i].request));
  }
  // The queue grouped the batch under the (resolved name, rollout arm)
  // key Submit pinned at enqueue time — route by that key, not by
  // re-resolving a possibly empty (default) request name or re-running
  // the router at flush time.
  auto [model, arm] = DecodeRouteKey(route_key);
  micro.model = std::move(model);
  micro.arm = arm;
  std::vector<RankResponse> responses(n);
  ExecuteMicroBatch(micro, requests, &queue_delays_ms, service_watch,
                    &responses);
  for (size_t i = 0; i < n; ++i) {
    batch[i].promise.set_value(std::move(responses[i]));
  }
}

}  // namespace awmoe
