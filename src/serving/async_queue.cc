#include "serving/async_queue.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace awmoe {

namespace {

/// Resolves a promise with a scoreless failure response, preserving the
/// request identity so callers can still attribute the error.
void Reject(std::promise<RankResponse> promise, Status status,
            int64_t session_id, const std::string& model) {
  RankResponse response;
  response.status = std::move(status);
  response.session_id = session_id;
  response.model = model;
  promise.set_value(std::move(response));
}

}  // namespace

AsyncBatchQueue::AsyncBatchQueue(AsyncQueueOptions options, FlushFn flush)
    : options_(options), flush_(std::move(flush)) {
  AWMOE_CHECK(options_.max_batch_candidates > 0)
      << "max_batch_candidates " << options_.max_batch_candidates;
  AWMOE_CHECK(options_.max_queue_delay.count() >= 0)
      << "negative max_queue_delay";
  AWMOE_CHECK(options_.num_flush_lanes >= 1)
      << "num_flush_lanes " << options_.num_flush_lanes;
  AWMOE_CHECK(flush_ != nullptr) << "AsyncBatchQueue: null flush callback";
  flushers_.reserve(static_cast<size_t>(options_.num_flush_lanes));
  for (int lane = 0; lane < options_.num_flush_lanes; ++lane) {
    flushers_.emplace_back([this] { FlusherLoop(); });
  }
}

AsyncBatchQueue::~AsyncBatchQueue() { Stop(/*drain=*/true); }

std::future<RankResponse> AsyncBatchQueue::Submit(
    RankRequest request, const std::string& resolved_model) {
  return Submit(std::move(request), resolved_model, resolved_model);
}

std::future<RankResponse> AsyncBatchQueue::Submit(
    RankRequest request, const std::string& resolved_model,
    const std::string& route_key, Status* sync_reject) {
  std::promise<RankResponse> promise;
  std::future<RankResponse> future = promise.get_future();
  if (sync_reject != nullptr) *sync_reject = Status::OK();
  auto reject = [&](Status status) {
    if (sync_reject != nullptr) *sync_reject = status;
    Reject(std::move(promise), std::move(status), request.session_id,
           resolved_model);
  };
  if (request.items.empty()) {
    reject(Status::InvalidArgument("Submit: empty candidate list for session " +
                                   std::to_string(request.session_id)));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      reject(Status::Unavailable("Submit: serving engine is stopped"));
      return future;
    }
    if (options_.max_pending_requests > 0 &&
        pending_total_ >= options_.max_pending_requests) {
      reject(Status::ResourceExhausted(
          "Submit: async queue full (" + std::to_string(pending_total_) +
          " pending requests)"));
      return future;
    }
    ModelQueue& queue = queues_[route_key];
    if (queue.model.empty()) queue.model = resolved_model;
    queue.pending_items += static_cast<int64_t>(request.items.size());
    ++pending_total_;
    Pending pending;
    pending.request = std::move(request);
    pending.promise = std::move(promise);
    pending.enqueued_at = std::chrono::steady_clock::now();
    queue.pending.push_back(std::move(pending));
  }
  // Wake the flusher whether or not the cap was reached: a first
  // request establishes a new flush deadline the flusher must adopt.
  cv_.notify_one();
  return future;
}

std::vector<AsyncBatchQueue::Pending> AsyncBatchQueue::PopBatchLocked(
    ModelQueue* queue) {
  std::vector<Pending> batch;
  int64_t items = 0;
  while (!queue->pending.empty()) {
    const int64_t next =
        static_cast<int64_t>(queue->pending.front().request.items.size());
    // Whole requests only; an oversized lone request still flushes.
    if (!batch.empty() && items + next > options_.max_batch_candidates) break;
    items += next;
    queue->pending_items -= next;
    --pending_total_;
    batch.push_back(std::move(queue->pending.front()));
    queue->pending.pop_front();
  }
  return batch;
}

void AsyncBatchQueue::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    ModelQueue* ready = nullptr;
    const std::string* ready_name = nullptr;
    auto ready_oldest = std::chrono::steady_clock::time_point::max();
    bool have_pending = false;
    auto earliest_deadline = std::chrono::steady_clock::time_point::max();
    const auto now = std::chrono::steady_clock::now();
    for (auto& [name, queue] : queues_) {
      if (queue.pending.empty()) continue;
      have_pending = true;
      const auto oldest = queue.pending.front().enqueued_at;
      const auto deadline = oldest + options_.max_queue_delay;
      // A queue is flush-ready when its candidate cap is reached, its
      // oldest request aged out, or the queue is draining for shutdown.
      // Among ready queues the one with the OLDEST front request wins,
      // so a cap-triggering stream on one model cannot starve another
      // model's aged-out requests past their time bound.
      if (stopping_ || queue.pending_items >= options_.max_batch_candidates ||
          deadline <= now) {
        if (oldest < ready_oldest) {
          ready = &queue;
          ready_name = &name;
          ready_oldest = oldest;
        }
        continue;
      }
      earliest_deadline = std::min(earliest_deadline, deadline);
    }
    if (ready != nullptr) {
      const std::string route_key = *ready_name;
      std::vector<Pending> batch = PopBatchLocked(ready);
      lock.unlock();
      flush_(route_key, std::move(batch));  // Resolves every promise.
      lock.lock();
      continue;
    }
    if (stopping_) return;  // Nothing pending left to drain.
    if (!have_pending) {
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock, earliest_deadline);
    }
  }
}

void AsyncBatchQueue::Stop(bool drain) {
  // Paired with the queue's resolved model name (NOT the route key,
  // which may carry a rollout-arm prefix), so the failure response
  // keeps the "model is never empty" contract even for default-routed
  // requests.
  std::vector<std::pair<std::string, Pending>> abandoned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      if (!drain) {
        // Fail pending requests instead of scoring them; batches the
        // flusher already popped are in flight and still resolve with
        // scores.
        for (auto& [key, queue] : queues_) {
          for (Pending& pending : queue.pending) {
            abandoned.emplace_back(queue.model, std::move(pending));
          }
          queue.pending.clear();
          queue.pending_items = 0;
        }
        pending_total_ = 0;
      }
    }
  }
  cv_.notify_all();
  for (auto& [model, pending] : abandoned) {
    Reject(std::move(pending.promise),
           Status::Unavailable(
               "Submit: serving engine stopped before this request was "
               "scored"),
           pending.request.session_id, model);
  }
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& flusher : flushers_) {
    if (flusher.joinable()) flusher.join();
  }
}

int64_t AsyncBatchQueue::pending_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_total_;
}

}  // namespace awmoe
