#include "serving/two_stage.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/check.h"
#include "util/stopwatch.h"

namespace awmoe {

TwoStageRanker::TwoStageRanker(ServingEngine* engine, TwoStageOptions options)
    : engine_(engine), options_(std::move(options)) {
  AWMOE_CHECK(engine_ != nullptr) << "TwoStageRanker: null engine";
  AWMOE_CHECK(options_.top_k > 0) << "TwoStageRanker: top_k "
                                  << options_.top_k;
}

TwoStageResult TwoStageRanker::Rank(const RankRequest& request) {
  TwoStageResult result;
  const size_t n = request.items.size();

  // Stage 1: pointwise retrieval over the full candidate set.
  Stopwatch retrieve_watch;
  RankRequest retrieve = request;
  retrieve.model = options_.retrieval_model;
  RankResponse stage1 = engine_->Rank(retrieve);
  result.retrieve_ms = retrieve_watch.ElapsedMillis();
  if (!stage1.status.ok()) {
    result.status = stage1.status;
    return result;
  }
  result.retrieval_scores = stage1.scores;

  // Top-K selection, stable: descending retrieval score, ties by
  // ascending item index, so the slate order (= position embedding
  // input) is a deterministic function of the scores alone.
  std::vector<size_t> by_retrieval(n);
  std::iota(by_retrieval.begin(), by_retrieval.end(), size_t{0});
  std::stable_sort(by_retrieval.begin(), by_retrieval.end(),
                   [&](size_t a, size_t b) {
                     return result.retrieval_scores[a] >
                            result.retrieval_scores[b];
                   });
  const size_t k = std::min(static_cast<size_t>(options_.top_k), n);
  result.slate.assign(by_retrieval.begin(), by_retrieval.begin() + k);

  // Stage 2: the slate through the listwise model, one request = one
  // slate (the engine keeps it atomic in a single forward).
  Stopwatch rerank_watch;
  RankRequest rerank;
  rerank.session_id = request.session_id;
  rerank.model = options_.rerank_model;
  rerank.arm_policy = request.arm_policy;
  rerank.deadline_ms = request.deadline_ms;
  rerank.items.reserve(k);
  for (size_t idx : result.slate) rerank.items.push_back(request.items[idx]);
  RankResponse stage2 = engine_->Rank(rerank);
  result.rerank_ms = rerank_watch.ElapsedMillis();
  if (!stage2.status.ok()) {
    result.status = stage2.status;
    result.retrieval_scores.clear();
    result.slate.clear();
    return result;
  }
  result.rerank_scores = stage2.scores;

  // Blend: slate members get 1 + rerank score (both stages emit
  // sigmoids in (0, 1), so every slate member outranks every
  // non-member), the tail keeps its retrieval score.
  result.final_scores = result.retrieval_scores;
  for (size_t j = 0; j < k; ++j) {
    result.final_scores[result.slate[j]] = 1.0 + result.rerank_scores[j];
  }
  result.ranking.resize(n);
  std::iota(result.ranking.begin(), result.ranking.end(), size_t{0});
  std::stable_sort(result.ranking.begin(), result.ranking.end(),
                   [&](size_t a, size_t b) {
                     return result.final_scores[a] > result.final_scores[b];
                   });
  return result;
}

}  // namespace awmoe
