#include "serving/request.h"

#include <map>

namespace awmoe {

std::vector<std::vector<const Example*>> GroupBySession(
    const std::vector<Example>& examples) {
  std::map<int64_t, std::vector<const Example*>> by_id;
  for (const Example& ex : examples) {
    by_id[ex.session_id].push_back(&ex);
  }
  std::vector<std::vector<const Example*>> sessions;
  sessions.reserve(by_id.size());
  for (auto& [id, items] : by_id) sessions.push_back(std::move(items));
  return sessions;
}

std::vector<RankRequest> MakeSessionRequests(
    const std::vector<std::vector<const Example*>>& sessions,
    const std::string& model) {
  std::vector<RankRequest> requests;
  requests.reserve(sessions.size());
  for (const auto& session : sessions) {
    RankRequest request;
    request.session_id = session.empty() ? 0 : session[0]->session_id;
    request.model = model;
    request.items = session;
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace awmoe
