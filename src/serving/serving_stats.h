#ifndef AWMOE_SERVING_SERVING_STATS_H_
#define AWMOE_SERVING_SERVING_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/stopwatch.h"

namespace awmoe {

/// Counters of one published model version, split by replica lane.
struct ModelVersionStatsSnapshot {
  std::string model;
  int64_t version = 0;
  int64_t leases = 0;
  /// Leases per replica lane (index = lane). Sums to `leases`.
  std::vector<int64_t> lane_leases;
};

/// Point-in-time health of one model version — what a staged rollout's
/// gate (serving/rollout.h) compares between the stable and candidate
/// arms. Percentiles come from a SLIDING window of the newest
/// `ServingStats::kHealthWindow` latency samples for that version, so
/// they track how the version serves NOW (an early warm-up spike ages
/// out instead of poisoning the whole ramp); `requests`/`errors` are
/// lifetime-exact for the version.
struct VersionHealthSnapshot {
  std::string model;
  int64_t version = 0;
  int64_t requests = 0;
  int64_t errors = 0;
  /// errors / requests (0 when nothing recorded).
  double error_rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// Latency samples currently in the window (<= kHealthWindow).
  int64_t window = 0;

  /// Accuracy-drift evidence: shadow-scored sessions attributed to this
  /// version (via `ServingStats::RecordDriftSample`) and how many of
  /// them ENGAGED — a positive-labelled item surfaced in the version's
  /// top-K (a UCTR-style proxy). Lifetime-exact per version, like
  /// `requests`/`errors`; the rollout drift gate compares
  /// `drift_engaged_rate` between the candidate and stable arms.
  int64_t drift_sessions = 0;
  int64_t drift_engaged = 0;
  /// drift_engaged / drift_sessions (0 when nothing recorded).
  double drift_engaged_rate = 0.0;
};

/// Point-in-time view of the serving counters (safe to copy around and
/// print without holding any lock).
struct ServingStatsSnapshot {
  int64_t requests = 0;
  int64_t items = 0;
  double total_ms = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Completed requests per second of observed wall-clock, measured
  /// from the first recorded request (not construction) to the
  /// snapshot, so idle setup time does not dilute the number.
  double qps = 0.0;

  /// Forward passes executed (one per micro-batch). Occupancy —
  /// `mean_batch_requests` — is the cross-session amortisation factor:
  /// 1.0 means every request paid its own forward.
  int64_t batches = 0;
  double mean_batch_requests = 0.0;
  int64_t max_batch_requests = 0;
  double mean_batch_items = 0.0;

  /// Async front only: requests that went through the `Submit` queue,
  /// and how long they waited there before their flush started.
  int64_t queued_requests = 0;
  double queue_mean_ms = 0.0;
  double queue_max_ms = 0.0;

  /// §III-F gate LRU outcome counts (one lookup per request on the
  /// shared-gate path; a miss covers both cold and invalidated rows).
  int64_t gate_cache_hits = 0;
  int64_t gate_cache_misses = 0;

  /// Level-1 session score cache and level-2 session-encoding (feature
  /// store) lookup outcomes, one lookup per request on each enabled
  /// level. An invalidation is a lookup that found the session's entry
  /// stamped with an outdated context (its behaviour history changed)
  /// and evicted it; every invalidation also counts as a miss.
  int64_t score_cache_hits = 0;
  int64_t score_cache_misses = 0;
  int64_t score_cache_invalidations = 0;
  int64_t encoding_cache_hits = 0;
  int64_t encoding_cache_misses = 0;
  int64_t encoding_cache_invalidations = 0;

  /// End-to-end request latency split by level-1 outcome: the hit path
  /// skips collation, lane leasing and the forward pass entirely, and
  /// these two distributions quantify exactly what that buys (the
  /// bench gate asserts hit p99 < miss p99).
  double score_hit_p50_ms = 0.0;
  double score_hit_p99_ms = 0.0;
  double score_miss_p50_ms = 0.0;
  double score_miss_p99_ms = 0.0;

  /// Snapshot-scoped cache occupancy gauges (live entries / estimated
  /// resident bytes across the pool's published snapshots), filled by
  /// `ServingEngine::Stats` from the pool at snapshot time; MergeFrom
  /// sums them, so a fleet sink reports fleet-wide residency.
  int64_t score_cache_entries = 0;
  int64_t score_cache_bytes = 0;
  int64_t encoding_cache_entries = 0;
  int64_t encoding_cache_bytes = 0;
  int64_t gate_cache_entries = 0;
  int64_t gate_cache_bytes = 0;

  /// Slate-scoring (listwise) accounting: slates rerank-scored, their
  /// total candidate count, and a size-occupancy histogram (slate
  /// length <= 10 / <= 25 / <= 50 / > 50 candidates). All counters sum
  /// exactly through MergeFrom, so a fleet sink reports fleet-wide
  /// slate load.
  int64_t slates = 0;
  int64_t slate_items = 0;
  double mean_slate_items = 0.0;
  int64_t slates_le10 = 0;
  int64_t slates_le25 = 0;
  int64_t slates_le50 = 0;
  int64_t slates_gt50 = 0;

  /// Rerank-stage latency: one sample per slate-scoring forward pass
  /// (the lane critical section of a slate micro-batch — collation and
  /// response fan-out excluded). Percentiles come from the carried
  /// reservoir below, pooled exactly by MergeFrom like the others.
  double rerank_p50_ms = 0.0;
  double rerank_p99_ms = 0.0;
  std::vector<double> rerank_samples_ms;

  /// Replica-lane accounting: one lease is acquired per executed
  /// micro-batch. `mean/max_active_lanes` sample, at each acquire, how
  /// many of the snapshot's lanes were busy — >1 means forwards for one
  /// model genuinely overlapped on distinct replicas.
  int64_t snapshot_leases = 0;
  double mean_active_lanes = 0.0;
  int64_t max_active_lanes = 0;

  /// Versions published via `ModelPool::UpdateModel` over the pool's
  /// lifetime (filled by `ServingEngine::Stats` from the pool; 0 when
  /// snapshotting a bare ServingStats).
  int64_t model_swaps = 0;

  /// Engine-wide accuracy-drift totals (sum over all versions'
  /// drift counters, including trimmed ones). Unlike the per-version
  /// health windows these DO merge — MergeFrom sums them — so a fleet
  /// sink reports how much shadow-scoring evidence the fleet has seen.
  int64_t drift_sessions = 0;
  int64_t drift_engaged = 0;

  /// Per model-version lease counters, ordered by (model, version).
  std::vector<ModelVersionStatsSnapshot> versions;

  /// Per model-version health windows (see VersionHealthSnapshot),
  /// ordered by (model, version).
  std::vector<VersionHealthSnapshot> version_health;

  /// The retained latency reservoir, ascending-sorted — what the
  /// percentiles above were computed from. Carried so snapshots can be
  /// POOLED: `ServingStats::MergeFrom` concatenates the reservoirs of
  /// per-shard snapshots, which is the exact sample union (and thus
  /// yields exact merged percentiles) as long as every source stayed
  /// under kMaxSamples requests.
  std::vector<double> samples_ms;

  /// The score-cache hit/miss latency reservoirs behind the split
  /// percentiles above, ascending-sorted and carried for the same
  /// pooled-merge reason.
  std::vector<double> score_hit_samples_ms;
  std::vector<double> score_miss_samples_ms;

  /// Raw sums behind the means above, carried so a merge can re-derive
  /// the pooled means instead of averaging averages.
  int64_t batch_requests_total = 0;
  int64_t batch_items_total = 0;
  double queue_total_ms = 0.0;
  int64_t active_lanes_total = 0;

  /// Observed wall-clock window (seconds) behind `qps`; 0 before the
  /// first request. Merging takes the max across sources (concurrent
  /// shards share the wall), not the sum.
  double wall_seconds = 0.0;
};

/// One executed micro-batch's lease, as recorded into the stats.
struct LeaseSample {
  std::string model;
  int64_t version = 0;
  int replica = 0;
  int num_replicas = 1;
  /// Lanes of the snapshot active at acquire time (including this one).
  int active_lanes = 1;
  /// False for a micro-batch served ENTIRELY from the level-1 score
  /// cache: the snapshot was pinned (model/version above are real) but
  /// no replica lane was leased and no forward pass ran, so the batch
  /// and lease counters are skipped — only the per-request samples and
  /// the version health window are fed.
  bool lane_leased = true;
};

/// One request's contribution to a micro-batch stats record. The
/// session-cache lookup fields share one encoding: -1 no lookup, 0
/// miss, 1 hit, 2 stale (counted as a miss AND an invalidation).
struct RequestSample {
  int64_t items = 0;
  double latency_ms = 0.0;
  double queue_ms = -1.0;  // < 0: not an async (queued) request.
  int gate_lookup = -1;    // -1 no lookup, 0 cache miss, 1 cache hit.
  int score_lookup = -1;     // Level-1 score-cache outcome.
  int encoding_lookup = -1;  // Level-2 encoding-cache outcome.
};

/// Latency accounting for the serving engine. Unlike the old aggregate
/// counters (sessions/total_ms), per-request latency samples are kept,
/// so percentiles are exact (nearest-rank) up to kMaxSamples requests;
/// past that a uniform reservoir bounds memory and percentiles become
/// statistically representative estimates. Counts, totals and the mean
/// stay exact throughout. Thread-safe: engine workers record
/// concurrently.
class ServingStats {
 public:
  /// Samples retained for percentile computation.
  static constexpr int64_t kMaxSamples = 1 << 16;

  /// Per-model cap on retained version entries in the lease breakdown:
  /// under continuous hot swaps only the newest versions stay, so the
  /// stats map (copied on every Snapshot) cannot grow without bound.
  static constexpr int kMaxVersionsPerModel = 8;

  /// Sliding-window size of the per-version health percentiles (the
  /// rollout gate's p99 is computed over the newest kHealthWindow
  /// samples of each version).
  static constexpr int64_t kHealthWindow = 2048;

  ServingStats() = default;

  /// Records one completed request of `items` candidates.
  void RecordRequest(int64_t items, double latency_ms);

  /// Records one executed micro-batch (one forward pass) that carried
  /// `batch_requests` requests totalling `batch_items` candidates.
  void RecordBatch(int64_t batch_requests, int64_t batch_items);

  /// Records the time one async-submitted request spent queued before
  /// its flush started.
  void RecordQueueDelay(double delay_ms);

  /// Records one gate-LRU lookup outcome on the shared-gate path.
  void RecordGateLookup(bool hit);

  /// Records one level-1 score-cache lookup outcome (RequestSample
  /// encoding: 0 miss, 1 hit, 2 stale).
  void RecordScoreLookup(int outcome);

  /// Records one level-2 encoding-cache lookup outcome (same encoding).
  void RecordEncodingLookup(int outcome);

  /// Records one snapshot+replica lease (one per executed micro-batch).
  void RecordLease(const LeaseSample& lease);

  /// Records the rerank stage of one slate-scoring micro-batch: one
  /// size-histogram entry per slate in `slate_sizes` (the per-request
  /// candidate counts the forward scored atomically) plus the stage's
  /// forward latency into the rerank reservoir. One lock acquisition
  /// for the whole micro-batch, like RecordMicroBatch.
  void RecordSlateBatch(std::span<const int64_t> slate_sizes,
                        double rerank_ms);

  /// Records one request outcome into `(model, version)`'s health
  /// window: `ok` requests contribute their latency to the sliding
  /// percentile window, failed ones count toward the error rate the
  /// rollout gate checks. The engine feeds this per scored request (via
  /// RecordMicroBatch) and per serving-side async reject (backpressure
  /// / stopped, attributed to the routed arm's version by Submit); it
  /// is public so error paths outside the engine can attribute
  /// failures to a version directly.
  void RecordVersionSample(const std::string& model, int64_t version,
                           double latency_ms, bool ok);

  /// Records one shadow-scored session outcome into `(model,
  /// version)`'s drift counters: `engaged` is true when a
  /// positive-labelled item surfaced in the version's top-K for that
  /// session (UCTR-style engagement; see train/retrain_driver.h for
  /// the shadow-scoring loop that feeds this). Also bumps the
  /// engine-wide drift totals. Ignored per-version (totals still
  /// count) when the version is older than every retained one.
  void RecordDriftSample(const std::string& model, int64_t version,
                         bool engaged);

  /// Zeroes `(model, version)`'s drift counters (latency/error health
  /// and the engine-wide totals are untouched). The drift gate compares
  /// ENGAGEMENT RATES across arms, which is only fair over the same
  /// shadow population — the retrain driver calls this on the stable
  /// arm at the start of each round so a long-lived stable's evidence
  /// from earlier (differently difficult) windows does not skew the
  /// floor the fresh candidate must clear.
  void ResetDriftCounters(const std::string& model, int64_t version);

  int64_t drift_sessions() const;
  int64_t drift_engaged() const;

  /// The health window of `(model, version)`; zeros when that version
  /// has recorded nothing (or was trimmed as one of the oldest).
  VersionHealthSnapshot VersionHealth(const std::string& model,
                                      int64_t version) const;

  /// Records one executed micro-batch and all its requests under a
  /// SINGLE lock acquisition — what the scoring hot path uses instead
  /// of one Record* call per request (workers and the async flusher
  /// all contend on this mutex). Equivalent to RecordBatch +, per
  /// sample, RecordRequest / RecordQueueDelay (queue_ms >= 0) /
  /// RecordGateLookup (gate_lookup >= 0) / RecordScoreLookup /
  /// RecordEncodingLookup (each *_lookup >= 0), plus RecordLease when
  /// `lease` is non-null — in which case each sample's latency also
  /// lands in the lease's (model, version) health window (ok=true; the
  /// engine's scored path cannot fail). A lease with lane_leased ==
  /// false (micro-batch fully served from the score cache) skips the
  /// batch and lease counters: no forward pass ran. Samples with a
  /// score_lookup also land in the hit/miss split latency reservoirs.
  void RecordMicroBatch(int64_t batch_items,
                        const std::vector<RequestSample>& samples,
                        const LeaseSample* lease = nullptr);

  int64_t requests() const;
  /// Backward-compatible alias from the RankingService era, where one
  /// request always carried one session.
  int64_t sessions() const { return requests(); }
  int64_t items() const;
  double total_ms() const;

  /// Backward-compatible mean accessor (total latency / requests).
  double MeanSessionLatencyMs() const;

  /// Nearest-rank percentile over the retained samples (exact until
  /// kMaxSamples requests, reservoir-estimated beyond); `pct` in
  /// (0, 100]. Returns 0 when nothing has been recorded.
  double LatencyPercentileMs(double pct) const;

  int64_t batches() const;
  int64_t max_batch_requests() const;
  int64_t queued_requests() const;
  /// Total async queue delay (ms) across queued requests. Together with
  /// requests()/total_ms() this gives a cheap sliding SERVICE-time
  /// estimate — (total - queue) / requests over a counter delta —
  /// without paying for a full Snapshot (which copies the reservoir);
  /// the fleet admission controller refreshes its per-shard estimate
  /// from exactly these three counters.
  double queue_total_ms() const;
  int64_t gate_cache_hits() const;
  int64_t gate_cache_misses() const;
  int64_t score_cache_hits() const;
  int64_t score_cache_misses() const;
  int64_t score_cache_invalidations() const;
  int64_t encoding_cache_hits() const;
  int64_t encoding_cache_misses() const;
  int64_t encoding_cache_invalidations() const;
  int64_t snapshot_leases() const;
  int64_t max_active_lanes() const;
  int64_t slates() const;
  int64_t slate_items() const;

  ServingStatsSnapshot Snapshot() const;

  /// Folds another engine's snapshot into this stats object — the
  /// fleet-aggregation path (serving/shard.h): a fresh ServingStats is
  /// used as a sink, each shard's Snapshot() is merged in, and the
  /// sink's own Snapshot() then reports fleet-wide counters and EXACT
  /// pooled percentiles (the snapshot carries its latency reservoir;
  /// concatenation is the sample union while every source stayed under
  /// kMaxSamples). Counters and per-version lease breakdowns sum;
  /// max-fields take the max; the QPS wall-clock window takes the max
  /// of the sources (concurrent shards share the wall). Per-version
  /// HEALTH windows are not merged — a sliding window has no exact
  /// merge, and rollout health is gated per shard anyway.
  void MergeFrom(const ServingStatsSnapshot& other);

  /// Drops all samples and restarts the QPS wall-clock.
  void Reset();

 private:
  /// Per-version health accumulator: a circular buffer of the newest
  /// kHealthWindow ok-latencies plus lifetime request/error counts.
  struct HealthWindow {
    std::vector<double> ring;  // Capacity kHealthWindow, overwritten FIFO.
    size_t next = 0;           // Ring write cursor.
    int64_t requests = 0;
    int64_t errors = 0;
    /// Shadow-scored drift evidence (lifetime, like requests/errors).
    int64_t drift_sessions = 0;
    int64_t drift_engaged = 0;
  };

  // Unlocked cores of the Record* methods; caller holds mu_.
  void RecordRequestLocked(int64_t items, double latency_ms);
  void RecordBatchLocked(int64_t batch_requests, int64_t batch_items);
  void RecordQueueDelayLocked(double delay_ms);
  void RecordGateLookupLocked(bool hit);
  void RecordScoreLookupLocked(int outcome);
  void RecordEncodingLookupLocked(int outcome);
  void RecordLeaseLocked(const LeaseSample& lease);
  /// Reservoir append (Algorithm R, like the main reservoir) into one
  /// of the score-cache hit/miss split reservoirs; `count` is that
  /// reservoir's lifetime sample count, bumped here.
  void AppendSplitSampleLocked(std::vector<double>* reservoir,
                               int64_t* count, double latency_ms);
  /// Finds-or-creates (model, version)'s window, running the per-model
  /// trim on insert. Returns nullptr when the version is too old to
  /// track (a fresh insert below every retained version is itself what
  /// the trim would drop — e.g. a straggler lease on a long-retired
  /// snapshot); the pointer stays valid for the rest of the locked
  /// section otherwise (map nodes are stable).
  HealthWindow* HealthWindowLocked(const std::string& model, int64_t version);
  static void AppendHealthSampleLocked(HealthWindow* window,
                                       double latency_ms, bool ok);
  /// Builds the percentile view from a COPIED window — called outside
  /// mu_ so the O(N log N) sort never blocks the recording hot path.
  static VersionHealthSnapshot HealthSnapshotOf(const std::string& model,
                                                int64_t version,
                                                HealthWindow window);

  // One mutex guards every counter AND the latency reservoir: samples
  // are recorded concurrently by RankBatch worker threads and the async
  // flusher thread, so the reservoir (vector growth, slot overwrites,
  // the xorshift state) must never be touched outside mu_. The async
  // stress test asserts exact counts under contention and the TSan CI
  // job checks the locking.
  mutable std::mutex mu_;
  std::vector<double> samples_ms_;  // Reservoir, capped at kMaxSamples.
  int64_t requests_ = 0;
  int64_t items_ = 0;
  double total_ms_ = 0.0;
  int64_t batches_ = 0;
  int64_t batch_requests_ = 0;  // Sum over batches; occupancy numerator.
  int64_t batch_items_ = 0;
  int64_t max_batch_requests_ = 0;
  int64_t queued_requests_ = 0;
  double queue_total_ms_ = 0.0;
  double queue_max_ms_ = 0.0;
  int64_t gate_cache_hits_ = 0;
  int64_t gate_cache_misses_ = 0;
  int64_t score_cache_hits_ = 0;
  int64_t score_cache_misses_ = 0;
  int64_t score_cache_invalidations_ = 0;
  int64_t encoding_cache_hits_ = 0;
  int64_t encoding_cache_misses_ = 0;
  int64_t encoding_cache_invalidations_ = 0;
  /// Score-cache hit/miss split latency reservoirs, each capped at
  /// kMaxSamples with its own lifetime count driving Algorithm R.
  std::vector<double> score_hit_samples_ms_;
  int64_t score_hit_count_ = 0;
  std::vector<double> score_miss_samples_ms_;
  int64_t score_miss_count_ = 0;
  /// Cache occupancy gauges folded in via MergeFrom (a bare
  /// ServingStats never sets its own: the engine stamps live pool
  /// gauges onto its snapshot AFTER Snapshot(), so these only carry
  /// the summed gauges of merged-in shard snapshots).
  int64_t merged_score_cache_entries_ = 0;
  int64_t merged_score_cache_bytes_ = 0;
  int64_t merged_encoding_cache_entries_ = 0;
  int64_t merged_encoding_cache_bytes_ = 0;
  int64_t merged_gate_cache_entries_ = 0;
  int64_t merged_gate_cache_bytes_ = 0;
  /// Slate-scoring counters and the rerank-stage latency reservoir
  /// (capped at kMaxSamples with its own lifetime count, like the
  /// score-cache split reservoirs).
  int64_t slates_ = 0;
  int64_t slate_items_ = 0;
  int64_t slates_le10_ = 0;
  int64_t slates_le25_ = 0;
  int64_t slates_le50_ = 0;
  int64_t slates_gt50_ = 0;
  std::vector<double> rerank_samples_ms_;
  int64_t rerank_count_ = 0;
  int64_t snapshot_leases_ = 0;
  int64_t active_lanes_total_ = 0;  // Sum of per-lease samples; mean numerator.
  int64_t max_active_lanes_ = 0;
  /// Engine-wide drift totals (per-version counters live in the health
  /// windows; these survive version trims and merge across shards).
  int64_t drift_sessions_ = 0;
  int64_t drift_engaged_ = 0;
  /// Keyed by (model, version), so one model's versions are contiguous
  /// and ascending; lane_leases sized on first use per lane. Trimmed to
  /// the newest kMaxVersionsPerModel versions per model on insert.
  std::map<std::pair<std::string, int64_t>, std::vector<int64_t>>
      version_lane_leases_;
  /// Health windows, keyed and trimmed exactly like version_lane_leases_
  /// (newest kMaxVersionsPerModel versions per model survive).
  std::map<std::pair<std::string, int64_t>, HealthWindow> version_health_;
  uint64_t reservoir_rng_ = 0x9E3779B97F4A7C15ull;
  bool wall_started_ = false;  // Clock starts at the first request.
  double wall_offset_s_ = 0.0;  // First request's own service time.
  Stopwatch wall_;
  /// Largest wall window merged in via MergeFrom; the snapshot's QPS
  /// window is max(own wall, merged wall) so an idle aggregation sink
  /// reports the sources' observed window instead of 0.
  double merged_wall_s_ = 0.0;
};

}  // namespace awmoe

#endif  // AWMOE_SERVING_SERVING_STATS_H_
