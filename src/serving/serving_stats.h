#ifndef AWMOE_SERVING_SERVING_STATS_H_
#define AWMOE_SERVING_SERVING_STATS_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "util/stopwatch.h"

namespace awmoe {

/// Point-in-time view of the serving counters (safe to copy around and
/// print without holding any lock).
struct ServingStatsSnapshot {
  int64_t requests = 0;
  int64_t items = 0;
  double total_ms = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Completed requests per second of observed wall-clock, measured
  /// from the first recorded request (not construction) to the
  /// snapshot, so idle setup time does not dilute the number.
  double qps = 0.0;
};

/// Latency accounting for the serving engine. Unlike the old aggregate
/// counters (sessions/total_ms), per-request latency samples are kept,
/// so percentiles are exact (nearest-rank) up to kMaxSamples requests;
/// past that a uniform reservoir bounds memory and percentiles become
/// statistically representative estimates. Counts, totals and the mean
/// stay exact throughout. Thread-safe: engine workers record
/// concurrently.
class ServingStats {
 public:
  /// Samples retained for percentile computation.
  static constexpr int64_t kMaxSamples = 1 << 16;

  ServingStats() = default;

  /// Records one completed request of `items` candidates.
  void RecordRequest(int64_t items, double latency_ms);

  int64_t requests() const;
  /// Backward-compatible alias from the RankingService era, where one
  /// request always carried one session.
  int64_t sessions() const { return requests(); }
  int64_t items() const;
  double total_ms() const;

  /// Backward-compatible mean accessor (total latency / requests).
  double MeanSessionLatencyMs() const;

  /// Nearest-rank percentile over the retained samples (exact until
  /// kMaxSamples requests, reservoir-estimated beyond); `pct` in
  /// (0, 100]. Returns 0 when nothing has been recorded.
  double LatencyPercentileMs(double pct) const;

  ServingStatsSnapshot Snapshot() const;

  /// Drops all samples and restarts the QPS wall-clock.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_ms_;  // Reservoir, capped at kMaxSamples.
  int64_t requests_ = 0;
  int64_t items_ = 0;
  double total_ms_ = 0.0;
  uint64_t reservoir_rng_ = 0x9E3779B97F4A7C15ull;
  bool wall_started_ = false;  // Clock starts at the first request.
  double wall_offset_s_ = 0.0;  // First request's own service time.
  Stopwatch wall_;
};

}  // namespace awmoe

#endif  // AWMOE_SERVING_SERVING_STATS_H_
