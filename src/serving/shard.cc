#include "serving/shard.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "models/ranker.h"
#include "util/check.h"
#include "util/hash.h"

namespace awmoe {

// ---------------------------------------------------------------- ShardRouter

ShardRouter::ShardRouter(int vnodes_per_shard)
    : vnodes_per_shard_(vnodes_per_shard),
      ring_(std::make_shared<const Ring>()) {
  AWMOE_CHECK(vnodes_per_shard_ > 0)
      << "vnodes_per_shard " << vnodes_per_shard_;
}

uint64_t ShardRouter::SessionPoint(int64_t session_id) {
  return Mix64(static_cast<uint64_t>(session_id));
}

uint64_t ShardRouter::VnodePoint(int shard_id, int vnode) {
  uint64_t h = kFnv1a64Offset;
  h = Fnv1a64Mix(h, static_cast<uint64_t>(shard_id));
  h = Fnv1a64Mix(h, static_cast<uint64_t>(vnode));
  // FNV alone is weak in the high bits; the placement lookup compares
  // full 64-bit points, so finish with a full-avalanche mix.
  return Mix64(h);
}

std::shared_ptr<const ShardRouter::Ring> ShardRouter::RebuildLocked() const {
  auto ring = std::make_shared<Ring>();
  ring->reserve(shard_ids_.size() * static_cast<size_t>(vnodes_per_shard_));
  for (int shard : shard_ids_) {
    for (int vnode = 0; vnode < vnodes_per_shard_; ++vnode) {
      ring->push_back(Vnode{VnodePoint(shard, vnode), shard});
    }
  }
  // Tie-break on shard id so a (vanishingly unlikely) point collision
  // still orders deterministically.
  std::sort(ring->begin(), ring->end(), [](const Vnode& a, const Vnode& b) {
    return a.point != b.point ? a.point < b.point : a.shard < b.shard;
  });
  return ring;
}

void ShardRouter::AddShard(int shard_id) {
  std::lock_guard<std::mutex> lock(mu_);
  AWMOE_CHECK(std::find(shard_ids_.begin(), shard_ids_.end(), shard_id) ==
              shard_ids_.end())
      << "duplicate shard id " << shard_id;
  shard_ids_.push_back(shard_id);
  std::sort(shard_ids_.begin(), shard_ids_.end());
  ring_ = RebuildLocked();
}

bool ShardRouter::RemoveShard(int shard_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find(shard_ids_.begin(), shard_ids_.end(), shard_id);
  if (it == shard_ids_.end()) return false;
  shard_ids_.erase(it);
  ring_ = RebuildLocked();
  return true;
}

int ShardRouter::ShardFor(int64_t session_id) const {
  std::shared_ptr<const Ring> ring;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring = ring_;
  }
  AWMOE_CHECK(!ring->empty()) << "ShardFor on an empty ring";
  const uint64_t point = SessionPoint(session_id);
  // Clockwise successor: first vnode at or after the session's point,
  // wrapping to the ring's start past the top.
  auto it = std::lower_bound(
      ring->begin(), ring->end(), point,
      [](const Vnode& vnode, uint64_t p) { return vnode.point < p; });
  if (it == ring->end()) it = ring->begin();
  return it->shard;
}

bool ShardRouter::HasShard(int shard_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::find(shard_ids_.begin(), shard_ids_.end(), shard_id) !=
         shard_ids_.end();
}

int ShardRouter::num_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(shard_ids_.size());
}

std::vector<int> ShardRouter::shard_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shard_ids_;
}

// ------------------------------------------------------- AdmissionController

double MeanServiceEstimator::Update(int64_t requests, double service_ms) {
  const int64_t delta_requests = requests - last_requests_;
  if (delta_requests < 0 || service_ms < last_service_ms_) {
    // The counters moved backwards: the engine's stats were reset under
    // us. Resync the baseline so the NEXT window measures fresh deltas;
    // without this the old (higher) baseline could never be caught up
    // to and the estimate would stay frozen forever.
    last_requests_ = requests;
    last_service_ms_ = service_ms;
    return mean_ms_;
  }
  if (delta_requests == 0) {
    // Idle window: no completions to measure. Dividing would yield
    // NaN (0/0) or garbage; keep the last good estimate instead.
    return mean_ms_;
  }
  mean_ms_ = std::max(
      (service_ms - last_service_ms_) / static_cast<double>(delta_requests),
      0.0);
  last_requests_ = requests;
  last_service_ms_ = service_ms;
  return mean_ms_;
}

void MeanServiceEstimator::Reset() {
  last_requests_ = 0;
  last_service_ms_ = 0.0;
  mean_ms_ = 0.0;
}

double EstimateQueueDelayMs(const ShardLoad& load) {
  const int lanes = std::max(1, load.flush_lanes);
  return static_cast<double>(load.pending_requests) * load.mean_service_ms /
         static_cast<double>(lanes);
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  AWMOE_CHECK(options_.shed_window > 0)
      << "shed_window " << options_.shed_window;
  AWMOE_CHECK(options_.max_shed_rate >= 0.0 && options_.max_shed_rate <= 1.0)
      << "max_shed_rate " << options_.max_shed_rate;
  AWMOE_CHECK(options_.load_refresh_every > 0)
      << "load_refresh_every " << options_.load_refresh_every;
  AWMOE_CHECK(options_.estimate_safety > 0.0)
      << "estimate_safety " << options_.estimate_safety;
  window_.assign(static_cast<size_t>(options_.shed_window), 0);
}

AdmissionDecision AdmissionController::Decide(const ShardLoad& load,
                                              double deadline_ms) {
  if (!options_.enabled) {
    std::lock_guard<std::mutex> lock(mu_);
    ++admitted_;
    return AdmissionDecision::kAdmit;
  }
  const double deadline =
      deadline_ms > 0.0 ? deadline_ms : options_.default_deadline_ms;
  // The request's expected sojourn: drain the queue ahead of it, then
  // its own service time, widened by the safety multiplier (the raw
  // estimate cannot see the in-flight batch or the flush-timer wait).
  // Estimated BEFORE enqueueing, so a shed costs the caller
  // microseconds, not a blown deadline.
  const bool over =
      options_.estimate_safety *
          (EstimateQueueDelayMs(load) + load.mean_service_ms) >
      deadline;

  std::lock_guard<std::mutex> lock(mu_);
  AdmissionDecision decision = AdmissionDecision::kAdmit;
  if (over) {
    // The availability floor: once the sliding window already sheds at
    // max_shed_rate, admit over-deadline traffic as degraded instead —
    // an overloaded fleet serves slowly rather than going dark.
    const double rate =
        window_filled_ == 0
            ? 0.0
            : static_cast<double>(window_shed_) /
                  static_cast<double>(window_filled_);
    // max_shed_rate >= 1.0 disables the floor entirely (a fully-shed
    // window would otherwise reach rate == 1.0 and start degrading).
    decision = options_.max_shed_rate < 1.0 && rate >= options_.max_shed_rate
                   ? AdmissionDecision::kDegraded
                   : AdmissionDecision::kShed;
  }
  const uint8_t outcome = decision == AdmissionDecision::kShed ? 1 : 0;
  if (window_filled_ == static_cast<int64_t>(window_.size())) {
    window_shed_ -= window_[window_next_];
  } else {
    ++window_filled_;
  }
  window_shed_ += outcome;
  window_[window_next_] = outcome;
  window_next_ = (window_next_ + 1) % window_.size();
  switch (decision) {
    case AdmissionDecision::kAdmit:
      ++admitted_;
      break;
    case AdmissionDecision::kShed:
      ++shed_;
      break;
    case AdmissionDecision::kDegraded:
      ++degraded_;
      break;
  }
  return decision;
}

int64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

int64_t AdmissionController::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

int64_t AdmissionController::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

double AdmissionController::window_shed_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_filled_ == 0 ? 0.0
                             : static_cast<double>(window_shed_) /
                                   static_cast<double>(window_filled_);
}

void AdmissionController::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  admitted_ = 0;
  shed_ = 0;
  degraded_ = 0;
  std::fill(window_.begin(), window_.end(), 0);
  window_next_ = 0;
  window_filled_ = 0;
  window_shed_ = 0;
}

// ------------------------------------------------------- ShardedServingFleet

/// One shard: its own pool (replica lanes, gate caches), engine (async
/// queue, stats, rollout router) and admission state. The pool is
/// declared before the engine so the engine — which references the pool
/// — is destroyed first. Held by shared_ptr so an in-flight Submit that
/// copied the pointer keeps the shard alive across a concurrent
/// RemoveShard.
struct ShardedServingFleet::FleetShard {
  FleetShard(int shard_id, const DatasetMeta& meta,
             const Standardizer* standardizer, const FleetOptions& options)
      : id(shard_id),
        pool(std::make_unique<ModelPool>(meta, standardizer, options.pool)),
        engine(std::make_unique<ServingEngine>(pool.get(), options.engine)),
        admission(options.admission) {}

  const int id;
  std::unique_ptr<ModelPool> pool;
  std::unique_ptr<ServingEngine> engine;
  AdmissionController admission;

  /// Sliding service-time estimate (CurrentLoad): refreshed from the
  /// engine counters every load_refresh_every admission decisions. The
  /// estimator handles the idle-window / reset-counter edge cases
  /// (see MeanServiceEstimator in shard.h).
  std::mutex load_mu;
  int decisions_until_refresh = 0;
  MeanServiceEstimator service_estimate;
};

namespace {

/// Clones a fleet master model for one shard's pool; fleets require
/// clonable models (the whole point is N independent copies).
std::unique_ptr<Ranker> CloneMaster(const Ranker& master,
                                    const std::string& name) {
  std::unique_ptr<Ranker> clone = master.Clone();
  AWMOE_CHECK(clone != nullptr)
      << "fleet model '" << name
      << "' must support Ranker::Clone to fan out across shards";
  return clone;
}

}  // namespace

ShardedServingFleet::ShardedServingFleet(const DatasetMeta& meta,
                                         const Standardizer* standardizer,
                                         FleetOptions options)
    : options_(std::move(options)),
      meta_(meta),
      standardizer_(standardizer),
      router_(options_.vnodes_per_shard) {
  AWMOE_CHECK(options_.num_shards >= 1)
      << "num_shards " << options_.num_shards;
  std::lock_guard<std::mutex> lock(ops_mu_);
  for (int i = 0; i < options_.num_shards; ++i) AddShardLocked();
}

ShardedServingFleet::~ShardedServingFleet() { Stop(/*drain=*/true); }

int ShardedServingFleet::AddShardLocked() {
  const int id = next_shard_id_++;
  auto shard =
      std::make_shared<FleetShard>(id, meta_, standardizer_, options_);
  // Replay the fleet's publish history so the new shard's pool mints
  // the SAME version numbers as its siblings — stats and rollout health
  // key on (model, version). Stable lands at its fleet version;
  // stage-and-drop cycles burn through versions consumed by finished
  // rollouts (the pool's newest_version is a monotone high-water mark);
  // an active candidate is then re-staged at its exact fleet version.
  for (auto& [name, master] : masters_) {
    shard->pool->RegisterOwned(name, CloneMaster(*master.stable, name),
                               master.stable_version);
    const int64_t pre_stage_newest = master.candidate_version > 0
                                         ? master.candidate_version - 1
                                         : master.newest_version;
    for (int64_t v = master.stable_version; v < pre_stage_newest; ++v) {
      shard->pool->StageCandidate(name, CloneMaster(*master.stable, name));
      shard->pool->DropCandidate(name);
    }
    if (master.candidate_version > 0) {
      const int64_t staged =
          shard->pool->StageCandidate(name, CloneMaster(*master.candidate,
                                                        name));
      AWMOE_CHECK(staged == master.candidate_version)
          << "shard " << id << " staged '" << name << "' at v" << staged
          << ", fleet candidate is v" << master.candidate_version;
    }
    if (master.split_permille >= 0) {
      shard->engine->router()->SetSplit(name, master.split_permille);
    }
  }
  if (!default_model_.empty()) shard->pool->SetDefault(default_model_);
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards_.emplace(id, std::move(shard));
  }
  // Ring last: the shard only starts receiving sessions once it is
  // fully provisioned and findable in the map.
  router_.AddShard(id);
  return id;
}

int ShardedServingFleet::AddShard() {
  std::lock_guard<std::mutex> lock(ops_mu_);
  return AddShardLocked();
}

bool ShardedServingFleet::RemoveShard(int shard_id, bool drain) {
  std::lock_guard<std::mutex> ops(ops_mu_);
  std::shared_ptr<FleetShard> shard;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    auto it = shards_.find(shard_id);
    if (it == shards_.end()) return false;
    AWMOE_CHECK(shards_.size() > 1)
        << "removing shard " << shard_id << " would empty the fleet";
    shard = it->second;
  }
  // Ring FIRST, so no new session routes here; a Submit that read the
  // ring just before re-routes when the map lookup comes up empty (see
  // ShardForSessionPtr).
  router_.RemoveShard(shard_id);
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards_.erase(shard_id);
  }
  // Stop outside the locks: draining blocks until queued requests
  // finish. In-flight Submits holding the shared_ptr resolve normally
  // (or with kUnavailable once stopped); the shard frees when the last
  // reference drops.
  shard->engine->Stop(drain);
  return true;
}

void ShardedServingFleet::RegisterOwned(const std::string& name,
                                        std::unique_ptr<Ranker> model) {
  AWMOE_CHECK(model != nullptr) << "null model for '" << name << "'";
  std::lock_guard<std::mutex> lock(ops_mu_);
  AWMOE_CHECK(masters_.find(name) == masters_.end())
      << "duplicate fleet model '" << name << "'";
  for (const auto& shard : AllShards()) {
    shard->pool->RegisterOwned(name, CloneMaster(*model, name));
  }
  MasterModel master;
  master.stable = std::move(model);
  masters_.emplace(name, std::move(master));
  if (default_model_.empty()) default_model_ = name;
}

int64_t ShardedServingFleet::UpdateModel(const std::string& name,
                                         std::unique_ptr<Ranker> model) {
  AWMOE_CHECK(model != nullptr) << "null model for '" << name << "'";
  std::lock_guard<std::mutex> lock(ops_mu_);
  auto it = masters_.find(name);
  AWMOE_CHECK(it != masters_.end()) << "unknown fleet model '" << name << "'";
  AWMOE_CHECK(it->second.candidate_version == 0)
      << "candidate staged for '" << name
      << "': promote or drop the rollout before UpdateModel";
  int64_t version = 0;
  for (const auto& shard : AllShards()) {
    const int64_t v = shard->pool->UpdateModel(name, CloneMaster(*model, name));
    AWMOE_CHECK(version == 0 || version == v)
        << "version divergence publishing '" << name << "': v" << version
        << " vs v" << v << " on shard " << shard->id;
    version = v;
  }
  it->second.stable = std::move(model);
  it->second.stable_version = version;
  it->second.newest_version = version;
  return version;
}

int64_t ShardedServingFleet::StageCandidate(const std::string& name,
                                            std::unique_ptr<Ranker> model) {
  AWMOE_CHECK(model != nullptr) << "null model for '" << name << "'";
  std::lock_guard<std::mutex> lock(ops_mu_);
  auto it = masters_.find(name);
  AWMOE_CHECK(it != masters_.end()) << "unknown fleet model '" << name << "'";
  int64_t version = 0;
  for (const auto& shard : AllShards()) {
    const int64_t v =
        shard->pool->StageCandidate(name, CloneMaster(*model, name));
    AWMOE_CHECK(version == 0 || version == v)
        << "version divergence staging '" << name << "': v" << version
        << " vs v" << v << " on shard " << shard->id;
    version = v;
  }
  it->second.candidate = std::move(model);
  it->second.candidate_version = version;
  it->second.newest_version = version;
  return version;
}

int64_t ShardedServingFleet::PromoteCandidate(const std::string& name) {
  std::lock_guard<std::mutex> lock(ops_mu_);
  auto it = masters_.find(name);
  AWMOE_CHECK(it != masters_.end()) << "unknown fleet model '" << name << "'";
  AWMOE_CHECK(it->second.candidate_version > 0)
      << "no candidate staged for '" << name << "'";
  int64_t version = 0;
  for (const auto& shard : AllShards()) {
    const int64_t v = shard->pool->PromoteCandidate(name);
    AWMOE_CHECK(version == 0 || version == v)
        << "version divergence promoting '" << name << "'";
    version = v;
    shard->engine->router()->ClearSplit(name);
  }
  it->second.stable = std::move(it->second.candidate);
  it->second.stable_version = version;
  it->second.candidate_version = 0;
  it->second.split_permille = -1;
  return version;
}

bool ShardedServingFleet::DropCandidate(const std::string& name) {
  std::lock_guard<std::mutex> lock(ops_mu_);
  auto it = masters_.find(name);
  AWMOE_CHECK(it != masters_.end()) << "unknown fleet model '" << name << "'";
  if (it->second.candidate_version == 0) return false;
  for (const auto& shard : AllShards()) {
    shard->pool->DropCandidate(name);
    shard->engine->router()->ClearSplit(name);
  }
  it->second.candidate.reset();
  it->second.candidate_version = 0;  // newest_version keeps the high water.
  it->second.split_permille = -1;
  return true;
}

void ShardedServingFleet::SetSplit(const std::string& name, int permille) {
  std::lock_guard<std::mutex> lock(ops_mu_);
  auto it = masters_.find(name);
  AWMOE_CHECK(it != masters_.end()) << "unknown fleet model '" << name << "'";
  for (const auto& shard : AllShards()) {
    shard->engine->router()->SetSplit(name, permille);
  }
  it->second.split_permille = permille;
}

void ShardedServingFleet::ClearSplit(const std::string& name) {
  std::lock_guard<std::mutex> lock(ops_mu_);
  auto it = masters_.find(name);
  AWMOE_CHECK(it != masters_.end()) << "unknown fleet model '" << name << "'";
  for (const auto& shard : AllShards()) {
    shard->engine->router()->ClearSplit(name);
  }
  it->second.split_permille = -1;
}

std::shared_ptr<ShardedServingFleet::FleetShard> ShardedServingFleet::Shard(
    int shard_id) const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  auto it = shards_.find(shard_id);
  return it == shards_.end() ? nullptr : it->second;
}

std::shared_ptr<ShardedServingFleet::FleetShard>
ShardedServingFleet::ShardForSessionPtr(int64_t session_id) const {
  for (;;) {
    std::shared_ptr<FleetShard> shard = Shard(router_.ShardFor(session_id));
    if (shard != nullptr) return shard;
    // Raced a RemoveShard between the ring read and the map lookup; the
    // ring was already updated (RemoveShard orders it first), so the
    // retry resolves to a surviving shard.
  }
}

std::vector<std::shared_ptr<ShardedServingFleet::FleetShard>>
ShardedServingFleet::AllShards() const {
  std::vector<std::shared_ptr<FleetShard>> shards;
  std::lock_guard<std::mutex> lock(shards_mu_);
  shards.reserve(shards_.size());
  for (const auto& [id, shard] : shards_) shards.push_back(shard);
  return shards;
}

ShardLoad ShardedServingFleet::CurrentLoad(FleetShard* shard) const {
  ShardLoad load;
  load.pending_requests = shard->engine->pending_async_requests();
  load.flush_lanes = options_.engine.async_flush_lanes > 0
                         ? options_.engine.async_flush_lanes
                         : shard->pool->replicas();
  std::lock_guard<std::mutex> lock(shard->load_mu);
  if (--shard->decisions_until_refresh <= 0) {
    shard->decisions_until_refresh = options_.admission.load_refresh_every;
    const ServingStats& stats = shard->engine->stats();
    // Service time = sojourn minus queue wait: what one flush lane
    // spends per request, which is what sets the queue's drain rate.
    // Idle windows and reset counters are the estimator's problem.
    shard->service_estimate.Update(
        stats.requests(), stats.total_ms() - stats.queue_total_ms());
  }
  load.mean_service_ms = shard->service_estimate.estimate();
  return load;
}

RankResponse ShardedServingFleet::Rank(const RankRequest& request) {
  return ShardForSessionPtr(request.session_id)->engine->Rank(request);
}

std::future<RankResponse> ShardedServingFleet::Submit(RankRequest request) {
  std::shared_ptr<FleetShard> shard = ShardForSessionPtr(request.session_id);
  const ShardLoad load = CurrentLoad(shard.get());
  const AdmissionDecision decision =
      shard->admission.Decide(load, request.deadline_ms);
  if (decision == AdmissionDecision::kShed) {
    RankResponse response;
    response.session_id = request.session_id;
    response.model = shard->pool->ResolveName(request.model);
    const double deadline = request.deadline_ms > 0.0
                                ? request.deadline_ms
                                : options_.admission.default_deadline_ms;
    std::ostringstream msg;
    msg << "fleet admission: shard " << shard->id
        << " estimated queue delay " << EstimateQueueDelayMs(load)
        << " ms would blow the " << deadline << " ms deadline";
    response.status = Status::ResourceExhausted(msg.str());
    // Shed outcomes are NOT recorded into version health: shedding is a
    // load condition, not a model fault (a rollout gate must not count
    // overload against the candidate arm).
    std::promise<RankResponse> promise;
    promise.set_value(std::move(response));
    return promise.get_future();
  }
  return shard->engine->Submit(std::move(request));
}

FleetStats ShardedServingFleet::Stats() const {
  FleetStats fleet;
  ServingStats sink;  // MergeFrom aggregation sink (see serving_stats.h).
  int64_t max_requests = 0;
  int64_t total_requests = 0;
  int64_t model_swaps = 0;
  const auto shards = AllShards();
  for (const auto& shard : shards) {
    ShardStatsSnapshot snap;
    snap.shard_id = shard->id;
    snap.admitted = shard->admission.admitted();
    snap.shed = shard->admission.shed();
    snap.degraded = shard->admission.degraded();
    snap.pending_requests = shard->engine->pending_async_requests();
    {
      std::lock_guard<std::mutex> lock(shard->load_mu);
      snap.mean_service_ms = shard->service_estimate.estimate();
    }
    snap.engine = shard->engine->Stats();
    fleet.admitted += snap.admitted;
    fleet.shed += snap.shed;
    fleet.degraded += snap.degraded;
    max_requests = std::max(max_requests, snap.engine.requests);
    total_requests += snap.engine.requests;
    model_swaps = std::max(model_swaps, snap.engine.model_swaps);
    sink.MergeFrom(snap.engine);
    fleet.shards.push_back(std::move(snap));
  }
  fleet.merged = sink.Snapshot();
  // Fan-out repeats each publish on every shard: fleet-level swaps are
  // the max, not the sum.
  fleet.merged.model_swaps = model_swaps;
  const int64_t decisions = fleet.admitted + fleet.shed + fleet.degraded;
  if (decisions > 0) {
    fleet.shed_rate =
        static_cast<double>(fleet.shed) / static_cast<double>(decisions);
  }
  if (total_requests > 0 && !shards.empty()) {
    const double mean = static_cast<double>(total_requests) /
                        static_cast<double>(shards.size());
    fleet.imbalance = static_cast<double>(max_requests) / mean;
  }
  return fleet;
}

void ShardedServingFleet::ResetStats() {
  for (const auto& shard : AllShards()) {
    shard->engine->ResetStats();
    shard->admission.Reset();
    std::lock_guard<std::mutex> lock(shard->load_mu);
    shard->decisions_until_refresh = 0;
    shard->service_estimate.Reset();
  }
}

void ShardedServingFleet::Stop(bool drain) {
  for (const auto& shard : AllShards()) shard->engine->Stop(drain);
}

int64_t ShardedServingFleet::live_snapshots() const {
  int64_t live = 0;
  for (const auto& shard : AllShards()) live += shard->pool->live_snapshots();
  return live;
}

int ShardedServingFleet::num_shards() const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  return static_cast<int>(shards_.size());
}

std::vector<int> ShardedServingFleet::shard_ids() const {
  std::vector<int> ids;
  std::lock_guard<std::mutex> lock(shards_mu_);
  ids.reserve(shards_.size());
  for (const auto& [id, shard] : shards_) ids.push_back(id);
  return ids;
}

ServingEngine* ShardedServingFleet::engine(int shard_id) const {
  std::shared_ptr<FleetShard> shard = Shard(shard_id);
  return shard == nullptr ? nullptr : shard->engine.get();
}

ModelPool* ShardedServingFleet::pool(int shard_id) const {
  std::shared_ptr<FleetShard> shard = Shard(shard_id);
  return shard == nullptr ? nullptr : shard->pool.get();
}

const AdmissionController* ShardedServingFleet::admission(
    int shard_id) const {
  std::shared_ptr<FleetShard> shard = Shard(shard_id);
  return shard == nullptr ? nullptr : &shard->admission;
}

}  // namespace awmoe
