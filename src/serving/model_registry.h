#ifndef AWMOE_SERVING_MODEL_REGISTRY_H_
#define AWMOE_SERVING_MODEL_REGISTRY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/example.h"

namespace awmoe {

class Ranker;
class Standardizer;

/// Named ranking models behind one shared preprocessing context
/// (DatasetMeta + fitted Standardizer). The registry is the unit an
/// A/B experiment operates on: control and treatment are two names in
/// the same registry, served by the same engine with identical
/// collation, so score differences come only from the models.
///
/// Registration happens at startup; lookups afterwards are const and
/// thread-safe.
class ModelRegistry {
 public:
  /// `standardizer` may be null (raw features) and is not owned.
  ModelRegistry(const DatasetMeta& meta, const Standardizer* standardizer);

  /// Registers a non-owned model. The first registration becomes the
  /// default route. Names must be unique and non-empty.
  void Register(const std::string& name, Ranker* model);

  /// Registers a model the registry takes ownership of.
  void RegisterOwned(const std::string& name, std::unique_ptr<Ranker> model);

  /// Re-points the default route (name must be registered).
  void SetDefault(const std::string& name);

  /// The model registered under `name`, or nullptr when absent.
  Ranker* Find(const std::string& name) const;

  /// Resolves a request route: empty name -> default model. CHECK-fails
  /// on an unknown non-empty name or an empty registry.
  Ranker* Resolve(const std::string& name) const;

  /// The registry name `Resolve(name)` routes to.
  const std::string& ResolveName(const std::string& name) const;

  const std::string& default_model() const { return default_name_; }

  /// Registered names in registration order.
  const std::vector<std::string>& Names() const { return names_; }

  size_t size() const { return names_.size(); }

  const DatasetMeta& meta() const { return meta_; }
  const Standardizer* standardizer() const { return standardizer_; }

 private:
  struct Entry {
    Ranker* model = nullptr;
    std::unique_ptr<Ranker> owned;
  };

  void Insert(const std::string& name, Entry entry);

  DatasetMeta meta_;
  const Standardizer* standardizer_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, Entry> entries_;
  std::string default_name_;
};

}  // namespace awmoe

#endif  // AWMOE_SERVING_MODEL_REGISTRY_H_
