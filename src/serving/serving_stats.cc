#include "serving/serving_stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace awmoe {

namespace {

/// Nearest-rank percentile over an ascending-sorted sample vector: the
/// smallest sample with at least pct% of the mass at or below it.
double NearestRank(const std::vector<double>& sorted, double pct) {
  AWMOE_CHECK(pct > 0.0 && pct <= 100.0) << "percentile " << pct;
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(sorted.size())));
  rank = std::max<size_t>(rank, 1);
  return sorted[rank - 1];
}

}  // namespace

void ServingStats::RecordRequest(int64_t items, double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!wall_started_) {
    // The clock starts when serving starts, not at construction; this
    // is the first completion, so backdate by this request's latency to
    // include its service time in the QPS window.
    wall_.Restart();
    wall_started_ = true;
    wall_offset_s_ = latency_ms / 1e3;
  }
  ++requests_;
  items_ += items;
  total_ms_ += latency_ms;
  if (static_cast<int64_t>(samples_ms_.size()) < kMaxSamples) {
    samples_ms_.push_back(latency_ms);
    return;
  }
  // Reservoir sampling (Algorithm R): keep each of the `requests_`
  // samples with equal probability in O(kMaxSamples) memory.
  reservoir_rng_ ^= reservoir_rng_ << 13;
  reservoir_rng_ ^= reservoir_rng_ >> 7;
  reservoir_rng_ ^= reservoir_rng_ << 17;
  const uint64_t slot =
      reservoir_rng_ % static_cast<uint64_t>(requests_);
  if (slot < static_cast<uint64_t>(kMaxSamples)) {
    samples_ms_[static_cast<size_t>(slot)] = latency_ms;
  }
}

int64_t ServingStats::requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_;
}

int64_t ServingStats::items() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_;
}

double ServingStats::total_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ms_;
}

double ServingStats::MeanSessionLatencyMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_ == 0 ? 0.0 : total_ms_ / static_cast<double>(requests_);
}

double ServingStats::LatencyPercentileMs(double pct) const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = samples_ms_;
  }
  std::sort(sorted.begin(), sorted.end());
  return NearestRank(sorted, pct);
}

ServingStatsSnapshot ServingStats::Snapshot() const {
  ServingStatsSnapshot snap;
  std::vector<double> sorted;
  double elapsed = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.requests = requests_;
    snap.items = items_;
    snap.total_ms = total_ms_;
    if (requests_ > 0) {
      snap.mean_ms = total_ms_ / static_cast<double>(requests_);
    }
    sorted = samples_ms_;
    elapsed = wall_started_ ? wall_.ElapsedSeconds() + wall_offset_s_ : 0.0;
  }
  // Sort once outside the lock so concurrent RecordRequest callers are
  // not blocked behind an O(n log n) pass.
  std::sort(sorted.begin(), sorted.end());
  if (!sorted.empty()) {
    snap.p50_ms = NearestRank(sorted, 50.0);
    snap.p95_ms = NearestRank(sorted, 95.0);
    snap.p99_ms = NearestRank(sorted, 99.0);
  }
  if (elapsed > 0.0) {
    snap.qps = static_cast<double>(snap.requests) / elapsed;
  }
  return snap;
}

void ServingStats::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_ms_.clear();
  requests_ = 0;
  items_ = 0;
  total_ms_ = 0.0;
  wall_started_ = false;
  wall_offset_s_ = 0.0;
}

}  // namespace awmoe
