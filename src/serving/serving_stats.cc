#include "serving/serving_stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace awmoe {

namespace {

/// Nearest-rank percentile over an ascending-sorted sample vector: the
/// smallest sample with at least pct% of the mass at or below it.
double NearestRank(const std::vector<double>& sorted, double pct) {
  AWMOE_CHECK(pct > 0.0 && pct <= 100.0) << "percentile " << pct;
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(sorted.size())));
  rank = std::max<size_t>(rank, 1);
  return sorted[rank - 1];
}

/// Shared retention policy of the per-(model, version) maps (lease
/// breakdown and health windows): after `inserted` was added, drop
/// `model`'s oldest entries beyond `max_versions`. The map key orders
/// one model's entries by ascending version, so trimming drops from the
/// oldest end. Returns true when the just-inserted entry itself was the
/// oldest and got dropped — the caller must not touch it then.
template <typename Map>
bool TrimModelVersions(Map* map, const std::string& model,
                       typename Map::iterator inserted, int max_versions) {
  bool erased_inserted = false;
  auto first = map->lower_bound({model, 0});
  int count = 0;
  for (auto walk = first; walk != map->end() && walk->first.first == model;
       ++walk) {
    ++count;
  }
  while (count > max_versions && first != map->end() &&
         first->first.first == model) {
    if (first == inserted) erased_inserted = true;
    first = map->erase(first);
    --count;
  }
  return erased_inserted;
}

}  // namespace

void ServingStats::RecordRequest(int64_t items, double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordRequestLocked(items, latency_ms);
}

void ServingStats::RecordRequestLocked(int64_t items, double latency_ms) {
  if (!wall_started_) {
    // The clock starts when serving starts, not at construction; this
    // is the first completion, so backdate by this request's latency to
    // include its service time in the QPS window.
    wall_.Restart();
    wall_started_ = true;
    wall_offset_s_ = latency_ms / 1e3;
  }
  ++requests_;
  items_ += items;
  total_ms_ += latency_ms;
  if (static_cast<int64_t>(samples_ms_.size()) < kMaxSamples) {
    samples_ms_.push_back(latency_ms);
    return;
  }
  // Reservoir sampling (Algorithm R): keep each of the `requests_`
  // samples with equal probability in O(kMaxSamples) memory.
  reservoir_rng_ ^= reservoir_rng_ << 13;
  reservoir_rng_ ^= reservoir_rng_ >> 7;
  reservoir_rng_ ^= reservoir_rng_ << 17;
  const uint64_t slot =
      reservoir_rng_ % static_cast<uint64_t>(requests_);
  if (slot < static_cast<uint64_t>(kMaxSamples)) {
    samples_ms_[static_cast<size_t>(slot)] = latency_ms;
  }
}

void ServingStats::RecordBatch(int64_t batch_requests, int64_t batch_items) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordBatchLocked(batch_requests, batch_items);
}

void ServingStats::RecordBatchLocked(int64_t batch_requests,
                                     int64_t batch_items) {
  ++batches_;
  batch_requests_ += batch_requests;
  batch_items_ += batch_items;
  max_batch_requests_ = std::max(max_batch_requests_, batch_requests);
}

void ServingStats::RecordQueueDelay(double delay_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordQueueDelayLocked(delay_ms);
}

void ServingStats::RecordQueueDelayLocked(double delay_ms) {
  ++queued_requests_;
  queue_total_ms_ += delay_ms;
  queue_max_ms_ = std::max(queue_max_ms_, delay_ms);
}

void ServingStats::RecordGateLookup(bool hit) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordGateLookupLocked(hit);
}

void ServingStats::RecordGateLookupLocked(bool hit) {
  if (hit) {
    ++gate_cache_hits_;
  } else {
    ++gate_cache_misses_;
  }
}

void ServingStats::RecordScoreLookup(int outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordScoreLookupLocked(outcome);
}

void ServingStats::RecordScoreLookupLocked(int outcome) {
  if (outcome == 1) {
    ++score_cache_hits_;
  } else {
    ++score_cache_misses_;
    if (outcome == 2) ++score_cache_invalidations_;
  }
}

void ServingStats::RecordEncodingLookup(int outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordEncodingLookupLocked(outcome);
}

void ServingStats::RecordEncodingLookupLocked(int outcome) {
  if (outcome == 1) {
    ++encoding_cache_hits_;
  } else {
    ++encoding_cache_misses_;
    if (outcome == 2) ++encoding_cache_invalidations_;
  }
}

void ServingStats::AppendSplitSampleLocked(std::vector<double>* reservoir,
                                           int64_t* count,
                                           double latency_ms) {
  ++*count;
  if (static_cast<int64_t>(reservoir->size()) < kMaxSamples) {
    reservoir->push_back(latency_ms);
    return;
  }
  reservoir_rng_ ^= reservoir_rng_ << 13;
  reservoir_rng_ ^= reservoir_rng_ >> 7;
  reservoir_rng_ ^= reservoir_rng_ << 17;
  const uint64_t slot = reservoir_rng_ % static_cast<uint64_t>(*count);
  if (slot < static_cast<uint64_t>(kMaxSamples)) {
    (*reservoir)[static_cast<size_t>(slot)] = latency_ms;
  }
}

void ServingStats::RecordLease(const LeaseSample& lease) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordLeaseLocked(lease);
}

void ServingStats::RecordLeaseLocked(const LeaseSample& lease) {
  ++snapshot_leases_;
  active_lanes_total_ += lease.active_lanes;
  max_active_lanes_ =
      std::max(max_active_lanes_, static_cast<int64_t>(lease.active_lanes));
  auto [it, inserted] =
      version_lane_leases_.try_emplace({lease.model, lease.version});
  if (inserted &&
      TrimModelVersions(&version_lane_leases_, lease.model, it,
                        kMaxVersionsPerModel)) {
    // A lease on a version older than every retained one: refuse to
    // resurrect its entry (mirrors the health-window policy).
    return;
  }
  std::vector<int64_t>& lanes = it->second;
  if (static_cast<int>(lanes.size()) < lease.num_replicas) {
    lanes.resize(static_cast<size_t>(lease.num_replicas), 0);
  }
  ++lanes[static_cast<size_t>(lease.replica)];
}

void ServingStats::RecordSlateBatch(std::span<const int64_t> slate_sizes,
                                    double rerank_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int64_t size : slate_sizes) {
    ++slates_;
    slate_items_ += size;
    if (size <= 10) {
      ++slates_le10_;
    } else if (size <= 25) {
      ++slates_le25_;
    } else if (size <= 50) {
      ++slates_le50_;
    } else {
      ++slates_gt50_;
    }
  }
  AppendSplitSampleLocked(&rerank_samples_ms_, &rerank_count_, rerank_ms);
}

void ServingStats::RecordVersionSample(const std::string& model,
                                       int64_t version, double latency_ms,
                                       bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  HealthWindow* window = HealthWindowLocked(model, version);
  if (window != nullptr) AppendHealthSampleLocked(window, latency_ms, ok);
}

void ServingStats::RecordDriftSample(const std::string& model,
                                     int64_t version, bool engaged) {
  std::lock_guard<std::mutex> lock(mu_);
  ++drift_sessions_;
  if (engaged) ++drift_engaged_;
  HealthWindow* window = HealthWindowLocked(model, version);
  if (window == nullptr) return;  // Older than every retained version.
  ++window->drift_sessions;
  if (engaged) ++window->drift_engaged;
}

void ServingStats::ResetDriftCounters(const std::string& model,
                                      int64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = version_health_.find({model, version});
  if (it == version_health_.end()) return;
  it->second.drift_sessions = 0;
  it->second.drift_engaged = 0;
}

int64_t ServingStats::drift_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_sessions_;
}

int64_t ServingStats::drift_engaged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_engaged_;
}

ServingStats::HealthWindow* ServingStats::HealthWindowLocked(
    const std::string& model, int64_t version) {
  auto [it, inserted] = version_health_.try_emplace({model, version});
  if (inserted &&
      TrimModelVersions(&version_health_, model, it, kMaxVersionsPerModel)) {
    // The trim dropped the entry just inserted (a version older than
    // every retained one): the sample belongs to a window we refuse to
    // resurrect — report that instead of handing out a freed node.
    return nullptr;
  }
  return &it->second;
}

void ServingStats::AppendHealthSampleLocked(HealthWindow* window,
                                            double latency_ms, bool ok) {
  ++window->requests;
  if (!ok) {
    ++window->errors;
  } else if (static_cast<int64_t>(window->ring.size()) < kHealthWindow) {
    window->ring.push_back(latency_ms);
  } else {
    // Sliding window, not a reservoir: the rollout gate wants the
    // version's CURRENT tail, so the oldest sample is the one evicted.
    window->ring[window->next] = latency_ms;
    window->next = (window->next + 1) % static_cast<size_t>(kHealthWindow);
  }
}

VersionHealthSnapshot ServingStats::HealthSnapshotOf(const std::string& model,
                                                     int64_t version,
                                                     HealthWindow window) {
  VersionHealthSnapshot snap;
  snap.model = model;
  snap.version = version;
  snap.requests = window.requests;
  snap.errors = window.errors;
  if (window.requests > 0) {
    snap.error_rate = static_cast<double>(window.errors) /
                      static_cast<double>(window.requests);
  }
  snap.drift_sessions = window.drift_sessions;
  snap.drift_engaged = window.drift_engaged;
  if (window.drift_sessions > 0) {
    snap.drift_engaged_rate = static_cast<double>(window.drift_engaged) /
                              static_cast<double>(window.drift_sessions);
  }
  snap.window = static_cast<int64_t>(window.ring.size());
  if (!window.ring.empty()) {
    std::sort(window.ring.begin(), window.ring.end());
    snap.p50_ms = NearestRank(window.ring, 50.0);
    snap.p99_ms = NearestRank(window.ring, 99.0);
  }
  return snap;
}

VersionHealthSnapshot ServingStats::VersionHealth(const std::string& model,
                                                  int64_t version) const {
  HealthWindow copy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = version_health_.find({model, version});
    if (it != version_health_.end()) copy = it->second;
  }
  // Sort outside the lock (same pattern as LatencyPercentileMs): the
  // rollout gate polls this while workers record into the same mutex.
  return HealthSnapshotOf(model, version, std::move(copy));
}

void ServingStats::RecordMicroBatch(
    int64_t batch_items, const std::vector<RequestSample>& samples,
    const LeaseSample* lease) {
  std::lock_guard<std::mutex> lock(mu_);
  // A fully score-cache-served micro-batch leased no lane and ran no
  // forward pass: the batch (occupancy) and lease counters would
  // misreport it as compute.
  const bool forward_ran = lease == nullptr || lease->lane_leased;
  if (forward_ran) {
    RecordBatchLocked(static_cast<int64_t>(samples.size()), batch_items);
  }
  // One map probe for the whole micro-batch: every sample lands in the
  // same (model, version) health window as the shared lease.
  HealthWindow* health =
      lease == nullptr ? nullptr
                       : HealthWindowLocked(lease->model, lease->version);
  for (const RequestSample& sample : samples) {
    RecordRequestLocked(sample.items, sample.latency_ms);
    if (sample.queue_ms >= 0.0) RecordQueueDelayLocked(sample.queue_ms);
    if (sample.gate_lookup >= 0) RecordGateLookupLocked(sample.gate_lookup != 0);
    if (sample.score_lookup >= 0) {
      RecordScoreLookupLocked(sample.score_lookup);
      if (sample.score_lookup == 1) {
        AppendSplitSampleLocked(&score_hit_samples_ms_, &score_hit_count_,
                                sample.latency_ms);
      } else {
        AppendSplitSampleLocked(&score_miss_samples_ms_, &score_miss_count_,
                                sample.latency_ms);
      }
    }
    if (sample.encoding_lookup >= 0) {
      RecordEncodingLookupLocked(sample.encoding_lookup);
    }
    if (health != nullptr) {
      AppendHealthSampleLocked(health, sample.latency_ms, /*ok=*/true);
    }
  }
  if (lease != nullptr && lease->lane_leased) RecordLeaseLocked(*lease);
}

int64_t ServingStats::requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_;
}

int64_t ServingStats::items() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_;
}

double ServingStats::total_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ms_;
}

int64_t ServingStats::batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

int64_t ServingStats::max_batch_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_batch_requests_;
}

int64_t ServingStats::queued_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_requests_;
}

double ServingStats::queue_total_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_total_ms_;
}

int64_t ServingStats::gate_cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gate_cache_hits_;
}

int64_t ServingStats::gate_cache_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gate_cache_misses_;
}

int64_t ServingStats::score_cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return score_cache_hits_;
}

int64_t ServingStats::score_cache_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return score_cache_misses_;
}

int64_t ServingStats::score_cache_invalidations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return score_cache_invalidations_;
}

int64_t ServingStats::encoding_cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return encoding_cache_hits_;
}

int64_t ServingStats::encoding_cache_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return encoding_cache_misses_;
}

int64_t ServingStats::encoding_cache_invalidations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return encoding_cache_invalidations_;
}

int64_t ServingStats::snapshot_leases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_leases_;
}

int64_t ServingStats::max_active_lanes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_active_lanes_;
}

int64_t ServingStats::slates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slates_;
}

int64_t ServingStats::slate_items() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slate_items_;
}

double ServingStats::MeanSessionLatencyMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_ == 0 ? 0.0 : total_ms_ / static_cast<double>(requests_);
}

double ServingStats::LatencyPercentileMs(double pct) const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = samples_ms_;
  }
  std::sort(sorted.begin(), sorted.end());
  return NearestRank(sorted, pct);
}

ServingStatsSnapshot ServingStats::Snapshot() const {
  ServingStatsSnapshot snap;
  std::vector<double> sorted;
  std::vector<double> score_hit_sorted;
  std::vector<double> score_miss_sorted;
  std::vector<double> rerank_sorted;
  std::map<std::pair<std::string, int64_t>, HealthWindow> health;
  double elapsed = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.requests = requests_;
    snap.items = items_;
    snap.total_ms = total_ms_;
    if (requests_ > 0) {
      snap.mean_ms = total_ms_ / static_cast<double>(requests_);
    }
    snap.batches = batches_;
    if (batches_ > 0) {
      snap.mean_batch_requests =
          static_cast<double>(batch_requests_) / static_cast<double>(batches_);
      snap.mean_batch_items =
          static_cast<double>(batch_items_) / static_cast<double>(batches_);
    }
    snap.max_batch_requests = max_batch_requests_;
    snap.batch_requests_total = batch_requests_;
    snap.batch_items_total = batch_items_;
    snap.queued_requests = queued_requests_;
    if (queued_requests_ > 0) {
      snap.queue_mean_ms =
          queue_total_ms_ / static_cast<double>(queued_requests_);
    }
    snap.queue_max_ms = queue_max_ms_;
    snap.queue_total_ms = queue_total_ms_;
    snap.gate_cache_hits = gate_cache_hits_;
    snap.gate_cache_misses = gate_cache_misses_;
    snap.score_cache_hits = score_cache_hits_;
    snap.score_cache_misses = score_cache_misses_;
    snap.score_cache_invalidations = score_cache_invalidations_;
    snap.encoding_cache_hits = encoding_cache_hits_;
    snap.encoding_cache_misses = encoding_cache_misses_;
    snap.encoding_cache_invalidations = encoding_cache_invalidations_;
    snap.score_cache_entries = merged_score_cache_entries_;
    snap.score_cache_bytes = merged_score_cache_bytes_;
    snap.encoding_cache_entries = merged_encoding_cache_entries_;
    snap.encoding_cache_bytes = merged_encoding_cache_bytes_;
    snap.gate_cache_entries = merged_gate_cache_entries_;
    snap.gate_cache_bytes = merged_gate_cache_bytes_;
    score_hit_sorted = score_hit_samples_ms_;
    score_miss_sorted = score_miss_samples_ms_;
    snap.slates = slates_;
    snap.slate_items = slate_items_;
    if (slates_ > 0) {
      snap.mean_slate_items =
          static_cast<double>(slate_items_) / static_cast<double>(slates_);
    }
    snap.slates_le10 = slates_le10_;
    snap.slates_le25 = slates_le25_;
    snap.slates_le50 = slates_le50_;
    snap.slates_gt50 = slates_gt50_;
    rerank_sorted = rerank_samples_ms_;
    snap.snapshot_leases = snapshot_leases_;
    if (snapshot_leases_ > 0) {
      snap.mean_active_lanes = static_cast<double>(active_lanes_total_) /
                               static_cast<double>(snapshot_leases_);
    }
    snap.max_active_lanes = max_active_lanes_;
    snap.active_lanes_total = active_lanes_total_;
    snap.drift_sessions = drift_sessions_;
    snap.drift_engaged = drift_engaged_;
    for (const auto& [key, lanes] : version_lane_leases_) {
      ModelVersionStatsSnapshot version;
      version.model = key.first;
      version.version = key.second;
      version.lane_leases = lanes;
      for (int64_t count : lanes) version.leases += count;
      snap.versions.push_back(std::move(version));
    }
    health = version_health_;
    sorted = samples_ms_;
    elapsed = wall_started_ ? wall_.ElapsedSeconds() + wall_offset_s_ : 0.0;
    elapsed = std::max(elapsed, merged_wall_s_);
  }
  // Sort once outside the lock so concurrent RecordRequest callers are
  // not blocked behind an O(n log n) pass; same for the per-version
  // health windows, whose percentile sorts run on the copies.
  for (auto& [key, window] : health) {
    snap.version_health.push_back(
        HealthSnapshotOf(key.first, key.second, std::move(window)));
  }
  std::sort(sorted.begin(), sorted.end());
  if (!sorted.empty()) {
    snap.p50_ms = NearestRank(sorted, 50.0);
    snap.p95_ms = NearestRank(sorted, 95.0);
    snap.p99_ms = NearestRank(sorted, 99.0);
  }
  std::sort(score_hit_sorted.begin(), score_hit_sorted.end());
  if (!score_hit_sorted.empty()) {
    snap.score_hit_p50_ms = NearestRank(score_hit_sorted, 50.0);
    snap.score_hit_p99_ms = NearestRank(score_hit_sorted, 99.0);
  }
  std::sort(score_miss_sorted.begin(), score_miss_sorted.end());
  if (!score_miss_sorted.empty()) {
    snap.score_miss_p50_ms = NearestRank(score_miss_sorted, 50.0);
    snap.score_miss_p99_ms = NearestRank(score_miss_sorted, 99.0);
  }
  std::sort(rerank_sorted.begin(), rerank_sorted.end());
  if (!rerank_sorted.empty()) {
    snap.rerank_p50_ms = NearestRank(rerank_sorted, 50.0);
    snap.rerank_p99_ms = NearestRank(rerank_sorted, 99.0);
  }
  snap.wall_seconds = elapsed;
  if (elapsed > 0.0) {
    snap.qps = static_cast<double>(snap.requests) / elapsed;
  }
  snap.samples_ms = std::move(sorted);
  snap.score_hit_samples_ms = std::move(score_hit_sorted);
  snap.score_miss_samples_ms = std::move(score_miss_sorted);
  snap.rerank_samples_ms = std::move(rerank_sorted);
  return snap;
}

void ServingStats::MergeFrom(const ServingStatsSnapshot& other) {
  std::lock_guard<std::mutex> lock(mu_);
  requests_ += other.requests;
  items_ += other.items;
  total_ms_ += other.total_ms;
  batches_ += other.batches;
  batch_requests_ += other.batch_requests_total;
  batch_items_ += other.batch_items_total;
  max_batch_requests_ = std::max(max_batch_requests_, other.max_batch_requests);
  queued_requests_ += other.queued_requests;
  queue_total_ms_ += other.queue_total_ms;
  queue_max_ms_ = std::max(queue_max_ms_, other.queue_max_ms);
  gate_cache_hits_ += other.gate_cache_hits;
  gate_cache_misses_ += other.gate_cache_misses;
  score_cache_hits_ += other.score_cache_hits;
  score_cache_misses_ += other.score_cache_misses;
  score_cache_invalidations_ += other.score_cache_invalidations;
  encoding_cache_hits_ += other.encoding_cache_hits;
  encoding_cache_misses_ += other.encoding_cache_misses;
  encoding_cache_invalidations_ += other.encoding_cache_invalidations;
  // Occupancy gauges sum: each shard's snapshot carries its own pool's
  // live residency, so the sink reports fleet-wide bytes.
  merged_score_cache_entries_ += other.score_cache_entries;
  merged_score_cache_bytes_ += other.score_cache_bytes;
  merged_encoding_cache_entries_ += other.encoding_cache_entries;
  merged_encoding_cache_bytes_ += other.encoding_cache_bytes;
  merged_gate_cache_entries_ += other.gate_cache_entries;
  merged_gate_cache_bytes_ += other.gate_cache_bytes;
  // Pool the split reservoirs exactly like the main one below.
  score_hit_samples_ms_.insert(score_hit_samples_ms_.end(),
                               other.score_hit_samples_ms.begin(),
                               other.score_hit_samples_ms.end());
  score_hit_count_ +=
      static_cast<int64_t>(other.score_hit_samples_ms.size());
  score_miss_samples_ms_.insert(score_miss_samples_ms_.end(),
                                other.score_miss_samples_ms.begin(),
                                other.score_miss_samples_ms.end());
  score_miss_count_ +=
      static_cast<int64_t>(other.score_miss_samples_ms.size());
  // Slate counters sum exactly; the rerank reservoir pools like the
  // score-cache split ones (exact union under kMaxSamples per source).
  slates_ += other.slates;
  slate_items_ += other.slate_items;
  slates_le10_ += other.slates_le10;
  slates_le25_ += other.slates_le25;
  slates_le50_ += other.slates_le50;
  slates_gt50_ += other.slates_gt50;
  rerank_samples_ms_.insert(rerank_samples_ms_.end(),
                            other.rerank_samples_ms.begin(),
                            other.rerank_samples_ms.end());
  rerank_count_ += static_cast<int64_t>(other.rerank_samples_ms.size());
  snapshot_leases_ += other.snapshot_leases;
  active_lanes_total_ += other.active_lanes_total;
  max_active_lanes_ = std::max(max_active_lanes_, other.max_active_lanes);
  // Drift totals sum (per-version drift counters ride the health
  // windows and are, like them, deliberately not merged).
  drift_sessions_ += other.drift_sessions;
  drift_engaged_ += other.drift_engaged;
  // Pool the reservoirs. The concatenation may exceed kMaxSamples in an
  // aggregation sink — that is intentional (it IS the exact union);
  // RecordRequest's reservoir math only ever overwrites slots below
  // kMaxSamples, so an oversized vector stays safe if the sink later
  // records directly.
  samples_ms_.insert(samples_ms_.end(), other.samples_ms.begin(),
                     other.samples_ms.end());
  for (const ModelVersionStatsSnapshot& version : other.versions) {
    auto [it, inserted] =
        version_lane_leases_.try_emplace({version.model, version.version});
    if (inserted &&
        TrimModelVersions(&version_lane_leases_, version.model, it,
                          kMaxVersionsPerModel)) {
      continue;  // Older than every retained version of that model.
    }
    std::vector<int64_t>& lanes = it->second;
    if (lanes.size() < version.lane_leases.size()) {
      lanes.resize(version.lane_leases.size(), 0);
    }
    for (size_t lane = 0; lane < version.lane_leases.size(); ++lane) {
      lanes[lane] += version.lane_leases[lane];
    }
  }
  // Health windows are deliberately NOT merged (sliding windows have no
  // exact union); see the header comment.
  merged_wall_s_ = std::max(merged_wall_s_, other.wall_seconds);
}

void ServingStats::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_ms_.clear();
  requests_ = 0;
  items_ = 0;
  total_ms_ = 0.0;
  batches_ = 0;
  batch_requests_ = 0;
  batch_items_ = 0;
  max_batch_requests_ = 0;
  queued_requests_ = 0;
  queue_total_ms_ = 0.0;
  queue_max_ms_ = 0.0;
  gate_cache_hits_ = 0;
  gate_cache_misses_ = 0;
  score_cache_hits_ = 0;
  score_cache_misses_ = 0;
  score_cache_invalidations_ = 0;
  encoding_cache_hits_ = 0;
  encoding_cache_misses_ = 0;
  encoding_cache_invalidations_ = 0;
  score_hit_samples_ms_.clear();
  score_hit_count_ = 0;
  score_miss_samples_ms_.clear();
  score_miss_count_ = 0;
  slates_ = 0;
  slate_items_ = 0;
  slates_le10_ = 0;
  slates_le25_ = 0;
  slates_le50_ = 0;
  slates_gt50_ = 0;
  rerank_samples_ms_.clear();
  rerank_count_ = 0;
  merged_score_cache_entries_ = 0;
  merged_score_cache_bytes_ = 0;
  merged_encoding_cache_entries_ = 0;
  merged_encoding_cache_bytes_ = 0;
  merged_gate_cache_entries_ = 0;
  merged_gate_cache_bytes_ = 0;
  snapshot_leases_ = 0;
  active_lanes_total_ = 0;
  max_active_lanes_ = 0;
  drift_sessions_ = 0;
  drift_engaged_ = 0;
  version_lane_leases_.clear();
  version_health_.clear();
  wall_started_ = false;
  wall_offset_s_ = 0.0;
  merged_wall_s_ = 0.0;
}

}  // namespace awmoe
