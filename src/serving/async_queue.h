#ifndef AWMOE_SERVING_ASYNC_QUEUE_H_
#define AWMOE_SERVING_ASYNC_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serving/request.h"

namespace awmoe {

/// Flush policy of the async serving front (see ServingEngineOptions for
/// the user-facing knobs these are derived from).
struct AsyncQueueOptions {
  /// Flush a model's queue once its pending candidate count reaches
  /// this. A single oversized request still flushes alone (requests are
  /// never split).
  int64_t max_batch_candidates = 256;

  /// Flush a model's queue once its oldest pending request has waited
  /// this long, even if the candidate cap was not reached. This is the
  /// latency bound a lone request pays for the chance to be coalesced.
  std::chrono::microseconds max_queue_delay{2000};

  /// Backpressure: when this many requests are already queued (across
  /// all models, not yet handed to a flush), Submit fails the returned
  /// future immediately with kResourceExhausted instead of queueing.
  /// 0 = unbounded.
  int64_t max_pending_requests = 0;

  /// Flusher threads (lanes). One lane caps a hot model at one
  /// in-flight micro-batch; with N lanes, N batches can flush
  /// concurrently and land on N distinct replica lanes of the model's
  /// snapshot. Sized to the pool's replica count by the engine.
  int num_flush_lanes = 1;
};

/// Time-bounded micro-batch queue behind `ServingEngine::Submit`: a
/// producer/consumer stage that coalesces concurrently submitted
/// requests (per model) into batches and hands each batch to a flush
/// callback on a small pool of flusher threads (lanes). The queue owns
/// the promise side of every accepted request; the flush callback must
/// resolve every `Pending` it is given (the engine scores the batch in
/// one forward pass and fills each caller's slice). Rejected and
/// abandoned requests are resolved by the queue itself with a non-OK
/// `RankResponse::status`, so a returned future ALWAYS becomes ready —
/// no code path leaks a promise.
///
/// Thread-safety: Submit may be called from any number of threads.
/// Stop/destruction may race with Submit; a Submit that loses the race
/// resolves with kUnavailable. The flush callback runs on flusher
/// threads only, never under the queue lock, so it may block on replica
/// locks freely; with `num_flush_lanes > 1` it must itself be
/// thread-safe, since two lanes can flush (even for the same model)
/// concurrently.
class AsyncBatchQueue {
 public:
  /// One accepted request in flight: the caller's request, the promise
  /// its future came from, and when it entered the queue (for the
  /// queue-delay metric and the time-bound flush).
  struct Pending {
    RankRequest request;
    std::promise<RankResponse> promise;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  /// Receives one micro-batch — all requests share `route_key`, the
  /// opaque grouping key the caller submitted them under (for the
  /// engine: one resolved model name + one rollout arm, see
  /// EncodeRouteKey in serving/rollout.h) — and must resolve every
  /// promise in it.
  using FlushFn = std::function<void(const std::string& route_key,
                                     std::vector<Pending> batch)>;

  AsyncBatchQueue(AsyncQueueOptions options, FlushFn flush);

  /// Stops with drain=true: pending requests are still scored.
  ~AsyncBatchQueue();

  AsyncBatchQueue(const AsyncBatchQueue&) = delete;
  AsyncBatchQueue& operator=(const AsyncBatchQueue&) = delete;

  /// Enqueues a request routed at `resolved_model` (a concrete registry
  /// name; the caller resolves the default route) under `route_key`:
  /// requests sharing a key coalesce into one flush. The key defaults
  /// to the model name; the engine passes a (model, rollout arm) key so
  /// the two arms of a staged rollout never share a forward pass.
  /// Failure responses always report `resolved_model`, never the key.
  /// Returns a future that resolves when the request's micro-batch has
  /// been scored — or immediately with a non-OK status when the request
  /// is rejected (queue full, empty candidate list, queue stopped).
  /// When `sync_reject` is non-null it receives that immediate-reject
  /// status (OK when the request was accepted), so the caller can
  /// attribute the reject — e.g. to a rollout arm's health window —
  /// without consuming the future.
  std::future<RankResponse> Submit(RankRequest request,
                                   const std::string& resolved_model,
                                   const std::string& route_key,
                                   Status* sync_reject = nullptr);
  std::future<RankResponse> Submit(RankRequest request,
                                   const std::string& resolved_model);

  /// Stops accepting new requests and joins every flusher lane.
  /// drain=true flushes (scores) everything still queued; drain=false
  /// resolves pending requests with kUnavailable instead. Idempotent;
  /// the first call's drain mode wins.
  void Stop(bool drain);

  /// Requests currently queued (accepted, flush not started). Intended
  /// for tests and load probes; the value is stale by the time the
  /// caller reads it.
  int64_t pending_requests() const;

 private:
  struct ModelQueue {
    /// Display name for failure responses (the resolved model of the
    /// first request submitted under this key; keys map 1:1 to models).
    std::string model;
    std::deque<Pending> pending;
    int64_t pending_items = 0;
  };

  /// Pops up to max_batch_candidates items of whole requests (at least
  /// one request) from `queue`. Caller holds mu_.
  std::vector<Pending> PopBatchLocked(ModelQueue* queue);

  void FlusherLoop();

  const AsyncQueueOptions options_;
  const FlushFn flush_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, ModelQueue> queues_;
  int64_t pending_total_ = 0;
  bool stopping_ = false;

  // Serialises the join so concurrent Stop calls (e.g. an explicit Stop
  // racing the destructor) cannot both join a flusher lane.
  std::mutex join_mu_;
  std::vector<std::thread> flushers_;
};

}  // namespace awmoe

#endif  // AWMOE_SERVING_ASYNC_QUEUE_H_
