#ifndef AWMOE_SERVING_ROLLOUT_H_
#define AWMOE_SERVING_ROLLOUT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serving/request.h"

namespace awmoe {

class ModelPool;
class Ranker;
class ServingStats;

/// Deterministic sticky traffic splitter for staged rollouts. Every
/// session owns a fixed BUCKET in [0, 1000), computed by hashing
/// (model name, session id); a model with a configured split of `p`
/// permille routes sessions with bucket < p to the candidate arm and
/// the rest to stable. Consequences the rollout machinery depends on:
///
///  - STICKY: at a fixed split, repeat requests for a session always
///    land on the same arm — snapshot gate caches and the contrastive
///    session semantics stay coherent per arm.
///  - MONOTONE: raising the split only MOVES sessions stable ->
///    candidate, never back; a session granted the candidate keeps it
///    for the whole ramp (until promote folds the arms together or a
///    rollback sends everyone to stable).
///  - INDEPENDENT per model: the bucket mixes the model name, so two
///    concurrent rollouts on different models do not ramp the same
///    users in lockstep.
///
/// Route() is on the per-request hot path; with no split configured
/// anywhere it is a single relaxed atomic load, and with one it is a
/// short mutex-guarded map probe (cheap next to a forward pass — the
/// bench_serving_rollout overhead gate keeps it honest).
class TrafficRouter {
 public:
  /// Number of buckets sessions hash into; splits are expressed in
  /// permille (candidate share per 1000 sessions).
  static constexpr int kBuckets = 1000;

  /// Sets `model`'s candidate share in permille (0..1000). 0 keeps the
  /// route configured (every session stable) — distinct from ClearSplit,
  /// which removes the route entirely.
  void SetSplit(const std::string& model, int permille);

  /// Removes `model`'s route: all traffic stable, and when no model has
  /// a route the fast path is restored. No-op when not configured.
  void ClearSplit(const std::string& model);

  /// The configured split, or 0 when `model` has no route.
  int split_permille(const std::string& model) const;

  /// The arm `session_id` gets under `model`'s current split.
  RolloutArm Route(const std::string& model, int64_t session_id) const;

  /// The session's bucket in [0, kBuckets) under `model` — exposed so
  /// tests and replay harnesses can predict routing exactly.
  static int Bucket(const std::string& model, int64_t session_id);

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, int> splits_;
  /// Models with a configured route; 0 short-circuits Route().
  std::atomic<int64_t> active_routes_{0};
};

/// Encodes (model, arm) into the single string key the serving paths
/// group micro-batches by: the stable arm's key IS the model name
/// (zero-cost compatibility with every pre-rollout caller), the
/// candidate arm's key is the name behind a one-byte sentinel prefix.
std::string EncodeRouteKey(const std::string& model, RolloutArm arm);

/// Inverse of EncodeRouteKey.
std::pair<std::string, RolloutArm> DecodeRouteKey(const std::string& key);

/// Where a staged rollout stands.
enum class RolloutState {
  kIdle = 0,        // No candidate staged.
  kRamping = 1,     // Candidate live, walking the ramp schedule.
  kPromoted = 2,    // Candidate became stable; rollout done.
  kRolledBack = 3,  // Candidate dropped (health gate or operator).
};

std::string_view RolloutStateToString(RolloutState state);

/// Health gates and ramp schedule of a staged rollout.
struct RolloutOptions {
  /// Candidate traffic share walked stage by stage, in permille of
  /// sessions (default 1% -> 5% -> 25% -> 100%). Must be non-empty and
  /// strictly increasing; the last stage is evaluated like any other
  /// and a pass there promotes.
  std::vector<int> ramp_permille = {10, 50, 250, 1000};

  /// Candidate requests that must complete WITHIN the current stage
  /// before the health gate is evaluated — Advance() holds the stage
  /// until then, so a ramp can never promote on no evidence.
  int64_t min_stage_requests = 50;

  /// Health gate: candidate p99 must stay within
  ///   stable_p99 * max_p99_ratio + p99_slack_ms.
  /// The multiplicative term scales with model cost; the absolute slack
  /// keeps microsecond-scale latencies from flapping the gate.
  double max_p99_ratio = 1.5;
  double p99_slack_ms = 1.0;

  /// Health gate: the candidate's error/reject rate WITHIN the current
  /// stage (failed requests over requests since the stage opened, from
  /// the per-version health window) must not exceed this. Per-stage,
  /// not lifetime: a late-ramp failure burst must trip the gate even
  /// after thousands of healthy early-stage requests.
  double max_error_rate = 0.01;

  /// Accuracy-drift gate (UCTR-style), fed by shadow-scored sessions
  /// recorded through `ServingStats::RecordDriftSample` (see
  /// docs/training.md §Drift gate and train/retrain_driver.h for the
  /// shadow loop). 0 disables the gate — the default, so pure
  /// latency/error rollouts behave exactly as before. When > 0,
  /// Advance() additionally HOLDS each stage until both arms have at
  /// least this many drift sessions, then rolls back when the
  /// candidate's engaged rate falls below
  ///   stable_rate * (1 - max_engagement_drop) - engagement_slack.
  /// The relative term scales with how engaged the surface is; the
  /// absolute slack keeps low-traffic rates from flapping the gate.
  int64_t min_drift_sessions = 0;
  double max_engagement_drop = 0.05;
  double engagement_slack = 0.02;
};

/// Orchestrates one zero-downtime staged rollout of a model: stages the
/// candidate in the pool, opens the TrafficRouter at the first ramp
/// stage, and on every Advance() evaluates per-version health windows
/// (ServingStats) to either walk the next stage, PROMOTE at the end of
/// the ramp, or ROLL BACK the moment the candidate looks unhealthy.
/// Rollback is instant for new traffic (the router clears, the pool
/// drops the candidate) and graceful for in-flight traffic (candidate
/// leases finish on the dropped snapshot, which retires when they
/// drain).
///
/// The controller is deliberately tick-driven — the owner calls
/// Advance() on its own cadence (a timer, a replay loop, a test) — so
/// ramps are deterministic and testable instead of hiding a background
/// thread. All methods are thread-safe; Advance() and Rollback() may
/// race, first terminal transition wins.
class RolloutController {
 public:
  /// `pool`, `router`, and `stats` are not owned and must outlive the
  /// controller. `model` is a resolved pool name. Typical wiring:
  ///   RolloutController rollout(&pool, engine.router(), &engine.stats(),
  ///                             "aw-moe-cl", options);
  RolloutController(ModelPool* pool, TrafficRouter* router,
                    const ServingStats* stats, std::string model,
                    RolloutOptions options = {});

  RolloutController(const RolloutController&) = delete;
  RolloutController& operator=(const RolloutController&) = delete;

  /// Stages `candidate` as the next version and opens the router at the
  /// first ramp stage. Returns the candidate's version number.
  /// CHECK-fails when a ramp is already in progress; callable again
  /// after a promote or rollback (the next rollout).
  int64_t Begin(std::unique_ptr<Ranker> candidate);

  /// One health-gate tick. While ramping:
  ///  - holds the stage until `min_stage_requests` candidate requests
  ///    completed within it,
  ///  - rolls back immediately when the error-rate or p99 gate trips,
  ///  - otherwise advances to the next ramp stage, or — when the last
  ///    stage just passed — promotes the candidate to stable.
  /// Returns the state after the tick; a no-op outside kRamping.
  RolloutState Advance();

  /// Operator-forced rollback (also what the health gate calls): clears
  /// the router, drops the candidate, records `reason`. No-op unless
  /// ramping.
  RolloutState Rollback(const std::string& reason);

  RolloutState state() const;
  /// Current ramp stage index (into options().ramp_permille); -1 when
  /// not ramping.
  int stage() const;
  /// The router split this controller last configured (0 when idle or
  /// finished).
  int split_permille() const;
  int64_t candidate_version() const;
  int64_t stable_version() const;
  /// Human-readable verdict of the last Advance()/Rollback() — what the
  /// gate saw and what it decided (surfaced by the replay mode, the
  /// example, and the bench).
  std::string last_decision() const;

  const std::string& model() const { return model_; }
  const RolloutOptions& options() const { return options_; }

 private:
  /// Terminal rollback under mu_.
  void RollbackLocked(const std::string& reason);

  ModelPool* pool_;
  TrafficRouter* router_;
  const ServingStats* stats_;
  const std::string model_;
  const RolloutOptions options_;

  mutable std::mutex mu_;
  RolloutState state_ = RolloutState::kIdle;
  int stage_ = -1;
  int64_t candidate_version_ = 0;
  /// Candidate request/error counts (from its health window) when the
  /// current stage was entered: the evidence gate needs
  /// min_stage_requests on top, and the error gate judges only what
  /// happened within the stage.
  int64_t stage_entry_requests_ = 0;
  int64_t stage_entry_errors_ = 0;
  std::string last_decision_;
};

}  // namespace awmoe

#endif  // AWMOE_SERVING_ROLLOUT_H_
