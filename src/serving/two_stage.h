#ifndef AWMOE_SERVING_TWO_STAGE_H_
#define AWMOE_SERVING_TWO_STAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serving/request.h"
#include "serving/serving_engine.h"
#include "util/status.h"

namespace awmoe {

struct TwoStageOptions {
  /// Stage-1 pointwise model (empty = engine default): scores the full
  /// candidate set independently, cheap per candidate.
  std::string retrieval_model;
  /// Stage-2 slate-scoring model (must SupportsSlateScoring): re-scores
  /// the top-K jointly through slate self-attention.
  std::string rerank_model;
  /// Slate size: how many stage-1 winners stage 2 re-scores. Must not
  /// exceed the reranker's max_slate_len.
  int64_t top_k = 25;
};

/// Outcome of one two-stage ranking (see docs/reranking.md).
struct TwoStageResult {
  /// Non-OK when either stage failed; the score vectors are then empty.
  Status status;

  /// Stage-1 scores, aligned with the request's items.
  std::vector<double> retrieval_scores;

  /// Indices into the request's items that formed the rerank slate, in
  /// SLATE POSITION ORDER: descending retrieval score, ties broken by
  /// ascending item index (stable). The reranker's position embedding
  /// therefore encodes the retrieval rank — position 0 is stage 1's
  /// top pick.
  std::vector<size_t> slate;

  /// Stage-2 scores, aligned with `slate`.
  std::vector<double> rerank_scores;

  /// Blended per-item scores aligned with the request's items — ready
  /// for EvaluateRanking. Slate members carry 1 + rerank score, the
  /// rest their retrieval score; both stages emit sigmoids in (0, 1),
  /// so every slate member outranks every non-member and within each
  /// group the stage's own order decides. Sorting these descending
  /// yields the final ranking.
  std::vector<double> final_scores;

  /// Item indices best-first (final_scores descending, ties by
  /// ascending index): the slate reranked, then the retrieval tail.
  std::vector<size_t> ranking;

  /// Per-stage wall-clock, each an end-to-end engine Rank call.
  double retrieve_ms = 0.0;
  double rerank_ms = 0.0;
};

/// The retrieve -> rerank pipeline composed from two models behind one
/// serving engine: a pointwise stage-1 model prunes the candidate set
/// to a top-K slate, and a listwise stage-2 model re-scores that slate
/// jointly (each candidate's score aware of what it competes with).
/// Both stages go through the engine's full serving stack — routing,
/// micro-batching, caching (stage 2 bypasses the score cache by the
/// slate contract), stats — so pipeline latency decomposes into two
/// measured Rank calls. Stateless and cheap to copy; thread-safe to
/// the extent the engine is.
class TwoStageRanker {
 public:
  /// `engine` is not owned and must outlive the ranker.
  TwoStageRanker(ServingEngine* engine, TwoStageOptions options);

  /// Runs both stages for one request. `request.model` is ignored (the
  /// options name the models); requests with at most `top_k` items
  /// still run both stages — the slate is then the whole candidate set
  /// reordered by retrieval score.
  TwoStageResult Rank(const RankRequest& request);

  const TwoStageOptions& options() const { return options_; }

 private:
  ServingEngine* engine_;
  TwoStageOptions options_;
};

}  // namespace awmoe

#endif  // AWMOE_SERVING_TWO_STAGE_H_
