#include "serving/model_registry.h"

#include "models/ranker.h"
#include "util/check.h"

namespace awmoe {

ModelRegistry::ModelRegistry(const DatasetMeta& meta,
                             const Standardizer* standardizer)
    : meta_(meta), standardizer_(standardizer) {}

void ModelRegistry::Insert(const std::string& name, Entry entry) {
  AWMOE_CHECK(!name.empty()) << "model name must be non-empty";
  AWMOE_CHECK(entry.model != nullptr) << "null model for '" << name << "'";
  AWMOE_CHECK(entries_.find(name) == entries_.end())
      << "duplicate model name '" << name << "'";
  entries_.emplace(name, std::move(entry));
  names_.push_back(name);
  if (default_name_.empty()) default_name_ = name;
}

void ModelRegistry::Register(const std::string& name, Ranker* model) {
  Entry entry;
  entry.model = model;
  Insert(name, std::move(entry));
}

void ModelRegistry::RegisterOwned(const std::string& name,
                                  std::unique_ptr<Ranker> model) {
  Entry entry;
  entry.model = model.get();
  entry.owned = std::move(model);
  Insert(name, std::move(entry));
}

void ModelRegistry::SetDefault(const std::string& name) {
  AWMOE_CHECK(entries_.find(name) != entries_.end())
      << "unknown model '" << name << "'";
  default_name_ = name;
}

Ranker* ModelRegistry::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.model;
}

const std::string& ModelRegistry::ResolveName(const std::string& name) const {
  if (name.empty()) {
    AWMOE_CHECK(!default_name_.empty()) << "empty ModelRegistry";
    return default_name_;
  }
  auto it = entries_.find(name);
  AWMOE_CHECK(it != entries_.end()) << "unknown model '" << name << "'";
  // Return the stored key, never the argument: callers may pass a
  // temporary, and aliasing it would dangle.
  return it->first;
}

Ranker* ModelRegistry::Resolve(const std::string& name) const {
  return entries_.at(ResolveName(name)).model;
}

}  // namespace awmoe
