#ifndef AWMOE_SERVING_REQUEST_H_
#define AWMOE_SERVING_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/example.h"
#include "util/status.h"

namespace awmoe {

/// Which published snapshot of a model a request is served by during a
/// staged rollout: the stable (current production) version or the
/// candidate version being ramped. Outside a rollout only the stable
/// arm exists.
enum class RolloutArm { kStable = 0, kCandidate = 1 };

/// Per-request arm selection. The default routes through the engine's
/// `TrafficRouter` (deterministic sticky session-hash bucketing — see
/// serving/rollout.h); the force values pin the arm for diagnostics and
/// shadow reads. Forcing the candidate arm when no candidate is staged
/// serves the stable snapshot.
enum class ArmPolicy { kRouter = 0, kForceStable = 1, kForceCandidate = 2 };

/// One ranking request (Fig. 6 flow: query -> retrieve -> rank): the
/// candidate items retrieved for a single session, all sharing the same
/// user context and query. Items are not owned and must outlive the call.
struct RankRequest {
  int64_t session_id = 0;
  /// Registry name of the model to serve with; empty routes to the
  /// engine's default model. This is the A/B-test hook: the same engine
  /// instance serves every registered arm.
  std::string model;
  /// Staged-rollout arm selection (see ArmPolicy above).
  ArmPolicy arm_policy = ArmPolicy::kRouter;
  /// Latency budget in milliseconds, measured from submission. 0 = no
  /// deadline. A single engine ignores it; the sharded fleet's
  /// admission controller (serving/shard.h) SHEDS the request with
  /// kResourceExhausted when the target shard's estimated queue delay
  /// would already blow this budget — failing in microseconds instead
  /// of serving a response the caller has stopped waiting for.
  double deadline_ms = 0.0;
  std::vector<const Example*> items;
};

/// Scores for one request, aligned with `RankRequest::items`.
struct RankResponse {
  /// OK when `scores` is valid. The async `Submit` front resolves
  /// futures with a non-OK status instead of scores when a request is
  /// rejected (queue full -> kResourceExhausted, empty candidate list
  /// or a slate longer than a slate-scoring model's max slate length ->
  /// kInvalidArgument) or abandoned (engine stopped without drain ->
  /// kUnavailable). The synchronous path returns non-OK only for the
  /// oversized-slate rejection (`scores` stays empty); its other client
  /// errors CHECK-fail as before.
  Status status;
  int64_t session_id = 0;
  /// Resolved model name (never empty).
  std::string model;
  /// Version of the model snapshot that scored this request (1 = as
  /// registered; incremented by each `ModelPool::UpdateModel`). All
  /// scores in one response come from exactly one snapshot: the version
  /// current when the request's micro-batch acquired its lease — for
  /// async requests that is flush time, so a Submit racing a hot swap
  /// may legitimately report the newer version, but never a mix.
  int64_t model_version = 0;
  /// Rollout arm that actually served this request: kCandidate only
  /// when a candidate snapshot was staged AND (the router or a force
  /// policy) sent the session there. A request routed at a candidate
  /// that was dropped (rolled back) before its lease was acquired
  /// reports kStable — the arm it was really served by.
  RolloutArm arm = RolloutArm::kStable;
  /// Replica lane the forward ran on (0-based; informational). -1 when
  /// the request was served entirely from the snapshot's level-1 score
  /// cache: no lane was leased and no forward pass ran.
  int replica = 0;
  /// Sigmoid probabilities, one per candidate item.
  std::vector<double> scores;
  /// Wall-clock from request submission to scores ready. On the async
  /// path this includes `queue_ms`; on the synchronous path it is
  /// measured from `RankBatch` entry.
  double latency_ms = 0.0;
  /// Time the request spent in the async micro-batch queue before its
  /// flush started (0 on the synchronous path).
  double queue_ms = 0.0;
  /// True when the §III-F shared-gate path served this request.
  bool gate_shared = false;
  /// True when the session's gate came from the engine's gate cache
  /// (repeat request for a session, e.g. pagination) without re-running
  /// the gate network.
  bool gate_cache_hit = false;
  /// True when the whole request was served from the level-1 session
  /// score cache (exact repeat of a scored candidate set, unchanged
  /// behaviour history): scores are the cached ones, bitwise-equal to
  /// recompute, and `replica` is -1.
  bool score_cache_hit = false;
  /// True when the session's candidate-independent behaviour encoding
  /// came from the level-2 session feature store, so the forward ran
  /// only the candidate-dependent tail.
  bool encoding_cache_hit = false;
};

/// Groups a flat labelled split into per-session impression lists.
/// Within-session impression order is preserved; sessions are ordered by
/// ascending session id. An empty split yields an empty list.
std::vector<std::vector<const Example*>> GroupBySession(
    const std::vector<Example>& examples);

/// Wraps per-session item lists into requests routed at `model` (empty =
/// engine default). Session ids are taken from the first item.
std::vector<RankRequest> MakeSessionRequests(
    const std::vector<std::vector<const Example*>>& sessions,
    const std::string& model = "");

}  // namespace awmoe

#endif  // AWMOE_SERVING_REQUEST_H_
