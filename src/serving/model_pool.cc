#include "serving/model_pool.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>
#include <typeinfo>

#include "data/batcher.h"
#include "models/ranker.h"
#include "nn/inference.h"
#include "util/check.h"
#include "util/hash.h"

namespace awmoe {

namespace {

/// Per-entry bookkeeping overhead charged by the byte gauges on top of
/// the float/hash payload: list node + index node + the Entry struct
/// itself. An estimate (allocator slack is invisible), but a consistent
/// one, so capacity planning from the gauges errs on the small side by
/// a bounded constant per entry.
constexpr int64_t kCacheNodeOverheadBytes = 96;

/// Folds one variable-length section under a leading length tag, so two
/// records that differ only in where a section boundary falls can never
/// produce the same stream of mixed words.
template <typename Container, typename Word>
uint64_t MixSection(uint64_t h, const Container& values, Word to_word) {
  h = Fnv1a64Mix(h, static_cast<uint64_t>(values.size()));
  for (const auto& v : values) h = Fnv1a64Mix(h, to_word(v));
  return h;
}

uint64_t MixBehaviorSections(uint64_t h, const Example& ex) {
  auto id_word = [](int64_t v) { return static_cast<uint64_t>(v); };
  auto float_word = [](float f) {
    return static_cast<uint64_t>(std::bit_cast<uint32_t>(f));
  };
  h = MixSection(h, ex.behavior_items, id_word);
  h = MixSection(h, ex.behavior_cats, id_word);
  h = MixSection(h, ex.behavior_brands, id_word);
  h = MixSection(h, ex.behavior_attrs, float_word);
  return h;
}

}  // namespace

uint64_t GateContextHash(const Example& ex) {
  uint64_t h = kFnv1a64Offset;
  h = Fnv1a64Mix(h, static_cast<uint64_t>(ex.user_id));
  h = Fnv1a64Mix(h, static_cast<uint64_t>(ex.query_id));
  h = Fnv1a64Mix(h, static_cast<uint64_t>(ex.query_cat));
  return MixBehaviorSections(h, ex);
}

uint64_t SessionHistoryHash(const Example& ex) {
  uint64_t h = kFnv1a64Offset;
  h = Fnv1a64Mix(h, static_cast<uint64_t>(ex.user_id));
  h = Fnv1a64Mix(h, static_cast<uint64_t>(ex.age_segment));
  h = Fnv1a64Mix(h, static_cast<uint64_t>(ex.query_id));
  h = Fnv1a64Mix(h, static_cast<uint64_t>(ex.query_cat));
  return MixBehaviorSections(h, ex);
}

uint64_t CandidateScoreHash(const Example& ex) {
  // Session-constant inputs first, then every candidate-side field the
  // collated batch row carries. Equal hashes (modulo 64-bit collision)
  // mean equal rows mean bitwise-equal scores.
  uint64_t h = SessionHistoryHash(ex);
  h = Fnv1a64Mix(h, static_cast<uint64_t>(ex.target_item));
  h = Fnv1a64Mix(h, static_cast<uint64_t>(ex.target_cat));
  h = Fnv1a64Mix(h, static_cast<uint64_t>(ex.target_brand));
  h = Fnv1a64Mix(h, static_cast<uint64_t>(ex.target_shop));
  for (int64_t c = 0; c < Example::kItemAttrs; ++c) {
    h = Fnv1a64Mix(
        h, static_cast<uint64_t>(std::bit_cast<uint32_t>(ex.target_attrs[c])));
  }
  return MixSection(h, ex.numeric, [](float f) {
    return static_cast<uint64_t>(std::bit_cast<uint32_t>(f));
  });
}

// ---------------------------------------------------------------------
// SessionGateCache.
// ---------------------------------------------------------------------

CacheLookup SessionGateCache::Lookup(int64_t session_id,
                                     uint64_t context_hash,
                                     std::vector<float>* row) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(session_id);
  if (it == index_.end()) return CacheLookup::kMiss;
  if (it->second->context_hash != context_hash) {
    // Same session id, different gate inputs (e.g. the behaviour
    // sequence grew between pagination requests): drop the stale row so
    // the caller re-probes rather than serves it.
    bytes_ -= EntryBytes(*it->second);
    lru_.erase(it->second);
    index_.erase(it);
    return CacheLookup::kStale;
  }
  *row = it->second->row;
  lru_.splice(lru_.begin(), lru_, it->second);
  return CacheLookup::kHit;
}

void SessionGateCache::Put(int64_t session_id, uint64_t context_hash,
                           std::vector<float> row, int64_t capacity) {
  if (capacity <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(session_id);
  if (it != index_.end()) {
    // Keep at most one cached row per session id.
    bytes_ -= EntryBytes(*it->second);
    lru_.erase(it->second);
    index_.erase(it);
  }
  Entry entry;
  entry.session_id = session_id;
  entry.context_hash = context_hash;
  entry.row = std::move(row);
  bytes_ += EntryBytes(entry);
  lru_.push_front(std::move(entry));
  index_[session_id] = lru_.begin();
  while (static_cast<int64_t>(lru_.size()) > capacity) {
    bytes_ -= EntryBytes(lru_.back());
    index_.erase(lru_.back().session_id);
    lru_.pop_back();
  }
}

int64_t SessionGateCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(lru_.size());
}

int64_t SessionGateCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int64_t SessionGateCache::EntryBytes(const Entry& entry) const {
  return static_cast<int64_t>(sizeof(Entry)) + kCacheNodeOverheadBytes +
         static_cast<int64_t>(entry.row.capacity() * sizeof(float));
}

// ---------------------------------------------------------------------
// SessionScoreCache.
// ---------------------------------------------------------------------

CacheLookup SessionScoreCache::Lookup(
    int64_t session_id, uint64_t set_hash, uint64_t history_hash,
    const std::vector<uint64_t>& item_hashes, std::span<float> out) {
  AWMOE_CHECK(out.size() >= item_hashes.size())
      << "score-cache output span " << out.size() << " for "
      << item_hashes.size() << " candidates";
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(Key{session_id, set_hash});
  if (it == index_.end()) {
    // No entry under this exact candidate set — but if the session's
    // OTHER entries carry an outdated history stamp (one stamp per
    // session, so checking the first suffices; ordered keys keep a
    // session contiguous), the user's history moved on: drop them all
    // NOW rather than letting stale pages linger until LRU eviction.
    auto first = index_.lower_bound(Key{session_id, 0});
    if (first != index_.end() && first->first.first == session_id &&
        first->second->history_hash != history_hash) {
      EraseSessionLocked(session_id);
      return CacheLookup::kStale;
    }
    return CacheLookup::kMiss;
  }
  Entry& entry = *it->second;
  if (entry.history_hash != history_hash) {
    // The session's behaviour history moved on since these scores were
    // computed. Put() keeps all of a session's entries on ONE history
    // stamp, so everything cached for the session is equally stale.
    EraseSessionLocked(session_id);
    return CacheLookup::kStale;
  }
  // Fill by per-candidate content hash (stored sorted): this both
  // recovers the request's candidate order and verifies the entry
  // really describes these candidates — a set-hash collision fails the
  // match and falls through to a miss.
  for (size_t j = 0; j < item_hashes.size(); ++j) {
    auto pos = std::lower_bound(entry.item_hashes.begin(),
                                entry.item_hashes.end(), item_hashes[j]);
    if (pos == entry.item_hashes.end() || *pos != item_hashes[j]) {
      return CacheLookup::kMiss;
    }
    out[j] = entry.scores[static_cast<size_t>(
        pos - entry.item_hashes.begin())];
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return CacheLookup::kHit;
}

void SessionScoreCache::Put(int64_t session_id, uint64_t set_hash,
                            uint64_t history_hash,
                            const std::vector<uint64_t>& item_hashes,
                            const std::vector<float>& scores,
                            int64_t capacity) {
  if (capacity <= 0) return;
  AWMOE_CHECK(item_hashes.size() == scores.size())
      << "score-cache put: " << item_hashes.size() << " hashes for "
      << scores.size() << " scores";
  // Sort (hash, score) pairs by hash so Lookup can binary-search.
  // Duplicate hashes are fine: duplicates have identical content, hence
  // identical scores, so which one a lookup lands on cannot matter.
  std::vector<size_t> order(item_hashes.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return item_hashes[a] < item_hashes[b];
  });
  Entry entry;
  entry.key = Key{session_id, set_hash};
  entry.history_hash = history_hash;
  entry.item_hashes.reserve(order.size());
  entry.scores.reserve(order.size());
  for (size_t idx : order) {
    entry.item_hashes.push_back(item_hashes[idx]);
    entry.scores.push_back(scores[idx]);
  }

  std::lock_guard<std::mutex> lock(mu_);
  // Invariant: all live entries of a session share one history stamp.
  // A Put under a new history evicts the session's stale entries even
  // when no Lookup ever touched them.
  auto it = index_.lower_bound(Key{session_id, 0});
  while (it != index_.end() && it->first.first == session_id) {
    if (it->second->history_hash != history_hash ||
        it->first.second == set_hash) {
      bytes_ -= EntryBytes(*it->second);
      lru_.erase(it->second);
      it = index_.erase(it);
    } else {
      ++it;
    }
  }
  bytes_ += EntryBytes(entry);
  const Key key = entry.key;
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  while (static_cast<int64_t>(lru_.size()) > capacity) {
    bytes_ -= EntryBytes(lru_.back());
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

int64_t SessionScoreCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(lru_.size());
}

int64_t SessionScoreCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int64_t SessionScoreCache::EntryBytes(const Entry& entry) const {
  return static_cast<int64_t>(sizeof(Entry)) + kCacheNodeOverheadBytes +
         static_cast<int64_t>(entry.item_hashes.capacity() *
                              sizeof(uint64_t)) +
         static_cast<int64_t>(entry.scores.capacity() * sizeof(float));
}

void SessionScoreCache::EraseSessionLocked(int64_t session_id) {
  auto it = index_.lower_bound(Key{session_id, 0});
  while (it != index_.end() && it->first.first == session_id) {
    bytes_ -= EntryBytes(*it->second);
    lru_.erase(it->second);
    it = index_.erase(it);
  }
}

// ---------------------------------------------------------------------
// ReplicaLane.
// ---------------------------------------------------------------------

InferenceWorkspace* ReplicaLane::EnsureWorkspace(int64_t min_candidates) {
  if (workspace == nullptr || workspace->max_candidates() < min_candidates) {
    workspace = model->CreateInferenceWorkspace(min_candidates);
  }
  return workspace.get();
}

// ---------------------------------------------------------------------
// ModelSnapshot.
// ---------------------------------------------------------------------

ModelSnapshot::ModelSnapshot(
    std::string name, int64_t version, Ranker* base,
    std::unique_ptr<Ranker> owned_base, int replicas,
    const DatasetMeta& meta,
    std::shared_ptr<std::atomic<int64_t>> live_counter)
    : name_(std::move(name)),
      version_(version),
      live_counter_(std::move(live_counter)) {
  AWMOE_CHECK(base != nullptr) << "null model for '" << name_ << "'";
  AWMOE_CHECK(replicas >= 1) << "replicas " << replicas;
  // Eligibility comes from the Ranker API alone (no downcast): any
  // model declaring a session-constant gate of non-zero width serves
  // the shared-gate path through GateInto / ScoreInto's gate argument.
  gate_width_ = base->SessionGateWidth();
  gate_shareable_ = base->SupportsSessionGateReuse(meta) && gate_width_ > 0;
  if (!gate_shareable_) gate_width_ = 0;
  // Same declaration pattern for the session feature store: a model
  // with a candidate-independent behaviour encoding serves the split
  // EncodeSessionInto / ScoreWithSessionInto path.
  encoding_width_ = base->SessionEncodingWidth();
  encoding_shareable_ =
      base->SupportsSessionEncodingReuse(meta) && encoding_width_ > 0;
  if (!encoding_shareable_) encoding_width_ = 0;
  // Listwise capability, same publish-time pattern: the engine reads
  // this flag to keep request slates atomic and bypass the score cache.
  slate_scoring_ = base->SupportsSlateScoring();
  max_slate_items_ = slate_scoring_ ? base->MaxSlateItems() : 0;

  auto lane0 = std::make_unique<ReplicaLane>();
  lane0->model = base;
  lane0->owned = std::move(owned_base);
  lanes_.push_back(std::move(lane0));

  for (int r = 1; r < replicas; ++r) {
    std::unique_ptr<Ranker> clone = base->Clone();
    // Not cloneable: serve single-lane. The typeid guard catches a
    // subclass inheriting its base's Clone(): such a "clone" is a
    // different model (sliced overrides), and serving it on lanes
    // 1..N-1 would make scores depend on lane assignment.
    if (clone == nullptr || typeid(*clone) != typeid(*base)) break;
    auto lane = std::make_unique<ReplicaLane>();
    lane->model = clone.get();
    lane->owned = std::move(clone);
    lanes_.push_back(std::move(lane));
  }
  if (live_counter_ != nullptr) live_counter_->fetch_add(1);
}

ModelSnapshot::~ModelSnapshot() {
  if (live_counter_ != nullptr) live_counter_->fetch_sub(1);
}

CacheUsage ModelSnapshot::cache_usage() const {
  CacheUsage usage;
  usage.score_entries = score_cache_.size();
  usage.score_bytes = score_cache_.bytes();
  usage.encoding_entries = encoding_cache_.size();
  usage.encoding_bytes = encoding_cache_.bytes();
  usage.gate_entries = gate_cache_.size();
  usage.gate_bytes = gate_cache_.bytes();
  return usage;
}

int ModelSnapshot::ActiveLanes() const {
  int active = 0;
  for (const auto& lane : lanes_) {
    if (lane->active.load(std::memory_order_relaxed) > 0) ++active;
  }
  return active;
}

// ---------------------------------------------------------------------
// SnapshotLease.
// ---------------------------------------------------------------------

SnapshotLease::SnapshotLease(std::shared_ptr<const ModelSnapshot> snapshot,
                             int replica, int active_lanes, RolloutArm arm)
    : snapshot_(std::move(snapshot)),
      replica_(replica),
      active_lanes_(active_lanes),
      arm_(arm) {}

SnapshotLease::~SnapshotLease() { Release(); }

SnapshotLease::SnapshotLease(SnapshotLease&& other) noexcept
    : snapshot_(std::move(other.snapshot_)),
      replica_(other.replica_),
      active_lanes_(other.active_lanes_),
      arm_(other.arm_) {
  other.snapshot_ = nullptr;
}

SnapshotLease& SnapshotLease::operator=(SnapshotLease&& other) noexcept {
  if (this != &other) {
    Release();
    snapshot_ = std::move(other.snapshot_);
    replica_ = other.replica_;
    active_lanes_ = other.active_lanes_;
    arm_ = other.arm_;
    other.snapshot_ = nullptr;
  }
  return *this;
}

void SnapshotLease::Release() {
  if (snapshot_ != nullptr) {
    snapshot_->lane(replica_).active.fetch_sub(1);
    snapshot_ = nullptr;
  }
}

// ---------------------------------------------------------------------
// ModelPool.
// ---------------------------------------------------------------------

ModelPool::ModelPool(const DatasetMeta& meta,
                     const Standardizer* standardizer,
                     ModelPoolOptions options)
    : meta_(meta),
      standardizer_(standardizer),
      options_(options),
      live_snapshots_(std::make_shared<std::atomic<int64_t>>(0)) {
  AWMOE_CHECK(options_.replicas >= 1)
      << "ModelPool: replicas " << options_.replicas;
}

std::shared_ptr<const ModelSnapshot> ModelPool::MakeSnapshot(
    const std::string& name, int64_t version, Ranker* base,
    std::unique_ptr<Ranker> owned_base) const {
  return std::make_shared<const ModelSnapshot>(
      name, version, base, std::move(owned_base), options_.replicas, meta_,
      live_snapshots_);
}

void ModelPool::Insert(const std::string& name, Ranker* base,
                       std::unique_ptr<Ranker> owned_base,
                       int64_t first_version) {
  AWMOE_CHECK(!name.empty()) << "model name must be non-empty";
  AWMOE_CHECK(first_version >= 1)
      << "first_version " << first_version << " for '" << name << "'";
  std::shared_ptr<const ModelSnapshot> snapshot =
      MakeSnapshot(name, first_version, base, std::move(owned_base));
  std::lock_guard<std::mutex> lock(mu_);
  AWMOE_CHECK(entries_.find(name) == entries_.end())
      << "duplicate model name '" << name << "'";
  RouteEntry entry;
  entry.stable = std::move(snapshot);
  entry.newest_version = first_version;
  entries_.emplace(name, std::move(entry));
  names_.push_back(name);
  if (default_name_.empty()) default_name_ = name;
}

void ModelPool::Register(const std::string& name, Ranker* model) {
  AWMOE_CHECK(model != nullptr) << "null model for '" << name << "'";
  Insert(name, model, nullptr);
}

void ModelPool::RegisterOwned(const std::string& name,
                              std::unique_ptr<Ranker> model,
                              int64_t first_version) {
  AWMOE_CHECK(model != nullptr) << "null model for '" << name << "'";
  Ranker* base = model.get();
  Insert(name, base, std::move(model), first_version);
}

int64_t ModelPool::UpdateModel(const std::string& name,
                               std::unique_ptr<Ranker> model) {
  AWMOE_CHECK(model != nullptr) << "UpdateModel: null model for '" << name
                                << "'";
  // Publishers serialise on publish_mu_ (held across read-version ->
  // clone -> publish) so concurrent UpdateModels for one name cannot
  // mint duplicate version numbers; the replica cloning still happens
  // outside mu_, so publishing never stalls concurrent Acquires.
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  int64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    AWMOE_CHECK(it != entries_.end())
        << "UpdateModel: unknown model '" << name << "'";
    AWMOE_CHECK(it->second.candidate == nullptr)
        << "UpdateModel: '" << name
        << "' has a staged rollout candidate (v"
        << it->second.candidate->version()
        << "); promote or drop it before an atomic cutover";
    version = it->second.newest_version + 1;
  }
  Ranker* base = model.get();
  std::shared_ptr<const ModelSnapshot> next =
      MakeSnapshot(name, version, base, std::move(model));
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Publish atomically; the displaced shared_ptr release outside the
    // lock below may run the old snapshot's destructor (if no lease
    // still pins it) without blocking concurrent Acquires.
    RouteEntry& entry = entries_[name];
    entry.stable.swap(next);
    entry.newest_version = version;
  }
  swap_count_.fetch_add(1);
  return version;
}

int64_t ModelPool::StageCandidate(const std::string& name,
                                  std::unique_ptr<Ranker> model) {
  AWMOE_CHECK(model != nullptr) << "StageCandidate: null model for '" << name
                                << "'";
  // Same publisher serialisation as UpdateModel: version minting and the
  // expensive replica cloning happen under publish_mu_ only, so staging
  // a candidate never stalls concurrent Acquires.
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  int64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    AWMOE_CHECK(it != entries_.end())
        << "StageCandidate: unknown model '" << name << "'";
    version = it->second.newest_version + 1;
  }
  Ranker* base = model.get();
  std::shared_ptr<const ModelSnapshot> next =
      MakeSnapshot(name, version, base, std::move(model));
  {
    std::lock_guard<std::mutex> lock(mu_);
    RouteEntry& entry = entries_[name];
    // A displaced previous candidate releases outside the lock.
    entry.candidate.swap(next);
    entry.newest_version = version;
  }
  return version;
}

int64_t ModelPool::PromoteCandidate(const std::string& name) {
  std::shared_ptr<const ModelSnapshot> retired;
  int64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    AWMOE_CHECK(it != entries_.end())
        << "PromoteCandidate: unknown model '" << name << "'";
    RouteEntry& entry = it->second;
    AWMOE_CHECK(entry.candidate != nullptr)
        << "PromoteCandidate: no candidate staged for '" << name << "'";
    version = entry.candidate->version();
    retired = std::move(entry.stable);
    entry.stable = std::move(entry.candidate);
    entry.candidate = nullptr;
  }
  // The old stable releases here, outside mu_; in-flight leases still
  // pin it until they drain.
  swap_count_.fetch_add(1);
  return version;
}

bool ModelPool::DropCandidate(const std::string& name) {
  std::shared_ptr<const ModelSnapshot> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    AWMOE_CHECK(it != entries_.end())
        << "DropCandidate: unknown model '" << name << "'";
    dropped = std::move(it->second.candidate);
    it->second.candidate = nullptr;
  }
  // Candidate leases already granted finish on the dropped snapshot; it
  // frees itself (replica clones and gate cache included) when the last
  // one releases.
  return dropped != nullptr;
}

int64_t ModelPool::WarmSessionGates(
    const std::string& name, RolloutArm arm,
    const std::vector<std::vector<const Example*>>& sessions,
    int64_t gate_cache_capacity) {
  if (gate_cache_capacity <= 0) return 0;
  const std::string resolved = ResolveName(name);
  std::shared_ptr<const ModelSnapshot> snapshot =
      arm == RolloutArm::kCandidate ? CandidateSnapshot(resolved)
                                    : CurrentSnapshot(resolved);
  if (snapshot == nullptr || !snapshot->gate_shareable()) return 0;
  const int64_t width = snapshot->gate_width();

  // Score through lane 0's workspace. Warm-up typically runs before the
  // snapshot takes traffic, but racing live forwards is safe AND
  // bounded: the lane lock is taken per chunk, not across the whole
  // warm-up, so a concurrent micro-batch leased onto lane 0 waits for
  // at most one warm forward instead of the full session log.
  ReplicaLane& lane = snapshot->lane(0);
  constexpr int64_t kWarmChunk = 256;

  int64_t warmed = 0;
  std::vector<const Example*> probes;
  std::vector<int64_t> probe_sessions;
  auto flush = [&] {
    if (probes.empty()) return;
    Batch batch = CollateBatch(probes, meta_, standardizer_);
    std::lock_guard<std::mutex> lock(lane.mu);
    InferenceWorkspace* workspace = lane.EnsureWorkspace(kWarmChunk);
    std::span<float> rows = workspace->Staging(
        InferenceWorkspace::kGateProbe, batch.size * width);
    lane.model->GateInto(batch, workspace, rows);
    // Cache inserts stay under the lane lock: `rows` aliases workspace
    // staging, which the next forward on this lane may overwrite.
    for (int64_t i = 0; i < batch.size; ++i) {
      const float* row = rows.data() + i * width;
      snapshot->gate_cache().Put(
          probe_sessions[static_cast<size_t>(i)],
          GateContextHash(*probes[static_cast<size_t>(i)]),
          std::vector<float>(row, row + width), gate_cache_capacity);
      ++warmed;
    }
    probes.clear();
    probe_sessions.clear();
  };
  for (const std::vector<const Example*>& session : sessions) {
    if (session.empty()) continue;
    // One probe per session, from its first item — the engine's own
    // probe convention, so lookups validate against the same context.
    probes.push_back(session[0]);
    probe_sessions.push_back(session[0]->session_id);
    if (static_cast<int64_t>(probes.size()) >= kWarmChunk) flush();
  }
  flush();
  return warmed;
}

std::shared_ptr<const ModelSnapshot> ModelPool::CandidateSnapshot(
    const std::string& resolved_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(resolved_name);
  AWMOE_CHECK(it != entries_.end())
      << "unknown model '" << resolved_name << "'";
  return it->second.candidate;
}

int64_t ModelPool::CandidateVersion(const std::string& resolved_name) const {
  std::shared_ptr<const ModelSnapshot> candidate =
      CandidateSnapshot(resolved_name);
  return candidate == nullptr ? 0 : candidate->version();
}

bool ModelPool::HasCandidate(const std::string& resolved_name) const {
  return CandidateSnapshot(resolved_name) != nullptr;
}

void ModelPool::SetDefault(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  AWMOE_CHECK(entries_.find(name) != entries_.end())
      << "unknown model '" << name << "'";
  default_name_ = name;
}

Ranker* ModelPool::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.stable->primary();
}

std::string ModelPool::ResolveName(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (name.empty()) {
    // Copied under the lock: SetDefault may re-point the default route
    // concurrently, so a reference would read a string being replaced.
    AWMOE_CHECK(!default_name_.empty()) << "empty ModelPool";
    return default_name_;
  }
  auto it = entries_.find(name);
  AWMOE_CHECK(it != entries_.end()) << "unknown model '" << name << "'";
  return it->first;
}

std::string ModelPool::default_model() const {
  std::lock_guard<std::mutex> lock(mu_);
  return default_name_;
}

std::vector<std::string> ModelPool::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_;
}

size_t ModelPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

Ranker* ModelPool::Resolve(const std::string& name) const {
  return CurrentSnapshot(ResolveName(name))->primary();
}

std::shared_ptr<const ModelSnapshot> ModelPool::CurrentSnapshot(
    const std::string& resolved_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(resolved_name);
  AWMOE_CHECK(it != entries_.end())
      << "unknown model '" << resolved_name << "'";
  return it->second.stable;
}

SnapshotLease ModelPool::Acquire(const std::string& resolved_name) const {
  return Acquire(resolved_name, RolloutArm::kStable);
}

SnapshotLease ModelPool::Acquire(const std::string& resolved_name,
                                 RolloutArm arm) const {
  RolloutArm granted = RolloutArm::kStable;
  std::shared_ptr<const ModelSnapshot> snapshot =
      SnapshotForArm(resolved_name, arm, &granted);
  return LeaseLane(std::move(snapshot), granted);
}

std::shared_ptr<const ModelSnapshot> ModelPool::SnapshotForArm(
    const std::string& resolved_name, RolloutArm arm,
    RolloutArm* granted) const {
  std::shared_ptr<const ModelSnapshot> snapshot;
  RolloutArm got = RolloutArm::kStable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(resolved_name);
    AWMOE_CHECK(it != entries_.end())
        << "unknown model '" << resolved_name << "'";
    if (arm == RolloutArm::kCandidate && it->second.candidate != nullptr) {
      snapshot = it->second.candidate;
      got = RolloutArm::kCandidate;
    } else {
      // Candidate requested but none staged (e.g. the rollout rolled
      // back between routing and acquiring): serve stable.
      snapshot = it->second.stable;
    }
  }
  if (granted != nullptr) *granted = got;
  return snapshot;
}

SnapshotLease ModelPool::LeaseLane(
    std::shared_ptr<const ModelSnapshot> snapshot, RolloutArm granted) const {
  const int lanes = snapshot->num_replicas();
  // Least-loaded lane, round-robin on ties: N concurrent forwards for
  // one hot model spread across N distinct replicas.
  int pick = 0;
  if (lanes > 1) {
    const int start =
        static_cast<int>(round_robin_.fetch_add(1) % static_cast<uint64_t>(lanes));
    int64_t best = std::numeric_limits<int64_t>::max();
    for (int i = 0; i < lanes; ++i) {
      const int lane = (start + i) % lanes;
      const int64_t active =
          snapshot->lane(lane).active.load(std::memory_order_relaxed);
      if (active < best) {
        best = active;
        pick = lane;
      }
    }
  }
  ReplicaLane& lane = snapshot->lane(pick);
  lane.active.fetch_add(1);
  lane.leases.fetch_add(1);
  const int active_lanes = snapshot->ActiveLanes();
  return SnapshotLease(std::move(snapshot), pick, active_lanes, granted);
}

CacheUsage ModelPool::TotalCacheUsage() const {
  // Collect the snapshot pins under the lock, read the cache gauges
  // outside it (each cache takes its own mutex).
  std::vector<std::shared_ptr<const ModelSnapshot>> snapshots;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, entry] : entries_) {
      if (entry.stable != nullptr) snapshots.push_back(entry.stable);
      if (entry.candidate != nullptr) snapshots.push_back(entry.candidate);
    }
  }
  CacheUsage total;
  for (const auto& snapshot : snapshots) total += snapshot->cache_usage();
  return total;
}

}  // namespace awmoe
