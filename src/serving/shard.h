#ifndef AWMOE_SERVING_SHARD_H_
#define AWMOE_SERVING_SHARD_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serving/model_pool.h"
#include "serving/request.h"
#include "serving/serving_engine.h"
#include "serving/serving_stats.h"

namespace awmoe {

class Ranker;
class Standardizer;

/// Consistent-hash session->shard placement: each shard contributes
/// `vnodes_per_shard` points to a 64-bit hash ring, and a session is
/// served by the shard owning the first point at or after the session's
/// own ring position (wrapping). Placement is a pure function of
/// (session id, current shard set) — deterministic and sticky, like the
/// rollout `TrafficRouter`'s session buckets, so a session keeps both
/// its shard (gate-cache locality) and its rollout arm across requests.
/// The virtual nodes make rebalance minimal AND balanced: adding a
/// shard moves only the ~1/(N+1) of sessions that land on the new
/// shard's points (never between existing shards), removing one moves
/// only the removed shard's sessions, scattered evenly over the
/// survivors instead of dumped on one neighbour.
///
/// Thread-safe: `ShardFor` reads an immutable ring snapshot (one
/// mutex-guarded shared_ptr copy, no ring walk under the lock);
/// Add/RemoveShard publish a rebuilt ring.
class ShardRouter {
 public:
  explicit ShardRouter(int vnodes_per_shard = 64);

  /// Adds `shard_id`'s virtual nodes to the ring. CHECK-fails on a
  /// duplicate id.
  void AddShard(int shard_id);

  /// Removes `shard_id`'s virtual nodes. Returns false when the id is
  /// not on the ring.
  bool RemoveShard(int shard_id);

  /// The shard serving `session_id`. CHECK-fails on an empty ring.
  int ShardFor(int64_t session_id) const;

  bool HasShard(int shard_id) const;
  int num_shards() const;
  /// Shard ids currently on the ring, ascending.
  std::vector<int> shard_ids() const;
  int vnodes_per_shard() const { return vnodes_per_shard_; }

  /// A session's ring position (splitmix64 of the id, so sequential
  /// session ids scatter uniformly). Exposed so tests can predict
  /// placement exactly.
  static uint64_t SessionPoint(int64_t session_id);

  /// Ring position of `shard_id`'s `vnode`-th virtual node.
  static uint64_t VnodePoint(int shard_id, int vnode);

 private:
  struct Vnode {
    uint64_t point = 0;
    int shard = 0;
  };
  /// Ascending by (point, shard); immutable once published.
  using Ring = std::vector<Vnode>;

  std::shared_ptr<const Ring> RebuildLocked() const;

  const int vnodes_per_shard_;
  mutable std::mutex mu_;  // Guards shard_ids_ and the ring_ swap.
  std::vector<int> shard_ids_;
  std::shared_ptr<const Ring> ring_;
};

/// Admission-control knobs of the sharded fleet.
struct AdmissionOptions {
  /// Master switch; disabled, every Submit is admitted (the engine's
  /// own backpressure still applies).
  bool enabled = true;

  /// Deadline assumed for requests that carry none
  /// (`RankRequest::deadline_ms` == 0).
  double default_deadline_ms = 20.0;

  /// Availability floor of the degraded mode: when the sliding share of
  /// SHED decisions reaches this rate, further over-deadline requests
  /// are admitted as DEGRADED instead of shed (they will likely miss
  /// their deadline, but the fleet never rejects more than this
  /// fraction of traffic — an overloaded fleet serves slowly rather
  /// than going dark). 1.0 disables the floor (pure shedding).
  double max_shed_rate = 0.9;

  /// Decisions in the sliding shed-rate window.
  int shed_window = 256;

  /// Multiplier on the estimated sojourn (queue delay + own service)
  /// before it is compared against the deadline. The queue-length x
  /// mean-service estimate is systematically OPTIMISTIC under batched
  /// serving — the batch already in flight, the flush-timer wait, and
  /// service-time variance are all invisible to it — and overshooting
  /// a deadline the caller has stopped waiting for is worse than
  /// shedding a request that would have just made it, so the
  /// controller biases conservative. 1.0 trusts the estimate exactly
  /// (the value unit tests use to pin the admission math).
  double estimate_safety = 1.5;

  /// Admission decisions between refreshes of the per-shard sliding
  /// service-time estimate (each refresh reads two engine counters; the
  /// decision itself stays O(1)).
  int load_refresh_every = 32;
};

/// Sliding mean-service-time estimator over a pair of monotone engine
/// counters (completed requests, accumulated service ms). Extracted
/// from the fleet's refresh path so its edge cases are unit-testable:
///
///  - zero-delta window (idle shard): keeps the previous estimate
///    instead of dividing by zero (NaN) or decaying to a stale 0;
///  - backwards counters (the engine's stats were reset underneath the
///    estimator): resyncs the baseline and keeps the last good
///    estimate, instead of freezing forever on a baseline the counters
///    can never catch up to;
///  - negative service delta at positive request delta (reservoir
///    resets, float noise): clamps the estimate at 0.
///
/// Not thread-safe; the caller serialises Update (the fleet holds the
/// shard's load_mu).
class MeanServiceEstimator {
 public:
  /// Folds one counter reading into the estimate and returns it.
  double Update(int64_t requests, double service_ms);
  /// Current estimate (ms/request); 0 until the first non-empty window.
  double estimate() const { return mean_ms_; }
  void Reset();

 private:
  int64_t last_requests_ = 0;
  double last_service_ms_ = 0.0;
  double mean_ms_ = 0.0;
};

/// Point-in-time load of one shard, as the admission controller sees it.
struct ShardLoad {
  /// Requests sitting in the shard engine's async queue.
  int64_t pending_requests = 0;
  /// Sliding mean service latency (ms/request) over the shard's recent
  /// completions; 0 until the first refresh window completes.
  double mean_service_ms = 0.0;
  /// Concurrent flush lanes draining the queue.
  int flush_lanes = 1;
};

/// Little's-law style queue-delay estimate: `pending` requests draining
/// at `mean_service_ms` per request across `flush_lanes` concurrent
/// lanes. The admission controller sheds when this (plus one service
/// time for the request itself) already exceeds the deadline.
double EstimateQueueDelayMs(const ShardLoad& load);

enum class AdmissionDecision {
  kAdmit = 0,    // Expected to meet its deadline.
  kShed = 1,     // Rejected with kResourceExhausted before queueing.
  kDegraded = 2, // Over deadline, but admitted: the shed-rate floor hit.
};

/// Deadline-aware load shedding, layered ABOVE the engine's queue-depth
/// backpressure: instead of waiting for the queue to hit a fixed cap,
/// it rejects a request the moment the shard's estimated queue delay
/// would already blow the request's deadline — the caller learns in
/// microseconds, the queue never grows past what the deadline can
/// absorb, and accepted requests keep a bounded tail. The sliding
/// shed-rate window enforces `max_shed_rate` (see AdmissionOptions).
/// Thread-safe; one instance per shard.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  /// Decides one request given the shard's current load. `deadline_ms`
  /// <= 0 uses the configured default.
  AdmissionDecision Decide(const ShardLoad& load, double deadline_ms);

  int64_t admitted() const;
  int64_t shed() const;
  int64_t degraded() const;
  /// Shed share of the sliding decision window (0 when empty).
  double window_shed_rate() const;

  void Reset();

  const AdmissionOptions& options() const { return options_; }

 private:
  const AdmissionOptions options_;
  mutable std::mutex mu_;
  int64_t admitted_ = 0;
  int64_t shed_ = 0;
  int64_t degraded_ = 0;
  /// Circular outcome window (1 = shed); bounds the actual shed rate.
  std::vector<uint8_t> window_;
  size_t window_next_ = 0;
  int64_t window_filled_ = 0;
  int64_t window_shed_ = 0;
};

/// One shard's slice of the fleet stats.
struct ShardStatsSnapshot {
  int shard_id = 0;
  int64_t admitted = 0;
  int64_t shed = 0;
  int64_t degraded = 0;
  /// Async queue depth at snapshot time.
  int64_t pending_requests = 0;
  /// The shard's sliding mean-service estimate (ms/request) as the
  /// admission controller currently sees it; 0 until the first
  /// non-empty refresh window.
  double mean_service_ms = 0.0;
  /// The shard engine's full snapshot (per-shard p50/p95/p99, QPS,
  /// version health, ...).
  ServingStatsSnapshot engine;
};

/// Fleet-wide view: per-shard snapshots plus their exact pooled merge.
struct FleetStats {
  std::vector<ShardStatsSnapshot> shards;
  /// All shards merged via `ServingStats::MergeFrom` — counters summed,
  /// percentiles EXACT over the pooled latency reservoirs (health
  /// windows stay per-shard; see serving_stats.h).
  ServingStatsSnapshot merged;
  int64_t admitted = 0;
  int64_t shed = 0;
  int64_t degraded = 0;
  /// shed / (admitted + shed + degraded); 0 before any decision.
  double shed_rate = 0.0;
  /// max over shards of completed requests, divided by the per-shard
  /// mean — 1.0 is a perfectly even fleet, N is everything on one of N
  /// shards. 0 before any request completes.
  double imbalance = 0.0;
};

struct FleetOptions {
  /// Shards created at construction (ids 0..num_shards-1). More can be
  /// added later with AddShard().
  int num_shards = 2;
  /// Virtual nodes per shard on the placement ring.
  int vnodes_per_shard = 64;
  /// Applied to every shard's ModelPool.
  ModelPoolOptions pool;
  /// Applied to every shard's ServingEngine.
  ServingEngineOptions engine;
  AdmissionOptions admission;
};

/// Fleet-scale serving (ROADMAP item 2): N independent `ServingEngine`
/// shards — each with its OWN ModelPool (replica lanes, gate caches)
/// and async queue, sharing no mutable state — behind a consistent-hash
/// `ShardRouter` and a deadline-aware `AdmissionController` per shard.
/// A session is always served by one shard, so its cached gate rows
/// live exactly once in the fleet and stay hot; scores are bitwise
/// independent of the shard count because every pool holds exact clones
/// of the same registered master model.
///
/// Model operations fan out: Register/UpdateModel/StageCandidate/
/// Promote/Drop apply to every shard from one fleet-retained master
/// copy (models must be clonable), and the fleet replays the full
/// publish history onto a shard added mid-life, so version numbers —
/// which stats and rollout health key on — agree across shards.
/// Rollout ramps fan out through `SetSplit`; the router's session
/// buckets are shard-independent, so one session sees one arm
/// fleet-wide.
///
/// Serving paths: `Rank` routes synchronously (no admission — the
/// caller's thread is the backpressure); `Submit` is the open-loop
/// front door: route -> admission decision -> shard engine queue. Shed
/// requests resolve immediately with kResourceExhausted and are NOT
/// recorded into model version health (shedding is a load signal, not
/// a model-quality one — rollout gates must not count it against a
/// candidate).
class ShardedServingFleet {
 public:
  /// `standardizer` may be null and is not owned; `meta` is copied into
  /// every shard pool.
  ShardedServingFleet(const DatasetMeta& meta,
                      const Standardizer* standardizer,
                      FleetOptions options = {});
  ~ShardedServingFleet();

  ShardedServingFleet(const ShardedServingFleet&) = delete;
  ShardedServingFleet& operator=(const ShardedServingFleet&) = delete;

  // --- Fleet-wide model operations (fan out to every shard). ---

  /// Registers `model` under `name` on every shard (each gets its own
  /// clone; the master is retained for future shards). The first
  /// registration becomes the default route. CHECK-fails when the model
  /// cannot Clone().
  void RegisterOwned(const std::string& name, std::unique_ptr<Ranker> model);

  /// Publishes `model` as the next stable version on every shard.
  /// Returns the (shard-agreed) new version number.
  int64_t UpdateModel(const std::string& name, std::unique_ptr<Ranker> model);

  /// Stages `model` as the rollout candidate on every shard. Returns
  /// the candidate version.
  int64_t StageCandidate(const std::string& name,
                         std::unique_ptr<Ranker> model);

  /// Promotes the staged candidate on every shard and clears the
  /// traffic split. Returns the promoted version.
  int64_t PromoteCandidate(const std::string& name);

  /// Drops the staged candidate on every shard and clears the traffic
  /// split. Returns false when none was staged.
  bool DropCandidate(const std::string& name);

  /// Sets `name`'s candidate traffic share (permille) on every shard's
  /// router. Sessions bucket identically on all shards.
  void SetSplit(const std::string& name, int permille);
  void ClearSplit(const std::string& name);

  // --- Topology. ---

  /// Brings up a new shard (fresh pool + engine), replays the fleet's
  /// model state onto it — same stable versions, same staged candidate
  /// and split, same minted-version high-water marks — and then adds it
  /// to the ring. Returns the new shard id. Sessions that move to it
  /// start gate-cold; nobody else moves.
  int AddShard();

  /// Removes the shard from the ring (its sessions re-place onto the
  /// survivors), then stops its engine. With drain=true queued requests
  /// finish first. Returns false for an unknown id. CHECK-fails when it
  /// would empty the fleet.
  bool RemoveShard(int shard_id, bool drain = true);

  // --- Serving. ---

  /// Synchronous scoring on the session's shard. Deadlines are ignored
  /// here (see class comment).
  RankResponse Rank(const RankRequest& request);

  /// Open-loop front door: consistent-hash route, admission decision
  /// against the target shard's live load, then the shard engine's
  /// async queue. The future always becomes ready; shed requests
  /// resolve immediately with kResourceExhausted.
  std::future<RankResponse> Submit(RankRequest request);

  // --- Observability & lifecycle. ---

  FleetStats Stats() const;
  void ResetStats();

  /// Stops every shard's async front (see ServingEngine::Stop).
  void Stop(bool drain = true);

  /// Live snapshots summed over every shard pool — the fleet leak
  /// check (== shards x per-pool expectation once traffic drains).
  int64_t live_snapshots() const;

  int num_shards() const;
  std::vector<int> shard_ids() const;
  const ShardRouter& router() const { return router_; }
  const FleetOptions& options() const { return options_; }

  /// The shard a session currently routes to.
  int ShardForSession(int64_t session_id) const {
    return router_.ShardFor(session_id);
  }

  /// Per-shard introspection (tests, examples); nullptr for an unknown
  /// id. Not pinned against a concurrent RemoveShard of that id.
  ServingEngine* engine(int shard_id) const;
  ModelPool* pool(int shard_id) const;
  const AdmissionController* admission(int shard_id) const;

 private:
  struct FleetShard;  // Defined in shard.cc.
  /// Fleet-retained master copy of one registered model plus the
  /// version ledger replayed onto new shards.
  struct MasterModel {
    std::unique_ptr<Ranker> stable;
    std::unique_ptr<Ranker> candidate;  // Null outside rollouts.
    int64_t stable_version = 1;
    /// High-water mark of minted versions (survives dropped
    /// candidates, mirroring ModelPool::RouteEntry::newest_version).
    int64_t newest_version = 1;
    int64_t candidate_version = 0;  // 0 = none staged.
    int split_permille = -1;        // -1 = no route configured.
  };

  /// Creates a shard, replays `masters_` onto it, registers it with the
  /// ring. Caller holds ops_mu_.
  int AddShardLocked();
  std::shared_ptr<FleetShard> Shard(int shard_id) const;
  std::shared_ptr<FleetShard> ShardForSessionPtr(int64_t session_id) const;
  /// Stable view of the current shards, ascending by id.
  std::vector<std::shared_ptr<FleetShard>> AllShards() const;
  /// Builds the admission view of `shard`'s load, refreshing its
  /// sliding service-time estimate every `load_refresh_every` calls.
  ShardLoad CurrentLoad(FleetShard* shard) const;

  FleetOptions options_;
  DatasetMeta meta_;
  const Standardizer* standardizer_;

  ShardRouter router_;

  /// Serialises fleet-wide model ops and topology changes against each
  /// other (never held on the Submit/Rank hot path).
  std::mutex ops_mu_;
  std::map<std::string, MasterModel> masters_;  // Keyed by model name.
  /// First registered name; replayed onto added shards so their default
  /// route matches (masters_ iterates alphabetically, not in
  /// registration order).
  std::string default_model_;
  int next_shard_id_ = 0;

  /// Guards the shard map only; hot-path lookups copy one shared_ptr
  /// under it. A removed shard is destroyed when the last in-flight
  /// reference drops.
  mutable std::mutex shards_mu_;
  std::map<int, std::shared_ptr<FleetShard>> shards_;
};

}  // namespace awmoe

#endif  // AWMOE_SERVING_SHARD_H_
