#include "serving/rollout.h"

#include <algorithm>

#include "models/ranker.h"
#include "serving/model_pool.h"
#include "serving/serving_stats.h"
#include "util/check.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace awmoe {

namespace {

/// Sentinel prefix of candidate-arm route keys. Pool names are
/// user-visible strings; a control byte cannot collide with one.
constexpr char kCandidateKeyPrefix = '\x01';

}  // namespace

// ---------------------------------------------------------------------
// TrafficRouter.
// ---------------------------------------------------------------------

int TrafficRouter::Bucket(const std::string& model, int64_t session_id) {
  // FNV-1a over the model name seeds the session mix: two models ramping
  // at once bucket the same session independently.
  const uint64_t seed = Fnv1a64(model);
  return static_cast<int>(Mix64(seed ^ static_cast<uint64_t>(session_id)) %
                          static_cast<uint64_t>(kBuckets));
}

void TrafficRouter::SetSplit(const std::string& model, int permille) {
  AWMOE_CHECK(permille >= 0 && permille <= kBuckets)
      << "TrafficRouter: split " << permille << " permille for '" << model
      << "'";
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = splits_.try_emplace(model, permille);
  if (inserted) {
    active_routes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    it->second = permille;
  }
}

void TrafficRouter::ClearSplit(const std::string& model) {
  std::lock_guard<std::mutex> lock(mu_);
  if (splits_.erase(model) > 0) {
    active_routes_.fetch_sub(1, std::memory_order_relaxed);
  }
}

int TrafficRouter::split_permille(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = splits_.find(model);
  return it == splits_.end() ? 0 : it->second;
}

RolloutArm TrafficRouter::Route(const std::string& model,
                                int64_t session_id) const {
  // Fast path: with no rollout ramping anywhere, routing is one relaxed
  // load — the single-version serving path stays effectively free.
  if (active_routes_.load(std::memory_order_relaxed) == 0) {
    return RolloutArm::kStable;
  }
  int permille = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = splits_.find(model);
    if (it == splits_.end()) return RolloutArm::kStable;
    permille = it->second;
  }
  return Bucket(model, session_id) < permille ? RolloutArm::kCandidate
                                              : RolloutArm::kStable;
}

// ---------------------------------------------------------------------
// Route keys.
// ---------------------------------------------------------------------

std::string EncodeRouteKey(const std::string& model, RolloutArm arm) {
  if (arm == RolloutArm::kStable) return model;
  std::string key;
  key.reserve(model.size() + 1);
  key.push_back(kCandidateKeyPrefix);
  key.append(model);
  return key;
}

std::pair<std::string, RolloutArm> DecodeRouteKey(const std::string& key) {
  if (!key.empty() && key[0] == kCandidateKeyPrefix) {
    return {key.substr(1), RolloutArm::kCandidate};
  }
  return {key, RolloutArm::kStable};
}

// ---------------------------------------------------------------------
// RolloutController.
// ---------------------------------------------------------------------

std::string_view RolloutStateToString(RolloutState state) {
  switch (state) {
    case RolloutState::kIdle:
      return "idle";
    case RolloutState::kRamping:
      return "ramping";
    case RolloutState::kPromoted:
      return "promoted";
    case RolloutState::kRolledBack:
      return "rolled-back";
  }
  return "unknown";
}

RolloutController::RolloutController(ModelPool* pool, TrafficRouter* router,
                                     const ServingStats* stats,
                                     std::string model, RolloutOptions options)
    : pool_(pool),
      router_(router),
      stats_(stats),
      model_(std::move(model)),
      options_(std::move(options)) {
  AWMOE_CHECK(pool_ != nullptr) << "RolloutController: null pool";
  AWMOE_CHECK(router_ != nullptr) << "RolloutController: null router";
  AWMOE_CHECK(stats_ != nullptr) << "RolloutController: null stats";
  AWMOE_CHECK(!options_.ramp_permille.empty())
      << "RolloutController: empty ramp schedule";
  int previous = 0;
  for (int permille : options_.ramp_permille) {
    AWMOE_CHECK(permille > previous && permille <= TrafficRouter::kBuckets)
        << "RolloutController: ramp must be strictly increasing permille in "
           "(0, 1000], got "
        << permille << " after " << previous;
    previous = permille;
  }
  AWMOE_CHECK(options_.min_stage_requests > 0)
      << "RolloutController: min_stage_requests "
      << options_.min_stage_requests;
  AWMOE_CHECK(options_.max_p99_ratio > 0.0)
      << "RolloutController: max_p99_ratio " << options_.max_p99_ratio;
  AWMOE_CHECK(options_.max_error_rate >= 0.0 && options_.max_error_rate <= 1.0)
      << "RolloutController: max_error_rate " << options_.max_error_rate;
  AWMOE_CHECK(options_.min_drift_sessions >= 0)
      << "RolloutController: min_drift_sessions "
      << options_.min_drift_sessions;
  AWMOE_CHECK(options_.max_engagement_drop >= 0.0 &&
              options_.max_engagement_drop <= 1.0)
      << "RolloutController: max_engagement_drop "
      << options_.max_engagement_drop;
  AWMOE_CHECK(options_.engagement_slack >= 0.0)
      << "RolloutController: engagement_slack " << options_.engagement_slack;
}

int64_t RolloutController::Begin(std::unique_ptr<Ranker> candidate) {
  std::lock_guard<std::mutex> lock(mu_);
  AWMOE_CHECK(state_ != RolloutState::kRamping)
      << "RolloutController: rollout already ramping for '" << model_ << "'";
  candidate_version_ = pool_->StageCandidate(model_, std::move(candidate));
  stage_ = 0;
  const VersionHealthSnapshot entry =
      stats_->VersionHealth(model_, candidate_version_);
  stage_entry_requests_ = entry.requests;
  stage_entry_errors_ = entry.errors;
  state_ = RolloutState::kRamping;
  last_decision_ = StrFormat("staged v%lld at %d permille",
                             static_cast<long long>(candidate_version_),
                             options_.ramp_permille[0]);
  // The router opens LAST: the first routed request must find the
  // candidate already acquirable.
  router_->SetSplit(model_, options_.ramp_permille[0]);
  return candidate_version_;
}

void RolloutController::RollbackLocked(const std::string& reason) {
  // Router first: new sessions stop routing at the candidate before it
  // is unpublished, so the fallback path only covers the short window
  // between a Route() and its Acquire().
  router_->ClearSplit(model_);
  pool_->DropCandidate(model_);
  state_ = RolloutState::kRolledBack;
  stage_ = -1;
  last_decision_ = reason;
}

RolloutState RolloutController::Rollback(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != RolloutState::kRamping) return state_;
  RollbackLocked("rolled back: " + reason);
  return state_;
}

RolloutState RolloutController::Advance() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != RolloutState::kRamping) return state_;

  const int64_t stable_version = pool_->CurrentSnapshot(model_)->version();
  const VersionHealthSnapshot candidate =
      stats_->VersionHealth(model_, candidate_version_);
  const VersionHealthSnapshot stable =
      stats_->VersionHealth(model_, stable_version);

  // Evidence gate: hold the stage until enough candidate traffic
  // completed within it.
  const int64_t since_stage = candidate.requests - stage_entry_requests_;
  if (since_stage < options_.min_stage_requests) {
    last_decision_ = StrFormat(
        "holding stage %d (%d permille): %lld/%lld candidate requests",
        stage_, options_.ramp_permille[stage_],
        static_cast<long long>(since_stage),
        static_cast<long long>(options_.min_stage_requests));
    return state_;
  }

  // Health gates: error/reject rate WITHIN this stage (a late-ramp
  // failure burst must not be diluted by earlier healthy stages), then
  // tail latency vs stable.
  const int64_t stage_errors = candidate.errors - stage_entry_errors_;
  const double stage_error_rate =
      static_cast<double>(stage_errors) / static_cast<double>(since_stage);
  if (stage_error_rate > options_.max_error_rate) {
    RollbackLocked(StrFormat(
        "rolled back at stage %d: candidate v%lld error rate %.4f > %.4f "
        "(%lld/%lld failed this stage)",
        stage_, static_cast<long long>(candidate_version_), stage_error_rate,
        options_.max_error_rate, static_cast<long long>(stage_errors),
        static_cast<long long>(since_stage)));
    return state_;
  }
  // The p99 gate only fires once the stable arm has its own window —
  // with no stable evidence there is no baseline to regress against.
  const double p99_budget =
      stable.p99_ms * options_.max_p99_ratio + options_.p99_slack_ms;
  if (stable.window > 0 && candidate.p99_ms > p99_budget) {
    RollbackLocked(StrFormat(
        "rolled back at stage %d: candidate v%lld p99 %.3f ms > budget "
        "%.3f ms (stable v%lld p99 %.3f ms)",
        stage_, static_cast<long long>(candidate_version_), candidate.p99_ms,
        p99_budget, static_cast<long long>(stable_version), stable.p99_ms));
    return state_;
  }

  // Accuracy-drift gate: candidate engaged-rate (shadow-scored UCTR
  // proxy) vs stable's. Evidence-held like min_stage_requests — drift
  // samples arrive on the shadow cadence, not the traffic ramp, so the
  // hold is on lifetime per-version evidence.
  if (options_.min_drift_sessions > 0) {
    if (candidate.drift_sessions < options_.min_drift_sessions ||
        stable.drift_sessions < options_.min_drift_sessions) {
      last_decision_ = StrFormat(
          "holding stage %d (%d permille): drift evidence %lld/%lld "
          "candidate, %lld/%lld stable sessions",
          stage_, options_.ramp_permille[stage_],
          static_cast<long long>(candidate.drift_sessions),
          static_cast<long long>(options_.min_drift_sessions),
          static_cast<long long>(stable.drift_sessions),
          static_cast<long long>(options_.min_drift_sessions));
      return state_;
    }
    const double engagement_floor =
        stable.drift_engaged_rate * (1.0 - options_.max_engagement_drop) -
        options_.engagement_slack;
    if (candidate.drift_engaged_rate < engagement_floor) {
      RollbackLocked(StrFormat(
          "rolled back at stage %d: candidate v%lld engagement %.4f < floor "
          "%.4f (stable v%lld engagement %.4f over %lld/%lld shadow "
          "sessions)",
          stage_, static_cast<long long>(candidate_version_),
          candidate.drift_engaged_rate, engagement_floor,
          static_cast<long long>(stable_version), stable.drift_engaged_rate,
          static_cast<long long>(candidate.drift_sessions),
          static_cast<long long>(stable.drift_sessions)));
      return state_;
    }
  }

  // Gate passed. Last stage -> promote; otherwise open the next stage.
  if (stage_ + 1 >= static_cast<int>(options_.ramp_permille.size())) {
    const int64_t promoted = pool_->PromoteCandidate(model_);
    router_->ClearSplit(model_);
    state_ = RolloutState::kPromoted;
    stage_ = -1;
    last_decision_ = StrFormat(
        "promoted v%lld (candidate p99 %.3f ms vs stable %.3f ms over %lld "
        "requests)",
        static_cast<long long>(promoted), candidate.p99_ms, stable.p99_ms,
        static_cast<long long>(candidate.requests));
    return state_;
  }
  ++stage_;
  stage_entry_requests_ = candidate.requests;
  stage_entry_errors_ = candidate.errors;
  router_->SetSplit(model_, options_.ramp_permille[stage_]);
  last_decision_ = StrFormat(
      "advanced to stage %d (%d permille): candidate p99 %.3f ms within "
      "budget %.3f ms",
      stage_, options_.ramp_permille[stage_], candidate.p99_ms, p99_budget);
  return state_;
}

RolloutState RolloutController::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int RolloutController::stage() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stage_;
}

int RolloutController::split_permille() const {
  return router_->split_permille(model_);
}

int64_t RolloutController::candidate_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return candidate_version_;
}

int64_t RolloutController::stable_version() const {
  return pool_->CurrentSnapshot(model_)->version();
}

std::string RolloutController::last_decision() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_decision_;
}

}  // namespace awmoe
