#ifndef AWMOE_SERVING_MODEL_POOL_H_
#define AWMOE_SERVING_MODEL_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/example.h"
#include "serving/request.h"

namespace awmoe {

class InferenceWorkspace;
class Ranker;
class Standardizer;

/// FNV-1a over the features a session-constant gate may read (behaviour
/// sequence + query + user): the validity stamp of a cached gate row.
/// Shared by the serving engine's lookups and the pool's gate warm-up,
/// which MUST agree or warmed rows would never hit. Every variable-
/// length section is preceded by its own length tag, so contexts that
/// differ only in where one section ends and the next begins can never
/// collide. Also the validity stamp of cached session ENCODINGS: the
/// encoding reads a subset of these fields (behaviour sequence + query
/// + user + age folds in via SessionHistoryHash on the score cache),
/// so "same gate context" conservatively implies "same encoding".
uint64_t GateContextHash(const Example& ex);

/// Hash of the SESSION-CONSTANT request fields (user, age, query,
/// behaviour history) — the score cache's invalidation trigger: when a
/// session's history hash changes (the user clicked something between
/// requests), every score cached for that session is stale.
uint64_t SessionHistoryHash(const Example& ex);

/// Content hash of EVERYTHING a candidate's score depends on: the
/// session-constant fields plus the candidate's target ids/attrs and
/// numeric features. Two examples with equal CandidateScoreHash collate
/// to identical batch rows, so (per-row batch-composition independence,
/// tests/models/inference_path_test.cc) they score bitwise-identically
/// — the property that lets the score cache verify per-element hashes
/// on lookup and makes set-hash collisions harmless.
uint64_t CandidateScoreHash(const Example& ex);

/// Outcome of a session-cache lookup, for per-level hit/miss/
/// invalidation counters: kStale means the entry existed but its
/// validity stamp no longer matched (history moved on) and was evicted.
enum class CacheLookup {
  kHit = 0,
  kMiss = 1,
  kStale = 2,
};

/// Per-session row LRU (§III-F gate rows across requests; since the
/// session feature store, also the candidate-independent behaviour-
/// sequence encodings, one instance each). Lives inside a model
/// snapshot, so a published weight update naturally starts cold — rows
/// computed under old weights can never leak into new-version scores.
/// Internally locked: lookups and inserts are short critical sections;
/// the expensive forwards happen under replica-lane locks, never under
/// this one.
class SessionGateCache {
 public:
  /// On a fresh hit (same session, same context hash) copies the cached
  /// row into `row`, touches the LRU, and returns kHit. A stale entry
  /// (same session, different hash — the behaviour sequence grew) is
  /// erased so the caller re-probes and returns kStale; kMiss means the
  /// session had no entry at all.
  CacheLookup Lookup(int64_t session_id, uint64_t context_hash,
                     std::vector<float>* row);

  /// Inserts (or overwrites) the session's row and trims the LRU to
  /// `capacity` entries. No-op when capacity <= 0.
  void Put(int64_t session_id, uint64_t context_hash,
           std::vector<float> row, int64_t capacity);

  int64_t size() const;
  /// Estimated resident bytes: float payload plus per-entry list/index
  /// node overhead (the memory-sizing gauge FleetStats reports).
  int64_t bytes() const;

 private:
  struct Entry {
    int64_t session_id = 0;
    uint64_t context_hash = 0;
    std::vector<float> row;
  };

  int64_t EntryBytes(const Entry& entry) const;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<int64_t, std::list<Entry>::iterator> index_;
  int64_t bytes_ = 0;
};

/// Level-1 result cache: full per-candidate scores of exact repeat
/// requests, keyed by (session_id, order-insensitive candidate-set
/// hash) and stamped with the session-history hash. A hit serves the
/// whole request without touching a replica lane. Like the gate cache
/// it lives inside a ModelSnapshot, so hot swaps retire it wholesale
/// (new version = cache-cold by construction) and entries can never
/// cross versions.
///
/// Correctness against hash collisions: the SET hash only routes to an
/// entry; the entry stores every candidate's full CandidateScoreHash,
/// and Lookup fills the output by matching each requested candidate's
/// hash against them — a request whose set hash collides with a
/// different candidate set fails the per-element match and misses.
class SessionScoreCache {
 public:
  /// kHit: every requested candidate's hash matched; `out[j]` holds the
  /// cached score of `item_hashes[j]` (request order, not stored
  /// order). kStale: the session's cached entries carry a history stamp
  /// other than `history_hash` — the session's history moved on — so
  /// ALL of the session's entries were evicted (detected whether or not
  /// this exact candidate set was cached: stale pages never linger).
  /// kMiss: the session has no entries (or none under a conflicting
  /// stamp) for this set hash, or a per-element hash failed to match
  /// (set-hash collision).
  CacheLookup Lookup(int64_t session_id, uint64_t set_hash,
                     uint64_t history_hash,
                     const std::vector<uint64_t>& item_hashes,
                     std::span<float> out);

  /// Inserts (or overwrites) the entry and trims the LRU to `capacity`.
  /// Entries of this session stamped with a DIFFERENT history hash are
  /// evicted first: all live entries of a session always share one
  /// history stamp. `item_hashes[j]` must describe `scores[j]`; both
  /// are re-ordered internally for lookup. No-op when capacity <= 0.
  void Put(int64_t session_id, uint64_t set_hash, uint64_t history_hash,
           const std::vector<uint64_t>& item_hashes,
           const std::vector<float>& scores, int64_t capacity);

  int64_t size() const;
  /// Estimated resident bytes (hash + score payload + node overhead).
  int64_t bytes() const;

 private:
  /// (session_id, candidate-set hash). Ordered map keys keep one
  /// session's entries contiguous, so history invalidation is a range
  /// erase instead of a full scan.
  using Key = std::pair<int64_t, uint64_t>;

  struct Entry {
    Key key;
    uint64_t history_hash = 0;
    /// Sorted ascending; scores[i] belongs to item_hashes[i].
    std::vector<uint64_t> item_hashes;
    std::vector<float> scores;
  };

  int64_t EntryBytes(const Entry& entry) const;
  /// Erases every entry of `session_id`. Caller holds mu_.
  void EraseSessionLocked(int64_t session_id);

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::map<Key, std::list<Entry>::iterator> index_;
  int64_t bytes_ = 0;
};

/// Point-in-time cache occupancy of one snapshot (or a pool-wide sum):
/// the capacity/memory accounting FleetStats surfaces.
struct CacheUsage {
  int64_t score_entries = 0;
  int64_t score_bytes = 0;
  int64_t encoding_entries = 0;
  int64_t encoding_bytes = 0;
  int64_t gate_entries = 0;
  int64_t gate_bytes = 0;

  CacheUsage& operator+=(const CacheUsage& other) {
    score_entries += other.score_entries;
    score_bytes += other.score_bytes;
    encoding_entries += other.encoding_entries;
    encoding_bytes += other.encoding_bytes;
    gate_entries += other.gate_entries;
    gate_bytes += other.gate_bytes;
    return *this;
  }
};

/// One execution lane of a snapshot: a ranker replica with its own
/// weight storage (lane 0 borrows the registered model; lanes 1..N-1
/// are deep clones), its own forward lock, and lease counters. N lanes
/// mean N forwards for the same model can run concurrently.
struct ReplicaLane {
  Ranker* model = nullptr;
  std::unique_ptr<Ranker> owned;  // Null for a borrowed lane-0 model.

  /// The lane's preallocated ScoreInto state (arena + staging buffers),
  /// created lazily by EnsureWorkspace and kept for the lane's
  /// lifetime: each lane scores with its own buffers, so lanes stay
  /// lock-free against each other and cache-warm across micro-batches.
  /// Guarded by `mu`, like every forward on this lane.
  std::unique_ptr<InferenceWorkspace> workspace;

  /// Returns the lane workspace, (re)creating it when absent or sized
  /// below `min_candidates`. Caller must hold `mu`.
  InferenceWorkspace* EnsureWorkspace(int64_t min_candidates);

  /// Serialises forwards on this lane (the graph-free inference path
  /// still shares per-replica model state and the lane workspace).
  std::mutex mu;
  /// Leases currently held on this lane (lane-occupancy gauge).
  std::atomic<int64_t> active{0};
  /// Lifetime lease count.
  std::atomic<int64_t> leases{0};
};

/// An immutable, refcounted published version of one model: the replica
/// lanes plus the per-session gate cache. `shared_ptr<const
/// ModelSnapshot>` is the retirement mechanism — in-flight requests
/// hold the snapshot they started on, so `ModelPool::UpdateModel` can
/// publish a new version while old-version forwards finish untorn; the
/// old snapshot (and its clones) frees itself when the last lease
/// releases.
class ModelSnapshot {
 public:
  /// Built by ModelPool. `base` is lane 0 (owned when `owned_base` is
  /// non-null); lanes beyond the first are materialised via
  /// `base->Clone()`. A model that cannot clone serves single-lane.
  ModelSnapshot(std::string name, int64_t version, Ranker* base,
                std::unique_ptr<Ranker> owned_base, int replicas,
                const DatasetMeta& meta,
                std::shared_ptr<std::atomic<int64_t>> live_counter);
  ~ModelSnapshot();

  ModelSnapshot(const ModelSnapshot&) = delete;
  ModelSnapshot& operator=(const ModelSnapshot&) = delete;

  const std::string& name() const { return name_; }
  int64_t version() const { return version_; }
  int num_replicas() const { return static_cast<int>(lanes_.size()); }
  /// §III-F eligibility, computed once at publish time from the model's
  /// own declaration (SupportsSessionGateReuse + a non-zero gate width)
  /// — any ranker with a session-constant gate qualifies, no downcast.
  bool gate_shareable() const { return gate_shareable_; }
  /// Width of one cached gate row (SessionGateWidth() of the model; 0
  /// when not gate-shareable).
  int64_t gate_width() const { return gate_width_; }
  /// Session-feature-store eligibility, same publish-time pattern:
  /// SupportsSessionEncodingReuse + a non-zero encoding width.
  bool encoding_shareable() const { return encoding_shareable_; }
  /// Width of one cached session-encoding row
  /// (SessionEncodingWidth() of the model; 0 when not shareable).
  int64_t encoding_width() const { return encoding_width_; }
  /// True when the model scores SLATES jointly (SupportsSlateScoring at
  /// publish time): the engine must keep each request's rows atomic in
  /// one forward and must NOT serve level-1 cached scores — a cached
  /// score was computed against a possibly different slate, so reusing
  /// it would silently change the candidate's context.
  bool slate_scoring() const { return slate_scoring_; }
  /// Hard per-slate length cap of a slate-scoring model
  /// (Ranker::MaxSlateItems at publish time; 0 when pointwise or
  /// unlimited). The engine's ADMISSION check: a request with more
  /// candidates than this is rejected with kInvalidArgument instead of
  /// reaching a forward that CHECK-fails on it.
  int64_t max_slate_items() const { return max_slate_items_; }

  /// Lane 0's model — the registered/published instance itself.
  Ranker* primary() const { return lanes_[0]->model; }

  ReplicaLane& lane(int replica) const { return *lanes_[replica]; }

  /// Lanes currently executing or holding a lease (> 0 active).
  int ActiveLanes() const;

  SessionGateCache& gate_cache() const { return gate_cache_; }
  /// Level-2 feature store: cached candidate-independent behaviour-
  /// sequence encodings, keyed per session under GateContextHash.
  SessionGateCache& encoding_cache() const { return encoding_cache_; }
  /// Level-1 result cache: full repeat-request scores.
  SessionScoreCache& score_cache() const { return score_cache_; }

  /// Current occupancy of all three snapshot-scoped caches.
  CacheUsage cache_usage() const;

 private:
  std::string name_;
  int64_t version_;
  bool gate_shareable_ = false;
  int64_t gate_width_ = 0;
  bool encoding_shareable_ = false;
  int64_t encoding_width_ = 0;
  bool slate_scoring_ = false;
  int64_t max_slate_items_ = 0;
  // unique_ptr elements: lanes hold a mutex and atomics, so they must
  // not move once handed out.
  std::vector<std::unique_ptr<ReplicaLane>> lanes_;
  mutable SessionGateCache gate_cache_;
  mutable SessionGateCache encoding_cache_;
  mutable SessionScoreCache score_cache_;
  std::shared_ptr<std::atomic<int64_t>> live_counter_;
};

/// RAII grant of (snapshot, replica lane): holding the lease pins the
/// snapshot (refcount) and counts against the lane's occupancy. The
/// caller locks `lane().mu` around its forwards; the lease itself does
/// not hold the lock, so acquiring is cheap and never blocks behind a
/// running forward.
class SnapshotLease {
 public:
  SnapshotLease() = default;
  SnapshotLease(std::shared_ptr<const ModelSnapshot> snapshot, int replica,
                int active_lanes, RolloutArm arm = RolloutArm::kStable);
  ~SnapshotLease();

  SnapshotLease(SnapshotLease&& other) noexcept;
  SnapshotLease& operator=(SnapshotLease&& other) noexcept;
  SnapshotLease(const SnapshotLease&) = delete;
  SnapshotLease& operator=(const SnapshotLease&) = delete;

  explicit operator bool() const { return snapshot_ != nullptr; }
  const ModelSnapshot& snapshot() const { return *snapshot_; }
  ReplicaLane& lane() const { return snapshot_->lane(replica_); }
  int replica() const { return replica_; }
  /// Arm this lease was actually granted on: kStable when an acquire
  /// routed at the candidate fell back because none was staged (or the
  /// rollout was rolled back between routing and acquiring).
  RolloutArm arm() const { return arm_; }
  /// Snapshot lanes active (including this lease) at acquire time — the
  /// lane-occupancy sample the stats record.
  int active_lanes_at_acquire() const { return active_lanes_; }

 private:
  void Release();

  std::shared_ptr<const ModelSnapshot> snapshot_;
  int replica_ = 0;
  int active_lanes_ = 0;
  RolloutArm arm_ = RolloutArm::kStable;
};

struct ModelPoolOptions {
  /// Execution lanes per published snapshot: one loaded model is
  /// expanded into `replicas` deep clones so that many forwards for the
  /// same model run concurrently instead of queueing on one lock.
  /// Models whose Clone() returns null serve single-lane regardless.
  int replicas = 1;
};

/// Named, versioned ranking models behind one shared preprocessing
/// context (DatasetMeta + fitted Standardizer) — the successor of the
/// startup-only ModelRegistry. Each name maps to the current
/// `ModelSnapshot`; `Acquire` hands out snapshot+replica leases for
/// forwards, and `UpdateModel` atomically publishes a new version while
/// in-flight leases finish on the old one (grace-period retirement via
/// refcount — no torn reads, no locks held across forwards).
///
/// The pool is also the unit an A/B experiment operates on: control and
/// treatment are two names in one pool, served by one engine with
/// identical collation, so score differences come only from the models.
///
/// For staged rollouts each name can additionally pin a CANDIDATE
/// snapshot next to the stable one (`StageCandidate`): both versions
/// stay live and leasable at once so a `TrafficRouter` can ramp real
/// traffic between them, then `PromoteCandidate` or `DropCandidate`
/// ends the rollout (serving/rollout.h orchestrates the ramp).
class ModelPool {
 public:
  /// `standardizer` may be null (raw features) and is not owned.
  ModelPool(const DatasetMeta& meta, const Standardizer* standardizer,
            ModelPoolOptions options = {});

  ModelPool(const ModelPool&) = delete;
  ModelPool& operator=(const ModelPool&) = delete;

  /// Registers a non-owned model as version 1 under `name`. The first
  /// registration becomes the default route. Names must be unique and
  /// non-empty.
  void Register(const std::string& name, Ranker* model);

  /// Registers a model the pool takes ownership of. `first_version`
  /// (default 1) is the version number it is published as: the sharded
  /// fleet (serving/shard.h) passes the fleet's current version when a
  /// shard is added mid-life, so every shard mints the same version
  /// numbers for the same publish history (stats and rollout health
  /// windows key on (model, version)).
  void RegisterOwned(const std::string& name, std::unique_ptr<Ranker> model,
                     int64_t first_version = 1);

  /// Atomically publishes `model` as the next version of `name` (which
  /// must already be registered) and returns the new version number.
  /// Requests already holding a lease finish on the old snapshot; new
  /// acquires see only the new one. The retired snapshot frees itself
  /// (clones included) when its last lease releases. This is the
  /// ALL-OR-NOTHING cutover; CHECK-fails while a candidate is staged —
  /// promote or drop the rollout first (mixing the two publish paths
  /// would fork the version history).
  int64_t UpdateModel(const std::string& name, std::unique_ptr<Ranker> model);

  // --- Staged rollout: a second live pinned version per model. ---

  /// Publishes `model` as the CANDIDATE version of `name` without
  /// touching the stable route: both snapshots stay live and leasable,
  /// so a TrafficRouter can ramp real traffic between them (see
  /// serving/rollout.h). Returns the candidate's version number (minted
  /// after the newest version ever published under this name). Staging
  /// over an existing candidate replaces it; the displaced candidate
  /// retires when its last lease releases.
  int64_t StageCandidate(const std::string& name,
                         std::unique_ptr<Ranker> model);

  /// Completes a rollout: the candidate becomes the stable route and the
  /// old stable snapshot retires when its last lease drains. Counts as a
  /// publish (`swap_count` increments). CHECK-fails when no candidate is
  /// staged. Returns the promoted version number.
  int64_t PromoteCandidate(const std::string& name);

  /// Aborts a rollout: the candidate is unpublished and retires when the
  /// last in-flight lease on it releases; the stable route is untouched.
  /// New acquires routed at the candidate fall back to stable. No-op
  /// (returns false) when no candidate is staged.
  bool DropCandidate(const std::string& name);

  /// Gate-cache warm-up: pre-populates the gate LRU of `name`'s
  /// snapshot on `arm` (kCandidate warms a staged rollout candidate
  /// BEFORE it takes traffic, so its first ramp slice starts gate-warm
  /// instead of paying cold probes; kStable warms e.g. a freshly
  /// registered model from logged sessions). One gate row is computed
  /// per session — from its first item, exactly as the engine probes —
  /// and stored under the same GateContextHash, so the engine's
  /// lookups hit. Rows are scored through lane 0's workspace in
  /// micro-batches. Returns the number of sessions cached: 0 when the
  /// snapshot is missing (no candidate staged), the model has no
  /// shareable gate, or `gate_cache_capacity` <= 0 (pass the serving
  /// engine's configured capacity so eviction order matches serving).
  int64_t WarmSessionGates(
      const std::string& name, RolloutArm arm,
      const std::vector<std::vector<const Example*>>& sessions,
      int64_t gate_cache_capacity);

  /// The staged candidate snapshot under `resolved_name`, or nullptr.
  std::shared_ptr<const ModelSnapshot> CandidateSnapshot(
      const std::string& resolved_name) const;

  /// The staged candidate's version, or 0 when none is staged.
  int64_t CandidateVersion(const std::string& resolved_name) const;

  bool HasCandidate(const std::string& resolved_name) const;

  /// Re-points the default route (name must be registered).
  void SetDefault(const std::string& name);

  /// The current primary model under `name`, or nullptr when absent.
  /// The raw pointer is NOT pinned: for models the pool owns
  /// (RegisterOwned / UpdateModel), a concurrent UpdateModel retires
  /// the snapshot and frees it. Startup/test introspection only —
  /// serving paths must go through Acquire/CurrentSnapshot.
  Ranker* Find(const std::string& name) const;

  /// Resolves a request route: empty name -> default model. CHECK-fails
  /// on an unknown non-empty name or an empty pool. Same pinning caveat
  /// as Find().
  Ranker* Resolve(const std::string& name) const;

  /// The pool name `Resolve(name)` routes to. Returned by value: the
  /// default route can be re-pointed at runtime, so a reference into
  /// pool state could be overwritten mid-read.
  std::string ResolveName(const std::string& name) const;

  /// The current STABLE snapshot published under `resolved_name`.
  std::shared_ptr<const ModelSnapshot> CurrentSnapshot(
      const std::string& resolved_name) const;

  /// Pins the current stable snapshot of `resolved_name` and picks its
  /// least-loaded replica lane (round-robin on ties).
  SnapshotLease Acquire(const std::string& resolved_name) const;

  /// Arm-aware acquire: kStable pins the stable snapshot; kCandidate
  /// pins the staged candidate, falling back to stable when none is
  /// staged (rollback drains in-flight candidate leases, then every new
  /// acquire lands here). `SnapshotLease::arm()` reports which arm was
  /// actually granted. Composition of SnapshotForArm + LeaseLane.
  SnapshotLease Acquire(const std::string& resolved_name,
                        RolloutArm arm) const;

  /// Pins the snapshot `arm` resolves to — the snapshot HALF of
  /// Acquire, split out so the serving engine can consult the
  /// snapshot's caches (a full score-cache hit never needs a lane) and
  /// lease a lane only if real compute remains. Writes the arm actually
  /// granted (kStable fallback when no candidate is staged) to
  /// `granted` when non-null.
  std::shared_ptr<const ModelSnapshot> SnapshotForArm(
      const std::string& resolved_name, RolloutArm arm,
      RolloutArm* granted) const;

  /// The lane HALF of Acquire: picks `snapshot`'s least-loaded replica
  /// lane (round-robin on ties) and returns the lease pinning it.
  SnapshotLease LeaseLane(std::shared_ptr<const ModelSnapshot> snapshot,
                          RolloutArm granted) const;

  /// Summed cache occupancy over every live published snapshot (stable
  /// and staged candidates) — the pool's contribution to the fleet's
  /// cache-memory gauges.
  CacheUsage TotalCacheUsage() const;

  std::string default_model() const;

  /// Registered names in registration order (copied under the lock:
  /// registration may race a reader on the vector's storage).
  std::vector<std::string> Names() const;

  size_t size() const;

  const DatasetMeta& meta() const { return meta_; }
  const Standardizer* standardizer() const { return standardizer_; }
  int replicas() const { return options_.replicas; }

  /// Stable-route publications: UpdateModel cutovers plus promoted
  /// candidates (initial registrations and stagings excluded).
  int64_t swap_count() const { return swap_count_.load(); }

  /// Snapshots currently alive — published ones (stable AND staged
  /// candidates) plus retired ones still pinned by leases. The hot-swap
  /// and rollout tests use this as the leak check: once traffic drains
  /// it must equal `size()` plus the number of staged candidates.
  int64_t live_snapshots() const { return live_snapshots_->load(); }

 private:
  /// One route: the stable snapshot every request is served by unless a
  /// rollout is ramping, plus the optional staged candidate.
  struct RouteEntry {
    std::shared_ptr<const ModelSnapshot> stable;
    std::shared_ptr<const ModelSnapshot> candidate;  // Null outside rollouts.
    /// High-water mark of version numbers minted under this name —
    /// monotone even when a staged candidate is dropped, so a later
    /// publish can never reuse a rolled-back version number (stats
    /// health windows key on (model, version)).
    int64_t newest_version = 1;
  };

  std::shared_ptr<const ModelSnapshot> MakeSnapshot(
      const std::string& name, int64_t version, Ranker* base,
      std::unique_ptr<Ranker> owned_base) const;
  void Insert(const std::string& name, Ranker* base,
              std::unique_ptr<Ranker> owned_base, int64_t first_version = 1);

  DatasetMeta meta_;
  const Standardizer* standardizer_;
  ModelPoolOptions options_;

  mutable std::mutex mu_;  // Guards names_, entries_, default_name_.
  std::vector<std::string> names_;
  std::unordered_map<std::string, RouteEntry> entries_;
  std::string default_name_;

  /// Serialises UpdateModel publishers (held across read-version ->
  /// clone -> publish) so two concurrent publishes for one name cannot
  /// mint the same version number. Never taken under mu_; Acquire never
  /// takes it, so publishing does not stall serving.
  std::mutex publish_mu_;

  std::atomic<int64_t> swap_count_{0};
  mutable std::atomic<uint64_t> round_robin_{0};
  std::shared_ptr<std::atomic<int64_t>> live_snapshots_;
};

}  // namespace awmoe

#endif  // AWMOE_SERVING_MODEL_POOL_H_
