#include "util/logging.h"

#include <atomic>

namespace awmoe {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

namespace internal_log {

LogMessage::LogMessage(LogLevel level, const char* /*file*/, int /*line*/)
    : enabled_(static_cast<int>(level) >= g_log_level.load()) {
  if (enabled_) stream_ << "[" << LevelName(level) << "] ";
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << "\n";
}

}  // namespace internal_log
}  // namespace awmoe
