#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace awmoe {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  has_cached_normal_ = false;
}

uint64_t Rng::NextU64() {
  // xoshiro256++ step.
  uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  AWMOE_DCHECK(lo <= hi) << "lo=" << lo << " hi=" << hi;
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t n) {
  AWMOE_CHECK(n > 0) << "UniformInt bound must be positive, got " << n;
  // Rejection sampling to avoid modulo bias.
  uint64_t un = static_cast<uint64_t>(n);
  uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x;
  do {
    x = NextU64();
  } while (x >= limit);
  return static_cast<int64_t>(x % un);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  AWMOE_CHECK(lo < hi) << "lo=" << lo << " hi=" << hi;
  return lo + UniformInt(hi - lo);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform.
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int64_t Rng::Categorical(const std::vector<double>& weights) {
  AWMOE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    AWMOE_DCHECK(w >= 0.0) << "negative categorical weight " << w;
    total += w;
  }
  AWMOE_CHECK(total > 0.0) << "categorical weights sum to zero";
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

int64_t Rng::Geometric(double p, int64_t cap) {
  AWMOE_CHECK(p > 0.0 && p <= 1.0) << "p=" << p;
  int64_t failures = 0;
  while (failures < cap && !Bernoulli(p)) ++failures;
  return failures;
}

double Rng::Exponential(double rate) {
  AWMOE_CHECK(rate > 0.0) << "rate=" << rate;
  double u = Uniform();
  while (u <= 1e-300) u = Uniform();
  return -std::log(u) / rate;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  AWMOE_CHECK(k >= 0 && k <= n) << "k=" << k << " n=" << n;
  // Floyd's algorithm: O(k) expected insertions.
  std::vector<int64_t> chosen;
  chosen.reserve(k);
  for (int64_t j = n - k; j < n; ++j) {
    int64_t t = UniformInt(j + 1);
    bool seen = false;
    for (int64_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  return chosen;
}

Rng Rng::Fork() {
  Rng child(NextU64() ^ 0xD1B54A32D192ED03ULL);
  return child;
}

ZipfDistribution::ZipfDistribution(int64_t n, double s) {
  AWMOE_CHECK(n > 0) << "ZipfDistribution needs n > 0, got " << n;
  AWMOE_CHECK(s >= 0.0) << "ZipfDistribution needs s >= 0, got " << s;
  cdf_.resize(n);
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (int64_t i = 0; i < n; ++i) cdf_[i] /= acc;
  cdf_[n - 1] = 1.0;  // Guard against accumulated rounding.
}

int64_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->Uniform();
  // First index whose CDF value exceeds u.
  int64_t lo = 0;
  int64_t hi = static_cast<int64_t>(cdf_.size()) - 1;
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] <= u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace awmoe
