#ifndef AWMOE_UTIL_RNG_H_
#define AWMOE_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace awmoe {

/// Deterministic pseudo-random number generator (xoshiro256++ seeded via
/// SplitMix64). Every source of randomness in the library flows through an
/// explicitly seeded Rng so experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator; identical seeds produce identical streams.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Uniform integer in [lo, hi). Requires lo < hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Samples an index from an (unnormalised, non-negative) weight vector.
  /// Requires at least one positive weight.
  int64_t Categorical(const std::vector<double>& weights);

  /// Geometric-ish draw: number of failures before first success, capped.
  int64_t Geometric(double p, int64_t cap);

  /// Exponential with the given rate (lambda > 0).
  double Exponential(double rate);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (int64_t i = static_cast<int64_t>(v->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), order unspecified.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Derives an independent child generator; changing the order of Fork()
  /// calls does not perturb this generator's own stream consumers.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Zipf distribution over [0, n) with exponent s >= 0 (s = 0 is uniform;
/// larger s concentrates mass on small indices). Precomputes the CDF once so
/// sampling is an O(log n) binary search — exact for any s, unlike rejection
/// methods that require s > 1.
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t n, double s);

  /// Draws one value in [0, n).
  int64_t Sample(Rng* rng) const;

  int64_t n() const { return static_cast<int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace awmoe

#endif  // AWMOE_UTIL_RNG_H_
