#ifndef AWMOE_UTIL_STRING_UTIL_H_
#define AWMOE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace awmoe {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `text` on the single character `sep`; keeps empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double with `digits` places after the decimal point.
std::string FormatDouble(double value, int digits);

/// Formats a p-value in the paper's scientific style, e.g. "1.33E-15";
/// values below 1e-20 are clamped to "1.00E-20" as in the paper's tables.
std::string FormatPValue(double p);

}  // namespace awmoe

#endif  // AWMOE_UTIL_STRING_UTIL_H_
