#ifndef AWMOE_UTIL_FLAGS_H_
#define AWMOE_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace awmoe {

/// Minimal command-line flag parser used by the examples and bench harnesses.
/// Flags are registered with defaults, then Parse consumes `--name=value` or
/// `--name value` tokens (and bare `--name` for bools). Unknown flags are an
/// error so typos fail loudly.
class FlagSet {
 public:
  explicit FlagSet(std::string program_description = "");

  FlagSet(const FlagSet&) = delete;
  FlagSet& operator=(const FlagSet&) = delete;

  /// Registration. Pointers must outlive Parse().
  void AddInt(const std::string& name, int64_t* value,
              const std::string& help);
  void AddDouble(const std::string& name, double* value,
                 const std::string& help);
  void AddString(const std::string& name, std::string* value,
                 const std::string& help);
  void AddBool(const std::string& name, bool* value, const std::string& help);

  /// Parses argv; on `--help` prints usage and returns a NotFound status the
  /// caller should treat as "exit 0".
  Status Parse(int argc, char** argv);

  /// Usage text for all registered flags.
  std::string Usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::string program_description_;
  std::map<std::string, Flag> flags_;
};

}  // namespace awmoe

#endif  // AWMOE_UTIL_FLAGS_H_
