#ifndef AWMOE_UTIL_CSV_WRITER_H_
#define AWMOE_UTIL_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace awmoe {

/// Writes simple CSV files (figure data series, t-SNE coordinates). Fields
/// containing commas/quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  CsvWriter() = default;

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Opens `path` for writing (truncates).
  Status Open(const std::string& path);

  /// Writes one row. No-op error if the file is not open.
  Status WriteRow(const std::vector<std::string>& fields);

  /// Flushes and closes.
  Status Close();

  bool is_open() const { return out_.is_open(); }

 private:
  static std::string EscapeField(const std::string& field);

  std::ofstream out_;
};

}  // namespace awmoe

#endif  // AWMOE_UTIL_CSV_WRITER_H_
