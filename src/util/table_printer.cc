#include "util/table_printer.h"

#include <algorithm>
#include <iostream>
#include <sstream>

namespace awmoe {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  size_t num_cols = header_.size();
  for (const auto& row : rows_) num_cols = std::max(num_cols, row.size());
  if (num_cols == 0) return title_.empty() ? "" : title_ + "\n";

  std::vector<size_t> widths(num_cols, 0);
  auto update_widths = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  update_widths(header_);
  for (const auto& row : rows_) update_widths(row);

  auto render_rule = [&](std::ostringstream& os) {
    os << '+';
    for (size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto render_row = [&](std::ostringstream& os,
                        const std::vector<std::string>& row) {
    os << '|';
    for (size_t i = 0; i < num_cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << ' ' << cell << std::string(widths[i] - cell.size() + 1, ' ')
         << '|';
    }
    os << '\n';
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  render_rule(os);
  if (!header_.empty()) {
    render_row(os, header_);
    render_rule(os);
  }
  for (const auto& row : rows_) {
    if (row.empty()) {
      render_rule(os);
    } else {
      render_row(os, row);
    }
  }
  render_rule(os);
  return os.str();
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

}  // namespace awmoe
