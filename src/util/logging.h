#ifndef AWMOE_UTIL_LOGGING_H_
#define AWMOE_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace awmoe {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns/sets the global minimum severity that is actually emitted.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_log {

/// One log statement; flushes "<LEVEL> <message>\n" to stderr on destruction
/// if the statement's level passes the global threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_log
}  // namespace awmoe

#define AWMOE_LOG(level)                                  \
  ::awmoe::internal_log::LogMessage(                      \
      ::awmoe::LogLevel::k##level, __FILE__, __LINE__)

#endif  // AWMOE_UTIL_LOGGING_H_
