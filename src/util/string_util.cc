#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace awmoe {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

std::string FormatPValue(double p) {
  if (p < 1e-20) p = 1e-20;
  return StrFormat("%.2E", p);
}

}  // namespace awmoe
