#include "util/flags.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/string_util.h"

namespace awmoe {

FlagSet::FlagSet(std::string program_description)
    : program_description_(std::move(program_description)) {}

void FlagSet::AddInt(const std::string& name, int64_t* value,
                     const std::string& help) {
  flags_[name] = Flag{Kind::kInt, value, help, std::to_string(*value)};
}

void FlagSet::AddDouble(const std::string& name, double* value,
                        const std::string& help) {
  flags_[name] = Flag{Kind::kDouble, value, help, StrFormat("%g", *value)};
}

void FlagSet::AddString(const std::string& name, std::string* value,
                        const std::string& help) {
  flags_[name] = Flag{Kind::kString, value, help, *value};
}

void FlagSet::AddBool(const std::string& name, bool* value,
                      const std::string& help) {
  flags_[name] = Flag{Kind::kBool, value, help, *value ? "true" : "false"};
}

Status FlagSet::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& flag = it->second;
  char* end = nullptr;
  switch (flag.kind) {
    case Kind::kInt: {
      long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      *static_cast<int64_t*>(flag.target) = v;
      return Status::OK();
    }
    case Kind::kDouble: {
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      *static_cast<double*>(flag.target) = v;
      return Status::OK();
    }
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::OK();
    case Kind::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable flag kind");
}

Status FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << Usage();
      return Status::NotFound("help requested");
    }
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument '" + arg +
                                     "'");
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      AWMOE_RETURN_IF_ERROR(SetValue(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + body);
    }
    if (it->second.kind == Kind::kBool) {
      *static_cast<bool*>(it->second.target) = true;
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + body + " needs a value");
    }
    AWMOE_RETURN_IF_ERROR(SetValue(body, argv[++i]));
  }
  return Status::OK();
}

std::string FlagSet::Usage() const {
  std::ostringstream os;
  if (!program_description_.empty()) os << program_description_ << "\n";
  os << "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_repr << ")\n"
       << "      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace awmoe
