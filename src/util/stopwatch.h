#ifndef AWMOE_UTIL_STOPWATCH_H_
#define AWMOE_UTIL_STOPWATCH_H_

#include <chrono>

namespace awmoe {

/// Wall-clock stopwatch for coarse progress reporting and serving-latency
/// accounting. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace awmoe

#endif  // AWMOE_UTIL_STOPWATCH_H_
