#ifndef AWMOE_UTIL_CHECK_H_
#define AWMOE_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace awmoe {
namespace internal_check {

/// Collects a streamed failure message and aborts the process when
/// destroyed. Used only via the AWMOE_CHECK macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }
  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Turns the streamed expression into void so the ternary in AWMOE_CHECK
/// type-checks; `&` binds looser than `<<`, so the whole message is
/// collected first.
struct Voidifier {
  void operator&(CheckFailureStream&) const {}
  void operator&(CheckFailureStream&&) const {}
};

}  // namespace internal_check
}  // namespace awmoe

/// Fatal invariant check: aborts with a message when `condition` is false.
/// Supports streaming extra context: AWMOE_CHECK(n > 0) << "n=" << n;
/// Used for programmer errors (shape mismatches, index bugs); recoverable
/// errors go through Status/Result instead.
#define AWMOE_CHECK(condition)                                 \
  (condition) ? (void)0                                        \
              : ::awmoe::internal_check::Voidifier() &         \
                    ::awmoe::internal_check::CheckFailureStream( \
                        #condition, __FILE__, __LINE__)

/// Debug-only check. The library is small enough that keeping these on in
/// release builds is cheap and catches real bugs, so it aliases AWMOE_CHECK.
#define AWMOE_DCHECK(condition) AWMOE_CHECK(condition)

#endif  // AWMOE_UTIL_CHECK_H_
