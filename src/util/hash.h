#ifndef AWMOE_UTIL_HASH_H_
#define AWMOE_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace awmoe {

/// FNV-1a 64-bit offset basis / prime — the one place these constants
/// live (gate-context hashing and rollout bucketing both build on
/// them).
inline constexpr uint64_t kFnv1a64Offset = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnv1a64Prime = 0x100000001b3ull;

/// One FNV-1a absorption step over a 64-bit word. Callers hashing
/// heterogeneous records fold each field through this, starting from
/// kFnv1a64Offset.
inline uint64_t Fnv1a64Mix(uint64_t h, uint64_t v) {
  h ^= v;
  h *= kFnv1a64Prime;
  return h;
}

/// FNV-1a over a byte string.
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = kFnv1a64Offset;
  for (char c : bytes) {
    h = Fnv1a64Mix(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

/// splitmix64 finaliser: a full-avalanche bijective mix, so consecutive
/// inputs (e.g. sequential session ids) land in unrelated outputs.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Order-insensitive set-hash combiner: folds one element hash into the
/// running set hash. Addition is commutative, so any permutation of the
/// same elements produces the same set hash — the property the
/// candidate-set score cache keys on (a repeat request may carry its
/// candidates in any order). The avalanche mix first keeps structured
/// element hashes (e.g. small consecutive ids) from cancelling or
/// colliding under the sum. Note multiplicity still matters: {a, a, b}
/// and {a, b} hash differently. Start from 0 for the empty set.
inline uint64_t SetHashAdd(uint64_t set_hash, uint64_t element_hash) {
  return set_hash + Mix64(element_hash);
}

}  // namespace awmoe

#endif  // AWMOE_UTIL_HASH_H_
