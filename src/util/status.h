#ifndef AWMOE_UTIL_STATUS_H_
#define AWMOE_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace awmoe {

/// Canonical error codes, modelled after the Arrow/RocksDB status idiom.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kIOError = 7,
  kInternal = 8,
  kResourceExhausted = 9,
  kUnavailable = 10,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value returned by every fallible operation
/// in the library. Constructors never fail; anything that can fail returns a
/// `Status` (or a `Result<T>`, see result.h). Exceptions are not used.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace awmoe

/// Propagates a non-OK status to the caller.
#define AWMOE_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::awmoe::Status _awmoe_status = (expr);         \
    if (!_awmoe_status.ok()) return _awmoe_status;  \
  } while (false)

#endif  // AWMOE_UTIL_STATUS_H_
