#include "util/csv_writer.h"

namespace awmoe {

Status CsvWriter::Open(const std::string& path) {
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return Status::OK();
}

std::string CsvWriter::EscapeField(const std::string& field) {
  bool needs_quoting = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!out_.is_open()) {
    return Status::FailedPrecondition("CsvWriter not open");
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << EscapeField(fields[i]);
  }
  out_ << '\n';
  if (!out_.good()) return Status::IOError("write failed");
  return Status::OK();
}

Status CsvWriter::Close() {
  if (out_.is_open()) {
    out_.close();
    if (out_.fail()) return Status::IOError("close failed");
  }
  return Status::OK();
}

}  // namespace awmoe
