#ifndef AWMOE_UTIL_RESULT_H_
#define AWMOE_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/check.h"
#include "util/status.h"

namespace awmoe {

/// Holds either a value of type `T` or an error `Status` (never both).
/// Mirrors arrow::Result / absl::StatusOr. Accessing the value of an errored
/// result is a checked fatal error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work in
  /// functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status; CHECK-fails on OK status
  /// because an OK Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    AWMOE_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    AWMOE_CHECK(ok()) << "ValueOrDie on error: " << status_.ToString();
    return *value_;
  }
  T& ValueOrDie() & {
    AWMOE_CHECK(ok()) << "ValueOrDie on error: " << status_.ToString();
    return *value_;
  }
  T&& ValueOrDie() && {
    AWMOE_CHECK(ok()) << "ValueOrDie on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace awmoe

/// Evaluates `rexpr` (a Result<T>), propagating errors; on success binds the
/// value to `lhs`.
#define AWMOE_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  AWMOE_ASSIGN_OR_RETURN_IMPL(                                  \
      AWMOE_CONCAT_NAME(_awmoe_result_, __LINE__), lhs, rexpr)

#define AWMOE_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                \
  if (!result_name.ok()) return result_name.status();        \
  lhs = std::move(result_name).ValueOrDie()

#define AWMOE_CONCAT_NAME(x, y) AWMOE_CONCAT_NAME_IMPL(x, y)
#define AWMOE_CONCAT_NAME_IMPL(x, y) x##y

#endif  // AWMOE_UTIL_RESULT_H_
