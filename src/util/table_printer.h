#ifndef AWMOE_UTIL_TABLE_PRINTER_H_
#define AWMOE_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace awmoe {

/// Renders aligned ASCII tables matching the paper's result tables. Used by
/// every bench binary so the console output is directly comparable to the
/// paper rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title = "");

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  /// Inserts a horizontal separator line after the current last row.
  void AddSeparator();

  /// Renders the full table to a string.
  std::string ToString() const;

  /// Convenience: renders and writes to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // Empty vector = separator.
};

}  // namespace awmoe

#endif  // AWMOE_UTIL_TABLE_PRINTER_H_
