#ifndef AWMOE_EVAL_METRICS_H_
#define AWMOE_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "data/example.h"

namespace awmoe {

/// Session-grouped ranking evaluation (paper §IV-B). AUC follows Eq. 12
/// (mean of per-session AUCs over sessions that contain both classes);
/// NDCG follows Eq. 13 with binary gains. The @K variants restrict each
/// session to its top-K items by predicted score.
struct RankingEvaluation {
  double auc = 0.0;
  double auc_at_k = 0.0;
  double ndcg = 0.0;
  double ndcg_at_k = 0.0;

  /// Per-session metric values (aligned across the four vectors), for
  /// paired significance testing. Sessions lacking both classes are
  /// excluded from the AUC vectors but kept for NDCG.
  std::vector<double> session_auc;
  std::vector<double> session_auc_at_k;
  std::vector<double> session_ndcg;
  std::vector<double> session_ndcg_at_k;
  /// Session ids aligned with session_ndcg (the superset).
  std::vector<int64_t> ndcg_session_ids;
  /// Session ids aligned with session_auc.
  std::vector<int64_t> auc_session_ids;

  int64_t num_sessions = 0;
};

/// Evaluates predicted `scores` (aligned with `examples`) with session
/// grouping. `k` is the @K cut (paper: 10).
RankingEvaluation EvaluateRanking(const std::vector<Example>& examples,
                                  const std::vector<double>& scores,
                                  int64_t k = 10);

/// Pooled (sessionless) AUC over all examples — the Table V metric for the
/// Amazon dataset, where each "session" is one positive/negative pair.
double OverallAuc(const std::vector<float>& labels,
                  const std::vector<double>& scores);

/// AUC of one score/label list; returns 0.5 when only one class present.
double AucOf(const std::vector<float>& labels,
             const std::vector<double>& scores);

/// Binary-gain NDCG of one list (Eq. 13); `k` <= 0 means no cut.
double NdcgOf(const std::vector<float>& labels,
              const std::vector<double>& scores, int64_t k);

/// Two-sided paired t-test p-value over per-unit metric differences.
/// Inputs must be equally sized and pairwise aligned; n >= 2.
double PairedTTestPValue(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Two-sided paired bootstrap p-value (resampling units with replacement):
/// the fraction of resamples whose mean difference crosses zero, doubled
/// and clamped to [2/(iters+1), 1].
double PairedBootstrapPValue(const std::vector<double>& a,
                             const std::vector<double>& b,
                             int64_t iterations = 2000, uint64_t seed = 99);

/// Aligns the per-session vectors of two evaluations on common session ids
/// and returns the paired t-test p-value for the chosen vectors.
double SessionPValue(const std::vector<int64_t>& ids_a,
                     const std::vector<double>& values_a,
                     const std::vector<int64_t>& ids_b,
                     const std::vector<double>& values_b);

}  // namespace awmoe

#endif  // AWMOE_EVAL_METRICS_H_
