#ifndef AWMOE_EVAL_CLUSTER_METRICS_H_
#define AWMOE_EVAL_CLUSTER_METRICS_H_

#include <cstdint>
#include <vector>

#include "mat/matrix.h"

namespace awmoe {

/// Quantifies how well labelled groups separate in an embedding — the
/// numeric counterpart of "the clusters are visibly separated" in Fig. 7.
struct ClusterSeparation {
  /// Mean silhouette coefficient in [-1, 1]; > 0 means points sit closer
  /// to their own group than to the nearest other group.
  double silhouette = 0.0;
  /// Accuracy of nearest-centroid classification by group.
  double centroid_accuracy = 0.0;
  /// Ratio of mean inter-group centroid distance to mean intra-group
  /// spread (> 1 = separated).
  double separation_ratio = 0.0;
};

/// Computes separation statistics for `points` [n, d] with integer group
/// `labels` (size n, at least 2 distinct groups required).
ClusterSeparation ComputeClusterSeparation(const Matrix& points,
                                           const std::vector<int64_t>& labels);

}  // namespace awmoe

#endif  // AWMOE_EVAL_CLUSTER_METRICS_H_
