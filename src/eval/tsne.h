#ifndef AWMOE_EVAL_TSNE_H_
#define AWMOE_EVAL_TSNE_H_

#include <cstdint>

#include "mat/matrix.h"
#include "util/rng.h"

namespace awmoe {

/// Exact (O(n^2)) t-SNE, sufficient for the few thousand gate vectors of
/// Fig. 7. Follows van der Maaten & Hinton 2008: perplexity-calibrated
/// Gaussian affinities, symmetrised, embedded by gradient descent with
/// momentum and early exaggeration.
struct TsneOptions {
  double perplexity = 30.0;
  int64_t iterations = 400;
  double learning_rate = 100.0;
  /// Per-step displacement clamp; keeps the layout finite under early
  /// exaggeration without changing converged structure.
  double max_step = 5.0;
  double early_exaggeration = 12.0;
  int64_t exaggeration_iters = 80;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  int64_t momentum_switch_iter = 100;
  uint64_t seed = 42;
};

/// Embeds `points` [n, d] into 2-D; returns [n, 2].
Matrix TsneEmbed(const Matrix& points, const TsneOptions& options = {});

}  // namespace awmoe

#endif  // AWMOE_EVAL_TSNE_H_
