#include "eval/cluster_metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/check.h"

namespace awmoe {

namespace {

double RowDistance(const Matrix& points, int64_t i, int64_t j) {
  double acc = 0.0;
  const float* a = points.row(i);
  const float* b = points.row(j);
  for (int64_t c = 0; c < points.cols(); ++c) {
    double diff = static_cast<double>(a[c]) - b[c];
    acc += diff * diff;
  }
  return std::sqrt(acc);
}

}  // namespace

ClusterSeparation ComputeClusterSeparation(
    const Matrix& points, const std::vector<int64_t>& labels) {
  const int64_t n = points.rows();
  AWMOE_CHECK(static_cast<int64_t>(labels.size()) == n)
      << labels.size() << " labels for " << n << " points";
  std::map<int64_t, std::vector<int64_t>> groups;
  for (int64_t i = 0; i < n; ++i) groups[labels[i]].push_back(i);
  AWMOE_CHECK(groups.size() >= 2) << "need at least 2 groups";

  // Centroids and intra-group spread.
  std::map<int64_t, std::vector<double>> centroids;
  for (const auto& [label, members] : groups) {
    std::vector<double> centroid(static_cast<size_t>(points.cols()), 0.0);
    for (int64_t i : members) {
      const float* row = points.row(i);
      for (int64_t c = 0; c < points.cols(); ++c) centroid[c] += row[c];
    }
    for (double& v : centroid) v /= static_cast<double>(members.size());
    centroids[label] = std::move(centroid);
  }

  auto centroid_distance = [&](int64_t i, const std::vector<double>& c) {
    double acc = 0.0;
    const float* row = points.row(i);
    for (int64_t col = 0; col < points.cols(); ++col) {
      double diff = static_cast<double>(row[col]) - c[static_cast<size_t>(col)];
      acc += diff * diff;
    }
    return std::sqrt(acc);
  };

  ClusterSeparation result;

  // Nearest-centroid accuracy.
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::max();
    int64_t best_label = -1;
    for (const auto& [label, centroid] : centroids) {
      double d = centroid_distance(i, centroid);
      if (d < best) {
        best = d;
        best_label = label;
      }
    }
    if (best_label == labels[static_cast<size_t>(i)]) ++correct;
  }
  result.centroid_accuracy =
      static_cast<double>(correct) / static_cast<double>(n);

  // Separation ratio: inter-centroid distance vs intra spread.
  double intra = 0.0;
  for (const auto& [label, members] : groups) {
    const auto& centroid = centroids[label];
    double spread = 0.0;
    for (int64_t i : members) spread += centroid_distance(i, centroid);
    intra += spread / static_cast<double>(members.size());
  }
  intra /= static_cast<double>(groups.size());
  double inter = 0.0;
  int64_t pairs = 0;
  for (auto a = centroids.begin(); a != centroids.end(); ++a) {
    for (auto b = std::next(a); b != centroids.end(); ++b) {
      double acc = 0.0;
      for (size_t c = 0; c < a->second.size(); ++c) {
        double diff = a->second[c] - b->second[c];
        acc += diff * diff;
      }
      inter += std::sqrt(acc);
      ++pairs;
    }
  }
  inter /= static_cast<double>(pairs);
  result.separation_ratio = intra > 0.0 ? inter / intra : 0.0;

  // Silhouette (exact O(n^2); fine for Fig. 7 sample sizes).
  double silhouette_sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    double a_dist = 0.0;
    int64_t a_count = 0;
    std::map<int64_t, std::pair<double, int64_t>> other;  // label -> (sum, n).
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      double d = RowDistance(points, i, j);
      if (labels[static_cast<size_t>(j)] == labels[static_cast<size_t>(i)]) {
        a_dist += d;
        ++a_count;
      } else {
        auto& slot = other[labels[static_cast<size_t>(j)]];
        slot.first += d;
        ++slot.second;
      }
    }
    if (a_count == 0 || other.empty()) continue;
    double a = a_dist / static_cast<double>(a_count);
    double b = std::numeric_limits<double>::max();
    for (const auto& [label, slot] : other) {
      b = std::min(b, slot.first / static_cast<double>(slot.second));
    }
    double denom = std::max(a, b);
    if (denom > 0.0) silhouette_sum += (b - a) / denom;
  }
  result.silhouette = silhouette_sum / static_cast<double>(n);
  return result;
}

}  // namespace awmoe
