#include "eval/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace awmoe {

namespace {

/// Squared Euclidean distances between all row pairs: [n, n].
std::vector<double> PairwiseSquaredDistances(const Matrix& x) {
  const int64_t n = x.rows(), d = x.cols();
  std::vector<double> dist(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    const float* xi = x.row(i);
    for (int64_t j = i + 1; j < n; ++j) {
      const float* xj = x.row(j);
      double acc = 0.0;
      for (int64_t c = 0; c < d; ++c) {
        double diff = static_cast<double>(xi[c]) - xj[c];
        acc += diff * diff;
      }
      dist[static_cast<size_t>(i * n + j)] = acc;
      dist[static_cast<size_t>(j * n + i)] = acc;
    }
  }
  return dist;
}

/// Row-conditional affinities with per-point bandwidth found by binary
/// search on the target perplexity.
std::vector<double> ConditionalAffinities(const std::vector<double>& dist,
                                          int64_t n, double perplexity) {
  std::vector<double> p(static_cast<size_t>(n * n), 0.0);
  const double target_entropy = std::log(perplexity);
  std::vector<double> row(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double beta = 1.0, beta_min = -1e300, beta_max = 1e300;
    for (int iter = 0; iter < 60; ++iter) {
      double sum = 0.0, weighted = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        if (j == i) {
          row[static_cast<size_t>(j)] = 0.0;
          continue;
        }
        double pij = std::exp(-dist[static_cast<size_t>(i * n + j)] * beta);
        row[static_cast<size_t>(j)] = pij;
        sum += pij;
        weighted += dist[static_cast<size_t>(i * n + j)] * pij;
      }
      if (sum <= 0.0) sum = 1e-300;
      double entropy = std::log(sum) + beta * weighted / sum;
      double diff = entropy - target_entropy;
      if (std::abs(diff) < 1e-5) break;
      if (diff > 0.0) {
        beta_min = beta;
        beta = (beta_max >= 1e300) ? beta * 2.0 : (beta + beta_max) / 2.0;
      } else {
        beta_max = beta;
        beta = (beta_min <= -1e300) ? beta / 2.0 : (beta + beta_min) / 2.0;
      }
    }
    double sum = 0.0;
    for (int64_t j = 0; j < n; ++j) sum += row[static_cast<size_t>(j)];
    if (sum <= 0.0) sum = 1e-300;
    for (int64_t j = 0; j < n; ++j) {
      p[static_cast<size_t>(i * n + j)] = row[static_cast<size_t>(j)] / sum;
    }
  }
  return p;
}

}  // namespace

Matrix TsneEmbed(const Matrix& points, const TsneOptions& options) {
  const int64_t n = points.rows();
  AWMOE_CHECK(n >= 5) << "TsneEmbed needs at least 5 points, got " << n;
  // Perplexity must satisfy 3*perp < n; shrink if necessary.
  double perplexity =
      std::min(options.perplexity, static_cast<double>(n - 1) / 3.0);
  perplexity = std::max(2.0, perplexity);

  std::vector<double> dist = PairwiseSquaredDistances(points);
  std::vector<double> cond = ConditionalAffinities(dist, n, perplexity);

  // Symmetrise: P = (P + P^T) / 2n, floored for stability.
  std::vector<double> p(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      p[static_cast<size_t>(i * n + j)] =
          std::max((cond[static_cast<size_t>(i * n + j)] +
                    cond[static_cast<size_t>(j * n + i)]) /
                       (2.0 * static_cast<double>(n)),
                   1e-12);
    }
  }

  Rng rng(options.seed);
  Matrix y(n, 2);
  for (int64_t i = 0; i < n; ++i) {
    y(i, 0) = static_cast<float>(rng.Normal(0.0, 1e-2));
    y(i, 1) = static_cast<float>(rng.Normal(0.0, 1e-2));
  }
  Matrix velocity(n, 2);
  std::vector<double> q(static_cast<size_t>(n * n), 0.0);
  std::vector<double> gains(static_cast<size_t>(n * 2), 1.0);

  for (int64_t iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_iters ? options.early_exaggeration : 1.0;
    const double momentum = iter < options.momentum_switch_iter
                                ? options.initial_momentum
                                : options.final_momentum;

    // Student-t affinities in the embedding.
    double q_sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        double dx = static_cast<double>(y(i, 0)) - y(j, 0);
        double dy = static_cast<double>(y(i, 1)) - y(j, 1);
        double w = 1.0 / (1.0 + dx * dx + dy * dy);
        q[static_cast<size_t>(i * n + j)] = w;
        q[static_cast<size_t>(j * n + i)] = w;
        q_sum += 2.0 * w;
      }
    }
    if (q_sum <= 0.0) q_sum = 1e-300;

    // Gradient: 4 * sum_j (exag*p_ij - q_ij) w_ij (y_i - y_j).
    for (int64_t i = 0; i < n; ++i) {
      double grad0 = 0.0, grad1 = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        double w = q[static_cast<size_t>(i * n + j)];
        double q_ij = std::max(w / q_sum, 1e-12);
        double mult =
            (exaggeration * p[static_cast<size_t>(i * n + j)] - q_ij) * w;
        grad0 += mult * (static_cast<double>(y(i, 0)) - y(j, 0));
        grad1 += mult * (static_cast<double>(y(i, 1)) - y(j, 1));
      }
      grad0 *= 4.0;
      grad1 *= 4.0;

      // Adaptive gains (van der Maaten's reference implementation).
      for (int c = 0; c < 2; ++c) {
        double g = (c == 0) ? grad0 : grad1;
        double& gain = gains[static_cast<size_t>(i * 2 + c)];
        double v = velocity(i, c);
        gain = ((g > 0.0) != (v > 0.0)) ? gain + 0.2 : gain * 0.8;
        gain = std::max(gain, 0.01);
        double new_v = momentum * v - options.learning_rate * gain * g;
        new_v = std::min(std::max(new_v, -options.max_step),
                         options.max_step);
        velocity(i, c) = static_cast<float>(new_v);
        y(i, c) = static_cast<float>(y(i, c) + new_v);
      }
    }

    // Recentre.
    double mean0 = 0.0, mean1 = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      mean0 += y(i, 0);
      mean1 += y(i, 1);
    }
    mean0 /= static_cast<double>(n);
    mean1 /= static_cast<double>(n);
    for (int64_t i = 0; i < n; ++i) {
      y(i, 0) = static_cast<float>(y(i, 0) - mean0);
      y(i, 1) = static_cast<float>(y(i, 1) - mean1);
    }
  }
  return y;
}

}  // namespace awmoe
