#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace awmoe {

namespace {

/// Indices that sort `scores` descending (ties by original order).
std::vector<size_t> DescendingOrder(const std::vector<double>& scores) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return scores[x] > scores[y];
  });
  return order;
}

/// Student-t two-sided p-value via the regularised incomplete beta
/// function (continued-fraction evaluation, Numerical Recipes style).
double IncompleteBetaCf(double a, double b, double x) {
  const int kMaxIter = 300;
  const double kEps = 3e-12;
  const double kFpMin = 1e-300;
  double qab = a + b, qap = a + 1.0, qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double ln_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                   a * std::log(x) + b * std::log(1.0 - x);
  double front = std::exp(ln_beta);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * IncompleteBetaCf(a, b, x) / a;
  }
  return 1.0 - front * IncompleteBetaCf(b, a, 1.0 - x) / b;
}

double StudentTTwoSidedP(double t, double dof) {
  double x = dof / (dof + t * t);
  return RegularizedIncompleteBeta(dof / 2.0, 0.5, x);
}

}  // namespace

double AucOf(const std::vector<float>& labels,
             const std::vector<double>& scores) {
  AWMOE_CHECK(labels.size() == scores.size());
  // Rank-based computation with midrank tie handling.
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return scores[x] < scores[y]; });
  double pos = 0.0, neg = 0.0, rank_sum_pos = 0.0;
  size_t i = 0;
  double rank = 1.0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    double midrank = (rank + rank + static_cast<double>(j - i)) / 2.0;
    for (size_t t = i; t <= j; ++t) {
      if (labels[order[t]] > 0.5f) {
        pos += 1.0;
        rank_sum_pos += midrank;
      } else {
        neg += 1.0;
      }
    }
    rank += static_cast<double>(j - i + 1);
    i = j + 1;
  }
  if (pos == 0.0 || neg == 0.0) return 0.5;
  return (rank_sum_pos - pos * (pos + 1.0) / 2.0) / (pos * neg);
}

double NdcgOf(const std::vector<float>& labels,
              const std::vector<double>& scores, int64_t k) {
  AWMOE_CHECK(labels.size() == scores.size());
  if (labels.empty()) return 0.0;
  const int64_t cut = k <= 0 ? static_cast<int64_t>(labels.size())
                             : std::min<int64_t>(k, labels.size());
  std::vector<size_t> by_score = DescendingOrder(scores);
  double dcg = 0.0;
  for (int64_t i = 0; i < cut; ++i) {
    dcg += labels[by_score[static_cast<size_t>(i)]] /
           std::log2(static_cast<double>(i) + 2.0);
  }
  std::vector<double> ideal(labels.begin(), labels.end());
  std::sort(ideal.begin(), ideal.end(), std::greater<double>());
  double idcg = 0.0;
  for (int64_t i = 0; i < cut; ++i) {
    idcg += ideal[static_cast<size_t>(i)] /
            std::log2(static_cast<double>(i) + 2.0);
  }
  if (idcg == 0.0) return 0.0;
  return dcg / idcg;
}

RankingEvaluation EvaluateRanking(const std::vector<Example>& examples,
                                  const std::vector<double>& scores,
                                  int64_t k) {
  AWMOE_CHECK(examples.size() == scores.size())
      << examples.size() << " examples vs " << scores.size() << " scores";
  // Group by session id (ordered map keeps evaluation deterministic).
  std::map<int64_t, std::vector<size_t>> sessions;
  for (size_t i = 0; i < examples.size(); ++i) {
    sessions[examples[i].session_id].push_back(i);
  }

  RankingEvaluation eval;
  for (const auto& [session_id, indices] : sessions) {
    std::vector<float> labels;
    std::vector<double> session_scores;
    labels.reserve(indices.size());
    for (size_t idx : indices) {
      labels.push_back(examples[idx].label);
      session_scores.push_back(scores[idx]);
    }
    ++eval.num_sessions;

    double ndcg = NdcgOf(labels, session_scores, /*k=*/0);
    double ndcg_k = NdcgOf(labels, session_scores, k);
    eval.session_ndcg.push_back(ndcg);
    eval.session_ndcg_at_k.push_back(ndcg_k);
    eval.ndcg_session_ids.push_back(session_id);

    bool has_pos = false, has_neg = false;
    for (float label : labels) {
      (label > 0.5f ? has_pos : has_neg) = true;
    }
    if (has_pos && has_neg) {
      double auc = AucOf(labels, session_scores);
      // @K: restrict to the K top-scored items of the session.
      std::vector<size_t> order = DescendingOrder(session_scores);
      const int64_t cut = std::min<int64_t>(k, order.size());
      std::vector<float> top_labels;
      std::vector<double> top_scores;
      for (int64_t i = 0; i < cut; ++i) {
        top_labels.push_back(labels[order[static_cast<size_t>(i)]]);
        top_scores.push_back(session_scores[order[static_cast<size_t>(i)]]);
      }
      double auc_k = AucOf(top_labels, top_scores);
      eval.session_auc.push_back(auc);
      eval.session_auc_at_k.push_back(auc_k);
      eval.auc_session_ids.push_back(session_id);
    }
  }

  auto mean = [](const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
  };
  eval.auc = mean(eval.session_auc);
  eval.auc_at_k = mean(eval.session_auc_at_k);
  eval.ndcg = mean(eval.session_ndcg);
  eval.ndcg_at_k = mean(eval.session_ndcg_at_k);
  return eval;
}

double OverallAuc(const std::vector<float>& labels,
                  const std::vector<double>& scores) {
  return AucOf(labels, scores);
}

double PairedTTestPValue(const std::vector<double>& a,
                         const std::vector<double>& b) {
  AWMOE_CHECK(a.size() == b.size())
      << "paired test needs aligned vectors: " << a.size() << " vs "
      << b.size();
  const size_t n = a.size();
  AWMOE_CHECK(n >= 2) << "paired test needs n >= 2";
  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) mean += a[i] - b[i];
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = (a[i] - b[i]) - mean;
    var += d * d;
  }
  var /= static_cast<double>(n - 1);
  if (var <= 0.0) return mean == 0.0 ? 1.0 : 0.0;
  double t = mean / std::sqrt(var / static_cast<double>(n));
  return StudentTTwoSidedP(t, static_cast<double>(n - 1));
}

double PairedBootstrapPValue(const std::vector<double>& a,
                             const std::vector<double>& b,
                             int64_t iterations, uint64_t seed) {
  AWMOE_CHECK(a.size() == b.size());
  const int64_t n = static_cast<int64_t>(a.size());
  AWMOE_CHECK(n >= 2);
  std::vector<double> diff(a.size());
  double observed = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff[i] = a[i] - b[i];
    observed += diff[i];
  }
  observed /= static_cast<double>(n);

  Rng rng(seed);
  int64_t crossings = 0;
  for (int64_t it = 0; it < iterations; ++it) {
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      total += diff[static_cast<size_t>(rng.UniformInt(n))];
    }
    double mean = total / static_cast<double>(n);
    if ((observed >= 0.0 && mean <= 0.0) ||
        (observed <= 0.0 && mean >= 0.0)) {
      ++crossings;
    }
  }
  double p = 2.0 * static_cast<double>(crossings + 1) /
             static_cast<double>(iterations + 1);
  return std::min(1.0, p);
}

double SessionPValue(const std::vector<int64_t>& ids_a,
                     const std::vector<double>& values_a,
                     const std::vector<int64_t>& ids_b,
                     const std::vector<double>& values_b) {
  AWMOE_CHECK(ids_a.size() == values_a.size());
  AWMOE_CHECK(ids_b.size() == values_b.size());
  std::map<int64_t, double> b_by_id;
  for (size_t i = 0; i < ids_b.size(); ++i) b_by_id[ids_b[i]] = values_b[i];
  std::vector<double> paired_a, paired_b;
  for (size_t i = 0; i < ids_a.size(); ++i) {
    auto it = b_by_id.find(ids_a[i]);
    if (it != b_by_id.end()) {
      paired_a.push_back(values_a[i]);
      paired_b.push_back(it->second);
    }
  }
  if (paired_a.size() < 2) return 1.0;
  return PairedTTestPValue(paired_a, paired_b);
}

}  // namespace awmoe
