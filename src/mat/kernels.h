#ifndef AWMOE_MAT_KERNELS_H_
#define AWMOE_MAT_KERNELS_H_

#include <cstdint>
#include <vector>

#include "mat/matrix.h"

namespace awmoe {

// Dense kernels over Matrix. All functions shape-check their inputs with
// AWMOE_CHECK (shape bugs are programmer errors, not recoverable states).
// Kernels return results by value; gradient-accumulation variants mutate in
// place and end in `InPlace`.

// ---------------------------------------------------------------------------
// GEMM family.
// ---------------------------------------------------------------------------

/// C = A[m,k] * B[k,n].
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A^T * B where A is [k,m], B is [k,n]; result [m,n]. Avoids forming
/// the transpose (used for weight gradients dW = X^T dY).
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// C = A * B^T where A is [m,k], B is [n,k]; result [m,n]. Avoids forming
/// the transpose (used for input gradients dX = dY W^T).
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// A^T.
Matrix Transpose(const Matrix& a);

// ---------------------------------------------------------------------------
// Elementwise.
// ---------------------------------------------------------------------------

Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix Mul(const Matrix& a, const Matrix& b);
Matrix Div(const Matrix& a, const Matrix& b);

/// a += b.
void AddInPlace(Matrix* a, const Matrix& b);
/// a += alpha * b.
void AxpyInPlace(Matrix* a, float alpha, const Matrix& b);
/// a *= s.
void ScaleInPlace(Matrix* a, float s);

Matrix AddScalar(const Matrix& a, float s);
Matrix MulScalar(const Matrix& a, float s);

Matrix Relu(const Matrix& a);
/// Gradient of ReLU: grad where input > 0, else 0.
Matrix ReluBackward(const Matrix& grad, const Matrix& input);

/// Numerically stable logistic sigmoid.
Matrix Sigmoid(const Matrix& a);
Matrix Tanh(const Matrix& a);
Matrix Exp(const Matrix& a);
/// Natural log with inputs clamped to >= `floor` for stability.
Matrix Log(const Matrix& a, float floor = 1e-12f);
Matrix Square(const Matrix& a);
Matrix Sqrt(const Matrix& a);
Matrix Neg(const Matrix& a);
/// Elementwise clamp to [lo, hi].
Matrix Clip(const Matrix& a, float lo, float hi);

// ---------------------------------------------------------------------------
// Broadcasting.
// ---------------------------------------------------------------------------

/// A[m,n] + b[1,n] broadcast over rows (bias add).
Matrix AddRowBroadcast(const Matrix& a, const Matrix& b);

/// A[m,n] * w[m,1]: scales row i of A by w(i,0).
Matrix MulColBroadcast(const Matrix& a, const Matrix& w);

/// A[m,n] * r[1,n]: scales column j of A by r(0,j).
Matrix MulRowBroadcast(const Matrix& a, const Matrix& r);

/// Tiles column vector col[m,1] across `cols` columns: result [m, cols].
Matrix BroadcastCol(const Matrix& col, int64_t cols);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

/// Column sums: [1,n].
Matrix ColSum(const Matrix& a);
/// Row sums: [m,1].
Matrix RowSum(const Matrix& a);
/// Row means: [m,1].
Matrix RowMean(const Matrix& a);
double SumAll(const Matrix& a);
double MeanAll(const Matrix& a);
float MaxAll(const Matrix& a);
float MinAll(const Matrix& a);
/// Frobenius norm.
double Norm(const Matrix& a);

/// Rowwise dot product of equally shaped A, B: [m,1].
Matrix DotRows(const Matrix& a, const Matrix& b);

/// Row-wise softmax.
Matrix SoftmaxRows(const Matrix& a);

/// Row-wise softmax restricted to the columns where mask(r,c) != 0; masked
/// columns get exact 0.0f. The arithmetic over the included columns (in
/// ascending column order) is identical to SoftmaxRows, so a row whose
/// included columns form a contiguous block is bitwise-equal to running
/// SoftmaxRows on that block alone. Every row must include >= 1 column.
Matrix MaskedSoftmaxRows(const Matrix& a, const Matrix& mask);

/// Row-wise log-sum-exp: [m,1], numerically stable.
Matrix LogSumExpRows(const Matrix& a);

// ---------------------------------------------------------------------------
// Indexing / layout.
// ---------------------------------------------------------------------------

/// Stacks rows `a.row(idx[i])` into a new [idx.size, n] matrix. Indices may
/// repeat; each must be in [0, a.rows()).
Matrix GatherRows(const Matrix& a, const std::vector<int64_t>& indices);

/// target->row(indices[i]) += rows.row(i) for all i (duplicate indices
/// accumulate). Used for embedding gradients.
void ScatterAddRows(Matrix* target, const std::vector<int64_t>& indices,
                    const Matrix& rows);

/// Horizontal concatenation; all parts must have equal row counts.
Matrix ConcatCols(const std::vector<const Matrix*>& parts);

/// Columns [begin, end) of A.
Matrix SliceCols(const Matrix& a, int64_t begin, int64_t end);

/// Rows [begin, end) of A.
Matrix SliceRows(const Matrix& a, int64_t begin, int64_t end);

/// Per row, 1.0 at the k largest entries and 0.0 elsewhere (ties broken by
/// lower column index). k must be in [1, cols].
Matrix TopKMaskRows(const Matrix& a, int64_t k);

/// True if all elements of a and b are within `tol` of each other
/// (and shapes match).
bool AllClose(const Matrix& a, const Matrix& b, float tol);

}  // namespace awmoe

#endif  // AWMOE_MAT_KERNELS_H_
