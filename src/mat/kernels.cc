#include "mat/kernels.h"

#include <algorithm>
#include <cmath>

namespace awmoe {

namespace {

void CheckSameShape(const Matrix& a, const Matrix& b, const char* op) {
  AWMOE_CHECK(a.SameShape(b)) << op << ": shape mismatch " << a.ShapeString()
                              << " vs " << b.ShapeString();
}

template <typename Fn>
Matrix ElementwiseUnary(const Matrix& a, Fn fn) {
  Matrix out(a.rows(), a.cols());
  const float* src = a.data();
  float* dst = out.data();
  int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) dst[i] = fn(src[i]);
  return out;
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  AWMOE_CHECK(a.cols() == b.rows())
      << "MatMul: " << a.ShapeString() << " * " << b.ShapeString();
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int64_t p = 0; p < k; ++p) {
      const float aip = arow[p];
      if (aip == 0.0f) continue;
      const float* brow = b.row(p);
      for (int64_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  AWMOE_CHECK(a.rows() == b.rows())
      << "MatMulTransA: " << a.ShapeString() << "^T * " << b.ShapeString();
  const int64_t k = a.rows(), m = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int64_t i = 0; i < m; ++i) {
      const float api = arow[i];
      if (api == 0.0f) continue;
      float* crow = c.row(i);
      for (int64_t j = 0; j < n; ++j) crow[j] += api * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  AWMOE_CHECK(a.cols() == b.cols())
      << "MatMulTransB: " << a.ShapeString() << " * " << b.ShapeString()
      << "^T";
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    for (int64_t c = 0; c < a.cols(); ++c) out(c, r) = arow[c];
  }
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b, "Add");
  Matrix out(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.size(); ++i) po[i] = pa[i] + pb[i];
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b, "Sub");
  Matrix out(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.size(); ++i) po[i] = pa[i] - pb[i];
  return out;
}

Matrix Mul(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b, "Mul");
  Matrix out(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.size(); ++i) po[i] = pa[i] * pb[i];
  return out;
}

Matrix Div(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b, "Div");
  Matrix out(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.size(); ++i) po[i] = pa[i] / pb[i];
  return out;
}

void AddInPlace(Matrix* a, const Matrix& b) {
  CheckSameShape(*a, b, "AddInPlace");
  float* pa = a->data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a->size(); ++i) pa[i] += pb[i];
}

void AxpyInPlace(Matrix* a, float alpha, const Matrix& b) {
  CheckSameShape(*a, b, "AxpyInPlace");
  float* pa = a->data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a->size(); ++i) pa[i] += alpha * pb[i];
}

void ScaleInPlace(Matrix* a, float s) {
  float* pa = a->data();
  for (int64_t i = 0; i < a->size(); ++i) pa[i] *= s;
}

Matrix AddScalar(const Matrix& a, float s) {
  return ElementwiseUnary(a, [s](float x) { return x + s; });
}

Matrix MulScalar(const Matrix& a, float s) {
  return ElementwiseUnary(a, [s](float x) { return x * s; });
}

Matrix Relu(const Matrix& a) {
  return ElementwiseUnary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Matrix ReluBackward(const Matrix& grad, const Matrix& input) {
  CheckSameShape(grad, input, "ReluBackward");
  Matrix out(grad.rows(), grad.cols());
  const float* pg = grad.data();
  const float* pi = input.data();
  float* po = out.data();
  for (int64_t i = 0; i < grad.size(); ++i) {
    po[i] = pi[i] > 0.0f ? pg[i] : 0.0f;
  }
  return out;
}

Matrix Sigmoid(const Matrix& a) {
  return ElementwiseUnary(a, [](float x) {
    // Split by sign for numerical stability.
    if (x >= 0.0f) {
      float z = std::exp(-x);
      return 1.0f / (1.0f + z);
    }
    float z = std::exp(x);
    return z / (1.0f + z);
  });
}

Matrix Tanh(const Matrix& a) {
  return ElementwiseUnary(a, [](float x) { return std::tanh(x); });
}

Matrix Exp(const Matrix& a) {
  return ElementwiseUnary(a, [](float x) { return std::exp(x); });
}

Matrix Log(const Matrix& a, float floor) {
  return ElementwiseUnary(
      a, [floor](float x) { return std::log(std::max(x, floor)); });
}

Matrix Square(const Matrix& a) {
  return ElementwiseUnary(a, [](float x) { return x * x; });
}

Matrix Sqrt(const Matrix& a) {
  return ElementwiseUnary(a, [](float x) { return std::sqrt(x); });
}

Matrix Neg(const Matrix& a) {
  return ElementwiseUnary(a, [](float x) { return -x; });
}

Matrix Clip(const Matrix& a, float lo, float hi) {
  AWMOE_CHECK(lo <= hi) << "Clip: lo=" << lo << " hi=" << hi;
  return ElementwiseUnary(
      a, [lo, hi](float x) { return std::min(std::max(x, lo), hi); });
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& b) {
  AWMOE_CHECK(b.rows() == 1 && b.cols() == a.cols())
      << "AddRowBroadcast: " << a.ShapeString() << " + " << b.ShapeString();
  Matrix out(a.rows(), a.cols());
  const float* pb = b.data();
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    float* orow = out.row(r);
    for (int64_t c = 0; c < a.cols(); ++c) orow[c] = arow[c] + pb[c];
  }
  return out;
}

Matrix MulColBroadcast(const Matrix& a, const Matrix& w) {
  AWMOE_CHECK(w.cols() == 1 && w.rows() == a.rows())
      << "MulColBroadcast: " << a.ShapeString() << " * " << w.ShapeString();
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float wr = w(r, 0);
    const float* arow = a.row(r);
    float* orow = out.row(r);
    for (int64_t c = 0; c < a.cols(); ++c) orow[c] = arow[c] * wr;
  }
  return out;
}

Matrix MulRowBroadcast(const Matrix& a, const Matrix& r) {
  AWMOE_CHECK(r.rows() == 1 && r.cols() == a.cols())
      << "MulRowBroadcast: " << a.ShapeString() << " * " << r.ShapeString();
  Matrix out(a.rows(), a.cols());
  const float* pr = r.data();
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (int64_t c = 0; c < a.cols(); ++c) orow[c] = arow[c] * pr[c];
  }
  return out;
}

Matrix BroadcastCol(const Matrix& col, int64_t cols) {
  AWMOE_CHECK(col.cols() == 1)
      << "BroadcastCol: expected column vector, got " << col.ShapeString();
  Matrix out(col.rows(), cols);
  for (int64_t r = 0; r < col.rows(); ++r) {
    float v = col(r, 0);
    float* orow = out.row(r);
    for (int64_t c = 0; c < cols; ++c) orow[c] = v;
  }
  return out;
}

Matrix ColSum(const Matrix& a) {
  Matrix out(1, a.cols());
  float* po = out.data();
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    for (int64_t c = 0; c < a.cols(); ++c) po[c] += arow[c];
  }
  return out;
}

Matrix RowSum(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    float acc = 0.0f;
    for (int64_t c = 0; c < a.cols(); ++c) acc += arow[c];
    out(r, 0) = acc;
  }
  return out;
}

Matrix RowMean(const Matrix& a) {
  AWMOE_CHECK(a.cols() > 0);
  Matrix out = RowSum(a);
  ScaleInPlace(&out, 1.0f / static_cast<float>(a.cols()));
  return out;
}

double SumAll(const Matrix& a) {
  double acc = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.size(); ++i) acc += p[i];
  return acc;
}

double MeanAll(const Matrix& a) {
  AWMOE_CHECK(a.size() > 0);
  return SumAll(a) / static_cast<double>(a.size());
}

float MaxAll(const Matrix& a) {
  AWMOE_CHECK(a.size() > 0);
  const float* p = a.data();
  float best = p[0];
  for (int64_t i = 1; i < a.size(); ++i) best = std::max(best, p[i]);
  return best;
}

float MinAll(const Matrix& a) {
  AWMOE_CHECK(a.size() > 0);
  const float* p = a.data();
  float best = p[0];
  for (int64_t i = 1; i < a.size(); ++i) best = std::min(best, p[i]);
  return best;
}

double Norm(const Matrix& a) {
  double acc = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(p[i]) * static_cast<double>(p[i]);
  }
  return std::sqrt(acc);
}

Matrix DotRows(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b, "DotRows");
  Matrix out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    const float* brow = b.row(r);
    float acc = 0.0f;
    for (int64_t c = 0; c < a.cols(); ++c) acc += arow[c] * brow[c];
    out(r, 0) = acc;
  }
  return out;
}

Matrix SoftmaxRows(const Matrix& a) {
  AWMOE_CHECK(a.cols() > 0);
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    float* orow = out.row(r);
    float max_val = arow[0];
    for (int64_t c = 1; c < a.cols(); ++c) max_val = std::max(max_val, arow[c]);
    float denom = 0.0f;
    for (int64_t c = 0; c < a.cols(); ++c) {
      orow[c] = std::exp(arow[c] - max_val);
      denom += orow[c];
    }
    for (int64_t c = 0; c < a.cols(); ++c) orow[c] /= denom;
  }
  return out;
}

Matrix MaskedSoftmaxRows(const Matrix& a, const Matrix& mask) {
  AWMOE_CHECK(a.cols() > 0);
  CheckSameShape(a, mask, "MaskedSoftmaxRows");
  Matrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    const float* mrow = mask.row(r);
    float* orow = out.row(r);
    // Max over included columns; mirrors SoftmaxRows' first-then-max order.
    bool seen = false;
    float max_val = 0.0f;
    for (int64_t c = 0; c < a.cols(); ++c) {
      if (mrow[c] == 0.0f) continue;
      max_val = seen ? std::max(max_val, arow[c]) : arow[c];
      seen = true;
    }
    AWMOE_CHECK(seen) << "MaskedSoftmaxRows: row " << r << " masks out every "
                      << "column";
    float denom = 0.0f;
    for (int64_t c = 0; c < a.cols(); ++c) {
      if (mrow[c] == 0.0f) {
        orow[c] = 0.0f;
        continue;
      }
      orow[c] = std::exp(arow[c] - max_val);
      denom += orow[c];
    }
    for (int64_t c = 0; c < a.cols(); ++c) {
      if (mrow[c] != 0.0f) orow[c] /= denom;
    }
  }
  return out;
}

Matrix LogSumExpRows(const Matrix& a) {
  AWMOE_CHECK(a.cols() > 0);
  Matrix out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    float max_val = arow[0];
    for (int64_t c = 1; c < a.cols(); ++c) max_val = std::max(max_val, arow[c]);
    float acc = 0.0f;
    for (int64_t c = 0; c < a.cols(); ++c) acc += std::exp(arow[c] - max_val);
    out(r, 0) = max_val + std::log(acc);
  }
  return out;
}

Matrix GatherRows(const Matrix& a, const std::vector<int64_t>& indices) {
  Matrix out(static_cast<int64_t>(indices.size()), a.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    int64_t idx = indices[i];
    AWMOE_CHECK(idx >= 0 && idx < a.rows())
        << "GatherRows: index " << idx << " out of " << a.rows();
    const float* src = a.row(idx);
    float* dst = out.row(static_cast<int64_t>(i));
    std::copy(src, src + a.cols(), dst);
  }
  return out;
}

void ScatterAddRows(Matrix* target, const std::vector<int64_t>& indices,
                    const Matrix& rows) {
  AWMOE_CHECK(static_cast<int64_t>(indices.size()) == rows.rows())
      << "ScatterAddRows: " << indices.size() << " indices vs "
      << rows.rows() << " rows";
  AWMOE_CHECK(target->cols() == rows.cols())
      << "ScatterAddRows: col mismatch " << target->ShapeString() << " vs "
      << rows.ShapeString();
  for (size_t i = 0; i < indices.size(); ++i) {
    int64_t idx = indices[i];
    AWMOE_CHECK(idx >= 0 && idx < target->rows())
        << "ScatterAddRows: index " << idx << " out of " << target->rows();
    float* dst = target->row(idx);
    const float* src = rows.row(static_cast<int64_t>(i));
    for (int64_t c = 0; c < rows.cols(); ++c) dst[c] += src[c];
  }
}

Matrix ConcatCols(const std::vector<const Matrix*>& parts) {
  AWMOE_CHECK(!parts.empty()) << "ConcatCols: no parts";
  int64_t rows = parts[0]->rows();
  int64_t total_cols = 0;
  for (const Matrix* part : parts) {
    AWMOE_CHECK(part->rows() == rows)
        << "ConcatCols: row mismatch " << part->rows() << " vs " << rows;
    total_cols += part->cols();
  }
  Matrix out(rows, total_cols);
  int64_t offset = 0;
  for (const Matrix* part : parts) {
    for (int64_t r = 0; r < rows; ++r) {
      const float* src = part->row(r);
      float* dst = out.row(r) + offset;
      std::copy(src, src + part->cols(), dst);
    }
    offset += part->cols();
  }
  return out;
}

Matrix SliceCols(const Matrix& a, int64_t begin, int64_t end) {
  AWMOE_CHECK(0 <= begin && begin <= end && end <= a.cols())
      << "SliceCols: [" << begin << "," << end << ") of " << a.cols();
  Matrix out(a.rows(), end - begin);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* src = a.row(r) + begin;
    std::copy(src, src + (end - begin), out.row(r));
  }
  return out;
}

Matrix SliceRows(const Matrix& a, int64_t begin, int64_t end) {
  AWMOE_CHECK(0 <= begin && begin <= end && end <= a.rows())
      << "SliceRows: [" << begin << "," << end << ") of " << a.rows();
  Matrix out(end - begin, a.cols());
  for (int64_t r = begin; r < end; ++r) {
    const float* src = a.row(r);
    std::copy(src, src + a.cols(), out.row(r - begin));
  }
  return out;
}

Matrix TopKMaskRows(const Matrix& a, int64_t k) {
  AWMOE_CHECK(k >= 1 && k <= a.cols())
      << "TopKMaskRows: k=" << k << " cols=" << a.cols();
  Matrix out(a.rows(), a.cols());
  std::vector<int64_t> order(static_cast<size_t>(a.cols()));
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    for (int64_t c = 0; c < a.cols(); ++c) order[c] = c;
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [arow](int64_t x, int64_t y) {
                        if (arow[x] != arow[y]) return arow[x] > arow[y];
                        return x < y;
                      });
    float* orow = out.row(r);
    for (int64_t i = 0; i < k; ++i) orow[order[i]] = 1.0f;
  }
  return out;
}

bool AllClose(const Matrix& a, const Matrix& b, float tol) {
  if (!a.SameShape(b)) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::abs(pa[i] - pb[i]) > tol) return false;
  }
  return true;
}

}  // namespace awmoe
