#include "mat/matrix.h"

#include <sstream>

namespace awmoe {

Matrix Matrix::Full(int64_t rows, int64_t cols, float value) {
  Matrix m(rows, cols);
  m.Fill(value);
  return m;
}

Matrix Matrix::FromVector(int64_t rows, int64_t cols,
                          const std::vector<float>& values) {
  AWMOE_CHECK(static_cast<int64_t>(values.size()) == rows * cols)
      << "FromVector: " << values.size() << " values for shape " << rows
      << "x" << cols;
  Matrix m(rows, cols);
  m.data_ = values;
  return m;
}

Matrix Matrix::RowVector(const std::vector<float>& values) {
  return FromVector(1, static_cast<int64_t>(values.size()), values);
}

Matrix Matrix::ColVector(const std::vector<float>& values) {
  return FromVector(static_cast<int64_t>(values.size()), 1, values);
}

std::string Matrix::ShapeString() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_;
  return os.str();
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << "Matrix " << ShapeString() << " [";
  for (int64_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : "             [");
    for (int64_t c = 0; c < cols_; ++c) {
      os << (*this)(r, c);
      if (c + 1 < cols_) os << ", ";
    }
    os << "]";
    if (r + 1 < rows_) os << ",\n";
  }
  os << "]";
  return os.str();
}

}  // namespace awmoe
