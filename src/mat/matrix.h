#ifndef AWMOE_MAT_MATRIX_H_
#define AWMOE_MAT_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace awmoe {

/// Dense row-major float32 matrix. This is the only tensor type in the
/// library: every activation in the models is a [batch, dim] matrix, and
/// sequences are handled positionally (see DESIGN.md §4), so a 2-D type
/// keeps the kernels and the autodiff engine small and auditable.
///
/// Matrix is a value type: copy copies the buffer, move steals it.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialised rows x cols matrix.
  Matrix(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {
    AWMOE_CHECK(rows >= 0 && cols >= 0)
        << "bad shape " << rows << "x" << cols;
    data_.assign(static_cast<size_t>(rows * cols), 0.0f);
  }

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// rows x cols matrix filled with `value`.
  static Matrix Full(int64_t rows, int64_t cols, float value);

  /// Builds from a flat row-major buffer; `values.size()` must equal
  /// rows * cols.
  static Matrix FromVector(int64_t rows, int64_t cols,
                           const std::vector<float>& values);

  /// 1 x n row vector from values.
  static Matrix RowVector(const std::vector<float>& values);

  /// n x 1 column vector from values.
  static Matrix ColVector(const std::vector<float>& values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Pointer to the start of row r.
  float* row(int64_t r) {
    AWMOE_DCHECK(r >= 0 && r < rows_) << "row " << r << " of " << rows_;
    return data_.data() + r * cols_;
  }
  const float* row(int64_t r) const {
    AWMOE_DCHECK(r >= 0 && r < rows_) << "row " << r << " of " << rows_;
    return data_.data() + r * cols_;
  }

  float& operator()(int64_t r, int64_t c) {
    AWMOE_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
        << "(" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float operator()(int64_t r, int64_t c) const {
    AWMOE_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
        << "(" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  /// True if shapes match.
  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void Fill(float value) { data_.assign(data_.size(), value); }

  /// Sets every element to zero (keeps shape).
  void SetZero() { Fill(0.0f); }

  /// "rows x cols" debug string.
  std::string ShapeString() const;

  /// Full contents as a debug string (small matrices only).
  std::string ToString() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<float> data_;
};

}  // namespace awmoe

#endif  // AWMOE_MAT_MATRIX_H_
