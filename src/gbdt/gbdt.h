#ifndef AWMOE_GBDT_GBDT_H_
#define AWMOE_GBDT_GBDT_H_

#include <cstdint>
#include <vector>

#include "mat/matrix.h"
#include "util/status.h"

namespace awmoe {

/// XGBoost-style gradient-boosted trees for binary classification.
/// Implements the second-order exact greedy algorithm (Chen & Guestrin
/// 2016, the paper's Fig. 2 tool [19]): per-leaf Newton steps, L2-
/// regularised structure scores, gain-based splits, shrinkage, and
/// gain-sum feature importances.
struct GbdtConfig {
  int64_t num_trees = 30;
  int64_t max_depth = 4;
  double learning_rate = 0.15;
  /// L2 regularisation on leaf weights (xgboost lambda).
  double reg_lambda = 1.0;
  /// Minimum gain to split (xgboost gamma).
  double min_split_gain = 1e-6;
  /// Minimum hessian mass per child (xgboost min_child_weight).
  double min_child_weight = 5.0;
};

class GbdtClassifier {
 public:
  explicit GbdtClassifier(const GbdtConfig& config = {});

  /// Fits on features [n, d] with binary labels (size n). Returns
  /// InvalidArgument on shape mismatch or single-class labels.
  Status Fit(const Matrix& features, const std::vector<float>& labels);

  /// Predicted probabilities for each row of `features`.
  std::vector<double> PredictProba(const Matrix& features) const;

  /// Raw margin (log-odds) predictions.
  std::vector<double> PredictMargin(const Matrix& features) const;

  /// Total split gain accumulated per feature (xgboost "gain" importance,
  /// the Fig. 2 quantity), normalised to sum to 1. Empty before Fit.
  std::vector<double> FeatureImportanceGain() const;

  int64_t num_trees_built() const {
    return static_cast<int64_t>(trees_.size());
  }

 private:
  struct Node {
    int feature = -1;      // -1 = leaf.
    float threshold = 0.0f;  // Goes left when x[feature] < threshold.
    double value = 0.0;    // Leaf weight.
    double gain = 0.0;     // Split gain (internal nodes).
    int left = -1;
    int right = -1;
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  /// Recursively grows a tree over `indices`; returns the node index.
  int BuildNode(Tree* tree, const Matrix& features,
                const std::vector<double>& grad,
                const std::vector<double>& hess,
                std::vector<int64_t>& indices, int depth);

  double PredictTree(const Tree& tree, const float* row) const;

  GbdtConfig config_;
  int64_t num_features_ = 0;
  double base_margin_ = 0.0;
  std::vector<Tree> trees_;
  std::vector<double> gain_importance_;
};

}  // namespace awmoe

#endif  // AWMOE_GBDT_GBDT_H_
