#include "gbdt/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace awmoe {

namespace {

double SigmoidD(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// Structure score of a node: G^2 / (H + lambda).
double StructureScore(double g, double h, double reg_lambda) {
  return g * g / (h + reg_lambda);
}

}  // namespace

GbdtClassifier::GbdtClassifier(const GbdtConfig& config) : config_(config) {
  AWMOE_CHECK(config.num_trees > 0);
  AWMOE_CHECK(config.max_depth >= 1);
  AWMOE_CHECK(config.learning_rate > 0.0);
}

int GbdtClassifier::BuildNode(Tree* tree, const Matrix& features,
                              const std::vector<double>& grad,
                              const std::vector<double>& hess,
                              std::vector<int64_t>& indices, int depth) {
  double g_total = 0.0, h_total = 0.0;
  for (int64_t idx : indices) {
    g_total += grad[static_cast<size_t>(idx)];
    h_total += hess[static_cast<size_t>(idx)];
  }

  const int node_index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  // Leaf weight: Newton step -G/(H + lambda).
  tree->nodes[node_index].value =
      -g_total / (h_total + config_.reg_lambda);

  if (depth >= config_.max_depth || indices.size() < 2) return node_index;

  // Exact greedy split search over all features.
  const double parent_score =
      StructureScore(g_total, h_total, config_.reg_lambda);
  double best_gain = config_.min_split_gain;
  int best_feature = -1;
  float best_threshold = 0.0f;

  std::vector<int64_t> sorted = indices;
  for (int64_t f = 0; f < num_features_; ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](int64_t a, int64_t b) {
      return features(a, f) < features(b, f);
    });
    double g_left = 0.0, h_left = 0.0;
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      const int64_t idx = sorted[i];
      g_left += grad[static_cast<size_t>(idx)];
      h_left += hess[static_cast<size_t>(idx)];
      const float value = features(idx, f);
      const float next_value = features(sorted[i + 1], f);
      if (value == next_value) continue;  // No separating threshold here.
      const double h_right = h_total - h_left;
      if (h_left < config_.min_child_weight ||
          h_right < config_.min_child_weight) {
        continue;
      }
      const double g_right = g_total - g_left;
      const double gain =
          0.5 * (StructureScore(g_left, h_left, config_.reg_lambda) +
                 StructureScore(g_right, h_right, config_.reg_lambda) -
                 parent_score);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (value + next_value) / 2.0f;
      }
    }
  }

  if (best_feature < 0) return node_index;

  std::vector<int64_t> left, right;
  for (int64_t idx : indices) {
    if (features(idx, best_feature) < best_threshold) {
      left.push_back(idx);
    } else {
      right.push_back(idx);
    }
  }
  if (left.empty() || right.empty()) return node_index;

  tree->nodes[node_index].feature = best_feature;
  tree->nodes[node_index].threshold = best_threshold;
  tree->nodes[node_index].gain = best_gain;
  gain_importance_[static_cast<size_t>(best_feature)] += best_gain;

  const int left_child = BuildNode(tree, features, grad, hess, left,
                                   depth + 1);
  const int right_child = BuildNode(tree, features, grad, hess, right,
                                    depth + 1);
  tree->nodes[node_index].left = left_child;
  tree->nodes[node_index].right = right_child;
  return node_index;
}

Status GbdtClassifier::Fit(const Matrix& features,
                           const std::vector<float>& labels) {
  const int64_t n = features.rows();
  if (static_cast<int64_t>(labels.size()) != n) {
    return Status::InvalidArgument("labels/features size mismatch");
  }
  if (n < 4) return Status::InvalidArgument("need at least 4 rows");
  double pos = 0.0;
  for (float y : labels) pos += (y > 0.5f) ? 1.0 : 0.0;
  if (pos == 0.0 || pos == static_cast<double>(n)) {
    return Status::InvalidArgument("labels contain a single class");
  }

  num_features_ = features.cols();
  trees_.clear();
  gain_importance_.assign(static_cast<size_t>(num_features_), 0.0);
  const double prior = pos / static_cast<double>(n);
  base_margin_ = std::log(prior / (1.0 - prior));

  std::vector<double> margin(static_cast<size_t>(n), base_margin_);
  std::vector<double> grad(static_cast<size_t>(n));
  std::vector<double> hess(static_cast<size_t>(n));

  for (int64_t t = 0; t < config_.num_trees; ++t) {
    for (int64_t i = 0; i < n; ++i) {
      double p = SigmoidD(margin[static_cast<size_t>(i)]);
      grad[static_cast<size_t>(i)] =
          p - static_cast<double>(labels[static_cast<size_t>(i)]);
      hess[static_cast<size_t>(i)] = std::max(p * (1.0 - p), 1e-12);
    }
    Tree tree;
    std::vector<int64_t> all(static_cast<size_t>(n));
    std::iota(all.begin(), all.end(), int64_t{0});
    BuildNode(&tree, features, grad, hess, all, /*depth=*/0);
    for (int64_t i = 0; i < n; ++i) {
      margin[static_cast<size_t>(i)] +=
          config_.learning_rate * PredictTree(tree, features.row(i));
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double GbdtClassifier::PredictTree(const Tree& tree, const float* row) const {
  int node = 0;
  while (tree.nodes[static_cast<size_t>(node)].feature >= 0) {
    const Node& n = tree.nodes[static_cast<size_t>(node)];
    node = row[n.feature] < n.threshold ? n.left : n.right;
  }
  return tree.nodes[static_cast<size_t>(node)].value;
}

std::vector<double> GbdtClassifier::PredictMargin(
    const Matrix& features) const {
  AWMOE_CHECK(features.cols() == num_features_)
      << "feature width " << features.cols() << " vs " << num_features_;
  std::vector<double> out(static_cast<size_t>(features.rows()),
                          base_margin_);
  for (int64_t i = 0; i < features.rows(); ++i) {
    const float* row = features.row(i);
    for (const Tree& tree : trees_) {
      out[static_cast<size_t>(i)] +=
          config_.learning_rate * PredictTree(tree, row);
    }
  }
  return out;
}

std::vector<double> GbdtClassifier::PredictProba(
    const Matrix& features) const {
  std::vector<double> margins = PredictMargin(features);
  for (double& m : margins) m = SigmoidD(m);
  return margins;
}

std::vector<double> GbdtClassifier::FeatureImportanceGain() const {
  std::vector<double> normalised = gain_importance_;
  double total = std::accumulate(normalised.begin(), normalised.end(), 0.0);
  if (total > 0.0) {
    for (double& v : normalised) v /= total;
  }
  return normalised;
}

}  // namespace awmoe
