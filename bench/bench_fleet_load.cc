// Fleet-scale load harness (ROADMAP item 2): drives a
// ShardedServingFleet with an OPEN-LOOP arrival process — requests
// land on the fleet's clock, not the caller's, so queueing delay is
// measured honestly instead of self-throttling — over a synthetic
// population of up to millions of distinct users with Zipf session
// popularity and a diurnal + bursty arrival trace
// (bench/common/load_model.h). Three phases:
//
//   closed-loop   single engine vs the N-shard fleet under a client
//                 storm (the fleet-scaling headline; compute-bound on
//                 one core, scales with cores and shards),
//   uncontended   low-rate open loop to calibrate the no-load p99 that
//                 the admission deadline is derived from,
//   overload      an offered-rate sweep, each point run twice — with
//                 deadline-aware admission control and without — so
//                 the artifact shows BOTH the bounded accepted-p99
//                 under shedding and the unbounded sojourn growth
//                 without it.
//
// `--json` writes the machine-readable artifact consumed by the CI
// bench-smoke upload, including the acceptance gates: accepted p99
// within 2x uncontended p99, and the fleet/single QPS ratio with the
// core count it was measured on.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/experiment_lib.h"
#include "common/load_model.h"
#include "serving/shard.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

constexpr char kModelName[] = "aw-moe-cl";

struct FleetLoadFlags {
  int64_t shards = 4;
  int64_t users = 1000000;
  double zipf = 1.05;
  double duration_s = 6.0;
  int64_t clients = 4;
  int64_t seed = 20230608;
  bool smoke = false;
  /// Cache-sweep repeat mix: < 0 sweeps the built-in {0.0, 0.5, 0.8}
  /// grid; >= 0 pins the sweep to that single rate.
  double repeat_rate = -1.0;
  std::string json;
};

/// The candidate corpus + preprocessing context the whole harness
/// serves from. Models stay untrained: serving latency depends on
/// shapes, not weights, and training would dominate the smoke budget.
struct Workload {
  DatasetMeta meta;
  Standardizer standardizer;
  std::vector<Example> corpus;  // Owns the examples item lists point at.
  std::vector<std::vector<const Example*>> sessions;
  int64_t users = 0;
  double zipf = 1.05;

  /// Request of synthetic user `rank`: a stable session id (hot ranks
  /// are the same user every draw — gate caches and ring placement see
  /// real repetition) over one of the corpus item lists.
  RankRequest RequestFor(int64_t rank, double deadline_ms) const {
    return RequestFor(rank, /*variant=*/0, deadline_ms);
  }

  /// Variant-aware request: page `variant` of user `rank` maps to a
  /// different corpus item list, so a RepeatMixSampler draw with
  /// repeat=true is a verbatim replay (level-1 score-cache hit) while a
  /// fresh variant is the same user over new candidates (a miss that
  /// restamps the session). The 7919 stride is coprime with the corpus
  /// size, so consecutive variants walk distinct pages.
  RankRequest RequestFor(int64_t rank, int64_t variant,
                         double deadline_ms, int64_t pages = 1) const {
    RankRequest request;
    request.session_id = SyntheticSessionId(rank);
    request.deadline_ms = deadline_ms;
    // `pages` corpus item lists concatenated into one candidate set:
    // the cache sweep uses rerank-sized requests (a few dozen
    // candidates) so the forward pass a level-1 hit skips is the
    // realistic cost, not a toy one.
    for (int64_t p = 0; p < pages; ++p) {
      const auto& page = sessions[static_cast<size_t>(
          (rank + 7919 * variant + 131 * p) %
          static_cast<int64_t>(sessions.size()))];
      request.items.insert(request.items.end(), page.begin(), page.end());
    }
    return request;
  }

  std::unique_ptr<Ranker> NewModel() const {
    return MakeModel(ModelKind::kAwMoeCl, meta, ModelDims::Default(),
                     /*seed=*/7);
  }
};

Workload MakeWorkload(const FleetLoadFlags& flags) {
  JdConfig config;
  config.train_sessions = 200;  // Only feeds the standardizer fit.
  config.test_sessions = flags.smoke ? 200 : 500;
  config.longtail1_sessions = 10;
  config.longtail2_sessions = 10;
  config.seed = static_cast<uint64_t>(flags.seed);
  JdDataset data = JdSyntheticGenerator(config).Generate();
  Workload workload;
  workload.meta = data.meta;
  workload.standardizer.Fit(data.train);
  workload.corpus = std::move(data.full_test);
  workload.sessions = GroupBySession(workload.corpus);
  workload.users = flags.users;
  workload.zipf = flags.zipf;
  return workload;
}

FleetOptions MakeFleetOptions(const FleetLoadFlags& flags, bool admission,
                              double default_deadline_ms) {
  FleetOptions options;
  options.num_shards = static_cast<int>(flags.shards);
  // The admission estimator sees the QUEUE, not the batch already in
  // flight — a short flush window and a modest batch ceiling bound
  // that unobservable work to a fraction of the deadline.
  options.engine.max_queue_delay_ms = 0.2;
  options.engine.max_batch_items = 16;
  options.admission.enabled = admission;
  options.admission.default_deadline_ms = default_deadline_ms;
  // Refresh the service-time estimate aggressively: the bench sweeps
  // through load regimes in seconds, not minutes.
  options.admission.load_refresh_every = 4;
  // Degraded mode is a last-resort starvation valve; admitting past the
  // deadline puts unbounded sojourns into the ACCEPTED percentiles, so
  // the sweep keeps it out of reach (tests and the example exercise it).
  options.admission.max_shed_rate = 0.995;
  // Sub-millisecond services on this workload make the un-modeled
  // drain costs proportionally large; widen the safety margin past the
  // library default accordingly.
  options.admission.estimate_safety = 2.8;
  return options;
}

std::unique_ptr<ShardedServingFleet> MakeFleet(const Workload& workload,
                                               const FleetOptions& options) {
  auto fleet = std::make_unique<ShardedServingFleet>(
      workload.meta, &workload.standardizer, options);
  fleet->RegisterOwned(kModelName, workload.NewModel());
  return fleet;
}

/// Closed-loop QPS of one plain engine under `clients` storm threads —
/// the baseline the fleet ratio is measured against.
double SingleEngineClosedLoopQps(const Workload& workload,
                                 const FleetLoadFlags& flags,
                                 int64_t requests_per_client) {
  ModelPool pool(workload.meta, &workload.standardizer, ModelPoolOptions{});
  pool.RegisterOwned(kModelName, workload.NewModel());
  ServingEngineOptions options;
  options.max_queue_delay_ms = 0.5;
  ServingEngine engine(&pool, options);
  std::vector<std::thread> threads;
  for (int64_t c = 0; c < flags.clients; ++c) {
    threads.emplace_back([&, c] {
      ZipfSampler zipf(workload.users, workload.zipf,
                       static_cast<uint64_t>(flags.seed) + 100 +
                           static_cast<uint64_t>(c));
      for (int64_t i = 0; i < requests_per_client; ++i) {
        engine.Submit(workload.RequestFor(zipf.Next(), 0.0)).get();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  engine.Stop();
  return engine.Stats().qps;
}

/// Closed-loop QPS of the fleet under the same storm (admission off:
/// closed-loop clients self-throttle, there is nothing to shed).
double FleetClosedLoopQps(const Workload& workload,
                          const FleetLoadFlags& flags,
                          int64_t requests_per_client) {
  auto fleet = MakeFleet(
      workload, MakeFleetOptions(flags, /*admission=*/false, 20.0));
  std::vector<std::thread> threads;
  for (int64_t c = 0; c < flags.clients; ++c) {
    threads.emplace_back([&, c] {
      ZipfSampler zipf(workload.users, workload.zipf,
                       static_cast<uint64_t>(flags.seed) + 200 +
                           static_cast<uint64_t>(c));
      for (int64_t i = 0; i < requests_per_client; ++i) {
        fleet->Submit(workload.RequestFor(zipf.Next(), 0.0)).get();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  fleet->Stop();
  return fleet->Stats().merged.qps;
}

struct OpenLoopResult {
  double offered_qps = 0.0;
  int64_t arrivals = 0;
  int64_t ok = 0;
  int64_t rejected = 0;
  FleetStats stats;
};

/// One open-loop run: arrivals from the diurnal+burst trace, users from
/// the Zipf population, every request carrying `deadline_ms`. The
/// generator sleeps until each arrival's timestamp and never waits on
/// responses — futures are collected afterwards — so queue growth shows
/// up as latency, exactly as an overloaded open system behaves.
OpenLoopResult RunOpenLoop(ShardedServingFleet* fleet,
                           const Workload& workload, double rate_qps,
                           double duration_s, double deadline_ms,
                           uint64_t seed, bool flat = false) {
  ArrivalTraceConfig trace;
  trace.duration_s = duration_s;
  trace.base_rate_qps = rate_qps;
  if (!flat) {
    trace.diurnal_amplitude = 0.25;
    trace.diurnal_period_s = duration_s;  // One "day" per run.
    trace.burst_multiplier = 2.0;
    trace.burst_duration_s = duration_s * 0.08;
    trace.burst_interval_s = duration_s / 3.0;
  } else {
    trace.diurnal_amplitude = 0.0;
    trace.burst_multiplier = 1.0;
  }
  trace.seed = seed;
  const std::vector<double> arrivals = GenerateArrivals(trace);
  ZipfSampler zipf(workload.users, workload.zipf, seed + 1);

  fleet->ResetStats();
  OpenLoopResult result;
  result.arrivals = static_cast<int64_t>(arrivals.size());
  result.offered_qps = static_cast<double>(arrivals.size()) / duration_s;
  std::vector<std::future<RankResponse>> futures;
  futures.reserve(arrivals.size());
  const auto start = std::chrono::steady_clock::now();
  for (double t : arrivals) {
    std::this_thread::sleep_until(
        start + std::chrono::duration<double>(t));
    futures.push_back(
        fleet->Submit(workload.RequestFor(zipf.Next(), deadline_ms)));
  }
  for (std::future<RankResponse>& future : futures) {
    const RankResponse response = future.get();
    if (response.status.ok()) {
      ++result.ok;
    } else {
      ++result.rejected;
    }
  }
  result.stats = fleet->Stats();
  return result;
}

struct SweepRow {
  double offered_qps = 0.0;
  bool admission = false;
  OpenLoopResult result;
};

// --- Phase 4: the session-cache sweep (ROADMAP item 3). ---

struct CacheSweepRow {
  double repeat_rate = 0.0;
  bool cache_on = false;
  int64_t requests = 0;
  double hit_rate = 0.0;  // Level-1: hits / (hits + misses).
  FleetStats stats;
};

/// One cache-sweep point: `requests` sequential draws from a
/// RepeatMixSampler — each request completes before the next is drawn,
/// so a repeat always lands after the original it replays and the
/// latency split measures the COMPUTE a level-1 hit saves (no queueing
/// behind siblings, and a near-zero flush window keeps the batcher's
/// wait out of both sides of the comparison).
CacheSweepRow RunCacheLoad(const Workload& workload,
                           const FleetLoadFlags& flags, double repeat_rate,
                           bool cache_on, int64_t requests) {
  FleetOptions options =
      MakeFleetOptions(flags, /*admission=*/false, /*deadline=*/20.0);
  options.engine.max_queue_delay_ms = 0.02;
  if (cache_on) {
    options.engine.score_cache_capacity = 1 << 15;
    options.engine.encoding_cache_capacity = 1 << 15;
  } else {
    options.engine.score_cache_capacity = 0;
    options.engine.encoding_cache_capacity = 0;
  }
  auto fleet = MakeFleet(workload, options);
  RepeatMixSampler sampler(workload.users, workload.zipf, repeat_rate,
                           static_cast<uint64_t>(flags.seed) + 500 +
                               static_cast<uint64_t>(repeat_rate * 100) +
                               (cache_on ? 0 : 1));
  CacheSweepRow row;
  row.repeat_rate = repeat_rate;
  row.cache_on = cache_on;
  row.requests = requests;
  for (int64_t sent = 0; sent < requests; ++sent) {
    const RequestDraw draw = sampler.Next();
    fleet
        ->Submit(workload.RequestFor(draw.rank, draw.variant,
                                     /*deadline_ms=*/0.0, /*pages=*/4))
        .get();
  }
  row.stats = fleet->Stats();
  fleet->Stop();
  const int64_t lookups = row.stats.merged.score_cache_hits +
                          row.stats.merged.score_cache_misses;
  row.hit_rate = lookups > 0 ? static_cast<double>(
                                   row.stats.merged.score_cache_hits) /
                                   static_cast<double>(lookups)
                             : 0.0;
  return row;
}

std::string Bool(bool b) { return b ? "true" : "false"; }

void WriteJson(const std::string& path, const FleetLoadFlags& flags,
               int cores, double single_qps, double fleet_qps,
               const OpenLoopResult& uncontended,
               const std::vector<SweepRow>& sweep, double deadline_ms,
               double max_admitted_p99, double max_unshed_p99,
               const std::vector<CacheSweepRow>& cache_sweep,
               bool hit_p99_lt_miss_p99, double hit_p50_speedup) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const double ratio = single_qps > 0.0 ? fleet_qps / single_qps : 0.0;
  const double p99_ratio = uncontended.stats.merged.p99_ms > 0.0
                               ? max_admitted_p99 /
                                     uncontended.stats.merged.p99_ms
                               : 0.0;
  out << "{\n";
  out << "  \"bench\": \"fleet_load\",\n";
  out << "  \"smoke\": " << Bool(flags.smoke) << ",\n";
  out << "  \"cores\": " << cores << ",\n";
  out << "  \"shards\": " << flags.shards << ",\n";
  out << "  \"users\": " << flags.users << ",\n";
  out << "  \"zipf_exponent\": " << flags.zipf << ",\n";
  out << "  \"deadline_ms\": " << deadline_ms << ",\n";
  out << "  \"closed_loop\": {\"single_engine_qps\": " << single_qps
      << ", \"fleet_qps\": " << fleet_qps << ", \"ratio\": " << ratio
      << "},\n";
  out << "  \"uncontended\": {\"offered_qps\": " << uncontended.offered_qps
      << ", \"p50_ms\": " << uncontended.stats.merged.p50_ms
      << ", \"p99_ms\": " << uncontended.stats.merged.p99_ms << "},\n";
  out << "  \"overload_sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& row = sweep[i];
    const FleetStats& stats = row.result.stats;
    out << "    {\"offered_qps\": " << row.offered_qps
        << ", \"admission\": " << Bool(row.admission)
        << ", \"accepted_p99_ms\": " << stats.merged.p99_ms
        << ", \"accepted_p50_ms\": " << stats.merged.p50_ms
        << ", \"qps\": " << stats.merged.qps
        << ", \"shed_rate\": " << stats.shed_rate
        << ", \"degraded\": " << stats.degraded
        << ", \"imbalance\": " << stats.imbalance << ", \"shards\": [";
    for (size_t s = 0; s < stats.shards.size(); ++s) {
      const ShardStatsSnapshot& shard = stats.shards[s];
      out << (s == 0 ? "" : ", ") << "{\"shard\": " << shard.shard_id
          << ", \"requests\": " << shard.engine.requests
          << ", \"p99_ms\": " << shard.engine.p99_ms
          << ", \"qps\": " << shard.engine.qps
          << ", \"shed\": " << shard.shed
          << ", \"degraded\": " << shard.degraded << "}";
    }
    out << "]}" << (i + 1 == sweep.size() ? "" : ",") << "\n";
  }
  out << "  ],\n";
  out << "  \"cache_sweep\": [\n";
  for (size_t i = 0; i < cache_sweep.size(); ++i) {
    const CacheSweepRow& row = cache_sweep[i];
    const ServingStatsSnapshot& merged = row.stats.merged;
    out << "    {\"repeat_rate\": " << row.repeat_rate
        << ", \"cache\": " << Bool(row.cache_on)
        << ", \"requests\": " << row.requests
        << ", \"hit_rate\": " << row.hit_rate
        << ", \"score_cache_hits\": " << merged.score_cache_hits
        << ", \"score_cache_misses\": " << merged.score_cache_misses
        << ", \"score_cache_invalidations\": "
        << merged.score_cache_invalidations
        << ", \"encoding_cache_hits\": " << merged.encoding_cache_hits
        << ", \"gate_cache_hits\": " << merged.gate_cache_hits
        << ", \"score_cache_entries\": " << merged.score_cache_entries
        << ", \"score_cache_bytes\": " << merged.score_cache_bytes
        << ", \"encoding_cache_bytes\": " << merged.encoding_cache_bytes
        << ", \"gate_cache_bytes\": " << merged.gate_cache_bytes
        << ", \"p50_ms\": " << merged.p50_ms
        << ", \"p99_ms\": " << merged.p99_ms
        << ", \"score_hit_p50_ms\": " << merged.score_hit_p50_ms
        << ", \"score_hit_p99_ms\": " << merged.score_hit_p99_ms
        << ", \"score_miss_p50_ms\": " << merged.score_miss_p50_ms
        << ", \"score_miss_p99_ms\": " << merged.score_miss_p99_ms
        << ", \"qps\": " << merged.qps << "}"
        << (i + 1 == cache_sweep.size() ? "" : ",") << "\n";
  }
  out << "  ],\n";
  // The acceptance gates, RECORDED rather than enforced: the fleet/
  // single ratio is a multi-core property (compute-bound at ~1x on one
  // core), so the artifact carries the core count alongside it.
  out << "  \"gates\": {\n";
  out << "    \"uncontended_p99_ms\": " << uncontended.stats.merged.p99_ms
      << ",\n";
  out << "    \"max_admitted_p99_ms\": " << max_admitted_p99 << ",\n";
  out << "    \"admitted_p99_over_uncontended\": " << p99_ratio << ",\n";
  out << "    \"admitted_p99_within_2x\": "
      << Bool(p99_ratio > 0.0 && p99_ratio <= 2.0) << ",\n";
  out << "    \"no_admission_max_p99_ms\": " << max_unshed_p99 << ",\n";
  out << "    \"fleet_vs_single_qps_ratio\": " << ratio << ",\n";
  out << "    \"fleet_3x_single_qps\": " << Bool(ratio >= 3.0) << ",\n";
  out << "    \"cache_hit_p99_lt_miss_p99\": " << Bool(hit_p99_lt_miss_p99)
      << ",\n";
  out << "    \"cache_hit_p50_speedup_vs_off\": " << hit_p50_speedup << ",\n";
  out << "    \"cache_hit_p50_2x_vs_off\": "
      << Bool(hit_p50_speedup >= 2.0) << "\n";
  out << "  }\n";
  out << "}\n";
  std::printf("[fleet-load] JSON artifact written to %s\n", path.c_str());
}

int Run(int argc, char** argv) {
  FleetLoadFlags flags;
  FlagSet flag_set(
      "Open-loop fleet load harness: Zipf users + diurnal/bursty arrivals "
      "through a sharded serving fleet, with an overload sweep comparing "
      "deadline-aware admission control against unbounded queueing");
  flag_set.AddInt("shards", &flags.shards, "fleet shard count");
  flag_set.AddInt("users", &flags.users, "distinct synthetic users");
  flag_set.AddDouble("zipf", &flags.zipf, "Zipf popularity exponent");
  flag_set.AddDouble("duration_s", &flags.duration_s,
                     "open-loop run duration per sweep point");
  flag_set.AddInt("clients", &flags.clients, "closed-loop client threads");
  flag_set.AddInt("seed", &flags.seed, "base RNG seed");
  flag_set.AddDouble("repeat_rate", &flags.repeat_rate,
                     "cache-sweep exact-repeat probability "
                     "(< 0 sweeps 0.0/0.5/0.8)");
  flag_set.AddBool("smoke", &flags.smoke,
                   "CI smoke sizing (short runs, small corpus)");
  flag_set.AddString("json", &flags.json,
                     "path for the machine-readable artifact (empty = skip)");
  Status status = flag_set.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (flags.smoke) flags.duration_s = std::min(flags.duration_s, 1.5);
  const int cores = static_cast<int>(std::thread::hardware_concurrency());

  std::printf("[fleet-load] building workload (%lld users, zipf %.2f)...\n",
              static_cast<long long>(flags.users), flags.zipf);
  const Workload workload = MakeWorkload(flags);

  // --- Phase 1: closed-loop scaling baseline. ---
  const int64_t per_client = flags.smoke ? 100 : 400;
  std::printf("[fleet-load] closed loop: single engine...\n");
  const double single_qps =
      SingleEngineClosedLoopQps(workload, flags, per_client);
  std::printf("[fleet-load] closed loop: %lld-shard fleet...\n",
              static_cast<long long>(flags.shards));
  const double fleet_qps = FleetClosedLoopQps(workload, flags, per_client);
  const double ratio = single_qps > 0.0 ? fleet_qps / single_qps : 0.0;
  std::printf(
      "[fleet-load] closed loop: single %.0f qps, fleet %.0f qps "
      "(%.2fx on %d core%s)\n",
      single_qps, fleet_qps, ratio, cores, cores == 1 ? "" : "s");

  // --- Phase 2: uncontended calibration (open loop, light load). ---
  const double capacity_qps = std::max(fleet_qps, 1.0);
  auto calibration_fleet = MakeFleet(
      workload, MakeFleetOptions(flags, /*admission=*/false, 20.0));
  std::printf("[fleet-load] calibrating uncontended p99...\n");
  // Calibration runs FLAT (no diurnal swing, no bursts) at a fraction
  // of measured capacity: the number it produces is the no-load tail.
  const OpenLoopResult uncontended = RunOpenLoop(
      calibration_fleet.get(), workload, 0.25 * capacity_qps,
      flags.duration_s, /*deadline_ms=*/0.0,
      static_cast<uint64_t>(flags.seed) + 300, /*flat=*/true);
  calibration_fleet->Stop();
  calibration_fleet.reset();
  // The admission deadline the sweep's requests carry: above the
  // no-load tail (nothing sheds uncontended), but with headroom below
  // the 2x gate the artifact records — the controller's queue-delay
  // estimate is optimistic by the flush wait it cannot observe, so
  // accepted sojourns land somewhat above the deadline under overload.
  const double deadline_ms =
      std::max(1.3 * uncontended.stats.merged.p99_ms, 1.0);
  std::printf("[fleet-load] uncontended p99 %.3f ms -> deadline %.3f ms\n",
              uncontended.stats.merged.p99_ms, deadline_ms);

  // --- Phase 3: overload sweep, admission on vs off. ---
  const double kMultipliers[] = {0.6, 1.5, 3.0};
  std::vector<SweepRow> sweep;
  double max_admitted_p99 = 0.0;
  double max_unshed_p99 = 0.0;
  for (double multiplier : kMultipliers) {
    const double rate = multiplier * capacity_qps;
    for (bool admission : {true, false}) {
      std::printf("[fleet-load] open loop %.0f qps (%.1fx), admission %s...\n",
                  rate, multiplier, admission ? "ON" : "OFF");
      auto fleet = MakeFleet(
          workload, MakeFleetOptions(flags, admission, deadline_ms));
      SweepRow row;
      row.offered_qps = rate;
      row.admission = admission;
      row.result = RunOpenLoop(fleet.get(), workload, rate, flags.duration_s,
                               deadline_ms,
                               static_cast<uint64_t>(flags.seed) + 400 +
                                   static_cast<uint64_t>(multiplier * 10) +
                                   (admission ? 0 : 1));
      fleet->Stop();
      if (admission) {
        max_admitted_p99 =
            std::max(max_admitted_p99, row.result.stats.merged.p99_ms);
      } else {
        max_unshed_p99 =
            std::max(max_unshed_p99, row.result.stats.merged.p99_ms);
      }
      sweep.push_back(std::move(row));
    }
  }

  // --- Phase 4: session-cache sweep — hit-rate vs memory vs latency. ---
  const int64_t cache_requests = flags.smoke ? 1500 : 5000;
  std::vector<CacheSweepRow> cache_sweep;
  const std::vector<double> repeat_rates =
      flags.repeat_rate >= 0.0 ? std::vector<double>{flags.repeat_rate}
                               : std::vector<double>{0.0, 0.5, 0.8};
  for (double repeat_rate : repeat_rates) {
    for (bool cache_on : {true, false}) {
      std::printf("[fleet-load] cache sweep: repeat %.2f, cache %s...\n",
                  repeat_rate, cache_on ? "ON" : "OFF");
      cache_sweep.push_back(RunCacheLoad(workload, flags, repeat_rate,
                                         cache_on, cache_requests));
    }
  }
  // Gates from the highest repeat rate >= 0.5 (where the level-1 cache
  // should be earning its memory): hit-path p99 strictly below the
  // miss-path p99 of the SAME run, and hit-path p50 at least 2x faster
  // than the cache-off p50 at the same repeat mix.
  bool hit_p99_lt_miss_p99 = false;
  double hit_p50_speedup = 0.0;
  for (const CacheSweepRow& row : cache_sweep) {
    if (!row.cache_on || row.repeat_rate < 0.5) continue;
    const ServingStatsSnapshot& merged = row.stats.merged;
    if (merged.score_hit_p99_ms > 0.0 &&
        merged.score_hit_p99_ms < merged.score_miss_p99_ms) {
      hit_p99_lt_miss_p99 = true;
    }
    for (const CacheSweepRow& off : cache_sweep) {
      if (off.cache_on || off.repeat_rate != row.repeat_rate) continue;
      if (merged.score_hit_p50_ms > 0.0 && off.stats.merged.p50_ms > 0.0) {
        hit_p50_speedup =
            std::max(hit_p50_speedup,
                     off.stats.merged.p50_ms / merged.score_hit_p50_ms);
      }
    }
  }

  TablePrinter cache_table(
      "Session-cache sweep (closed loop; level-1 hit/miss split)");
  cache_table.SetHeader({"Repeat", "Cache", "Hit rate", "Resident KiB",
                         "p50 ms", "p99 ms", "Hit p50", "Hit p99",
                         "Miss p50", "Miss p99", "QPS"});
  for (const CacheSweepRow& row : cache_sweep) {
    const ServingStatsSnapshot& merged = row.stats.merged;
    const double resident_kib =
        static_cast<double>(merged.score_cache_bytes +
                            merged.encoding_cache_bytes +
                            merged.gate_cache_bytes) /
        1024.0;
    cache_table.AddRow({FormatDouble(row.repeat_rate, 2),
                        row.cache_on ? "on" : "off",
                        FormatDouble(row.hit_rate, 3),
                        FormatDouble(resident_kib, 1),
                        FormatDouble(merged.p50_ms, 3),
                        FormatDouble(merged.p99_ms, 3),
                        FormatDouble(merged.score_hit_p50_ms, 3),
                        FormatDouble(merged.score_hit_p99_ms, 3),
                        FormatDouble(merged.score_miss_p50_ms, 3),
                        FormatDouble(merged.score_miss_p99_ms, 3),
                        FormatDouble(merged.qps, 0)});
  }
  cache_table.Print();
  std::printf(
      "[fleet-load] cache gates: hit p99 < miss p99 %s; hit-path p50 "
      "%.2fx faster than cache-off (>=2x %s)\n",
      hit_p99_lt_miss_p99 ? "PASS" : "MISS", hit_p50_speedup,
      hit_p50_speedup >= 2.0 ? "PASS" : "MISS");

  TablePrinter table("Fleet overload sweep (accepted-request percentiles)");
  table.SetHeader({"Offered QPS", "Admission", "Accepted", "Shed rate",
                   "Degraded", "p50 ms", "p99 ms", "QPS", "Imbalance"});
  for (const SweepRow& row : sweep) {
    const FleetStats& stats = row.result.stats;
    table.AddRow({FormatDouble(row.offered_qps, 0),
                  row.admission ? "on" : "off",
                  std::to_string(row.result.ok),
                  FormatDouble(stats.shed_rate, 3),
                  std::to_string(stats.degraded),
                  FormatDouble(stats.merged.p50_ms, 3),
                  FormatDouble(stats.merged.p99_ms, 3),
                  FormatDouble(stats.merged.qps, 0),
                  FormatDouble(stats.imbalance, 2)});
  }
  table.Print();

  std::printf(
      "[fleet-load] gates: admitted p99 %.3f ms vs 2x uncontended %.3f ms "
      "(%s); no-admission p99 grew to %.3f ms; fleet/single %.2fx "
      "(>=3x needs multi-core; %d core%s here)\n",
      max_admitted_p99, 2.0 * uncontended.stats.merged.p99_ms,
      max_admitted_p99 <= 2.0 * uncontended.stats.merged.p99_ms ? "PASS"
                                                                : "MISS",
      max_unshed_p99, ratio, cores, cores == 1 ? "" : "s");

  if (!flags.json.empty()) {
    WriteJson(flags.json, flags, cores, single_qps, fleet_qps, uncontended,
              sweep, deadline_ms, max_admitted_p99, max_unshed_p99,
              cache_sweep, hit_p99_lt_miss_p99, hit_p50_speedup);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
