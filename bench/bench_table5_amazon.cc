// Reproduces Table V: overall AUC of the five models on the (synthetic)
// Amazon review dataset — recommendation mode, where the gate network
// receives the target item instead of the query (§IV-A2). One negative is
// sampled per positive, so only the pooled AUC is reported, as in the
// paper. Expected shape: DNN < DIN < Category-MoE < AW-MoE < AW-MoE & CL.

#include <cstdio>
#include <map>

#include "common/experiment_lib.h"
#include "data/amazon_synthetic.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

/// Per-pair correctness indicators (1 when the positive outscored its
/// negative) for paired significance testing.
std::vector<double> PairCorrectness(const std::vector<Example>& split,
                                    const std::vector<double>& scores,
                                    std::vector<int64_t>* pair_ids) {
  std::map<int64_t, std::pair<double, double>> pairs;  // id -> (pos, neg).
  for (size_t i = 0; i < split.size(); ++i) {
    auto& slot = pairs[split[i].session_id];
    if (split[i].label > 0.5f) {
      slot.first = scores[i];
    } else {
      slot.second = scores[i];
    }
  }
  std::vector<double> correctness;
  pair_ids->clear();
  for (const auto& [id, pair] : pairs) {
    pair_ids->push_back(id);
    correctness.push_back(pair.first > pair.second    ? 1.0
                          : pair.first == pair.second ? 0.5
                                                      : 0.0);
  }
  return correctness;
}

int Run(int argc, char** argv) {
  int64_t num_users = 12000;
  int64_t epochs = 3;
  int64_t batch_size = 256;
  double lr = 2e-3;
  double weight_decay = 3e-4;
  int64_t seed = 1992015;
  bool quick = false;
  FlagSet flags("Table V: model comparison on the Amazon review dataset");
  flags.AddInt("num_users", &num_users, "number of simulated users");
  flags.AddInt("epochs", &epochs, "training epochs");
  flags.AddInt("batch_size", &batch_size, "minibatch size");
  flags.AddDouble("lr", &lr, "AdamW learning rate");
  flags.AddDouble("weight_decay", &weight_decay, "AdamW weight decay");
  flags.AddInt("seed", &seed, "global seed");
  flags.AddBool("quick", &quick, "shrink the corpus for a smoke run");
  Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (quick) {
    num_users = std::min<int64_t>(num_users, 1500);
    epochs = 1;
  }

  AmazonConfig config;
  config.num_users = num_users;
  config.seed = static_cast<uint64_t>(seed);
  std::printf("[table5] generating Amazon corpus (%lld users)...\n",
              static_cast<long long>(num_users));
  AmazonDataset data = AmazonSyntheticGenerator(config).Generate();
  std::printf("[table5] train %zu examples, test %zu examples\n",
              data.train.size(), data.test.size());

  Standardizer standardizer;
  standardizer.Fit(data.train);

  TrainerConfig tc;
  tc.epochs = epochs;
  tc.batch_size = batch_size;
  tc.lr = static_cast<float>(lr);
  tc.weight_decay = static_cast<float>(weight_decay);
  tc.seed = static_cast<uint64_t>(seed) + 1;

  struct Row {
    ModelKind kind;
    std::string name;
    double auc;
    std::vector<int64_t> pair_ids;
    std::vector<double> correctness;
  };
  std::vector<Row> rows;
  std::vector<float> labels;
  for (const Example& ex : data.test) labels.push_back(ex.label);

  for (ModelKind kind : AllModelKinds()) {
    std::printf("[table5] training %s...\n", ModelKindName(kind).c_str());
    TrainedModel trained =
        TrainOne(kind, data.train, data.meta, &standardizer,
                 ModelDims::Default(), tc, static_cast<uint64_t>(seed) + 10);
    std::vector<double> scores =
        Predict(trained.model.get(), data.test, data.meta, &standardizer);
    Row row;
    row.kind = kind;
    row.name = trained.model->name();
    row.auc = OverallAuc(labels, scores);
    row.correctness = PairCorrectness(data.test, scores, &row.pair_ids);
    std::printf("[table5]   %s: AUC %.4f\n", row.name.c_str(), row.auc);
    rows.push_back(std::move(row));
  }

  const Row* dnn = &rows[0];
  const Row* category_moe = nullptr;
  for (const Row& row : rows) {
    if (row.kind == ModelKind::kCategoryMoe) category_moe = &row;
  }

  TablePrinter table("Table V — synthetic Amazon review dataset");
  table.SetHeader({"Model", "AUC", "p-value"});
  for (const Row& row : rows) {
    std::string p = "-";
    if (row.kind == ModelKind::kDin ||
        row.kind == ModelKind::kCategoryMoe) {
      p = FormatPValue(SessionPValue(row.pair_ids, row.correctness,
                                     dnn->pair_ids, dnn->correctness)) +
          "*";
    } else if (row.kind == ModelKind::kAwMoe ||
               row.kind == ModelKind::kAwMoeCl) {
      p = FormatPValue(SessionPValue(row.pair_ids, row.correctness,
                                     category_moe->pair_ids,
                                     category_moe->correctness)) +
          "\xE2\x80\xA1";
    }
    table.AddRow({row.name, FormatDouble(row.auc, 4), p});
  }
  table.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
