// Reproduces Figure 7: t-SNE visualisation of the user representations
// learned by the gate network, coloured by user group (new user / old user
// without target order / old user with target order). The 2-D coordinates
// are written to fig7_tsne.csv; cluster-separation statistics quantify the
// "well clustered and separated" observation of the paper.

#include <cstdio>
#include <set>

#include "common/experiment_lib.h"
#include "eval/cluster_metrics.h"
#include "eval/tsne.h"
#include "util/csv_writer.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

const char* GroupName(UserGroup group) {
  switch (group) {
    case UserGroup::kNewUser:
      return "New user";
    case UserGroup::kOldWithoutTargetOrder:
      return "Old user w/o target order";
    case UserGroup::kOldWithTargetOrder:
      return "Old user w/ target order";
  }
  return "?";
}

int Run(int argc, char** argv) {
  BenchFlags flags;
  flags.train_sessions = 12000;
  Status status = flags.Parse(
      argc, argv, "Figure 7: t-SNE of gate-network user representations");
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("[fig7] generating JD dataset...\n");
  JdDataset data = JdSyntheticGenerator(flags.MakeJdConfig()).Generate();
  Standardizer standardizer;
  standardizer.Fit(data.train);

  std::printf("[fig7] training AW-MoE...\n");
  TrainedModel trained = TrainOne(
      ModelKind::kAwMoe, data.train, data.meta, &standardizer,
      ModelDims::Default(), flags.MakeTrainerConfig(),
      static_cast<uint64_t>(flags.seed) + 10);
  auto* aw_moe = dynamic_cast<AwMoeRanker*>(trained.model.get());
  AWMOE_CHECK(aw_moe != nullptr);

  // Gate outputs for a sample of test impressions (one per session),
  // balanced across the three user groups so separation statistics are
  // interpretable against a 1/3 chance level.
  std::vector<const Example*> sample;
  std::set<int64_t> seen_sessions;
  const int64_t kMaxPerGroup = flags.quick ? 70 : 280;
  int64_t group_counts[3] = {0, 0, 0};
  for (const Example& ex : data.full_test) {
    int group = static_cast<int>(ex.user_group);
    if (group_counts[group] >= kMaxPerGroup) continue;
    if (seen_sessions.insert(ex.session_id).second) {
      sample.push_back(&ex);
      ++group_counts[group];
    }
  }
  std::printf("[fig7] computing gate representations for %zu users...\n",
              sample.size());
  NoGradGuard guard;
  Matrix gates(static_cast<int64_t>(sample.size()),
               ModelDims::Default().num_experts);
  std::vector<int64_t> labels;
  for (size_t i = 0; i < sample.size(); ++i) {
    Batch one = CollateBatch({sample[i]}, data.meta, &standardizer);
    Matrix g = aw_moe->GateRepresentation(one).value();
    for (int64_t k = 0; k < g.cols(); ++k) {
      gates(static_cast<int64_t>(i), k) = g(0, k);
    }
    labels.push_back(static_cast<int64_t>(sample[i]->user_group));
  }

  std::printf("[fig7] running t-SNE (%lld points)...\n",
              static_cast<long long>(gates.rows()));
  TsneOptions options;
  options.iterations = flags.quick ? 150 : 350;
  options.perplexity = 30.0;
  Matrix embedding = TsneEmbed(gates, options);

  CsvWriter csv;
  if (csv.Open("fig7_tsne.csv").ok()) {
    csv.WriteRow({"x", "y", "group", "group_name", "history_len"});
    for (size_t i = 0; i < sample.size(); ++i) {
      csv.WriteRow({FormatDouble(embedding(static_cast<int64_t>(i), 0), 4),
                    FormatDouble(embedding(static_cast<int64_t>(i), 1), 4),
                    std::to_string(labels[i]),
                    GroupName(sample[i]->user_group),
                    std::to_string(sample[i]->history_len)});
    }
    csv.Close();
    std::printf("[fig7] coordinates written to fig7_tsne.csv\n");
  }

  // Separation in the raw gate space and in the t-SNE plane, both for the
  // three paper groups and for the binary split the paper's headline
  // observation rests on (new users vs old users).
  ClusterSeparation raw = ComputeClusterSeparation(gates, labels);
  ClusterSeparation plane = ComputeClusterSeparation(embedding, labels);
  std::vector<int64_t> binary_labels;
  for (int64_t label : labels) {
    binary_labels.push_back(label == 0 ? 0 : 1);  // new vs old.
  }
  ClusterSeparation raw_binary =
      ComputeClusterSeparation(gates, binary_labels);

  TablePrinter table("Figure 7 — cluster separation of gate outputs");
  table.SetHeader({"Space / grouping", "Silhouette", "Centroid acc.",
                   "Sep. ratio"});
  table.AddRow({"Gate output, 3 groups", FormatDouble(raw.silhouette, 3),
                FormatDouble(raw.centroid_accuracy, 3),
                FormatDouble(raw.separation_ratio, 3)});
  table.AddRow({"Gate output, new vs old",
                FormatDouble(raw_binary.silhouette, 3),
                FormatDouble(raw_binary.centroid_accuracy, 3),
                FormatDouble(raw_binary.separation_ratio, 3)});
  table.AddRow({"t-SNE plane, 3 groups", FormatDouble(plane.silhouette, 3),
                FormatDouble(plane.centroid_accuracy, 3),
                FormatDouble(plane.separation_ratio, 3)});
  table.Print();

  // Shape checks: (a) new users separate from old users above chance (the
  // paper's primary observation — users with no history activate experts
  // through the shared bias point); (b) the 3-way grouping beats chance.
  // The separation is weaker than the paper's figure: their gate reads
  // 1000+-item sequences, ours 10-item ones (see EXPERIMENTS.md).
  bool ok = raw_binary.centroid_accuracy > 0.6 &&
            raw.centroid_accuracy > 1.0 / 3.0;
  std::printf("[fig7] shape checks %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
