// Reproduces the §III-F serving optimisation study: because the AW-MoE
// gate reads only user and query features in the search scenario, it can
// be evaluated once per session and reused for every candidate item. The
// paper reports a >10x saving on the gate path and ~20 ms end-to-end
// session latency at JD scale. This google-benchmark binary measures
//   (a) per-item gate evaluation vs per-session gate sharing, end to end;
//   (b) the isolated gate-network path, whose per-session cost drops by a
//       factor equal to the session length (the >10x claim for their
//       10+-item sessions).

#include <benchmark/benchmark.h>

#include "common/experiment_lib.h"
#include "serving/ranking_service.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

/// Shared fixture: a small trained-ish AW-MoE (training quality is
/// irrelevant for latency) plus a pool of sessions.
struct ServingFixture {
  ServingFixture() {
    JdConfig jd;
    jd.train_sessions = 50;
    jd.test_sessions = 200;
    jd.longtail1_sessions = 5;
    jd.longtail2_sessions = 5;
    jd.seed = 7;
    data = JdSyntheticGenerator(jd).Generate();
    standardizer.Fit(data.full_test);
    Rng rng(11);
    AwMoeConfig config;
    model = std::make_unique<AwMoeRanker>(data.meta, config, &rng);
    sessions = GroupBySession(data.full_test);
  }

  static ServingFixture& Get() {
    static ServingFixture* fixture = new ServingFixture();
    return *fixture;
  }

  JdDataset data;
  Standardizer standardizer;
  std::unique_ptr<AwMoeRanker> model;
  std::vector<std::vector<const Example*>> sessions;
};

void BM_RankSession_PerItemGate(benchmark::State& state) {
  ServingFixture& fixture = ServingFixture::Get();
  RankingService service(fixture.model.get(), fixture.data.meta,
                         &fixture.standardizer, /*share_gate=*/false);
  size_t i = 0;
  for (auto _ : state) {
    auto scores =
        service.RankSession(fixture.sessions[i % fixture.sessions.size()]);
    benchmark::DoNotOptimize(scores);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankSession_PerItemGate)->Unit(benchmark::kMillisecond);

void BM_RankSession_SharedGate(benchmark::State& state) {
  ServingFixture& fixture = ServingFixture::Get();
  RankingService service(fixture.model.get(), fixture.data.meta,
                         &fixture.standardizer, /*share_gate=*/true);
  size_t i = 0;
  for (auto _ : state) {
    auto scores =
        service.RankSession(fixture.sessions[i % fixture.sessions.size()]);
    benchmark::DoNotOptimize(scores);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankSession_SharedGate)->Unit(benchmark::kMillisecond);

/// Isolated gate path: per-item (session-length gate batch) vs shared
/// (1-row gate batch). The ratio is the §III-F resource saving.
void BM_GatePath_PerItem(benchmark::State& state) {
  ServingFixture& fixture = ServingFixture::Get();
  NoGradGuard guard;
  size_t i = 0;
  for (auto _ : state) {
    const auto& session = fixture.sessions[i % fixture.sessions.size()];
    Batch batch = CollateBatch(session, fixture.data.meta,
                               &fixture.standardizer);
    Var gate = fixture.model->GateRepresentation(batch);
    benchmark::DoNotOptimize(gate);
    ++i;
  }
}
BENCHMARK(BM_GatePath_PerItem)->Unit(benchmark::kMillisecond);

void BM_GatePath_SharedOncePerSession(benchmark::State& state) {
  ServingFixture& fixture = ServingFixture::Get();
  NoGradGuard guard;
  size_t i = 0;
  for (auto _ : state) {
    const auto& session = fixture.sessions[i % fixture.sessions.size()];
    Batch probe =
        CollateBatch({session[0]}, fixture.data.meta, &fixture.standardizer);
    Var gate = fixture.model->GateRepresentation(probe);
    benchmark::DoNotOptimize(gate);
    ++i;
  }
}
BENCHMARK(BM_GatePath_SharedOncePerSession)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
