// Reproduces the §III-F serving optimisation study on the ServingEngine
// API: because the AW-MoE gate reads only user and query features in the
// search scenario, it can be evaluated once per session and reused for
// every candidate item. The paper reports a >10x saving on the gate path
// and ~20 ms end-to-end session latency at JD scale. This
// google-benchmark binary measures
//   (a) per-item gate evaluation vs per-session gate sharing vs the
//       engine's cross-request gate cache, end to end;
//   (b) cross-session micro-batching (RankBatch) vs one forward per
//       session;
//   (c) the isolated gate-network path, whose per-session cost drops by a
//       factor equal to the session length (the >10x claim for their
//       10+-item sessions);
//   (d) the legacy RankingService path, as the pre-engine baseline;
//   (e) the async Submit() front in closed-loop mode (one request in
//       flight: per-request latency including the queue-delay bound a
//       lone request pays) and open-loop burst mode (many requests in
//       flight: the time-bounded queue coalesces them into shared
//       forward passes; batch occupancy is reported as a counter);
//   (f) the replica scaling sweep: a multi-client closed-loop storm on
//       ONE hot model with replicas = {1, 2, 4} pool lanes (and as many
//       async flush lanes), reporting throughput, p99, and the
//       per-replica lane-occupancy counters — so the replica speedup is
//       measured, not asserted.
//
// Smoke mode for CI: pass --benchmark_min_time=0.01 to cap each case at
// ~10 ms of measurement (scripts/check.sh does this).

#include <benchmark/benchmark.h>

#include <future>
#include <thread>
#include <vector>

#include "common/experiment_lib.h"
#include "serving/ab_test.h"
#include "serving/model_pool.h"
#include "serving/ranking_service.h"
#include "serving/serving_engine.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

/// Shared fixture: a small trained-ish AW-MoE (training quality is
/// irrelevant for latency) plus a pool of sessions behind a registry.
struct ServingFixture {
  ServingFixture() {
    JdConfig jd;
    jd.train_sessions = 50;
    jd.test_sessions = 200;
    jd.longtail1_sessions = 5;
    jd.longtail2_sessions = 5;
    jd.seed = 7;
    data = JdSyntheticGenerator(jd).Generate();
    standardizer.Fit(data.full_test);
    Rng rng(11);
    AwMoeConfig config;
    model = std::make_unique<AwMoeRanker>(data.meta, config, &rng);
    sessions = GroupBySession(data.full_test);
    registry = std::make_unique<ModelPool>(data.meta, &standardizer);
    registry->Register("aw-moe", model.get());
  }

  static ServingFixture& Get() {
    static ServingFixture* fixture = new ServingFixture();
    return *fixture;
  }

  ServingEngineOptions Options(bool share_gate, int64_t cache_capacity) {
    ServingEngineOptions options;
    options.share_gate = share_gate;
    options.gate_cache_capacity = cache_capacity;
    return options;
  }

  JdDataset data;
  Standardizer standardizer;
  std::unique_ptr<AwMoeRanker> model;
  std::vector<std::vector<const Example*>> sessions;
  std::unique_ptr<ModelPool> registry;
};

void RankOneByOne(ServingEngine* engine, ServingFixture& fixture,
                  benchmark::State& state) {
  std::vector<RankRequest> requests =
      MakeSessionRequests(fixture.sessions);
  size_t i = 0;
  for (auto _ : state) {
    RankResponse response = engine->Rank(requests[i % requests.size()]);
    benchmark::DoNotOptimize(response.scores);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RankSession_PerItemGate(benchmark::State& state) {
  ServingFixture& fixture = ServingFixture::Get();
  ServingEngine engine(fixture.registry.get(),
                       fixture.Options(/*share_gate=*/false, 0));
  RankOneByOne(&engine, fixture, state);
}
BENCHMARK(BM_RankSession_PerItemGate)->Unit(benchmark::kMillisecond);

void BM_RankSession_SharedGate(benchmark::State& state) {
  ServingFixture& fixture = ServingFixture::Get();
  // Cache off: every request pays one fresh gate evaluation (§III-F
  // within-request sharing only), isolating the sharing saving.
  ServingEngine engine(fixture.registry.get(),
                       fixture.Options(/*share_gate=*/true, 0));
  RankOneByOne(&engine, fixture, state);
}
BENCHMARK(BM_RankSession_SharedGate)->Unit(benchmark::kMillisecond);

void BM_RankSession_CachedGate(benchmark::State& state) {
  ServingFixture& fixture = ServingFixture::Get();
  // Cache on: repeat requests for a session (pagination) skip the gate
  // network entirely.
  ServingEngine engine(fixture.registry.get(),
                       fixture.Options(/*share_gate=*/true, 4096));
  RankOneByOne(&engine, fixture, state);
}
BENCHMARK(BM_RankSession_CachedGate)->Unit(benchmark::kMillisecond);

/// Cross-session micro-batching: 32 sessions per RankBatch call vs 32
/// Rank calls (the BM above). Items/s is the comparable number.
void BM_RankBatch_MicroBatched(benchmark::State& state) {
  ServingFixture& fixture = ServingFixture::Get();
  ServingEngineOptions options = fixture.Options(/*share_gate=*/true, 0);
  options.max_batch_items = state.range(0);
  ServingEngine engine(fixture.registry.get(), options);
  constexpr size_t kSessionsPerCall = 32;
  size_t cursor = 0;
  int64_t items = 0;
  for (auto _ : state) {
    std::vector<RankRequest> requests;
    requests.reserve(kSessionsPerCall);
    for (size_t s = 0; s < kSessionsPerCall; ++s) {
      const auto& session =
          fixture.sessions[(cursor + s) % fixture.sessions.size()];
      RankRequest request;
      request.session_id = session[0]->session_id;
      request.items = session;
      items += static_cast<int64_t>(session.size());
      requests.push_back(std::move(request));
    }
    cursor += kSessionsPerCall;
    auto responses = engine.RankBatch(requests);
    benchmark::DoNotOptimize(responses);
  }
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_RankBatch_MicroBatched)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

/// Closed-loop async serving: one request in flight at a time through
/// Submit. A lone request can only flush on the time bound, so this
/// measures the full Submit -> future latency floor: queue delay (the
/// Arg, in microseconds) + one batch-of-one forward.
void BM_AsyncSubmit_ClosedLoop(benchmark::State& state) {
  ServingFixture& fixture = ServingFixture::Get();
  ServingEngineOptions options = fixture.Options(/*share_gate=*/true, 0);
  options.max_queue_delay_ms = static_cast<double>(state.range(0)) / 1e3;
  ServingEngine engine(fixture.registry.get(), options);
  std::vector<RankRequest> requests = MakeSessionRequests(fixture.sessions);
  size_t i = 0;
  for (auto _ : state) {
    RankResponse response =
        engine.Submit(requests[i % requests.size()]).get();
    benchmark::DoNotOptimize(response.scores);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  engine.Stop();
}
// UseRealTime: the work happens on the flusher thread, so CPU time of
// the submitting thread would wildly overstate throughput.
BENCHMARK(BM_AsyncSubmit_ClosedLoop)
    ->Arg(100)
    ->Arg(2000)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Open-loop async serving: a burst of single-session submits lands in
/// the queue before the first flush completes, so the engine coalesces
/// them into cap-bounded shared forward passes — the cross-session
/// amortisation RankBatch only gets when one caller already holds all
/// the requests. The "occupancy" counter is mean requests per forward.
void BM_AsyncSubmit_OpenLoopBurst(benchmark::State& state) {
  ServingFixture& fixture = ServingFixture::Get();
  ServingEngineOptions options = fixture.Options(/*share_gate=*/true, 0);
  options.max_queue_delay_ms = 2.0;
  ServingEngine engine(fixture.registry.get(), options);
  std::vector<RankRequest> requests = MakeSessionRequests(fixture.sessions);
  const size_t burst = static_cast<size_t>(state.range(0));
  size_t cursor = 0;
  int64_t items = 0;
  for (auto _ : state) {
    std::vector<std::future<RankResponse>> futures;
    futures.reserve(burst);
    for (size_t s = 0; s < burst; ++s) {
      const RankRequest& request = requests[(cursor + s) % requests.size()];
      items += static_cast<int64_t>(request.items.size());
      futures.push_back(engine.Submit(request));
    }
    cursor += burst;
    for (auto& future : futures) {
      RankResponse response = future.get();
      benchmark::DoNotOptimize(response.scores);
    }
  }
  state.SetItemsProcessed(items);
  state.counters["occupancy"] = engine.Stats().mean_batch_requests;
  engine.Stop();
}
BENCHMARK(BM_AsyncSubmit_OpenLoopBurst)
    ->Arg(8)
    ->Arg(32)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Replica scaling sweep (the tentpole's acceptance measurement): 4
/// closed-loop clients hammer ONE hot model through Submit while the
/// pool serves it with Arg replicas and the async front runs one flush
/// lane per replica. With 1 replica every micro-batch serialises on a
/// single lane; with N, up to N micro-batches are in flight on N
/// distinct weight clones. Counters: items/s (throughput), p99_ms (tail
/// at that load), lanes_mean/lanes_max (per-replica lane occupancy
/// sampled at each lease), occupancy (requests per forward).
void BM_AsyncSubmit_ClosedLoopReplicas(benchmark::State& state) {
  ServingFixture& fixture = ServingFixture::Get();
  const int replicas = static_cast<int>(state.range(0));
  ModelPoolOptions pool_options;
  pool_options.replicas = replicas;
  // A private pool per run: replica lanes are a pool property, and the
  // shared fixture pool must stay single-replica for the other benches.
  ModelPool pool(fixture.data.meta, &fixture.standardizer, pool_options);
  pool.Register("aw-moe", fixture.model.get());
  ServingEngineOptions options = fixture.Options(/*share_gate=*/true, 0);
  // Per-request micro-batches: a candidate cap of ~one session keeps
  // concurrent requests in separate flushes, which is the regime where
  // replica lanes pay — with a big cap the whole storm coalesces into
  // one batch per cycle and a single lane serves it regardless of N.
  options.max_batch_candidates = 16;
  options.max_queue_delay_ms = 0.5;
  ServingEngine engine(&pool, options);
  std::vector<RankRequest> requests = MakeSessionRequests(fixture.sessions);

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 8;
  int64_t items = 0;
  for (auto _ : state) {
    // One iteration = a sustained storm: each client runs its own
    // closed-loop stream of kPerClient requests, so completions stagger
    // and the queue always holds work for an idle lane (a lock-step
    // round would coalesce into one batch and hide the lanes).
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    const size_t base = static_cast<size_t>(state.iterations()) * kClients *
                        kPerClient;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&engine, &requests, base, c] {
        for (size_t m = 0; m < kPerClient; ++m) {
          const RankRequest& request =
              requests[(base + c * kPerClient + m) % requests.size()];
          RankResponse response = engine.Submit(request).get();
          benchmark::DoNotOptimize(response.scores);
        }
      });
    }
    for (size_t c = 0; c < kClients; ++c) {
      for (size_t m = 0; m < kPerClient; ++m) {
        items += static_cast<int64_t>(
            requests[(base + c * kPerClient + m) % requests.size()]
                .items.size());
      }
    }
    for (std::thread& client : clients) client.join();
  }
  state.SetItemsProcessed(items);
  ServingStatsSnapshot snap = engine.Stats();
  state.counters["p99_ms"] = snap.p99_ms;
  state.counters["occupancy"] = snap.mean_batch_requests;
  state.counters["lanes_mean"] = snap.mean_active_lanes;
  state.counters["lanes_max"] = static_cast<double>(snap.max_active_lanes);
  engine.Stop();
}
BENCHMARK(BM_AsyncSubmit_ClosedLoopReplicas)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Pre-engine baseline: the legacy single-session RankingService with
/// §III-F sharing on.
void BM_Legacy_RankingService_SharedGate(benchmark::State& state) {
  ServingFixture& fixture = ServingFixture::Get();
  RankingService service(fixture.model.get(), fixture.data.meta,
                         &fixture.standardizer, /*share_gate=*/true);
  size_t i = 0;
  for (auto _ : state) {
    auto scores =
        service.RankSession(fixture.sessions[i % fixture.sessions.size()]);
    benchmark::DoNotOptimize(scores);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Legacy_RankingService_SharedGate)
    ->Unit(benchmark::kMillisecond);

/// Isolated gate path: per-item (session-length gate batch) vs shared
/// (1-row gate batch). The ratio is the §III-F resource saving.
void BM_GatePath_PerItem(benchmark::State& state) {
  ServingFixture& fixture = ServingFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    const auto& session = fixture.sessions[i % fixture.sessions.size()];
    Batch batch = CollateBatch(session, fixture.data.meta,
                               &fixture.standardizer);
    Matrix gate = fixture.model->InferenceGate(batch);
    benchmark::DoNotOptimize(gate);
    ++i;
  }
}
BENCHMARK(BM_GatePath_PerItem)->Unit(benchmark::kMillisecond);

void BM_GatePath_SharedOncePerSession(benchmark::State& state) {
  ServingFixture& fixture = ServingFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    const auto& session = fixture.sessions[i % fixture.sessions.size()];
    Batch probe =
        CollateBatch({session[0]}, fixture.data.meta, &fixture.standardizer);
    Matrix gate = fixture.model->InferenceGate(probe);
    benchmark::DoNotOptimize(gate);
    ++i;
  }
}
BENCHMARK(BM_GatePath_SharedOncePerSession)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
