// Staged-rollout serving bench: the cost of putting a TrafficRouter in
// front of every request, and the throughput of serving two live model
// versions during a ramp. The acceptance gate of the rollout subsystem
// is the Split0 row: with a route configured but 0% of traffic on the
// candidate, the routed path must stay within ~5% of the direct
// single-version path's p99 (the router adds one map probe; the
// no-route fast path adds only a relaxed atomic load).
//
//   BM_RolloutRank_Direct       no route configured (fast path)
//   BM_RolloutRank_Split0       route configured, 0% candidate traffic
//   BM_RolloutRank_Split500     50/50: both snapshots served, sticky
//   BM_RolloutSubmit_Split500   the same split through the async front
//                               (arms ride separate coalescing queues)
//   BM_Rollout_FullRampReplay   a whole health-gated ramp (5%->100%)
//                               through ReplayRollout, auto-promoting
//
// Each row reports p99_ms from the engine's exact latency samples so
// the Split0-vs-Direct comparison is at-equal-tail, not means-only.
// Smoke mode for CI: --benchmark_min_time=0.01 (scripts/check.sh).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/experiment_lib.h"
#include "serving/ab_test.h"
#include "serving/model_pool.h"
#include "serving/rollout.h"
#include "serving/serving_engine.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

/// Shared fixture: a small AW-MoE stable model plus a distinct-weights
/// candidate (training quality is irrelevant for routing latency).
struct RolloutFixture {
  RolloutFixture() {
    JdConfig jd;
    jd.train_sessions = 50;
    jd.test_sessions = 200;
    jd.longtail1_sessions = 5;
    jd.longtail2_sessions = 5;
    jd.seed = 7;
    data = JdSyntheticGenerator(jd).Generate();
    standardizer.Fit(data.full_test);
    Rng rng_stable(11);
    AwMoeConfig config;
    stable = std::make_unique<AwMoeRanker>(data.meta, config, &rng_stable);
    Rng rng_candidate(13);
    candidate =
        std::make_unique<AwMoeRanker>(data.meta, config, &rng_candidate);
    sessions = GroupBySession(data.full_test);
  }

  static RolloutFixture& Get() {
    static RolloutFixture* fixture = new RolloutFixture();
    return *fixture;
  }

  /// A fresh pool with the stable model registered (and optionally the
  /// candidate staged), so each benchmark run starts from a clean
  /// rollout state.
  std::unique_ptr<ModelPool> MakePool(bool stage_candidate) {
    auto pool = std::make_unique<ModelPool>(data.meta, &standardizer);
    pool->Register("aw-moe", stable.get());
    if (stage_candidate) {
      pool->StageCandidate("aw-moe", candidate->Clone());
    }
    return pool;
  }

  JdDataset data;
  Standardizer standardizer;
  std::unique_ptr<AwMoeRanker> stable;
  std::unique_ptr<AwMoeRanker> candidate;
  std::vector<std::vector<const Example*>> sessions;
};

void RankLoop(ServingEngine* engine, RolloutFixture& fixture,
              benchmark::State& state) {
  std::vector<RankRequest> requests = MakeSessionRequests(fixture.sessions);
  size_t i = 0;
  for (auto _ : state) {
    RankResponse response = engine->Rank(requests[i % requests.size()]);
    benchmark::DoNotOptimize(response.scores);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["p99_ms"] = engine->stats().LatencyPercentileMs(99.0);
}

/// Baseline: a candidate is staged but NO route is configured — the
/// router answers from its fast path. This is the pre-rollout serving
/// cost plus one relaxed atomic load.
void BM_RolloutRank_Direct(benchmark::State& state) {
  RolloutFixture& fixture = RolloutFixture::Get();
  auto pool = fixture.MakePool(/*stage_candidate=*/true);
  ServingEngine engine(pool.get());
  RankLoop(&engine, fixture, state);
}
BENCHMARK(BM_RolloutRank_Direct)->Unit(benchmark::kMillisecond);

/// The acceptance row: route configured at split 0 — every request pays
/// the full router probe but all traffic still serves stable. p99 here
/// vs BM_RolloutRank_Direct is the routing overhead (gate: <= 5%).
void BM_RolloutRank_Split0(benchmark::State& state) {
  RolloutFixture& fixture = RolloutFixture::Get();
  auto pool = fixture.MakePool(/*stage_candidate=*/true);
  ServingEngine engine(pool.get());
  engine.router()->SetSplit("aw-moe", 0);
  RankLoop(&engine, fixture, state);
}
BENCHMARK(BM_RolloutRank_Split0)->Unit(benchmark::kMillisecond);

/// Mid-ramp: half the sessions serve the candidate snapshot. Same
/// work per forward; the cost difference vs Split0 is gate-cache
/// warm-up split across two snapshots.
void BM_RolloutRank_Split500(benchmark::State& state) {
  RolloutFixture& fixture = RolloutFixture::Get();
  auto pool = fixture.MakePool(/*stage_candidate=*/true);
  ServingEngine engine(pool.get());
  engine.router()->SetSplit("aw-moe", 500);
  int64_t candidate_requests = 0;
  std::vector<RankRequest> requests = MakeSessionRequests(fixture.sessions);
  size_t i = 0;
  for (auto _ : state) {
    RankResponse response = engine.Rank(requests[i % requests.size()]);
    benchmark::DoNotOptimize(response.scores);
    if (response.arm == RolloutArm::kCandidate) ++candidate_requests;
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["p99_ms"] = engine.stats().LatencyPercentileMs(99.0);
  state.counters["candidate_share"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(candidate_requests) /
                static_cast<double>(state.iterations());
}
BENCHMARK(BM_RolloutRank_Split500)->Unit(benchmark::kMillisecond);

/// The async front mid-ramp: 4 client threads stream sessions through
/// Submit(); the two arms ride separate coalescing queues (one route
/// key each), so a flush never mixes snapshots.
void BM_RolloutSubmit_Split500(benchmark::State& state) {
  RolloutFixture& fixture = RolloutFixture::Get();
  auto pool = fixture.MakePool(/*stage_candidate=*/true);
  ServingEngineOptions options;
  options.max_queue_delay_ms = 0.2;
  ServingEngine engine(pool.get(), options);
  engine.router()->SetSplit("aw-moe", 500);
  std::vector<RankRequest> requests = MakeSessionRequests(fixture.sessions);
  constexpr size_t kClients = 4;
  size_t round = 0;
  for (auto _ : state) {
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([c, round, &engine, &requests] {
        for (size_t s = c; s < 32; s += kClients) {
          engine.Submit(requests[(round * 32 + s) % requests.size()]).get();
        }
      });
    }
    for (std::thread& client : clients) client.join();
    ++round;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 32);
  ServingStatsSnapshot snap = engine.Stats();
  state.counters["p99_ms"] = snap.p99_ms;
  state.counters["occupancy"] = snap.mean_batch_requests;
  engine.Stop();
}
BENCHMARK(BM_RolloutSubmit_Split500)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// A whole staged rollout per iteration: stage the candidate, walk a
/// 5%->25%->100% ramp with the health gate evaluating real per-version
/// p99 windows, auto-promote. `rounds` counts the session sweeps the
/// ramp needed; `promoted` must stay 1.0.
void BM_Rollout_FullRampReplay(benchmark::State& state) {
  RolloutFixture& fixture = RolloutFixture::Get();
  // A 64-session sweep per round keeps one full ramp around ~1k
  // forwards. The ramp starts at 5%: at 1% of 64 sessions the sticky
  // bucketing can legitimately assign NOBODY to the candidate, and the
  // evidence gate would (correctly) hold the ramp forever.
  const std::vector<std::vector<const Example*>> sweep(
      fixture.sessions.begin(),
      fixture.sessions.begin() +
          std::min<size_t>(fixture.sessions.size(), 64));
  int64_t rounds = 0;
  int64_t promoted = 0;
  for (auto _ : state) {
    auto pool = fixture.MakePool(/*stage_candidate=*/false);
    ServingEngine engine(pool.get());
    RolloutOptions options;
    options.ramp_permille = {50, 250, 1000};
    options.min_stage_requests = 20;
    // The two models are architecture-identical, so the default 1.5x
    // p99 gate would only trip on scheduler noise; widen it — this row
    // measures ramp mechanics, not container jitter.
    options.max_p99_ratio = 20.0;
    options.p99_slack_ms = 50.0;
    RolloutController controller(pool.get(), engine.router(),
                                 &engine.stats(), "aw-moe", options);
    controller.Begin(fixture.candidate->Clone());
    RolloutReplayResult replay = ReplayRollout(&engine, &controller, sweep,
                                               /*max_rounds=*/64);
    benchmark::DoNotOptimize(replay);
    rounds += static_cast<int64_t>(replay.rounds.size());
    if (replay.final_state == RolloutState::kPromoted) ++promoted;
  }
  state.counters["rounds"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(rounds) /
                static_cast<double>(state.iterations());
  state.counters["promoted"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(promoted) /
                static_cast<double>(state.iterations());
}
BENCHMARK(BM_Rollout_FullRampReplay)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
