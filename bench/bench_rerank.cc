// Two-stage retrieve -> rerank bench (ROADMAP item 4): trains the
// pointwise AW-MoE retriever and the listwise self-attention reranker
// on one synthetic world, then measures (a) ranking accuracy of
// pointwise-only vs the two-stage pipeline over the holdout sessions,
// and (b) serving latency of the slate-scoring path at slate sizes
// 10 / 25 / 50 through a live ServingEngine (the rerank-stage reservoir
// isolates the slate forward from collation and fan-out).
//
// `--json` writes the machine-readable artifact consumed by the CI
// bench-smoke upload, including the acceptance gate: the two-stage
// NDCG@10 must not be below pointwise-only. The gate is defined on the
// `--smoke` sizing (what CI runs); the synthetic world generates labels
// pointwise (no slate-context effects), so the reranker's edge there
// comes from listwise training acting as a regulariser on the small
// corpus — at the full sizing the higher-capacity pointwise model can
// win, which the bench reports without gating.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/aw_moe.h"
#include "core/trainer.h"
#include "data/batcher.h"
#include "data/jd_synthetic.h"
#include "eval/metrics.h"
#include "models/listwise/listwise_reranker.h"
#include "serving/model_pool.h"
#include "serving/request.h"
#include "serving/serving_engine.h"
#include "serving/serving_stats.h"
#include "serving/two_stage.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace awmoe;

struct RerankFlags {
  int64_t top_k = 25;
  int64_t listwise_epochs = 0;  // 0 = sizing default.
  double listwise_lr = 1e-3;
  int64_t seed = 20230613;
  bool smoke = false;
  std::string json;
};

JdConfig World(const RerankFlags& flags) {
  JdConfig config;
  config.num_users = 400;
  config.num_items = 300;
  config.num_categories = 8;
  config.brands_per_category = 4;
  config.num_shops = 20;
  config.train_sessions = flags.smoke ? 240 : 800;
  config.test_sessions = flags.smoke ? 60 : 150;
  config.longtail1_sessions = 5;
  config.longtail2_sessions = 5;
  config.seed = static_cast<uint64_t>(flags.seed);
  return config;
}

AwMoeConfig BenchModelConfig() {
  AwMoeConfig config;
  config.dims.emb_dim = 8;
  config.dims.tower_mlp = {16, 8};
  config.dims.activation_unit = {8, 4};
  config.dims.gate_unit = {8, 4};
  config.dims.expert = {16, 8};
  return config;
}

ListwiseDims BenchListwiseDims() {
  ListwiseDims ldims;
  ldims.d_model = 16;
  ldims.num_heads = 2;
  ldims.num_layers = 1;
  ldims.ffn_hidden = {32};
  ldims.head_hidden = {16};
  ldims.max_slate_len = 64;
  return ldims;
}

std::string Bool(bool b) { return b ? "true" : "false"; }

struct SlateLatency {
  int64_t slate_size = 0;
  int64_t slates = 0;
  double rerank_p50_ms = 0.0;
  double rerank_p99_ms = 0.0;
  double request_p50_ms = 0.0;
  double request_p99_ms = 0.0;
};

/// Serving latency of the slate path at one fixed slate size: a fresh
/// engine (fresh stats), synchronous Ranks over slates carved from the
/// holdout examples. The score cache is bypassed for slate models, so
/// every request pays a real forward.
SlateLatency MeasureSlateLatency(ModelPool* pool,
                                 const std::vector<const Example*>& items,
                                 int64_t slate_size, int64_t requests) {
  ServingEngine engine(pool);
  size_t cursor = 0;
  for (int64_t r = 0; r < requests; ++r) {
    RankRequest request;
    request.model = "listwise";
    request.items.reserve(static_cast<size_t>(slate_size));
    for (int64_t i = 0; i < slate_size; ++i) {
      request.items.push_back(items[cursor++ % items.size()]);
    }
    request.session_id = request.items[0]->session_id;
    RankResponse response = engine.Rank(request);
    if (!response.status.ok()) {
      std::fprintf(stderr, "[rerank] slate rank failed: %s\n",
                   response.status.ToString().c_str());
      break;
    }
  }
  ServingStatsSnapshot snap = engine.Stats();
  SlateLatency latency;
  latency.slate_size = slate_size;
  latency.slates = snap.slates;
  latency.rerank_p50_ms = snap.rerank_p50_ms;
  latency.rerank_p99_ms = snap.rerank_p99_ms;
  latency.request_p50_ms = snap.p50_ms;
  latency.request_p99_ms = snap.p99_ms;
  return latency;
}

void WriteJson(const std::string& path, const RerankFlags& flags,
               const RankingEvaluation& pointwise,
               const RankingEvaluation& two_stage,
               const std::vector<SlateLatency>& latencies,
               double train_pointwise_s, double train_listwise_s,
               double total_seconds) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"bench\": \"rerank\",\n";
  out << "  \"smoke\": " << Bool(flags.smoke) << ",\n";
  out << "  \"top_k\": " << flags.top_k << ",\n";
  out << "  \"train_pointwise_seconds\": " << train_pointwise_s << ",\n";
  out << "  \"train_listwise_seconds\": " << train_listwise_s << ",\n";
  out << "  \"total_seconds\": " << total_seconds << ",\n";
  out << "  \"accuracy\": {\n";
  out << "    \"pointwise_ndcg_at_10\": " << pointwise.ndcg_at_k << ",\n";
  out << "    \"pointwise_ndcg\": " << pointwise.ndcg << ",\n";
  out << "    \"two_stage_ndcg_at_10\": " << two_stage.ndcg_at_k << ",\n";
  out << "    \"two_stage_ndcg\": " << two_stage.ndcg << "\n";
  out << "  },\n";
  out << "  \"latency\": [\n";
  for (size_t i = 0; i < latencies.size(); ++i) {
    const SlateLatency& l = latencies[i];
    out << "    {\"slate_size\": " << l.slate_size
        << ", \"slates\": " << l.slates
        << ", \"rerank_p50_ms\": " << l.rerank_p50_ms
        << ", \"rerank_p99_ms\": " << l.rerank_p99_ms
        << ", \"request_p50_ms\": " << l.request_p50_ms
        << ", \"request_p99_ms\": " << l.request_p99_ms << "}"
        << (i + 1 == latencies.size() ? "" : ",") << "\n";
  }
  out << "  ],\n";
  out << "  \"gates\": {\n";
  out << "    \"rerank_ndcg_ge_pointwise\": "
      << Bool(two_stage.ndcg_at_k >= pointwise.ndcg_at_k) << "\n";
  out << "  }\n";
  out << "}\n";
  std::printf("[rerank] JSON artifact written to %s\n", path.c_str());
}

int Run(int argc, char** argv) {
  RerankFlags flags;
  FlagSet flag_set(
      "Two-stage retrieve -> rerank: pointwise AW-MoE retrieval feeding the "
      "listwise self-attention reranker through the serving engine, with "
      "accuracy vs pointwise-only and slate-path latency at 10/25/50");
  flag_set.AddInt("top_k", &flags.top_k,
                  "slate size of the rerank stage (stage-1 winners kept)");
  flag_set.AddInt("listwise_epochs", &flags.listwise_epochs,
                  "reranker training epochs (0 = sizing default)");
  flag_set.AddDouble("listwise_lr", &flags.listwise_lr,
                     "reranker learning rate");
  flag_set.AddInt("seed", &flags.seed, "base RNG seed");
  flag_set.AddBool("smoke", &flags.smoke,
                   "CI smoke sizing (small corpus, fewer epochs/requests)");
  flag_set.AddString("json", &flags.json,
                     "path for the machine-readable artifact (empty = skip)");
  Status status = flag_set.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  Stopwatch total_watch;
  std::printf("[rerank] generating world...\n");
  JdDataset data = JdSyntheticGenerator(World(flags)).Generate();
  Standardizer standardizer;
  standardizer.Fit(data.train);

  std::printf("[rerank] training the pointwise retriever (AW-MoE)...\n");
  Rng pointwise_rng(31);
  auto pointwise_model = std::make_unique<AwMoeRanker>(
      data.meta, BenchModelConfig(), &pointwise_rng);
  TrainerConfig pointwise_config;
  pointwise_config.batch_size = 128;
  pointwise_config.epochs = flags.smoke ? 4 : 6;
  pointwise_config.seed = 5;
  Stopwatch pointwise_watch;
  Trainer pointwise_trainer(pointwise_model.get(), pointwise_config);
  pointwise_trainer.Train(data.train, data.meta, &standardizer);
  const double train_pointwise_s = pointwise_watch.ElapsedSeconds();

  std::printf("[rerank] training the listwise reranker (ListNet)...\n");
  Rng listwise_rng(47);
  auto listwise_model = std::make_unique<ListwiseReranker>(
      data.meta, BenchModelConfig().dims, BenchListwiseDims(), &listwise_rng);
  TrainerConfig listwise_config;
  listwise_config.batch_size = 128;  // Whole sessions per batch.
  listwise_config.epochs =
      flags.listwise_epochs > 0 ? flags.listwise_epochs : 8;
  listwise_config.lr = static_cast<float>(flags.listwise_lr);
  listwise_config.seed = 9;
  Stopwatch listwise_watch;
  Trainer listwise_trainer(listwise_model.get(), listwise_config);
  listwise_trainer.Train(data.train, data.meta, &standardizer);
  const double train_listwise_s = listwise_watch.ElapsedSeconds();

  ModelPool pool(data.meta, &standardizer);
  pool.RegisterOwned("aw-moe", std::move(pointwise_model));
  pool.RegisterOwned("listwise", std::move(listwise_model));

  // --- Accuracy over the holdout: pointwise-only vs two-stage. Both
  // run through the same engine; sessions are contiguous runs in
  // full_test, so per-session scores concatenate into aligned vectors.
  std::printf("[rerank] scoring the holdout (%zu examples)...\n",
              data.full_test.size());
  ServingEngine engine(&pool);
  TwoStageOptions two_stage_options;
  two_stage_options.retrieval_model = "aw-moe";
  two_stage_options.rerank_model = "listwise";
  two_stage_options.top_k = flags.top_k;
  TwoStageRanker two_stage(&engine, two_stage_options);

  const std::vector<std::vector<const Example*>> sessions =
      GroupBySession(data.full_test);
  std::vector<double> pointwise_scores;
  std::vector<double> two_stage_scores;
  pointwise_scores.reserve(data.full_test.size());
  two_stage_scores.reserve(data.full_test.size());
  double retrieve_ms = 0.0;
  double rerank_ms = 0.0;
  for (const auto& session : sessions) {
    RankRequest request;
    request.session_id = session[0]->session_id;
    request.model = "aw-moe";
    request.items = session;
    TwoStageResult result = two_stage.Rank(request);
    if (!result.status.ok()) {
      std::fprintf(stderr, "[rerank] two-stage rank failed: %s\n",
                   result.status.ToString().c_str());
      return 1;
    }
    pointwise_scores.insert(pointwise_scores.end(),
                            result.retrieval_scores.begin(),
                            result.retrieval_scores.end());
    two_stage_scores.insert(two_stage_scores.end(),
                            result.final_scores.begin(),
                            result.final_scores.end());
    retrieve_ms += result.retrieve_ms;
    rerank_ms += result.rerank_ms;
  }
  const RankingEvaluation pointwise_eval =
      EvaluateRanking(data.full_test, pointwise_scores, 10);
  const RankingEvaluation two_stage_eval =
      EvaluateRanking(data.full_test, two_stage_scores, 10);

  TablePrinter accuracy("Holdout ranking accuracy (session-grouped)");
  accuracy.SetHeader({"Pipeline", "NDCG@10", "NDCG", "AUC"});
  accuracy.AddRow({"Pointwise AW-MoE", FormatDouble(pointwise_eval.ndcg_at_k, 4),
                   FormatDouble(pointwise_eval.ndcg, 4),
                   FormatDouble(pointwise_eval.auc, 4)});
  accuracy.AddRow({"Two-stage (rerank top-" + std::to_string(flags.top_k) + ")",
                   FormatDouble(two_stage_eval.ndcg_at_k, 4),
                   FormatDouble(two_stage_eval.ndcg, 4),
                   FormatDouble(two_stage_eval.auc, 4)});
  accuracy.Print();

  // --- Serving latency of the slate path at fixed slate sizes.
  std::vector<const Example*> items;
  items.reserve(data.full_test.size());
  for (const Example& ex : data.full_test) items.push_back(&ex);
  const int64_t requests = flags.smoke ? 30 : 200;
  std::vector<SlateLatency> latencies;
  for (int64_t slate_size : {int64_t{10}, int64_t{25}, int64_t{50}}) {
    latencies.push_back(
        MeasureSlateLatency(&pool, items, slate_size, requests));
  }

  TablePrinter latency_table("Slate-path serving latency (listwise model)");
  latency_table.SetHeader({"Slate", "Slates", "Rerank p50 ms", "Rerank p99 ms",
                           "Request p50 ms", "Request p99 ms"});
  for (const SlateLatency& l : latencies) {
    latency_table.AddRow({std::to_string(l.slate_size),
                          std::to_string(l.slates),
                          FormatDouble(l.rerank_p50_ms, 3),
                          FormatDouble(l.rerank_p99_ms, 3),
                          FormatDouble(l.request_p50_ms, 3),
                          FormatDouble(l.request_p99_ms, 3)});
  }
  latency_table.Print();

  const double total_seconds = total_watch.ElapsedSeconds();
  const bool gate = two_stage_eval.ndcg_at_k >= pointwise_eval.ndcg_at_k;
  std::printf(
      "[rerank] NDCG@10 pointwise %.4f -> two-stage %.4f (%s); holdout "
      "retrieve %.1f ms + rerank %.1f ms over %zu sessions; total %.1f s\n",
      pointwise_eval.ndcg_at_k, two_stage_eval.ndcg_at_k,
      gate ? "GATE PASS" : "GATE MISS", retrieve_ms, rerank_ms,
      sessions.size(), total_seconds);

  if (!flags.json.empty()) {
    WriteJson(flags.json, flags, pointwise_eval, two_stage_eval, latencies,
              train_pointwise_s, train_listwise_s, total_seconds);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
