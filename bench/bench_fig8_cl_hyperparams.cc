// Reproduces Figure 8: AUC@10 on long-tail test set 1 as a function of the
// three contrastive-learning hyper-parameters — mask probability p,
// number of in-batch negatives l, and loss weight lambda — swept one at a
// time around the paper's operating point (p=0.1, l=3, lambda=0.05),
// following the paper's coordinate-wise tuning protocol. Expected shape:
// unimodal curves peaking near the paper's optima. Series are written to
// fig8_<param>.csv.

#include <cstdio>

#include "common/experiment_lib.h"
#include "util/csv_writer.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

struct SweepPoint {
  double value;
  double auc_at_10;
  double auc;
};

int Run(int argc, char** argv) {
  BenchFlags flags;
  // Sweeps retrain per point; default to a lighter corpus than the table
  // benches so the whole figure stays within a few minutes.
  flags.train_sessions = 7000;
  flags.test_sessions = 200;
  flags.longtail1_sessions = 600;
  flags.epochs = 2;
  Status status = flags.Parse(
      argc, argv, "Figure 8: contrastive-learning hyper-parameter sweeps");
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("[fig8] generating JD dataset...\n");
  JdDataset data = JdSyntheticGenerator(flags.MakeJdConfig()).Generate();
  Standardizer standardizer;
  standardizer.Fit(data.train);

  auto run_point = [&](double p, int64_t l, double lambda) -> SweepPoint {
    TrainerConfig tc = flags.MakeTrainerConfig();
    tc.contrastive = true;
    tc.cl.mask_prob = p;
    tc.cl.num_negatives = l;
    tc.cl.weight = lambda;
    AwMoeConfig config;
    config.dims = ModelDims::Default();
    Rng rng(static_cast<uint64_t>(flags.seed) + 10);
    AwMoeRanker model(data.meta, config, &rng);
    Trainer trainer(&model, tc);
    trainer.Train(data.train, data.meta, &standardizer);
    std::vector<double> scores =
        Predict(&model, data.longtail1_test, data.meta, &standardizer);
    RankingEvaluation eval = EvaluateRanking(data.longtail1_test, scores);
    return SweepPoint{0.0, eval.auc_at_k, eval.auc};
  };

  auto sweep = [&](const char* name, const std::vector<double>& values,
                   auto make_params) {
    TablePrinter table(StrFormat("Figure 8 — AUC@10 vs %s "
                                 "(long-tail test set 1)",
                                 name));
    table.SetHeader({name, "AUC@10", "AUC"});
    CsvWriter csv;
    bool csv_ok = csv.Open(StrFormat("fig8_%s.csv", name)).ok();
    if (csv_ok) csv.WriteRow({name, "auc_at_10", "auc"});
    double best_value = 0.0, best_metric = -1.0;
    for (double value : values) {
      auto [p, l, lambda] = make_params(value);
      std::printf("[fig8] %s = %g (p=%g, l=%lld, lambda=%g)...\n", name,
                  value, p, static_cast<long long>(l), lambda);
      SweepPoint point = run_point(p, l, lambda);
      point.value = value;
      table.AddRow({FormatDouble(value, 2), FormatDouble(point.auc_at_10, 4),
                    FormatDouble(point.auc, 4)});
      if (csv_ok) {
        csv.WriteRow({FormatDouble(value, 4),
                      FormatDouble(point.auc_at_10, 6),
                      FormatDouble(point.auc, 6)});
      }
      if (point.auc_at_10 > best_metric) {
        best_metric = point.auc_at_10;
        best_value = value;
      }
    }
    if (csv_ok) csv.Close();
    table.Print();
    std::printf("[fig8] best %s = %g (AUC@10 %.4f)\n", name, best_value,
                best_metric);
  };

  // Paper protocol: sweep p with (l=1, lambda=0.05), then l with the best
  // p, then lambda with the best l. We keep the paper's fixed settings.
  std::vector<double> p_values = flags.quick
                                     ? std::vector<double>{0.05, 0.1, 0.4}
                                     : std::vector<double>{0.01, 0.05, 0.1,
                                                           0.2, 0.4, 0.8};
  sweep("mask_probability_p", p_values, [](double v) {
    return std::make_tuple(v, int64_t{1}, 0.05);
  });

  std::vector<double> l_values = flags.quick
                                     ? std::vector<double>{1, 3, 8}
                                     : std::vector<double>{1, 2, 3, 5, 8, 10};
  sweep("negatives_l", l_values, [](double v) {
    return std::make_tuple(0.1, static_cast<int64_t>(v), 0.05);
  });

  std::vector<double> lambda_values =
      flags.quick ? std::vector<double>{0.01, 0.05, 0.3}
                  : std::vector<double>{0.01, 0.02, 0.05, 0.1, 0.2, 0.5};
  sweep("cl_weight_lambda", lambda_values, [](double v) {
    return std::make_tuple(0.1, int64_t{3}, v);
  });

  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
