// Continuous-retraining loop bench (ROADMAP item 5): closes the
// train->serve loop end to end and measures it. One RetrainDriver runs
// `--rounds` rounds against a live ServingEngine: each round generates
// a fresh data window, retrains the replica with the data-parallel
// ParallelTrainer, stages the clone, and ticks the health-gated ramp
// while shadow scoring feeds the accuracy-drift gate — all with live
// Submit() traffic flowing between ticks. One round (`--sabotage`) ships
// untrained random weights instead, the canonical "training pipeline
// silently broke" regression that only the drift gate can catch: its
// latency and error health are perfect.
//
// `--json` writes the machine-readable artifact consumed by the CI
// bench-smoke upload, including the acceptance gates: at least one
// round auto-promoted, and the sabotaged round auto-rolled-back.

#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/aw_moe.h"
#include "core/trainer.h"
#include "data/batcher.h"
#include "data/jd_synthetic.h"
#include "serving/model_pool.h"
#include "serving/request.h"
#include "serving/serving_engine.h"
#include "train/retrain_driver.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace awmoe;

constexpr char kModelName[] = "aw-moe-cl";

struct RetrainLoopFlags {
  int64_t rounds = 3;
  /// Round whose staged candidate is replaced by untrained random
  /// weights (< 0 disables the sabotage).
  int64_t sabotage = 1;
  int64_t workers = 2;
  int64_t seed = 20230608;
  bool smoke = false;
  std::string json;
};

/// The fixed world every retrain window draws from; only the per-round
/// seed moves, so vocabulary dims (and model shapes) stay constant.
JdConfig World(const RetrainLoopFlags& flags) {
  JdConfig config;
  config.num_users = 400;
  config.num_items = 300;
  config.num_categories = 8;
  config.brands_per_category = 4;
  config.num_shops = 20;
  config.train_sessions = flags.smoke ? 240 : 800;
  config.test_sessions = flags.smoke ? 60 : 150;
  config.longtail1_sessions = 5;
  config.longtail2_sessions = 5;
  config.seed = static_cast<uint64_t>(flags.seed);
  return config;
}

AwMoeConfig BenchModelConfig() {
  AwMoeConfig config;
  config.dims.emb_dim = 8;
  config.dims.tower_mlp = {16, 8};
  config.dims.activation_unit = {8, 4};
  config.dims.gate_unit = {8, 4};
  config.dims.expert = {16, 8};
  return config;
}

std::string Bool(bool b) { return b ? "true" : "false"; }

void WriteJson(const std::string& path, const RetrainLoopFlags& flags,
               const RetrainDriver& driver, double total_seconds,
               bool sabotage_rolled_back) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"bench\": \"retrain_loop\",\n";
  out << "  \"smoke\": " << Bool(flags.smoke) << ",\n";
  out << "  \"rounds\": " << driver.rounds() << ",\n";
  out << "  \"workers\": " << flags.workers << ",\n";
  out << "  \"sabotage_round\": " << flags.sabotage << ",\n";
  out << "  \"total_seconds\": " << total_seconds << ",\n";
  out << "  \"round_results\": [\n";
  const std::vector<RetrainRoundResult>& history = driver.history();
  for (size_t i = 0; i < history.size(); ++i) {
    const RetrainRoundResult& round = history[i];
    out << "    {\"round\": " << round.round
        << ", \"staged_version\": " << round.staged_version
        << ", \"state\": \"" << RolloutStateToString(round.final_state)
        << "\", \"ticks\": " << round.ticks
        << ", \"train_seconds\": " << round.train_seconds
        << ", \"final_rank_loss\": " << round.final_rank_loss
        << ", \"candidate_engagement\": " << round.candidate_engagement
        << ", \"stable_engagement\": " << round.stable_engagement << "}"
        << (i + 1 == history.size() ? "" : ",") << "\n";
  }
  out << "  ],\n";
  out << "  \"gates\": {\n";
  out << "    \"promoted\": " << driver.promoted() << ",\n";
  out << "    \"rolled_back\": " << driver.rolled_back() << ",\n";
  out << "    \"promoted_at_least_one\": " << Bool(driver.promoted() >= 1)
      << ",\n";
  out << "    \"sabotage_rolled_back\": " << Bool(sabotage_rolled_back)
      << "\n";
  out << "  }\n";
  out << "}\n";
  std::printf("[retrain-loop] JSON artifact written to %s\n", path.c_str());
}

int Run(int argc, char** argv) {
  RetrainLoopFlags flags;
  FlagSet flag_set(
      "Continuous-retraining loop: data-parallel retrains staged through "
      "health-gated rollouts under live traffic, with one sabotaged round "
      "exercising the accuracy-drift auto-rollback");
  flag_set.AddInt("rounds", &flags.rounds, "retrain rounds to run");
  flag_set.AddInt("sabotage", &flags.sabotage,
                  "round index whose candidate ships untrained weights "
                  "(< 0 disables)");
  flag_set.AddInt("workers", &flags.workers, "ParallelTrainer workers");
  flag_set.AddInt("seed", &flags.seed, "base RNG seed");
  flag_set.AddBool("smoke", &flags.smoke,
                   "CI smoke sizing (small corpus, one epoch per round)");
  flag_set.AddString("json", &flags.json,
                     "path for the machine-readable artifact (empty = skip)");
  Status status = flag_set.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("[retrain-loop] generating world + training the baseline...\n");
  const JdConfig world = World(flags);
  JdDataset data = JdSyntheticGenerator(world).Generate();
  Standardizer standardizer;
  standardizer.Fit(data.train);
  Rng rng(31);
  auto baseline =
      std::make_unique<AwMoeRanker>(data.meta, BenchModelConfig(), &rng);
  TrainerConfig baseline_config;
  baseline_config.batch_size = 128;
  baseline_config.epochs = flags.smoke ? 4 : 6;
  baseline_config.seed = 5;
  Trainer baseline_trainer(baseline.get(), baseline_config);
  baseline_trainer.Train(data.train, data.meta, &standardizer);

  ModelPool pool(data.meta, &standardizer);
  std::unique_ptr<Ranker> replica = baseline->Clone();
  pool.RegisterOwned(kModelName, std::move(baseline));
  ServingEngineOptions engine_options;
  engine_options.max_queue_delay_ms = 0.2;
  ServingEngine engine(&pool, engine_options);

  RetrainOptions options;
  options.data = world;
  options.trainer.base.batch_size = 128;
  options.trainer.base.epochs = flags.smoke ? 1 : 2;
  options.trainer.base.seed = 100;
  options.trainer.num_workers = static_cast<int>(flags.workers);
  options.trainer.grad_accumulation = 2;
  options.rollout.ramp_permille = {250, 500, 1000};
  options.rollout.min_stage_requests = 10;
  // Latency gates stay permissive: both arms run the same architecture
  // on a shared CI core, and the drift gate is the one on display here.
  options.rollout.max_p99_ratio = 50.0;
  options.rollout.p99_slack_ms = 500.0;
  options.rollout.min_drift_sessions = 40;
  options.rollout.max_engagement_drop = 0.10;
  options.rollout.engagement_slack = 0.05;
  options.shadow_sessions_per_tick = 16;
  options.shadow_top_k = 3;
  RetrainDriver driver(&engine, &pool, kModelName, std::move(replica),
                       options);

  // Live traffic between ramp ticks: async Submits over the baseline
  // holdout sessions (futures collected at the end of each round).
  const std::vector<std::vector<const Example*>> live_sessions =
      GroupBySession(data.full_test);
  size_t next_session = 0;
  std::vector<std::future<RankResponse>> live;
  const auto between_ticks = [&] {
    for (int i = 0; i < 4; ++i) {
      const auto& session = live_sessions[next_session++ % live_sessions.size()];
      RankRequest request;
      request.session_id = session[0]->session_id;
      request.items = session;
      live.push_back(engine.Submit(std::move(request)));
    }
  };

  bool sabotage_rolled_back = false;
  Stopwatch total_watch;
  for (int64_t round = 0; round < flags.rounds; ++round) {
    const bool sabotaged = round == flags.sabotage;
    if (sabotaged) {
      driver.set_post_train_hook([&data](Ranker* staged) {
        Rng garbage_rng(991);
        AwMoeRanker garbage(data.meta, BenchModelConfig(), &garbage_rng);
        CopyParametersInto(garbage, staged);
      });
    } else {
      driver.set_post_train_hook(nullptr);
    }
    std::printf("[retrain-loop] round %lld%s...\n",
                static_cast<long long>(round),
                sabotaged ? " (sabotaged: shipping untrained weights)" : "");
    const RetrainRoundResult result = driver.RunRound(between_ticks);
    std::printf("[retrain-loop]   v%lld %s after %d ticks: %s\n",
                static_cast<long long>(result.staged_version),
                std::string(RolloutStateToString(result.final_state)).c_str(),
                result.ticks, result.last_decision.c_str());
    for (std::future<RankResponse>& future : live) future.get();
    live.clear();
    if (sabotaged &&
        result.final_state == RolloutState::kRolledBack) {
      sabotage_rolled_back = true;
    }
  }
  const double total_seconds = total_watch.ElapsedSeconds();
  engine.Stop(/*drain=*/true);

  TablePrinter table("Continuous retraining: rounds through the drift gate");
  table.SetHeader({"Round", "Version", "State", "Ticks", "Train s",
                   "Rank loss", "Cand engage", "Stable engage"});
  for (const RetrainRoundResult& round : driver.history()) {
    table.AddRow({std::to_string(round.round),
                  std::to_string(round.staged_version),
                  std::string(RolloutStateToString(round.final_state)),
                  std::to_string(round.ticks),
                  FormatDouble(round.train_seconds, 2),
                  FormatDouble(round.final_rank_loss, 4),
                  FormatDouble(round.candidate_engagement, 3),
                  FormatDouble(round.stable_engagement, 3)});
  }
  table.Print();

  const int64_t stable_version =
      pool.CurrentSnapshot(pool.ResolveName(kModelName))->version();
  std::printf(
      "[retrain-loop] gates: %d promoted / %d rolled back over %d rounds "
      "in %.1f s; stable now v%lld; sabotage auto-rollback %s; drift "
      "evidence %lld sessions\n",
      driver.promoted(), driver.rolled_back(), driver.rounds(), total_seconds,
      static_cast<long long>(stable_version),
      flags.sabotage < 0 ? "SKIPPED" : (sabotage_rolled_back ? "PASS" : "MISS"),
      static_cast<long long>(engine.Stats().drift_sessions));

  if (!flags.json.empty()) {
    WriteJson(flags.json, flags, driver, total_seconds, sabotage_rolled_back);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
