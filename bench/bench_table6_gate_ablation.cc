// Reproduces Table VI: ablation of the gate-network modules on the full
// test set — Base (sum pooling of behaviours), Base+GU (per-item gate
// units), Base+AU (attention pooling), and Base+GU+AU (the full AW-MoE
// gate, Eq. 8). Expected shape (paper): Base < Base+GU ~ Base+AU <
// Base+GU+AU, with each module contributing a small but real gain.

#include <cstdio>

#include "common/experiment_lib.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

int Run(int argc, char** argv) {
  BenchFlags flags;
  Status status = flags.Parse(
      argc, argv, "Table VI: gate-network ablation (GU / AU modules)");
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("[table6] generating JD dataset...\n");
  JdDataset data = JdSyntheticGenerator(flags.MakeJdConfig()).Generate();
  Standardizer standardizer;
  standardizer.Fit(data.train);

  struct Variant {
    GateMode mode;
    const char* label;
  };
  const Variant variants[] = {
      {GateMode::kBaseSumPool, "Base (sum pooling of behaviors)"},
      {GateMode::kBaseGateUnit, "Base+GU"},
      {GateMode::kBaseActivationUnit, "Base+AU"},
      {GateMode::kFull, "Base+GU+AU (AW-MoE)"},
  };

  TablePrinter table(
      "Table VI — gate-network ablation on the full test set");
  table.SetHeader({"Model", "AUC", "AUC@10", "NDCG", "NDCG@10"});
  for (const Variant& variant : variants) {
    std::printf("[table6] training %s...\n", variant.label);
    AwMoeConfig config;
    config.dims = ModelDims::Default();
    config.gate.mode = variant.mode;
    config.name = variant.label;
    Rng rng(static_cast<uint64_t>(flags.seed) + 10);
    AwMoeRanker model(data.meta, config, &rng);
    Trainer trainer(&model, flags.MakeTrainerConfig());
    trainer.Train(data.train, data.meta, &standardizer);
    std::vector<double> scores =
        Predict(&model, data.full_test, data.meta, &standardizer);
    RankingEvaluation eval = EvaluateRanking(data.full_test, scores);
    std::printf("[table6]   %s: AUC %.4f\n", variant.label, eval.auc);
    table.AddRow({variant.label, FormatDouble(eval.auc, 4),
                  FormatDouble(eval.auc_at_k, 4), FormatDouble(eval.ndcg, 4),
                  FormatDouble(eval.ndcg_at_k, 4)});
  }
  table.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
