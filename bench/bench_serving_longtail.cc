// Long-tail serving bench (ROADMAP §Other): the paper's §IV-G/H tables
// show AW-MoE's accuracy edge concentrating on long-tail traffic, but
// none of the table benches ever pushed those splits through the
// serving path. This bench replays the generated long-tail splits
// through the ServingEngine — the same ModelPool/replica/snapshot stack
// production traffic uses — and reports latency percentiles and QPS by
// segment:
//   full      the head-heavy full test split,
//   longtail1 users with very few behaviours (cold history),
//   longtail2 elderly users (the paper's second long-tail cut).
// Each segment is served twice: synchronous request-at-a-time Rank()
// (honest per-session latency, exact replay) and the async Submit()
// front under a small closed-loop client fleet whose traffic is drawn
// from the shared Zipf popularity model (bench/common/load_model.h) —
// hot sessions repeat, exercising the cross-request gate cache, while
// the tail still shows up — so the p95/p99 gap between segments is
// visible in both serving modes.

#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "common/experiment_lib.h"
#include "common/load_model.h"
#include "serving/model_pool.h"
#include "serving/serving_engine.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

struct SegmentResult {
  std::string segment;
  std::string mode;
  int64_t sessions = 0;
  double mean_items = 0.0;
  ServingStatsSnapshot stats;
};

/// Request-at-a-time replay: per-session latency with no batching help.
SegmentResult ServeSync(ServingEngine* engine, const std::string& segment,
                        const std::vector<Example>& split) {
  engine->ResetStats();
  auto sessions = GroupBySession(split);
  auto requests = MakeSessionRequests(sessions);
  for (const RankRequest& request : requests) {
    engine->Rank(request);
  }
  SegmentResult result;
  result.segment = segment;
  result.mode = "sync";
  result.sessions = static_cast<int64_t>(requests.size());
  result.stats = engine->Stats();
  result.mean_items =
      result.sessions == 0
          ? 0.0
          : static_cast<double>(result.stats.items) /
                static_cast<double>(result.sessions);
  return result;
}

/// Closed-loop async replay: `kClients` threads stream a FIXED-SEED
/// Zipf-weighted draw of the segment's sessions through Submit(), so
/// the queue coalesces concurrent sessions, replica lanes overlap
/// flushes, and repeat draws of hot sessions hit the gate cache. Draw
/// count equals the segment's session count, so request volume matches
/// the sync replay exactly.
SegmentResult ServeAsync(ServingEngine* engine, const std::string& segment,
                         const std::vector<Example>& split, uint64_t seed) {
  engine->ResetStats();
  auto sessions = GroupBySession(split);
  auto requests = MakeSessionRequests(sessions);
  constexpr size_t kClients = 4;
  constexpr double kZipfExponent = 1.1;  // Head-heavy, tail still present.
  ZipfSampler zipf(static_cast<int64_t>(requests.size()), kZipfExponent,
                   seed);
  std::vector<size_t> draws(requests.size());
  for (size_t& draw : draws) draw = static_cast<size_t>(zipf.Next());
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([c, engine, &requests, &draws] {
      for (size_t s = c; s < draws.size(); s += kClients) {
        engine->Submit(requests[draws[s]]).get();
      }
    });
  }
  for (std::thread& client : clients) client.join();
  SegmentResult result;
  result.segment = segment;
  result.mode = "async";
  result.sessions = static_cast<int64_t>(requests.size());
  result.stats = engine->Stats();
  result.mean_items =
      result.sessions == 0
          ? 0.0
          : static_cast<double>(result.stats.items) /
                static_cast<double>(result.sessions);
  return result;
}

int Run(int argc, char** argv) {
  BenchFlags flags;
  flags.train_sessions = 4000;  // Serving latency needs shape, not SOTA.
  flags.epochs = 2;
  Status status = flags.Parse(
      argc, argv,
      "Long-tail serving: p50/p95/p99 by traffic segment through the "
      "replicated ServingEngine");
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("[longtail-serving] generating JD dataset...\n");
  JdDataset data = JdSyntheticGenerator(flags.MakeJdConfig()).Generate();
  Standardizer standardizer;
  standardizer.Fit(data.train);

  std::printf("[longtail-serving] training AW-MoE & CL...\n");
  TrainedModel trained = TrainOne(
      ModelKind::kAwMoeCl, data.train, data.meta, &standardizer,
      ModelDims::Default(), flags.MakeTrainerConfig(),
      static_cast<uint64_t>(flags.seed) + 10);

  ModelPoolOptions pool_options;
  pool_options.replicas = 2;
  ModelPool pool(data.meta, &standardizer, pool_options);
  pool.RegisterOwned("aw-moe-cl", std::move(trained.model));
  ServingEngineOptions options;
  options.max_queue_delay_ms = 0.5;
  ServingEngine engine(&pool, options);

  struct Segment {
    const char* name;
    const std::vector<Example>* split;
  };
  const Segment segments[] = {
      {"full", &data.full_test},
      {"longtail1", &data.longtail1_test},
      {"longtail2", &data.longtail2_test},
  };

  std::vector<SegmentResult> results;
  for (const Segment& segment : segments) {
    if (segment.split->empty()) {
      std::printf("[longtail-serving] segment %s empty; skipped\n",
                  segment.name);
      continue;
    }
    std::printf("[longtail-serving] replaying %s...\n", segment.name);
    results.push_back(ServeSync(&engine, segment.name, *segment.split));
    results.push_back(ServeAsync(&engine, segment.name, *segment.split,
                                 static_cast<uint64_t>(flags.seed)));
  }
  engine.Stop();

  TablePrinter table("Long-tail serving latency by segment (AW-MoE & CL)");
  table.SetHeader({"Segment", "Mode", "Sessions", "Items/req", "p50 ms",
                   "p95 ms", "p99 ms", "QPS", "Occupancy", "GateHit%"});
  for (const SegmentResult& r : results) {
    const int64_t lookups = r.stats.gate_cache_hits + r.stats.gate_cache_misses;
    const double hit_rate =
        lookups == 0 ? 0.0
                     : 100.0 * static_cast<double>(r.stats.gate_cache_hits) /
                           static_cast<double>(lookups);
    table.AddRow({r.segment, r.mode, std::to_string(r.sessions),
                  FormatDouble(r.mean_items, 1),
                  FormatDouble(r.stats.p50_ms, 3),
                  FormatDouble(r.stats.p95_ms, 3),
                  FormatDouble(r.stats.p99_ms, 3),
                  FormatDouble(r.stats.qps, 0),
                  FormatDouble(r.stats.mean_batch_requests, 2),
                  FormatDouble(hit_rate, 1)});
  }
  table.Print();

  // Long-tail sessions carry shorter behaviour histories, so their
  // per-session cost should be at or below the full split's; what the
  // table makes visible is whether the tail percentiles stay bounded on
  // every segment (the paper's ~20 ms production budget).
  std::printf(
      "[longtail-serving] gate sharing %s, %d replica lane(s); last "
      "segment: %lld leases, max active lanes %lld\n",
      engine.GateSharingActive() ? "ON" : "OFF", pool.replicas(),
      static_cast<long long>(engine.stats().snapshot_leases()),
      static_cast<long long>(engine.stats().max_active_lanes()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
