// Reproduces Table I: statistics of the (synthetic) in-house JD dataset —
// sessions, users, queries, examples, pos:neg ratio and examples per
// session for the training set, the full test set and both long-tail test
// sets. Absolute counts are scaled down from the paper's billion-scale log
// (see DESIGN.md); the *relationships* (train balanced 1:1, test ~1:10,
// long-tail sets smaller with shorter histories) are the reproduced shape.

#include <cstdio>

#include "common/experiment_lib.h"
#include "data/jd_synthetic.h"
#include "data/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

int Run(int argc, char** argv) {
  BenchFlags flags;
  Status status =
      flags.Parse(argc, argv, "Table I: statistics of the JD dataset");
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  JdDataset data = JdSyntheticGenerator(flags.MakeJdConfig()).Generate();

  struct NamedSplit {
    const char* name;
    const std::vector<Example>* split;
  };
  const NamedSplit splits[] = {
      {"Training set", &data.train},
      {"Full test set", &data.full_test},
      {"Long-tail test set 1", &data.longtail1_test},
      {"Long-tail test set 2", &data.longtail2_test},
  };

  TablePrinter table("Table I — statistics of the synthetic JD dataset");
  table.SetHeader({"Statistics", "Training set", "Full test set",
                   "Long-tail test set 1", "Long-tail test set 2"});
  std::vector<SplitStats> stats;
  for (const NamedSplit& named : splits) {
    stats.push_back(ComputeSplitStats(*named.split));
  }
  auto row = [&](const char* label, auto getter) {
    std::vector<std::string> cells = {label};
    for (const SplitStats& s : stats) cells.push_back(getter(s));
    table.AddRow(cells);
  };
  row("# Sessions", [](const SplitStats& s) {
    return std::to_string(s.num_sessions);
  });
  row("# Users",
      [](const SplitStats& s) { return std::to_string(s.num_users); });
  row("# Queries",
      [](const SplitStats& s) { return std::to_string(s.num_queries); });
  row("# Examples",
      [](const SplitStats& s) { return std::to_string(s.num_examples); });
  row("Pos : Neg", [](const SplitStats& s) {
    return "1 : " + FormatDouble(s.neg_per_pos, 1);
  });
  row("# Examples / # Sessions", [](const SplitStats& s) {
    return FormatDouble(s.examples_per_session, 1);
  });
  row("Mean history length", [](const SplitStats& s) {
    return FormatDouble(s.mean_history_len, 1);
  });
  table.Print();

  // Invariant checks mirrored from the paper's construction.
  bool ok = true;
  if (stats[0].num_positives != stats[0].num_negatives) {
    std::printf("WARNING: training set is not 1:1 balanced\n");
    ok = false;
  }
  if (stats[1].neg_per_pos < 4.0) {
    std::printf("WARNING: full test set not impression-complete\n");
    ok = false;
  }
  if (stats[2].mean_history_len >= stats[1].mean_history_len) {
    std::printf("WARNING: long-tail set 1 histories not shorter\n");
    ok = false;
  }
  std::printf("[table1] shape checks %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
