// Reproduces Table III: the five models evaluated on long-tail test set 1
// (users with at most 3 historical behaviours). Expected shape (paper):
// baseline models bunch together (weak user representations from sparse
// histories); AW-MoE & CL shows the largest gain, bigger than its gain on
// the full test set (Table II), and significant vs Category-MoE.

#include <cstdio>

#include "common/experiment_lib.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

int Run(int argc, char** argv) {
  BenchFlags flags;
  Status status = flags.Parse(
      argc, argv, "Table III: model comparison on long-tail test set 1");
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  JdComparison comparison = TrainAllOnJd(flags, "table3");
  std::vector<ModelEvaluation> rows;
  for (const TrainedModel& trained : comparison.models) {
    ModelEvaluation row =
        EvaluateModel(trained, comparison.data.longtail1_test,
                      comparison.data.meta, &comparison.standardizer);
    std::printf("[table3]   %s: AUC %.4f\n", row.name.c_str(), row.eval.auc);
    rows.push_back(std::move(row));
  }
  PrintPaperTable(
      "Table III — long-tail test set 1 (few historical behaviours)", rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
