// Reproduces the §IV-I online A/B test: AW-MoE (treatment) vs the previous
// production model Category-MoE (control), replaying the same user
// sessions through both arms with a position-biased cascade user model.
// The paper reports +0.78% UCVR (p=2.20E-5) and +0.35% UCTR (p=2.97E-5);
// the expected shape here is a positive, significant lift on both proxies.

#include <cstdio>
#include <future>
#include <vector>

#include "common/experiment_lib.h"
#include "serving/ab_test.h"
#include "serving/model_pool.h"
#include "serving/serving_engine.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

int Run(int argc, char** argv) {
  BenchFlags flags;
  flags.test_sessions = 2500;  // Traffic volume for the experiment.
  Status status = flags.Parse(
      argc, argv, "Online A/B test: AW-MoE vs Category-MoE (simulated)");
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("[abtest] generating JD dataset...\n");
  JdDataset data = JdSyntheticGenerator(flags.MakeJdConfig()).Generate();
  Standardizer standardizer;
  standardizer.Fit(data.train);

  std::printf("[abtest] training control (Category-MoE)...\n");
  TrainedModel control = TrainOne(
      ModelKind::kCategoryMoe, data.train, data.meta, &standardizer,
      ModelDims::Default(), flags.MakeTrainerConfig(),
      static_cast<uint64_t>(flags.seed) + 10);
  std::printf("[abtest] training treatment (AW-MoE & CL)...\n");
  TrainedModel treatment = TrainOne(
      ModelKind::kAwMoeCl, data.train, data.meta, &standardizer,
      ModelDims::Default(), flags.MakeTrainerConfig(),
      static_cast<uint64_t>(flags.seed) + 10);

  // Both arms live in one registry behind one engine: identical
  // collation and §III-F gate handling, so outcome differences come only
  // from the models.
  ModelPool registry(data.meta, &standardizer);
  registry.Register("category-moe", control.model.get());
  registry.Register("aw-moe-cl", treatment.model.get());
  ServingEngine engine(&registry);

  auto sessions = GroupBySession(data.full_test);
  std::printf("[abtest] replaying %zu sessions through both arms...\n",
              sessions.size());
  AbTestResult result =
      RunAbTest(&engine, "category-moe", "aw-moe-cl", sessions,
                static_cast<uint64_t>(flags.seed) + 99);

  TablePrinter table("Online A/B test (simulated traffic)");
  table.SetHeader({"Metric", "Category-MoE", "AW-MoE & CL", "Lift",
                   "p-value"});
  table.AddRow({"UCTR", FormatDouble(result.control.uctr, 4),
                FormatDouble(result.treatment.uctr, 4),
                FormatDouble(result.uctr_lift_percent, 2) + "%",
                FormatPValue(result.uctr_p_value)});
  table.AddRow({"UCVR", FormatDouble(result.control.ucvr, 4),
                FormatDouble(result.treatment.ucvr, 4),
                FormatDouble(result.ucvr_lift_percent, 2) + "%",
                FormatPValue(result.ucvr_p_value)});
  table.Print();

  // Each arm replays the whole corpus as one RankBatch, so per-request
  // latency there reflects queue position, not serving latency —
  // throughput is the meaningful number for this bench (see
  // bench_serving_gate_sharing for per-session latency).
  ServingStatsSnapshot stats = engine.Stats();
  std::printf(
      "[abtest] replay throughput over both arms: %lld requests at "
      "%.0f sessions/s (treatment gate sharing %s)\n",
      static_cast<long long>(stats.requests), stats.qps,
      engine.GateSharingActive("aw-moe-cl") ? "ON" : "OFF");

  // Open-loop async replay of the same traffic: every session of both
  // arms is Submit()ted up front and the engine's time-bounded queue
  // coalesces them into shared forward passes per arm. The occupancy
  // counter shows how many requests each forward amortised over.
  engine.ResetStats();
  std::printf("[abtest] async replay (Submit -> future, both arms)...\n");
  std::vector<std::future<RankResponse>> futures;
  futures.reserve(2 * sessions.size());
  for (const char* arm : {"category-moe", "aw-moe-cl"}) {
    for (const auto& session : sessions) {
      RankRequest request;
      request.session_id = session[0]->session_id;
      request.model = arm;
      request.items = session;
      futures.push_back(engine.Submit(std::move(request)));
    }
  }
  for (auto& future : futures) future.get();
  ServingStatsSnapshot async_stats = engine.Stats();
  std::printf(
      "[abtest] async replay: %lld requests at %.0f sessions/s, "
      "batch occupancy %.1f req/forward (max %lld), queue delay mean "
      "%.2f ms / max %.2f ms\n",
      static_cast<long long>(async_stats.requests), async_stats.qps,
      async_stats.mean_batch_requests,
      static_cast<long long>(async_stats.max_batch_requests),
      async_stats.queue_mean_ms, async_stats.queue_max_ms);
  engine.Stop();

  bool ok = result.ucvr_lift_percent > 0.0;
  std::printf("[abtest] shape checks %s (positive UCVR lift expected)\n",
              ok ? "PASS" : "FAIL");
  return 0;  // Lift sign is stochastic at small scale; report, don't gate.
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
