// Reproduces Table II: results of the five ranking models on the full test
// set of the (synthetic) JD dataset, with paired-t-test p-values — DIN and
// Category-MoE vs DNN (*), the AW-MoE variants vs Category-MoE (the
// papers double-dagger).
//
// Expected shape (paper): DNN < DIN < Category-MoE < AW-MoE < AW-MoE & CL
// on all four metrics, with significant p-values.

#include <cstdio>

#include "common/experiment_lib.h"
#include "data/jd_synthetic.h"

namespace {

using namespace awmoe;        // Bench binary; library code never does this.
using namespace awmoe::bench;

int Run(int argc, char** argv) {
  BenchFlags flags;
  Status status = flags.Parse(
      argc, argv, "Table II: model comparison on the JD full test set");
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("[table2] generating JD dataset (seed %lld)...\n",
              static_cast<long long>(flags.seed));
  JdDataset data = JdSyntheticGenerator(flags.MakeJdConfig()).Generate();
  std::printf("[table2] train %zu examples, full test %zu examples\n",
              data.train.size(), data.full_test.size());

  Standardizer standardizer;
  standardizer.Fit(data.train);

  std::vector<ModelEvaluation> rows;
  for (ModelKind kind : AllModelKinds()) {
    std::printf("[table2] training %s...\n", ModelKindName(kind).c_str());
    TrainedModel trained = TrainOne(
        kind, data.train, data.meta, &standardizer, ModelDims::Default(),
        flags.MakeTrainerConfig(), static_cast<uint64_t>(flags.seed) + 10);
    ModelEvaluation row =
        EvaluateModel(trained, data.full_test, data.meta, &standardizer);
    std::printf("[table2]   %s: AUC %.4f (train %.1fs)\n", row.name.c_str(),
                row.eval.auc, row.train_seconds);
    rows.push_back(std::move(row));
  }

  PrintPaperTable(
      "Table II — full test set of the synthetic JD dataset", rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
