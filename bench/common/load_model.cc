#include "common/load_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/hash.h"

namespace awmoe {
namespace bench {

ZipfSampler::ZipfSampler(int64_t n, double exponent, uint64_t seed)
    : exponent_(exponent), rng_(seed) {
  AWMOE_CHECK(n > 0) << "Zipf over " << n << " ranks";
  AWMOE_CHECK(exponent >= 0.0) << "Zipf exponent " << exponent;
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -exponent);
    cdf_[static_cast<size_t>(k)] = total;
  }
  // Renormalise so the distribution sums to exactly 1. Division by the
  // shared positive total keeps the prefix sums monotone, but rounding
  // can push an interior entry a ULP above 1.0 — clamp so forcing
  // back() to 1.0 below cannot create a non-monotone tail.
  for (double& c : cdf_) c = std::min(c / total, 1.0);
  cdf_.back() = 1.0;  // Guard against accumulated rounding.
}

int64_t ZipfSampler::Next() {
  const double u = rng_.Uniform();
  // First rank whose CDF covers u; Uniform() < 1 and cdf_.back() == 1,
  // so the search should never fall off the end — but an OOB rank
  // corrupts whatever keys off it, so clamp defensively anyway.
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n() - 1;
  return static_cast<int64_t>(it - cdf_.begin());
}

double ZipfSampler::MassOfTop(int64_t k) const {
  if (k <= 0) return 0.0;
  if (k >= n()) return 1.0;
  return cdf_[static_cast<size_t>(k - 1)];
}

double ArrivalRateAt(const ArrivalTraceConfig& config, double t) {
  constexpr double kTwoPi = 6.283185307179586;
  double rate =
      config.base_rate_qps *
      (1.0 + config.diurnal_amplitude *
                 std::sin(kTwoPi * t / config.diurnal_period_s));
  if (config.burst_multiplier > 1.0 && config.burst_interval_s > 0.0) {
    // Bursts fire at t = interval, 2*interval, ... (t=0 stays clean so
    // every trace has an unbursted baseline prefix).
    const double phase = std::fmod(t, config.burst_interval_s);
    if (t >= config.burst_interval_s && phase < config.burst_duration_s) {
      rate *= config.burst_multiplier;
    }
  }
  return std::max(rate, 0.0);
}

std::vector<double> GenerateArrivals(const ArrivalTraceConfig& config) {
  AWMOE_CHECK(config.duration_s > 0.0) << "duration " << config.duration_s;
  AWMOE_CHECK(config.diurnal_period_s > 0.0)
      << "diurnal period " << config.diurnal_period_s;
  AWMOE_CHECK(config.diurnal_amplitude >= 0.0 &&
              config.diurnal_amplitude < 1.0)
      << "diurnal amplitude " << config.diurnal_amplitude;
  std::vector<double> arrivals;
  // Lewis-Shedler thinning: draw a homogeneous Poisson stream at the
  // trace's peak rate, keep each point with probability rate(t)/peak.
  const double peak = config.base_rate_qps * (1.0 + config.diurnal_amplitude) *
                      std::max(1.0, config.burst_multiplier);
  if (peak <= 0.0) return arrivals;
  Rng rng(config.seed);
  double t = 0.0;
  for (;;) {
    t += rng.Exponential(peak);
    if (t >= config.duration_s) break;
    if (rng.Uniform() * peak <= ArrivalRateAt(config, t)) {
      arrivals.push_back(t);
    }
  }
  return arrivals;  // Ascending by construction.
}

RepeatMixSampler::RepeatMixSampler(int64_t users, double zipf_exponent,
                                   double repeat_rate, uint64_t seed)
    : zipf_(users, zipf_exponent, seed),
      repeat_rate_(repeat_rate),
      rng_(seed + 0x5eed) {
  AWMOE_CHECK(repeat_rate >= 0.0 && repeat_rate <= 1.0)
      << "repeat rate " << repeat_rate;
}

RequestDraw RepeatMixSampler::Next() {
  RequestDraw draw;
  draw.rank = zipf_.Next();
  auto it = last_variant_.find(draw.rank);
  if (it != last_variant_.end() && rng_.Uniform() < repeat_rate_) {
    draw.variant = it->second;
    draw.repeat = true;
    return draw;
  }
  // Fresh page: advance the user's variant counter (first visit -> 0).
  draw.variant = it == last_variant_.end() ? 0 : it->second + 1;
  last_variant_[draw.rank] = draw.variant;
  return draw;
}

int64_t SyntheticSessionId(int64_t rank) {
  AWMOE_CHECK(rank >= 0) << "rank " << rank;
  // Full-avalanche mix, then drop the sign bit: rank k always maps to
  // the same id, and consecutive ranks land on unrelated ring points.
  return static_cast<int64_t>(Mix64(static_cast<uint64_t>(rank)) >> 1);
}

}  // namespace bench
}  // namespace awmoe
