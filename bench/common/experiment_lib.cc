#include "common/experiment_lib.h"

#include <cstdio>

#include "models/category_moe.h"
#include "models/dnn_ranker.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace awmoe {
namespace bench {

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kDnn:
      return "DNN";
    case ModelKind::kDin:
      return "DIN";
    case ModelKind::kCategoryMoe:
      return "Category-MoE";
    case ModelKind::kAwMoe:
      return "AW-MoE";
    case ModelKind::kAwMoeCl:
      return "AW-MoE & CL";
  }
  return "?";
}

std::vector<ModelKind> AllModelKinds() {
  return {ModelKind::kDnn, ModelKind::kDin, ModelKind::kCategoryMoe,
          ModelKind::kAwMoe, ModelKind::kAwMoeCl};
}

std::unique_ptr<Ranker> MakeModel(ModelKind kind, const DatasetMeta& meta,
                                  const ModelDims& dims, uint64_t seed) {
  Rng rng(seed);
  switch (kind) {
    case ModelKind::kDnn:
      return std::make_unique<DnnRanker>(meta, dims, &rng);
    case ModelKind::kDin:
      return std::make_unique<DinRanker>(meta, dims, &rng);
    case ModelKind::kCategoryMoe:
      return std::make_unique<CategoryMoeRanker>(meta, dims, &rng);
    case ModelKind::kAwMoe:
    case ModelKind::kAwMoeCl: {
      AwMoeConfig config;
      config.dims = dims;
      if (kind == ModelKind::kAwMoeCl) config.name = "AW-MoE & CL";
      return std::make_unique<AwMoeRanker>(meta, config, &rng);
    }
  }
  return nullptr;
}

TrainedModel TrainOne(ModelKind kind, const std::vector<Example>& train,
                      const DatasetMeta& meta,
                      const Standardizer* standardizer,
                      const ModelDims& dims, TrainerConfig trainer_config,
                      uint64_t seed) {
  TrainedModel result;
  result.kind = kind;
  result.model = MakeModel(kind, meta, dims, seed);
  trainer_config.contrastive = (kind == ModelKind::kAwMoeCl);
  Trainer trainer(result.model.get(), trainer_config);
  Stopwatch watch;
  result.history = trainer.Train(train, meta, standardizer);
  result.train_seconds = watch.ElapsedSeconds();
  return result;
}

ModelEvaluation EvaluateModel(const TrainedModel& trained,
                              const std::vector<Example>& split,
                              const DatasetMeta& meta,
                              const Standardizer* standardizer) {
  ModelEvaluation row;
  row.kind = trained.kind;
  row.name = trained.model->name();
  row.train_seconds = trained.train_seconds;
  std::vector<double> scores =
      Predict(trained.model.get(), split, meta, standardizer);
  row.eval = EvaluateRanking(split, scores);
  return row;
}

void PrintPaperTable(const std::string& title,
                     const std::vector<ModelEvaluation>& rows) {
  const ModelEvaluation* dnn = nullptr;
  const ModelEvaluation* category_moe = nullptr;
  for (const auto& row : rows) {
    if (row.kind == ModelKind::kDnn) dnn = &row;
    if (row.kind == ModelKind::kCategoryMoe) category_moe = &row;
  }

  TablePrinter table(title);
  table.SetHeader({"Model", "AUC", "AUC@10", "NDCG", "NDCG@10",
                   "p-AUC", "p-AUC@10", "p-NDCG", "p-NDCG@10"});
  for (const auto& row : rows) {
    const ModelEvaluation* reference = nullptr;
    const char* marker = "";
    if (row.kind == ModelKind::kDin ||
        row.kind == ModelKind::kCategoryMoe) {
      reference = dnn;
      marker = "*";  // vs DNN.
    } else if (row.kind == ModelKind::kAwMoe ||
               row.kind == ModelKind::kAwMoeCl) {
      reference = category_moe;
      marker = "\xE2\x80\xA1";  // double dagger: vs Category-MoE.
    }
    auto pvalue = [&](auto ids_member, auto values_member) -> std::string {
      if (reference == nullptr || reference == &row) return "-";
      double p = SessionPValue(row.eval.*ids_member, row.eval.*values_member,
                               reference->eval.*ids_member,
                               reference->eval.*values_member);
      return FormatPValue(p) + marker;
    };
    table.AddRow(
        {row.name, FormatDouble(row.eval.auc, 4),
         FormatDouble(row.eval.auc_at_k, 4), FormatDouble(row.eval.ndcg, 4),
         FormatDouble(row.eval.ndcg_at_k, 4),
         pvalue(&RankingEvaluation::auc_session_ids,
                &RankingEvaluation::session_auc),
         pvalue(&RankingEvaluation::auc_session_ids,
                &RankingEvaluation::session_auc_at_k),
         pvalue(&RankingEvaluation::ndcg_session_ids,
                &RankingEvaluation::session_ndcg),
         pvalue(&RankingEvaluation::ndcg_session_ids,
                &RankingEvaluation::session_ndcg_at_k)});
  }
  table.Print();
}

Status BenchFlags::Parse(int argc, char** argv,
                         const std::string& description) {
  FlagSet flags(description);
  flags.AddInt("train_sessions", &train_sessions, "training sessions");
  flags.AddInt("test_sessions", &test_sessions, "full-test sessions");
  flags.AddInt("longtail1_sessions", &longtail1_sessions,
               "long-tail test set 1 sessions");
  flags.AddInt("longtail2_sessions", &longtail2_sessions,
               "long-tail test set 2 sessions");
  flags.AddInt("epochs", &epochs, "training epochs");
  flags.AddInt("batch_size", &batch_size, "minibatch size");
  flags.AddDouble("lr", &lr, "AdamW learning rate");
  flags.AddDouble("weight_decay", &weight_decay, "AdamW weight decay");
  flags.AddInt("seed", &seed, "global seed");
  flags.AddBool("quick", &quick, "shrink the corpus for a smoke run");
  AWMOE_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (quick) {
    train_sessions = std::min<int64_t>(train_sessions, 1500);
    test_sessions = std::min<int64_t>(test_sessions, 200);
    longtail1_sessions = std::min<int64_t>(longtail1_sessions, 100);
    longtail2_sessions = std::min<int64_t>(longtail2_sessions, 100);
    epochs = std::min<int64_t>(epochs, 1);
  }
  return Status::OK();
}

JdConfig BenchFlags::MakeJdConfig() const {
  JdConfig jd;
  jd.train_sessions = train_sessions;
  jd.test_sessions = test_sessions;
  jd.longtail1_sessions = longtail1_sessions;
  jd.longtail2_sessions = longtail2_sessions;
  jd.seed = static_cast<uint64_t>(seed);
  return jd;
}

TrainerConfig BenchFlags::MakeTrainerConfig() const {
  TrainerConfig tc;
  tc.epochs = epochs;
  tc.batch_size = batch_size;
  tc.lr = static_cast<float>(lr);
  tc.weight_decay = static_cast<float>(weight_decay);
  tc.seed = static_cast<uint64_t>(seed) + 1;
  tc.verbose = false;
  return tc;
}

JdComparison TrainAllOnJd(const BenchFlags& flags, const char* tag) {
  JdComparison comparison;
  std::printf("[%s] generating JD dataset (seed %lld)...\n", tag,
              static_cast<long long>(flags.seed));
  comparison.data = JdSyntheticGenerator(flags.MakeJdConfig()).Generate();
  std::printf("[%s] train %zu examples\n", tag, comparison.data.train.size());
  comparison.standardizer.Fit(comparison.data.train);
  for (ModelKind kind : AllModelKinds()) {
    std::printf("[%s] training %s...\n", tag, ModelKindName(kind).c_str());
    comparison.models.push_back(TrainOne(
        kind, comparison.data.train, comparison.data.meta,
        &comparison.standardizer, ModelDims::Default(),
        flags.MakeTrainerConfig(), static_cast<uint64_t>(flags.seed) + 10));
  }
  return comparison;
}

}  // namespace bench
}  // namespace awmoe
