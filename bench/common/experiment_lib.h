#ifndef AWMOE_BENCH_COMMON_EXPERIMENT_LIB_H_
#define AWMOE_BENCH_COMMON_EXPERIMENT_LIB_H_

#include <memory>
#include <string>
#include <vector>

#include "core/aw_moe.h"
#include "core/trainer.h"
#include "data/batcher.h"
#include "data/example.h"
#include "data/jd_synthetic.h"
#include "eval/metrics.h"
#include "models/model_dims.h"
#include "models/ranker.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace awmoe {
namespace bench {

/// The five compared algorithms of §IV-C.
enum class ModelKind {
  kDnn,
  kDin,
  kCategoryMoe,
  kAwMoe,
  kAwMoeCl,
};

/// Display name matching the paper's tables.
std::string ModelKindName(ModelKind kind);

/// All five kinds in paper order.
std::vector<ModelKind> AllModelKinds();

/// Builds an untrained model of the given kind.
std::unique_ptr<Ranker> MakeModel(ModelKind kind, const DatasetMeta& meta,
                                  const ModelDims& dims, uint64_t seed);

/// A model trained on one corpus.
struct TrainedModel {
  ModelKind kind;
  std::unique_ptr<Ranker> model;
  double train_seconds = 0.0;
  std::vector<EpochStats> history;
};

/// Trains one model (enables the contrastive objective for kAwMoeCl).
TrainedModel TrainOne(ModelKind kind, const std::vector<Example>& train,
                      const DatasetMeta& meta,
                      const Standardizer* standardizer,
                      const ModelDims& dims, TrainerConfig trainer_config,
                      uint64_t seed);

/// Per-model evaluation on one test split.
struct ModelEvaluation {
  ModelKind kind;
  std::string name;
  RankingEvaluation eval;
  double train_seconds = 0.0;
};

/// Evaluates a trained model on a split with session grouping.
ModelEvaluation EvaluateModel(const TrainedModel& trained,
                              const std::vector<Example>& split,
                              const DatasetMeta& meta,
                              const Standardizer* standardizer);

/// Renders a paper-style results table (Tables II-IV): four metrics plus
/// p-values. DIN / Category-MoE report p vs DNN ("*"); the AW-MoE variants
/// report p vs Category-MoE ("‡"), matching the papers footnotes.
void PrintPaperTable(const std::string& title,
                     const std::vector<ModelEvaluation>& rows);

/// Shared CLI for the experiment benches. Defaults reproduce the paper's
/// shapes in ~1-2 minutes per bench on one CPU core; --quick shrinks the
/// corpus for smoke runs.
struct BenchFlags {
  int64_t train_sessions = 12000;
  int64_t test_sessions = 1000;
  int64_t longtail1_sessions = 500;
  int64_t longtail2_sessions = 700;
  int64_t epochs = 3;
  int64_t batch_size = 256;
  double lr = 2e-3;
  double weight_decay = 3e-4;
  int64_t seed = 20230608;
  bool quick = false;

  /// Registers the shared flags and parses argv. Returns NotFound for
  /// --help (caller should exit 0).
  Status Parse(int argc, char** argv, const std::string& description);

  /// JdConfig with this CLI's sizes applied.
  JdConfig MakeJdConfig() const;

  /// TrainerConfig with this CLI's optimisation settings applied.
  TrainerConfig MakeTrainerConfig() const;
};

/// Dataset plus the five trained models — the shared setup of the Table
/// II/III/IV benches (identical training, different evaluation splits).
struct JdComparison {
  JdDataset data;
  Standardizer standardizer;
  std::vector<TrainedModel> models;
};

/// Generates the JD corpus and trains all five models on it, logging
/// progress with the given tag.
JdComparison TrainAllOnJd(const BenchFlags& flags, const char* tag);

}  // namespace bench
}  // namespace awmoe

#endif  // AWMOE_BENCH_COMMON_EXPERIMENT_LIB_H_
