#ifndef AWMOE_BENCH_COMMON_LOAD_MODEL_H_
#define AWMOE_BENCH_COMMON_LOAD_MODEL_H_

// Synthetic traffic models shared by the serving benches: Zipf session
// popularity (a few hot sessions dominate, a long tail of one-off
// users — the regime both the §III-F gate cache and the fleet's
// consistent-hash placement care about) and open-loop arrival traces
// with diurnal rate swings plus load bursts. Everything is explicitly
// seeded and deterministic: the same config replays the same million
// users and the same arrival timeline, so bench runs and the fleet
// load harness (bench_fleet_load) are comparable across commits.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace awmoe {
namespace bench {

/// Zipf(s) sampler over ranks [0, n): P(rank k) proportional to
/// 1/(k+1)^s. Built once (O(n) CDF), sampled by binary search
/// (O(log n)); n scales to millions of users at 8 bytes each.
/// Deterministic for a fixed (n, exponent, seed).
class ZipfSampler {
 public:
  ZipfSampler(int64_t n, double exponent, uint64_t seed);

  /// Next popularity rank; 0 is the hottest.
  int64_t Next();

  /// Probability mass of the top `k` ranks — e.g. MassOfTop(n/100)
  /// says how concentrated the head is.
  double MassOfTop(int64_t k) const;

  int64_t n() const { return static_cast<int64_t>(cdf_.size()); }
  double exponent() const { return exponent_; }

 private:
  double exponent_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k); back() == 1.
  Rng rng_;
};

/// Open-loop arrival-trace shape: a sinusoidal diurnal swing around
/// `base_rate_qps` with periodic multiplicative bursts layered on top
/// (flash-sale style). Rates are instantaneous QPS.
struct ArrivalTraceConfig {
  double duration_s = 10.0;
  double base_rate_qps = 1000.0;

  /// Peak-to-mean swing of the diurnal sine in [0, 1): rate(t) swings
  /// between base*(1-a) and base*(1+a). 0 = flat.
  double diurnal_amplitude = 0.3;
  /// One full diurnal cycle, compressed to bench scale.
  double diurnal_period_s = 10.0;

  /// Rate multiplier during a burst (1 = no bursts).
  double burst_multiplier = 1.0;
  double burst_duration_s = 0.5;
  /// Burst start-to-start spacing; bursts repeat at t = interval,
  /// 2*interval, ... (never at t=0, so short traces have a clean
  /// baseline prefix). Ignored when <= 0 or multiplier <= 1.
  double burst_interval_s = 3.0;

  uint64_t seed = 1;
};

/// Instantaneous arrival rate (QPS) of the trace at time `t` seconds —
/// the deterministic intensity the thinning sampler draws against.
double ArrivalRateAt(const ArrivalTraceConfig& config, double t);

/// Arrival timestamps (seconds, ascending, in [0, duration_s)) of one
/// non-homogeneous Poisson draw of the trace, via Lewis-Shedler
/// thinning against the peak rate. Deterministic for a fixed config.
std::vector<double> GenerateArrivals(const ArrivalTraceConfig& config);

/// One traffic draw: a popularity rank plus the candidate-page variant
/// the user is looking at. `repeat` marks a verbatim replay of the
/// user's previous request — same session, same candidate page — which
/// is exactly what the engine's level-1 session score cache can answer
/// without a forward pass.
struct RequestDraw {
  int64_t rank = 0;
  int64_t variant = 0;
  bool repeat = false;
};

/// Zipf user draw with a controllable exact-repeat mix: with
/// probability `repeat_rate` a returning user replays their previous
/// (rank, variant) draw verbatim; otherwise they advance to a fresh
/// page variant (same user, new candidate set). A user's first draw is
/// always fresh. This is the knob the cache sweep in bench_fleet_load
/// turns to trade level-1 hit-rate against resident cache memory.
/// Deterministic for a fixed (users, exponent, repeat_rate, seed).
class RepeatMixSampler {
 public:
  RepeatMixSampler(int64_t users, double zipf_exponent, double repeat_rate,
                   uint64_t seed);

  RequestDraw Next();

  double repeat_rate() const { return repeat_rate_; }

 private:
  ZipfSampler zipf_;
  double repeat_rate_;
  Rng rng_;
  // rank -> page variant of the user's most recent draw. Only ranks
  // actually visited are stored, so million-user populations stay
  // cheap under Zipf concentration.
  std::unordered_map<int64_t, int64_t> last_variant_;
};

/// Stable synthetic session id of a popularity rank: a full-avalanche
/// mix of the rank, so neighbouring ranks (the Zipf head) scatter
/// across the fleet's hash ring instead of clustering, while every
/// draw of rank k maps to the SAME user across the whole bench.
int64_t SyntheticSessionId(int64_t rank);

}  // namespace bench
}  // namespace awmoe

#endif  // AWMOE_BENCH_COMMON_LOAD_MODEL_H_
