// Reproduces Figure 2: XGBoost-style feature importance for category-new
// vs category-old user groups. A GBDT (src/gbdt) is fitted separately on
// the impressions of each group and the gain importances of the six
// features named in the paper are compared. Expected shape: popularity-
// type features (Sales, Popularity, Price) dominate for category-new
// users; cross features (Item_click_cnt, Brand_click_time_diff,
// Shop_click_cnt) dominate for category-old users.

#include <cstdio>

#include "common/experiment_lib.h"
#include "gbdt/gbdt.h"
#include "util/csv_writer.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

std::vector<double> GroupImportance(const std::vector<Example>& examples,
                                    bool category_new) {
  std::vector<const Example*> group;
  for (const Example& ex : examples) {
    if (ex.is_category_new == category_new) group.push_back(&ex);
  }
  Matrix features(static_cast<int64_t>(group.size()), kNumNumericFeatures);
  std::vector<float> labels(group.size());
  for (size_t i = 0; i < group.size(); ++i) {
    for (int64_t c = 0; c < kNumNumericFeatures; ++c) {
      features(static_cast<int64_t>(i), c) =
          group[i]->numeric[static_cast<size_t>(c)];
    }
    labels[i] = group[i]->label;
  }
  GbdtConfig config;
  config.num_trees = 40;
  config.max_depth = 4;
  GbdtClassifier model(config);
  Status status = model.Fit(features, labels);
  AWMOE_CHECK(status.ok()) << status.ToString();
  return model.FeatureImportanceGain();
}

int Run(int argc, char** argv) {
  BenchFlags flags;
  Status status = flags.Parse(
      argc, argv, "Figure 2: feature importance per user group (GBDT)");
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("[fig2] generating JD dataset...\n");
  JdDataset data = JdSyntheticGenerator(flags.MakeJdConfig()).Generate();
  // Train GBDTs on the balanced training impressions.
  std::printf("[fig2] fitting GBDT per user group...\n");
  std::vector<double> new_importance =
      GroupImportance(data.train, /*category_new=*/true);
  std::vector<double> old_importance =
      GroupImportance(data.train, /*category_new=*/false);

  // The six features the paper plots, in its order.
  const int kPaperFeatures[] = {kFeatSales,        kFeatPopularity,
                                kFeatPrice,        kFeatItemClickCnt,
                                kFeatBrandClickTimeDiff, kFeatShopClickCnt};

  TablePrinter table(
      "Figure 2 — GBDT gain importance by user group (series data)");
  table.SetHeader({"Feature", "Category new user", "Category old user"});
  for (int feature : kPaperFeatures) {
    table.AddRow({NumericFeatureName(feature),
                  FormatDouble(new_importance[feature], 4),
                  FormatDouble(old_importance[feature], 4)});
  }
  table.Print();

  CsvWriter csv;
  if (csv.Open("fig2_feature_importance.csv").ok()) {
    csv.WriteRow({"feature", "category_new", "category_old"});
    for (int f = 0; f < kNumNumericFeatures; ++f) {
      csv.WriteRow({NumericFeatureName(f),
                    FormatDouble(new_importance[f], 6),
                    FormatDouble(old_importance[f], 6)});
    }
    csv.Close();
    std::printf("[fig2] full series written to fig2_feature_importance.csv\n");
  }

  // Shape checks: popularity block dominates for category-new users,
  // cross block for category-old users.
  double new_pop = new_importance[kFeatSales] +
                   new_importance[kFeatPopularity] +
                   new_importance[kFeatPrice];
  double new_cross = new_importance[kFeatItemClickCnt] +
                     new_importance[kFeatBrandClickTimeDiff] +
                     new_importance[kFeatShopClickCnt] +
                     new_importance[kFeatBrandClickCnt];
  double old_pop = old_importance[kFeatSales] +
                   old_importance[kFeatPopularity] +
                   old_importance[kFeatPrice];
  double old_cross = old_importance[kFeatItemClickCnt] +
                     old_importance[kFeatBrandClickTimeDiff] +
                     old_importance[kFeatShopClickCnt] +
                     old_importance[kFeatBrandClickCnt];
  std::printf(
      "[fig2] popularity-block importance: new %.3f vs old %.3f "
      "(expected: new > old)\n",
      new_pop, old_pop);
  std::printf(
      "[fig2] cross-block importance:      new %.3f vs old %.3f "
      "(expected: old > new)\n",
      new_cross, old_cross);
  bool ok = new_pop > old_pop && old_cross > new_cross;
  std::printf("[fig2] shape checks %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
