// Hot-path inference API comparison: the legacy Var-graph
// InferenceLogits vs the workspace-based ScoreInto, per ranker, swept
// over micro-batch sizes. Reported per case:
//   - p50_us / p99_us: manual per-iteration latency percentiles
//     (steady_clock around ONLY the model call);
//   - allocs_per_op: heap allocations per forward, measured by a global
//     operator-new interposer scoped to the model call — the ScoreInto
//     rows must read 0 after warm-up, the legacy rows show the per-op
//     graph/Matrix allocation load ScoreInto removes;
//   - items_per_second: scored candidates per second.
// Kernel-tier columns (PR 7): every ScoreInto case runs in a
// _Reference and a _Fast variant (label = dispatch-table name), and the
// raw BM_MatMulInto benches report a `gflops` rate counter per tier, so
// the smoke JSON records the fast tier's speedup honestly alongside the
// ISA context (`avx2_fma_available`, worker core count) on the machine
// that produced it.
// scripts/check.sh runs this in smoke mode and keeps the JSON in the CI
// bench-smoke artifact, so the ScoreInto-vs-legacy delta is recorded on
// every run.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/experiment_lib.h"
#include "models/category_moe.h"
#include "models/dnn_ranker.h"
#include "nn/inference.h"
#include "serving/request.h"

namespace {

// ---------------------------------------------------------------------
// Operator-new interposer: counts every allocation in the binary; each
// benchmark iteration reads the counter around the model call only.
// ---------------------------------------------------------------------

std::atomic<int64_t> g_alloc_count{0};

}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace awmoe;

struct InferenceFixture {
  InferenceFixture() {
    JdConfig jd;
    jd.train_sessions = 50;
    jd.test_sessions = 200;
    jd.longtail1_sessions = 5;
    jd.longtail2_sessions = 5;
    jd.seed = 7;
    data = JdSyntheticGenerator(jd).Generate();
    standardizer.Fit(data.full_test);
    {
      Rng rng(21);
      dnn = std::make_unique<DnnRanker>(data.meta, ModelDims::Default(),
                                        &rng);
    }
    {
      Rng rng(22);
      din = std::make_unique<DinRanker>(data.meta, ModelDims::Default(),
                                        &rng);
    }
    {
      Rng rng(23);
      cat_moe = std::make_unique<CategoryMoeRanker>(
          data.meta, ModelDims::Default(), &rng);
    }
    {
      Rng rng(24);
      AwMoeConfig config;
      aw_moe = std::make_unique<AwMoeRanker>(data.meta, config, &rng);
    }
  }

  static InferenceFixture& Get() {
    static InferenceFixture* fixture = new InferenceFixture();
    return *fixture;
  }

  /// A collated micro-batch of the first `size` test impressions.
  Batch MakeBatch(int64_t size) {
    std::vector<const Example*> items;
    items.reserve(static_cast<size_t>(size));
    for (int64_t i = 0; i < size; ++i) {
      items.push_back(
          &data.full_test[static_cast<size_t>(i) % data.full_test.size()]);
    }
    return CollateBatch(items, data.meta, &standardizer);
  }

  JdDataset data;
  Standardizer standardizer;
  std::unique_ptr<DnnRanker> dnn;
  std::unique_ptr<DinRanker> din;
  std::unique_ptr<CategoryMoeRanker> cat_moe;
  std::unique_ptr<AwMoeRanker> aw_moe;
};

enum class Path {
  kLegacy,
  kScoreInto,
  kScoreIntoWithGate,
  // Level-2 session feature store (PR 8) shapes:
  kEncodeSession,       // candidate-independent half alone
  kScoreWithEncoding,   // tail pass replaying a cached encoding —
                        // the compute an encoding-cache hit actually runs
};

void RunInference(benchmark::State& state, Ranker* model, Path path,
                  std::optional<KernelTier> tier = std::nullopt) {
  std::optional<ScopedKernelTier> pin;
  if (tier.has_value()) {
    if (*tier == KernelTier::kFast && !FastKernelTierAvailable()) {
      state.SkipWithError("fast kernel tier unavailable on this CPU/build");
      return;
    }
    pin.emplace(*tier);
  }
  state.SetLabel(
      KernelTierName(tier.has_value() ? *tier : ActiveKernelTier()));
  InferenceFixture& fixture = InferenceFixture::Get();
  const int64_t batch_size = state.range(0);
  const Batch batch = fixture.MakeBatch(batch_size);
  auto workspace = model->CreateInferenceWorkspace(batch_size);
  std::vector<float> out(static_cast<size_t>(batch_size));

  const int64_t width = model->SessionGateWidth();
  std::vector<float> gate_rows;
  SessionGate gate{nullptr, 0, 0};
  if (path == Path::kScoreIntoWithGate) {
    gate_rows.resize(static_cast<size_t>(batch_size * width));
    model->GateInto(batch, workspace.get(), gate_rows);
    gate = SessionGate{gate_rows.data(), batch_size, width};
  }
  const int64_t enc_width = model->SessionEncodingWidth();
  std::vector<float> enc_rows;
  SessionEncoding encoding{nullptr, 0, 0};
  if (path == Path::kEncodeSession || path == Path::kScoreWithEncoding) {
    if (enc_width == 0) {
      state.SkipWithError("model has no split encode/score path");
      return;
    }
    enc_rows.resize(static_cast<size_t>(batch_size * enc_width));
    model->EncodeSessionInto(batch, workspace.get(), enc_rows);
    encoding = SessionEncoding{enc_rows.data(), batch_size, enc_width};
  }
  // Warm-up: materialise workspace slabs outside measurement.
  switch (path) {
    case Path::kLegacy:
      benchmark::DoNotOptimize(model->InferenceLogits(batch));
      break;
    case Path::kEncodeSession:
      model->EncodeSessionInto(batch, workspace.get(), enc_rows);
      break;
    case Path::kScoreWithEncoding:
      model->ScoreWithSessionInto(batch, nullptr, &encoding,
                                  workspace.get(), out);
      break;
    default:
      model->ScoreInto(batch, gate.data != nullptr ? &gate : nullptr,
                       workspace.get(), out);
      break;
  }

  std::vector<double> iteration_us;
  iteration_us.reserve(1 << 14);
  int64_t allocs = 0;
  for (auto _ : state) {
    const int64_t alloc_before =
        g_alloc_count.load(std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    switch (path) {
      case Path::kLegacy: {
        Matrix logits = model->InferenceLogits(batch);
        benchmark::DoNotOptimize(logits);
        break;
      }
      case Path::kScoreInto:
        model->ScoreInto(batch, nullptr, workspace.get(), out);
        benchmark::DoNotOptimize(out.data());
        break;
      case Path::kScoreIntoWithGate:
        model->ScoreInto(batch, &gate, workspace.get(), out);
        benchmark::DoNotOptimize(out.data());
        break;
      case Path::kEncodeSession:
        model->EncodeSessionInto(batch, workspace.get(), enc_rows);
        benchmark::DoNotOptimize(enc_rows.data());
        break;
      case Path::kScoreWithEncoding:
        model->ScoreWithSessionInto(batch, nullptr, &encoding,
                                    workspace.get(), out);
        benchmark::DoNotOptimize(out.data());
        break;
    }
    const auto stop = std::chrono::steady_clock::now();
    allocs += g_alloc_count.load(std::memory_order_relaxed) - alloc_before;
    iteration_us.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }

  std::sort(iteration_us.begin(), iteration_us.end());
  auto percentile = [&](double p) {
    if (iteration_us.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(
        p / 100.0 * static_cast<double>(iteration_us.size() - 1) + 0.5);
    return iteration_us[std::min(idx, iteration_us.size() - 1)];
  };
  state.counters["p50_us"] = percentile(50.0);
  state.counters["p99_us"] = percentile(99.0);
  state.counters["allocs_per_op"] =
      state.iterations() > 0
          ? static_cast<double>(allocs) /
                static_cast<double>(state.iterations())
          : 0.0;
  state.SetItemsProcessed(state.iterations() * batch_size);
}

#define AWMOE_INFERENCE_BENCH(name, member, path)                  \
  void name(benchmark::State& state) {                             \
    RunInference(state, InferenceFixture::Get().member.get(), path); \
  }                                                                \
  BENCHMARK(name)->Arg(8)->Arg(64)->Arg(256)->Unit(               \
      benchmark::kMicrosecond)

AWMOE_INFERENCE_BENCH(BM_Legacy_DNN, dnn, Path::kLegacy);
AWMOE_INFERENCE_BENCH(BM_ScoreInto_DNN, dnn, Path::kScoreInto);
AWMOE_INFERENCE_BENCH(BM_Legacy_DIN, din, Path::kLegacy);
AWMOE_INFERENCE_BENCH(BM_ScoreInto_DIN, din, Path::kScoreInto);
AWMOE_INFERENCE_BENCH(BM_Legacy_CategoryMoE, cat_moe, Path::kLegacy);
AWMOE_INFERENCE_BENCH(BM_ScoreInto_CategoryMoE, cat_moe, Path::kScoreInto);
AWMOE_INFERENCE_BENCH(BM_Legacy_AWMoE, aw_moe, Path::kLegacy);
AWMOE_INFERENCE_BENCH(BM_ScoreInto_AWMoE, aw_moe, Path::kScoreInto);
// §III-F serving shape: expert path only, gate supplied from cache.
AWMOE_INFERENCE_BENCH(BM_ScoreIntoSharedGate_AWMoE, aw_moe,
                      Path::kScoreIntoWithGate);
// Level-2 session feature store shapes (PR 8): the candidate-
// independent half alone, and the tail pass that replays a cached
// encoding — the delta between BM_ScoreInto_* and
// BM_ScoreWithEncoding_* is the compute an encoding-cache hit saves.
AWMOE_INFERENCE_BENCH(BM_EncodeSession_DIN, din, Path::kEncodeSession);
AWMOE_INFERENCE_BENCH(BM_ScoreWithEncoding_DIN, din,
                      Path::kScoreWithEncoding);
AWMOE_INFERENCE_BENCH(BM_EncodeSession_AWMoE, aw_moe, Path::kEncodeSession);
AWMOE_INFERENCE_BENCH(BM_ScoreWithEncoding_AWMoE, aw_moe,
                      Path::kScoreWithEncoding);

// Tier comparison: the same ScoreInto cases pinned to each kernel tier
// (same fixture, same batches) — the per-tier rows of the smoke JSON.
#define AWMOE_TIER_BENCH(name, member, tier)                           \
  void name(benchmark::State& state) {                                 \
    RunInference(state, InferenceFixture::Get().member.get(),          \
                 Path::kScoreInto, tier);                              \
  }                                                                    \
  BENCHMARK(name)->Arg(8)->Arg(64)->Arg(256)->Unit(                    \
      benchmark::kMicrosecond)

AWMOE_TIER_BENCH(BM_ScoreInto_DNN_Reference, dnn, KernelTier::kReference);
AWMOE_TIER_BENCH(BM_ScoreInto_DNN_Fast, dnn, KernelTier::kFast);
AWMOE_TIER_BENCH(BM_ScoreInto_DIN_Reference, din, KernelTier::kReference);
AWMOE_TIER_BENCH(BM_ScoreInto_DIN_Fast, din, KernelTier::kFast);
AWMOE_TIER_BENCH(BM_ScoreInto_CategoryMoE_Reference, cat_moe,
                 KernelTier::kReference);
AWMOE_TIER_BENCH(BM_ScoreInto_CategoryMoE_Fast, cat_moe,
                 KernelTier::kFast);
AWMOE_TIER_BENCH(BM_ScoreInto_AWMoE_Reference, aw_moe,
                 KernelTier::kReference);
AWMOE_TIER_BENCH(BM_ScoreInto_AWMoE_Fast, aw_moe, KernelTier::kFast);

// ---------------------------------------------------------------------
// Raw MatMulInto per tier: the MatMulInto-dominated cases whose
// `gflops` counter the smoke JSON keeps as the tier-speedup record
// (single thread; row parallelism stays at its default of 0 here).
// ---------------------------------------------------------------------

void RunMatMul(benchmark::State& state, KernelTier tier) {
  if (tier == KernelTier::kFast && !FastKernelTierAvailable()) {
    state.SkipWithError("fast kernel tier unavailable on this CPU/build");
    return;
  }
  ScopedKernelTier pin(tier);
  const int64_t m = state.range(0), k = 128, n = 128;
  Rng rng(17);
  std::vector<float> a(static_cast<size_t>(m * k));
  for (float& v : a) v = static_cast<float>(rng.Normal());
  Matrix w(k, n);
  for (int64_t i = 0; i < w.size(); ++i) {
    w.data()[i] = static_cast<float>(rng.Normal());
  }
  std::vector<float> out(static_cast<size_t>(m * n));
  const ConstMatView a_view(a.data(), m, k, k);
  const MatView out_view{out.data(), m, n, n};
  for (auto _ : state) {
    MatMulInto(a_view, w, out_view);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(KernelTierName(tier));
  state.counters["gflops"] =
      benchmark::Counter(MatMulFlops(m, k, n) * 1e-9,
                         benchmark::Counter::kIsIterationInvariantRate);
}

void BM_MatMulInto_Reference(benchmark::State& state) {
  RunMatMul(state, KernelTier::kReference);
}
void BM_MatMulInto_Fast(benchmark::State& state) {
  RunMatMul(state, KernelTier::kFast);
}
BENCHMARK(BM_MatMulInto_Reference)
    ->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MatMulInto_Fast)
    ->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace

// Custom main so the smoke JSON carries the ISA/core context the tier
// numbers were measured under.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext(
      "avx2_fma_available",
      awmoe::FastKernelTierAvailable() ? "true" : "false");
  benchmark::AddCustomContext(
      "active_kernel_tier",
      awmoe::KernelTierName(awmoe::ActiveKernelTier()));
  benchmark::AddCustomContext(
      "hardware_threads",
      std::to_string(std::thread::hardware_concurrency()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
