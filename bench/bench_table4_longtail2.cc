// Reproduces Table IV: the five models evaluated on long-tail test set 2
// (elderly users with sparse, narrow behaviour). Expected shape (paper):
// absolute metrics are lower than Table II for every model, the MoE
// variants lead, and AW-MoE & CL adds a significant gain on top of AW-MoE.

#include <cstdio>

#include "common/experiment_lib.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

int Run(int argc, char** argv) {
  BenchFlags flags;
  Status status = flags.Parse(
      argc, argv, "Table IV: model comparison on long-tail test set 2");
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  JdComparison comparison = TrainAllOnJd(flags, "table4");
  std::vector<ModelEvaluation> rows;
  for (const TrainedModel& trained : comparison.models) {
    ModelEvaluation row =
        EvaluateModel(trained, comparison.data.longtail2_test,
                      comparison.data.meta, &comparison.standardizer);
    std::printf("[table4]   %s: AUC %.4f\n", row.name.c_str(), row.eval.auc);
    rows.push_back(std::move(row));
  }
  PrintPaperTable("Table IV — long-tail test set 2 (elderly users)", rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
