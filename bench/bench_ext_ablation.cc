// Ablation bench for the §V future-work extensions implemented in this
// repo (design choices called out in DESIGN.md §2):
//   - sparsely-gated MoE: top-k expert selection (k = 1, 2 vs dense);
//   - expert-disagreement (diversity) regularisation;
//   - item-reordering contrastive augmentation (mask+reorder vs mask).
// Each variant trains on the same corpus and reports full-test metrics
// next to the plain AW-MoE / AW-MoE & CL references.

#include <cstdio>

#include "common/experiment_lib.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

int Run(int argc, char** argv) {
  BenchFlags flags;
  flags.train_sessions = 10000;
  flags.test_sessions = 600;
  Status status = flags.Parse(
      argc, argv, "Extensions ablation: top-k gating, diversity, reorder");
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("[ext] generating JD dataset...\n");
  JdDataset data = JdSyntheticGenerator(flags.MakeJdConfig()).Generate();
  Standardizer standardizer;
  standardizer.Fit(data.train);

  struct Variant {
    const char* label;
    int64_t top_k;            // 0 = dense.
    double diversity_weight;  // 0 = off.
    bool contrastive;
    bool reorder;
  };
  const Variant variants[] = {
      {"AW-MoE (dense gate)", 0, 0.0, false, false},
      {"AW-MoE top-2 sparse gate", 2, 0.0, false, false},
      {"AW-MoE top-1 sparse gate", 1, 0.0, false, false},
      {"AW-MoE + diversity reg (w=0.05)", 0, 0.05, false, false},
      {"AW-MoE & CL (mask)", 0, 0.0, true, false},
      {"AW-MoE & CL (mask+reorder)", 0, 0.0, true, true},
  };

  TablePrinter table("Extensions ablation — full test set");
  table.SetHeader({"Variant", "AUC", "AUC@10", "NDCG", "NDCG@10"});
  for (const Variant& variant : variants) {
    std::printf("[ext] training %s...\n", variant.label);
    AwMoeConfig config;
    config.dims = ModelDims::Default();
    config.gate.top_k = variant.top_k;
    config.diversity_weight = variant.diversity_weight;
    config.name = variant.label;
    Rng rng(static_cast<uint64_t>(flags.seed) + 10);
    AwMoeRanker model(data.meta, config, &rng);

    TrainerConfig tc = flags.MakeTrainerConfig();
    tc.contrastive = variant.contrastive;
    if (variant.reorder) {
      tc.cl.strategy = ContrastiveConfig::Strategy::kMaskAndReorder;
    }
    Trainer trainer(&model, tc);
    trainer.Train(data.train, data.meta, &standardizer);

    std::vector<double> scores =
        Predict(&model, data.full_test, data.meta, &standardizer);
    RankingEvaluation eval = EvaluateRanking(data.full_test, scores);
    std::printf("[ext]   %s: AUC %.4f\n", variant.label, eval.auc);
    table.AddRow({variant.label, FormatDouble(eval.auc, 4),
                  FormatDouble(eval.auc_at_k, 4), FormatDouble(eval.ndcg, 4),
                  FormatDouble(eval.ndcg_at_k, 4)});
  }
  table.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
