// Op-level microbenchmarks: GEMM kernels, the attention/gate units, the
// full AW-MoE forward and backward passes, and the contrastive loss.
// These quantify the complexity analysis of §III-E — time is dominated by
// M activation/gate-unit evaluations plus K expert evaluations — and give
// the per-batch costs behind the training times reported in
// EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "common/experiment_lib.h"
#include "mat/kernels.h"
#include "models/attention_unit.h"
#include "nn/init.h"

namespace {

using namespace awmoe;
using namespace awmoe::bench;

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Matrix a = NormalInit(n, n, 1.0f, &rng);
  Matrix b = NormalInit(n, n, 1.0f, &rng);
  for (auto _ : state) {
    Matrix c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulBatchShaped(benchmark::State& state) {
  // The shape that dominates training: [batch, in] x [in, out].
  Rng rng(2);
  Matrix x = NormalInit(256, 27, 1.0f, &rng);
  Matrix w = NormalInit(27, 32, 1.0f, &rng);
  for (auto _ : state) {
    Matrix y = MatMul(x, w);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MatMulBatchShaped);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(3);
  Matrix a = NormalInit(256, 64, 1.0f, &rng);
  for (auto _ : state) {
    Matrix s = SoftmaxRows(a);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_GatherScatter(benchmark::State& state) {
  Rng rng(4);
  Matrix table = NormalInit(5000, 8, 0.05f, &rng);
  std::vector<int64_t> idx(256);
  for (auto& i : idx) i = rng.UniformInt(5000);
  Matrix grad = NormalInit(256, 8, 1.0f, &rng);
  for (auto _ : state) {
    Matrix rows = GatherRows(table, idx);
    ScatterAddRows(&table, idx, grad);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_GatherScatter);

void BM_AttentionUnitForward(benchmark::State& state) {
  Rng rng(5);
  AttentionUnit unit(16, {16, 8}, &rng);
  Var h_user(NormalInit(256, 16, 1.0f, &rng));
  Var h_ref(NormalInit(256, 16, 1.0f, &rng));
  NoGradGuard guard;
  for (auto _ : state) {
    Var score = unit.Forward(h_user, h_ref);
    benchmark::DoNotOptimize(score.impl().get());
  }
}
BENCHMARK(BM_AttentionUnitForward);

/// Fixture with a full-size batch through the default AW-MoE.
struct MoeFixture {
  MoeFixture() {
    JdConfig jd;
    jd.train_sessions = 200;
    jd.test_sessions = 10;
    jd.longtail1_sessions = 5;
    jd.longtail2_sessions = 5;
    jd.seed = 3;
    data = JdSyntheticGenerator(jd).Generate();
    standardizer.Fit(data.train);
    Rng rng(5);
    AwMoeConfig config;
    model = std::make_unique<AwMoeRanker>(data.meta, config, &rng);
    std::vector<const Example*> slice;
    for (size_t i = 0; i < 256 && i < data.train.size(); ++i) {
      slice.push_back(&data.train[i]);
    }
    batch = CollateBatch(slice, data.meta, &standardizer);
  }
  static MoeFixture& Get() {
    static MoeFixture* fixture = new MoeFixture();
    return *fixture;
  }
  JdDataset data;
  Standardizer standardizer;
  std::unique_ptr<AwMoeRanker> model;
  Batch batch;
};

void BM_AwMoeForwardInference(benchmark::State& state) {
  MoeFixture& fixture = MoeFixture::Get();
  NoGradGuard guard;
  for (auto _ : state) {
    Var logits = fixture.model->ForwardLogits(fixture.batch);
    benchmark::DoNotOptimize(logits.impl().get());
  }
  state.SetItemsProcessed(state.iterations() * fixture.batch.size);
}
BENCHMARK(BM_AwMoeForwardInference)->Unit(benchmark::kMillisecond);

void BM_AwMoeForwardBackward(benchmark::State& state) {
  MoeFixture& fixture = MoeFixture::Get();
  for (auto _ : state) {
    fixture.model->ZeroGrad();
    Var loss = ag::BceWithLogitsLoss(
        fixture.model->ForwardLogits(fixture.batch), fixture.batch.labels);
    loss.Backward();
    benchmark::DoNotOptimize(loss.impl().get());
  }
  state.SetItemsProcessed(state.iterations() * fixture.batch.size);
}
BENCHMARK(BM_AwMoeForwardBackward)->Unit(benchmark::kMillisecond);

void BM_GateOnlyForward(benchmark::State& state) {
  MoeFixture& fixture = MoeFixture::Get();
  NoGradGuard guard;
  for (auto _ : state) {
    Var gate = fixture.model->GateRepresentation(fixture.batch);
    benchmark::DoNotOptimize(gate.impl().get());
  }
  state.SetItemsProcessed(state.iterations() * fixture.batch.size);
}
BENCHMARK(BM_GateOnlyForward)->Unit(benchmark::kMillisecond);

void BM_InfoNceLoss(benchmark::State& state) {
  Rng rng(6);
  Var anchor(NormalInit(256, 4, 1.0f, &rng), /*requires_grad=*/true);
  Var positive(NormalInit(256, 4, 1.0f, &rng));
  std::vector<Var> negatives;
  for (int r = 0; r < 3; ++r) {
    negatives.emplace_back(NormalInit(256, 4, 1.0f, &rng));
  }
  for (auto _ : state) {
    Var loss = ag::InfoNceLoss(anchor, positive, negatives);
    loss.Backward();
    anchor.ZeroGrad();
    benchmark::DoNotOptimize(loss.impl().get());
  }
}
BENCHMARK(BM_InfoNceLoss);

}  // namespace

BENCHMARK_MAIN();
