// Diagnostic: scores the test sets with the generator's noiseless utility
// (the Bayes-optimal ranker for this corpus) to establish the achievable
// ceiling that Tables II-IV results should be read against.

#include <cstdio>

#include "data/jd_synthetic.h"
#include "eval/metrics.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace awmoe;

void Report(TablePrinter* table, const char* split_name,
            const std::vector<Example>& split) {
  std::vector<double> oracle;
  oracle.reserve(split.size());
  for (const Example& ex : split) oracle.push_back(ex.oracle_utility);
  RankingEvaluation eval = EvaluateRanking(split, oracle);
  table->AddRow({split_name, FormatDouble(eval.auc, 4),
                 FormatDouble(eval.auc_at_k, 4), FormatDouble(eval.ndcg, 4),
                 FormatDouble(eval.ndcg_at_k, 4)});
}

int Run(int argc, char** argv) {
  int64_t test_sessions = 800;
  int64_t seed = 20230608;
  FlagSet flags("Oracle ranking ceiling for the synthetic JD corpus");
  flags.AddInt("test_sessions", &test_sessions, "full-test sessions");
  flags.AddInt("seed", &seed, "generator seed");
  Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  JdConfig jd;
  jd.train_sessions = 10;  // Unused here.
  jd.test_sessions = test_sessions;
  jd.longtail1_sessions = 300;
  jd.longtail2_sessions = 300;
  jd.seed = static_cast<uint64_t>(seed);
  JdDataset data = JdSyntheticGenerator(jd).Generate();

  TablePrinter table("Oracle (noiseless utility) ranking quality");
  table.SetHeader({"Split", "AUC", "AUC@10", "NDCG", "NDCG@10"});
  Report(&table, "full test", data.full_test);
  Report(&table, "long-tail 1", data.longtail1_test);
  Report(&table, "long-tail 2", data.longtail2_test);
  table.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
