// Quickstart: generate a small synthetic search log, train AW-MoE with
// contrastive learning, and compare it against the DNN baseline.
//
//   ./build/examples/quickstart [--train_sessions=4000] [--epochs=2] ...
//
// This walks the full public API surface: data generation -> batching ->
// model construction -> Trainer -> session-grouped evaluation.

#include <cstdio>
#include <memory>

#include "core/aw_moe.h"
#include "core/trainer.h"
#include "data/batcher.h"
#include "data/jd_synthetic.h"
#include "eval/metrics.h"
#include "models/dnn_ranker.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/string_util.h"

namespace {

using namespace awmoe;  // Example code; library code never does this.

int Run(int argc, char** argv) {
  int64_t train_sessions = 4000;
  int64_t test_sessions = 400;
  int64_t epochs = 2;
  int64_t batch_size = 256;
  double lr = 2e-3;
  int64_t seed = 7;

  FlagSet flags("AW-MoE quickstart");
  flags.AddInt("train_sessions", &train_sessions, "training sessions");
  flags.AddInt("test_sessions", &test_sessions, "test sessions");
  flags.AddInt("epochs", &epochs, "training epochs");
  flags.AddInt("batch_size", &batch_size, "minibatch size");
  flags.AddDouble("lr", &lr, "AdamW learning rate");
  flags.AddInt("seed", &seed, "global seed");
  Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;  // --help.
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // 1. Simulate a JD-style search log (stands in for the paper's
  //    proprietary corpus; see DESIGN.md).
  std::printf("Generating synthetic search log...\n");
  JdConfig jd;
  jd.train_sessions = train_sessions;
  jd.test_sessions = test_sessions;
  jd.longtail1_sessions = 100;
  jd.longtail2_sessions = 100;
  jd.seed = static_cast<uint64_t>(seed);
  JdDataset data = JdSyntheticGenerator(jd).Generate();
  std::printf("  train examples: %zu, test examples: %zu\n",
              data.train.size(), data.full_test.size());

  Standardizer standardizer;
  standardizer.Fit(data.train);

  TrainerConfig tc;
  tc.epochs = epochs;
  tc.batch_size = batch_size;
  tc.lr = static_cast<float>(lr);
  tc.seed = static_cast<uint64_t>(seed);
  tc.verbose = true;

  TablePrinter table("Quickstart results (session-grouped, Eq. 12-13)");
  table.SetHeader({"Model", "AUC", "AUC@10", "NDCG", "NDCG@10", "train s"});

  // 2. Baseline: DNN with sum-pooled user vector.
  {
    Rng model_rng(static_cast<uint64_t>(seed) + 1);
    DnnRanker dnn(data.meta, ModelDims::Default(), &model_rng);
    Trainer trainer(&dnn, tc);
    Stopwatch watch;
    trainer.Train(data.train, data.meta, &standardizer);
    double seconds = watch.ElapsedSeconds();
    auto scores = Predict(&dnn, data.full_test, data.meta, &standardizer);
    RankingEvaluation eval = EvaluateRanking(data.full_test, scores);
    table.AddRow({dnn.name(), FormatDouble(eval.auc, 4),
                  FormatDouble(eval.auc_at_k, 4), FormatDouble(eval.ndcg, 4),
                  FormatDouble(eval.ndcg_at_k, 4),
                  FormatDouble(seconds, 1)});
  }

  // 3. AW-MoE with the contrastive-learning objective (Eq. 11).
  {
    Rng model_rng(static_cast<uint64_t>(seed) + 2);
    AwMoeConfig config;
    AwMoeRanker aw_moe(data.meta, config, &model_rng);
    TrainerConfig cl_tc = tc;
    cl_tc.contrastive = true;  // p=0.1, l=3, lambda=0.05 defaults.
    Trainer trainer(&aw_moe, cl_tc);
    Stopwatch watch;
    trainer.Train(data.train, data.meta, &standardizer);
    double seconds = watch.ElapsedSeconds();
    auto scores = Predict(&aw_moe, data.full_test, data.meta, &standardizer);
    RankingEvaluation eval = EvaluateRanking(data.full_test, scores);
    table.AddRow({"AW-MoE & CL", FormatDouble(eval.auc, 4),
                  FormatDouble(eval.auc_at_k, 4), FormatDouble(eval.ndcg, 4),
                  FormatDouble(eval.ndcg_at_k, 4),
                  FormatDouble(seconds, 1)});
  }

  table.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
