// Search-scenario example: trains AW-MoE on the synthetic JD log, then
// serves live search sessions through the ServingEngine with the §III-F
// per-session gate path, printing the ranked product list the search
// engine would return (Fig. 6 flow: query -> retrieve -> rank ->
// present) — including the two-stage retrieve -> rerank pipeline, where
// the listwise self-attention reranker re-scores the pointwise top-K as
// one slate (docs/reranking.md).

#include <algorithm>
#include <cstdio>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

#include "core/aw_moe.h"
#include "core/trainer.h"
#include "data/jd_synthetic.h"
#include "models/listwise/listwise_reranker.h"
#include "serving/ab_test.h"
#include "serving/model_pool.h"
#include "serving/rollout.h"
#include "serving/serving_engine.h"
#include "serving/shard.h"
#include "serving/two_stage.h"
#include "train/retrain_driver.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace awmoe;

int Run(int argc, char** argv) {
  int64_t train_sessions = 6000;
  int64_t epochs = 2;
  int64_t show_sessions = 3;
  int64_t seed = 20230608;

  FlagSet flags("Search serving example: AW-MoE behind the serving engine");
  flags.AddInt("train_sessions", &train_sessions, "training sessions");
  flags.AddInt("epochs", &epochs, "training epochs");
  flags.AddInt("show_sessions", &show_sessions, "sessions to display");
  flags.AddInt("seed", &seed, "global seed");
  Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  JdConfig jd;
  jd.train_sessions = train_sessions;
  jd.test_sessions = 200;
  jd.longtail1_sessions = 20;
  jd.longtail2_sessions = 20;
  jd.seed = static_cast<uint64_t>(seed);
  std::printf("Generating synthetic search log...\n");
  JdDataset data = JdSyntheticGenerator(jd).Generate();
  Standardizer standardizer;
  standardizer.Fit(data.train);

  std::printf("Training AW-MoE & CL (%lld sessions, %lld epochs)...\n",
              static_cast<long long>(train_sessions),
              static_cast<long long>(epochs));
  Rng rng(static_cast<uint64_t>(seed) + 1);
  AwMoeConfig config;
  config.name = "AW-MoE & CL";
  AwMoeRanker model(data.meta, config, &rng);
  TrainerConfig tc;
  tc.epochs = epochs;
  tc.contrastive = true;
  tc.seed = static_cast<uint64_t>(seed) + 2;
  Trainer trainer(&model, tc);
  trainer.Train(data.train, data.meta, &standardizer);

  // The listwise reranker for the two-stage demo below: scores a slate
  // jointly through self-attention, trained with the ListNet loss on
  // the same log (session-grouped batches).
  std::printf("Training the listwise reranker (ListNet)...\n");
  Rng listwise_rng(static_cast<uint64_t>(seed) + 7);
  ListwiseDims ldims;  // Defaults; slates here are top-K, well under cap.
  ListwiseReranker reranker(data.meta, config.dims, ldims, &listwise_rng);
  TrainerConfig ltc;
  ltc.epochs = epochs;
  ltc.lr = 1e-3f;
  ltc.seed = static_cast<uint64_t>(seed) + 8;
  Trainer listwise_trainer(&reranker, ltc);
  listwise_trainer.Train(data.train, data.meta, &standardizer);

  // Online serving behind the explicit request/response API: the model
  // is registered by name and expanded into two replica lanes (deep
  // weight clones), and the engine runs the §III-F gate path (computed
  // once per session, cached across repeat requests in the snapshot).
  ModelPoolOptions pool_options;
  pool_options.replicas = 2;
  ModelPool registry(data.meta, &standardizer, pool_options);
  registry.Register("aw-moe-cl", &model);
  registry.Register("listwise", &reranker);
  ServingEngine engine(&registry);
  auto sessions = GroupBySession(data.full_test);

  for (int64_t s = 0; s < show_sessions &&
                      s < static_cast<int64_t>(sessions.size());
       ++s) {
    const auto& session = sessions[static_cast<size_t>(s)];
    RankRequest request;
    request.session_id = session[0]->session_id;
    request.items = session;
    RankResponse response = engine.Rank(request);
    const std::vector<double>& scores = response.scores;
    std::vector<size_t> order(scores.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return scores[a] > scores[b];
    });

    const Example& first = *session[0];
    TablePrinter table(StrFormat(
        "Session %lld | user %lld (history %lld items) | query %lld "
        "(category %lld)",
        static_cast<long long>(first.session_id),
        static_cast<long long>(first.user_id),
        static_cast<long long>(first.history_len),
        static_cast<long long>(first.query_id),
        static_cast<long long>(first.query_cat)));
    table.SetHeader({"Rank", "Item", "Cat", "Brand", "Score", "Purchased"});
    for (size_t r = 0; r < order.size(); ++r) {
      const Example& ex = *session[order[r]];
      table.AddRow({std::to_string(r + 1), std::to_string(ex.target_item),
                    std::to_string(ex.target_cat),
                    std::to_string(ex.target_brand),
                    FormatDouble(scores[order[r]], 4),
                    ex.label > 0.5f ? "YES" : ""});
    }
    table.Print();
  }

  ServingStatsSnapshot stats = engine.Stats();
  std::printf(
      "Served %lld sessions (%lld items): mean %.2f ms, p50 %.2f ms, "
      "p95 %.2f ms, p99 %.2f ms, %.0f req/s, gate sharing %s.\n",
      static_cast<long long>(stats.requests),
      static_cast<long long>(stats.items), stats.mean_ms, stats.p50_ms,
      stats.p95_ms, stats.p99_ms, stats.qps,
      engine.GateSharingActive() ? "ON" : "OFF");

  // --- Two-level result caching on the hot path (docs/serving.md). ---
  // Level 1: an exact repeat of (session, candidate set) is answered
  // from the snapshot's score cache without touching a replica lane.
  // Level 2: the same session over NEW candidates reuses the cached
  // behaviour-sequence encoding and runs only the candidate tail.
  // A behaviour-history update invalidates both; a hot swap starts the
  // new snapshot cache-cold by construction.
  {
    const auto& session =
        sessions[static_cast<size_t>(show_sessions) % sessions.size()];
    const auto delta = [&engine](ServingStatsSnapshot& prev) {
      const ServingStatsSnapshot now = engine.Stats();
      std::printf(
          "    counters: +%lld score hit, +%lld score miss, +%lld "
          "invalidation, +%lld encoding hit, +%lld gate hit\n",
          static_cast<long long>(now.score_cache_hits -
                                 prev.score_cache_hits),
          static_cast<long long>(now.score_cache_misses -
                                 prev.score_cache_misses),
          static_cast<long long>(now.score_cache_invalidations -
                                 prev.score_cache_invalidations),
          static_cast<long long>(now.encoding_cache_hits -
                                 prev.encoding_cache_hits),
          static_cast<long long>(now.gate_cache_hits -
                                 prev.gate_cache_hits));
      prev = now;
    };
    ServingStatsSnapshot prev = engine.Stats();

    RankRequest request;
    request.session_id = session[0]->session_id;
    request.items = session;
    engine.Rank(request);  // Cold: populates all three caches.
    RankResponse repeat = engine.Rank(request);
    std::printf(
        "\nResult cache: warm repeat -> level-1 %s (served without a "
        "replica lane: replica %d).\n",
        repeat.score_cache_hit ? "HIT" : "miss", repeat.replica);
    delta(prev);

    // Same session + history, new candidates: split the page in half
    // and request the second half (never seen as a set).
    RankRequest fresh;
    fresh.session_id = request.session_id;
    fresh.items.assign(session.begin() + session.size() / 2, session.end());
    RankResponse tail = engine.Rank(fresh);
    std::printf(
        "New candidates, same history -> level-1 miss, level-2 encoding "
        "%s + gate %s (candidate tail only).\n",
        tail.encoding_cache_hit ? "HIT" : "miss",
        tail.gate_cache_hit ? "HIT" : "miss");
    delta(prev);

    // The user acts: their behaviour history grows, so every cached
    // score and encoding for the session is stale.
    std::vector<Example> grown_storage;
    grown_storage.reserve(session.size());
    for (const Example* ex : session) {
      Example g = *ex;
      g.behavior_items.push_back(g.target_item);
      g.behavior_cats.push_back(g.target_cat);
      g.behavior_brands.push_back(g.target_brand);
      g.behavior_attrs.insert(g.behavior_attrs.end(), {0.5f, 0.5f, 0.5f});
      g.history_len = static_cast<int64_t>(g.behavior_items.size());
      grown_storage.push_back(std::move(g));
    }
    RankRequest updated;
    updated.session_id = request.session_id;
    for (const Example& g : grown_storage) updated.items.push_back(&g);
    RankResponse after_update = engine.Rank(updated);
    std::printf(
        "History update -> invalidated and re-scored (level-1 %s).\n",
        after_update.score_cache_hit ? "HIT" : "miss");
    delta(prev);

    const ServingStatsSnapshot gauges = engine.Stats();
    std::printf(
        "Resident: %lld score entries (%.1f KiB), %lld encodings "
        "(%.1f KiB), %lld gate rows (%.1f KiB); caches retire with "
        "their snapshot on hot swap.\n",
        static_cast<long long>(gauges.score_cache_entries),
        static_cast<double>(gauges.score_cache_bytes) / 1024.0,
        static_cast<long long>(gauges.encoding_cache_entries),
        static_cast<double>(gauges.encoding_cache_bytes) / 1024.0,
        static_cast<long long>(gauges.gate_cache_entries),
        static_cast<double>(gauges.gate_cache_bytes) / 1024.0);
  }

  // --- Two-stage retrieve -> rerank (docs/reranking.md). ---
  // Stage 1: the pointwise AW-MoE scores the whole candidate set.
  // Stage 2: the top-K go back through the engine as ONE slate to the
  // listwise reranker, whose self-attention re-scores each candidate
  // aware of what it competes with (the slate request stays atomic in
  // one forward, and the score cache is bypassed by the slate
  // contract). The blended ranking reranks the head, keeps the
  // retrieval tail.
  {
    TwoStageOptions two_stage_options;
    two_stage_options.retrieval_model = "aw-moe-cl";
    two_stage_options.rerank_model = "listwise";
    two_stage_options.top_k = 5;
    TwoStageRanker two_stage(&engine, two_stage_options);
    const auto& session = sessions[0];
    RankRequest request;
    request.session_id = session[0]->session_id;
    request.items = session;
    TwoStageResult result = two_stage.Rank(request);
    TablePrinter two_stage_table(StrFormat(
        "Two-stage: session %lld, %zu candidates -> rerank top-%lld "
        "(retrieve %.2f ms + rerank %.2f ms)",
        static_cast<long long>(request.session_id), session.size(),
        static_cast<long long>(two_stage_options.top_k),
        result.retrieve_ms, result.rerank_ms));
    two_stage_table.SetHeader({"Final", "Item", "Retrieval", "Rerank",
                               "Stage", "Purchased"});
    std::vector<int> slate_position(session.size(), -1);
    for (size_t j = 0; j < result.slate.size(); ++j) {
      slate_position[result.slate[j]] = static_cast<int>(j);
    }
    for (size_t r = 0; r < result.ranking.size(); ++r) {
      const size_t idx = result.ranking[r];
      const int pos = slate_position[idx];
      two_stage_table.AddRow(
          {std::to_string(r + 1),
           std::to_string(session[idx]->target_item),
           FormatDouble(result.retrieval_scores[idx], 4),
           pos >= 0 ? FormatDouble(result.rerank_scores[static_cast<size_t>(
                          pos)], 4)
                    : "-",
           pos >= 0 ? "reranked" : "tail",
           session[idx]->label > 0.5f ? "YES" : ""});
    }
    two_stage_table.Print();
    const ServingStatsSnapshot slate_stats = engine.Stats();
    std::printf(
        "Slate stats: %lld slate(s), %lld candidates (mean %.1f), rerank "
        "stage p50 %.3f ms.\n",
        static_cast<long long>(slate_stats.slates),
        static_cast<long long>(slate_stats.slate_items),
        slate_stats.mean_slate_items, slate_stats.rerank_p50_ms);
  }

  // The async front: several client threads Submit() their sessions
  // concurrently and block only on their own future. The engine's
  // time-bounded queue coalesces requests that arrive together into
  // shared forward passes — occupancy > 1 below is traffic from
  // different clients amortising one forward.
  engine.ResetStats();
  constexpr size_t kClients = 3;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([c, &engine, &sessions] {
      std::vector<std::future<RankResponse>> futures;
      for (size_t s = c; s < sessions.size(); s += kClients) {
        RankRequest request;
        request.session_id = sessions[s][0]->session_id;
        request.items = sessions[s];
        futures.push_back(engine.Submit(std::move(request)));
      }
      for (auto& future : futures) future.get();
    });
  }
  for (std::thread& client : clients) client.join();

  ServingStatsSnapshot async_stats = engine.Stats();
  std::printf(
      "Async front (%zu client threads): %lld sessions, p99 %.2f ms, "
      "%.0f req/s, batch occupancy %.1f req/forward (max %lld), queue "
      "delay mean %.2f ms.\n",
      kClients, static_cast<long long>(async_stats.requests),
      async_stats.p99_ms, async_stats.qps, async_stats.mean_batch_requests,
      static_cast<long long>(async_stats.max_batch_requests),
      async_stats.queue_mean_ms);

  // Hot swap: production retrains continuously, so the pool publishes a
  // new model version while the engine keeps serving — in-flight
  // requests finish on the snapshot they started with, new requests see
  // the new version. (The "retrained" model here is a weight clone;
  // in production it would come from the trainer.)
  RankRequest probe;
  probe.session_id = sessions[0][0]->session_id;
  probe.items = sessions[0];
  engine.Rank(probe);  // Populate the old snapshot's caches.
  const RankResponse warm = engine.Rank(probe);
  const int64_t v_before = warm.model_version;
  const int64_t v_after = registry.UpdateModel("aw-moe-cl", model.Clone());
  // The caches live INSIDE the snapshot, so the swap retires them
  // wholesale: the same request that just hit now starts cold on v2.
  const RankResponse post_swap = engine.Rank(probe);
  std::printf(
      "Hot swap: version %lld -> %lld published with zero downtime "
      "(%lld swap(s), %lld live snapshot(s)); next request served on "
      "v%lld, cache-cold by construction (warm repeat was a level-1 %s, "
      "post-swap repeat a %s).\n",
      static_cast<long long>(v_before), static_cast<long long>(v_after),
      static_cast<long long>(registry.swap_count()),
      static_cast<long long>(registry.live_snapshots()),
      static_cast<long long>(post_swap.model_version),
      warm.score_cache_hit ? "HIT" : "miss",
      post_swap.score_cache_hit ? "HIT" : "MISS");

  // Staged rollout: instead of the all-or-nothing cutover above, the
  // next "retrained" model is ramped onto live traffic — the router
  // assigns a sticky sessions slice per stage, the controller checks
  // per-version p99/error health windows after every replay round, and
  // the candidate is auto-promoted (or auto-rolled-back the moment it
  // regresses) with both versions live and leasable throughout.
  RolloutOptions rollout_options;
  rollout_options.ramp_permille = {50, 250, 1000};  // 5% -> 25% -> 100%
  rollout_options.min_stage_requests = 20;
  RolloutController rollout(&registry, engine.router(), &engine.stats(),
                            "aw-moe-cl", rollout_options);
  const int64_t staged = rollout.Begin(model.Clone());
  // Gate-cache warm-up: the freshly staged candidate snapshot starts
  // gate-cold by construction (its LRU lives in the snapshot). Scoring
  // one gate row per known session into its cache BEFORE the router
  // sends it traffic means the candidate's very first ramp slice is
  // served from cached gates instead of paying cold probe forwards.
  const int64_t warmed = registry.WarmSessionGates(
      "aw-moe-cl", RolloutArm::kCandidate, sessions,
      engine.options().gate_cache_capacity);
  std::printf(
      "\nStaged rollout: candidate v%lld staged next to stable v%lld "
      "(%lld live snapshots), gate cache pre-warmed with %lld sessions, "
      "ramping at %d permille.\n",
      static_cast<long long>(staged),
      static_cast<long long>(rollout.stable_version()),
      static_cast<long long>(registry.live_snapshots()),
      static_cast<long long>(warmed), rollout.split_permille());
  RolloutReplayResult replay =
      ReplayRollout(&engine, &rollout, sessions, /*max_rounds=*/64);
  TablePrinter ramp_table("Health-gated ramp (replayed live traffic)");
  ramp_table.SetHeader({"Round", "Split", "Stable req", "Cand req",
                        "Stable p99", "Cand p99", "Decision"});
  for (const RolloutRoundRecord& round : replay.rounds) {
    ramp_table.AddRow(
        {std::to_string(round.round),
         StrFormat("%d", round.split_permille),
         std::to_string(round.stable_requests),
         std::to_string(round.candidate_requests),
         FormatDouble(round.stable_p99_ms, 3),
         FormatDouble(round.candidate_p99_ms, 3), round.decision});
  }
  ramp_table.Print();
  std::printf(
      "Rollout %s: stable now v%lld, %lld live snapshot(s), %lld/%lld "
      "requests served by the candidate during the ramp.\n",
      std::string(RolloutStateToString(replay.final_state)).c_str(),
      static_cast<long long>(replay.final_stable_version),
      static_cast<long long>(registry.live_snapshots()),
      static_cast<long long>(replay.total_candidate_requests),
      static_cast<long long>(replay.total_requests));

  // --- Continuous retraining: the loop closes (docs/training.md). ---
  // The rollouts above ramped hand-made clones; production retrains on
  // a cadence. The RetrainDriver owns a training replica of the served
  // model and, per round: generates the next data window, retrains the
  // replica with the data-parallel ParallelTrainer, stages the clone,
  // and ticks the health-gated ramp while shadow-scoring holdout
  // sessions on both arms — so the accuracy-drift gate can compare
  // engagement and auto-roll-back a regressed retrain. Round 1 below is
  // sabotaged (untrained weights shipped) to show exactly that: its
  // latency and error health are perfect, only the drift gate objects.
  RetrainOptions retrain;
  retrain.data = jd;
  retrain.data.train_sessions = std::min<int64_t>(train_sessions, 1500);
  retrain.data.test_sessions = 200;
  retrain.trainer.base.epochs = 1;
  retrain.trainer.base.contrastive = true;
  retrain.trainer.base.seed = static_cast<uint64_t>(seed) + 3;
  retrain.trainer.num_workers = 2;
  retrain.trainer.grad_accumulation = 2;
  retrain.rollout.ramp_permille = {250, 500, 1000};
  retrain.rollout.min_stage_requests = 10;
  retrain.rollout.max_p99_ratio = 50.0;  // Same net on both arms; the
  retrain.rollout.p99_slack_ms = 500.0;  // drift gate is the star here.
  retrain.rollout.min_drift_sessions = 40;
  retrain.rollout.max_engagement_drop = 0.10;
  retrain.rollout.engagement_slack = 0.05;
  RetrainDriver retrainer(&engine, &registry, "aw-moe-cl", model.Clone(),
                          retrain);
  std::printf(
      "\nContinuous retraining: 3 rounds (round 1 sabotaged with "
      "untrained weights), drift gate armed at %lld shadow sessions "
      "per arm.\n",
      static_cast<long long>(retrain.rollout.min_drift_sessions));
  std::vector<std::future<RankResponse>> retrain_live;
  size_t retrain_session = 0;
  const auto live_traffic = [&] {
    // Live Submit() traffic keeps flowing while each ramp ticks.
    for (int i = 0; i < 4; ++i) {
      RankRequest request;
      const auto& session = sessions[retrain_session++ % sessions.size()];
      request.session_id = session[0]->session_id;
      request.items = session;
      retrain_live.push_back(engine.Submit(std::move(request)));
    }
  };
  TablePrinter retrain_table("Retrain rounds through the drift gate");
  retrain_table.SetHeader({"Round", "Version", "State", "Ticks",
                           "Cand engage", "Stable engage", "Decision"});
  for (int round = 0; round < 3; ++round) {
    if (round == 1) {
      retrainer.set_post_train_hook([&data](Ranker* staged) {
        Rng garbage_rng(991);
        AwMoeRanker garbage(data.meta, AwMoeConfig{}, &garbage_rng);
        CopyParametersInto(garbage, staged);
      });
    } else {
      retrainer.set_post_train_hook(nullptr);
    }
    const RetrainRoundResult result = retrainer.RunRound(live_traffic);
    for (auto& future : retrain_live) future.get();
    retrain_live.clear();
    retrain_table.AddRow(
        {std::to_string(result.round),
         std::to_string(result.staged_version),
         std::string(RolloutStateToString(result.final_state)),
         std::to_string(result.ticks),
         FormatDouble(result.candidate_engagement, 3),
         FormatDouble(result.stable_engagement, 3), result.last_decision});
  }
  retrain_table.Print();
  const ServingStatsSnapshot retrain_stats = engine.Stats();
  const int64_t final_version =
      registry.CurrentSnapshot("aw-moe-cl")->version();
  std::printf(
      "Retrain loop: %d promoted, %d rolled back; stable now v%lld; "
      "drift evidence %lld shadow sessions engine-wide (%lld engaged), "
      "v%lld window %lld sessions at %.3f engagement.\n",
      retrainer.promoted(), retrainer.rolled_back(),
      static_cast<long long>(final_version),
      static_cast<long long>(retrain_stats.drift_sessions),
      static_cast<long long>(retrain_stats.drift_engaged),
      static_cast<long long>(final_version),
      static_cast<long long>(
          engine.stats().VersionHealth("aw-moe-cl", final_version)
              .drift_sessions),
      engine.stats().VersionHealth("aw-moe-cl", final_version)
          .drift_engaged_rate);
  engine.Stop();

  // --- Fleet-scale serving: the same model behind 4 shards. ---
  // Each shard is an independent pool + engine; the consistent-hash
  // router pins every session to one shard (its gate cache rows live
  // exactly once fleet-wide), and a deadline-aware admission controller
  // sheds requests a shard could no longer serve in time. See
  // docs/fleet.md.
  FleetOptions fleet_options;
  fleet_options.num_shards = 4;
  // The demo box serves a full-size trained model single-threaded, so
  // the default deadline sits well above its per-request service time;
  // the burst below then tightens it to force shedding.
  fleet_options.admission.default_deadline_ms = 200.0;
  ShardedServingFleet fleet(data.meta, &standardizer, fleet_options);
  fleet.RegisterOwned("aw-moe-cl", model.Clone());
  std::printf(
      "\nFleet: %d shards x (pool + engine + admission), %d vnodes each "
      "on the placement ring.\n",
      fleet.num_shards(), fleet.router().vnodes_per_shard());

  // Fleet-wide staged rollout: stage once, ramp the split — every
  // shard's router buckets sessions identically, so one session sees
  // one arm no matter which shard serves it.
  const int64_t fleet_candidate =
      fleet.StageCandidate("aw-moe-cl", model.Clone());
  for (int permille : {50, 250, 1000}) {
    fleet.SetSplit("aw-moe-cl", permille);
    int64_t candidate_served = 0;
    for (const auto& session : sessions) {
      RankRequest request;
      request.session_id = session[0]->session_id;
      request.items = session;
      const RankResponse response = fleet.Submit(std::move(request)).get();
      if (response.status.ok() && response.arm == RolloutArm::kCandidate) {
        ++candidate_served;
      }
    }
    std::printf(
        "Fleet ramp %4d permille: candidate v%lld served %lld/%zu "
        "sessions (sticky fleet-wide).\n",
        permille, static_cast<long long>(fleet_candidate),
        static_cast<long long>(candidate_served), sessions.size());
  }
  fleet.PromoteCandidate("aw-moe-cl");

  // A tight-deadline burst: every session at once, each demanding an
  // answer in 30 ms. The first arrivals at each shard fit the budget;
  // once the queue's estimated drain time would blow it, the admission
  // controllers shed — in microseconds, instead of queueing a response
  // nobody is waiting for.
  std::vector<std::future<RankResponse>> burst;
  for (const auto& session : sessions) {
    RankRequest request;
    request.session_id = session[0]->session_id;
    request.items = session;
    request.deadline_ms = 30.0;
    burst.push_back(fleet.Submit(std::move(request)));
  }
  int64_t burst_ok = 0;
  int64_t burst_shed = 0;
  for (auto& future : burst) {
    future.get().status.ok() ? ++burst_ok : ++burst_shed;
  }

  const FleetStats fleet_stats = fleet.Stats();
  TablePrinter shard_table(StrFormat(
      "Per-shard serving (burst: %lld served, %lld shed at 30 ms deadline)",
      static_cast<long long>(burst_ok), static_cast<long long>(burst_shed)));
  shard_table.SetHeader({"Shard", "Requests", "p50 ms", "p99 ms", "QPS",
                         "Admitted", "Shed", "Degraded"});
  for (const ShardStatsSnapshot& shard : fleet_stats.shards) {
    shard_table.AddRow({std::to_string(shard.shard_id),
                        std::to_string(shard.engine.requests),
                        FormatDouble(shard.engine.p50_ms, 3),
                        FormatDouble(shard.engine.p99_ms, 3),
                        FormatDouble(shard.engine.qps, 0),
                        std::to_string(shard.admitted),
                        std::to_string(shard.shed),
                        std::to_string(shard.degraded)});
  }
  shard_table.Print();
  std::printf(
      "Fleet merged: %lld requests, p99 %.2f ms (exact pooled "
      "percentile), %.0f req/s, shed rate %.3f, imbalance %.2f, %lld "
      "live snapshots.\n",
      static_cast<long long>(fleet_stats.merged.requests),
      fleet_stats.merged.p99_ms, fleet_stats.merged.qps,
      fleet_stats.shed_rate, fleet_stats.imbalance,
      static_cast<long long>(fleet.live_snapshots()));
  fleet.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
