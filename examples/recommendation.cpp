// Recommendation-scenario example (paper §IV-A2): trains AW-MoE on the
// synthetic Amazon review corpus in recommendation mode — no query, the
// gate network receives the target item — and produces top-K next-item
// recommendations for a few held-out users by scoring candidate items.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/aw_moe.h"
#include "core/trainer.h"
#include "data/amazon_synthetic.h"
#include "eval/metrics.h"
#include "serving/model_pool.h"
#include "serving/serving_engine.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace awmoe;

int Run(int argc, char** argv) {
  int64_t num_users = 6000;
  int64_t epochs = 2;
  int64_t show_users = 3;
  int64_t top_k = 5;
  int64_t candidates = 60;
  int64_t seed = 1992015;

  FlagSet flags("Recommendation example: AW-MoE in recommendation mode");
  flags.AddInt("num_users", &num_users, "simulated users");
  flags.AddInt("epochs", &epochs, "training epochs");
  flags.AddInt("show_users", &show_users, "users to recommend for");
  flags.AddInt("top_k", &top_k, "recommendations per user");
  flags.AddInt("candidates", &candidates, "candidate items scored per user");
  flags.AddInt("seed", &seed, "global seed");
  Status status = flags.Parse(argc, argv);
  if (status.code() == StatusCode::kNotFound) return 0;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  AmazonConfig config;
  config.num_users = num_users;
  config.seed = static_cast<uint64_t>(seed);
  std::printf("Generating synthetic review corpus...\n");
  AmazonDataset data = AmazonSyntheticGenerator(config).Generate();
  Standardizer standardizer;
  standardizer.Fit(data.train);

  std::printf("Training AW-MoE (recommendation mode, gate <- target item)"
              "...\n");
  Rng rng(static_cast<uint64_t>(seed) + 1);
  AwMoeConfig aw_config;
  AwMoeRanker model(data.meta, aw_config, &rng);
  TrainerConfig tc;
  tc.epochs = epochs;
  tc.seed = static_cast<uint64_t>(seed) + 2;
  Trainer trainer(&model, tc);
  trainer.Train(data.train, data.meta, &standardizer);

  // Held-out AUC for context.
  std::vector<double> scores =
      Predict(&model, data.test, data.meta, &standardizer);
  std::vector<float> labels;
  for (const Example& ex : data.test) labels.push_back(ex.label);
  std::printf("Held-out AUC: %.4f\n", OverallAuc(labels, scores));

  // Candidate scoring is served through the engine: in recommendation
  // mode the gate reads the target item, so the engine automatically
  // keeps §III-F gate sharing off for this model.
  ModelPool registry(data.meta, &standardizer);
  registry.Register("aw-moe", &model);
  ServingEngine engine(&registry);
  std::printf("Engine gate sharing: %s (recommendation mode)\n",
              engine.GateSharingActive() ? "ON" : "OFF");

  // Top-K recommendation: take a positive test example as the user's
  // state, swap in candidate items, and rank by predicted score. The
  // candidate pool always contains the user's true next item.
  Rng candidate_rng(static_cast<uint64_t>(seed) + 3);
  int64_t shown = 0;
  for (const Example& ex : data.test) {
    if (ex.label < 0.5f || shown >= show_users) continue;
    ++shown;

    std::vector<Example> pool;
    pool.push_back(ex);  // The true next item.
    while (static_cast<int64_t>(pool.size()) < candidates) {
      Example candidate = ex;
      candidate.target_item =
          candidate_rng.UniformInt(1, data.meta.num_items);
      pool.push_back(candidate);
    }
    RankRequest request;
    request.session_id = ex.session_id;
    for (const Example& candidate : pool) request.items.push_back(&candidate);
    std::vector<double> pool_scores = engine.Rank(request).scores;
    std::vector<size_t> order(pool.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return pool_scores[a] > pool_scores[b];
    });

    TablePrinter table(StrFormat(
        "User %lld (history %lld reviews) — top-%lld recommendations",
        static_cast<long long>(ex.user_id),
        static_cast<long long>(ex.history_len),
        static_cast<long long>(top_k)));
    table.SetHeader({"Rank", "Item", "Score", "True next item"});
    for (int64_t r = 0; r < top_k &&
                        r < static_cast<int64_t>(order.size());
         ++r) {
      const Example& c = pool[order[static_cast<size_t>(r)]];
      table.AddRow({std::to_string(r + 1), std::to_string(c.target_item),
                    FormatDouble(pool_scores[order[static_cast<size_t>(r)]], 4),
                    order[static_cast<size_t>(r)] == 0 ? "<-- actual" : ""});
    }
    table.Print();
    // Where did the actual item land?
    for (size_t r = 0; r < order.size(); ++r) {
      if (order[r] == 0) {
        std::printf("  actual next item ranked %zu of %zu candidates\n\n",
                    r + 1, order.size());
        break;
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
