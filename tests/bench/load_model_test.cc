// Deterministic traffic models behind the serving benches
// (bench/common/load_model.h): Zipf popularity, non-homogeneous
// arrival traces, and stable synthetic session ids. These generators
// feed bench_serving_longtail and bench_fleet_load; fixed-seed
// determinism is what makes those runs comparable across commits.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/load_model.h"

namespace awmoe {
namespace bench {
namespace {

TEST(ZipfSamplerTest, SameSeedSameDraws) {
  ZipfSampler a(1000, 1.1, 42);
  ZipfSampler b(1000, 1.1, 42);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.Next(), b.Next()) << "draw " << i;
  }
}

TEST(ZipfSamplerTest, DifferentSeedsDiffer) {
  ZipfSampler a(1000, 1.1, 42);
  ZipfSampler b(1000, 1.1, 43);
  int differing = 0;
  for (int i = 0; i < 500; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(ZipfSamplerTest, DrawsStayInRangeAndHeadIsHot) {
  const int64_t n = 1000;
  ZipfSampler zipf(n, 1.1, 7);
  int64_t head_draws = 0;
  for (int i = 0; i < 5000; ++i) {
    const int64_t rank = zipf.Next();
    ASSERT_GE(rank, 0);
    ASSERT_LT(rank, n);
    if (rank < n / 100) ++head_draws;
  }
  // s = 1.1 concentrates well over a third of the mass on the top 1%.
  const double head_mass = zipf.MassOfTop(n / 100);
  EXPECT_GT(head_mass, 0.35);
  EXPECT_NEAR(static_cast<double>(head_draws) / 5000.0, head_mass, 0.05);
}

TEST(ZipfSamplerTest, MassOfTopIsAMonotoneCdf) {
  ZipfSampler zipf(100, 1.0, 1);
  EXPECT_DOUBLE_EQ(zipf.MassOfTop(0), 0.0);
  EXPECT_DOUBLE_EQ(zipf.MassOfTop(100), 1.0);
  EXPECT_DOUBLE_EQ(zipf.MassOfTop(1000), 1.0);  // Clamped past n.
  double prev = 0.0;
  for (int64_t k = 1; k <= 100; ++k) {
    const double mass = zipf.MassOfTop(k);
    EXPECT_GE(mass, prev);
    prev = mass;
  }
  // Exponent 0 degenerates to uniform.
  ZipfSampler uniform(100, 0.0, 1);
  EXPECT_NEAR(uniform.MassOfTop(50), 0.5, 1e-12);
}

TEST(ZipfSamplerTest, EdgeCasesStayInBounds) {
  // Negative / zero k clamp to 0 mass, k at or past n clamps to 1.
  ZipfSampler zipf(10, 1.1, 3);
  EXPECT_DOUBLE_EQ(zipf.MassOfTop(-5), 0.0);
  EXPECT_DOUBLE_EQ(zipf.MassOfTop(0), 0.0);
  EXPECT_DOUBLE_EQ(zipf.MassOfTop(10), 1.0);
  EXPECT_DOUBLE_EQ(zipf.MassOfTop(15), 1.0);

  // n = 1: the only rank absorbs all mass and every draw.
  ZipfSampler single(1, 1.1, 4);
  EXPECT_DOUBLE_EQ(single.MassOfTop(1), 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(single.Next(), 0);

  // Extreme exponents stress the renormalisation: the CDF must end at
  // exactly 1.0 and every draw must stay a valid rank (the tail-draw
  // OOB regression this guards against came from accumulated FP drift
  // pushing cdf_.back() below the largest uniform draw).
  for (const double exponent : {0.0, 0.5, 3.0, 8.0}) {
    ZipfSampler stress(257, exponent, 11);
    EXPECT_DOUBLE_EQ(stress.MassOfTop(257), 1.0);
    double prev = 0.0;
    for (int64_t k = 1; k <= 257; ++k) {
      const double mass = stress.MassOfTop(k);
      EXPECT_GE(mass, prev) << "exponent " << exponent << " k " << k;
      EXPECT_LE(mass, 1.0) << "exponent " << exponent << " k " << k;
      prev = mass;
    }
    for (int i = 0; i < 2000; ++i) {
      const int64_t rank = stress.Next();
      ASSERT_GE(rank, 0) << "exponent " << exponent;
      ASSERT_LT(rank, 257) << "exponent " << exponent;
    }
  }
}

ArrivalTraceConfig SmallTrace() {
  ArrivalTraceConfig config;
  config.duration_s = 2.0;
  config.base_rate_qps = 500.0;
  config.diurnal_amplitude = 0.3;
  config.diurnal_period_s = 2.0;
  config.burst_multiplier = 3.0;
  config.burst_duration_s = 0.1;
  config.burst_interval_s = 0.5;
  config.seed = 99;
  return config;
}

TEST(ArrivalTraceTest, DeterministicSortedAndInRange) {
  const ArrivalTraceConfig config = SmallTrace();
  const std::vector<double> a = GenerateArrivals(config);
  const std::vector<double> b = GenerateArrivals(config);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_GE(a.front(), 0.0);
  EXPECT_LT(a.back(), config.duration_s);
  // Roughly the configured volume (Poisson noise + bursts allow slack).
  const double expected = config.base_rate_qps * config.duration_s;
  EXPECT_GT(static_cast<double>(a.size()), 0.5 * expected);
  EXPECT_LT(static_cast<double>(a.size()), 3.0 * expected);
}

TEST(ArrivalTraceTest, RateShapeHasCleanBaselineAndBursts) {
  const ArrivalTraceConfig config = SmallTrace();
  // t = 0: no burst (they start at t = interval), sine at phase 0.
  EXPECT_DOUBLE_EQ(ArrivalRateAt(config, 0.0), config.base_rate_qps);
  // Inside the first burst window the multiplier applies.
  const double bursting = ArrivalRateAt(config, config.burst_interval_s);
  EXPECT_GT(bursting,
            2.0 * ArrivalRateAt(config, config.burst_interval_s - 0.05));
  // Flat config: constant rate everywhere.
  ArrivalTraceConfig flat = SmallTrace();
  flat.diurnal_amplitude = 0.0;
  flat.burst_multiplier = 1.0;
  for (double t = 0.0; t < flat.duration_s; t += 0.37) {
    EXPECT_DOUBLE_EQ(ArrivalRateAt(flat, t), flat.base_rate_qps);
  }
}

TEST(ArrivalTraceTest, SeedChangesTimestampsNotShape) {
  ArrivalTraceConfig config = SmallTrace();
  const std::vector<double> a = GenerateArrivals(config);
  config.seed = 100;
  const std::vector<double> b = GenerateArrivals(config);
  EXPECT_NE(a, b);
  // Same intensity function -> comparable volume.
  EXPECT_NEAR(static_cast<double>(a.size()),
              static_cast<double>(b.size()),
              0.35 * static_cast<double>(a.size()));
}

TEST(SyntheticSessionIdTest, StableNonNegativeAndScattered) {
  std::set<int64_t> seen;
  for (int64_t rank = 0; rank < 10000; ++rank) {
    const int64_t id = SyntheticSessionId(rank);
    EXPECT_GE(id, 0);
    EXPECT_EQ(id, SyntheticSessionId(rank));  // Stable across calls.
    seen.insert(id);
  }
  // A full-avalanche mix should not collide over a small range.
  EXPECT_EQ(seen.size(), 10000u);
  // Neighbouring ranks land far apart (no clustering of the Zipf head).
  EXPECT_GT(std::abs(SyntheticSessionId(0) - SyntheticSessionId(1)),
            int64_t{1} << 32);
}

}  // namespace
}  // namespace bench
}  // namespace awmoe
