#include "nn/linear.h"

#include <gtest/gtest.h>

#include "mat/kernels.h"
#include "util/rng.h"

namespace awmoe {
namespace {

TEST(LinearTest, OutputShape) {
  Rng rng(1);
  Linear layer(8, 3, &rng);
  Var x(Matrix::Full(5, 8, 0.1f));
  Var y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 3);
}

TEST(LinearTest, BiasStartsZeroWeightsNot) {
  Rng rng(2);
  Linear layer(4, 4, &rng);
  EXPECT_TRUE(AllClose(layer.bias().value(), Matrix(1, 4), 0.0f));
  EXPECT_GT(Norm(layer.weight().value()), 0.0);
}

TEST(LinearTest, ForwardMatchesManualComputation) {
  Rng rng(3);
  Linear layer(2, 2, &rng);
  Var x(Matrix::FromVector(1, 2, {1.0f, 2.0f}));
  Matrix expected = AddRowBroadcast(
      MatMul(x.value(), layer.weight().value()), layer.bias().value());
  EXPECT_TRUE(AllClose(layer.Forward(x).value(), expected, 1e-6f));
}

TEST(LinearTest, ParametersCollected) {
  Rng rng(4);
  Linear layer(3, 2, &rng);
  auto params = layer.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(layer.NumParameters(), 3 * 2 + 2);
  for (const Var& p : params) EXPECT_TRUE(p.requires_grad());
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(5);
  Linear layer(3, 1, &rng);
  Var x(Matrix::Full(4, 3, 1.0f));
  Var loss = ag::MeanAll(layer.Forward(x));
  loss.Backward();
  EXPECT_TRUE(layer.weight().has_grad());
  EXPECT_TRUE(layer.bias().has_grad());
}

TEST(LinearDeathTest, WrongInputDimChecks) {
  Rng rng(6);
  Linear layer(3, 2, &rng);
  Var x(Matrix(2, 5));
  EXPECT_DEATH(layer.Forward(x), "input dim");
}

}  // namespace
}  // namespace awmoe
