#include "nn/mlp.h"

#include <gtest/gtest.h>

#include "mat/kernels.h"
#include "util/rng.h"

namespace awmoe {
namespace {

TEST(MlpTest, ShapesThroughStack) {
  Rng rng(1);
  Mlp mlp(10, {64, 32, 1}, &rng);
  EXPECT_EQ(mlp.input_dim(), 10);
  EXPECT_EQ(mlp.output_dim(), 1);
  EXPECT_EQ(mlp.num_layers(), 3u);
  Var x(Matrix::Full(7, 10, 0.5f));
  Var y = mlp.Forward(x);
  EXPECT_EQ(y.rows(), 7);
  EXPECT_EQ(y.cols(), 1);
}

TEST(MlpTest, ParameterCount) {
  Rng rng(2);
  Mlp mlp(4, {8, 2}, &rng);
  // (4*8 + 8) + (8*2 + 2) = 40 + 18.
  EXPECT_EQ(mlp.NumParameters(), 58);
}

TEST(MlpTest, HiddenReluActive) {
  Rng rng(3);
  // Single hidden layer with relu_output: all outputs must be >= 0.
  Mlp mlp(4, {8}, &rng, /*relu_output=*/true);
  Matrix x(16, 4);
  Rng data_rng(99);
  for (int64_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(data_rng.Normal());
  }
  Matrix y = mlp.Forward(Var(x)).value();
  EXPECT_GE(MinAll(y), 0.0f);
}

TEST(MlpTest, LinearOutputCanBeNegative) {
  Rng rng(4);
  Mlp mlp(4, {8, 1}, &rng);
  Matrix x(64, 4);
  Rng data_rng(7);
  for (int64_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(data_rng.Normal());
  }
  Matrix y = mlp.Forward(Var(x)).value();
  EXPECT_LT(MinAll(y), 0.0f);
}

TEST(MlpTest, GradFlowsToAllLayers) {
  Rng rng(5);
  Mlp mlp(3, {4, 4, 1}, &rng);
  Var x(Matrix::Full(2, 3, 0.3f));
  ag::MeanAll(mlp.Forward(x)).Backward();
  for (const Var& p : mlp.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(MlpDeathTest, EmptyDimsCheck) {
  Rng rng(6);
  EXPECT_DEATH(Mlp(4, {}, &rng), "at least one layer");
}

}  // namespace
}  // namespace awmoe
