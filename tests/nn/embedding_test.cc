#include "nn/embedding.h"

#include <gtest/gtest.h>

#include "mat/kernels.h"
#include "util/rng.h"

namespace awmoe {
namespace {

TEST(EmbeddingTest, LookupShape) {
  Rng rng(1);
  EmbeddingTable table(100, 8, &rng);
  Var out = table.Forward({3, 7, 3});
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 8);
}

TEST(EmbeddingTest, SameIdSameVector) {
  Rng rng(2);
  EmbeddingTable table(10, 4, &rng);
  Matrix out = table.Forward({5, 5}).value();
  for (int64_t c = 0; c < 4; ++c) EXPECT_EQ(out(0, c), out(1, c));
}

TEST(EmbeddingTest, PaddingRowZeroed) {
  Rng rng(3);
  EmbeddingTable table(10, 4, &rng);
  table.InitPaddingToZero();
  Matrix out = table.Forward({0}).value();
  EXPECT_TRUE(AllClose(out, Matrix(1, 4), 0.0f));
}

TEST(EmbeddingTest, GradientAccumulatesOnRepeatedIds) {
  Rng rng(4);
  EmbeddingTable table(5, 2, &rng);
  Var out = table.Forward({1, 1, 2});
  ag::SumAll(out).Backward();
  const Matrix& g = table.table().grad();
  EXPECT_EQ(g(1, 0), 2.0f);  // id 1 used twice.
  EXPECT_EQ(g(2, 0), 1.0f);
  EXPECT_EQ(g(0, 0), 0.0f);  // untouched.
}

TEST(EmbeddingTest, ParametersExposed) {
  Rng rng(5);
  EmbeddingTable table(20, 3, &rng);
  EXPECT_EQ(table.NumParameters(), 60);
}

TEST(EmbeddingDeathTest, OutOfVocabChecks) {
  Rng rng(6);
  EmbeddingTable table(4, 2, &rng);
  EXPECT_DEATH(table.Forward({4}), "out of");
}

}  // namespace
}  // namespace awmoe
