#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "mat/kernels.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "util/rng.h"

namespace awmoe {
namespace {

// Minimises f(w) = mean((w - target)^2) and returns final w for a 1-element
// parameter, to verify each optimizer actually descends.
template <typename MakeOpt>
float MinimiseQuadratic(MakeOpt make_opt, int steps) {
  Var w(Matrix::Full(1, 1, 5.0f), /*requires_grad=*/true);
  auto opt = make_opt(std::vector<Var>{w});
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    Var diff = ag::AddScalar(w, -2.0f);  // target = 2.
    Var loss = ag::MeanAll(ag::Mul(diff, diff));
    loss.Backward();
    opt->Step();
  }
  return w.value()(0, 0);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  float w = MinimiseQuadratic(
      [](std::vector<Var> p) {
        return std::make_unique<Sgd>(std::move(p), 0.1f);
      },
      200);
  EXPECT_NEAR(w, 2.0f, 1e-3f);
}

TEST(SgdTest, MomentumConverges) {
  float w = MinimiseQuadratic(
      [](std::vector<Var> p) {
        return std::make_unique<Sgd>(std::move(p), 0.05f, 0.9f);
      },
      300);
  EXPECT_NEAR(w, 2.0f, 1e-2f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  float w = MinimiseQuadratic(
      [](std::vector<Var> p) {
        return std::make_unique<Adam>(std::move(p), 0.1f);
      },
      500);
  EXPECT_NEAR(w, 2.0f, 1e-2f);
}

TEST(AdamWTest, ConvergesOnQuadratic) {
  float w = MinimiseQuadratic(
      [](std::vector<Var> p) {
        return std::make_unique<AdamW>(std::move(p), 0.1f, 1e-4f);
      },
      500);
  EXPECT_NEAR(w, 2.0f, 5e-2f);
}

TEST(AdamWTest, DecayShrinksUnusedDirection) {
  // With pure decay (zero gradient), AdamW shrinks weights; Adam leaves
  // them, since its decay is coupled through the gradient (none here).
  Var w_adamw(Matrix::Full(1, 1, 1.0f), true);
  AdamW adamw({w_adamw}, /*lr=*/0.1f, /*weight_decay=*/0.5f);
  // Give it a zero gradient so only decay acts.
  internal_ag::AccumulateGrad(w_adamw.impl().get(), Matrix(1, 1));
  adamw.Step();
  EXPECT_LT(w_adamw.value()(0, 0), 1.0f);
}

TEST(OptimizerTest, SkipsParamsWithoutGrad) {
  Var used(Matrix::Full(1, 1, 1.0f), true);
  Var unused(Matrix::Full(1, 1, 1.0f), true);
  Sgd opt({used, unused}, 0.5f);
  ag::MeanAll(ag::Mul(used, used)).Backward();
  opt.Step();
  EXPECT_NE(used.value()(0, 0), 1.0f);
  EXPECT_EQ(unused.value()(0, 0), 1.0f);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  Var a(Matrix::Full(1, 1, 1.0f), true);
  Sgd opt({a}, 0.1f);
  ag::MeanAll(ag::Mul(a, a)).Backward();
  EXPECT_TRUE(a.has_grad());
  opt.ZeroGrad();
  EXPECT_FALSE(a.has_grad());
}

TEST(ClipGradNormTest, ClipsLargeGradients) {
  Var a(Matrix::Full(1, 2, 1.0f), true);
  internal_ag::AccumulateGrad(a.impl().get(),
                              Matrix::FromVector(1, 2, {3.0f, 4.0f}));
  std::vector<Var> params = {a};
  double pre = ClipGradNorm(&params, 1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(Norm(a.grad()), 1.0, 1e-5);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Var a(Matrix::Full(1, 2, 1.0f), true);
  internal_ag::AccumulateGrad(a.impl().get(),
                              Matrix::FromVector(1, 2, {0.3f, 0.4f}));
  std::vector<Var> params = {a};
  ClipGradNorm(&params, 1.0);
  EXPECT_NEAR(Norm(a.grad()), 0.5, 1e-6);
}

TEST(TrainingIntegrationTest, MlpLearnsXor) {
  // End-to-end learning sanity: a small MLP must fit XOR.
  Rng rng(42);
  Mlp mlp(2, {8, 1}, &rng);
  AdamW opt(mlp.Parameters(), 0.05f, 0.0f);

  Matrix x = Matrix::FromVector(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
  Matrix y = Matrix::ColVector({0, 1, 1, 0});

  float final_loss = 1e9f;
  for (int epoch = 0; epoch < 800; ++epoch) {
    opt.ZeroGrad();
    Var logits = mlp.Forward(Var(x));
    Var loss = ag::BceWithLogitsLoss(logits, y);
    loss.Backward();
    opt.Step();
    final_loss = loss.value()(0, 0);
  }
  EXPECT_LT(final_loss, 0.1f);

  // Predictions on all four corners must be on the right side of 0.5.
  NoGradGuard guard;
  Matrix probs = Sigmoid(mlp.Forward(Var(x)).value());
  EXPECT_LT(probs(0, 0), 0.5f);
  EXPECT_GT(probs(1, 0), 0.5f);
  EXPECT_GT(probs(2, 0), 0.5f);
  EXPECT_LT(probs(3, 0), 0.5f);
}

}  // namespace
}  // namespace awmoe
