#include "gbdt/gbdt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "util/rng.h"

namespace awmoe {
namespace {

/// Labels depend on feature 0 (strongly), feature 2 (weakly); features 1,
/// 3 are noise.
void MakeDataset(int64_t n, Matrix* x, std::vector<float>* y,
                 uint64_t seed) {
  Rng rng(seed);
  *x = Matrix(n, 4);
  y->resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < 4; ++c) {
      (*x)(i, c) = static_cast<float>(rng.Normal());
    }
    double margin = 2.0 * (*x)(i, 0) + 0.6 * (*x)(i, 2);
    double p = 1.0 / (1.0 + std::exp(-margin));
    (*y)[static_cast<size_t>(i)] = rng.Bernoulli(p) ? 1.0f : 0.0f;
  }
}

TEST(GbdtTest, LearnsSeparableProblem) {
  Matrix x;
  std::vector<float> y;
  MakeDataset(2000, &x, &y, 1);
  GbdtClassifier model;
  ASSERT_TRUE(model.Fit(x, y).ok());

  Matrix x_test;
  std::vector<float> y_test;
  MakeDataset(500, &x_test, &y_test, 2);
  std::vector<double> probs = model.PredictProba(x_test);
  EXPECT_GT(AucOf(y_test, probs), 0.85);
}

TEST(GbdtTest, FeatureImportanceIdentifiesSignal) {
  Matrix x;
  std::vector<float> y;
  MakeDataset(2000, &x, &y, 3);
  GbdtClassifier model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  std::vector<double> importance = model.FeatureImportanceGain();
  ASSERT_EQ(importance.size(), 4u);
  // Feature 0 dominates; noise features are negligible.
  EXPECT_GT(importance[0], importance[1]);
  EXPECT_GT(importance[0], importance[3]);
  EXPECT_GT(importance[0], importance[2]);
  EXPECT_GT(importance[2], importance[1]);
  EXPECT_GT(importance[0], 0.5);
}

TEST(GbdtTest, ImportancesSumToOne) {
  Matrix x;
  std::vector<float> y;
  MakeDataset(800, &x, &y, 4);
  GbdtClassifier model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  std::vector<double> importance = model.FeatureImportanceGain();
  double total = 0.0;
  for (double v : importance) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GbdtTest, ProbabilitiesInUnitInterval) {
  Matrix x;
  std::vector<float> y;
  MakeDataset(500, &x, &y, 5);
  GbdtClassifier model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  for (double p : model.PredictProba(x)) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST(GbdtTest, RejectsSingleClass) {
  Matrix x(10, 2);
  std::vector<float> y(10, 1.0f);
  GbdtClassifier model;
  EXPECT_EQ(model.Fit(x, y).code(), StatusCode::kInvalidArgument);
}

TEST(GbdtTest, RejectsSizeMismatch) {
  Matrix x(10, 2);
  std::vector<float> y(9, 0.0f);
  GbdtClassifier model;
  EXPECT_EQ(model.Fit(x, y).code(), StatusCode::kInvalidArgument);
}

TEST(GbdtTest, MoreTreesFitBetterOnTrain) {
  Matrix x;
  std::vector<float> y;
  MakeDataset(600, &x, &y, 6);

  GbdtConfig small;
  small.num_trees = 3;
  GbdtClassifier few(small);
  ASSERT_TRUE(few.Fit(x, y).ok());

  GbdtConfig large;
  large.num_trees = 40;
  GbdtClassifier many(large);
  ASSERT_TRUE(many.Fit(x, y).ok());

  EXPECT_GT(AucOf(y, many.PredictProba(x)), AucOf(y, few.PredictProba(x)));
}

TEST(GbdtTest, DepthOneIsStumps) {
  Matrix x;
  std::vector<float> y;
  MakeDataset(600, &x, &y, 7);
  GbdtConfig config;
  config.max_depth = 1;
  GbdtClassifier model(config);
  ASSERT_TRUE(model.Fit(x, y).ok());
  // Stumps still learn the dominant feature.
  EXPECT_GT(AucOf(y, model.PredictProba(x)), 0.75);
}

TEST(GbdtTest, InteractionRequiresDepth) {
  // XOR-of-signs: depth-1 stumps cannot fit, depth-3 can.
  Rng rng(8);
  Matrix x(1500, 2);
  std::vector<float> y(1500);
  for (int64_t i = 0; i < 1500; ++i) {
    x(i, 0) = static_cast<float>(rng.Normal());
    x(i, 1) = static_cast<float>(rng.Normal());
    bool positive = (x(i, 0) > 0) != (x(i, 1) > 0);
    y[static_cast<size_t>(i)] = positive ? 1.0f : 0.0f;
  }
  GbdtConfig stump_config;
  stump_config.max_depth = 1;
  stump_config.num_trees = 20;
  GbdtClassifier stumps(stump_config);
  ASSERT_TRUE(stumps.Fit(x, y).ok());

  GbdtConfig deep_config;
  deep_config.max_depth = 3;
  deep_config.num_trees = 20;
  GbdtClassifier deep(deep_config);
  ASSERT_TRUE(deep.Fit(x, y).ok());

  double stump_auc = AucOf(y, stumps.PredictProba(x));
  double deep_auc = AucOf(y, deep.PredictProba(x));
  EXPECT_LT(stump_auc, 0.6);
  EXPECT_GT(deep_auc, 0.9);
}

}  // namespace
}  // namespace awmoe
