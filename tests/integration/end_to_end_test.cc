// Integration tests: the full pipeline — synthetic corpus -> training ->
// evaluation — exercised across modules, asserting the learning-dynamics
// properties the benches rely on.

#include <gtest/gtest.h>

#include "core/aw_moe.h"
#include "core/trainer.h"
#include "data/amazon_synthetic.h"
#include "data/jd_synthetic.h"
#include "eval/metrics.h"
#include "models/category_moe.h"
#include "models/dnn_ranker.h"

namespace awmoe {
namespace {

ModelDims SmallDims() {
  ModelDims dims;
  dims.emb_dim = 6;
  dims.tower_mlp = {16, 12};
  dims.activation_unit = {8, 6};
  dims.gate_unit = {8, 6};
  dims.expert = {32, 16};
  dims.num_experts = 4;
  return dims;
}

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    JdConfig jd;
    jd.num_users = 1200;
    jd.num_items = 600;
    jd.num_categories = 12;
    jd.brands_per_category = 5;
    jd.num_shops = 30;
    jd.train_sessions = 2500;
    jd.test_sessions = 250;
    jd.longtail1_sessions = 80;
    jd.longtail2_sessions = 80;
    jd.seed = 20230608;
    data_ = new JdDataset(JdSyntheticGenerator(jd).Generate());
    standardizer_ = new Standardizer();
    standardizer_->Fit(data_->train);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete standardizer_;
    data_ = nullptr;
    standardizer_ = nullptr;
  }

  static double TrainAndEvaluate(Ranker* model, int64_t epochs,
                                 bool contrastive = false) {
    TrainerConfig config;
    config.epochs = epochs;
    config.batch_size = 128;
    config.lr = 3e-3f;
    config.weight_decay = 3e-4f;
    config.contrastive = contrastive;
    Trainer trainer(model, config);
    trainer.Train(data_->train, data_->meta, standardizer_);
    auto scores =
        Predict(model, data_->full_test, data_->meta, standardizer_);
    return EvaluateRanking(data_->full_test, scores).auc;
  }

  static JdDataset* data_;
  static Standardizer* standardizer_;
};

JdDataset* EndToEndTest::data_ = nullptr;
Standardizer* EndToEndTest::standardizer_ = nullptr;

TEST_F(EndToEndTest, AwMoeLearnsWellAboveChance) {
  Rng rng(1);
  AwMoeConfig config;
  config.dims = SmallDims();
  AwMoeRanker model(data_->meta, config, &rng);
  double auc = TrainAndEvaluate(&model, 2);
  EXPECT_GT(auc, 0.65) << "AW-MoE must learn the synthetic structure";
}

TEST_F(EndToEndTest, ContrastiveTrainingDoesNotHurtOverall) {
  Rng rng(2);
  AwMoeConfig config;
  config.dims = SmallDims();
  AwMoeRanker model(data_->meta, config, &rng);
  double auc = TrainAndEvaluate(&model, 2, /*contrastive=*/true);
  EXPECT_GT(auc, 0.64);
}

TEST_F(EndToEndTest, OracleBeatsEveryModel) {
  std::vector<double> oracle;
  for (const Example& ex : data_->full_test) {
    oracle.push_back(ex.oracle_utility);
  }
  double oracle_auc = EvaluateRanking(data_->full_test, oracle).auc;
  EXPECT_GT(oracle_auc, 0.8);

  Rng rng(3);
  DnnRanker dnn(data_->meta, SmallDims(), &rng);
  double dnn_auc = TrainAndEvaluate(&dnn, 2);
  EXPECT_GT(oracle_auc, dnn_auc);
}

TEST_F(EndToEndTest, AmazonRecommendationPipelineLearns) {
  AmazonConfig config;
  config.num_users = 3000;
  config.num_items = 800;
  config.num_categories = 10;
  config.brands_per_category = 4;
  config.seed = 5;
  AmazonDataset data = AmazonSyntheticGenerator(config).Generate();
  Standardizer standardizer;
  standardizer.Fit(data.train);

  Rng rng(6);
  AwMoeConfig aw_config;
  aw_config.dims = SmallDims();
  AwMoeRanker model(data.meta, aw_config, &rng);
  TrainerConfig tc;
  tc.epochs = 2;
  tc.batch_size = 128;
  tc.lr = 3e-3f;
  Trainer trainer(&model, tc);
  trainer.Train(data.train, data.meta, &standardizer);

  auto scores = Predict(&model, data.test, data.meta, &standardizer);
  std::vector<float> labels;
  for (const Example& ex : data.test) labels.push_back(ex.label);
  EXPECT_GT(OverallAuc(labels, scores), 0.6);
}

TEST_F(EndToEndTest, GateRepresentationsDifferAcrossUserGroups) {
  // The Fig. 7 premise: after training, new users and experienced users
  // produce different gate activations on average.
  Rng rng(7);
  AwMoeConfig config;
  config.dims = SmallDims();
  AwMoeRanker model(data_->meta, config, &rng);
  TrainAndEvaluate(&model, 2);

  NoGradGuard guard;
  std::vector<double> new_user_gate, old_user_gate;
  int64_t taken_new = 0, taken_old = 0;
  for (const Example& ex : data_->full_test) {
    bool is_new = ex.user_group == UserGroup::kNewUser;
    if ((is_new && taken_new >= 40) || (!is_new && taken_old >= 40)) {
      continue;
    }
    Batch one = CollateBatch({&ex}, data_->meta, standardizer_);
    Matrix g = model.GateRepresentation(one).value();
    double norm_sq = 0.0;
    for (int64_t k = 0; k < g.cols(); ++k) {
      norm_sq += static_cast<double>(g(0, k)) * g(0, k);
    }
    if (is_new) {
      new_user_gate.push_back(norm_sq);
      ++taken_new;
    } else {
      old_user_gate.push_back(norm_sq);
      ++taken_old;
    }
  }
  ASSERT_GT(new_user_gate.size(), 5u);
  ASSERT_GT(old_user_gate.size(), 5u);
  double mean_new = 0.0, mean_old = 0.0;
  for (double v : new_user_gate) mean_new += v;
  for (double v : old_user_gate) mean_old += v;
  mean_new /= new_user_gate.size();
  mean_old /= old_user_gate.size();
  EXPECT_NE(mean_new, mean_old);
  // New users all share the bias-only gate: zero variance.
  double var_new = 0.0;
  for (double v : new_user_gate) {
    var_new += (v - mean_new) * (v - mean_new);
  }
  EXPECT_NEAR(var_new / new_user_gate.size(), 0.0, 1e-6);
}

TEST_F(EndToEndTest, PaperScaleDimsConstructAndForward) {
  // The published layer sizes must work even if benches default smaller.
  Rng rng(8);
  AwMoeConfig config;
  config.dims = ModelDims::PaperScale();
  AwMoeRanker model(data_->meta, config, &rng);
  std::vector<const Example*> slice = {&data_->full_test[0],
                                       &data_->full_test[1]};
  Batch batch = CollateBatch(slice, data_->meta, standardizer_);
  Var logits = model.ForwardLogits(batch);
  EXPECT_EQ(logits.rows(), 2);
  EXPECT_GT(model.NumParameters(), 500000);
}

}  // namespace
}  // namespace awmoe
