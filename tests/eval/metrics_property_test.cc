// Property tests on the ranking metrics: invariances every correct AUC /
// NDCG implementation must satisfy, swept over randomized list sizes.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "util/rng.h"

namespace awmoe {
namespace {

struct Lists {
  std::vector<float> labels;
  std::vector<double> scores;
};

Lists RandomLists(int64_t n, Rng* rng) {
  Lists lists;
  bool has_pos = false, has_neg = false;
  for (int64_t i = 0; i < n; ++i) {
    bool pos = rng->Bernoulli(0.3);
    has_pos |= pos;
    has_neg |= !pos;
    lists.labels.push_back(pos ? 1.0f : 0.0f);
    lists.scores.push_back(rng->Uniform());
  }
  // Guarantee both classes.
  if (!has_pos) lists.labels[0] = 1.0f;
  if (!has_neg) lists.labels[static_cast<size_t>(n - 1)] = 0.0f;
  return lists;
}

class MetricsPropertyTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(MetricsPropertyTest, AucInvariantUnderMonotoneTransform) {
  Rng rng(GetParam() * 11 + 1);
  Lists lists = RandomLists(GetParam(), &rng);
  double base = AucOf(lists.labels, lists.scores);
  std::vector<double> transformed = lists.scores;
  for (double& s : transformed) s = std::exp(3.0 * s) + 7.0;
  EXPECT_NEAR(AucOf(lists.labels, transformed), base, 1e-12);
}

TEST_P(MetricsPropertyTest, AucComplementUnderScoreNegation) {
  Rng rng(GetParam() * 13 + 2);
  Lists lists = RandomLists(GetParam(), &rng);
  double base = AucOf(lists.labels, lists.scores);
  std::vector<double> negated = lists.scores;
  for (double& s : negated) s = -s;
  EXPECT_NEAR(AucOf(lists.labels, negated), 1.0 - base, 1e-12);
}

TEST_P(MetricsPropertyTest, AucPermutationInvariant) {
  Rng rng(GetParam() * 17 + 3);
  Lists lists = RandomLists(GetParam(), &rng);
  double base = AucOf(lists.labels, lists.scores);
  std::vector<size_t> perm(lists.labels.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::vector<int64_t> perm64(perm.begin(), perm.end());
  rng.Shuffle(&perm64);
  Lists shuffled;
  for (int64_t p : perm64) {
    shuffled.labels.push_back(lists.labels[static_cast<size_t>(p)]);
    shuffled.scores.push_back(lists.scores[static_cast<size_t>(p)]);
  }
  EXPECT_NEAR(AucOf(shuffled.labels, shuffled.scores), base, 1e-12);
}

TEST_P(MetricsPropertyTest, AucInUnitInterval) {
  Rng rng(GetParam() * 19 + 4);
  Lists lists = RandomLists(GetParam(), &rng);
  double auc = AucOf(lists.labels, lists.scores);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
}

TEST_P(MetricsPropertyTest, NdcgInUnitIntervalAndMonotoneInvariant) {
  Rng rng(GetParam() * 23 + 5);
  Lists lists = RandomLists(GetParam(), &rng);
  for (int64_t k : {int64_t{0}, int64_t{3}, GetParam()}) {
    double ndcg = NdcgOf(lists.labels, lists.scores, k);
    EXPECT_GE(ndcg, 0.0);
    EXPECT_LE(ndcg, 1.0 + 1e-12);
    std::vector<double> transformed = lists.scores;
    for (double& s : transformed) s = 10.0 * s - 2.0;
    EXPECT_NEAR(NdcgOf(lists.labels, transformed, k), ndcg, 1e-12);
  }
}

TEST_P(MetricsPropertyTest, NdcgPerfectRankingIsOne) {
  Rng rng(GetParam() * 29 + 6);
  Lists lists = RandomLists(GetParam(), &rng);
  // Score = label: ideal ordering.
  std::vector<double> ideal_scores(lists.labels.begin(), lists.labels.end());
  EXPECT_NEAR(NdcgOf(lists.labels, ideal_scores, 0), 1.0, 1e-12);
}

TEST_P(MetricsPropertyTest, OracleBeatsShuffledScores) {
  // Ranking by a signal correlated with labels must beat random ranking.
  Rng rng(GetParam() * 31 + 7);
  std::vector<float> labels;
  std::vector<double> good, random;
  for (int64_t i = 0; i < GetParam() * 10; ++i) {
    float label = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    labels.push_back(label);
    good.push_back(label + rng.Normal(0.0, 0.5));
    random.push_back(rng.Uniform());
  }
  EXPECT_GT(AucOf(labels, good), AucOf(labels, random));
}

TEST_P(MetricsPropertyTest, PairedTTestDetectsConstantShift) {
  Rng rng(GetParam() * 37 + 8);
  std::vector<double> a, b;
  for (int64_t i = 0; i < 30 + GetParam() * 5; ++i) {
    double base = rng.Uniform();
    b.push_back(base);
    a.push_back(base + 0.02);  // Deterministic shift: p must be tiny.
  }
  EXPECT_LT(PairedTTestPValue(a, b), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(ListSizes, MetricsPropertyTest,
                         ::testing::Values(3, 5, 10, 25, 80));

}  // namespace
}  // namespace awmoe
