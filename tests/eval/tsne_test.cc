#include "eval/tsne.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/cluster_metrics.h"
#include "util/rng.h"

namespace awmoe {
namespace {

/// Three well-separated Gaussian blobs in 6-D.
Matrix MakeBlobs(int64_t per_blob, std::vector<int64_t>* labels,
                 uint64_t seed) {
  Rng rng(seed);
  Matrix points(3 * per_blob, 6);
  labels->clear();
  for (int64_t blob = 0; blob < 3; ++blob) {
    for (int64_t i = 0; i < per_blob; ++i) {
      int64_t row = blob * per_blob + i;
      for (int64_t c = 0; c < 6; ++c) {
        double center = (c == blob) ? 8.0 : 0.0;
        points(row, c) = static_cast<float>(rng.Normal(center, 0.5));
      }
      labels->push_back(blob);
    }
  }
  return points;
}

TEST(TsneTest, OutputShapeAndFiniteness) {
  std::vector<int64_t> labels;
  Matrix points = MakeBlobs(20, &labels, 1);
  TsneOptions options;
  options.iterations = 150;
  Matrix embedding = TsneEmbed(points, options);
  EXPECT_EQ(embedding.rows(), 60);
  EXPECT_EQ(embedding.cols(), 2);
  for (int64_t i = 0; i < embedding.size(); ++i) {
    EXPECT_TRUE(std::isfinite(embedding.data()[i]));
  }
}

TEST(TsneTest, SeparatedBlobsStaySeparated) {
  std::vector<int64_t> labels;
  Matrix points = MakeBlobs(25, &labels, 2);
  TsneOptions options;
  options.iterations = 300;
  options.perplexity = 15.0;
  Matrix embedding = TsneEmbed(points, options);
  ClusterSeparation separation =
      ComputeClusterSeparation(embedding, labels);
  EXPECT_GT(separation.centroid_accuracy, 0.9);
  EXPECT_GT(separation.silhouette, 0.3);
}

TEST(TsneTest, DeterministicForSeed) {
  std::vector<int64_t> labels;
  Matrix points = MakeBlobs(10, &labels, 3);
  TsneOptions options;
  options.iterations = 100;
  Matrix a = TsneEmbed(points, options);
  Matrix b = TsneEmbed(points, options);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(TsneTest, EmbeddingIsCentred) {
  std::vector<int64_t> labels;
  Matrix points = MakeBlobs(15, &labels, 4);
  TsneOptions options;
  options.iterations = 120;
  Matrix embedding = TsneEmbed(points, options);
  double mean0 = 0.0, mean1 = 0.0;
  for (int64_t i = 0; i < embedding.rows(); ++i) {
    mean0 += embedding(i, 0);
    mean1 += embedding(i, 1);
  }
  EXPECT_NEAR(mean0 / embedding.rows(), 0.0, 1e-3);
  EXPECT_NEAR(mean1 / embedding.rows(), 0.0, 1e-3);
}

TEST(TsneTest, HandlesSmallPerplexityCorrection) {
  // n = 8 forces the perplexity clamp; must not crash or NaN.
  Rng rng(5);
  Matrix points(8, 3);
  for (int64_t i = 0; i < points.size(); ++i) {
    points.data()[i] = static_cast<float>(rng.Normal());
  }
  TsneOptions options;
  options.iterations = 50;
  options.perplexity = 30.0;
  Matrix embedding = TsneEmbed(points, options);
  for (int64_t i = 0; i < embedding.size(); ++i) {
    EXPECT_TRUE(std::isfinite(embedding.data()[i]));
  }
}

TEST(ClusterMetricsTest, PerfectSeparationScoresHigh) {
  Matrix points(20, 2);
  std::vector<int64_t> labels;
  for (int64_t i = 0; i < 20; ++i) {
    bool second = i >= 10;
    points(i, 0) = second ? 10.0f : 0.0f;
    points(i, 1) = static_cast<float>(i % 10) * 0.1f;
    labels.push_back(second ? 1 : 0);
  }
  ClusterSeparation separation = ComputeClusterSeparation(points, labels);
  EXPECT_EQ(separation.centroid_accuracy, 1.0);
  EXPECT_GT(separation.silhouette, 0.8);
  EXPECT_GT(separation.separation_ratio, 5.0);
}

TEST(ClusterMetricsTest, RandomLabelsScoreLow) {
  Rng rng(6);
  Matrix points(60, 2);
  std::vector<int64_t> labels;
  for (int64_t i = 0; i < 60; ++i) {
    points(i, 0) = static_cast<float>(rng.Normal());
    points(i, 1) = static_cast<float>(rng.Normal());
    labels.push_back(rng.UniformInt(3));
  }
  ClusterSeparation separation = ComputeClusterSeparation(points, labels);
  EXPECT_LT(separation.silhouette, 0.15);
  EXPECT_LT(separation.centroid_accuracy, 0.7);
}

}  // namespace
}  // namespace awmoe
